#!/usr/bin/env bash
# End-to-end serving smoke for the fedserve daemon (CI: the serve job).
#
# 1. Reference run: boot fedserve on a loopback ephemeral port, drive a
#    fixed-seed 3-job mix (sync/async/gossip) through fedload, require
#    every job to complete with no failed rounds, and write the
#    latency/throughput measurement to artifacts/BENCH_serve.json.
# 2. Interrupted run: submit the same mix to a fresh daemon, wait until
#    the long synchronous job is a few rounds in, kill the daemon with
#    SIGKILL (no shutdown hook runs), restart it over the same state
#    directory and wait for everything to finish.
# 3. Proof: per job, the interrupted run's streamed trace and round
#    history must be byte-identical to the uninterrupted reference.
#
# Everything is fixed-seed and virtual-time, so the only nondeterminism
# is where the kill lands — and the resume protocol's job is exactly to
# make that invisible.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
ART=artifacts
RUN=$ART/serve-smoke
BIN=$RUN/bin
REF=$RUN/ref
INT=$RUN/int

rm -rf "$RUN"
mkdir -p "$BIN" "$REF" "$INT"

echo "== build =="
$GO build -o "$BIN" ./cmd/fedserve ./cmd/fedload

# The fixed-seed 3-job mix. The sync job is deliberately the long pole
# (40 rounds, checkpointed every round) so the SIGKILL below is
# guaranteed to land while it is mid-run.
JOBS=$RUN/jobs.json
cat > "$JOBS" <<'EOF'
[
  {"name": "smoke-sync",   "engine": "sync",   "clients": 3, "rounds": 40,
   "samples": 300, "test_samples": 100, "seed": 11},
  {"name": "smoke-async",  "engine": "async",  "clients": 3, "max_updates": 6,
   "samples": 300, "test_samples": 100, "seed": 12},
  {"name": "smoke-gossip", "engine": "gossip", "clients": 3, "rounds": 1,
   "samples": 300, "test_samples": 100, "seed": 13}
]
EOF

# All three jobs must run concurrently: -until-rounds below can only
# observe async/gossip progress at completion, so if they queued behind
# the sync job it would finish before the kill ever landed.
start_daemon() { # dir addr_file log_file -> pid on stdout
  # >log too: a bare & would keep the command-substitution pipe open and
  # $(start_daemon ...) would block until the daemon exits.
  "$BIN/fedserve" -dir "$1" -addr 127.0.0.1:0 -addr-file "$2" \
    -max-running 3 -lane-budget 3 >"$3" 2>&1 &
  local pid=$!
  for _ in $(seq 1 100); do
    [ -f "$2" ] && break
    sleep 0.1
  done
  [ -f "$2" ] || { echo "daemon did not write $2" >&2; cat "$3" >&2; exit 1; }
  echo "$pid"
}

stop_daemon() { # pid — SIGTERM, then poll: not our child, so no `wait`
  kill -TERM "$1" 2>/dev/null || true
  for _ in $(seq 1 100); do
    kill -0 "$1" 2>/dev/null || return 0
    sleep 0.1
  done
  echo "daemon $1 did not exit after SIGTERM" >&2
  exit 1
}

echo "== reference run (uninterrupted) =="
REF_PID=$(start_daemon "$REF" "$RUN/ref.addr" "$RUN/ref-daemon.log")
"$BIN/fedload" -addr-file "$RUN/ref.addr" -jobs "$JOBS" -out "$ART/BENCH_serve.json"
stop_daemon "$REF_PID"

for d in "$REF"/jobs/job-*; do
  if grep -q '"failed":true' "$d/rounds.json"; then
    echo "FAIL: $d has failed rounds" >&2
    exit 1
  fi
done

echo "== interrupted run (SIGKILL mid-run, restart, resume) =="
INT_PID=$(start_daemon "$INT" "$RUN/int.addr" "$RUN/int-daemon-1.log")
# Returns once every job is ≥3 rounds in or already finished — by then
# the 40-round sync job is still mid-flight.
"$BIN/fedload" -addr-file "$RUN/int.addr" -jobs "$JOBS" -until-rounds 3
kill -KILL "$INT_PID"

# The sync job (first submitted => job-1) must actually have been
# interrupted, or the byte-compare below would prove nothing.
if [ ! -f "$INT/jobs/job-1/resume.bin" ]; then
  echo "FAIL: job-1 has no resume snapshot — it finished before the kill; raise its rounds" >&2
  exit 1
fi
grep -q '"state": "running"' "$INT/jobs/job-1/state.json" || {
  echo "FAIL: job-1 was not mid-run at the kill:" >&2
  cat "$INT/jobs/job-1/state.json" >&2
  exit 1
}

rm -f "$RUN/int.addr"
INT_PID=$(start_daemon "$INT" "$RUN/int.addr" "$RUN/int-daemon-2.log")
"$BIN/fedload" -addr-file "$RUN/int.addr" -attach
stop_daemon "$INT_PID"

echo "== resume proof: byte-compare against the reference =="
for n in 1 2 3; do
  for f in trace.jsonl rounds.json; do
    cmp "$REF/jobs/job-$n/$f" "$INT/jobs/job-$n/$f"
    echo "  job-$n/$f identical"
  done
done

echo "serve-smoke: PASS (BENCH_serve.json written to $ART/BENCH_serve.json)"
