package fedsched

import (
	"strings"
	"testing"
)

func TestTestbedScheduleIID(t *testing.T) {
	tb := NewTestbed(1)
	arch := LeNet(1, 28, 28, 10)
	asg, err := tb.ScheduleIID(arch, 6000)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range asg.Shards {
		total += s
	}
	if total != 60 {
		t.Fatalf("assigned %d shards, want 60", total)
	}
	if asg.PredictedMakespan <= 0 {
		t.Fatal("no predicted makespan")
	}
	spans, err := tb.SimulateRounds(arch, asg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0] <= 0 {
		t.Fatalf("bad spans %v", spans)
	}
}

func TestTestbedScheduleNonIID(t *testing.T) {
	tb := NewTestbed(1)
	arch := LeNet(3, 32, 32, 10)
	classSets := [][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	asg, err := tb.ScheduleNonIID(arch, 5000, classSets, 10, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Participants() == 0 {
		t.Fatal("nobody scheduled")
	}
	if _, err := tb.ScheduleNonIID(arch, 5000, classSets[:2], 10, 100, 2); err == nil {
		t.Fatal("expected class-set arity error")
	}
}

func TestRunFederatedOnTestbed(t *testing.T) {
	tb := NewTestbed(1)
	// Same seed → shared class prototypes; different sizes → disjoint
	// sample randomness.
	train := SMNIST(600, 3)
	test := SMNIST(200, 3)
	part := PartitionIID(train, 3, 1)
	hist, err := tb.RunFederated(RunConfig{
		Arch: LeNetSmall(1, 16, 16, 10), Rounds: 3, LR: 0.02, Momentum: 0.9, Seed: 1,
	}, train, part, test)
	if err != nil {
		t.Fatal(err)
	}
	if hist.FinalAccuracy <= 0.2 {
		t.Fatalf("accuracy %.3f implausibly low", hist.FinalAccuracy)
	}
	if hist.TotalSeconds <= 0 {
		t.Fatal("no simulated time")
	}
	if _, err := tb.RunFederated(RunConfig{Arch: LeNetSmall(1, 16, 16, 10)}, train, part[:2], test); err == nil {
		t.Fatal("expected partition arity error")
	}
}

func TestPartitionHelpers(t *testing.T) {
	ds := SCIFAR(300, 5)
	p1 := PartitionIID(ds, 3, 1)
	if p1.Total() != 300 {
		t.Fatalf("IID total %d", p1.Total())
	}
	p2 := PartitionIIDSizes(ds, []int{100, 50}, 1)
	if len(p2[0]) != 100 || len(p2[1]) != 50 {
		t.Fatalf("sizes %v", p2.Sizes())
	}
	p3 := PartitionByClasses(ds, [][]int{{0, 1}}, []int{30}, 1)
	for _, i := range p3[0] {
		if ds.Labels[i] > 1 {
			t.Fatal("class restriction violated")
		}
	}
}

func TestExperimentFacade(t *testing.T) {
	out, err := Experiment("tab4", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "S(III)") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if _, err := Experiment("bogus", true, 1); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
	if len(ExperimentIDs()) < 12 {
		t.Fatalf("expected ≥12 experiments, got %v", ExperimentIDs())
	}
}

func TestCustomTestbedAndMakespan(t *testing.T) {
	tb := NewCustomTestbed(NewTestbed(1).Profiles[:2], LTE())
	arch := LeNet(1, 28, 28, 10)
	req, err := tb.Request(arch, 3000)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := FedLBAP.Schedule(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m := Makespan(req, asg); m != asg.PredictedMakespan {
		t.Fatalf("makespan mismatch: %v vs %v", m, asg.PredictedMakespan)
	}
}

func TestBatteryBudgetCapsSchedule(t *testing.T) {
	arch := LeNet(1, 28, 28, 10)
	free := NewTestbed(1)
	asgFree, err := free.ScheduleIID(arch, 60000)
	if err != nil {
		t.Fatal(err)
	}
	capped := NewTestbed(1)
	capped.BatteryBudget = 0.002 // tiny per-round energy budget
	req, err := capped.Request(arch, 60000)
	if err != nil {
		t.Fatal(err)
	}
	anyCapped := false
	for j, u := range req.Users {
		if u.CapacityShards > 0 && u.CapacityShards < asgFree.Shards[j] {
			anyCapped = true
		}
	}
	if !anyCapped {
		t.Skip("budget did not bind on this hardware model — adjust threshold")
	}
	asgCapped, err := FedLBAP.Schedule(req, nil)
	if err != nil {
		// Legitimate when the budget makes the instance infeasible.
		return
	}
	for j, u := range req.Users {
		if asgCapped.Shards[j] > u.CapacityShards {
			t.Fatalf("battery capacity violated for user %d", j)
		}
	}
}

func TestFacadeSecureAndDeadline(t *testing.T) {
	tb := NewTestbed(1)
	train := SMNIST(450, 5)
	test := SMNIST(150, 5)
	part := PartitionIID(train, 3, 2)
	hist, err := tb.RunFederated(RunConfig{
		Arch: LeNetSmall(1, 16, 16, 10), Rounds: 3, LR: 0.02, Momentum: 0.9,
		Seed: 2, SecureAgg: true,
	}, train, part, test)
	if err != nil {
		t.Fatal(err)
	}
	if hist.FinalAccuracy < 0.5 {
		t.Fatalf("secure facade run accuracy %.3f", hist.FinalAccuracy)
	}
	if hist.Confusion == nil || hist.Model == nil {
		t.Fatal("history missing confusion matrix or final model")
	}
	if hist.Confusion.Accuracy() != hist.FinalAccuracy {
		t.Fatal("confusion accuracy disagrees with FinalAccuracy")
	}
}

func TestFacadeAsyncAndGossip(t *testing.T) {
	tb := NewTestbed(1)
	train := SMNIST(450, 6)
	test := SMNIST(150, 6)
	part := PartitionIID(train, 3, 3)
	cfg := RunConfig{Arch: LeNetSmall(1, 16, 16, 10), Rounds: 3, LR: 0.02, Momentum: 0.9, Seed: 3}

	clients, err := tb.Clients(train, part)
	if err != nil {
		t.Fatal(err)
	}
	aHist, err := RunAsync(AsyncConfig{Config: cfg, MaxUpdates: 9}, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if aHist.Updates != 9 {
		t.Fatalf("async updates %d", aHist.Updates)
	}

	gClients, err := tb.Clients(train, part)
	if err != nil {
		t.Fatal(err)
	}
	gHist, err := RunGossip(GossipConfig{Config: cfg, Topology: Ring}, gClients, test)
	if err != nil {
		t.Fatal(err)
	}
	if gHist.MeanAccuracy <= 0.2 {
		t.Fatalf("gossip accuracy %.3f", gHist.MeanAccuracy)
	}

	if _, err := tb.Clients(train, part[:1]); err == nil {
		t.Fatal("expected partition arity error")
	}
}

func TestFacadePrivacyAndSecagg(t *testing.T) {
	rep, err := NewPrivacyReporter(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlipProbability() <= 0 || rep.FlipProbability() >= 0.5 {
		t.Fatalf("flip probability %v", rep.FlipProbability())
	}
	g, err := NewSecureGroup(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 {
		t.Fatalf("group size %d", g.N)
	}
}

func TestFacadeTuneAlpha(t *testing.T) {
	tb := NewTestbed(1)
	arch := LeNet(3, 32, 32, 10)
	req, err := tb.Request(arch, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for j, u := range req.Users {
		u.Classes = []int{j % 10, (j + 1) % 10}
	}
	req.K, req.Beta = 10, 0
	best, sweep, err := TuneAlpha(req, DefaultAlphaGrid(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || len(sweep) != len(DefaultAlphaGrid()) {
		t.Fatalf("best=%v sweep=%d", best, len(sweep))
	}
}
