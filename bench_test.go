// Benchmark harness: one benchmark per table and figure of the paper
// (regenerating the artifact end-to-end in quick mode), plus paper-scale
// micro-benchmarks of the scheduling algorithms themselves. Run with
//
//	go test -bench=. -benchmem
//
// Accuracy-bearing artifacts (fig2, fig3*, tab3, tab5, fig6) perform real
// gradient descent and take tens of seconds per iteration; use
// -benchtime=1x for a single regeneration of each.
package fedsched_test

import (
	"testing"

	"fedsched"
	"fedsched/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	d, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := experiments.Options{Quick: true, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Motivation study (paper §III).
func BenchmarkFig1BatchTraces(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkTable2EpochTimes(b *testing.B) { benchExperiment(b, "tab2") }

// Data-distribution studies (paper §III-B/C).
func BenchmarkFig2IIDImbalance(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3aNClassNonIID(b *testing.B) { benchExperiment(b, "fig3a") }
func BenchmarkFig3bOutliers(b *testing.B)     { benchExperiment(b, "fig3b") }

// Profiler (paper §IV-B).
func BenchmarkFig4Profiler(b *testing.B) { benchExperiment(b, "fig4") }

// IID scheduling evaluation (paper §VII-A).
func BenchmarkFig5IIDTime(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkTable3IIDAccuracy(b *testing.B) { benchExperiment(b, "tab3") }

// Non-IID scheduling evaluation (paper §VII-B).
func BenchmarkFig6AlphaBeta(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkTable4Schedules(b *testing.B)      { benchExperiment(b, "tab4") }
func BenchmarkFig7NonIIDTime(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkTable5NonIIDAccuracy(b *testing.B) { benchExperiment(b, "tab5") }

// Paper-scale scheduler micro-benchmarks: 600 shards (60K samples) on the
// 10-device Testbed III — the algorithmic hot path isolated from the
// simulators.
func paperScaleRequest(b *testing.B) *fedsched.Request {
	b.Helper()
	tb := fedsched.NewTestbed(3)
	req, err := tb.Request(fedsched.LeNet(1, 28, 28, 10), 60000)
	if err != nil {
		b.Fatal(err)
	}
	return req
}

func BenchmarkFedLBAPPaperScale(b *testing.B) {
	req := paperScaleRequest(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fedsched.FedLBAP.Schedule(req, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFedMinAvgPaperScale(b *testing.B) {
	req := paperScaleRequest(b)
	req.K, req.Alpha, req.Beta = 10, 1000, 2
	for j, u := range req.Users {
		u.Classes = []int{j % 10, (j + 3) % 10, (j + 6) % 10}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fedsched.FedMinAvg.Schedule(req, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatedEpochTestbed3(b *testing.B) {
	tb := fedsched.NewTestbed(3)
	arch := fedsched.LeNet(1, 28, 28, 10)
	asg, err := tb.ScheduleIID(arch, 60000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.SimulateRounds(arch, asg, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension experiments (ablations and optional directions).
func BenchmarkExtEnergy(b *testing.B)      { benchExperiment(b, "ext-energy") }
func BenchmarkExtAsync(b *testing.B)       { benchExperiment(b, "ext-async") }
func BenchmarkExtSecAgg(b *testing.B)      { benchExperiment(b, "ext-secagg") }
func BenchmarkExtGossip(b *testing.B)      { benchExperiment(b, "ext-gossip") }
func BenchmarkExtDP(b *testing.B)          { benchExperiment(b, "ext-dp") }
func BenchmarkExtGranularity(b *testing.B) { benchExperiment(b, "ext-granularity") }
func BenchmarkExtDropout(b *testing.B)     { benchExperiment(b, "ext-dropout") }
func BenchmarkExtAdaptive(b *testing.B)    { benchExperiment(b, "ext-adaptive") }
