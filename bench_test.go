// Benchmark harness: one benchmark per table and figure of the paper
// (regenerating the artifact end-to-end in quick mode), plus paper-scale
// micro-benchmarks of the scheduling algorithms themselves. Run with
//
//	go test -bench=. -benchmem
//
// Accuracy-bearing artifacts (fig2, fig3*, tab3, tab5, fig6) perform real
// gradient descent and take tens of seconds per iteration; use
// -benchtime=1x for a single regeneration of each.
package fedsched_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"unsafe"

	"fedsched"
	"fedsched/internal/data"
	"fedsched/internal/experiments"
	"fedsched/internal/tensor"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	d, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := experiments.Options{Quick: true, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Motivation study (paper §III).
func BenchmarkFig1BatchTraces(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkTable2EpochTimes(b *testing.B) { benchExperiment(b, "tab2") }

// Data-distribution studies (paper §III-B/C).
func BenchmarkFig2IIDImbalance(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3aNClassNonIID(b *testing.B) { benchExperiment(b, "fig3a") }
func BenchmarkFig3bOutliers(b *testing.B)     { benchExperiment(b, "fig3b") }

// Profiler (paper §IV-B).
func BenchmarkFig4Profiler(b *testing.B) { benchExperiment(b, "fig4") }

// IID scheduling evaluation (paper §VII-A).
func BenchmarkFig5IIDTime(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkTable3IIDAccuracy(b *testing.B) { benchExperiment(b, "tab3") }

// Non-IID scheduling evaluation (paper §VII-B).
func BenchmarkFig6AlphaBeta(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkTable4Schedules(b *testing.B)      { benchExperiment(b, "tab4") }
func BenchmarkFig7NonIIDTime(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkTable5NonIIDAccuracy(b *testing.B) { benchExperiment(b, "tab5") }

// Paper-scale scheduler micro-benchmarks: 600 shards (60K samples) on the
// 10-device Testbed III — the algorithmic hot path isolated from the
// simulators.
func paperScaleRequest(b *testing.B) *fedsched.Request {
	b.Helper()
	tb := fedsched.NewTestbed(3)
	req, err := tb.Request(fedsched.LeNet(1, 28, 28, 10), 60000)
	if err != nil {
		b.Fatal(err)
	}
	return req
}

func BenchmarkFedLBAPPaperScale(b *testing.B) {
	req := paperScaleRequest(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fedsched.FedLBAP.Schedule(req, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFedMinAvgPaperScale(b *testing.B) {
	req := paperScaleRequest(b)
	req.K, req.Alpha, req.Beta = 10, 1000, 2
	for j, u := range req.Users {
		u.Classes = []int{j % 10, (j + 3) % 10, (j + 6) % 10}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fedsched.FedMinAvg.Schedule(req, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatedEpochTestbed3(b *testing.B) {
	tb := fedsched.NewTestbed(3)
	arch := fedsched.LeNet(1, 28, 28, 10)
	asg, err := tb.ScheduleIID(arch, 60000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.SimulateRounds(arch, asg, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel-engine benchmarks: the same federated run on Testbed II
// (6 devices), serial vs the bounded worker pool. Results are
// bit-identical by construction (see internal/fl/parallel_test.go); this
// pair measures only the wall-clock difference. The pool sizes itself
// from GOMAXPROCS, so the speedup tracks the core count of the machine
// running the benchmark.
func benchFederated(b *testing.B, workers int) {
	b.Helper()
	prevLanes := tensor.MaxLanes()
	tensor.SetMaxLanes(runtime.GOMAXPROCS(0) - 1)
	defer tensor.SetMaxLanes(prevLanes)

	tb := fedsched.NewTestbed(2)
	train := fedsched.SMNIST(1200, 1)
	test := fedsched.SMNIST(200, 2)
	part := data.IIDEqual(train, len(tb.Profiles), rand.New(rand.NewSource(1)))
	cfg := fedsched.RunConfig{
		Arch: fedsched.LeNetSmall(1, 16, 16, 10), Rounds: 2, BatchSize: 20,
		LR: 0.02, Momentum: 0.9, Seed: 1, Workers: workers,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunFederated(cfg, train, part, test); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSerial(b *testing.B)   { benchFederated(b, 1) }
func BenchmarkRunParallel(b *testing.B) { benchFederated(b, 0) }

// GEMM benchmarks over the real layer shapes of the paper's two models at
// batch 20, one triple per model covering the three kernels a training
// step issues: forward A·Bᵀ (im2col rows × filters), input-gradient A·B
// and weight-gradient Aᵀ·B. `make bench-gemm` runs these plus the
// naive-vs-blocked kernel pair in internal/tensor; BENCH_gemm.json holds
// recorded numbers.
func benchGEMMLayer[T tensor.Float](b *testing.B, m, k, n int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	a := tensor.RandnOf[T](rng, 1, m, k) // activations / im2col rows
	w := tensor.RandnOf[T](rng, 1, n, k) // weights (out, in)
	g := tensor.RandnOf[T](rng, 1, m, n) // output gradient
	fwd := tensor.NewOf[T](m, n)
	dx := tensor.NewOf[T](m, k)
	dw := tensor.NewOf[T](n, k)
	var elem T
	b.SetBytes(int64(unsafe.Sizeof(elem)) * int64(3*(m*k+n*k+m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulTransBInto(fwd, a, w) // forward
		tensor.MatMulInto(dx, g, w)        // input gradient
		tensor.MatMulTransAInto(dw, g, a)  // weight gradient
	}
}

// LeNet conv2 at 28×28 input: m = 20·8·8 im2col rows, k = 20·5·5, n = 40.
func BenchmarkGEMM_LeNet(b *testing.B) { benchGEMMLayer[float64](b, 1280, 500, 40) }

// VGG6 block-3 conv at 28×28 input: m = 20·7·7, k = 80·3·3, n = 96.
func BenchmarkGEMM_VGG6(b *testing.B) { benchGEMMLayer[float64](b, 980, 720, 96) }

// The same triples on the float32 kernels (SIMD micro-kernel on amd64,
// half the memory traffic); BENCH_gemm.json records both widths.
func BenchmarkGEMMF32_LeNet(b *testing.B) { benchGEMMLayer[float32](b, 1280, 500, 40) }
func BenchmarkGEMMF32_VGG6(b *testing.B)  { benchGEMMLayer[float32](b, 980, 720, 96) }

// Extension experiments (ablations and optional directions).
func BenchmarkExtEnergy(b *testing.B)      { benchExperiment(b, "ext-energy") }
func BenchmarkExtAsync(b *testing.B)       { benchExperiment(b, "ext-async") }
func BenchmarkExtSecAgg(b *testing.B)      { benchExperiment(b, "ext-secagg") }
func BenchmarkExtGossip(b *testing.B)      { benchExperiment(b, "ext-gossip") }
func BenchmarkExtDP(b *testing.B)          { benchExperiment(b, "ext-dp") }
func BenchmarkExtGranularity(b *testing.B) { benchExperiment(b, "ext-granularity") }
func BenchmarkExtDropout(b *testing.B)     { benchExperiment(b, "ext-dropout") }
func BenchmarkExtAdaptive(b *testing.B)    { benchExperiment(b, "ext-adaptive") }

// Population-scale scheduling benchmarks: the sparsified Fed-LBAP solver
// and the O(selected) population round loop at fleet sizes from 10^3 to
// 10^6 clients. BENCH_sched.json holds recorded numbers; the headline
// target is a sub-second n=10^6, s=10^4 solve. Cost curves are
// deterministic hashed-jitter lines (no math/rand in the hot loop), the
// same instance family the sparse-vs-dense equivalence tests use.
func populationRequest(n int) *fedsched.Request {
	users := make([]*fedsched.User, n)
	for j := range users {
		h := uint64(j)*0x9e3779b97f4a7c15 + 1
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		a := 0.5 + float64(h%1000)/500
		slope := 0.005 + float64((h>>10)%1000)/50000
		users[j] = &fedsched.User{
			Cost:        func(samples int) float64 { return a + slope*float64(samples) },
			CommSeconds: 1 + float64((h>>20)%100)/100,
		}
	}
	s := n / 100
	if s < 100 {
		s = 100
	}
	return &fedsched.Request{TotalShards: s, ShardSize: 100, Users: users}
}

func BenchmarkFedLBAPSparse(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			req := populationRequest(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fedsched.FedLBAPSparse.Schedule(req, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The dense solver on the same instance family, reference point for the
// sparse speedup (only at sizes where the n×s matrix is tractable).
func BenchmarkFedLBAPDense(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			req := populationRequest(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fedsched.FedLBAP.Schedule(req, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// One full population round — sample, materialize, solve, simulate,
// reduce — at a fixed cohort of 64 across fleet sizes. Runner
// construction (archetype profiling) happens outside the timer; the
// per-round cost must stay flat as n grows, the tentpole O(selected)
// claim in benchmark form.
func BenchmarkRoundLoop(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r, err := fedsched.NewPopulationRunner(fedsched.PopulationConfig{
				Arch:       fedsched.LeNetSmall(1, 16, 16, 10),
				Population: fedsched.NewDevicePopulation(n, 42),
				Sampler:    fedsched.NewUniformSampler(n, 64, 42),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Round(i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
