// Package adaptive closes the loop between online profiling and
// scheduling: a controller that observes actual per-round device times,
// feeds them to online profiles (paper §IV-B's bootstrapping alternative),
// and re-runs Fed-LBAP when reality drifts from the cost model — e.g. when
// a phone heats up in a pocket or its battery saver kicks in. The paper
// computes schedules from static offline profiles; this is the natural
// "future work" controller its Section VIII gestures at.
package adaptive

import (
	"fmt"
	"math"

	"fedsched/internal/device"
	"fedsched/internal/network"
	"fedsched/internal/nn"
	"fedsched/internal/profile"
	"fedsched/internal/sched"
)

// Config drives the adaptive loop.
type Config struct {
	Arch         *nn.Arch
	TotalSamples int
	ShardSize    int
	Rounds       int
	BatchSize    int
	// DriftThreshold is the relative per-device misprediction that
	// triggers a reschedule before the next round (e.g. 0.25 = 25%).
	// +Inf disables rescheduling (static baseline).
	DriftThreshold float64
	// Scheduler defaults to Fed-LBAP.
	Scheduler sched.Scheduler
}

func (c Config) withDefaults() Config {
	if c.ShardSize <= 0 {
		c.ShardSize = 100
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 20
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.25
	}
	if c.Scheduler == nil {
		c.Scheduler = sched.FedLBAP{}
	}
	return c
}

// RoundRecord reports one adaptive round.
type RoundRecord struct {
	Round       int
	Makespan    float64
	Predicted   float64 // cost model's expectation for this round
	Rescheduled bool    // schedule recomputed before this round ran
	WorstDrift  float64 // max relative misprediction observed this round
}

// Result summarizes an adaptive run.
type Result struct {
	Records     []RoundRecord
	Reschedules int
	TotalTime   float64
	Assignment  *sched.Assignment // final schedule in force
}

// Run executes cfg.Rounds synchronous rounds over the devices,
// re-profiling online and rescheduling on drift. Base profiles may be nil
// entries (pure-online learning from scratch is then used, bootstrapped by
// the first observed round under an equal split).
func Run(cfg Config, devs []*device.Device, links []network.Link, base []*profile.DeviceProfile) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Arch == nil {
		return nil, fmt.Errorf("adaptive: no architecture")
	}
	n := len(devs)
	if n == 0 || len(links) != n || len(base) != n {
		return nil, fmt.Errorf("adaptive: %d devices, %d links, %d profiles", n, len(links), len(base))
	}

	online := make([]*profile.OnlineProfile, n)
	for j := range online {
		online[j] = profile.NewOnline(base[j])
	}
	buildRequest := func() *sched.Request {
		users := make([]*sched.User, n)
		for j := range users {
			p := online[j]
			users[j] = &sched.User{
				Name:        devs[j].Model,
				Cost:        func(s int) float64 { return p.Predict(cfg.Arch, s) },
				CommSeconds: links[j].RoundTripTime(cfg.Arch.SizeBytes()),
				MeanFreqGHz: devs[j].MeanFreqGHz(),
			}
		}
		return &sched.Request{
			TotalShards: cfg.TotalSamples / cfg.ShardSize,
			ShardSize:   cfg.ShardSize,
			Users:       users,
		}
	}

	asg, err := cfg.Scheduler.Schedule(buildRequest(), nil)
	if err != nil {
		return nil, err
	}
	res := &Result{Assignment: asg}
	needReschedule := false

	for round := 0; round < cfg.Rounds; round++ {
		rec := RoundRecord{Round: round}
		if needReschedule {
			newAsg, err := cfg.Scheduler.Schedule(buildRequest(), nil)
			if err == nil {
				asg = newAsg
				res.Assignment = newAsg
				res.Reschedules++
				rec.Rescheduled = true
			}
			needReschedule = false
		}
		samples := asg.Samples(cfg.ShardSize)
		times := make([]float64, n)
		for j, dev := range devs {
			if samples[j] <= 0 {
				continue
			}
			predicted := online[j].Predict(cfg.Arch, samples[j]) + links[j].RoundTripTime(cfg.Arch.SizeBytes())
			comp, _ := dev.TrainSamples(cfg.Arch, samples[j], cfg.BatchSize)
			obs := comp + links[j].RoundTripTime(cfg.Arch.SizeBytes())
			times[j] = obs
			online[j].Observe(cfg.Arch, samples[j], comp)
			if obs > rec.Makespan {
				rec.Makespan = obs
			}
			if predicted > rec.Predicted {
				rec.Predicted = predicted
			}
			if obs > 0 {
				if drift := math.Abs(obs-predicted) / obs; drift > rec.WorstDrift {
					rec.WorstDrift = drift
				}
			}
		}
		for j, dev := range devs {
			dev.Idle(rec.Makespan - times[j])
		}
		if rec.WorstDrift > cfg.DriftThreshold {
			needReschedule = true
		}
		res.Records = append(res.Records, rec)
		res.TotalTime += rec.Makespan
	}
	return res, nil
}
