package adaptive

import (
	"math"
	"testing"

	"fedsched/internal/device"
	"fedsched/internal/network"
	"fedsched/internal/nn"
	"fedsched/internal/profile"
)

var testArch = nn.LeNet(1, 28, 28, 10)

func testRig(t *testing.T) ([]*device.Device, []network.Link, []*profile.DeviceProfile) {
	t.Helper()
	profiles := []device.Profile{device.Pixel2(), device.Nexus6(), device.Mate10()}
	devs := make([]*device.Device, len(profiles))
	links := make([]network.Link, len(profiles))
	base := make([]*profile.DeviceProfile, len(profiles))
	for i, p := range profiles {
		devs[i] = device.New(p)
		links[i] = network.WiFi()
		dp, err := profile.BuildOffline(device.New(p), profile.Suite(1, 28, 28, 10), profile.DefaultSizes)
		if err != nil {
			t.Fatal(err)
		}
		base[i] = dp
	}
	return devs, links, base
}

func TestStableRigNeedsNoReschedule(t *testing.T) {
	devs, links, base := testRig(t)
	res, err := Run(Config{Arch: testArch, TotalSamples: 12000, Rounds: 4}, devs, links, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4 {
		t.Fatalf("%d records", len(res.Records))
	}
	if res.Reschedules > 1 {
		t.Fatalf("stable rig rescheduled %d times", res.Reschedules)
	}
	if res.TotalTime <= 0 {
		t.Fatal("no time accumulated")
	}
}

func TestAdaptiveRecoversFromDrift(t *testing.T) {
	// Inject a mid-run environment change: the fastest device (Pixel2)
	// lands in a hot pocket — ambient jumps 30°C, so it throttles hard.
	run := func(threshold float64) (*Result, []*device.Device) {
		devs, links, base := testRig(t)
		// Pre-degrade after scheduling by raising ambient before round 0
		// is NOT the test; instead degrade after two rounds by wrapping
		// rounds manually: simplest is two phases.
		cfg := Config{Arch: testArch, TotalSamples: 12000, Rounds: 2, DriftThreshold: threshold}
		res1, err := Run(cfg, devs, links, base)
		if err != nil {
			t.Fatal(err)
		}
		// Phase 2: Pixel2 overheats persistently.
		devs[0].AmbientC += 30
		devs[0].TempC += 30
		devs[0].SoftTripC = devs[0].AmbientC + 2 // permanent throttle
		devs[0].ThrottleFactor = 0.25
		cfg.Rounds = 6
		res2, err := Run(cfg, devs, links, base)
		if err != nil {
			t.Fatal(err)
		}
		res2.TotalTime += res1.TotalTime
		return res2, devs
	}
	adaptive, _ := run(0.3)
	static, _ := run(math.Inf(1))
	if adaptive.Reschedules == 0 {
		t.Fatal("controller never rescheduled despite a 4× slowdown")
	}
	if static.Reschedules != 0 {
		t.Fatal("static baseline must not reschedule")
	}
	// After adaptation the final rounds must be faster than the static
	// schedule's final rounds.
	lastA := adaptive.Records[len(adaptive.Records)-1].Makespan
	lastS := static.Records[len(static.Records)-1].Makespan
	if lastA >= lastS {
		t.Fatalf("adaptive final round %.1f s not faster than static %.1f s", lastA, lastS)
	}
	// And the adapted schedule should shift load off the degraded device.
	if adaptive.Assignment.Shards[0] >= static.Assignment.Shards[0] {
		t.Fatalf("load not shifted off degraded device: adaptive %d vs static %d shards",
			adaptive.Assignment.Shards[0], static.Assignment.Shards[0])
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, nil, nil, nil); err == nil {
		t.Fatal("expected error without arch")
	}
	devs, links, base := testRig(t)
	if _, err := Run(Config{Arch: testArch, TotalSamples: 1000}, devs, links[:1], base); err == nil {
		t.Fatal("expected mismatch error")
	}
	_ = devs
	_ = base
}
