package data

import (
	"fmt"
	"math/rand"
	"sort"

	"fedsched/internal/regress"
)

// Partition assigns each user a list of sample indices into a parent
// dataset. Users may have zero samples (excluded from a round).
type Partition [][]int

// Sizes returns the per-user sample counts.
func (p Partition) Sizes() []int {
	out := make([]int, len(p))
	for i, idx := range p {
		out[i] = len(idx)
	}
	return out
}

// Total returns the total number of assigned samples.
func (p Partition) Total() int {
	t := 0
	for _, idx := range p {
		t += len(idx)
	}
	return t
}

// Materialize copies the partition out of the parent dataset into per-user
// datasets.
func (p Partition) Materialize(ds *Dataset) []*Dataset {
	out := make([]*Dataset, len(p))
	for i, idx := range p {
		out[i] = ds.Subset(idx)
	}
	return out
}

// ClassSets returns the set of classes held by each user.
func (p Partition) ClassSets(ds *Dataset) [][]int {
	out := make([][]int, len(p))
	for i, idx := range p {
		seen := make(map[int]bool)
		for _, s := range idx {
			seen[ds.Labels[s]] = true
		}
		classes := make([]int, 0, len(seen))
		for c := range seen {
			classes = append(classes, c)
		}
		sort.Ints(classes)
		out[i] = classes
	}
	return out
}

// ImbalanceRatio is the paper's Fig 2 x-axis: std(sizes)/mean(sizes).
func ImbalanceRatio(sizes []int) float64 {
	fs := make([]float64, len(sizes))
	for i, s := range sizes {
		fs[i] = float64(s)
	}
	m := regress.Mean(fs)
	if m == 0 { //fedlint:allow floateq — mean of non-negative integer sizes is exactly 0 only when every size is 0
		return 0
	}
	return regress.StdDev(fs) / m
}

// IIDEqual splits the dataset into nUsers stratified, equal-size,
// class-balanced partitions (the FedAvg default, the paper's "Equal"
// baseline distribution).
func IIDEqual(ds *Dataset, nUsers int, rng *rand.Rand) Partition {
	sizes := make([]int, nUsers)
	base := ds.Len() / nUsers
	rem := ds.Len() % nUsers
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	return IIDSizes(ds, sizes, rng)
}

// IIDSizes splits the dataset into stratified partitions with the given
// target sizes: each user keeps a (near-)uniform class ratio regardless of
// its size, so the data stays IID while being imbalanced in volume. The
// sizes must not exceed the dataset length in total.
func IIDSizes(ds *Dataset, sizes []int, rng *rand.Rand) Partition {
	total := 0
	for _, s := range sizes {
		if s < 0 {
			panic("data: negative partition size")
		}
		total += s
	}
	if total > ds.Len() {
		panic(fmt.Sprintf("data: requested %d samples from dataset of %d", total, ds.Len()))
	}
	pools := ds.ByClass()
	for _, pool := range pools {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	}
	cursor := make([]int, len(pools))
	part := make(Partition, len(sizes))
	for u, size := range sizes {
		idx := make([]int, 0, size)
		// Round-robin across classes keeps the class ratio uniform.
		for c := 0; len(idx) < size; c = (c + 1) % len(pools) {
			if cursor[c] < len(pools[c]) {
				idx = append(idx, pools[c][cursor[c]])
				cursor[c]++
				continue
			}
			// This class exhausted: check that some class still has data.
			exhausted := true
			for cc, cur := range cursor {
				if cur < len(pools[cc]) {
					exhausted = false
					break
				}
			}
			if exhausted {
				panic("data: pools exhausted before sizes satisfied")
			}
		}
		part[u] = idx
	}
	return part
}

// GaussianSizes draws nUsers partition sizes from N(mean, (ratio·mean)²)
// where mean = total/nUsers, clamps at a small positive floor, and rescales
// so the sizes sum to total. This reproduces the Fig 2 imbalance generator.
func GaussianSizes(rng *rand.Rand, nUsers, total int, ratio float64) []int {
	mean := float64(total) / float64(nUsers)
	raw := make([]float64, nUsers)
	sum := 0.0
	for i := range raw {
		v := mean + rng.NormFloat64()*ratio*mean
		if v < 1 {
			v = 1
		}
		raw[i] = v
		sum += v
	}
	sizes := make([]int, nUsers)
	assigned := 0
	for i, v := range raw {
		sizes[i] = int(v / sum * float64(total))
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	// Fix rounding drift on the largest partitions.
	order := make([]int, nUsers)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })
	for i := 0; assigned != total; i = (i + 1) % nUsers {
		u := order[i]
		if assigned < total {
			sizes[u]++
			assigned++
		} else if sizes[u] > 1 {
			sizes[u]--
			assigned--
		}
	}
	return sizes
}

// NClassConfig drives the non-IID partitioner.
type NClassConfig struct {
	Users          int
	ClassesPerUser int
	// SizeStd is the relative std of per-class sample counts within a user
	// (the paper adds "a standard deviation of samples among the existing
	// classes" in Fig 3a).
	SizeStd float64
}

// NClass gives each user a random subset of ClassesPerUser classes and
// draws samples only from those classes — the paper's n-class non-IIDness.
// The total assigned equals ds.Len() (up to pool exhaustion rounding).
func NClass(ds *Dataset, cfg NClassConfig, rng *rand.Rand) Partition {
	classSets := make([][]int, cfg.Users)
	for u := range classSets {
		perm := rng.Perm(ds.Classes)
		set := append([]int(nil), perm[:cfg.ClassesPerUser]...)
		sort.Ints(set)
		classSets[u] = set
	}
	sizes := make([]int, cfg.Users)
	base := ds.Len() / cfg.Users
	for u := range sizes {
		v := float64(base) * (1 + cfg.SizeStd*rng.NormFloat64())
		if v < 1 {
			v = 1
		}
		sizes[u] = int(v)
	}
	return ByClassSets(ds, classSets, sizes, rng)
}

// ByClassSets builds a partition where user u draws sizes[u] samples
// restricted to classes classSets[u], spread as evenly as the pools allow.
// When a user's pools run dry its partition is simply smaller; no sample is
// assigned twice.
func ByClassSets(ds *Dataset, classSets [][]int, sizes []int, rng *rand.Rand) Partition {
	if len(classSets) != len(sizes) {
		panic("data: classSets and sizes length mismatch")
	}
	pools := ds.ByClass()
	for _, pool := range pools {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	}
	cursor := make([]int, len(pools))
	part := make(Partition, len(sizes))
	for u, size := range sizes {
		classes := classSets[u]
		idx := make([]int, 0, size)
		if len(classes) == 0 {
			part[u] = idx
			continue
		}
		dry := 0
		for c := 0; len(idx) < size && dry < len(classes); c = (c + 1) % len(classes) {
			cls := classes[c]
			if cursor[cls] < len(pools[cls]) {
				idx = append(idx, pools[cls][cursor[cls]])
				cursor[cls]++
				dry = 0
			} else {
				dry++
			}
		}
		part[u] = idx
	}
	return part
}

// OutlierMode selects how the Fig 3b experiment treats the one-class
// outlier user.
type OutlierMode int

const (
	// OutlierMissing drops the outlier's class from training entirely.
	OutlierMissing OutlierMode = iota
	// OutlierSeparate adds the outlier as a fourth, single-class user.
	OutlierSeparate
	// OutlierMerge folds the outlier's class into the third user.
	OutlierMerge
)

// String implements fmt.Stringer.
func (m OutlierMode) String() string {
	switch m {
	case OutlierMissing:
		return "Missing"
	case OutlierSeparate:
		return "Separate"
	case OutlierMerge:
		return "Merge"
	}
	return fmt.Sprintf("OutlierMode(%d)", int(m))
}

// OutlierScenario reproduces the paper's §III-C construction: 3 users with
// 3 random classes each (disjoint, covering 9 classes) and the remaining
// class treated per mode. Returns the class set of each user.
func OutlierScenario(classes int, mode OutlierMode, rng *rand.Rand) [][]int {
	sets, _ := OutlierScenarioWithClass(classes, mode, rng)
	return sets
}

// OutlierScenarioWithClass is OutlierScenario plus the identity of the
// outlier class, so experiments can track its per-class recall.
func OutlierScenarioWithClass(classes int, mode OutlierMode, rng *rand.Rand) ([][]int, int) {
	perm := rng.Perm(classes)
	sets := [][]int{
		append([]int(nil), perm[0:3]...),
		append([]int(nil), perm[3:6]...),
		append([]int(nil), perm[6:9]...),
	}
	outlier := perm[9]
	switch mode {
	case OutlierMissing:
		// Outlier class absent.
	case OutlierSeparate:
		sets = append(sets, []int{outlier})
	case OutlierMerge:
		sets[2] = append(sets[2], outlier)
	}
	for _, s := range sets {
		sort.Ints(s)
	}
	return sets, outlier
}
