// Package data provides deterministic synthetic image datasets standing in
// for MNIST and CIFAR10 (the module is offline), plus every partitioning
// scheme the paper's experiments use: stratified IID splits, Gaussian-size
// imbalanced IID splits (Fig 2), n-class non-IID splits (Fig 3a), outlier
// scenarios (Fig 3b) and explicit class-distribution scenarios (Table IV).
package data

import (
	"fmt"
	"math/rand"

	"fedsched/internal/tensor"
)

// Dataset is a labelled image dataset stored as one dense tensor of shape
// (N, C, H, W) plus integer labels.
type Dataset struct {
	Name    string
	C, H, W int
	Classes int
	X       *tensor.Tensor
	Labels  []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// SampleSize returns the flattened feature length of one sample.
func (d *Dataset) SampleSize() int { return d.C * d.H * d.W }

// Subset returns a new dataset containing the samples at the given indices
// (data is copied).
func (d *Dataset) Subset(indices []int) *Dataset {
	sz := d.SampleSize()
	out := &Dataset{Name: d.Name, C: d.C, H: d.H, W: d.W, Classes: d.Classes,
		X:      tensor.New(len(indices), d.C, d.H, d.W),
		Labels: make([]int, len(indices)),
	}
	src, dst := d.X.Data(), out.X.Data()
	for i, idx := range indices {
		if idx < 0 || idx >= d.Len() {
			panic(fmt.Sprintf("data: subset index %d out of range [0,%d)", idx, d.Len()))
		}
		copy(dst[i*sz:(i+1)*sz], src[idx*sz:(idx+1)*sz])
		out.Labels[i] = d.Labels[idx]
	}
	return out
}

// Batch returns the feature tensor and labels for samples [i0, i1).
// The tensor shares storage with the dataset.
func (d *Dataset) Batch(i0, i1 int) (*tensor.Tensor, []int) {
	if i0 < 0 || i1 > d.Len() || i0 > i1 {
		panic(fmt.Sprintf("data: bad batch range [%d,%d) for %d samples", i0, i1, d.Len()))
	}
	sz := d.SampleSize()
	//fedlint:allow hotalloc — From wraps the dataset's storage; only the O(1) header is allocated
	x := tensor.From(d.X.Data()[i0*sz:i1*sz], i1-i0, d.C, d.H, d.W)
	return x, d.Labels[i0:i1]
}

// Shuffle permutes the samples in place using rng. Samples are swapped
// element-wise rather than through a scratch buffer: Shuffle runs every
// round on every client's training path, and the buffer was a
// sample-sized allocation per call. The draw sequence and the resulting
// permutation are unchanged.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	sz := d.SampleSize()
	xd := d.X.Data()
	for i := d.Len() - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		if i == j {
			continue
		}
		a, b := xd[i*sz:(i+1)*sz], xd[j*sz:(j+1)*sz]
		for k := range a {
			a[k], b[k] = b[k], a[k]
		}
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	}
}

// ByClass returns, for each class, the sample indices holding that label.
func (d *Dataset) ByClass() [][]int {
	out := make([][]int, d.Classes)
	for i, y := range d.Labels {
		out[y] = append(out[y], i)
	}
	return out
}

// ClassSet returns the sorted list of classes present in the dataset.
func (d *Dataset) ClassSet() []int {
	seen := make([]bool, d.Classes)
	for _, y := range d.Labels {
		seen[y] = true
	}
	var out []int
	for c, ok := range seen {
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// ClassCounts returns the per-class sample counts.
func (d *Dataset) ClassCounts() []int {
	out := make([]int, d.Classes)
	for _, y := range d.Labels {
		out[y]++
	}
	return out
}

// Concat appends other's samples to d, returning a new dataset.
func Concat(a, b *Dataset) *Dataset {
	if a.C != b.C || a.H != b.H || a.W != b.W {
		panic("data: concat shape mismatch")
	}
	sz := a.SampleSize()
	out := &Dataset{Name: a.Name, C: a.C, H: a.H, W: a.W, Classes: a.Classes,
		X:      tensor.New(a.Len()+b.Len(), a.C, a.H, a.W),
		Labels: make([]int, 0, a.Len()+b.Len()),
	}
	copy(out.X.Data(), a.X.Data())
	copy(out.X.Data()[a.Len()*sz:], b.X.Data())
	out.Labels = append(out.Labels, a.Labels...)
	out.Labels = append(out.Labels, b.Labels...)
	return out
}
