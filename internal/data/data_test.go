package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := SMNIST(100, 7)
	b := SMNIST(100, 7)
	if a.Len() != 100 || b.Len() != 100 {
		t.Fatalf("lengths %d %d", a.Len(), b.Len())
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ between identical seeds")
		}
	}
	for i, v := range a.X.Data() {
		if v != b.X.Data()[i] {
			t.Fatal("features differ between identical seeds")
		}
	}
	c := SMNIST(100, 8)
	same := true
	for i, v := range a.X.Data() {
		if v != c.X.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateClassBalance(t *testing.T) {
	ds := SCIFAR(1000, 3)
	counts := ds.ClassCounts()
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d has %d samples, want 100", c, n)
		}
	}
	if got := len(ds.ClassSet()); got != 10 {
		t.Fatalf("ClassSet size %d, want 10", got)
	}
}

func TestSubsetAndBatch(t *testing.T) {
	ds := SMNIST(50, 1)
	sub := ds.Subset([]int{0, 2, 4})
	if sub.Len() != 3 {
		t.Fatalf("subset len %d", sub.Len())
	}
	for i, idx := range []int{0, 2, 4} {
		if sub.Labels[i] != ds.Labels[idx] {
			t.Fatal("subset labels wrong")
		}
	}
	x, y := ds.Batch(10, 15)
	if x.Dim(0) != 5 || len(y) != 5 {
		t.Fatalf("batch shape %v len %d", x.Shape(), len(y))
	}
	// Batch shares storage with the dataset.
	orig := ds.X.At(10, 0, 0, 0)
	x.Set(orig+1, 0, 0, 0, 0)
	if ds.X.At(10, 0, 0, 0) != orig+1 {
		t.Fatal("Batch must not copy")
	}
}

func TestSubsetPanicsOutOfRange(t *testing.T) {
	ds := SMNIST(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ds.Subset([]int{10})
}

func TestShufflePreservesPairs(t *testing.T) {
	ds := SMNIST(60, 2)
	// Record a fingerprint per label before shuffling.
	sum := func(d *Dataset, i int) float64 {
		x, _ := d.Batch(i, i+1)
		return x.Sum()
	}
	type pair struct {
		label int
		sum   float64
	}
	before := make(map[pair]int)
	for i := 0; i < ds.Len(); i++ {
		before[pair{ds.Labels[i], math.Round(sum(ds, i) * 1e6)}]++
	}
	ds.Shuffle(rand.New(rand.NewSource(5)))
	after := make(map[pair]int)
	for i := 0; i < ds.Len(); i++ {
		after[pair{ds.Labels[i], math.Round(sum(ds, i) * 1e6)}]++
	}
	if len(before) != len(after) {
		t.Fatal("shuffle changed the sample set")
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatal("shuffle broke feature/label pairing")
		}
	}
}

func TestConcat(t *testing.T) {
	a := SMNIST(10, 1)
	b := SMNIST(20, 2)
	c := Concat(a, b)
	if c.Len() != 30 {
		t.Fatalf("concat len %d", c.Len())
	}
	if c.Labels[10] != b.Labels[0] {
		t.Fatal("concat label order wrong")
	}
}

func TestIIDEqualPartition(t *testing.T) {
	ds := SMNIST(1000, 4)
	rng := rand.New(rand.NewSource(1))
	part := IIDEqual(ds, 10, rng)
	if len(part) != 10 {
		t.Fatalf("%d partitions", len(part))
	}
	if part.Total() != 1000 {
		t.Fatalf("total %d, want 1000", part.Total())
	}
	seen := make(map[int]bool)
	for _, idx := range part {
		if len(idx) != 100 {
			t.Fatalf("unequal partition: %v", part.Sizes())
		}
		for _, i := range idx {
			if seen[i] {
				t.Fatal("duplicate index across partitions")
			}
			seen[i] = true
		}
	}
	// Stratification: each user's class ratio near-uniform.
	for u, d := range part.Materialize(ds) {
		for c, n := range d.ClassCounts() {
			if n < 8 || n > 12 {
				t.Fatalf("user %d class %d count %d not ≈10", u, c, n)
			}
		}
	}
}

func TestIIDSizesRespectsSizesAndIIDness(t *testing.T) {
	ds := SCIFAR(600, 5)
	rng := rand.New(rand.NewSource(2))
	sizes := []int{300, 200, 100}
	part := IIDSizes(ds, sizes, rng)
	got := part.Sizes()
	for i := range sizes {
		if got[i] != sizes[i] {
			t.Fatalf("sizes %v, want %v", got, sizes)
		}
	}
	// Even the small partition stays class-balanced (IID despite imbalance).
	small := ds.Subset(part[2])
	for c, n := range small.ClassCounts() {
		if n == 0 {
			t.Fatalf("class %d missing from small IID partition", c)
		}
	}
}

func TestIIDSizesPanicsWhenOversubscribed(t *testing.T) {
	ds := SMNIST(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	IIDSizes(ds, []int{8, 8}, rand.New(rand.NewSource(1)))
}

func TestGaussianSizesSumAndRatio(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ratio := rng.Float64() * 0.9
		sizes := GaussianSizes(rng, 20, 3000, ratio)
		total := 0
		for _, s := range sizes {
			if s < 1 {
				return false
			}
			total += s
		}
		return total == 3000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	// Larger requested ratio should produce a larger empirical ratio.
	rng := rand.New(rand.NewSource(9))
	low := ImbalanceRatio(GaussianSizes(rng, 50, 10000, 0.05))
	high := ImbalanceRatio(GaussianSizes(rng, 50, 10000, 0.8))
	if low >= high {
		t.Fatalf("imbalance not monotone: low %v high %v", low, high)
	}
}

func TestImbalanceRatio(t *testing.T) {
	if r := ImbalanceRatio([]int{10, 10, 10}); r != 0 {
		t.Fatalf("uniform ratio %v, want 0", r)
	}
	if r := ImbalanceRatio(nil); r != 0 {
		t.Fatalf("empty ratio %v", r)
	}
	r := ImbalanceRatio([]int{5, 15})
	if math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("ratio %v, want 0.5", r)
	}
}

func TestNClassPartition(t *testing.T) {
	ds := SMNIST(2000, 6)
	rng := rand.New(rand.NewSource(3))
	part := NClass(ds, NClassConfig{Users: 5, ClassesPerUser: 3, SizeStd: 0.2}, rng)
	sets := part.ClassSets(ds)
	for u, set := range sets {
		if len(set) > 3 {
			t.Fatalf("user %d has %d classes, want ≤3", u, len(set))
		}
		if len(part[u]) == 0 {
			t.Fatalf("user %d got no samples", u)
		}
	}
	// No duplicate assignment.
	seen := make(map[int]bool)
	for _, idx := range part {
		for _, i := range idx {
			if seen[i] {
				t.Fatal("duplicate sample across users")
			}
			seen[i] = true
		}
	}
}

func TestByClassSetsRestriction(t *testing.T) {
	ds := SCIFAR(500, 7)
	rng := rand.New(rand.NewSource(4))
	classSets := [][]int{{0, 1}, {5}, {}}
	part := ByClassSets(ds, classSets, []int{60, 40, 10}, rng)
	for u, idx := range part {
		allowed := make(map[int]bool)
		for _, c := range classSets[u] {
			allowed[c] = true
		}
		for _, i := range idx {
			if !allowed[ds.Labels[i]] {
				t.Fatalf("user %d holds forbidden class %d", u, ds.Labels[i])
			}
		}
	}
	if len(part[2]) != 0 {
		t.Fatal("empty class set must yield empty partition")
	}
	if len(part[0]) != 60 || len(part[1]) != 40 {
		t.Fatalf("sizes %v", part.Sizes())
	}
}

func TestByClassSetsExhaustion(t *testing.T) {
	ds := SMNIST(100, 8) // 10 per class
	rng := rand.New(rand.NewSource(5))
	part := ByClassSets(ds, [][]int{{0}}, []int{50}, rng)
	if len(part[0]) != 10 {
		t.Fatalf("expected pool-limited 10 samples, got %d", len(part[0]))
	}
}

func TestOutlierScenario(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, mode := range []OutlierMode{OutlierMissing, OutlierSeparate, OutlierMerge} {
		sets := OutlierScenario(10, mode, rand.New(rand.NewSource(6)))
		cover := make(map[int]bool)
		for _, s := range sets {
			for _, c := range s {
				cover[c] = true
			}
		}
		switch mode {
		case OutlierMissing:
			if len(sets) != 3 || len(cover) != 9 {
				t.Fatalf("Missing: %d users cover %d classes", len(sets), len(cover))
			}
		case OutlierSeparate:
			if len(sets) != 4 || len(cover) != 10 || len(sets[3]) != 1 {
				t.Fatalf("Separate: %v", sets)
			}
		case OutlierMerge:
			if len(sets) != 3 || len(cover) != 10 || len(sets[2]) != 4 {
				t.Fatalf("Merge: %v", sets)
			}
		}
	}
	_ = rng
	if OutlierMissing.String() != "Missing" || OutlierMode(9).String() == "" {
		t.Fatal("String() broken")
	}
}

func TestTrainTestSharePrototypes(t *testing.T) {
	// A classifier trained on train must beat chance on test; a cheap proxy:
	// the nearest-class-mean classifier transfers across the split.
	cfg := SMNISTConfig(0, 42)
	train, test := TrainTest(cfg, 500, 200)
	sz := train.SampleSize()
	means := make([][]float64, train.Classes)
	counts := make([]int, train.Classes)
	for i := range means {
		means[i] = make([]float64, sz)
	}
	xd := train.X.Data()
	for i, y := range train.Labels {
		counts[y]++
		for j := 0; j < sz; j++ {
			means[y][j] += xd[i*sz+j]
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	td := test.X.Data()
	for i, y := range test.Labels {
		best, bestD := -1, math.Inf(1)
		for c := range means {
			d := 0.0
			for j := 0; j < sz; j++ {
				diff := td[i*sz+j] - means[c][j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best == y {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.8 {
		t.Fatalf("nearest-mean transfer accuracy %.2f, want ≥0.8 (prototypes not shared?)", acc)
	}
}

func TestSCIFARHarderThanSMNIST(t *testing.T) {
	// The CIFAR stand-in must be harder: nearest-mean accuracy lower than
	// on the MNIST stand-in.
	nearestMeanAcc := func(train, test *Dataset) float64 {
		sz := train.SampleSize()
		means := make([][]float64, train.Classes)
		counts := make([]int, train.Classes)
		for i := range means {
			means[i] = make([]float64, sz)
		}
		xd := train.X.Data()
		for i, y := range train.Labels {
			counts[y]++
			for j := 0; j < sz; j++ {
				means[y][j] += xd[i*sz+j]
			}
		}
		for c := range means {
			if counts[c] == 0 {
				continue
			}
			for j := range means[c] {
				means[c][j] /= float64(counts[c])
			}
		}
		correct := 0
		td := test.X.Data()
		for i, y := range test.Labels {
			best, bestD := -1, math.Inf(1)
			for c := range means {
				d := 0.0
				for j := 0; j < sz; j++ {
					diff := td[i*sz+j] - means[c][j]
					d += diff * diff
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			if best == y {
				correct++
			}
		}
		return float64(correct) / float64(test.Len())
	}
	mTrain, mTest := TrainTest(SMNISTConfig(0, 11), 500, 300)
	cTrain, cTest := TrainTest(SCIFARConfig(0, 11), 500, 300)
	mAcc := nearestMeanAcc(mTrain, mTest)
	cAcc := nearestMeanAcc(cTrain, cTest)
	if cAcc >= mAcc {
		t.Fatalf("SCIFAR (%.2f) should be harder than SMNIST (%.2f)", cAcc, mAcc)
	}
	if cAcc < 0.2 {
		t.Fatalf("SCIFAR accuracy %.2f — too hard to be learnable", cAcc)
	}
}
