package data

import (
	"math"
	"math/rand"

	"fedsched/internal/tensor"
)

// Synthetic dataset generators. Real MNIST/CIFAR10 cannot be downloaded in
// an offline module, so we substitute deterministic class-structured image
// distributions (documented in DESIGN.md §2):
//
//   - SMNIST: 16×16×1, well-separated smooth class prototypes with mild
//     noise and jitter. Small CNNs reach high (≳0.95) accuracy — it plays
//     the role of MNIST ("easy" dataset).
//   - SCIFAR: 16×16×3, class prototypes that share a common background
//     component and stronger per-sample noise/occlusion, so classes
//     overlap. Small CNNs plateau well below 1.0 — it plays the role of
//     CIFAR10 ("hard" dataset).
//
// Both are generated from explicit seeds, so every experiment is
// reproducible bit-for-bit.

// GenConfig controls synthetic dataset generation.
type GenConfig struct {
	Name     string
	N        int // number of samples
	C, H, W  int
	Classes  int
	Seed     int64
	Noise    float64 // additive Gaussian noise std
	Shared   float64 // weight of the class-shared background component
	Jitter   int     // max translation in pixels
	Occlude  float64 // probability of a random occlusion patch per sample
	ProtoAmp float64 // prototype amplitude
	Blobs    int     // Gaussian blobs per class prototype
}

// SMNISTConfig returns the standard configuration for the MNIST stand-in.
func SMNISTConfig(n int, seed int64) GenConfig {
	return GenConfig{
		Name: "SMNIST", N: n, C: 1, H: 16, W: 16, Classes: 10, Seed: seed,
		Noise: 0.25, Shared: 0, Jitter: 1, Occlude: 0, ProtoAmp: 1.0, Blobs: 3,
	}
}

// SCIFARConfig returns the standard configuration for the CIFAR10 stand-in.
func SCIFARConfig(n int, seed int64) GenConfig {
	return GenConfig{
		Name: "SCIFAR", N: n, C: 3, H: 16, W: 16, Classes: 10, Seed: seed,
		Noise: 0.6, Shared: 0.7, Jitter: 2, Occlude: 0.3, ProtoAmp: 0.8, Blobs: 4,
	}
}

// SMNIST generates n samples of the MNIST stand-in with the given seed.
func SMNIST(n int, seed int64) *Dataset { return Generate(SMNISTConfig(n, seed)) }

// SCIFAR generates n samples of the CIFAR10 stand-in with the given seed.
func SCIFAR(n int, seed int64) *Dataset { return Generate(SCIFARConfig(n, seed)) }

// prototypes builds one smooth per-class pattern per (class, channel); the
// prototype RNG depends only on cfg.Seed so train/test splits generated
// with different sample seeds share the same class structure when callers
// derive both from one base seed.
func prototypes(cfg GenConfig) [][]float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sz := cfg.C * cfg.H * cfg.W
	// Shared background component (SCIFAR): all classes sit on it, which
	// makes them overlap the way natural-image classes do.
	shared := make([]float64, sz)
	fillBlobs(rng, shared, cfg.C, cfg.H, cfg.W, cfg.Blobs, cfg.ProtoAmp)

	protos := make([][]float64, cfg.Classes)
	for k := range protos {
		p := make([]float64, sz)
		fillBlobs(rng, p, cfg.C, cfg.H, cfg.W, cfg.Blobs, cfg.ProtoAmp)
		for i := range p {
			p[i] = cfg.Shared*shared[i] + (1-cfg.Shared)*p[i]*2
		}
		protos[k] = p
	}
	return protos
}

// fillBlobs adds a few randomly-placed 2-D Gaussian bumps per channel.
func fillBlobs(rng *rand.Rand, dst []float64, c, h, w, blobs int, amp float64) {
	for ch := 0; ch < c; ch++ {
		for b := 0; b < blobs; b++ {
			cy := rng.Float64() * float64(h)
			cx := rng.Float64() * float64(w)
			sigma := 1.5 + rng.Float64()*2.5
			a := amp * (0.5 + rng.Float64())
			if rng.Intn(2) == 0 {
				a = -a
			}
			inv := 1 / (2 * sigma * sigma)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					dy, dx := float64(y)-cy, float64(x)-cx
					dst[(ch*h+y)*w+x] += a * math.Exp(-(dy*dy+dx*dx)*inv)
				}
			}
		}
	}
}

// Generate produces a synthetic dataset per cfg. Samples are evenly spread
// over classes (n mod classes extra samples go to the lowest classes).
func Generate(cfg GenConfig) *Dataset {
	protos := prototypes(cfg)
	// Sample RNG differs from the prototype RNG so that two datasets with
	// the same Seed but different N still share class structure.
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(cfg.N)))
	ds := &Dataset{
		Name: cfg.Name, C: cfg.C, H: cfg.H, W: cfg.W, Classes: cfg.Classes,
		X:      tensor.New(cfg.N, cfg.C, cfg.H, cfg.W),
		Labels: make([]int, cfg.N),
	}
	sz := cfg.C * cfg.H * cfg.W
	xd := ds.X.Data()
	for i := 0; i < cfg.N; i++ {
		k := i % cfg.Classes
		ds.Labels[i] = k
		out := xd[i*sz : (i+1)*sz]
		dy := 0
		dx := 0
		if cfg.Jitter > 0 {
			dy = rng.Intn(2*cfg.Jitter+1) - cfg.Jitter
			dx = rng.Intn(2*cfg.Jitter+1) - cfg.Jitter
		}
		gain := 1 + 0.1*rng.NormFloat64()
		proto := protos[k]
		for ch := 0; ch < cfg.C; ch++ {
			for y := 0; y < cfg.H; y++ {
				sy := y + dy
				for x := 0; x < cfg.W; x++ {
					sx := x + dx
					v := 0.0
					if sy >= 0 && sy < cfg.H && sx >= 0 && sx < cfg.W {
						v = proto[(ch*cfg.H+sy)*cfg.W+sx]
					}
					out[(ch*cfg.H+y)*cfg.W+x] = gain*v + cfg.Noise*rng.NormFloat64()
				}
			}
		}
		if cfg.Occlude > 0 && rng.Float64() < cfg.Occlude {
			oy, ox := rng.Intn(cfg.H-4), rng.Intn(cfg.W-4)
			for ch := 0; ch < cfg.C; ch++ {
				for y := oy; y < oy+4; y++ {
					for x := ox; x < ox+4; x++ {
						out[(ch*cfg.H+y)*cfg.W+x] = 0
					}
				}
			}
		}
	}
	// A global shuffle so class labels are not periodic in index order.
	ds.Shuffle(rng)
	return ds
}

// TrainTest generates a train/test pair with shared class prototypes and
// disjoint sample randomness.
func TrainTest(cfg GenConfig, trainN, testN int) (train, test *Dataset) {
	c1 := cfg
	c1.N = trainN
	train = Generate(c1)
	c2 := cfg
	c2.N = testN
	test = Generate(c2)
	return train, test
}
