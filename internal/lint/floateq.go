package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != where either operand is a floating-point (or
// complex) value, outside _test.go files. Exact float comparison is
// almost always a rounding-error bug in scheduling/cost code; the few
// legitimate uses — exact-zero sparsity sentinels in the naive GEMM
// kernels, NaN probes — carry //fedlint:allow floateq directives so each
// one is an audited, visible decision rather than an accident.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact ==/!= on floating-point operands outside tests",
	Run:  runFloatEq,
}

func runFloatEq(p *Package) []Diagnostic {
	r := &reporter{p: p, check: "floateq"}
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if p.isFloatOperand(be.X) || p.isFloatOperand(be.Y) {
				r.reportf(be.OpPos, "%s compares floating-point values exactly; use a tolerance (math.Abs(a-b) <= eps) or restructure the test", be.Op)
			}
			return true
		})
	}
	return r.done()
}

// isFloatOperand reports whether the expression has floating-point or
// complex type. Untyped constants that would default to float (1.5) are
// caught through the other operand's materialized type.
func (p *Package) isFloatOperand(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
