package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetFlow is the interprocedural determinism-taint pass. Functions whose
// doc comment carries `// fedlint:deterministic` are roots of a
// bit-reproducibility contract: everything they statically reach — in
// any package of the module — must be free of ambient nondeterminism.
// The walk reports four source shapes at the line where the source
// lives, with the call path back to the root that reached it:
//
//   - calls to the global math/rand convenience functions,
//   - time.Now outside benchmark functions,
//   - order-sensitive folds over map iteration (the nondet pass's rules,
//     applied wherever a deterministic root can reach),
//   - goroutines spawned inside a function with no visible join (no
//     WaitGroup.Wait, channel receive, or channel range anywhere in the
//     declaration): whatever such a goroutine writes races the caller's
//     reads, so even seeded work diverges run to run.
//
// Sanitizers: a callee documented `// fedlint:detsafe` is an audited
// boundary — the walk does not enter it — and a call site carrying
// //fedlint:allow detflow does not propagate taint. A source line can
// also be suppressed directly where it occurs.
var DetFlow = &ProgramAnalyzer{
	Name: "detflow",
	Doc:  "nondeterminism sources reachable from // fedlint:deterministic roots across the whole program",
	Run:  runDetFlow,
}

func runDetFlow(pr *Program) []Diagnostic {
	r := &progReporter{pr: pr, check: "detflow"}
	roots := pr.rootsWith(detMarker)
	reached := pr.flood(roots, "detflow", func(pf *ProgFunc) bool {
		return declMarker(pf.Decl, detSafeMarker)
	})
	for _, key := range sortedReach(reached) {
		node := reached[key]
		pf := pr.Funcs[key]
		for _, src := range pr.detSources(pf) {
			r.reportf(pf.Pkg, src.pos, "%s is reachable from deterministic root %s (path: %s); %s",
				src.what, pr.pathFrom(rootNode(node)), pr.pathFrom(node), src.fix)
		}
	}
	return r.done()
}

// rootNode walks a reach chain back to its root.
func rootNode(n *reachNode) *reachNode {
	for n.parent != nil {
		n = n.parent
	}
	return n
}

// detSource is one nondeterminism source inside a function body.
type detSource struct {
	pos  token.Pos
	what string
	fix  string
}

// detSources scans one function declaration for the four source shapes.
func (pr *Program) detSources(pf *ProgFunc) []detSource {
	p, fd := pf.Pkg, pf.Decl
	inBenchmark := strings.HasPrefix(fd.Name.Name, "Benchmark") && p.isTestFile(fd.Pos())
	var srcs []detSource
	var goPos []token.Pos
	joined := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, what := p.nonDetCallSource(n, inBenchmark); what != "" {
				srcs = append(srcs, detSource{n.Pos(), what, "thread seeded state from Config.Seed / the simulated clock instead"})
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				joined = true // WaitGroup.Wait (or any explicit join point)
			}
		case *ast.RangeStmt:
			if what := p.mapRangeSource(n); what != "" {
				srcs = append(srcs, detSource{n.Pos(), "order-sensitive map iteration (" + what + ")", "collect and sort the keys, then iterate the sorted slice"})
			}
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					joined = true
				}
			}
		case *ast.GoStmt:
			goPos = append(goPos, n.Pos())
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				joined = true
			}
		}
		return true
	})
	if !joined {
		for _, pos := range goPos {
			srcs = append(srcs, detSource{pos, "goroutine with no visible join in the enclosing function", "join (WaitGroup.Wait or a channel receive) before returning, then reduce in a deterministic order"})
		}
	}
	return srcs
}
