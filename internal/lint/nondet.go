package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NonDet flags the three ambient-state leaks that break the engines'
// bit-identical-run guarantee inside the determinism-critical packages:
//
//   - calls to the top-level math/rand convenience functions (rand.Intn,
//     rand.Float64, …), which draw from the shared global source instead
//     of a *rand.Rand threaded from Config.Seed;
//   - calls to time.Now outside benchmark functions — wall clocks feed
//     timestamps into results that then differ run to run (simulated
//     time comes from the device/network models instead);
//   - range statements over maps whose body is order-sensitive (appends,
//     floating-point or string accumulation, channel sends) without the
//     sorted-keys idiom: map iteration order is deliberately randomized
//     by the runtime, so any order-dependent fold over it diverges
//     between runs.
//
// The sole-statement key-collection loop (`for k := range m { keys =
// append(keys, k) }`) is recognized as the first half of the sorted-keys
// idiom and never flagged.
var NonDet = &Analyzer{
	Name: "nondet",
	Doc:  "global math/rand, time.Now, and order-sensitive map iteration in determinism-critical packages",
	Run:  runNonDet,
}

// globalRandFuncs are the math/rand (and math/rand/v2) top-level
// functions that consult process-global state. Constructors (New,
// NewSource, NewPCG, …) are fine: they are how the seeded generator the
// codebase threads around gets built.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "N": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true,
}

func runNonDet(p *Package) []Diagnostic {
	r := &reporter{p: p, check: "nondet"}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			inBenchmark := isFunc && strings.HasPrefix(fd.Name.Name, "Benchmark") && p.isTestFile(fd.Pos())
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					p.checkNonDetCall(r, n, inBenchmark)
				case *ast.RangeStmt:
					p.checkMapRange(r, n)
				}
				return true
			})
		}
	}
	return r.done()
}

func (p *Package) checkNonDetCall(r *reporter, call *ast.CallExpr, inBenchmark bool) {
	switch kind, _ := p.nonDetCallSource(call, inBenchmark); kind {
	case "rand":
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		pn := p.pkgNameOf(sel.X.(*ast.Ident))
		r.reportf(call.Pos(), "call to global %s.%s draws from the shared process-wide source; thread a seeded *rand.Rand (from Config.Seed) instead",
			pn.Imported().Name(), sel.Sel.Name)
	case "time":
		r.reportf(call.Pos(), "time.Now in a determinism-critical package; simulated time must come from the device/network models, wall clocks only belong in benchmarks")
	}
}

// nonDetCallSource classifies a call as an ambient-nondeterminism source
// — shared by the per-package nondet pass and the interprocedural
// detflow taint walk. kind is "rand" or "time" ("" when the call is
// clean); what is a short human description of the source.
func (p *Package) nonDetCallSource(call *ast.CallExpr, inBenchmark bool) (kind, what string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn := p.pkgNameOf(id)
	if pn == nil {
		return "", ""
	}
	switch pn.Imported().Path() {
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[sel.Sel.Name] {
			return "rand", "global " + pn.Imported().Name() + "." + sel.Sel.Name
		}
	case "time":
		if sel.Sel.Name == "Now" && !inBenchmark {
			return "time", "time.Now"
		}
	}
	return "", ""
}

// checkMapRange flags order-sensitive folds over map iteration.
func (p *Package) checkMapRange(r *reporter, rng *ast.RangeStmt) {
	if what := p.mapRangeSource(rng); what != "" {
		r.reportf(rng.Pos(), "range over map %s has an order-sensitive body (%s); collect and sort the keys, then iterate the sorted slice",
			exprString(rng.X), what)
	}
}

// mapRangeSource reports a non-empty description when rng is a range
// over a map whose body is order-sensitive and not the audited
// key-collection idiom — shared by nondet and detflow.
func (p *Package) mapRangeSource(rng *ast.RangeStmt) string {
	t := p.Info.TypeOf(rng.X)
	if t == nil {
		return ""
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return ""
	}
	if p.isKeyCollection(rng) {
		return ""
	}
	return p.orderSensitive(rng)
}

// isKeyCollection recognizes the first half of the sorted-keys idiom: a
// body whose only statement appends the range key (or value) to a slice.
func (p *Package) isKeyCollection(rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || !p.isBuiltin(call, "append") || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok {
		return false
	}
	for _, v := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := v.(*ast.Ident); ok && p.Info.ObjectOf(id) == p.Info.ObjectOf(arg) {
			return true
		}
	}
	return false
}

// orderSensitive scans a map-range body for operations whose result
// depends on iteration order, returning a short description of the first
// hit ("" when the body is order-insensitive).
func (p *Package) orderSensitive(rng *ast.RangeStmt) string {
	body := rng.Body
	var what string
	ast.Inspect(body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			what = "channel send"
		case *ast.CallExpr:
			if p.isBuiltin(n, "append") {
				what = "append"
			}
		case *ast.AssignStmt:
			if what == "" {
				what = p.orderSensitiveAssign(n, body)
			}
		}
		return what == ""
	})
	return what
}

// orderSensitiveAssign reports op-assignments (+=, *=, …) that fold into
// a float, complex or string accumulator declared outside the loop body.
// Integer folds with commutative operators are order-insensitive and
// stay legal.
func (p *Package) orderSensitiveAssign(asg *ast.AssignStmt, body *ast.BlockStmt) string {
	switch asg.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return ""
	}
	for _, lhs := range asg.Lhs {
		t := p.Info.TypeOf(lhs)
		if t == nil {
			continue
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok || b.Info()&(types.IsFloat|types.IsComplex|types.IsString) == 0 {
			continue
		}
		// An accumulator scoped to one iteration cannot observe order.
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := p.Info.ObjectOf(id); obj != nil && obj.Pos() >= body.Pos() && obj.Pos() < body.End() {
				continue
			}
		}
		return "accumulation into " + exprString(lhs)
	}
	return ""
}
