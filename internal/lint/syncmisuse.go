package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SyncMisuse flags the two synchronization mistakes that have bitten (or
// nearly bitten) the worker pools:
//
//   - wg.Add called inside the goroutine it accounts for: the spawner
//     can reach wg.Wait before the goroutine is scheduled, so Wait
//     returns early and the reduction reads half-finished state. Add
//     must happen on the spawning side, before the go statement.
//   - by-value copies of structs that (transitively) contain a sync
//     primitive (Mutex, RWMutex, WaitGroup, Once, Cond, Pool, Map or a
//     sync/atomic type): the copy has its own lock state, silently
//     splitting critical sections. Flagged at value receivers, value
//     parameters/results, plain-copy assignments, and range-value
//     copies. (Channels — including the tensor lane semaphore — are
//     reference types and copy safely.)
var SyncMisuse = &Analyzer{
	Name: "syncmisuse",
	Doc:  "wg.Add inside the spawned goroutine; by-value copies of lock-holding structs",
	Run:  runSyncMisuse,
}

func runSyncMisuse(p *Package) []Diagnostic {
	r := &reporter{p: p, check: "syncmisuse"}
	lc := newLockCache()
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.checkGoAdd(r, n)
			case *ast.FuncDecl:
				p.checkFuncCopies(r, lc, n.Recv, n.Type)
			case *ast.FuncLit:
				p.checkFuncCopies(r, lc, nil, n.Type)
			case *ast.AssignStmt:
				p.checkAssignCopies(r, lc, n)
			case *ast.ValueSpec:
				for _, v := range n.Values {
					p.checkCopyExpr(r, lc, v, "assignment")
				}
			case *ast.RangeStmt:
				p.checkRangeCopies(r, lc, n)
			}
			return true
		})
	}
	return r.done()
}

// checkGoAdd walks a go statement's function literal for Add calls on a
// WaitGroup that lives outside the goroutine.
func (p *Package) checkGoAdd(r *reporter, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.GoStmt); ok && inner != g {
			// A nested spawn gets its own top-level visit.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if !isWaitGroup(p.Info.TypeOf(sel.X)) {
			return true
		}
		// An Add on a WaitGroup declared inside this goroutine is a
		// fresh, correctly scoped pool — only outer WaitGroups race.
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj := p.Info.ObjectOf(id); obj != nil && obj.Pos() >= lit.Body.Pos() && obj.Pos() < lit.Body.End() {
				return true
			}
		}
		r.reportf(call.Pos(), "%s.Add inside the spawned goroutine races the spawner's Wait; call Add before the go statement", exprString(sel.X))
		return true
	})
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// checkFuncCopies flags value receivers, parameters and results whose
// type holds a lock.
func (p *Package) checkFuncCopies(r *reporter, lc *lockCache, recv *ast.FieldList, ftype *ast.FuncType) {
	report := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.Info.TypeOf(field.Type)
			if holder := lc.holds(t); holder != "" {
				r.reportf(field.Type.Pos(), "%s %s is passed by value but contains %s; use a pointer", kind, exprString(field.Type), holder)
			}
		}
	}
	report(recv, "receiver")
	report(ftype.Params, "parameter")
	report(ftype.Results, "result")
}

// checkAssignCopies flags `a = b` / `a := b` where b is an existing
// value (identifier, selector, index or dereference) of a lock-holding
// type. Constructing in place — composite literals, function calls — is
// the legal way to create such values and is not flagged.
func (p *Package) checkAssignCopies(r *reporter, lc *lockCache, asg *ast.AssignStmt) {
	if asg.Tok != token.ASSIGN && asg.Tok != token.DEFINE {
		return
	}
	for i, rhs := range asg.Rhs {
		// `_ = v` discards the copy instead of retaining it; only copies
		// bound to a name split lock state.
		if len(asg.Lhs) == len(asg.Rhs) {
			if id, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
				continue
			}
		}
		p.checkCopyExpr(r, lc, rhs, "assignment")
	}
}

func (p *Package) checkCopyExpr(r *reporter, lc *lockCache, e ast.Expr, kind string) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := p.Info.TypeOf(e)
	if holder := lc.holds(t); holder != "" {
		r.reportf(e.Pos(), "%s copies %s by value but it contains %s; use a pointer", kind, exprString(e), holder)
	}
}

// checkRangeCopies flags `for _, v := range xs` where v copies a
// lock-holding element.
func (p *Package) checkRangeCopies(r *reporter, lc *lockCache, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	t := p.Info.TypeOf(rng.Value)
	if holder := lc.holds(t); holder != "" {
		r.reportf(rng.Value.Pos(), "range value %s copies an element that contains %s; range over indices or pointers", exprString(rng.Value), holder)
	}
}

// lockCache memoizes the "does this type transitively contain a sync
// primitive" query, with cycle protection for recursive types.
type lockCache struct {
	result  map[types.Type]string // finished answers ("" = copies safely)
	walking map[types.Type]bool   // cycle guard for the traversal in flight
}

func newLockCache() *lockCache {
	return &lockCache{result: make(map[types.Type]string), walking: make(map[types.Type]bool)}
}

// holds returns the name of a sync primitive contained (transitively,
// by value) in t, or "" when t copies safely.
func (lc *lockCache) holds(t types.Type) string {
	if t == nil {
		return ""
	}
	if name, ok := lc.result[t]; ok {
		return name
	}
	if name := syncPrimitive(t); name != "" {
		lc.result[t] = name
		return name
	}
	if lc.walking[t] {
		return ""
	}
	lc.walking[t] = true
	name := ""
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name = lc.holds(u.Field(i).Type()); name != "" {
				break
			}
		}
	case *types.Array:
		name = lc.holds(u.Elem())
	}
	delete(lc.walking, t)
	lc.result[t] = name
	return name
}

// syncPrimitive reports whether t itself is a lock-like type from sync
// or sync/atomic.
func syncPrimitive(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "sync":
		switch obj.Name() {
		case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
			return "sync." + obj.Name()
		}
	case "sync/atomic":
		switch obj.Name() {
		case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
			return "atomic." + obj.Name()
		}
	}
	return ""
}
