package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixturePasses maps each fixture package under testdata/src to the
// per-package analyzer it exercises.
var fixturePasses = map[string]*Analyzer{
	"nondet":     NonDet,
	"hotalloc":   HotAlloc,
	"floateq":    FloatEq,
	"syncmisuse": SyncMisuse,
}

// fixtureProgramPasses maps each whole-program fixture to its analyzer
// and the packages built into its Program; // want expectations are
// parsed from every listed package directory, so cross-package findings
// (detflowdep, hotallocdep) anchor in the file where they are reported.
var fixtureProgramPasses = map[string]struct {
	analyzer *ProgramAnalyzer
	pkgs     []string
}{
	"detflow":        {DetFlow, []string{"detflow", "detflowdep"}},
	"goroutinebound": {GoroutineBound, []string{"goroutinebound", "tensor"}},
	"floatorder":     {FloatOrder, []string{"floatorder"}},
	"tracecomplete":  {TraceComplete, []string{"tracecomplete", "trace"}},
	"hotallocx":      {HotAllocProg, []string{"hotallocx", "hotallocdep"}},
}

// fixtureLoader builds a loader whose Aux table maps every directory
// under testdata/src to its bare name, so fixtures import each other
// (and the tensor stub) with single-segment paths.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	base, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader("", base)
	l.IncludeTests = true
	l.Aux = make(map[string]string)
	for _, e := range entries {
		if e.IsDir() {
			l.Aux[e.Name()] = filepath.Join(base, e.Name())
		}
	}
	return l
}

// wantRe matches an expectation comment; each backtick-quoted argument
// is a regexp the diagnostic message on that line must satisfy.
var (
	wantRe    = regexp.MustCompile("//\\s*want\\s+(.+)$")
	wantArgRe = regexp.MustCompile("`([^`]+)`")
)

type wantKey struct {
	file string // base name
	line int
}

// parseWants reads the // want annotations out of every fixture file in
// the given directories, keyed by file:line. At least one annotation
// must exist across the union (individual directories may have none —
// stubs shared between fixtures stay expectation-free).
func parseWants(t *testing.T, dirs ...string) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				args := wantArgRe.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: want comment with no backtick-quoted pattern", e.Name(), i+1)
				}
				key := wantKey{file: e.Name(), line: i + 1}
				for _, a := range args {
					re, err := regexp.Compile(a[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, a[1], err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no // want annotations found in %v", dirs)
	}
	return wants
}

// matchWants checks diagnostics against expectations exactly: every want
// must be matched by a diagnostic on its line, and every diagnostic must
// be claimed by a want.
func matchWants(t *testing.T, got []Diagnostic, wants map[wantKey][]*regexp.Regexp) {
	t.Helper()
	matched := make(map[string]bool)
	for _, d := range got {
		key := wantKey{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line}
		ok := false
		for i, re := range wants[key] {
			if re.MatchString(d.Message) {
				matched[fmt.Sprintf("%s:%d:%d", key.file, key.line, i)] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", key.file, key.line, d.Message)
		}
	}
	for key, res := range wants {
		for i, re := range res {
			if !matched[fmt.Sprintf("%s:%d:%d", key.file, key.line, i)] {
				t.Errorf("missing diagnostic at %s:%d matching %q", key.file, key.line, re)
			}
		}
	}
}

// TestFixtures runs each analyzer over its seeded fixture package and
// checks the diagnostics against the // want annotations exactly: every
// want must be matched by a diagnostic on its line, and every diagnostic
// must be claimed by a want.
func TestFixtures(t *testing.T) {
	l := fixtureLoader(t)
	names := make([]string, 0, len(fixturePasses))
	for name := range fixturePasses {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := fixturePasses[name]
		t.Run(name, func(t *testing.T) {
			pkg, err := l.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			got := a.Run(pkg)
			matchWants(t, got, parseWants(t, l.Aux[name]))
		})
	}
}

// TestProgramFixtures runs each whole-program analyzer over its fixture
// Program (target packages built into one call graph) and checks the
// findings against the // want annotations across all involved packages.
func TestProgramFixtures(t *testing.T) {
	names := make([]string, 0, len(fixtureProgramPasses))
	for name := range fixtureProgramPasses {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cfg := fixtureProgramPasses[name]
		t.Run(name, func(t *testing.T) {
			l := fixtureLoader(t)
			var pkgs []*Package
			var dirs []string
			for _, pn := range cfg.pkgs {
				pkg, err := l.Load(pn)
				if err != nil {
					t.Fatal(err)
				}
				pkgs = append(pkgs, pkg)
				dirs = append(dirs, l.Aux[pn])
			}
			got := cfg.analyzer.Run(BuildProgram(pkgs))
			matchWants(t, got, parseWants(t, dirs...))
		})
	}
}

// TestSuppressionIsPerCheck verifies an //fedlint:allow directive only
// silences the checks it names: the floateq fixture's allow lines do
// not hide nondet findings and vice versa.
func TestSuppressionIsPerCheck(t *testing.T) {
	l := fixtureLoader(t)
	pkg, err := l.Load("floateq")
	if err != nil {
		t.Fatal(err)
	}
	// zero() carries "//fedlint:allow floateq" on its comparison line.
	pos := findAllowLine(t, l.Aux["floateq"], "floateq.go", "fedlint:allow floateq")
	if !pkg.suppressed("floateq", pos) {
		t.Errorf("floateq not suppressed at %s:%d, want suppressed", pos.Filename, pos.Line)
	}
	if pkg.suppressed("nondet", pos) {
		t.Errorf("nondet suppressed at %s:%d by a floateq-only allow", pos.Filename, pos.Line)
	}
}

// findAllowLine returns the position of the first line of the fixture
// file containing the given directive text.
func findAllowLine(t *testing.T, dir, file, directive string) token.Position {
	t.Helper()
	path := filepath.Join(dir, file)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, directive) {
			return token.Position{Filename: path, Line: i + 1}
		}
	}
	t.Fatalf("no %q directive in %s", directive, path)
	return token.Position{}
}

// TestPackageDirs checks the ./... expansion finds real packages and
// skips testdata trees (the seeded fixtures must never reach the gate).
func TestPackageDirs(t *testing.T) {
	modPath, modDir, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := PackageDirs(modPath, modDir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("PackageDirs returned a testdata package: %s", d)
		}
		if d == modPath+"/internal/lint" {
			found = true
		}
	}
	if !found {
		t.Errorf("PackageDirs did not return %s/internal/lint; got %d packages", modPath, len(dirs))
	}
}

// TestRepoTreeClean locks the acceptance criterion in place: the
// per-package passes and the whole-program passes report nothing on the
// module that is not recorded in .fedlint-baseline.json. It mirrors the
// fedlint driver: every package (including external test packages like
// the root bench_test.go) loads into one Program; nondet applies only to
// the determinism-critical scope; program-mode hotalloc subsumes the
// per-package flood.
func TestRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	modPath, modDir, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := PackageDirs(modPath, modDir)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(modPath, modDir)
	l.IncludeTests = true
	var pkgs []*Package
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
		ext, err := l.LoadExternalTests(path)
		if err != nil {
			t.Fatalf("loading external tests of %s: %v", path, err)
		}
		if ext != nil {
			pkgs = append(pkgs, ext)
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range All() {
			if a.Name == "hotalloc" {
				continue // the program flood below subsumes it
			}
			if a.Name == "nondet" && !NonDetScope(pkg.Path, modPath) {
				continue
			}
			diags = append(diags, a.Run(pkg)...)
		}
	}
	for _, a := range AllProgram() {
		diags = append(diags, a.Run(BuildProgram(pkgs))...)
	}
	baseline, err := LoadBaseline(filepath.Join(modDir, ".fedlint-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := baseline.Filter(diags, modDir)
	for _, d := range fresh {
		t.Errorf("non-baselined finding: %s: %s: %s:%d: %s", d.Check, RelFile(d.Pos.Filename, modDir), filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
	}
}

// TestLoadExternalTests checks the second-pass loader actually picks up
// the root external test package (bench_test.go, package fedsched_test)
// — before LoadExternalTests existed those files were never analyzed —
// and returns nil for directories whose tests are in-package.
func TestLoadExternalTests(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the root package and its imports from source")
	}
	modPath, modDir, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(modPath, modDir)
	pkg, err := l.LoadExternalTests(modPath)
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatalf("LoadExternalTests(%s) = nil; bench_test.go declares package fedsched_test", modPath)
	}
	if got := pkg.Types.Name(); got != "fedsched_test" {
		t.Errorf("external test package name = %q, want fedsched_test", got)
	}
	if len(pkg.Files) == 0 {
		t.Error("external test package has no files")
	}
	none, err := l.LoadExternalTests(modPath + "/internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	if none != nil {
		t.Errorf("internal/lint has no external test package, got %v", none.Path)
	}
}

// TestBaselineRoundTrip covers the accepted-findings ledger: marshalled
// findings load back, match on check/file/message (not line), and a
// missing file behaves as an empty baseline.
func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "/mod/internal/fl/fl.go", Line: 30}, Check: "detflow", Message: "src reachable"},
		{Pos: token.Position{Filename: "/mod/internal/fl/fl.go", Line: 30}, Check: "detflow", Message: "src reachable"}, // dup collapses
		{Pos: token.Position{Filename: "/mod/cmd/x/main.go", Line: 9}, Check: "hotalloc", Message: "append grows"},
	}
	data, err := MarshalBaseline(diags, "/mod")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 2 {
		t.Fatalf("baseline has %d findings, want 2 (dup collapsed)", len(b.Findings))
	}
	if !b.Has("detflow", "internal/fl/fl.go", "src reachable") {
		t.Error("baseline misses a marshalled finding")
	}
	if b.Has("detflow", "internal/fl/fl.go", "different message") {
		t.Error("baseline matched a different message")
	}
	fresh, accepted := b.Filter(diags, "/mod")
	if len(fresh) != 0 || len(accepted) != 3 {
		t.Errorf("Filter = %d fresh, %d accepted; want 0, 3", len(fresh), len(accepted))
	}
	empty, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Has("detflow", "internal/fl/fl.go", "src reachable") {
		t.Error("missing baseline file must behave as empty")
	}
}
