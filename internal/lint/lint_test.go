package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixturePasses maps each fixture package under testdata/src to the
// analyzer it exercises.
var fixturePasses = map[string]*Analyzer{
	"nondet":     NonDet,
	"hotalloc":   HotAlloc,
	"floateq":    FloatEq,
	"syncmisuse": SyncMisuse,
}

// fixtureLoader builds a loader whose Aux table maps every directory
// under testdata/src to its bare name, so fixtures import each other
// (and the tensor stub) with single-segment paths.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	base, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader("", base)
	l.IncludeTests = true
	l.Aux = make(map[string]string)
	for _, e := range entries {
		if e.IsDir() {
			l.Aux[e.Name()] = filepath.Join(base, e.Name())
		}
	}
	return l
}

// wantRe matches an expectation comment; each backtick-quoted argument
// is a regexp the diagnostic message on that line must satisfy.
var (
	wantRe    = regexp.MustCompile("//\\s*want\\s+(.+)$")
	wantArgRe = regexp.MustCompile("`([^`]+)`")
)

type wantKey struct {
	file string // base name
	line int
}

// parseWants reads the // want annotations out of every fixture file in
// dir, keyed by file:line.
func parseWants(t *testing.T, dir string) map[wantKey][]*regexp.Regexp {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArgRe.FindAllStringSubmatch(m[1], -1)
			if len(args) == 0 {
				t.Fatalf("%s:%d: want comment with no backtick-quoted pattern", e.Name(), i+1)
			}
			key := wantKey{file: e.Name(), line: i + 1}
			for _, a := range args {
				re, err := regexp.Compile(a[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, a[1], err)
				}
				wants[key] = append(wants[key], re)
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no // want annotations found in %s", dir)
	}
	return wants
}

// TestFixtures runs each analyzer over its seeded fixture package and
// checks the diagnostics against the // want annotations exactly: every
// want must be matched by a diagnostic on its line, and every diagnostic
// must be claimed by a want.
func TestFixtures(t *testing.T) {
	l := fixtureLoader(t)
	names := make([]string, 0, len(fixturePasses))
	for name := range fixturePasses {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := fixturePasses[name]
		t.Run(name, func(t *testing.T) {
			pkg, err := l.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			got := a.Run(pkg)
			wants := parseWants(t, l.Aux[name])
			matched := make(map[string]bool)
			for _, d := range got {
				key := wantKey{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line}
				ok := false
				for i, re := range wants[key] {
					if re.MatchString(d.Message) {
						matched[fmt.Sprintf("%s:%d:%d", key.file, key.line, i)] = true
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("unexpected diagnostic at %s:%d: %s", key.file, key.line, d.Message)
				}
			}
			for key, res := range wants {
				for i, re := range res {
					if !matched[fmt.Sprintf("%s:%d:%d", key.file, key.line, i)] {
						t.Errorf("missing diagnostic at %s:%d matching %q", key.file, key.line, re)
					}
				}
			}
		})
	}
}

// TestSuppressionIsPerCheck verifies an //fedlint:allow directive only
// silences the checks it names: the floateq fixture's allow lines do
// not hide nondet findings and vice versa.
func TestSuppressionIsPerCheck(t *testing.T) {
	l := fixtureLoader(t)
	pkg, err := l.Load("floateq")
	if err != nil {
		t.Fatal(err)
	}
	// zero() carries "//fedlint:allow floateq" on its comparison line.
	pos := findAllowLine(t, l.Aux["floateq"], "floateq.go", "fedlint:allow floateq")
	if !pkg.suppressed("floateq", pos) {
		t.Errorf("floateq not suppressed at %s:%d, want suppressed", pos.Filename, pos.Line)
	}
	if pkg.suppressed("nondet", pos) {
		t.Errorf("nondet suppressed at %s:%d by a floateq-only allow", pos.Filename, pos.Line)
	}
}

// findAllowLine returns the position of the first line of the fixture
// file containing the given directive text.
func findAllowLine(t *testing.T, dir, file, directive string) token.Position {
	t.Helper()
	path := filepath.Join(dir, file)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, directive) {
			return token.Position{Filename: path, Line: i + 1}
		}
	}
	t.Fatalf("no %q directive in %s", directive, path)
	return token.Position{}
}

// TestPackageDirs checks the ./... expansion finds real packages and
// skips testdata trees (the seeded fixtures must never reach the gate).
func TestPackageDirs(t *testing.T) {
	modPath, modDir, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := PackageDirs(modPath, modDir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("PackageDirs returned a testdata package: %s", d)
		}
		if d == modPath+"/internal/lint" {
			found = true
		}
	}
	if !found {
		t.Errorf("PackageDirs did not return %s/internal/lint; got %d packages", modPath, len(dirs))
	}
}

// TestRepoTreeClean locks the acceptance criterion in place: all four
// passes report nothing on the repo's determinism-critical packages
// (the same set the fedlint driver applies nondet to). The full-module
// sweep runs in `make lint`; this guards the core from inside go test.
func TestRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a large part of the module from source")
	}
	modPath, modDir, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(modPath, modDir)
	l.IncludeTests = true
	for _, rel := range []string{"internal/tensor", "internal/nn", "internal/fl", "internal/sched", "internal/sim"} {
		pkg, err := l.Load(modPath + "/" + rel)
		if err != nil {
			t.Fatalf("loading %s: %v", rel, err)
		}
		for _, a := range All() {
			for _, d := range a.Run(pkg) {
				t.Errorf("%s: %s", rel, d)
			}
		}
	}
}
