package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Program is the whole-module view the interprocedural passes (detflow,
// goroutinebound, floatorder, tracecomplete, and the program extension
// of hotalloc) operate on: every loaded package plus a static call graph
// connecting their function declarations across package boundaries.
//
// Cross-package function identity is by key, not by *types.Func: a
// package type-checked as an analysis target (with its test files) and
// the same package type-checked as a dependency of another target are
// distinct *types.Package instances, so the graph is joined on the
// stable string key "path|receiver|name" instead (funcKey). Generic
// instantiations are folded to their origin declaration, matching the
// per-package calleeFunc behaviour.
//
// Calls through interface values and function values are not followed —
// the same static-only contract the per-package hotalloc pass documents.
// Concrete implementations therefore carry their own root annotations.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	Funcs    map[string]*ProgFunc

	keys []string // sorted Funcs keys, the deterministic iteration order
}

// ProgFunc is one function declaration in the program graph.
type ProgFunc struct {
	Key   string
	Pkg   *Package
	Decl  *ast.FuncDecl
	Fn    *types.Func
	Calls []CallSite // static call sites in source order
}

// CallSite is one statically resolved call edge.
type CallSite struct {
	Callee string // funcKey of the callee
	Pos    token.Pos
}

// String renders a function for diagnostics: pkgname.Func or
// pkgname.Recv.Method.
func (pf *ProgFunc) String() string {
	name := pf.Decl.Name.Name
	if r := recvTypeName(pf.Fn); r != "" {
		name = r + "." + name
	}
	return pf.Pkg.Types.Name() + "." + name
}

// ProgramAnalyzer is one named whole-program pass.
type ProgramAnalyzer struct {
	Name string
	Doc  string
	Run  func(pr *Program) []Diagnostic
}

// AllProgram returns the interprocedural analyzers in canonical order.
// HotAllocProg shares the per-package pass's name and suppression
// directive: in whole-program mode it subsumes the intra-package flood.
func AllProgram() []*ProgramAnalyzer {
	return []*ProgramAnalyzer{DetFlow, GoroutineBound, FloatOrder, TraceComplete, HotAllocProg}
}

// ProgramByName returns the program analyzer with the given name, or nil.
func ProgramByName(name string) *ProgramAnalyzer {
	for _, a := range AllProgram() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// BuildProgram indexes packages (which must share one FileSet — load
// them through a single Loader) into a call graph. When the same
// function key appears twice (a package loaded both as a target and as
// another target's dependency), the first occurrence wins, so pass
// target packages in preference order.
func BuildProgram(pkgs []*Package) *Program {
	pr := &Program{Funcs: make(map[string]*ProgFunc)}
	if len(pkgs) > 0 {
		pr.Fset = pkgs[0].Fset
	}
	for _, p := range pkgs {
		pr.Packages = append(pr.Packages, p)
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(fn)
				if _, dup := pr.Funcs[key]; dup {
					continue
				}
				pf := &ProgFunc{Key: key, Pkg: p, Decl: fd, Fn: fn}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := p.calleeFunc(call); callee != nil {
						pf.Calls = append(pf.Calls, CallSite{Callee: funcKey(callee), Pos: call.Pos()})
					}
					return true
				})
				pr.Funcs[key] = pf
			}
		}
	}
	pr.keys = make([]string, 0, len(pr.Funcs))
	for k := range pr.Funcs {
		pr.keys = append(pr.keys, k)
	}
	sort.Strings(pr.keys)
	return pr
}

// funcKey is the cross-package identity of a function: package path,
// receiver type name (generic origin, pointer-stripped) and name, joined
// with "|" (never legal in Go identifiers or import paths in this tree).
func funcKey(fn *types.Func) string {
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	return pkg + "|" + recvTypeName(fn) + "|" + fn.Name()
}

// recvTypeName returns the bare receiver type name of a method ("" for
// plain functions): *TensorOf[T] and TensorOf[float32] both map to
// "TensorOf".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// Root annotations of the interprocedural passes. Like fedlint:hotpath
// they are matched against the raw doc-comment lines, so both the spaced
// and the directive comment forms work.
const (
	detMarker       = "fedlint:deterministic" // root: all reachable code must be bit-reproducible
	detSafeMarker   = "fedlint:detsafe"       // sanitizer: audited boundary, taint does not cross
	detReduceMarker = "fedlint:detreduce"     // audited deterministic float reduction helper
	traceMarker     = "fedlint:trace"         // required trace kinds, e.g. fedlint:trace KindSchedule,KindSolver
)

// declMarker reports whether a function's doc comment carries the given
// fedlint marker on any line.
func declMarker(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// traceMarkerRe captures the comma-separated kind list of a
// fedlint:trace annotation. The Kind prefix is required of every name,
// so prose that merely mentions the directive does not parse as an
// annotation.
var traceMarkerRe = regexp.MustCompile(`fedlint:trace\s+(Kind\w+(?:\s*,\s*Kind\w+)*)`)

// traceKindsAnnotation parses a fedlint:trace annotation off a doc
// comment, returning the required kind names and whether the annotation
// is present.
func traceKindsAnnotation(fd *ast.FuncDecl) ([]string, bool) {
	if fd.Doc == nil {
		return nil, false
	}
	for _, c := range fd.Doc.List {
		m := traceMarkerRe.FindStringSubmatch(c.Text)
		if m == nil {
			continue
		}
		var kinds []string
		for _, k := range strings.Split(m[1], ",") {
			if k = strings.TrimSpace(k); k != "" {
				kinds = append(kinds, k)
			}
		}
		return kinds, true
	}
	return nil, false
}

// rootsWith returns the keys of every function carrying any of the
// given markers, in deterministic (sorted-key) order.
func (pr *Program) rootsWith(markers ...string) []string {
	var roots []string
	for _, key := range pr.keys {
		pf := pr.Funcs[key]
		for _, m := range markers {
			if declMarker(pf.Decl, m) {
				roots = append(roots, key)
				break
			}
		}
	}
	return roots
}

// reachNode records how the flood first reached a function, so
// diagnostics can print the call path back to the responsible root.
type reachNode struct {
	key    string
	parent *reachNode
}

// pathFrom renders the call chain "root → … → here" using display names.
func (pr *Program) pathFrom(n *reachNode) string {
	var names []string
	for ; n != nil; n = n.parent {
		names = append(names, pr.Funcs[n.key].String())
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// flood BFS-walks the static call graph from the given roots (processed
// in order; the first root to reach a function claims it). Call sites
// suppressed for check via //fedlint:allow do not propagate, and callees
// for which cut returns true are not entered — that is how detsafe /
// detreduce sanitizers terminate a taint walk.
func (pr *Program) flood(roots []string, check string, cut func(pf *ProgFunc) bool) map[string]*reachNode {
	reached := make(map[string]*reachNode)
	var queue []*reachNode
	for _, root := range roots {
		if _, ok := pr.Funcs[root]; !ok {
			continue
		}
		if _, seen := reached[root]; seen {
			continue
		}
		n := &reachNode{key: root}
		reached[root] = n
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		pf := pr.Funcs[n.key]
		for _, cs := range pf.Calls {
			callee, ok := pr.Funcs[cs.Callee]
			if !ok {
				continue // stdlib, interface method, or unloaded package
			}
			if _, seen := reached[cs.Callee]; seen {
				continue
			}
			if cut != nil && cut(callee) {
				continue
			}
			if pf.Pkg.suppressed(check, pr.Fset.Position(cs.Pos)) {
				continue
			}
			c := &reachNode{key: cs.Callee, parent: n}
			reached[cs.Callee] = c
			queue = append(queue, c)
		}
	}
	return reached
}

// sortedReach returns the reached keys in deterministic order.
func sortedReach(reached map[string]*reachNode) []string {
	keys := make([]string, 0, len(reached))
	for k := range reached {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// progReporter accumulates diagnostics for a whole-program pass,
// applying the owning package's suppression table at each position.
type progReporter struct {
	pr    *Program
	check string
	diags []Diagnostic
	seen  map[token.Pos]bool
}

// reportf reports at pos unless an //fedlint:allow directive in p covers
// it; each position reports at most once (several roots may reach the
// same source — the first, in deterministic root order, wins).
func (r *progReporter) reportf(p *Package, pos token.Pos, format string, args ...any) {
	if r.seen == nil {
		r.seen = make(map[token.Pos]bool)
	}
	if r.seen[pos] {
		return
	}
	position := r.pr.Fset.Position(pos)
	if p.suppressed(r.check, position) {
		return
	}
	r.seen[pos] = true
	r.diags = append(r.diags, Diagnostic{Pos: position, Check: r.check, Message: fmt.Sprintf(format, args...)})
}

func (r *progReporter) done() []Diagnostic {
	sortDiagnostics(r.diags)
	return r.diags
}

// sortDiagnostics orders findings by file, line, column.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
