package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// HotAlloc enforces the allocation-free steady state of the training hot
// path. Functions carrying a `// fedlint:hotpath` line in their doc
// comment — TrainBatch, the layer Forward/Backward implementations, the
// GEMM core, the FedAvg reduction — and every function they statically
// reach within the same package must not:
//
//   - call a tensor.New* constructor (fresh tensor storage),
//   - make a float32/float64 slice,
//   - call append (its backing array may grow).
//
// This is TestTrainBatchSteadyStateAllocs turned into a per-line static
// guarantee: the runtime test proves the property holds today, the pass
// names the exact line that would break it tomorrow. Deliberate
// slow-path allocations (workspace (re)sizing on a geometry change, the
// parallel fan-out that the serial steady state never takes) carry
// //fedlint:allow hotalloc directives at the call site, so every
// exception is visible and justified in-line.
//
// Reachability is intra-package and static only: calls through interface
// values (Layer.Forward) or function values are not followed, which is
// why each concrete hot implementation carries its own annotation.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocations (tensor.New*, make of float slices, append) reachable from // fedlint:hotpath functions",
	Run:  runHotAlloc,
}

// hotpathMarker is the annotation, matched anywhere in a function's doc
// comment (conventionally on its own line: `// fedlint:hotpath`).
const hotpathMarker = "fedlint:hotpath"

// isHotpath scans the raw doc-comment lines so both the spaced form
// (`// fedlint:hotpath`) and the directive form (`//fedlint:hotpath`)
// mark a root — ast.CommentGroup.Text() silently drops directives.
func isHotpath(fd *ast.FuncDecl) bool {
	return declMarker(fd, hotpathMarker)
}

// HotAllocProg is the whole-program extension of HotAlloc: the same
// three allocation shapes, but flooded over the cross-package call
// graph, so a hotpath root in internal/fl taints the data and tensor
// helpers it statically calls. It reuses the per-package body checker
// and the same check name, so existing //fedlint:allow hotalloc
// directives keep working. In whole-program mode this subsumes (and
// replaces) the per-package pass.
var HotAllocProg = &ProgramAnalyzer{
	Name: "hotalloc",
	Doc:  "interprocedural hotalloc: allocations reachable from // fedlint:hotpath roots across package boundaries",
	Run:  runHotAllocProg,
}

func runHotAllocProg(pr *Program) []Diagnostic {
	roots := pr.rootsWith(hotpathMarker)
	reached := pr.flood(roots, "hotalloc", func(pf *ProgFunc) bool {
		// The New* constructors are the allocation primitives the pass
		// reports at call sites; they are never entered.
		return isTensorNew(pf.Fn)
	})
	var diags []Diagnostic
	for _, key := range sortedReach(reached) {
		node := reached[key]
		pf := pr.Funcs[key]
		root := pf.Decl.Name.Name
		if node.parent != nil {
			root = pr.Funcs[rootNode(node).key].String()
		}
		r := &reporter{p: pf.Pkg, check: "hotalloc"}
		pf.Pkg.checkHotBody(r, pf.Decl, root)
		diags = append(diags, r.done()...)
	}
	sortDiagnostics(diags)
	return diags
}

func runHotAlloc(p *Package) []Diagnostic {
	r := &reporter{p: p, check: "hotalloc"}

	// Index every function declaration in the package by its object.
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
			if isHotpath(fd) {
				roots = append(roots, fd)
			}
		}
	}

	// Flood the intra-package call graph from the annotated roots,
	// remembering which root first reached each function for blame.
	rootOf := make(map[*ast.FuncDecl]string)
	var queue []*ast.FuncDecl
	for _, fd := range roots {
		if _, seen := rootOf[fd]; !seen {
			rootOf[fd] = fd.Name.Name
			queue = append(queue, fd)
		}
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		root := rootOf[fd]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil || fn.Pkg() != p.Types {
				return true
			}
			// A call site carrying //fedlint:allow hotalloc is a
			// sanctioned slow path; its callee does not inherit hotness.
			// The New* constructors are never followed either — they are
			// the allocation primitives the pass reports at call sites.
			if isTensorNew(fn) || p.suppressed("hotalloc", p.Fset.Position(call.Pos())) {
				return true
			}
			callee, ok := decls[fn]
			if !ok {
				return true
			}
			if _, seen := rootOf[callee]; !seen {
				rootOf[callee] = root
				queue = append(queue, callee)
			}
			return true
		})
	}

	// Order the hot set by position for stable output, then scan each
	// body for the three allocation shapes.
	hot := make([]*ast.FuncDecl, 0, len(rootOf))
	for fd := range rootOf {
		hot = append(hot, fd)
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].Pos() < hot[j].Pos() })
	for _, fd := range hot {
		p.checkHotBody(r, fd, rootOf[fd])
	}
	return r.done()
}

func (p *Package) checkHotBody(r *reporter, fd *ast.FuncDecl, root string) {
	via := ""
	if root != fd.Name.Name {
		via = " (hot via " + root + ")"
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case p.isBuiltin(call, "append"):
			r.reportf(call.Pos(), "append in hot-path function %s%s may grow its backing array; write into a pre-sized workspace", fd.Name.Name, via)
		case p.isBuiltin(call, "make"):
			if len(call.Args) > 0 && p.isFloatSlice(call.Args[0]) {
				r.reportf(call.Pos(), "make of %s in hot-path function %s%s allocates; reuse a workspace (tensor.EnsureShape)", exprString(call.Args[0]), fd.Name.Name, via)
			}
		default:
			if fn := p.calleeFunc(call); fn != nil && isTensorNew(fn) {
				r.reportf(call.Pos(), "%s.%s in hot-path function %s%s allocates fresh tensor storage; reuse a workspace (tensor.EnsureShape)", fn.Pkg().Name(), fn.Name(), fd.Name.Name, via)
			}
		}
		return true
	})
}

// isFloatSlice reports whether the type expression denotes a slice of
// float32 or float64 (the backing storage of every tensor and panel).
func (p *Package) isFloatSlice(texpr ast.Expr) bool {
	t := p.Info.TypeOf(texpr)
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isTensorNew reports whether fn is an allocation primitive of a package
// named tensor: the New*/From*/Randn* constructors and their generic
// *Of variants (NewOf, From, RandnOf). Prefix matching keeps the pass
// aligned as width-parametric constructors are added.
func isTensorNew(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Name() != "tensor" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return strings.HasPrefix(fn.Name(), "New") || strings.HasPrefix(fn.Name(), "From") ||
		strings.HasPrefix(fn.Name(), "Randn")
}
