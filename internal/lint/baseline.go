package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is the accepted-findings ledger (.fedlint-baseline.json at
// the module root). CI fails on any finding not in the baseline; the
// baseline itself is reviewed like code. Entries are keyed on check,
// module-relative file and message — deliberately not on line numbers,
// so unrelated edits shifting a file do not invalidate the ledger, while
// any change to the finding itself (new site, new message) surfaces.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`

	index map[string]bool
}

// BaselineEntry is one accepted finding.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"` // module-relative, slash-separated
	Message string `json:"message"`
}

func baselineKey(check, file, message string) string {
	return check + "\x00" + file + "\x00" + message
}

// LoadBaseline reads a baseline file. A missing file is not an error: it
// loads as an empty baseline, so a repo without accepted findings needs
// no ledger on disk.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{index: make(map[string]bool)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return b, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	for _, e := range b.Findings {
		b.index[baselineKey(e.Check, e.File, e.Message)] = true
	}
	return b, nil
}

// Has reports whether a finding is accepted by the baseline. file must
// be module-relative with forward slashes (see RelFile).
func (b *Baseline) Has(check, file, message string) bool {
	if b == nil {
		return false
	}
	return b.index[baselineKey(check, file, message)]
}

// Filter splits diagnostics into new findings and baselined ones.
func (b *Baseline) Filter(diags []Diagnostic, modDir string) (fresh, accepted []Diagnostic) {
	for _, d := range diags {
		if b.Has(d.Check, RelFile(d.Pos.Filename, modDir), d.Message) {
			accepted = append(accepted, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return fresh, accepted
}

// MarshalBaseline renders diagnostics as a baseline file, sorted and
// deduplicated, ready to be written to disk by `fedlint -write-baseline`.
func MarshalBaseline(diags []Diagnostic, modDir string) ([]byte, error) {
	seen := make(map[string]bool)
	b := Baseline{Findings: []BaselineEntry{}}
	for _, d := range diags {
		e := BaselineEntry{Check: d.Check, File: RelFile(d.Pos.Filename, modDir), Message: d.Message}
		k := baselineKey(e.Check, e.File, e.Message)
		if seen[k] {
			continue
		}
		seen[k] = true
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	out, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// RelFile normalizes a diagnostic's file name to the module-relative
// slash form the baseline stores.
func RelFile(filename, modDir string) string {
	if rel, err := filepath.Rel(modDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}
