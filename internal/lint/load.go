package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader parses and type-checks packages for analysis without consulting
// the network or the go command. Import resolution is three-tiered:
// paths under ModPath resolve inside ModDir, paths in Aux resolve to
// explicit directories (the fixture mechanism used by the analyzer
// tests), and everything else is treated as standard library and handed
// to go/importer's source importer, which type-checks GOROOT/src
// directly — slower than export data but dependency-free and offline.
type Loader struct {
	Fset    *token.FileSet
	ModPath string            // module path, e.g. "fedsched"; "" disables module resolution
	ModDir  string            // absolute directory of the module root
	Aux     map[string]string // extra import path → directory overrides
	// IncludeTests adds in-package _test.go files to loaded targets.
	// External test packages (package foo_test) cannot join the primary
	// package's type-check; LoadExternalTests loads them as their own
	// analysis unit in a second pass.
	IncludeTests bool

	std  types.ImporterFrom
	deps map[string]*types.Package
}

// NewLoader returns a loader rooted at the module modPath/modDir.
func NewLoader(modPath, modDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModDir:  modDir,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		deps:    make(map[string]*types.Package),
	}
}

// dirFor maps an import path to a directory, or "" when the path is not
// module-local (and must be a standard-library import).
func (l *Loader) dirFor(path string) string {
	if dir, ok := l.Aux[path]; ok {
		return dir
	}
	if l.ModPath != "" {
		if path == l.ModPath {
			return l.ModDir
		}
		if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
			return filepath.Join(l.ModDir, filepath.FromSlash(rest))
		}
	}
	return ""
}

// parseMode selects which of a directory's buildable files form the
// package under analysis.
type parseMode int

const (
	parseNoTests       parseMode = iota // library files only
	parseWithTests                      // library + in-package _test.go files
	parseExternalTests                  // only the package foo_test files
)

// parse reads the buildable .go files of the package in dir selected by
// mode. For the primary modes, external test files (their parsed package
// name ends in "_test") are filtered out after parsing: they belong to a
// separate package that cannot join the primary type-check. In
// parseExternalTests mode the selection inverts and an empty result is
// not an error — most directories have no external test package.
func (l *Loader) parse(dir string, mode parseMode) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if mode == parseNoTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		if mode == parseExternalTests && !strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if !shouldBuild(name, src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		external := strings.HasSuffix(f.Name.Name, "_test")
		if external != (mode == parseExternalTests) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 && mode != parseExternalTests {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return files, nil
}

// shouldBuild reports whether a file is selected on the analysis
// platform — the host's GOOS/GOARCH, same as the build the linted
// binaries ship in. Both constraint forms the repo can contain are
// honoured: the GOOS/GOARCH filename suffix convention and a //go:build
// line above the package clause (e.g. the float32 GEMM micro-kernel's
// amd64/noasm pair, which declare the same symbols and must never be
// type-checked together).
func shouldBuild(name string, src []byte) bool {
	if !goodOSArchFile(name) {
		return false
	}
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if constraint.IsGoBuild(line) {
			expr, err := constraint.Parse(line)
			if err != nil {
				return true
			}
			return expr.Eval(satisfiedTag)
		}
		if strings.HasPrefix(line, "package ") {
			break
		}
	}
	return true
}

// satisfiedTag reports whether one //go:build tag holds on the analysis
// platform.
func satisfiedTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	}
	return strings.HasPrefix(tag, "go1.")
}

// knownOS and knownArch are the GOOS/GOARCH values recognised in
// filename suffixes. Only membership matters: an unlisted suffix is an
// ordinary name, a listed one must match the host to build.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// goodOSArchFile applies the name_GOOS.go / name_GOARCH.go /
// name_GOOS_GOARCH.go filename convention against the host platform.
func goodOSArchFile(name string) bool {
	name = strings.TrimSuffix(name, ".go")
	name = strings.TrimSuffix(name, "_test")
	parts := strings.Split(name, "_")
	if len(parts) >= 3 {
		os, arch := parts[len(parts)-2], parts[len(parts)-1]
		if knownOS[os] && knownArch[arch] {
			return os == runtime.GOOS && arch == runtime.GOARCH
		}
	}
	if len(parts) >= 2 {
		switch last := parts[len(parts)-1]; {
		case knownOS[last]:
			return last == runtime.GOOS
		case knownArch[last]:
			return last == runtime.GOARCH
		}
	}
	return true
}

// check type-checks files as package path, resolving imports through the
// loader itself.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importerFunc(l.importDep)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return tpkg, info, nil
}

// Load parses and type-checks the package with the given import path for
// analysis, honouring IncludeTests.
func (l *Loader) Load(path string) (*Package, error) {
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("lint: %s is not a module-local package", path)
	}
	mode := parseNoTests
	if l.IncludeTests {
		mode = parseWithTests
	}
	files, err := l.parse(dir, mode)
	if err != nil {
		return nil, err
	}
	tpkg, info, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadExternalTests loads the external test package (package foo_test)
// of the directory at path, or nil when the directory has none. External
// test files — the root bench_test.go is the repo's one example — form a
// package of their own that imports the library under test, so they are
// type-checked as a separate analysis unit whose Path carries a "_test"
// suffix. Before this second pass existed they were skipped entirely,
// leaving hotpath-annotated benchmark helpers unanalyzed.
func (l *Loader) LoadExternalTests(path string) (*Package, error) {
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("lint: %s is not a module-local package", path)
	}
	files, err := l.parse(dir, parseExternalTests)
	if err != nil || len(files) == 0 {
		return nil, err
	}
	tpkg, info, err := l.check(path+"_test", files)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path + "_test", Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// importDep resolves an import encountered while type-checking. Module
// and Aux packages load without test files and are cached; anything else
// goes to the source importer.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		p, err := l.std.ImportFrom(path, l.ModDir, 0)
		if err == nil {
			l.deps[path] = p
		}
		return p, err
	}
	files, err := l.parse(dir, parseNoTests)
	if err != nil {
		return nil, err
	}
	tpkg, _, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.deps[path] = tpkg
	return tpkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ModuleRoot walks upward from dir to the enclosing go.mod and returns
// the module path and root directory.
func ModuleRoot(dir string) (modPath, modDir string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return strings.TrimSpace(rest), dir, nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// PackageDirs returns the import paths of every package directory under
// the module root, skipping testdata, vendor and hidden directories —
// the expansion of the "./..." pattern.
func PackageDirs(modPath, modDir string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(modDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != modDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
				rel, err := filepath.Rel(modDir, p)
				if err != nil {
					return err
				}
				if rel == "." {
					paths = append(paths, modPath)
				} else {
					paths = append(paths, modPath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
