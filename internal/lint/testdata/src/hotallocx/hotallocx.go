// Package hotallocx seeds the cross-package hotalloc fixture: the hot
// root lives here, one allocation it reaches lives in the hotallocdep
// stub (a package named tensor), which the per-package pass could never
// see.
package hotallocx

import tensor "hotallocdep"

// Step is the hot root; its helper chain crosses into the dep stub.
//
// fedlint:hotpath
func Step() int {
	p := tensor.NewPanel(8) // want `tensor\.NewPanel in hot-path function Step allocates fresh tensor storage`
	tensor.Fill(p)
	return p.Len()
}
