// Package goroutinebound seeds the bounded-spawn fixture: go statements
// reachable from hotpath/deterministic roots must sit under an acquire
// on the lane semaphore (tensor stub) or a channel-semaphore receive.
package goroutinebound

import "tensor"

// Run is the hot root reaching all three spawn shapes.
//
// fedlint:hotpath
func Run(n int) {
	bounded(n)
	unbounded(n)
	semaphore(n)
}

// bounded spawns only lanes the semaphore granted — the audited idiom.
func bounded(n int) {
	extra := tensor.TryAcquireLanes(n)
	done := make(chan struct{}, extra)
	for i := 0; i < extra; i++ {
		go func() { done <- struct{}{} }()
	}
	for i := 0; i < extra; i++ {
		<-done
	}
	tensor.ReleaseLanes(extra)
}

// unbounded fans out one goroutine per item with no budget at all.
func unbounded(n int) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() { done <- struct{}{} }() // want `go statement is not dominated by a bounded-pool acquire`
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// semaphore gates each spawn on a token receive — also audited.
func semaphore(n int) {
	sem := make(chan struct{}, 2)
	sem <- struct{}{}
	sem <- struct{}{}
	for i := 0; i < n; i++ {
		<-sem
		go func() { sem <- struct{}{} }()
	}
}

// Drain is a deterministic root; the naked spawn it reaches is reported
// with its path.
//
// fedlint:deterministic
func Drain() {
	naked()
}

// naked spawns with no acquire anywhere in the declaration.
func naked() {
	go func() {}() // want `go statement is not dominated by a bounded-pool acquire`
}

// Stray spawns unboundedly but is unreachable from any root.
func Stray() {
	go func() {}()
}
