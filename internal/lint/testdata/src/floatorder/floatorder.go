// Package floatorder seeds the float-accumulation-order fixture: folds
// whose bit pattern depends on map iteration or goroutine completion
// order, reachable from a deterministic root, minus the audited
// fedlint:detreduce helper and the order-insensitive integer fold.
package floatorder

import "sync"

// Reduce is the deterministic root.
//
// fedlint:deterministic
func Reduce(m map[int]float64, xs []float64) float64 {
	s := mapFold(m)
	s += spawnFold(xs)
	s += audited(m)
	s += intFold(map[int]int{1: 1})
	return s
}

// mapFold folds floats in map iteration order.
func mapFold(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum folds in map iteration order`
	}
	return sum
}

// spawnFold folds from goroutines in completion order; the mutex makes
// it race-free but not order-stable.
func spawnFold(xs []float64) float64 {
	var mu sync.Mutex
	var sum float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			sum += x // want `float accumulation into sum from a spawned goroutine folds in completion order`
			mu.Unlock()
		}()
	}
	wg.Wait()
	return sum
}

// audited is an allowed reduction helper: its callers fix the order.
//
// fedlint:detreduce
func audited(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// intFold is order-insensitive: integer addition is associative.
func intFold(m map[int]int) float64 {
	n := 0
	for _, v := range m {
		n += v
	}
	return float64(n)
}
