// Package hotalloc seeds the three allocation shapes the hotalloc pass
// reports inside annotated hot paths — tensor.New*, make of float
// slices, append — plus the transitive-callee propagation, the
// //fedlint:allow escape hatch, and the shapes (int scratch, cold
// functions, EnsureShape) that must stay legal.
package hotalloc

import "tensor"

// Hot is an annotated hot-path root.
//
// fedlint:hotpath
func Hot(dst *tensor.Tensor, xs []float64) []float64 {
	buf := make([]float64, 8) // want `make of \[\]float64 in hot-path function Hot allocates`
	t := tensor.New(4, 4)     // want `tensor\.New in hot-path function Hot allocates fresh tensor storage`
	_ = t
	xs = append(xs, 1) // want `append in hot-path function Hot may grow its backing array`
	helper(xs)
	dst = tensor.EnsureShape(dst, 4, 4)
	_ = dst
	return buf
}

// helper carries no annotation; it inherits hotness from Hot through
// the intra-package call graph.
func helper(xs []float64) []float64 {
	return append(xs, 2) // want `append in hot-path function helper \(hot via Hot\) may grow`
}

// Cold is never reached from an annotated root and may allocate freely.
func Cold() []float64 {
	return make([]float64, 128)
}

// Allowed shows the sanctioned-slow-path escape hatch; the directive
// form of the marker must work too.
//
//fedlint:hotpath
func Allowed() *tensor.Tensor {
	return tensor.New(2, 2) //fedlint:allow hotalloc — fixture: geometry-change slow path
}

// AllowedCall's suppressed call site keeps resize out of the hot set
// entirely, so resize's own allocation stays unreported.
//
// fedlint:hotpath
func AllowedCall() []float64 {
	return resize() //fedlint:allow hotalloc — fixture: cold by contract
}

func resize() []float64 {
	return make([]float64, 64)
}

// IntScratch allocates integer scratch; only float slices are tensor
// storage, so it passes.
//
// fedlint:hotpath
func IntScratch() []int {
	return make([]int, 4)
}

// Event and Ring mirror the internal/trace recorder: a fixed-capacity
// ring of flat event structs written by an annotated hot-path Emit.
type Event struct {
	Round int
	AtS   float64
}

type Ring struct {
	buf   []Event
	start int
	n     int
}

// Emit is the sanctioned shape — indexed wraparound writes into the
// pre-sized ring never touch the allocator and produce no diagnostics.
//
// fedlint:hotpath
func (r *Ring) Emit(e Event) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
}

// EmitAppend is the anti-pattern the pass exists to catch: growing the
// event buffer from inside the hot path.
//
// fedlint:hotpath
func (r *Ring) EmitAppend(e Event) {
	r.buf = append(r.buf, e) // want `append in hot-path function EmitAppend may grow its backing array`
}

// NewRing is cold construction; make of a struct slice is not tensor
// storage and the function is never reached from an annotated root.
func NewRing(capacity int) *Ring {
	return &Ring{buf: make([]Event, capacity)}
}

// GenericHot mirrors the width-parametric kernels: every callee below is
// an explicitly instantiated generic, so the flood-fill must unwrap the
// *ast.IndexExpr / *ast.IndexListExpr instantiation syntax to resolve
// it. Before that unwrap existed none of these lines produced a
// diagnostic.
//
// fedlint:hotpath
func GenericHot(ws *tensor.TensorOf[float32]) {
	t := tensor.NewOf[float32](4, 4) // want `tensor\.NewOf in hot-path function GenericHot allocates fresh tensor storage`
	_ = t
	r := tensor.RandnOf[float64](2, 2) // want `tensor\.RandnOf in hot-path function GenericHot allocates fresh tensor storage`
	_ = r
	_ = genericHelper[float32](nil)
	_ = widen[float64, float32](nil, 1)
	ws = tensor.EnsureShapeOf[float32](ws, 4, 4) // sanctioned reuse: no diagnostic
	_ = ws
}

// genericHelper inherits hotness through a one-type-arg instantiation
// (*ast.IndexExpr at the call site in GenericHot).
func genericHelper[T tensor.Float](xs []T) []T {
	var zero T
	return append(xs, zero) // want `append in hot-path function genericHelper \(hot via GenericHot\) may grow`
}

// widen inherits hotness through a two-type-arg instantiation
// (*ast.IndexListExpr at the call site in GenericHot).
func widen[Dst, Src tensor.Float](dst []Dst, x Src) []Dst {
	return append(dst, Dst(x)) // want `append in hot-path function widen \(hot via GenericHot\) may grow`
}

// InferredHot checks the no-explicit-instantiation path stays covered:
// type inference leaves a plain ident at the call site, which resolved
// before the unwrap; both routes must land in the same hot set.
//
// fedlint:hotpath
func InferredHot() {
	_ = genericHelper([]float64{1})
}
