// Package detflowdep is the cross-package half of the detflow fixture:
// the source below is only reachable through detflow.Engine's import
// edge, proving the taint walk crosses package boundaries.
package detflowdep

// Dep folds floats in map iteration order.
func Dep() float64 {
	m := map[int]float64{1: 1, 2: 2}
	var sum float64
	for _, v := range m { // want `order-sensitive map iteration \(accumulation into sum\) is reachable from deterministic root detflow\.Engine \(path: detflow\.Engine → detflowdep\.Dep\)`
		sum += v
	}
	return sum
}
