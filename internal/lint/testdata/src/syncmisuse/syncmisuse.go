// Package syncmisuse seeds the two synchronization mistakes the pass
// flags — wg.Add inside the spawned goroutine and by-value copies of
// lock-holding structs — next to the correct shapes (Add before go,
// goroutine-local WaitGroups, pointer receivers, in-place construction).
package syncmisuse

import "sync"

// addInside races: the spawner's Wait can run before the goroutine is
// scheduled and ever reaches Add.
func addInside() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		go func() {
			wg.Add(1) // want `wg\.Add inside the spawned goroutine races the spawner's Wait`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// addBefore accounts on the spawning side — the correct shape.
func addBefore() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// innerPool declares its own WaitGroup inside the goroutine; a fresh,
// correctly scoped pool cannot race the outer spawner.
func innerPool() {
	var outer sync.WaitGroup
	outer.Add(1)
	go func() {
		defer outer.Done()
		var inner sync.WaitGroup
		inner.Add(1)
		go func() {
			defer inner.Done()
		}()
		inner.Wait()
	}()
	outer.Wait()
}

// guarded holds a lock directly; nested holds one transitively.
type guarded struct {
	mu sync.Mutex
	n  int
}

type nested struct {
	g guarded
}

func (g guarded) byValue() int { // want `receiver guarded is passed by value but contains sync\.Mutex`
	return g.n
}

func (g *guarded) byPointer() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func takesCopy(n nested) int { // want `parameter nested is passed by value but contains sync\.Mutex`
	return n.g.n
}

func returnsCopy() guarded { // want `result guarded is passed by value but contains sync\.Mutex`
	return guarded{}
}

func deref(p *guarded) {
	c := *p // want `assignment copies \*p by value but it contains sync\.Mutex`
	_ = c
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range value g copies an element that contains sync\.Mutex`
		total += g.n
	}
	return total
}

// construct builds in place — composite literals are not copies.
func construct() *guarded {
	g := guarded{n: 1}
	return &g
}

// allowedCopy is an audited copy taken before any goroutine starts.
func allowedCopy(p *guarded) {
	c := *p //fedlint:allow syncmisuse — fixture: copy taken before any goroutine can hold the lock
	_ = c
}
