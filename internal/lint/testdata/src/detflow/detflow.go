// Package detflow seeds the interprocedural determinism-taint fixture:
// deterministic roots whose static call graph — including one edge into
// the detflowdep package — reaches seeded nondeterminism sources. The
// expectations sit on the source lines, where detflow reports.
package detflow

import (
	"math/rand"
	"time"

	"detflowdep"
)

// Engine is a deterministic root; everything it statically reaches must
// be bit-reproducible.
//
// fedlint:deterministic
func Engine(seed int64, out []float64) float64 {
	r := rand.New(rand.NewSource(seed))
	x := helper(r)
	x += detflowdep.Dep()
	x += audited()
	fork(out)
	return x
}

// helper is reached from Engine and leaks the global source alongside
// the seeded one.
func helper(r *rand.Rand) float64 {
	return rand.Float64() + r.Float64() // want `global rand.Float64 is reachable from deterministic root detflow\.Engine`
}

// audited is a detsafe boundary: the walk does not enter it, so its
// wall-clock read is not reported.
//
// fedlint:detsafe
func audited() float64 {
	return float64(time.Now().UnixNano())
}

// fork spawns with no visible join anywhere in the declaration: whatever
// fill writes races Engine's reads.
func fork(out []float64) {
	go fill(out) // want `goroutine with no visible join`
}

// fill is reached through the spawn edge and is itself clean.
func fill(out []float64) {
	for i := range out {
		out[i] = float64(i)
	}
}

// Gated is a deterministic root whose one tainted callee is explicitly
// allowed at the call site, so taint does not propagate.
//
// fedlint:deterministic
func Gated() float64 {
	//fedlint:allow detflow — audited: report timestamps never feed results
	return jitter()
}

// jitter reads the wall clock but is only reachable through the allowed
// call site above.
func jitter() float64 {
	return float64(time.Now().UnixNano())
}

// Stray holds a source but is unreachable from any deterministic root.
func Stray() float64 {
	return rand.Float64()
}
