// Package nondet seeds every shape the nondet pass must flag — global
// math/rand, wall clocks, order-sensitive map folds — next to the legal
// forms (threaded generators, the sorted-keys idiom, order-insensitive
// integer folds) it must leave alone.
package nondet

import (
	"math/rand"
	"sort"
	"time"
)

func globalRand() int {
	return rand.Intn(10) // want `call to global rand\.Intn draws from the shared process-wide source`
}

func globalFloat() float64 {
	return rand.Float64() // want `call to global rand\.Float64`
}

// threaded draws from an explicitly seeded generator — the codebase's
// sanctioned form.
func threaded(rng *rand.Rand) int {
	return rng.Intn(10)
}

// construct builds the seeded generator; constructors are not draws.
func construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func wallClock() time.Time {
	return time.Now() // want `time\.Now in a determinism-critical package`
}

func mapAccumulate(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `range over map m has an order-sensitive body \(accumulation into total\)`
		total += v
	}
	return total
}

func mapAppend(m map[int]int, out []int) []int {
	for _, v := range m { // want `range over map m has an order-sensitive body \(append\)`
		out = append(out, v*2)
	}
	return out
}

func mapSend(m map[int]int, ch chan int) {
	for k := range m { // want `range over map m has an order-sensitive body \(channel send\)`
		ch <- k
	}
}

// sortedKeys is the full sorted-keys idiom: the key-collection loop is
// the recognized first half and must not be flagged.
func sortedKeys(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// intFold accumulates into an integer with a commutative operator;
// iteration order cannot change the result.
func intFold(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// perIterationLocal folds into an accumulator scoped to one iteration,
// which cannot observe ordering across iterations.
func perIterationLocal(m map[int]float64) bool {
	for _, v := range m {
		d := 0.0
		d += v
		if d > 1 {
			return true
		}
	}
	return false
}

// trailing and preceding suppression placements both silence a finding.
func allowedTrailing() time.Time {
	return time.Now() //fedlint:allow nondet — fixture: trailing suppression
}

func allowedPreceding() int {
	//fedlint:allow nondet — fixture: preceding-line suppression
	return rand.Intn(3)
}
