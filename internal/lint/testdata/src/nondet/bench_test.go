package nondet

import (
	"testing"
	"time"
)

// BenchmarkClock may read the wall clock: benchmarks are the one place
// measuring real time is the point.
func BenchmarkClock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = time.Now()
	}
}

// TestClock is not a benchmark; the carve-out does not apply.
func TestClock(t *testing.T) {
	_ = time.Now() // want `time\.Now in a determinism-critical package`
}
