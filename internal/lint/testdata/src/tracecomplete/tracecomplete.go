// Package tracecomplete seeds the trace-coverage fixture against the
// trace stub: fedlint:trace annotations that are met through call
// chains, one that is not, one naming an unknown kind, and a Scheduler
// implementation that never records its assignment.
package tracecomplete

import "trace"

// Scheduler mirrors the real scheduling interface shape.
type Scheduler interface {
	Name() string
	Schedule(rec *trace.Recorder)
}

// Good emits its assignment through the shared helper.
type Good struct{}

// Name identifies the scheduler.
func (Good) Name() string { return "good" }

// Schedule records the assignment via emitSchedule, two hops away from
// the Kind constant.
func (Good) Schedule(rec *trace.Recorder) {
	emitSchedule(rec)
}

// emitSchedule is the shared emission helper.
func emitSchedule(rec *trace.Recorder) {
	rec.Emit(trace.Event{Kind: trace.KindSchedule})
}

// Bad computes an assignment but never records it.
type Bad struct{}

// Name identifies the scheduler.
func (Bad) Name() string { return "bad" }

// Schedule emits nothing.
func (Bad) Schedule(rec *trace.Recorder) { // want `Bad implements Scheduler but no static call path of Schedule emits trace\.KindSchedule`
	_ = rec
}

// Run is an engine entry point that only half-meets its annotation.
//
// fedlint:trace KindClientRound,KindRoundSummary
func Run(rec *trace.Recorder) { // want `no static call path emits trace\.KindRoundSummary`
	rec.Emit(trace.Event{Kind: trace.KindClientRound})
}

// Typo names a kind the trace package does not declare.
//
// fedlint:trace KindOops
func Typo(rec *trace.Recorder) { // want `names KindOops, which is not a trace\.Kind constant`
	_ = rec
}

// Solver meets its annotation through two hops.
//
// fedlint:trace KindSolver
func Solver(rec *trace.Recorder) {
	probe(rec)
}

// probe emits the solver event.
func probe(rec *trace.Recorder) {
	rec.Emit(trace.Event{Kind: trace.KindSolver})
}
