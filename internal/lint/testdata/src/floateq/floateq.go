// Package floateq seeds exact floating-point comparisons next to the
// legal forms: integer comparison, tolerance comparison, the
// //fedlint:allow sentinel escape hatch, and _test.go files (see
// floateq_test.go), which are out of scope.
package floateq

import "math"

func eq(a, b float64) bool {
	return a == b // want `== compares floating-point values exactly`
}

func neq(a, b float32) bool {
	return a != b // want `!= compares floating-point values exactly`
}

func mixedConst(x float64) bool {
	return x == 1.5 // want `== compares floating-point values exactly`
}

func ints(a, b int) bool {
	return a == b
}

// zero carries the audited-sentinel escape hatch.
func zero(x float64) bool {
	return x == 0 //fedlint:allow floateq — fixture: audited exact-zero sentinel
}

// tolerance is the recommended comparison form.
func tolerance(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}
