package floateq

// Exact comparison inside _test.go files is deliberately out of scope:
// tests assert bit-exactness (determinism suites compare runs with ==).
func exactInTest(a, b float64) bool {
	return a == b
}
