// Package trace is a minimal stub of fedsched/internal/trace, mapped to
// the bare import path "trace" through Loader.Aux so the tracecomplete
// fixtures can exercise Kind-constant reachability without pulling the
// real recorder into the fixture load. The tracecomplete pass recognizes
// Kind constants structurally (a named type Kind in a package named
// trace), so this stub's constants count exactly like the real ones.
package trace

// Kind discriminates trace event types.
type Kind uint8

// Event kinds, mirroring the real pipeline order.
const (
	KindSchedule Kind = iota
	KindSolver
	KindClientRound
	KindRoundSummary
	KindMerge
)

// Event is a flat record, as in the real package.
type Event struct {
	Kind Kind
	AtS  float64
}

// Recorder is a minimal sink.
type Recorder struct {
	events []Event
}

// Emit appends one event.
func (r *Recorder) Emit(ev Event) {
	r.events = append(r.events, ev)
}
