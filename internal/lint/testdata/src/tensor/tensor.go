// Package tensor is a minimal stub of fedsched/internal/tensor, mapped
// to the bare import path "tensor" through Loader.Aux so the hotalloc
// fixtures can exercise the New*-constructor detection without pulling
// the real package (and its real hot paths) into the fixture load.
package tensor

// Tensor mirrors the real dense-tensor shape.
type Tensor struct {
	data []float64
}

// New allocates fresh storage — the call hotalloc reports.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &Tensor{data: make([]float64, n)}
}

// From wraps existing storage.
func From(data []float64, shape ...int) *Tensor {
	return &Tensor{data: data}
}

// EnsureShape is the sanctioned workspace-reuse entry point; it is not a
// New* constructor and must not be flagged at call sites.
func EnsureShape(t *Tensor, shape ...int) *Tensor {
	if t != nil {
		return t
	}
	return New(shape...)
}

// Len keeps the struct fields used.
func (t *Tensor) Len() int { return len(t.data) }

// Float mirrors the real element-type constraint of the generic kernels.
type Float interface{ ~float32 | ~float64 }

// extraLanes mirrors the real lane semaphore so the goroutinebound
// fixtures can exercise the audited acquire idiom.
var extraLanes = make(chan struct{}, 4)

// TryAcquireLanes takes up to n worker lanes, returning how many were
// granted.
func TryAcquireLanes(n int) int {
	got := 0
	for ; got < n; got++ {
		select {
		case <-extraLanes:
		default:
			return got
		}
	}
	return got
}

// ReleaseLanes returns n lanes to the pool.
func ReleaseLanes(n int) {
	for i := 0; i < n; i++ {
		extraLanes <- struct{}{}
	}
}

// TensorOf mirrors the width-parametric dense tensor.
type TensorOf[T Float] struct {
	data []T
}

// NewOf allocates fresh generic storage — the instantiated call the
// hotalloc pass must still report.
func NewOf[T Float](shape ...int) *TensorOf[T] {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &TensorOf[T]{data: make([]T, n)}
}

// RandnOf mirrors the generic random-init constructor; the Randn prefix
// marks it as an allocation primitive.
func RandnOf[T Float](shape ...int) *TensorOf[T] {
	return NewOf[T](shape...)
}

// EnsureShapeOf is the generic sanctioned-reuse entry point; like
// EnsureShape it must not be flagged at call sites.
func EnsureShapeOf[T Float](t *TensorOf[T], shape ...int) *TensorOf[T] {
	if t != nil {
		return t
	}
	return NewOf[T](shape...)
}

// LenOf keeps the generic struct fields used.
func (t *TensorOf[T]) Len() int { return len(t.data) }
