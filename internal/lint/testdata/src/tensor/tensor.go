// Package tensor is a minimal stub of fedsched/internal/tensor, mapped
// to the bare import path "tensor" through Loader.Aux so the hotalloc
// fixtures can exercise the New*-constructor detection without pulling
// the real package (and its real hot paths) into the fixture load.
package tensor

// Tensor mirrors the real dense-tensor shape.
type Tensor struct {
	data []float64
}

// New allocates fresh storage — the call hotalloc reports.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &Tensor{data: make([]float64, n)}
}

// From wraps existing storage.
func From(data []float64, shape ...int) *Tensor {
	return &Tensor{data: data}
}

// EnsureShape is the sanctioned workspace-reuse entry point; it is not a
// New* constructor and must not be flagged at call sites.
func EnsureShape(t *Tensor, shape ...int) *Tensor {
	if t != nil {
		return t
	}
	return New(shape...)
}

// Len keeps the struct fields used.
func (t *Tensor) Len() int { return len(t.data) }
