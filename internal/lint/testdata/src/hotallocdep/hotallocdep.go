// Package tensor (import path hotallocdep) is the cross-package half of
// the hotallocx fixture: Fill scratch-allocates per call, which only the
// whole-program flood can tie back to hotallocx.Step.
package tensor

// Panel is a minimal float buffer.
type Panel struct{ data []float64 }

// NewPanel allocates fresh storage — flagged at hot call sites.
func NewPanel(n int) *Panel { return &Panel{data: make([]float64, n)} }

// Fill scratch-allocates a buffer on every call.
func Fill(p *Panel) {
	buf := make([]float64, len(p.data)) // want `make of \[\]float64 in hot-path function Fill \(hot via hotallocx\.Step\)`
	copy(p.data, buf)
	_ = buf
}

// Len reports the buffer length.
func (p *Panel) Len() int { return len(p.data) }
