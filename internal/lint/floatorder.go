package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrder flags order-sensitive floating-point accumulation in code
// reachable from hotpath or deterministic roots. Float addition is not
// associative, so a sum's bit pattern depends on the order terms are
// folded in; the two shapes whose order the runtime deliberately (map
// iteration) or incidentally (goroutine completion) randomizes are:
//
//   - a compound float assignment (+=, -=, *=, /=) into an accumulator
//     declared outside a map-range body, and
//   - a compound float assignment inside a `go` function literal whose
//     target lives outside the literal — the fold happens in completion
//     order, racing other workers' folds.
//
// Audited deterministic-reduction helpers — accumulateWeighted and kin,
// which fold in a caller-fixed order after the join — are marked
// `// fedlint:detreduce`; the walk neither enters nor reports them.
// Unlike nondet's map-range rule this pass is float-specific and runs
// wherever the roots reach, not just the determinism-critical packages.
var FloatOrder = &ProgramAnalyzer{
	Name: "floatorder",
	Doc:  "order-sensitive float accumulation (map-range or goroutine completion order) reachable from hotpath/deterministic roots",
	Run:  runFloatOrder,
}

func runFloatOrder(pr *Program) []Diagnostic {
	r := &progReporter{pr: pr, check: "floatorder"}
	roots := pr.rootsWith(detMarker, hotpathMarker)
	reached := pr.flood(roots, "floatorder", func(pf *ProgFunc) bool {
		return declMarker(pf.Decl, detReduceMarker)
	})
	for _, key := range sortedReach(reached) {
		pf := pr.Funcs[key]
		if declMarker(pf.Decl, detReduceMarker) {
			continue // a root can carry the marker itself
		}
		p, fd := pf.Pkg, pf.Decl
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := p.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				for _, hit := range p.floatAccumAssigns(n.Body) {
					r.reportf(p, hit.pos, "float accumulation into %s folds in map iteration order; iterate sorted keys or use an audited fedlint:detreduce helper", hit.target)
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					for _, hit := range p.floatAccumAssigns(lit.Body) {
						r.reportf(p, hit.pos, "float accumulation into %s from a spawned goroutine folds in completion order; write per-worker partials and reduce after the join", hit.target)
					}
				}
			}
			return true
		})
	}
	return r.done()
}

// floatAccum is one order-sensitive accumulation site.
type floatAccum struct {
	pos    token.Pos
	target string
}

// floatAccumAssigns finds compound float/complex assignments inside body
// whose left-hand side is declared outside it — an accumulator that
// observes the fold order.
func (p *Package) floatAccumAssigns(body *ast.BlockStmt) []floatAccum {
	var hits []floatAccum
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch asg.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range asg.Lhs {
			t := p.Info.TypeOf(lhs)
			if t == nil {
				continue
			}
			b, ok := t.Underlying().(*types.Basic)
			if !ok || b.Info()&(types.IsFloat|types.IsComplex) == 0 {
				continue
			}
			// Only a target declared outside the body observes order.
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := p.Info.ObjectOf(id); obj != nil && obj.Pos() >= body.Pos() && obj.Pos() < body.End() {
					continue
				}
			}
			hits = append(hits, floatAccum{asg.Pos(), exprString(lhs)})
		}
		return true
	})
	return hits
}
