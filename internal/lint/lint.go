// Package lint implements fedlint, the project-specific static-analysis
// suite guarding the two invariants the training substrate is built on:
//
//  1. Determinism — runs are bit-identical for any worker or lane count
//     at a fixed seed (the parallel FL engines and the blocked GEMM core
//     both stake their correctness argument on it). The nondet pass keeps
//     hidden ambient state (global math/rand, wall clocks, unsorted map
//     iteration) out of the determinism-critical packages.
//  2. Allocation-free steady state — the training hot path (TrainBatch →
//     Forward/Backward → GEMM) allocates nothing once workspaces are
//     sized. The hotalloc pass turns that AllocsPerRun==0 property into a
//     per-line static guarantee over functions annotated
//     `// fedlint:hotpath` and their intra-package callees.
//
// Two supporting passes catch the classic ways either invariant rots:
// floateq (exact ==/!= on floating-point operands outside tests) and
// syncmisuse (wg.Add inside the spawned goroutine, by-value copies of
// lock-holding structs).
//
// Everything here is stdlib-only: go/parser + go/types with a module-aware
// importer (load.go) that falls back to compiling the standard library
// from source, so the suite runs offline with no module downloads.
//
// Findings can be suppressed with a trailing or preceding comment:
//
//	//fedlint:allow floateq — exact zero is the sparsity sentinel
//
// The comment names one or more checks (comma-separated) and silences
// them on its own line and the line directly below it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Package is one loaded, type-checked package — the unit every analyzer
// operates on. Files may include in-package _test.go files when the
// loader was asked for them (the nondet benchmark carve-out needs to see
// test files to matter).
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allow map[string]map[int]map[string]bool // filename → line → suppressed checks
}

// Analyzer is one named pass over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// All returns the four fedlint analyzers in their canonical order.
func All() []*Analyzer {
	return []*Analyzer{NonDet, HotAlloc, FloatEq, SyncMisuse}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// NonDetPackages are the module-relative package paths whose results
// must be bit-identical across runs, workers and lanes — the scope of
// the nondet pass. Everything the FL engines touch numerically is here;
// the experiment drivers deliberately are not (they time wall clocks for
// their report tables). Shared by the fedlint driver and the repo-gate
// test.
var NonDetPackages = map[string]bool{
	"internal/fl":     true,
	"internal/sched":  true,
	"internal/sim":    true,
	"internal/tensor": true,
	"internal/nn":     true,
}

// NonDetScope reports whether the package at import path — possibly an
// external test package carrying the loader's "_test" path suffix —
// falls inside the nondet scope.
func NonDetScope(path, modPath string) bool {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, modPath), "/")
	rel = strings.TrimSuffix(rel, "_test")
	return NonDetPackages[rel]
}

// allowRe matches a suppression comment. The leading "//" is already
// stripped by the time we match (comment.Text trims it), so the pattern
// anchors on the directive itself.
var allowRe = regexp.MustCompile(`^\s*fedlint:allow\s+([A-Za-z0-9_,\-]+)`)

// buildAllow indexes every //fedlint:allow comment in the package. A
// directive suppresses the named checks on the comment's own line and on
// the following line, covering both the trailing and the preceding
// placement without needing to know which statement it belongs to.
func (p *Package) buildAllow() {
	p.allow = make(map[string]map[int]map[string]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.allow[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					p.allow[pos.Filename] = byLine
				}
				for _, check := range strings.Split(m[1], ",") {
					check = strings.TrimSpace(check)
					if check == "" {
						continue
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if byLine[line] == nil {
							byLine[line] = make(map[string]bool)
						}
						byLine[line][check] = true
					}
				}
			}
		}
	}
}

// suppressed reports whether a finding of check at pos is silenced by an
// //fedlint:allow directive.
func (p *Package) suppressed(check string, pos token.Position) bool {
	if p.allow == nil {
		p.buildAllow()
	}
	byLine := p.allow[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][check]
}

// reporter accumulates diagnostics for one pass, applying suppression.
type reporter struct {
	p     *Package
	check string
	diags []Diagnostic
}

func (r *reporter) reportf(pos token.Pos, format string, args ...any) {
	position := r.p.Fset.Position(pos)
	if r.p.suppressed(r.check, position) {
		return
	}
	r.diags = append(r.diags, Diagnostic{Pos: position, Check: r.check, Message: fmt.Sprintf(format, args...)})
}

// done returns the pass's findings in file/line order.
func (r *reporter) done() []Diagnostic {
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i].Pos, r.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return r.diags
}

// isTestFile reports whether the file enclosing pos is a _test.go file.
func (p *Package) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// pkgNameOf resolves an identifier to the imported package it names, or
// nil when it is not a package qualifier.
func (p *Package) pkgNameOf(id *ast.Ident) *types.PkgName {
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// calleeFunc resolves the static callee of a call expression to its
// *types.Func, or nil for builtins, conversions and dynamic calls
// (function values, interface methods resolve to the abstract method).
// Explicitly instantiated generic calls (kernel[float32](…) parses as an
// *ast.IndexExpr around the callee, kernel[A, B](…) as an
// *ast.IndexListExpr) are unwrapped to the generic origin function, and
// the result is always folded to its Origin — method calls on an
// instantiated receiver (opt.Step where opt is *SGDOf[float32]) resolve
// in Info.Uses to the instantiated method object, which is not the one
// Info.Defs records for the declaration; without the fold the call-graph
// edge silently goes dark.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func (p *Package) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.Info.Uses[id].(*types.Builtin)
	return ok
}

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string { return types.ExprString(e) }
