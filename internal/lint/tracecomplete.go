package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// TraceComplete checks trace-schema coverage statically, so the golden
// traces cannot silently lose event kinds when a new scheduler or
// engine lands:
//
//   - A function annotated `// fedlint:trace KindA,KindB` must reach —
//     through the static call graph — a use of each named trace.Kind
//     constant. The four FL engine entry points and the solver
//     schedulers carry these annotations.
//   - Every concrete implementation of a package-local `Scheduler`
//     interface (a named type with a Schedule method satisfying it)
//     must statically reach trace.KindSchedule from its Schedule
//     method, unless the method carries its own fedlint:trace
//     annotation (which then governs) or an //fedlint:allow
//     tracecomplete directive.
//
// A "use" is any mention of the constant — emitting an Event with that
// Kind, comparing against it inside an emit helper — in the function or
// anything it statically calls. Kind constants are recognized by type:
// a constant whose named type is Kind declared in a package named
// trace (the real trace package, or the fixture stub).
var TraceComplete = &ProgramAnalyzer{
	Name: "tracecomplete",
	Doc:  "fedlint:trace annotations and Scheduler implementations must statically emit their required trace kinds",
	Run:  runTraceComplete,
}

func runTraceComplete(pr *Program) []Diagnostic {
	r := &progReporter{pr: pr, check: "tracecomplete"}

	// Kind-constant names each function mentions directly.
	own := make(map[string]map[string]bool)
	for _, key := range pr.keys {
		pf := pr.Funcs[key]
		kinds := kindsMentioned(pf)
		if len(kinds) > 0 {
			own[key] = kinds
		}
	}

	// reachKinds memoizes the union of kind names over the static
	// reachability closure of one function.
	memo := make(map[string]map[string]bool)
	var reachKinds func(key string, onStack map[string]bool) map[string]bool
	reachKinds = func(key string, onStack map[string]bool) map[string]bool {
		if m, ok := memo[key]; ok {
			return m
		}
		if onStack[key] {
			return nil // cycle: the caller's union already covers it
		}
		onStack[key] = true
		defer delete(onStack, key)
		out := make(map[string]bool)
		for k := range own[key] {
			out[k] = true
		}
		if pf, ok := pr.Funcs[key]; ok {
			for _, cs := range pf.Calls {
				if _, ok := pr.Funcs[cs.Callee]; !ok {
					continue
				}
				for k := range reachKinds(cs.Callee, onStack) {
					out[k] = true
				}
			}
		}
		memo[key] = out
		return out
	}

	// The trace package in this program (if loaded) validates kind names.
	var tracePkg *Package
	for _, p := range pr.Packages {
		if p.Types.Name() == "trace" {
			tracePkg = p
			break
		}
	}

	// Rule 1: explicit fedlint:trace annotations.
	for _, key := range pr.keys {
		pf := pr.Funcs[key]
		required, ok := traceKindsAnnotation(pf.Decl)
		if !ok {
			continue
		}
		got := reachKinds(key, map[string]bool{})
		for _, kind := range required {
			if tracePkg != nil {
				if obj := tracePkg.Types.Scope().Lookup(kind); obj == nil || !isKindConst(obj) {
					r.reportf(pf.Pkg, pf.Decl.Name.Pos(), "fedlint:trace on %s names %s, which is not a trace.Kind constant", pf.String(), kind)
					continue
				}
			}
			if !got[kind] {
				r.reportf(pf.Pkg, pf.Decl.Name.Pos(), "%s is annotated fedlint:trace %s but no static call path emits trace.%s; emit the event or update the annotation", pf.String(), strings.Join(required, ","), kind)
			}
		}
	}

	// Rule 2: Scheduler implementations must reach KindSchedule.
	for _, p := range pr.Packages {
		iface := schedulerInterface(p)
		if iface == nil {
			continue
		}
		scope := p.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			key := p.Path + "|" + name + "|Schedule"
			pf, ok := pr.Funcs[key]
			if !ok {
				continue // method promoted or declared elsewhere
			}
			if _, annotated := traceKindsAnnotation(pf.Decl); annotated {
				continue // rule 1 already governs this method
			}
			if !reachKinds(key, map[string]bool{})["KindSchedule"] {
				r.reportf(pf.Pkg, pf.Decl.Name.Pos(), "%s implements Scheduler but no static call path of Schedule emits trace.KindSchedule; record the assignment (emitSchedule) so golden traces keep covering it", name)
			}
		}
	}
	return r.done()
}

// kindsMentioned collects the trace.Kind constant names a function body
// refers to.
func kindsMentioned(pf *ProgFunc) map[string]bool {
	kinds := make(map[string]bool)
	ast.Inspect(pf.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj, ok := pf.Pkg.Info.Uses[id]; ok && isKindConst(obj) {
			kinds[obj.Name()] = true
		}
		return true
	})
	if len(kinds) == 0 {
		return nil
	}
	return kinds
}

// isKindConst reports whether obj is a constant of a named type Kind
// declared in a package named trace.
func isKindConst(obj types.Object) bool {
	c, ok := obj.(*types.Const)
	if !ok {
		return false
	}
	named, ok := c.Type().(*types.Named)
	if !ok || named.Obj().Name() != "Kind" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Name() == "trace"
}

// schedulerInterface returns the package-scope Scheduler interface type
// with a Schedule method, or nil.
func schedulerInterface(p *Package) *types.Interface {
	tn, ok := p.Types.Scope().Lookup("Scheduler").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := tn.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Schedule" {
			return iface
		}
	}
	return nil
}
