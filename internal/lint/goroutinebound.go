package lint

import (
	"go/ast"
	"go/token"
)

// GoroutineBound checks that every `go` statement reachable from a
// hotpath or deterministic root is dominated by an acquire on one of the
// audited bounded-concurrency idioms, so no code path the engines take
// can fan out an unbounded number of goroutines:
//
//   - the lane semaphore (tensor.TryAcquireLanes / ReleaseLanes) that
//     caps the whole process at GOMAXPROCS−1 extra workers, and
//   - the worker pool (internal/fl's forEach), whose spawn loop runs
//     under lanes acquired the same way,
//
// both of which read as a call to an Acquire-family function before the
// spawn. A channel-semaphore receive (`<-sem`) before the spawn also
// counts. "Dominated" is approximated lexically: an acquire must appear
// earlier in the same enclosing function declaration than the go
// statement — exact dominance needs a CFG, and the audited idioms all
// acquire directly above their spawn loops.
var GoroutineBound = &ProgramAnalyzer{
	Name: "goroutinebound",
	Doc:  "go statements reachable from hotpath/deterministic roots must sit under a bounded-pool or semaphore acquire",
	Run:  runGoroutineBound,
}

// acquireNames are the call names recognized as taking a token from a
// bounded pool or semaphore.
var acquireNames = map[string]bool{
	"TryAcquireLanes": true,
	"AcquireLanes":    true,
	"TryAcquire":      true,
	"Acquire":         true,
}

func runGoroutineBound(pr *Program) []Diagnostic {
	r := &progReporter{pr: pr, check: "goroutinebound"}
	roots := pr.rootsWith(detMarker, hotpathMarker)
	reached := pr.flood(roots, "goroutinebound", nil)
	for _, key := range sortedReach(reached) {
		node := reached[key]
		pf := pr.Funcs[key]
		for _, pos := range unboundedSpawns(pf) {
			r.reportf(pf.Pkg, pos, "go statement is not dominated by a bounded-pool acquire (tensor.TryAcquireLanes or a semaphore receive) yet is reachable from %s (path: %s); spawn only under the lane budget",
				pr.Funcs[rootNode(node).key].String(), pr.pathFrom(node))
		}
	}
	return r.done()
}

// unboundedSpawns returns the positions of go statements in fd that have
// no acquire lexically before them in the same declaration.
func unboundedSpawns(pf *ProgFunc) []token.Pos {
	fd := pf.Decl
	var acquires []token.Pos
	var spawns []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := callName(n); acquireNames[name] {
				acquires = append(acquires, n.Pos())
			}
		case *ast.UnaryExpr:
			// A channel receive is a semaphore-token take in the audited
			// idioms; any receive before the spawn counts.
			if n.Op == token.ARROW {
				acquires = append(acquires, n.Pos())
			}
		case *ast.GoStmt:
			spawns = append(spawns, n.Pos())
		}
		return true
	})
	var out []token.Pos
	for _, s := range spawns {
		bounded := false
		for _, a := range acquires {
			if a < s {
				bounded = true
				break
			}
		}
		if !bounded {
			out = append(out, s)
		}
	}
	return out
}

// callName extracts the bare called name of a call expression (the
// selector's field name or the identifier), unwrapping explicit generic
// instantiation.
func callName(call *ast.CallExpr) string {
	fun := ast.Unparen(call.Fun)
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
