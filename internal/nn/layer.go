// Package nn is a from-scratch CPU deep-learning substrate: layers, losses,
// SGD training and the LeNet / VGG6 architectures evaluated in the paper.
// The federated engine trains real models with it, and the performance
// profiler consumes its parameter counts (convolutional vs dense split,
// paper §IV-B) and FLOP estimates.
//
// Every layer, the network container and the optimizer are generic over the
// tensor element type (float32 or float64). The float64 instantiations keep
// their historical names via aliases (Layer, Dense, Network, …), so existing
// code is untouched; the float32 path is reached through BuildNetwork and
// the Trainer constructor (see trainer.go).
package nn

import "fedsched/internal/tensor"

// ParamOf is a trainable parameter with its gradient accumulator. Grad has
// the same shape as W and is zeroed by the optimizer after each step.
type ParamOf[T tensor.Float] struct {
	Name string
	W    *tensor.TensorOf[T]
	Grad *tensor.TensorOf[T]
}

// Param is the float64 parameter used throughout the federated engine.
type Param = ParamOf[float64]

// LayerOf is a differentiable network stage. Forward consumes the previous
// activation and returns the next one; Backward consumes dLoss/dOutput and
// returns dLoss/dInput, accumulating parameter gradients along the way.
// Layers cache whatever they need between Forward and Backward, so a layer
// instance must not be shared between concurrently-training networks.
type LayerOf[T tensor.Float] interface {
	// Name identifies the layer kind for diagnostics.
	Name() string
	// Forward runs the layer. train enables training-only behaviour
	// such as dropout.
	Forward(x *tensor.TensorOf[T], train bool) *tensor.TensorOf[T]
	// Backward propagates the output gradient to the input gradient.
	Backward(grad *tensor.TensorOf[T]) *tensor.TensorOf[T]
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*ParamOf[T]
}

// Layer is the float64 layer interface.
type Layer = LayerOf[float64]

// ParamClass distinguishes convolutional from densely-connected parameters;
// the profiler regresses training time against the two counts separately
// because convolutions dominate compute (paper §IV-B).
type ParamClass int

const (
	// ClassNone marks layers without trainable parameters.
	ClassNone ParamClass = iota
	// ClassConv marks convolutional parameters.
	ClassConv
	// ClassDense marks densely-connected parameters.
	ClassDense
)

// Classed is implemented by layers whose parameters belong to a class.
type Classed interface {
	Class() ParamClass
}

// FlopsCounter is implemented by layers that can estimate the forward-pass
// floating point operations for a single sample.
type FlopsCounter interface {
	// FlopsPerSample returns forward-pass FLOPs for one input sample.
	FlopsPerSample() float64
}

func newParamOf[T tensor.Float](name string, shape ...int) *ParamOf[T] {
	return &ParamOf[T]{
		Name: name,
		W:    tensor.NewOf[T](shape...),
		Grad: tensor.NewOf[T](shape...),
	}
}

func newParam(name string, shape ...int) *Param {
	return newParamOf[float64](name, shape...)
}
