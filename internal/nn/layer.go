// Package nn is a from-scratch CPU deep-learning substrate: layers, losses,
// SGD training and the LeNet / VGG6 architectures evaluated in the paper.
// The federated engine trains real models with it, and the performance
// profiler consumes its parameter counts (convolutional vs dense split,
// paper §IV-B) and FLOP estimates.
package nn

import "fedsched/internal/tensor"

// Param is a trainable parameter with its gradient accumulator. Grad has
// the same shape as W and is zeroed by the optimizer after each step.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// Layer is a differentiable network stage. Forward consumes the previous
// activation and returns the next one; Backward consumes dLoss/dOutput and
// returns dLoss/dInput, accumulating parameter gradients along the way.
// Layers cache whatever they need between Forward and Backward, so a layer
// instance must not be shared between concurrently-training networks.
type Layer interface {
	// Name identifies the layer kind for diagnostics.
	Name() string
	// Forward runs the layer. train enables training-only behaviour
	// such as dropout.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates the output gradient to the input gradient.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// ParamClass distinguishes convolutional from densely-connected parameters;
// the profiler regresses training time against the two counts separately
// because convolutions dominate compute (paper §IV-B).
type ParamClass int

const (
	// ClassNone marks layers without trainable parameters.
	ClassNone ParamClass = iota
	// ClassConv marks convolutional parameters.
	ClassConv
	// ClassDense marks densely-connected parameters.
	ClassDense
)

// Classed is implemented by layers whose parameters belong to a class.
type Classed interface {
	Class() ParamClass
}

// FlopsCounter is implemented by layers that can estimate the forward-pass
// floating point operations for a single sample.
type FlopsCounter interface {
	// FlopsPerSample returns forward-pass FLOPs for one input sample.
	FlopsPerSample() float64
}

func newParam(name string, shape ...int) *Param {
	return &Param{
		Name: name,
		W:    tensor.New(shape...),
		Grad: tensor.New(shape...),
	}
}
