package nn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"fedsched/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	arch := LeNetSmall(1, 16, 16, 10)
	src := arch.Build(rng)
	var buf bytes.Buffer
	if err := src.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	dst := arch.Build(rng) // different random init
	if err := dst.LoadWeights(&buf); err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 1, 3, 1, 16, 16)
	a := src.Forward(x, false)
	b := dst.Forward(x, false)
	if !tensor.Equal(a, b, 0) {
		t.Fatal("loaded network disagrees bit-for-bit with saved network")
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	src := LeNetSmall(1, 16, 16, 10).Build(rng)
	var buf bytes.Buffer
	if err := src.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	other := VGG6Small(1, 16, 16, 10).Build(rng)
	err := other.LoadWeights(&buf)
	if err == nil || !strings.Contains(err.Error(), "checkpoint is for") {
		t.Fatalf("wrong-arch load: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	net := LeNetSmall(1, 16, 16, 10).Build(rng)
	if err := net.LoadWeights(bytes.NewReader([]byte("not a checkpoint at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := net.LoadWeights(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	arch := LeNetSmall(1, 16, 16, 10)
	src := arch.Build(rng)
	var buf bytes.Buffer
	if err := src.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	dst := arch.Build(rng)
	half := buf.Bytes()[:buf.Len()/2]
	if err := dst.LoadWeights(bytes.NewReader(half)); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestLoadRejectsNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	arch := MLP(4, 3, 2)
	src := arch.Build(rng)
	src.Params()[0].W.Data()[0] = math.NaN()
	var buf bytes.Buffer
	if err := src.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	dst := arch.Build(rng)
	if err := dst.LoadWeights(&buf); err == nil {
		t.Fatal("NaN weight accepted")
	}
}
