package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fedsched/internal/tensor"
)

// Conv2DOf is a 2-D convolution over (N, C, H, W) inputs, implemented as
// implicit-GEMM: the blocked matrix kernels consume the input through
// virtual im2col operands synthesized inside their packing stage (see
// tensor.ConvForwardInto and friends), so the (N·OH·OW, InC·K·K) patch
// matrix — historically the largest steady-state training buffer — is
// never materialized. Weights have shape (OutC, InC·K·K).
//
// The layer keeps every per-batch buffer — the matmul-layout results and
// the output activation itself — alive across batches, so on steady-state
// batch sizes the forward and backward passes allocate nothing at all.
// Workspaces are per layer (hence per network), so concurrently-training
// client networks never share scratch memory. The bias add is fused into
// the GEMM epilogue; a directly following ReLU fuses into the NHWC→NCHW
// permute (see NetworkOf.Forward).
type Conv2DOf[T tensor.Float] struct {
	InC, OutC      int
	K, Stride, Pad int
	InH, InW       int // set on first Forward; used for FLOP estimates
	w, b           *ParamOf[T]
	x              *tensor.TensorOf[T] // cached input for backward (weight grad)
	outH, outW     int

	// Reusable workspaces, sized lazily and re-sized only when the batch
	// geometry changes. y is overwritten by the next Forward; downstream
	// layers consume it within the current pass.
	ym *tensor.TensorOf[T] // forward matmul result (N*OH*OW, OutC)
	y  *tensor.TensorOf[T] // forward output (N, OutC, OH, OW)
	gm *tensor.TensorOf[T] // grad re-layout (N*OH*OW, OutC)
	dw *tensor.TensorOf[T] // weight gradient (OutC, InC*K*K)
	dx *tensor.TensorOf[T] // input gradient (N, InC, H, W)
}

// Conv2D is the float64 convolution layer.
type Conv2D = Conv2DOf[float64]

// NewConv2D constructs a float64 convolution layer with He-initialized
// weights.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, pad int) *Conv2D {
	return NewConv2DOf[float64](rng, inC, outC, k, stride, pad)
}

// NewConv2DOf constructs a convolution layer with He-initialized weights.
// The rng draw sequence is identical for every element type, so a float32
// and a float64 network built from the same seed start from the same
// (rounded) weights.
func NewConv2DOf[T tensor.Float](rng *rand.Rand, inC, outC, k, stride, pad int) *Conv2DOf[T] {
	c := &Conv2DOf[T]{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		w: newParamOf[T](fmt.Sprintf("conv%dx%dx%d.w", outC, inC, k), outC, inC*k*k),
		b: newParamOf[T](fmt.Sprintf("conv%dx%dx%d.b", outC, inC, k), outC),
	}
	fanIn := float64(inC * k * k)
	std := math.Sqrt(2.0 / fanIn)
	for i := range c.w.W.Data() {
		c.w.W.Data()[i] = T(rng.NormFloat64() * std)
	}
	return c
}

// Name implements LayerOf.
func (c *Conv2DOf[T]) Name() string {
	return fmt.Sprintf("Conv2D(%d→%d,k=%d,s=%d,p=%d)", c.InC, c.OutC, c.K, c.Stride, c.Pad)
}

// Class implements Classed.
func (c *Conv2DOf[T]) Class() ParamClass { return ClassConv }

// Params implements LayerOf.
func (c *Conv2DOf[T]) Params() []*ParamOf[T] { return []*ParamOf[T]{c.w, c.b} }

// FlopsPerSample implements FlopsCounter. It requires one Forward call (or
// SetInputSize) to know the spatial dimensions.
func (c *Conv2DOf[T]) FlopsPerSample() float64 {
	if c.outH == 0 {
		return 0
	}
	return 2 * float64(c.OutC) * float64(c.outH) * float64(c.outW) * float64(c.InC) * float64(c.K) * float64(c.K)
}

// SetInputSize pre-computes the output geometry for FLOP estimation without
// running a forward pass.
func (c *Conv2DOf[T]) SetInputSize(h, w int) {
	c.InH, c.InW = h, w
	c.outH = tensor.ConvOutSize(h, c.K, c.Stride, c.Pad)
	c.outW = tensor.ConvOutSize(w, c.K, c.Stride, c.Pad)
}

// OutSize returns the output spatial dimensions for an input of (h, w).
func (c *Conv2DOf[T]) OutSize(h, w int) (int, int) {
	return tensor.ConvOutSize(h, c.K, c.Stride, c.Pad), tensor.ConvOutSize(w, c.K, c.Stride, c.Pad)
}

// Forward implements LayerOf. x must be (N, InC, H, W).
//
// fedlint:hotpath
func (c *Conv2DOf[T]) Forward(x *tensor.TensorOf[T], train bool) *tensor.TensorOf[T] {
	return c.forward(x, nil)
}

// forwardFusedReLU implements reluFused: the activation clamp and its
// backward mask ride along with the NHWC→NCHW permute pass.
//
// fedlint:hotpath
func (c *Conv2DOf[T]) forwardFusedReLU(x *tensor.TensorOf[T], train bool, r *ReLUOf[T]) *tensor.TensorOf[T] {
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.OutSize(h, w)
	return c.forward(x, r.ensureMask(n*c.OutC*oh*ow))
}

// forward runs the implicit-GEMM convolution with the bias fused into the
// kernel epilogue, and permutes the (N*OH*OW, OutC) result into
// (N, OutC, OH, OW). A non-nil mask additionally applies ReLU during the
// permute, recording which activations stayed positive.
func (c *Conv2DOf[T]) forward(x *tensor.TensorOf[T], mask []bool) *tensor.TensorOf[T] {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s got input %v", c.Name(), x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	c.SetInputSize(h, w)
	c.x = x
	oh, ow := c.outH, c.outW
	c.ym = tensor.EnsureShape(c.ym, n*oh*ow, c.OutC)
	tensor.ConvForwardInto(c.ym, x, c.w.W, c.b.W, c.K, c.K, c.Stride, c.Pad)
	c.y = tensor.EnsureShape(c.y, n, c.OutC, oh, ow)
	yd, md := c.y.Data(), c.ym.Data()
	for img := 0; img < n; img++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := ((img*oh+oy)*ow + ox) * c.OutC
				for f := 0; f < c.OutC; f++ {
					v := md[row+f]
					out := ((img*c.OutC+f)*oh+oy)*ow + ox
					if mask != nil {
						if v > 0 {
							mask[out] = true
						} else {
							mask[out] = false
							v = 0
						}
					}
					yd[out] = v
				}
			}
		}
	}
	return c.y
}

// Backward implements LayerOf. grad must be (N, OutC, OH, OW). The returned
// input gradient lives in a per-layer workspace that is overwritten by the
// next Backward call; callers consume it within the current pass (which is
// how NetworkOf.Backward drives layers).
//
// fedlint:hotpath
func (c *Conv2DOf[T]) Backward(grad *tensor.TensorOf[T]) *tensor.TensorOf[T] {
	n := grad.Dim(0)
	oh, ow := c.outH, c.outW
	// Re-layout grad to (N*OH*OW, OutC) to mirror the forward matmul.
	c.gm = tensor.EnsureShape(c.gm, n*oh*ow, c.OutC)
	gd, gmd := grad.Data(), c.gm.Data()
	bg := c.b.Grad.Data()
	for img := 0; img < n; img++ {
		for f := 0; f < c.OutC; f++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					v := gd[((img*c.OutC+f)*oh+oy)*ow+ox]
					gmd[((img*oh+oy)*ow+ox)*c.OutC+f] = v
					bg[f] += v
				}
			}
		}
	}
	// dW = gmᵀ·im2col(x), with the patch matrix synthesized in-kernel.
	c.dw = tensor.EnsureShape(c.dw, c.OutC, c.InC*c.K*c.K)
	tensor.ConvGradWeightsInto(c.dw, c.gm, c.x, c.K, c.K, c.Stride, c.Pad)
	c.w.Grad.Add(c.dw)
	// dx = col2im(gm·W), chunked through a bounded pooled buffer instead
	// of a full materialized column-gradient matrix.
	c.dx = tensor.EnsureShape(c.dx, c.x.Shape()...)
	tensor.ConvGradInputInto(c.dx, c.gm, c.w.W, c.K, c.K, c.Stride, c.Pad)
	return c.dx
}
