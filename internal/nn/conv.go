package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fedsched/internal/tensor"
)

// Conv2D is a 2-D convolution over (N, C, H, W) inputs, implemented as
// im2col + matrix multiply. Weights have shape (OutC, InC, K, K).
//
// The layer keeps every per-batch buffer — im2col/col2im scratch, matmul
// results and the output activation itself — alive across batches, so on
// steady-state batch sizes the forward and backward passes allocate
// nothing at all. Workspaces are per layer (hence per network), so
// concurrently-training client networks never share scratch memory.
// The bias add is fused into the matmul epilogue; a directly following
// ReLU fuses into the NHWC→NCHW permute (see Network.Forward).
type Conv2D struct {
	InC, OutC      int
	K, Stride, Pad int
	InH, InW       int // set on first Forward; used for FLOP estimates
	w, b           *Param
	inShape        []int
	outH, outW     int

	// Reusable workspaces, sized lazily and re-sized only when the batch
	// geometry changes. cols must survive from Forward to Backward (the
	// weight gradient needs it); the rest are pure scratch. y is
	// overwritten by the next Forward; downstream layers consume it
	// within the current pass.
	cols  *tensor.Tensor // im2col matrix (N*OH*OW, InC*K*K)
	ym    *tensor.Tensor // forward matmul result (N*OH*OW, OutC)
	y     *tensor.Tensor // forward output (N, OutC, OH, OW)
	gm    *tensor.Tensor // grad re-layout (N*OH*OW, OutC)
	dw    *tensor.Tensor // weight gradient (OutC, InC*K*K)
	dcols *tensor.Tensor // column gradient (N*OH*OW, InC*K*K)
	dx    *tensor.Tensor // input gradient (N, InC, H, W)
}

// NewConv2D constructs a convolution layer with He-initialized weights.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, pad int) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		w: newParam(fmt.Sprintf("conv%dx%dx%d.w", outC, inC, k), outC, inC*k*k),
		b: newParam(fmt.Sprintf("conv%dx%dx%d.b", outC, inC, k), outC),
	}
	fanIn := float64(inC * k * k)
	std := math.Sqrt(2.0 / fanIn)
	for i := range c.w.W.Data() {
		c.w.W.Data()[i] = rng.NormFloat64() * std
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%d→%d,k=%d,s=%d,p=%d)", c.InC, c.OutC, c.K, c.Stride, c.Pad)
}

// Class implements Classed.
func (c *Conv2D) Class() ParamClass { return ClassConv }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// FlopsPerSample implements FlopsCounter. It requires one Forward call (or
// SetInputSize) to know the spatial dimensions.
func (c *Conv2D) FlopsPerSample() float64 {
	if c.outH == 0 {
		return 0
	}
	return 2 * float64(c.OutC) * float64(c.outH) * float64(c.outW) * float64(c.InC) * float64(c.K) * float64(c.K)
}

// SetInputSize pre-computes the output geometry for FLOP estimation without
// running a forward pass.
func (c *Conv2D) SetInputSize(h, w int) {
	c.InH, c.InW = h, w
	c.outH = tensor.ConvOutSize(h, c.K, c.Stride, c.Pad)
	c.outW = tensor.ConvOutSize(w, c.K, c.Stride, c.Pad)
}

// OutSize returns the output spatial dimensions for an input of (h, w).
func (c *Conv2D) OutSize(h, w int) (int, int) {
	return tensor.ConvOutSize(h, c.K, c.Stride, c.Pad), tensor.ConvOutSize(w, c.K, c.Stride, c.Pad)
}

// Forward implements Layer. x must be (N, InC, H, W).
//
// fedlint:hotpath
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return c.forward(x, nil)
}

// forwardFusedReLU implements reluFused: the activation clamp and its
// backward mask ride along with the NHWC→NCHW permute pass.
//
// fedlint:hotpath
func (c *Conv2D) forwardFusedReLU(x *tensor.Tensor, train bool, r *ReLU) *tensor.Tensor {
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.OutSize(h, w)
	return c.forward(x, r.ensureMask(n*c.OutC*oh*ow))
}

// forward lowers the input, multiplies against the filters with the bias
// fused into the kernel epilogue, and permutes the (N*OH*OW, OutC) result
// into (N, OutC, OH, OW). A non-nil mask additionally applies ReLU during
// the permute, recording which activations stayed positive.
func (c *Conv2D) forward(x *tensor.Tensor, mask []bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s got input %v", c.Name(), x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	c.SetInputSize(h, w)
	c.inShape = x.Shape()
	oh, ow := c.outH, c.outW
	c.cols = tensor.EnsureShape(c.cols, n*oh*ow, c.InC*c.K*c.K)
	tensor.Im2ColInto(c.cols, x, c.K, c.K, c.Stride, c.Pad)
	c.ym = tensor.EnsureShape(c.ym, n*oh*ow, c.OutC)
	tensor.MatMulTransBBiasInto(c.ym, c.cols, c.w.W, c.b.W) // (N*OH*OW, OutC) + b
	c.y = tensor.EnsureShape(c.y, n, c.OutC, oh, ow)
	yd, md := c.y.Data(), c.ym.Data()
	for img := 0; img < n; img++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := ((img*oh+oy)*ow + ox) * c.OutC
				for f := 0; f < c.OutC; f++ {
					v := md[row+f]
					out := ((img*c.OutC+f)*oh+oy)*ow + ox
					if mask != nil {
						if v > 0 {
							mask[out] = true
						} else {
							mask[out] = false
							v = 0
						}
					}
					yd[out] = v
				}
			}
		}
	}
	return c.y
}

// Backward implements Layer. grad must be (N, OutC, OH, OW). The returned
// input gradient lives in a per-layer workspace that is overwritten by the
// next Backward call; callers consume it within the current pass (which is
// how Network.Backward drives layers).
//
// fedlint:hotpath
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	oh, ow := c.outH, c.outW
	// Re-layout grad to (N*OH*OW, OutC) to mirror the forward matmul.
	c.gm = tensor.EnsureShape(c.gm, n*oh*ow, c.OutC)
	gd, gmd := grad.Data(), c.gm.Data()
	bg := c.b.Grad.Data()
	for img := 0; img < n; img++ {
		for f := 0; f < c.OutC; f++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					v := gd[((img*c.OutC+f)*oh+oy)*ow+ox]
					gmd[((img*oh+oy)*ow+ox)*c.OutC+f] = v
					bg[f] += v
				}
			}
		}
	}
	// dW = gmᵀ·cols : (OutC, InC*K*K).
	c.dw = tensor.EnsureShape(c.dw, c.OutC, c.InC*c.K*c.K)
	tensor.MatMulTransAInto(c.dw, c.gm, c.cols)
	c.w.Grad.Add(c.dw)
	// dCols = gm·W : (N*OH*OW, InC*K*K), then scatter back to image space.
	c.dcols = tensor.EnsureShape(c.dcols, n*oh*ow, c.InC*c.K*c.K)
	tensor.MatMulInto(c.dcols, c.gm, c.w.W)
	c.dx = tensor.EnsureShape(c.dx, c.inShape...)
	tensor.Col2ImInto(c.dx, c.dcols, c.K, c.K, c.Stride, c.Pad)
	return c.dx
}
