package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fedsched/internal/tensor"
)

// Conv2D is a 2-D convolution over (N, C, H, W) inputs, implemented as
// im2col + matrix multiply. Weights have shape (OutC, InC, K, K).
type Conv2D struct {
	InC, OutC      int
	K, Stride, Pad int
	InH, InW       int // set on first Forward; used for FLOP estimates
	w, b           *Param
	cols           *tensor.Tensor // cached im2col matrix
	inShape        []int
	outH, outW     int
}

// NewConv2D constructs a convolution layer with He-initialized weights.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, pad int) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		w: newParam(fmt.Sprintf("conv%dx%dx%d.w", outC, inC, k), outC, inC*k*k),
		b: newParam(fmt.Sprintf("conv%dx%dx%d.b", outC, inC, k), outC),
	}
	fanIn := float64(inC * k * k)
	std := math.Sqrt(2.0 / fanIn)
	for i := range c.w.W.Data() {
		c.w.W.Data()[i] = rng.NormFloat64() * std
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%d→%d,k=%d,s=%d,p=%d)", c.InC, c.OutC, c.K, c.Stride, c.Pad)
}

// Class implements Classed.
func (c *Conv2D) Class() ParamClass { return ClassConv }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// FlopsPerSample implements FlopsCounter. It requires one Forward call (or
// SetInputSize) to know the spatial dimensions.
func (c *Conv2D) FlopsPerSample() float64 {
	if c.outH == 0 {
		return 0
	}
	return 2 * float64(c.OutC) * float64(c.outH) * float64(c.outW) * float64(c.InC) * float64(c.K) * float64(c.K)
}

// SetInputSize pre-computes the output geometry for FLOP estimation without
// running a forward pass.
func (c *Conv2D) SetInputSize(h, w int) {
	c.InH, c.InW = h, w
	c.outH = tensor.ConvOutSize(h, c.K, c.Stride, c.Pad)
	c.outW = tensor.ConvOutSize(w, c.K, c.Stride, c.Pad)
}

// OutSize returns the output spatial dimensions for an input of (h, w).
func (c *Conv2D) OutSize(h, w int) (int, int) {
	return tensor.ConvOutSize(h, c.K, c.Stride, c.Pad), tensor.ConvOutSize(w, c.K, c.Stride, c.Pad)
}

// Forward implements Layer. x must be (N, InC, H, W).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s got input %v", c.Name(), x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	c.SetInputSize(h, w)
	c.inShape = x.Shape()
	c.cols = tensor.Im2Col(x, c.K, c.K, c.Stride, c.Pad) // (N*OH*OW, InC*K*K)
	ym := tensor.MatMulTransB(c.cols, c.w.W)             // (N*OH*OW, OutC)
	oh, ow := c.outH, c.outW
	y := tensor.New(n, c.OutC, oh, ow)
	yd, md, bd := y.Data(), ym.Data(), c.b.W.Data()
	for img := 0; img < n; img++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := ((img*oh+oy)*ow + ox) * c.OutC
				for f := 0; f < c.OutC; f++ {
					yd[((img*c.OutC+f)*oh+oy)*ow+ox] = md[row+f] + bd[f]
				}
			}
		}
	}
	return y
}

// Backward implements Layer. grad must be (N, OutC, OH, OW).
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	oh, ow := c.outH, c.outW
	// Re-layout grad to (N*OH*OW, OutC) to mirror the forward matmul.
	gm := tensor.New(n*oh*ow, c.OutC)
	gd, gmd := grad.Data(), gm.Data()
	bg := c.b.Grad.Data()
	for img := 0; img < n; img++ {
		for f := 0; f < c.OutC; f++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					v := gd[((img*c.OutC+f)*oh+oy)*ow+ox]
					gmd[((img*oh+oy)*ow+ox)*c.OutC+f] = v
					bg[f] += v
				}
			}
		}
	}
	// dW = gmᵀ·cols : (OutC, InC*K*K).
	dw := tensor.MatMulTransA(gm, c.cols)
	c.w.Grad.Add(dw)
	// dCols = gm·W : (N*OH*OW, InC*K*K), then scatter back to image space.
	dcols := tensor.MatMul(gm, c.w.W)
	return tensor.Col2Im(dcols, c.inShape[0], c.inShape[1], c.inShape[2], c.inShape[3], c.K, c.K, c.Stride, c.Pad)
}
