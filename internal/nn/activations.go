package nn

import (
	"fmt"
	"math/rand"

	"fedsched/internal/tensor"
)

// sameStorage reports whether two tensors share the same backing array —
// the cheap identity check behind the cached-view reuse in Flatten.
func sameStorage[T tensor.Float](a, b *tensor.TensorOf[T]) bool {
	ad, bd := a.Data(), b.Data()
	return len(ad) == len(bd) && (len(ad) == 0 || &ad[0] == &bd[0])
}

// ReLUOf applies max(0, x) elementwise.
//
// When a ReLU directly follows a Dense or Conv2D layer, NetworkOf.Forward
// fuses the activation into the producer's kernel: the producer calls
// ensureMask to hand the clamp decision back to this layer, and this
// layer's Forward is skipped for that pass. Backward is identical either
// way — it only consumes the mask.
type ReLUOf[T tensor.Float] struct {
	mask []bool
	y    *tensor.TensorOf[T] // forward output (unfused path)
	dx   *tensor.TensorOf[T] // input gradient
}

// ReLU is the float64 ReLU layer.
type ReLU = ReLUOf[float64]

// NewReLU returns a float64 ReLU activation layer.
func NewReLU() *ReLU { return NewReLUOf[float64]() }

// NewReLUOf returns a ReLU activation layer.
func NewReLUOf[T tensor.Float]() *ReLUOf[T] { return &ReLUOf[T]{} }

// Name implements LayerOf.
func (r *ReLUOf[T]) Name() string { return "ReLU" }

// Params implements LayerOf.
func (r *ReLUOf[T]) Params() []*ParamOf[T] { return nil }

// ensureMask returns the layer's mask buffer resized to n entries. Fused
// producers fill it with (pre-clamp value > 0) per output element.
func (r *ReLUOf[T]) ensureMask(n int) []bool {
	if cap(r.mask) < n {
		r.mask = make([]bool, n)
	}
	r.mask = r.mask[:n]
	return r.mask
}

// Forward implements LayerOf.
//
// fedlint:hotpath
func (r *ReLUOf[T]) Forward(x *tensor.TensorOf[T], train bool) *tensor.TensorOf[T] {
	r.y = tensor.EnsureShape(r.y, x.Shape()...)
	mask := r.ensureMask(x.Len())
	xd, yd := x.Data(), r.y.Data()
	for i, v := range xd {
		if v > 0 {
			mask[i] = true
			yd[i] = v
		} else {
			mask[i] = false
			yd[i] = 0
		}
	}
	return r.y
}

// Backward implements LayerOf.
//
// fedlint:hotpath
func (r *ReLUOf[T]) Backward(grad *tensor.TensorOf[T]) *tensor.TensorOf[T] {
	r.dx = tensor.EnsureShape(r.dx, grad.Shape()...)
	gd, dd := grad.Data(), r.dx.Data()
	for i, v := range gd {
		if r.mask[i] {
			dd[i] = v
		} else {
			dd[i] = 0
		}
	}
	return r.dx
}

// FlattenOf reshapes (N, ...) inputs to (N, prod(...)).
//
// Reshape only wraps the storage in a new header, but even that small
// allocation recurs every batch; since upstream layers hand Flatten the
// same workspace tensor each pass, the views are cached and reused as
// long as the storage identity and geometry match.
type FlattenOf[T tensor.Float] struct {
	inShape []int
	out     *tensor.TensorOf[T] // cached forward view
	back    *tensor.TensorOf[T] // cached backward view
}

// Flatten is the float64 flatten layer.
type Flatten = FlattenOf[float64]

// NewFlatten returns a float64 flatten layer.
func NewFlatten() *Flatten { return NewFlattenOf[float64]() }

// NewFlattenOf returns a flatten layer.
func NewFlattenOf[T tensor.Float]() *FlattenOf[T] { return &FlattenOf[T]{} }

// Name implements LayerOf.
func (f *FlattenOf[T]) Name() string { return "Flatten" }

// Params implements LayerOf.
func (f *FlattenOf[T]) Params() []*ParamOf[T] { return nil }

// Forward implements LayerOf.
//
// fedlint:hotpath
func (f *FlattenOf[T]) Forward(x *tensor.TensorOf[T], train bool) *tensor.TensorOf[T] {
	f.inShape = x.Shape()
	n := x.Dim(0)
	cols := x.Len() / n
	if f.out == nil || !sameStorage(f.out, x) || f.out.Dim(0) != n || f.out.Dim(1) != cols {
		f.out = x.Reshape(n, cols)
	}
	return f.out
}

// Backward implements LayerOf.
//
// fedlint:hotpath
func (f *FlattenOf[T]) Backward(grad *tensor.TensorOf[T]) *tensor.TensorOf[T] {
	if f.back == nil || !sameStorage(f.back, grad) || !shapeEq(f.back.Shape(), f.inShape) {
		f.back = grad.Reshape(f.inShape...)
	}
	return f.back
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, d := range a {
		if b[i] != d {
			return false
		}
	}
	return true
}

// MaxPool2DOf is a non-overlapping 2-D max pooling layer over (N, C, H, W).
type MaxPool2DOf[T tensor.Float] struct {
	Size, Stride int
	argmax       []int
	inShape      []int
	y            *tensor.TensorOf[T] // forward output
	dx           *tensor.TensorOf[T] // input gradient
}

// MaxPool2D is the float64 max-pool layer.
type MaxPool2D = MaxPool2DOf[float64]

// NewMaxPool2D constructs a float64 max-pool layer with the given window
// and stride.
func NewMaxPool2D(size, stride int) *MaxPool2D {
	return NewMaxPool2DOf[float64](size, stride)
}

// NewMaxPool2DOf constructs a max-pool layer with the given window and
// stride.
func NewMaxPool2DOf[T tensor.Float](size, stride int) *MaxPool2DOf[T] {
	return &MaxPool2DOf[T]{Size: size, Stride: stride}
}

// Name implements LayerOf.
func (p *MaxPool2DOf[T]) Name() string { return fmt.Sprintf("MaxPool2D(%d,s=%d)", p.Size, p.Stride) }

// Params implements LayerOf.
func (p *MaxPool2DOf[T]) Params() []*ParamOf[T] { return nil }

// Forward implements LayerOf.
//
// fedlint:hotpath
func (p *MaxPool2DOf[T]) Forward(x *tensor.TensorOf[T], train bool) *tensor.TensorOf[T] {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-p.Size)/p.Stride + 1
	ow := (w-p.Size)/p.Stride + 1
	p.inShape = x.Shape()
	p.y = tensor.EnsureShape(p.y, n, c, oh, ow)
	y := p.y
	if cap(p.argmax) < y.Len() {
		p.argmax = make([]int, y.Len())
	}
	p.argmax = p.argmax[:y.Len()]
	xd, yd := x.Data(), y.Data()
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := base + (oy*p.Stride)*w + ox*p.Stride
					best := xd[bestIdx]
					for ky := 0; ky < p.Size; ky++ {
						row := base + (oy*p.Stride+ky)*w + ox*p.Stride
						for kx := 0; kx < p.Size; kx++ {
							if v := xd[row+kx]; v > best {
								best, bestIdx = v, row+kx
							}
						}
					}
					out := ((img*c+ch)*oh+oy)*ow + ox
					yd[out] = best
					p.argmax[out] = bestIdx
				}
			}
		}
	}
	return y
}

// Backward implements LayerOf.
//
// fedlint:hotpath
func (p *MaxPool2DOf[T]) Backward(grad *tensor.TensorOf[T]) *tensor.TensorOf[T] {
	p.dx = tensor.EnsureShape(p.dx, p.inShape...)
	p.dx.Zero() // scatter-add below touches only argmax positions
	dd, gd := p.dx.Data(), grad.Data()
	for i, src := range p.argmax {
		dd[src] += gd[i]
	}
	return p.dx
}

// DropoutOf zeroes activations with probability P during training and
// scales the survivors by 1/(1−P) (inverted dropout). It is an identity at
// inference time. The rng draw sequence per element is the same for every
// element type, so f32 and f64 networks driven by the same seed drop the
// same activations.
type DropoutOf[T tensor.Float] struct {
	P    float64
	rng  *rand.Rand
	keep []bool
	y    *tensor.TensorOf[T] // forward output (training path)
	dx   *tensor.TensorOf[T] // input gradient
}

// Dropout is the float64 dropout layer.
type Dropout = DropoutOf[float64]

// NewDropout constructs a float64 dropout layer driven by rng.
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	return NewDropoutOf[float64](rng, p)
}

// NewDropoutOf constructs a dropout layer driven by rng.
func NewDropoutOf[T tensor.Float](rng *rand.Rand, p float64) *DropoutOf[T] {
	return &DropoutOf[T]{P: p, rng: rng}
}

// Name implements LayerOf.
func (d *DropoutOf[T]) Name() string { return fmt.Sprintf("Dropout(%.2f)", d.P) }

// Params implements LayerOf.
func (d *DropoutOf[T]) Params() []*ParamOf[T] { return nil }

// Forward implements LayerOf.
//
// fedlint:hotpath
func (d *DropoutOf[T]) Forward(x *tensor.TensorOf[T], train bool) *tensor.TensorOf[T] {
	if !train || d.P <= 0 {
		d.keep = nil
		return x
	}
	d.y = tensor.EnsureShape(d.y, x.Shape()...)
	if cap(d.keep) < x.Len() {
		d.keep = make([]bool, x.Len())
	}
	d.keep = d.keep[:x.Len()]
	scale := T(1 / (1 - d.P))
	xd, yd := x.Data(), d.y.Data()
	for i, v := range xd {
		if d.rng.Float64() < d.P {
			d.keep[i] = false
			yd[i] = 0
		} else {
			d.keep[i] = true
			yd[i] = v * scale
		}
	}
	return d.y
}

// Backward implements LayerOf.
//
// fedlint:hotpath
func (d *DropoutOf[T]) Backward(grad *tensor.TensorOf[T]) *tensor.TensorOf[T] {
	if d.keep == nil {
		return grad
	}
	d.dx = tensor.EnsureShape(d.dx, grad.Shape()...)
	gd, dd := grad.Data(), d.dx.Data()
	scale := T(1 / (1 - d.P))
	for i, v := range gd {
		if d.keep[i] {
			dd[i] = v * scale
		} else {
			dd[i] = 0
		}
	}
	return d.dx
}
