package nn

import (
	"fmt"
	"math/rand"

	"fedsched/internal/tensor"
)

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "ReLU" }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Clone()
	if cap(r.mask) < y.Len() {
		r.mask = make([]bool, y.Len())
	}
	r.mask = r.mask[:y.Len()]
	for i, v := range y.Data() {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			y.Data()[i] = 0
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := grad.Clone()
	for i := range g.Data() {
		if !r.mask[i] {
			g.Data()[i] = 0
		}
	}
	return g
}

// Flatten reshapes (N, ...) inputs to (N, prod(...)).
type Flatten struct {
	inShape []int
}

// NewFlatten returns a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "Flatten" }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = x.Shape()
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// MaxPool2D is a non-overlapping 2-D max pooling layer over (N, C, H, W).
type MaxPool2D struct {
	Size, Stride int
	argmax       []int
	inShape      []int
}

// NewMaxPool2D constructs a max-pool layer with the given window and stride.
func NewMaxPool2D(size, stride int) *MaxPool2D {
	return &MaxPool2D{Size: size, Stride: stride}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("MaxPool2D(%d,s=%d)", p.Size, p.Stride) }

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-p.Size)/p.Stride + 1
	ow := (w-p.Size)/p.Stride + 1
	p.inShape = x.Shape()
	y := tensor.New(n, c, oh, ow)
	if cap(p.argmax) < y.Len() {
		p.argmax = make([]int, y.Len())
	}
	p.argmax = p.argmax[:y.Len()]
	xd, yd := x.Data(), y.Data()
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := base + (oy*p.Stride)*w + ox*p.Stride
					best := xd[bestIdx]
					for ky := 0; ky < p.Size; ky++ {
						row := base + (oy*p.Stride+ky)*w + ox*p.Stride
						for kx := 0; kx < p.Size; kx++ {
							if v := xd[row+kx]; v > best {
								best, bestIdx = v, row+kx
							}
						}
					}
					out := ((img*c+ch)*oh+oy)*ow + ox
					yd[out] = best
					p.argmax[out] = bestIdx
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.inShape...)
	dd, gd := dx.Data(), grad.Data()
	for i, src := range p.argmax {
		dd[src] += gd[i]
	}
	return dx
}

// Dropout zeroes activations with probability P during training and scales
// the survivors by 1/(1−P) (inverted dropout). It is an identity at
// inference time.
type Dropout struct {
	P    float64
	rng  *rand.Rand
	keep []bool
}

// NewDropout constructs a dropout layer driven by rng.
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("Dropout(%.2f)", d.P) }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P <= 0 {
		d.keep = nil
		return x
	}
	y := x.Clone()
	if cap(d.keep) < y.Len() {
		d.keep = make([]bool, y.Len())
	}
	d.keep = d.keep[:y.Len()]
	scale := 1 / (1 - d.P)
	for i := range y.Data() {
		if d.rng.Float64() < d.P {
			d.keep[i] = false
			y.Data()[i] = 0
		} else {
			d.keep[i] = true
			y.Data()[i] *= scale
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.keep == nil {
		return grad
	}
	g := grad.Clone()
	scale := 1 / (1 - d.P)
	for i := range g.Data() {
		if d.keep[i] {
			g.Data()[i] *= scale
		} else {
			g.Data()[i] = 0
		}
	}
	return g
}
