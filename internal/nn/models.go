package nn

import (
	"fmt"
	"math/rand"

	"fedsched/internal/tensor"
)

// Arch describes a network architecture analytically, without allocating
// weights. The device simulator and profiler consume the derived parameter
// counts, FLOPs and byte sizes; accuracy experiments call Build to
// materialize a trainable Network.
//
// The catalog includes the paper's two networks at paper scale (LeNet with
// ~205K parameters, VGG6 with ~5.45M parameters — §III-A) and reduced-scale
// variants used for the in-repo accuracy experiments, where training a
// paper-scale VGG on synthetic data would waste cycles without changing
// the scheduling conclusions.
type Arch struct {
	Name          string
	InC, InH, InW int
	Classes       int
	stages        []stage
}

type stage struct {
	kind   string // "conv", "pool", "relu", "dense", "flatten"
	outC   int    // conv filters or dense width
	k      int    // conv kernel / pool size
	stride int
	pad    int
}

// LeNet returns the paper-scale LeNet variant (~205K parameters on 28×28
// grayscale input, matching the paper's reported 205K).
func LeNet(inC, inH, inW, classes int) *Arch {
	a := &Arch{Name: "LeNet", InC: inC, InH: inH, InW: inW, Classes: classes}
	a.conv(20, 5, 1, 0).relu().pool(2, 2)
	a.conv(40, 5, 1, 0).relu().pool(2, 2)
	a.flatten().dense(283).relu().dense(classes)
	return a
}

// VGG6 returns the paper-scale VGG6: five stacked 3×3 convolution layers
// with one densely-connected hidden layer (the paper tailors VGG16 this
// way, §VII). On 28×28 input it has ~5.44M parameters — the paper reports
// 5.45M — which puts the serialized payload at ≈65 MB, matching Table II's
// 65.4 MB, and a per-sample training cost ≈20× LeNet's, matching the
// observed Table II epoch-time ratios (≈16-20×).
func VGG6(inC, inH, inW, classes int) *Arch {
	a := &Arch{Name: "VGG6", InC: inC, InH: inH, InW: inW, Classes: classes}
	a.conv(32, 3, 1, 1).relu()
	a.conv(48, 3, 1, 1).relu().pool(2, 2)
	a.conv(64, 3, 1, 1).relu()
	a.conv(80, 3, 1, 1).relu().pool(2, 2)
	a.conv(96, 3, 1, 1).relu()
	a.flatten().dense(1120).relu().dense(classes)
	return a
}

// LeNetSmall is the reduced-scale LeNet used by in-repo accuracy
// experiments on the 16×16 synthetic datasets.
func LeNetSmall(inC, inH, inW, classes int) *Arch {
	a := &Arch{Name: "LeNet-S", InC: inC, InH: inH, InW: inW, Classes: classes}
	a.conv(6, 5, 1, 2).relu().pool(2, 2)
	a.conv(12, 5, 1, 0).relu().pool(2, 2)
	a.flatten().dense(48).relu().dense(classes)
	return a
}

// VGG6Small is the reduced-scale VGG6 variant for accuracy experiments.
func VGG6Small(inC, inH, inW, classes int) *Arch {
	a := &Arch{Name: "VGG6-S", InC: inC, InH: inH, InW: inW, Classes: classes}
	a.conv(8, 3, 1, 1).relu()
	a.conv(16, 3, 1, 1).relu().pool(2, 2)
	a.conv(24, 3, 1, 1).relu()
	a.conv(32, 3, 1, 1).relu().pool(2, 2)
	a.conv(32, 3, 1, 1).relu()
	a.flatten().dense(classes)
	return a
}

// LeNetVariant scales the LeNet filter/width counts by scale (≥0.25); the
// profiler measures several variants to regress time against parameters.
func LeNetVariant(inC, inH, inW, classes int, scale float64) *Arch {
	f := func(base int) int {
		v := int(float64(base)*scale + 0.5)
		if v < 2 {
			v = 2
		}
		return v
	}
	a := &Arch{Name: fmt.Sprintf("LeNet-x%.2g", scale), InC: inC, InH: inH, InW: inW, Classes: classes}
	a.conv(f(20), 5, 1, 0).relu().pool(2, 2)
	a.conv(f(40), 5, 1, 0).relu().pool(2, 2)
	a.flatten().dense(f(283)).relu().dense(classes)
	return a
}

// VGG6Variant scales the VGG6 channel/width counts by scale.
func VGG6Variant(inC, inH, inW, classes int, scale float64) *Arch {
	f := func(base int) int {
		v := int(float64(base)*scale + 0.5)
		if v < 2 {
			v = 2
		}
		return v
	}
	a := &Arch{Name: fmt.Sprintf("VGG6-x%.2g", scale), InC: inC, InH: inH, InW: inW, Classes: classes}
	a.conv(f(32), 3, 1, 1).relu()
	a.conv(f(48), 3, 1, 1).relu().pool(2, 2)
	a.conv(f(64), 3, 1, 1).relu()
	a.conv(f(80), 3, 1, 1).relu().pool(2, 2)
	a.conv(f(96), 3, 1, 1).relu()
	a.flatten().dense(f(1120)).relu().dense(classes)
	return a
}

// MLP returns a simple multi-layer perceptron architecture, used by tests
// and as an extra profiling point.
func MLP(in, hidden, classes int) *Arch {
	a := &Arch{Name: fmt.Sprintf("MLP-%d", hidden), InC: 1, InH: 1, InW: in, Classes: classes}
	a.flatten().dense(hidden).relu().dense(classes)
	return a
}

func (a *Arch) conv(filters, k, stride, pad int) *Arch {
	a.stages = append(a.stages, stage{kind: "conv", outC: filters, k: k, stride: stride, pad: pad})
	return a
}
func (a *Arch) pool(k, stride int) *Arch {
	a.stages = append(a.stages, stage{kind: "pool", k: k, stride: stride})
	return a
}
func (a *Arch) relu() *Arch {
	a.stages = append(a.stages, stage{kind: "relu"})
	return a
}
func (a *Arch) flatten() *Arch {
	a.stages = append(a.stages, stage{kind: "flatten"})
	return a
}
func (a *Arch) dense(out int) *Arch {
	a.stages = append(a.stages, stage{kind: "dense", outC: out})
	return a
}

// walk traverses stages tracking the activation geometry, invoking fn with
// each stage and the input geometry it sees. flatLen is valid once flat.
func (a *Arch) walk(fn func(s stage, c, h, w, flatLen int)) {
	c, h, w := a.InC, a.InH, a.InW
	flat := 0
	for _, s := range a.stages {
		fn(s, c, h, w, flat)
		switch s.kind {
		case "conv":
			h = tensor.ConvOutSize(h, s.k, s.stride, s.pad)
			w = tensor.ConvOutSize(w, s.k, s.stride, s.pad)
			c = s.outC
		case "pool":
			h = (h-s.k)/s.stride + 1
			w = (w-s.k)/s.stride + 1
		case "flatten":
			flat = c * h * w
		case "dense":
			flat = s.outC
		}
	}
}

// ParamCounts returns the conv / dense parameter split, computed
// analytically (weights plus biases).
func (a *Arch) ParamCounts() (conv, dense int) {
	a.walk(func(s stage, c, h, w, flat int) {
		switch s.kind {
		case "conv":
			conv += s.outC*c*s.k*s.k + s.outC
		case "dense":
			dense += flat*s.outC + s.outC
		}
	})
	return conv, dense
}

// ParamCount returns the total scalar parameter count.
func (a *Arch) ParamCount() int {
	c, d := a.ParamCounts()
	return c + d
}

// FlopsPerSample returns the analytic forward-pass FLOPs for one sample.
func (a *Arch) FlopsPerSample() float64 {
	total := 0.0
	a.walk(func(s stage, c, h, w, flat int) {
		switch s.kind {
		case "conv":
			oh := tensor.ConvOutSize(h, s.k, s.stride, s.pad)
			ow := tensor.ConvOutSize(w, s.k, s.stride, s.pad)
			total += 2 * float64(s.outC) * float64(oh) * float64(ow) * float64(c) * float64(s.k) * float64(s.k)
		case "dense":
			total += 2 * float64(flat) * float64(s.outC)
		}
	})
	return total
}

// TrainFlopsPerSample estimates the training cost per sample: forward plus
// the two backward matrix passes, conventionally ≈3× forward.
func (a *Arch) TrainFlopsPerSample() float64 { return 3 * a.FlopsPerSample() }

// SizeBytes returns the serialized model size (communication payload).
func (a *Arch) SizeBytes() int { return a.ParamCount() * BytesPerParam }

// Build materializes the architecture into a trainable float64 Network
// with weights initialized from rng. rng is the only entropy source in the
// whole model lifecycle — He init here (NewDense/NewConv2D) and dropout
// masks later all draw from generators seeded from fl.Config.Seed, so
// initialization is reproducible bit-for-bit from the seed. The fedlint
// nondet pass rejects any call to the global math/rand functions in this
// package, keeping it that way.
func (a *Arch) Build(rng *rand.Rand) *Network {
	return BuildNetwork[float64](a, rng)
}

// BuildNetwork materializes the architecture at the chosen element type.
// The rng draw sequence is independent of T, so float32 and float64
// networks built from the same seed start from the same (rounded) weights.
func BuildNetwork[T tensor.Float](a *Arch, rng *rand.Rand) *NetworkOf[T] {
	var layers []LayerOf[T]
	a.walk(func(s stage, c, h, w, flat int) {
		switch s.kind {
		case "conv":
			layers = append(layers, NewConv2DOf[T](rng, c, s.outC, s.k, s.stride, s.pad))
		case "pool":
			layers = append(layers, NewMaxPool2DOf[T](s.k, s.stride))
		case "relu":
			layers = append(layers, NewReLUOf[T]())
		case "flatten":
			layers = append(layers, NewFlattenOf[T]())
		case "dense":
			layers = append(layers, NewDenseOf[T](rng, flat, s.outC))
		}
	})
	net := NewNetworkOf(a.Name, layers...)
	net.arch = a
	return net
}
