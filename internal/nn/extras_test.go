package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedsched/internal/tensor"
)

func TestAvgPoolForwardBackward(t *testing.T) {
	x := tensor.From([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	p := NewAvgPool2D(2, 2)
	y := p.Forward(x, true)
	want := []float64{3.5, 5.5, 11.5, 13.5}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("avg pool output %v, want %v", y.Data(), want)
		}
	}
	g := tensor.From([]float64{4, 8, 12, 16}, 1, 1, 2, 2)
	dx := p.Backward(g)
	// Each input in a window receives grad/4.
	if dx.At(0, 0, 0, 0) != 1 || dx.At(0, 0, 0, 2) != 2 || dx.At(0, 0, 2, 0) != 3 || dx.At(0, 0, 3, 3) != 4 {
		t.Fatalf("avg pool backward %v", dx.Data())
	}
	if math.Abs(dx.Sum()-g.Sum()) > 1e-12 {
		t.Fatal("avg pool backward must conserve gradient mass")
	}
}

func TestAvgPoolGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := NewNetwork("avg",
		NewConv2D(rng, 1, 2, 3, 1, 1),
		NewTanh(),
		NewAvgPool2D(2, 2),
		NewFlatten(),
		NewDense(rng, 2*3*3, 3),
	)
	x := tensor.Randn(rng, 1, 2, 1, 6, 6)
	if worst := GradCheck(net, x, []int{0, 2}, 1e-5); worst > 1e-3 {
		t.Fatalf("avg-pool/tanh grad check worst relative error %v", worst)
	}
}

func TestSigmoidGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	net := NewNetwork("sig",
		NewDense(rng, 6, 5),
		NewSigmoid(),
		NewDense(rng, 5, 3),
	)
	x := tensor.Randn(rng, 1, 4, 6)
	if worst := GradCheck(net, x, []int{0, 1, 2, 0}, 1e-5); worst > 1e-4 {
		t.Fatalf("sigmoid grad check worst relative error %v", worst)
	}
}

func TestTanhSigmoidRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := tensor.Randn(rng, 10, 2, 50)
	y := NewTanh().Forward(x, false)
	for _, v := range y.Data() {
		if v < -1 || v > 1 {
			t.Fatalf("tanh out of range: %v", v)
		}
	}
	z := NewSigmoid().Forward(x, false)
	for _, v := range z.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid out of range: %v", v)
		}
	}
}

func TestLRSchedules(t *testing.T) {
	c := ConstantLR(0.1)
	if c(0) != 0.1 || c(100) != 0.1 {
		t.Fatal("constant schedule broken")
	}
	s := StepDecayLR(0.1, 0.5, 10)
	if s(0) != 0.1 || s(9) != 0.1 {
		t.Fatal("step decay too eager")
	}
	if math.Abs(s(10)-0.05) > 1e-12 || math.Abs(s(25)-0.025) > 1e-12 {
		t.Fatalf("step decay wrong: %v %v", s(10), s(25))
	}
	if StepDecayLR(0.1, 0.5, 0)(100) != 0.1 {
		t.Fatal("zero-interval step decay should be constant")
	}
	cos := CosineLR(0.1, 0.01, 100)
	if math.Abs(cos(0)-0.1) > 1e-12 {
		t.Fatalf("cosine start %v", cos(0))
	}
	if math.Abs(cos(100)-0.01) > 1e-12 || math.Abs(cos(200)-0.01) > 1e-12 {
		t.Fatal("cosine floor broken")
	}
	mid := cos(50)
	if mid <= 0.01 || mid >= 0.1 {
		t.Fatalf("cosine midpoint %v", mid)
	}
	// Monotone decreasing.
	prev := cos(0)
	for i := 1; i <= 100; i += 7 {
		if cos(i) > prev+1e-12 {
			t.Fatalf("cosine not decreasing at %d", i)
		}
		prev = cos(i)
	}
}

func TestClipGradients(t *testing.T) {
	p := newParam("w", 2)
	p.Grad.Data()[0], p.Grad.Data()[1] = 3, 4 // norm 5
	norm := ClipGradients([]*Param{p}, 2.5)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v, want 5", norm)
	}
	if math.Abs(p.Grad.Data()[0]-1.5) > 1e-12 || math.Abs(p.Grad.Data()[1]-2) > 1e-12 {
		t.Fatalf("clipped grads %v", p.Grad.Data())
	}
	// Below threshold: untouched. Disabled: untouched but norm reported.
	p.Grad.Data()[0], p.Grad.Data()[1] = 0.3, 0.4
	ClipGradients([]*Param{p}, 2.5)
	if p.Grad.Data()[0] != 0.3 {
		t.Fatal("clip touched small gradient")
	}
	if n := ClipGradients([]*Param{p}, 0); math.Abs(n-0.5) > 1e-12 {
		t.Fatalf("disabled clip norm %v", n)
	}
}

func TestTrainingWithScheduleAndClipping(t *testing.T) {
	// Integration: a tanh/avg-pool LeNet variant trains with a decaying
	// learning rate and clipping without diverging.
	rng := rand.New(rand.NewSource(24))
	net := NewNetwork("classic-lenet",
		NewConv2D(rng, 1, 4, 5, 1, 2),
		NewTanh(),
		NewAvgPool2D(2, 2),
		NewFlatten(),
		NewDense(rng, 4*8*8, 10),
	)
	x := tensor.Randn(rng, 1, 40, 1, 16, 16)
	labels := make([]int, 40)
	for i := range labels {
		labels[i] = i % 10
		// Inject class signal.
		for k := 0; k < 16; k++ {
			x.Set(2, i, 0, labels[i], k)
		}
	}
	sched := StepDecayLR(0.05, 0.5, 10)
	opt := NewSGD(sched(0), 0.9, 0)
	first := net.TrainBatch(x, labels)
	ClipGradients(net.Params(), 5)
	opt.Step(net.Params())
	var last float64
	for step := 1; step < 40; step++ {
		opt.LR = sched(step)
		last = net.TrainBatch(x, labels)
		ClipGradients(net.Params(), 5)
		opt.Step(net.Params())
	}
	if math.IsNaN(last) || last > first {
		t.Fatalf("loss did not improve: %v → %v", first, last)
	}
}
