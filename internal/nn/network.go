package nn

import (
	"fmt"
	"strings"

	"fedsched/internal/tensor"
)

// BytesPerParam is the on-the-wire size of one model parameter. The paper's
// DL4J checkpoints serialize at ≈12 bytes/parameter (LeNet 205K → 2.5 MB,
// VGG6 5.45M → 65.4 MB): float64 weights plus updater state. We use the
// same ratio so communication times match Table II.
const BytesPerParam = 12

// Network is a feed-forward stack of layers trained with softmax
// cross-entropy.
type Network struct {
	// Arch is a short architecture label such as "LeNet" or "VGG6".
	Arch   string
	Layers []Layer
}

// NewNetwork builds a network from layers with the given architecture name.
func NewNetwork(arch string, layers ...Layer) *Network {
	return &Network{Arch: arch, Layers: layers}
}

// Forward runs all layers and returns the logits.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates a logits gradient through all layers, accumulating
// parameter gradients.
func (n *Network) Backward(grad *tensor.Tensor) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// TrainBatch runs a forward/backward pass on one mini-batch and returns the
// loss. Parameter gradients are left accumulated for the optimizer.
func (n *Network) TrainBatch(x *tensor.Tensor, labels []int) float64 {
	logits := n.Forward(x, true)
	loss, grad := SoftmaxCrossEntropy(logits, labels)
	n.Backward(grad)
	return loss
}

// Predict returns the predicted class per sample.
func (n *Network) Predict(x *tensor.Tensor) []int {
	return Argmax(n.Forward(x, false))
}

// Params returns every trainable parameter in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ParamCount returns the total number of scalar parameters.
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.Len()
	}
	return total
}

// ParamCounts returns the parameter totals split into convolutional and
// dense classes — the two regressors of the profiler's step-1 model.
func (n *Network) ParamCounts() (conv, dense int) {
	for _, l := range n.Layers {
		c, ok := l.(Classed)
		if !ok {
			continue
		}
		sz := 0
		for _, p := range l.Params() {
			sz += p.W.Len()
		}
		switch c.Class() {
		case ClassConv:
			conv += sz
		case ClassDense:
			dense += sz
		}
	}
	return conv, dense
}

// FlopsPerSample estimates forward-pass FLOPs for a single sample. Training
// costs roughly 3× this (forward + input-grad + weight-grad passes).
func (n *Network) FlopsPerSample() float64 {
	total := 0.0
	for _, l := range n.Layers {
		if f, ok := l.(FlopsCounter); ok {
			total += f.FlopsPerSample()
		}
	}
	return total
}

// SizeBytes returns the serialized model size used for communication-time
// modelling.
func (n *Network) SizeBytes() int {
	return n.ParamCount() * BytesPerParam
}

// GetWeights returns a deep copy of all parameter tensors, in order.
func (n *Network) GetWeights() []*tensor.Tensor {
	ps := n.Params()
	out := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.W.Clone()
	}
	return out
}

// SetWeights overwrites all parameters from the given tensors (same order
// and shapes as GetWeights).
func (n *Network) SetWeights(ws []*tensor.Tensor) {
	ps := n.Params()
	if len(ws) != len(ps) {
		panic(fmt.Sprintf("nn: SetWeights got %d tensors, model has %d params", len(ws), len(ps)))
	}
	for i, p := range ps {
		if p.W.Len() != ws[i].Len() {
			panic(fmt.Sprintf("nn: SetWeights param %d size mismatch", i))
		}
		copy(p.W.Data(), ws[i].Data())
	}
}

// ZeroGrads clears all accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// Summary renders a human-readable architecture description.
func (n *Network) Summary() string {
	var b strings.Builder
	conv, dense := n.ParamCounts()
	fmt.Fprintf(&b, "%s: %d params (conv %d, dense %d), %.1f MFLOPs/sample\n",
		n.Arch, n.ParamCount(), conv, dense, n.FlopsPerSample()/1e6)
	for _, l := range n.Layers {
		fmt.Fprintf(&b, "  %s\n", l.Name())
	}
	return b.String()
}
