package nn

import (
	"fmt"
	"math/rand"
	"strings"

	"fedsched/internal/tensor"
)

// BytesPerParam is the on-the-wire size of one model parameter. The paper's
// DL4J checkpoints serialize at ≈12 bytes/parameter (LeNet 205K → 2.5 MB,
// VGG6 5.45M → 65.4 MB): float64 weights plus updater state. We use the
// same ratio so communication times match Table II.
const BytesPerParam = 12

// NetworkOf is a feed-forward stack of layers trained with softmax
// cross-entropy, generic over the tensor element type.
type NetworkOf[T tensor.Float] struct {
	// Arch is a short architecture label such as "LeNet" or "VGG6".
	Arch   string
	Layers []LayerOf[T]

	// arch is the blueprint this network was built from (nil for networks
	// assembled directly with NewNetwork); it enables Clone.
	arch *Arch

	// lossGrad is the persistent workspace for the logits gradient, so a
	// steady-state TrainBatch allocates nothing.
	lossGrad *tensor.TensorOf[T]
}

// Network is the float64 network used throughout the federated engine.
type Network = NetworkOf[float64]

// reluFused is implemented by layers (Dense, Conv2D) whose forward pass
// can absorb a directly following ReLU: the producer applies the clamp in
// its own kernel and records the backward mask into r via r.ensureMask.
// Forward uses it as a peephole — the ReLU layer's own Forward is skipped,
// while its Backward (which only reads the mask) runs unchanged, so
// fusion never alters results, only removes a full pass over the
// activation tensor.
type reluFused[T tensor.Float] interface {
	forwardFusedReLU(x *tensor.TensorOf[T], train bool, r *ReLUOf[T]) *tensor.TensorOf[T]
}

// NewNetwork builds a float64 network from layers with the given
// architecture name.
func NewNetwork(arch string, layers ...Layer) *Network {
	return NewNetworkOf(arch, layers...)
}

// NewNetworkOf builds a network from layers with the given architecture
// name.
func NewNetworkOf[T tensor.Float](arch string, layers ...LayerOf[T]) *NetworkOf[T] {
	return &NetworkOf[T]{Arch: arch, Layers: layers}
}

// Forward runs all layers and returns the logits. Dense/Conv2D layers
// directly followed by a ReLU run as one fused kernel (see reluFused).
//
// fedlint:hotpath
func (n *NetworkOf[T]) Forward(x *tensor.TensorOf[T], train bool) *tensor.TensorOf[T] {
	for i := 0; i < len(n.Layers); i++ {
		l := n.Layers[i]
		if f, ok := l.(reluFused[T]); ok && i+1 < len(n.Layers) {
			if r, ok := n.Layers[i+1].(*ReLUOf[T]); ok {
				x = f.forwardFusedReLU(x, train, r)
				i++ // the ReLU already ran inside the producer's kernel
				continue
			}
		}
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates a logits gradient through all layers, accumulating
// parameter gradients.
//
// fedlint:hotpath
func (n *NetworkOf[T]) Backward(grad *tensor.TensorOf[T]) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// TrainBatch runs a forward/backward pass on one mini-batch and returns the
// loss. Parameter gradients are left accumulated for the optimizer.
//
// fedlint:hotpath
func (n *NetworkOf[T]) TrainBatch(x *tensor.TensorOf[T], labels []int) float64 {
	logits := n.Forward(x, true)
	n.lossGrad = tensor.EnsureShape(n.lossGrad, logits.Dim(0), logits.Dim(1))
	loss := SoftmaxCrossEntropyInto(n.lossGrad, logits, labels)
	n.Backward(n.lossGrad)
	return loss
}

// Predict returns the predicted class per sample.
func (n *NetworkOf[T]) Predict(x *tensor.TensorOf[T]) []int {
	return Argmax(n.Forward(x, false))
}

// Params returns every trainable parameter in layer order.
func (n *NetworkOf[T]) Params() []*ParamOf[T] {
	var ps []*ParamOf[T]
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ParamCount returns the total number of scalar parameters.
func (n *NetworkOf[T]) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.Len()
	}
	return total
}

// ParamCounts returns the parameter totals split into convolutional and
// dense classes — the two regressors of the profiler's step-1 model.
func (n *NetworkOf[T]) ParamCounts() (conv, dense int) {
	for _, l := range n.Layers {
		c, ok := l.(Classed)
		if !ok {
			continue
		}
		sz := 0
		for _, p := range l.Params() {
			sz += p.W.Len()
		}
		switch c.Class() {
		case ClassConv:
			conv += sz
		case ClassDense:
			dense += sz
		}
	}
	return conv, dense
}

// FlopsPerSample estimates forward-pass FLOPs for a single sample. Training
// costs roughly 3× this (forward + input-grad + weight-grad passes).
func (n *NetworkOf[T]) FlopsPerSample() float64 {
	total := 0.0
	for _, l := range n.Layers {
		if f, ok := l.(FlopsCounter); ok {
			total += f.FlopsPerSample()
		}
	}
	return total
}

// SizeBytes returns the serialized model size used for communication-time
// modelling.
func (n *NetworkOf[T]) SizeBytes() int {
	return n.ParamCount() * BytesPerParam
}

// Clone returns an independent network with the same architecture and a
// deep copy of the weights — fresh layer caches and workspaces, so the
// clone can run forward/backward passes concurrently with the original.
// It returns nil when the network was assembled directly from layers
// (no Arch blueprint to rebuild from); callers must fall back to using
// the original sequentially.
func (n *NetworkOf[T]) Clone() *NetworkOf[T] {
	if n.arch == nil {
		return nil
	}
	// The fixed-seed source is fine here: Build's random init is fully
	// overwritten by the copy below, so no entropy reaches the clone.
	c := BuildNetwork[T](n.arch, rand.New(rand.NewSource(0)))
	src, dst := n.Params(), c.Params()
	for i := range src {
		copy(dst[i].W.Data(), src[i].W.Data())
	}
	return c
}

// Weights returns the live parameter tensors in order, without copying.
// Callers must treat them as read-only; use GetWeights for an owned
// snapshot. This is the zero-allocation path for weighted aggregation.
func (n *NetworkOf[T]) Weights() []*tensor.TensorOf[T] {
	ps := n.Params()
	out := make([]*tensor.TensorOf[T], len(ps))
	for i, p := range ps {
		out[i] = p.W
	}
	return out
}

// GetWeights returns a deep copy of all parameter tensors, in order.
func (n *NetworkOf[T]) GetWeights() []*tensor.TensorOf[T] {
	ps := n.Params()
	out := make([]*tensor.TensorOf[T], len(ps))
	for i, p := range ps {
		out[i] = p.W.Clone()
	}
	return out
}

// SetWeights overwrites all parameters from the given tensors (same order
// and shapes as GetWeights).
func (n *NetworkOf[T]) SetWeights(ws []*tensor.TensorOf[T]) {
	ps := n.Params()
	if len(ws) != len(ps) {
		panic(fmt.Sprintf("nn: SetWeights got %d tensors, model has %d params", len(ws), len(ps)))
	}
	for i, p := range ps {
		if p.W.Len() != ws[i].Len() {
			panic(fmt.Sprintf("nn: SetWeights param %d size mismatch", i))
		}
		copy(p.W.Data(), ws[i].Data())
	}
}

// ZeroGrads clears all accumulated gradients.
func (n *NetworkOf[T]) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// Summary renders a human-readable architecture description.
func (n *NetworkOf[T]) Summary() string {
	var b strings.Builder
	conv, dense := n.ParamCounts()
	fmt.Fprintf(&b, "%s: %d params (conv %d, dense %d), %.1f MFLOPs/sample\n",
		n.Arch, n.ParamCount(), conv, dense, n.FlopsPerSample()/1e6)
	for _, l := range n.Layers {
		fmt.Fprintf(&b, "  %s\n", l.Name())
	}
	return b.String()
}
