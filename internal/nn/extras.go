package nn

import (
	"fmt"
	"math"

	"fedsched/internal/tensor"
)

// AvgPool2D is a non-overlapping 2-D average pooling layer over
// (N, C, H, W) inputs.
type AvgPool2D struct {
	Size, Stride int
	inShape      []int
	y            *tensor.Tensor // forward output
	dx           *tensor.Tensor // input gradient
}

// NewAvgPool2D constructs an average-pool layer.
func NewAvgPool2D(size, stride int) *AvgPool2D {
	return &AvgPool2D{Size: size, Stride: stride}
}

// Name implements Layer.
func (p *AvgPool2D) Name() string { return fmt.Sprintf("AvgPool2D(%d,s=%d)", p.Size, p.Stride) }

// Params implements Layer.
func (p *AvgPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-p.Size)/p.Stride + 1
	ow := (w-p.Size)/p.Stride + 1
	p.inShape = x.Shape()
	p.y = tensor.EnsureShape(p.y, n, c, oh, ow)
	y := p.y
	xd, yd := x.Data(), y.Data()
	inv := 1 / float64(p.Size*p.Size)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for ky := 0; ky < p.Size; ky++ {
						row := base + (oy*p.Stride+ky)*w + ox*p.Stride
						for kx := 0; kx < p.Size; kx++ {
							s += xd[row+kx]
						}
					}
					yd[((img*c+ch)*oh+oy)*ow+ox] = s * inv
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c := p.inShape[0], p.inShape[1]
	h, w := p.inShape[2], p.inShape[3]
	oh, ow := grad.Dim(2), grad.Dim(3)
	p.dx = tensor.EnsureShape(p.dx, p.inShape...)
	p.dx.Zero() // accumulated into below
	dx := p.dx
	gd, dd := grad.Data(), dx.Data()
	inv := 1 / float64(p.Size*p.Size)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gd[((img*c+ch)*oh+oy)*ow+ox] * inv
					for ky := 0; ky < p.Size; ky++ {
						row := base + (oy*p.Stride+ky)*w + ox*p.Stride
						for kx := 0; kx < p.Size; kx++ {
							dd[row+kx] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Tanh applies the hyperbolic tangent elementwise (the classic LeNet
// nonlinearity).
type Tanh struct {
	out *tensor.Tensor // forward output, reused as workspace
	dx  *tensor.Tensor // input gradient
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "Tanh" }

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	t.out = tensor.EnsureShape(t.out, x.Shape()...)
	xd, od := x.Data(), t.out.Data()
	for i, v := range xd {
		od[i] = math.Tanh(v)
	}
	return t.out
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	t.dx = tensor.EnsureShape(t.dx, grad.Shape()...)
	od, gd, dd := t.out.Data(), grad.Data(), t.dx.Data()
	for i, v := range gd {
		dd[i] = v * (1 - od[i]*od[i])
	}
	return t.dx
}

// Sigmoid applies the logistic function elementwise.
type Sigmoid struct {
	out *tensor.Tensor // forward output, reused as workspace
	dx  *tensor.Tensor // input gradient
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "Sigmoid" }

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s.out = tensor.EnsureShape(s.out, x.Shape()...)
	xd, od := x.Data(), s.out.Data()
	for i, v := range xd {
		od[i] = 1 / (1 + math.Exp(-v))
	}
	return s.out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	s.dx = tensor.EnsureShape(s.dx, grad.Shape()...)
	od, gd, dd := s.out.Data(), grad.Data(), s.dx.Data()
	for i, v := range gd {
		dd[i] = v * od[i] * (1 - od[i])
	}
	return s.dx
}

// LRSchedule maps a round/epoch index to a learning rate.
type LRSchedule func(step int) float64

// ConstantLR returns lr for every step.
func ConstantLR(lr float64) LRSchedule {
	return func(int) float64 { return lr }
}

// StepDecayLR halves (×factor) the rate every `every` steps.
func StepDecayLR(lr, factor float64, every int) LRSchedule {
	return func(step int) float64 {
		if every <= 0 {
			return lr
		}
		return lr * math.Pow(factor, float64(step/every))
	}
}

// CosineLR anneals from lr to floor over total steps.
func CosineLR(lr, floor float64, total int) LRSchedule {
	return func(step int) float64 {
		if total <= 0 || step >= total {
			return floor
		}
		return floor + (lr-floor)*0.5*(1+math.Cos(math.Pi*float64(step)/float64(total)))
	}
}

// ClipGradients rescales all gradients so their global L2 norm does not
// exceed maxNorm; it returns the pre-clip norm. maxNorm ≤ 0 disables
// clipping (the norm is still reported).
func ClipGradients(params []*Param, maxNorm float64) float64 {
	sq := 0.0
	for _, p := range params {
		for _, v := range p.Grad.Data() {
			sq += v * v
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}
