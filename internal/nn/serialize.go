package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fedsched/internal/tensor"
)

// Weight checkpoint format: a small binary header followed by parameter
// data in layer order. The format is versioned and validates the
// architecture name and parameter geometry on load, so a checkpoint cannot
// silently load into the wrong model.
//
// Version 2 adds a dtype tag after the version word and stores parameter
// data at the network's native element width (float32 checkpoints are half
// the size). Version 1 checkpoints carry implicit float64 data and still
// load. Loading converts across precisions: a float64 checkpoint loads
// into a float32 network by rounding (and vice versa by widening), with
// non-finite values — stored or produced by the narrowing — rejected.
const (
	checkpointMagic   = 0x46534348 // "FSCH"
	checkpointVersion = 2

	checkpointF64 = 1
	checkpointF32 = 2
)

func checkpointDtype[T tensor.Float]() uint32 {
	if tensor.Eps[T]() > 1e-10 {
		return checkpointF32
	}
	return checkpointF64
}

// SaveWeights writes the network's parameters to w at the network's native
// element width.
func (n *NetworkOf[T]) SaveWeights(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeU32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := writeU32(checkpointMagic); err != nil {
		return fmt.Errorf("nn: save header: %w", err)
	}
	if err := writeU32(checkpointVersion); err != nil {
		return err
	}
	if err := writeU32(checkpointDtype[T]()); err != nil {
		return err
	}
	name := []byte(n.Arch)
	if err := writeU32(uint32(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	params := n.Params()
	if err := writeU32(uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeU32(uint32(p.W.Len())); err != nil {
			return err
		}
		for _, v := range p.W.Data() {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return fmt.Errorf("nn: save %s: %w", p.Name, err)
			}
		}
	}
	return bw.Flush()
}

// LoadWeights restores parameters saved by SaveWeights. The checkpoint
// must match this network's architecture name and parameter geometry; its
// element type may differ from the network's (values are converted).
func (n *NetworkOf[T]) LoadWeights(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("nn: load header: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: not a fedsched checkpoint (magic %#x)", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return err
	}
	dtype := uint32(checkpointF64) // version 1 stored implicit float64
	switch version {
	case 1:
	case 2:
		if err := binary.Read(br, binary.LittleEndian, &dtype); err != nil {
			return err
		}
		if dtype != checkpointF64 && dtype != checkpointF32 {
			return fmt.Errorf("nn: unknown checkpoint dtype %d", dtype)
		}
	default:
		return fmt.Errorf("nn: unsupported checkpoint version %d", version)
	}
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return err
	}
	if nameLen > 1<<16 {
		return fmt.Errorf("nn: implausible architecture name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return err
	}
	if string(name) != n.Arch {
		return fmt.Errorf("nn: checkpoint is for %q, network is %q", name, n.Arch)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	params := n.Params()
	if int(count) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, network has %d", count, len(params))
	}
	for _, p := range params {
		var length uint32
		if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
			return err
		}
		if int(length) != p.W.Len() {
			return fmt.Errorf("nn: parameter %s has %d values, checkpoint has %d", p.Name, p.W.Len(), length)
		}
		d := p.W.Data()
		for i := range d {
			var v float64
			if dtype == checkpointF32 {
				var f float32
				if err := binary.Read(br, binary.LittleEndian, &f); err != nil {
					return fmt.Errorf("nn: load %s: %w", p.Name, err)
				}
				v = float64(f)
			} else {
				if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
					return fmt.Errorf("nn: load %s: %w", p.Name, err)
				}
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: corrupt checkpoint: non-finite weight in %s", p.Name)
			}
			t := T(v)
			// A float64 value beyond float32 range narrows to ±Inf;
			// reject rather than poison the network.
			if math.IsInf(float64(t), 0) {
				return fmt.Errorf("nn: weight in %s overflows the network's element type", p.Name)
			}
			d[i] = t
		}
	}
	return nil
}
