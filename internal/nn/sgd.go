package nn

import "fedsched/internal/tensor"

// SGDOf is stochastic gradient descent with classical momentum and optional
// L2 weight decay, generic over the tensor element type. The scalar
// hyper-parameters stay float64 and are rounded to the element type inside
// the tensor AXPY kernels, so the float64 instantiation is bit-identical
// to the historical implementation.
type SGDOf[T tensor.Float] struct {
	LR       float64
	Momentum float64
	Decay    float64
	velocity map[*ParamOf[T]]*tensor.TensorOf[T]
}

// SGD is the float64 optimizer used throughout the federated engine.
type SGD = SGDOf[float64]

// NewSGD constructs a float64 SGD optimizer.
func NewSGD(lr, momentum, decay float64) *SGD {
	return NewSGDOf[float64](lr, momentum, decay)
}

// NewSGDOf constructs an SGD optimizer.
func NewSGDOf[T tensor.Float](lr, momentum, decay float64) *SGDOf[T] {
	return &SGDOf[T]{LR: lr, Momentum: momentum, Decay: decay, velocity: make(map[*ParamOf[T]]*tensor.TensorOf[T])}
}

// Step applies one update to every parameter and zeroes the gradients.
func (s *SGDOf[T]) Step(params []*ParamOf[T]) {
	for _, p := range params {
		g := p.Grad
		if s.Decay > 0 {
			g.AddScaled(s.Decay, p.W)
		}
		if s.Momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				//fedlint:allow hotalloc — velocity allocates once on first use per parameter; steady-state steps hit the map
				v = tensor.NewOf[T](p.W.Shape()...)
				s.velocity[p] = v
			}
			v.Scale(s.Momentum)
			v.AddScaled(1, g)
			p.W.AddScaled(-s.LR, v)
		} else {
			p.W.AddScaled(-s.LR, g)
		}
		g.Zero()
	}
}

// Reset discards momentum state (used when a client receives fresh global
// weights at the start of a federated round).
func (s *SGDOf[T]) Reset() {
	s.velocity = make(map[*ParamOf[T]]*tensor.TensorOf[T])
}
