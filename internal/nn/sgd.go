package nn

import "fedsched/internal/tensor"

// SGD is stochastic gradient descent with classical momentum and optional
// L2 weight decay.
type SGD struct {
	LR       float64
	Momentum float64
	Decay    float64
	velocity map[*Param]*tensor.Tensor
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, decay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, Decay: decay, velocity: make(map[*Param]*tensor.Tensor)}
}

// Step applies one update to every parameter and zeroes the gradients.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		g := p.Grad
		if s.Decay > 0 {
			g.AddScaled(s.Decay, p.W)
		}
		if s.Momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.W.Shape()...)
				s.velocity[p] = v
			}
			v.Scale(s.Momentum)
			v.AddScaled(1, g)
			p.W.AddScaled(-s.LR, v)
		} else {
			p.W.AddScaled(-s.LR, g)
		}
		g.Zero()
	}
}

// Reset discards momentum state (used when a client receives fresh global
// weights at the start of a federated round).
func (s *SGD) Reset() {
	s.velocity = make(map[*Param]*tensor.Tensor)
}
