package nn

import (
	"math"

	"fedsched/internal/tensor"
)

// GradCheck compares the analytic gradient of the network's loss with a
// central-difference numerical gradient over every parameter, and returns
// the largest relative error encountered. Intended for tests on tiny
// networks.
func GradCheck(n *Network, x *tensor.Tensor, labels []int, eps float64) float64 {
	n.ZeroGrads()
	n.TrainBatch(x, labels)
	worst := 0.0
	for _, p := range n.Params() {
		for i := range p.W.Data() {
			orig := p.W.Data()[i]
			p.W.Data()[i] = orig + eps
			lp, _ := SoftmaxCrossEntropy(n.Forward(x, true), labels)
			p.W.Data()[i] = orig - eps
			lm, _ := SoftmaxCrossEntropy(n.Forward(x, true), labels)
			p.W.Data()[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := p.Grad.Data()[i]
			denom := math.Max(math.Abs(numeric)+math.Abs(analytic), 1e-8)
			if rel := math.Abs(numeric-analytic) / denom; rel > worst {
				worst = rel
			}
		}
	}
	return worst
}
