package nn

import (
	"math"

	"fedsched/internal/tensor"
)

// GradCheck compares the analytic gradient of the network's loss with a
// central-difference numerical gradient over every parameter, and returns
// the largest relative error encountered. Intended for tests on tiny
// networks.
//
// The relative-error denominator is floored at GradCheckFloor for the
// element type: 1e-8 suits float64, but float32 arithmetic leaves residual
// errors of order 1e-4 in the gradients themselves, so near-zero gradient
// pairs would otherwise report spurious O(1) relative errors.
func GradCheck[T tensor.Float](n *NetworkOf[T], x *tensor.TensorOf[T], labels []int, eps float64) float64 {
	floor := GradCheckFloor[T]()
	n.ZeroGrads()
	n.TrainBatch(x, labels)
	worst := 0.0
	for _, p := range n.Params() {
		for i := range p.W.Data() {
			orig := p.W.Data()[i]
			p.W.Data()[i] = orig + T(eps)
			lp, _ := SoftmaxCrossEntropy(n.Forward(x, true), labels)
			p.W.Data()[i] = orig - T(eps)
			lm, _ := SoftmaxCrossEntropy(n.Forward(x, true), labels)
			p.W.Data()[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(p.Grad.Data()[i])
			denom := math.Max(math.Abs(numeric)+math.Abs(analytic), floor)
			if rel := math.Abs(numeric-analytic) / denom; rel > worst {
				worst = rel
			}
		}
	}
	return worst
}

// GradCheckFloor returns the denominator floor GradCheck uses for the
// element type: 1e-8 for float64, 1e-3 for float32.
func GradCheckFloor[T tensor.Float]() float64 {
	if tensor.Eps[T]() > 1e-10 {
		return 1e-3
	}
	return 1e-8
}
