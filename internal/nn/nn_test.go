package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedsched/internal/tensor"
)

func TestDenseForwardShapeAndBias(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 4, 3)
	// Zero the weights so output equals the bias.
	d.w.W.Zero()
	d.b.W.Data()[0], d.b.W.Data()[1], d.b.W.Data()[2] = 1, 2, 3
	x := tensor.New(2, 4)
	y := d.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 3 {
		t.Fatalf("output shape %v, want [2 3]", y.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if y.At(i, j) != float64(j+1) {
				t.Fatalf("bias not applied: %v", y.Data())
			}
		}
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork("test", NewDense(rng, 5, 4), NewReLU(), NewDense(rng, 4, 3))
	x := tensor.Randn(rng, 1, 6, 5)
	labels := []int{0, 1, 2, 0, 1, 2}
	if worst := GradCheck(net, x, labels, 1e-5); worst > 1e-4 {
		t.Fatalf("dense grad check worst relative error %v", worst)
	}
}

func TestConvGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork("test",
		NewConv2D(rng, 1, 2, 3, 1, 1),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewDense(rng, 2*3*3, 3),
	)
	x := tensor.Randn(rng, 1, 2, 1, 6, 6)
	labels := []int{0, 2}
	if worst := GradCheck(net, x, labels, 1e-5); worst > 1e-3 {
		t.Fatalf("conv grad check worst relative error %v", worst)
	}
}

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	logits := tensor.New(2, 4) // all-zero logits → uniform softmax
	loss, grad := SoftmaxCrossEntropy(logits, []int{1, 3})
	want := math.Log(4)
	if math.Abs(loss-want) > 1e-12 {
		t.Fatalf("loss = %v, want ln(4) = %v", loss, want)
	}
	// Gradient rows sum to zero (softmax minus one-hot, scaled by 1/N).
	for i := 0; i < 2; i++ {
		s := 0.0
		for j := 0; j < 4; j++ {
			s += grad.At(i, j)
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("grad row %d sums to %v, want 0", i, s)
		}
	}
	if grad.At(0, 1) >= 0 || grad.At(0, 0) <= 0 {
		t.Fatal("gradient signs wrong: true class must be negative")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	logits := tensor.Randn(rng, 5, 3, 7)
	p := Softmax(logits)
	for i := 0; i < 3; i++ {
		s := 0.0
		for j := 0; j < 7; j++ {
			v := p.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	logits := tensor.From([]float64{1000, -1000, 0}, 1, 3)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss overflowed: %v", loss)
	}
	if loss > 1e-9 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
	for _, g := range grad.Data() {
		if math.IsNaN(g) {
			t.Fatal("NaN in gradient")
		}
	}
}

func TestArgmax(t *testing.T) {
	x := tensor.From([]float64{1, 5, 2, 9, 0, 3}, 2, 3)
	got := Argmax(x)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Argmax = %v, want [1 0]", got)
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	x := tensor.From([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	p := NewMaxPool2D(2, 2)
	y := p.Forward(x, true)
	want := []float64{6, 8, 14, 16}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("pool output %v, want %v", y.Data(), want)
		}
	}
	g := tensor.From([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	dx := p.Backward(g)
	// Gradient routed only to the argmax positions.
	if dx.At(0, 0, 1, 1) != 1 || dx.At(0, 0, 1, 3) != 2 || dx.At(0, 0, 3, 1) != 3 || dx.At(0, 0, 3, 3) != 4 {
		t.Fatalf("pool backward wrong: %v", dx.Data())
	}
	if s := dx.Sum(); s != 10 {
		t.Fatalf("pool backward should conserve gradient mass: %v", s)
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout(rng, 0.5)
	x := tensor.New(1, 1000)
	x.Fill(1)
	yTrain := d.Forward(x, true)
	zeros := 0
	for _, v := range yTrain.Data() {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("survivor not scaled by 1/(1-p): %v", v)
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("dropout rate off: %d/1000 zeroed", zeros)
	}
	yEval := d.Forward(x, false)
	for _, v := range yEval.Data() {
		if v != 1 {
			t.Fatal("dropout must be identity at eval time")
		}
	}
}

func TestSGDPlainStep(t *testing.T) {
	p := newParam("w", 2)
	p.W.Data()[0], p.W.Data()[1] = 1, 2
	p.Grad.Data()[0], p.Grad.Data()[1] = 10, -10
	opt := NewSGD(0.1, 0, 0)
	opt.Step([]*Param{p})
	if p.W.Data()[0] != 0 || p.W.Data()[1] != 3 {
		t.Fatalf("after step: %v", p.W.Data())
	}
	if p.Grad.Data()[0] != 0 {
		t.Fatal("gradients must be zeroed after step")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := newParam("w", 1)
	opt := NewSGD(1, 0.9, 0)
	for i := 0; i < 2; i++ {
		p.Grad.Data()[0] = 1
		opt.Step([]*Param{p})
	}
	// Step1: v=1, w=-1. Step2: v=0.9+1=1.9, w=-2.9.
	if math.Abs(p.W.Data()[0]+2.9) > 1e-12 {
		t.Fatalf("momentum update wrong: %v", p.W.Data()[0])
	}
	opt.Reset()
	p.Grad.Data()[0] = 1
	opt.Step([]*Param{p})
	if math.Abs(p.W.Data()[0]+3.9) > 1e-12 {
		t.Fatalf("after reset expected plain step: %v", p.W.Data()[0])
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := newParam("w", 1)
	p.W.Data()[0] = 10
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*Param{p}) // grad = 0 + 0.5*10 = 5; w = 10 - 0.5 = 9.5
	if math.Abs(p.W.Data()[0]-9.5) > 1e-12 {
		t.Fatalf("decay step wrong: %v", p.W.Data()[0])
	}
}

func TestGetSetWeightsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := LeNetSmall(1, 16, 16, 10)
	n1 := a.Build(rng)
	n2 := a.Build(rng)
	w := n1.GetWeights()
	n2.SetWeights(w)
	x := tensor.Randn(rng, 1, 2, 1, 16, 16)
	// Forward returns a per-network workspace that the next Forward on the
	// same network overwrites, so snapshot y1 before re-running n1.
	y1 := n1.Forward(x, false).Clone()
	y2 := n2.Forward(x, false)
	if !tensor.Equal(y1, y2, 1e-12) {
		t.Fatal("networks disagree after weight transfer")
	}
	// GetWeights must be a deep copy.
	w[0].Fill(0)
	y3 := n1.Forward(x, false)
	if !tensor.Equal(y1, y3, 1e-12) {
		t.Fatal("GetWeights leaked internal storage")
	}
}

func TestParamCountsPaperScale(t *testing.T) {
	lenet := LeNet(1, 28, 28, 10)
	if got := lenet.ParamCount(); got < 195000 || got > 215000 {
		t.Fatalf("paper-scale LeNet params = %d, want ≈205K", got)
	}
	vgg := VGG6(1, 28, 28, 10)
	if got := vgg.ParamCount(); got < 5.2e6 || got > 5.8e6 {
		t.Fatalf("paper-scale VGG6 params = %d, want ≈5.45M", got)
	}
	// Conv/dense split must be non-trivial for both.
	c, d := lenet.ParamCounts()
	if c == 0 || d == 0 {
		t.Fatalf("LeNet split conv=%d dense=%d", c, d)
	}
	// VGG6 communication payload ≈ 65 MB as in Table II.
	if mb := float64(vgg.SizeBytes()) / 1e6; mb < 55 || mb > 75 {
		t.Fatalf("VGG6 payload = %.1f MB, want ≈65 MB", mb)
	}
	if mb := float64(lenet.SizeBytes()) / 1e6; mb < 2.0 || mb > 3.0 {
		t.Fatalf("LeNet payload = %.1f MB, want ≈2.5 MB", mb)
	}
}

func TestArchAnalyticMatchesBuilt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, a := range []*Arch{
		LeNetSmall(1, 16, 16, 10),
		VGG6Small(3, 16, 16, 10),
		LeNet(1, 28, 28, 10),
		MLP(64, 32, 10),
	} {
		net := a.Build(rng)
		if net.ParamCount() != a.ParamCount() {
			t.Fatalf("%s: analytic params %d != built %d", a.Name, a.ParamCount(), net.ParamCount())
		}
		ac, ad := a.ParamCounts()
		nc, nd := net.ParamCounts()
		if ac != nc || ad != nd {
			t.Fatalf("%s: split mismatch analytic (%d,%d) built (%d,%d)", a.Name, ac, ad, nc, nd)
		}
	}
}

func TestArchFlopsMatchBuiltAfterForward(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := LeNetSmall(1, 16, 16, 10)
	net := a.Build(rng)
	x := tensor.Randn(rng, 1, 1, 1, 16, 16)
	net.Forward(x, false)
	if math.Abs(net.FlopsPerSample()-a.FlopsPerSample()) > 1 {
		t.Fatalf("FLOPs analytic %v != built %v", a.FlopsPerSample(), net.FlopsPerSample())
	}
	if a.TrainFlopsPerSample() != 3*a.FlopsPerSample() {
		t.Fatal("training FLOPs must be 3× forward")
	}
}

func TestVGGSmallGradCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("grad check on conv stack is slow")
	}
	rng := rand.New(rand.NewSource(9))
	// A tiny VGG-style stack exercising conv+conv+pool composition.
	net := NewNetwork("tiny-vgg",
		NewConv2D(rng, 1, 2, 3, 1, 1),
		NewReLU(),
		NewConv2D(rng, 2, 2, 3, 1, 1),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewDense(rng, 2*3*3, 3),
	)
	x := tensor.Randn(rng, 1, 1, 1, 6, 6)
	if worst := GradCheck(net, x, []int{1}, 1e-5); worst > 1e-3 {
		t.Fatalf("tiny-vgg grad check worst relative error %v", worst)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := LeNetSmall(1, 8, 8, 4).Build(rng)
	// LeNetSmall expects 16x16; build a matching tiny problem instead.
	net = NewNetwork("toy",
		NewFlatten(),
		NewDense(rng, 64, 32),
		NewReLU(),
		NewDense(rng, 32, 4),
	)
	// Linearly separable toy data: class = quadrant of strongest corner.
	n := 64
	x := tensor.New(n, 1, 8, 8)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 4
		labels[i] = cls
		cy, cx := (cls/2)*4, (cls%2)*4
		for dy := 0; dy < 4; dy++ {
			for dx := 0; dx < 4; dx++ {
				x.Set(1+0.1*rng.NormFloat64(), i, 0, cy+dy, cx+dx)
			}
		}
	}
	opt := NewSGD(0.05, 0.9, 0)
	first := net.TrainBatch(x, labels)
	opt.Step(net.Params())
	var last float64
	for e := 0; e < 30; e++ {
		last = net.TrainBatch(x, labels)
		opt.Step(net.Params())
	}
	if last > first*0.5 {
		t.Fatalf("loss did not drop: first %v last %v", first, last)
	}
	pred := net.Predict(x)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	if correct < n*9/10 {
		t.Fatalf("training accuracy %d/%d too low", correct, n)
	}
}

func TestNetworkSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := LeNetSmall(1, 16, 16, 10).Build(rng)
	s := net.Summary()
	if s == "" {
		t.Fatal("empty summary")
	}
}

// TestFusedReLUMatchesUnfused verifies the Network.Forward peephole: the
// fused Dense/Conv2D+ReLU kernels must produce bit-identical activations
// and parameter gradients to driving each layer's plain Forward in
// sequence (the arithmetic is the same — sum, +bias, clamp — only the
// number of passes over memory changes).
func TestFusedReLUMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n1 := LeNetSmall(1, 16, 16, 10).Build(rng)
	n2 := n1.Clone()
	x := tensor.Randn(rand.New(rand.NewSource(13)), 1, 4, 1, 16, 16)

	y1 := n1.Forward(x, true).Clone() // fused path
	y2 := x                           // unfused: drive layers directly
	for _, l := range n2.Layers {
		y2 = l.Forward(y2, true)
	}
	for i, v := range y1.Data() {
		if math.Float64bits(v) != math.Float64bits(y2.Data()[i]) {
			t.Fatalf("fused forward differs at %d: %v vs %v", i, v, y2.Data()[i])
		}
	}

	grad := tensor.Randn(rand.New(rand.NewSource(14)), 1, 4, 10)
	n1.Backward(grad.Clone())
	g := grad.Clone()
	for i := len(n2.Layers) - 1; i >= 0; i-- {
		g = n2.Layers[i].Backward(g)
	}
	p1, p2 := n1.Params(), n2.Params()
	for pi := range p1 {
		g1, g2 := p1[pi].Grad.Data(), p2[pi].Grad.Data()
		for i := range g1 {
			if math.Float64bits(g1[i]) != math.Float64bits(g2[i]) {
				t.Fatalf("param %s grad differs at %d: %v vs %v", p1[pi].Name, i, g1[i], g2[i])
			}
		}
	}
}

// TestTrainBatchSteadyStateAllocs pins the allocation-free hot path: after
// the first batch has sized every layer workspace, repeated TrainBatch
// calls on the same geometry must not allocate at all. Lanes are pinned
// to 0 so the GEMM dispatch takes its closure-free serial path (goroutine
// fan-out would otherwise add a few closure headers per call).
func TestTrainBatchSteadyStateAllocs(t *testing.T) {
	old := tensor.MaxLanes()
	tensor.SetMaxLanes(0)
	defer tensor.SetMaxLanes(old)
	rng := rand.New(rand.NewSource(15))
	net := LeNetSmall(1, 16, 16, 10).Build(rng)
	x := tensor.Randn(rng, 1, 20, 1, 16, 16)
	labels := make([]int, 20)
	for i := range labels {
		labels[i] = i % 10
	}
	net.TrainBatch(x, labels) // first batch sizes all workspaces
	avg := testing.AllocsPerRun(10, func() {
		net.TrainBatch(x, labels)
	})
	// Allow a sliver of slack for a GC emptying the GEMM scratch pool
	// mid-measurement; anything recurring would show up as ≥ 1 per run.
	if avg > 0.5 {
		t.Fatalf("steady-state TrainBatch allocates %.1f objects/run, want 0", avg)
	}
}

func BenchmarkLeNetSmallTrainBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := LeNetSmall(1, 16, 16, 10).Build(rng)
	x := tensor.Randn(rng, 1, 20, 1, 16, 16)
	labels := make([]int, 20)
	for i := range labels {
		labels[i] = i % 10
	}
	opt := NewSGD(0.01, 0.9, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainBatch(x, labels)
		opt.Step(net.Params())
	}
}
