package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fedsched/internal/tensor"
)

// Dense is a fully-connected layer: y = x·Wᵀ + b with W of shape (out, in).
type Dense struct {
	In, Out int
	w, b    *Param
	x       *tensor.Tensor // cached input for backward
}

// NewDense constructs a dense layer with He-initialized weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		w:   newParam(fmt.Sprintf("dense%dx%d.w", out, in), out, in),
		b:   newParam(fmt.Sprintf("dense%dx%d.b", out, in), out),
	}
	std := math.Sqrt(2.0 / float64(in))
	for i := range d.w.W.Data() {
		d.w.W.Data()[i] = rng.NormFloat64() * std
	}
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%d→%d)", d.In, d.Out) }

// Class implements Classed.
func (d *Dense) Class() ParamClass { return ClassDense }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// FlopsPerSample implements FlopsCounter: one multiply-add per weight.
func (d *Dense) FlopsPerSample() float64 { return 2 * float64(d.In) * float64(d.Out) }

// Forward implements Layer. x must be (N, In).
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: %s got input %v", d.Name(), x.Shape()))
	}
	d.x = x
	y := tensor.MatMulTransB(x, d.w.W) // (N,in)·(out,in)ᵀ = (N,out)
	n := x.Dim(0)
	yd, bd := y.Data(), d.b.W.Data()
	for i := 0; i < n; i++ {
		row := yd[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return y
}

// Backward implements Layer. grad must be (N, Out).
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dW = gradᵀ·x, db = Σ grad rows, dx = grad·W.
	dw := tensor.MatMulTransA(grad, d.x) // (out, in)
	d.w.Grad.Add(dw)
	n := grad.Dim(0)
	gd, bg := grad.Data(), d.b.Grad.Data()
	for i := 0; i < n; i++ {
		row := gd[i*d.Out : (i+1)*d.Out]
		for j, v := range row {
			bg[j] += v
		}
	}
	return tensor.MatMul(grad, d.w.W) // (N,out)·(out,in) = (N,in)
}
