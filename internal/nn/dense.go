package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fedsched/internal/tensor"
)

// DenseOf is a fully-connected layer: y = x·Wᵀ + b with W of shape (out, in).
//
// Like Conv2DOf, the layer keeps its output and gradient workspaces alive
// across batches (y, dw, dx below), so a steady-state training step
// allocates nothing. The bias add is fused into the matmul epilogue, and
// when a ReLU immediately follows (see NetworkOf.Forward), the activation
// and its backward mask are fused in as well.
type DenseOf[T tensor.Float] struct {
	In, Out int
	w, b    *ParamOf[T]
	x       *tensor.TensorOf[T] // cached input for backward

	// Reusable workspaces, sized lazily. y is overwritten by the next
	// Forward; downstream layers consume it within the current pass.
	y  *tensor.TensorOf[T] // forward output (N, Out)
	dw *tensor.TensorOf[T] // weight gradient (Out, In)
	dx *tensor.TensorOf[T] // input gradient (N, In)
}

// Dense is the float64 dense layer.
type Dense = DenseOf[float64]

// NewDense constructs a float64 dense layer with He-initialized weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	return NewDenseOf[float64](rng, in, out)
}

// NewDenseOf constructs a dense layer with He-initialized weights. The rng
// draw sequence is identical for every element type, so a float32 and a
// float64 network built from the same seed start from the same (rounded)
// weights.
func NewDenseOf[T tensor.Float](rng *rand.Rand, in, out int) *DenseOf[T] {
	d := &DenseOf[T]{
		In:  in,
		Out: out,
		w:   newParamOf[T](fmt.Sprintf("dense%dx%d.w", out, in), out, in),
		b:   newParamOf[T](fmt.Sprintf("dense%dx%d.b", out, in), out),
	}
	std := math.Sqrt(2.0 / float64(in))
	for i := range d.w.W.Data() {
		d.w.W.Data()[i] = T(rng.NormFloat64() * std)
	}
	return d
}

// Name implements LayerOf.
func (d *DenseOf[T]) Name() string { return fmt.Sprintf("Dense(%d→%d)", d.In, d.Out) }

// Class implements Classed.
func (d *DenseOf[T]) Class() ParamClass { return ClassDense }

// Params implements LayerOf.
func (d *DenseOf[T]) Params() []*ParamOf[T] { return []*ParamOf[T]{d.w, d.b} }

// FlopsPerSample implements FlopsCounter: one multiply-add per weight.
func (d *DenseOf[T]) FlopsPerSample() float64 { return 2 * float64(d.In) * float64(d.Out) }

// Forward implements LayerOf. x must be (N, In).
//
// fedlint:hotpath
func (d *DenseOf[T]) Forward(x *tensor.TensorOf[T], train bool) *tensor.TensorOf[T] {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: %s got input %v", d.Name(), x.Shape()))
	}
	d.x = x
	d.y = tensor.EnsureShape(d.y, x.Dim(0), d.Out)
	tensor.MatMulTransBBiasInto(d.y, x, d.w.W, d.b.W) // (N,in)·(out,in)ᵀ + b
	return d.y
}

// forwardFusedReLU implements reluFused: it additionally rectifies the
// output in the kernel epilogue, recording the mask the downstream ReLU
// layer will use in its Backward.
//
// fedlint:hotpath
func (d *DenseOf[T]) forwardFusedReLU(x *tensor.TensorOf[T], train bool, r *ReLUOf[T]) *tensor.TensorOf[T] {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: %s got input %v", d.Name(), x.Shape()))
	}
	d.x = x
	n := x.Dim(0)
	d.y = tensor.EnsureShape(d.y, n, d.Out)
	tensor.MatMulTransBBiasReLUInto(d.y, x, d.w.W, d.b.W, r.ensureMask(n*d.Out))
	return d.y
}

// Backward implements LayerOf. grad must be (N, Out). The returned input
// gradient lives in a per-layer workspace that is overwritten by the next
// Backward call; callers consume it within the current pass (which is how
// NetworkOf.Backward drives layers).
//
// fedlint:hotpath
func (d *DenseOf[T]) Backward(grad *tensor.TensorOf[T]) *tensor.TensorOf[T] {
	// dW = gradᵀ·x, db = Σ grad rows, dx = grad·W.
	d.dw = tensor.EnsureShape(d.dw, d.Out, d.In)
	tensor.MatMulTransAInto(d.dw, grad, d.x)
	d.w.Grad.Add(d.dw)
	n := grad.Dim(0)
	gd, bg := grad.Data(), d.b.Grad.Data()
	for i := 0; i < n; i++ {
		row := gd[i*d.Out : (i+1)*d.Out]
		for j, v := range row {
			bg[j] += v
		}
	}
	d.dx = tensor.EnsureShape(d.dx, n, d.In)
	tensor.MatMulInto(d.dx, grad, d.w.W) // (N,out)·(out,in) = (N,in)
	return d.dx
}
