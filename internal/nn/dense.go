package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fedsched/internal/tensor"
)

// Dense is a fully-connected layer: y = x·Wᵀ + b with W of shape (out, in).
//
// Like Conv2D, the layer keeps its output and gradient workspaces alive
// across batches (y, dw, dx below), so a steady-state training step
// allocates nothing. The bias add is fused into the matmul epilogue, and
// when a ReLU immediately follows (see Network.Forward), the activation
// and its backward mask are fused in as well.
type Dense struct {
	In, Out int
	w, b    *Param
	x       *tensor.Tensor // cached input for backward

	// Reusable workspaces, sized lazily. y is overwritten by the next
	// Forward; downstream layers consume it within the current pass.
	y  *tensor.Tensor // forward output (N, Out)
	dw *tensor.Tensor // weight gradient (Out, In)
	dx *tensor.Tensor // input gradient (N, In)
}

// NewDense constructs a dense layer with He-initialized weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		w:   newParam(fmt.Sprintf("dense%dx%d.w", out, in), out, in),
		b:   newParam(fmt.Sprintf("dense%dx%d.b", out, in), out),
	}
	std := math.Sqrt(2.0 / float64(in))
	for i := range d.w.W.Data() {
		d.w.W.Data()[i] = rng.NormFloat64() * std
	}
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%d→%d)", d.In, d.Out) }

// Class implements Classed.
func (d *Dense) Class() ParamClass { return ClassDense }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// FlopsPerSample implements FlopsCounter: one multiply-add per weight.
func (d *Dense) FlopsPerSample() float64 { return 2 * float64(d.In) * float64(d.Out) }

// Forward implements Layer. x must be (N, In).
//
// fedlint:hotpath
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: %s got input %v", d.Name(), x.Shape()))
	}
	d.x = x
	d.y = tensor.EnsureShape(d.y, x.Dim(0), d.Out)
	tensor.MatMulTransBBiasInto(d.y, x, d.w.W, d.b.W) // (N,in)·(out,in)ᵀ + b
	return d.y
}

// forwardFusedReLU implements reluFused: it additionally rectifies the
// output in the kernel epilogue, recording the mask the downstream ReLU
// layer will use in its Backward.
//
// fedlint:hotpath
func (d *Dense) forwardFusedReLU(x *tensor.Tensor, train bool, r *ReLU) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: %s got input %v", d.Name(), x.Shape()))
	}
	d.x = x
	n := x.Dim(0)
	d.y = tensor.EnsureShape(d.y, n, d.Out)
	tensor.MatMulTransBBiasReLUInto(d.y, x, d.w.W, d.b.W, r.ensureMask(n*d.Out))
	return d.y
}

// Backward implements Layer. grad must be (N, Out). The returned input
// gradient lives in a per-layer workspace that is overwritten by the next
// Backward call; callers consume it within the current pass (which is how
// Network.Backward drives layers).
//
// fedlint:hotpath
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dW = gradᵀ·x, db = Σ grad rows, dx = grad·W.
	d.dw = tensor.EnsureShape(d.dw, d.Out, d.In)
	tensor.MatMulTransAInto(d.dw, grad, d.x)
	d.w.Grad.Add(d.dw)
	n := grad.Dim(0)
	gd, bg := grad.Data(), d.b.Grad.Data()
	for i := 0; i < n; i++ {
		row := gd[i*d.Out : (i+1)*d.Out]
		for j, v := range row {
			bg[j] += v
		}
	}
	d.dx = tensor.EnsureShape(d.dx, n, d.In)
	tensor.MatMulInto(d.dx, grad, d.w.W) // (N,out)·(out,in) = (N,in)
	return d.dx
}
