package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fedsched/internal/tensor"
)

// Precision selects the element type client models train in. The federated
// engines keep their server-side state — global weights, FedAvg reduction,
// evaluation — in float64 regardless, so the deterministic post-join
// reduction guarantees (bit-identical histories for any worker count) hold
// on both paths; Precision only changes the arithmetic inside each
// client's local gradient descent.
type Precision string

const (
	// F64 trains in float64 — the historical default.
	F64 Precision = "f64"
	// F32 trains in float32 — half the memory traffic and twice the SIMD
	// width of the blocked kernels, matching what on-device training
	// stacks (DL4J/OpenBLAS and successors) actually run.
	F32 Precision = "f32"
)

// ParsePrecision maps flag spellings to a Precision. The empty string is
// the float64 default.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64", "float64", "fp64":
		return F64, nil
	case "f32", "float32", "fp32":
		return F32, nil
	}
	return "", fmt.Errorf("nn: unknown precision %q (want f32 or f64)", s)
}

// Trainer is the precision-agnostic local-training handle the federated
// engines drive. Its boundary API speaks float64 tensors — weights cross
// in and out as float64 regardless of the training element type — so the
// FedAvg reduction always accumulates in float64.
type Trainer interface {
	// TrainBatch runs one forward/backward pass; gradients accumulate for
	// Step. x is the float64 mini-batch from the dataset (converted to the
	// training element type internally on the f32 path, through a
	// persistent buffer).
	TrainBatch(x *tensor.Tensor, labels []int) float64
	// Step applies the optimizer to all parameters and zeroes gradients.
	Step()
	// ResetOpt discards momentum state (fresh global weights).
	ResetOpt()
	// SetLR overrides the learning rate (LR schedules).
	SetLR(lr float64)
	// SetWeights overwrites the model from float64 tensors, rounding on
	// the f32 path.
	SetWeights(ws []*tensor.Tensor)
	// Weights returns the model weights as float64 tensors for
	// aggregation. On the f64 path these are the live parameter tensors
	// (zero-copy); on the f32 path they are persistent shadow tensors
	// widened from the float32 weights on each call — mutating them does
	// not write through, use SetWeights.
	Weights() []*tensor.Tensor
	// GetWeights returns an owned float64 deep copy of the weights.
	GetWeights() []*tensor.Tensor
	// HasNonFinite reports whether any weight is NaN or ±Inf.
	HasNonFinite() bool
	// EvalNetwork returns a float64 network holding the current weights,
	// for Evaluate/EvaluateConfusion. On the f64 path it is the live
	// network; on the f32 path a cached float64 twin is synced and
	// returned.
	EvalNetwork() *Network
	// Precision reports the training element type.
	Precision() Precision
}

// NewTrainer builds a model of the requested precision with weights
// initialized from rng and an SGD optimizer. The rng draw sequence is
// identical for both precisions, so an f32 and an f64 trainer built from
// the same seed start from the same (rounded) weights and any surrounding
// seeded draws stay aligned.
func NewTrainer(p Precision, arch *Arch, rng *rand.Rand, lr, momentum float64) Trainer {
	if p == F32 {
		n := BuildNetwork[float32](arch, rng)
		return &trainer32{
			arch: arch,
			net:  n,
			opt:  NewSGDOf[float32](lr, momentum, 0),
			ps:   n.Params(),
		}
	}
	n := BuildNetwork[float64](arch, rng)
	return &trainer64{net: n, opt: NewSGDOf[float64](lr, momentum, 0), ps: n.Params()}
}

// trainer64 is the zero-overhead float64 path: every method forwards to
// the network/optimizer exactly as the engines historically called them,
// and Weights exposes the live parameter tensors without copying.
type trainer64 struct {
	net *Network
	opt *SGD
	ps  []*Param
	ws  []*tensor.Tensor // cached live-weight view
}

// TrainBatch implements Trainer.
//
// fedlint:hotpath
func (t *trainer64) TrainBatch(x *tensor.Tensor, labels []int) float64 {
	return t.net.TrainBatch(x, labels)
}

// Step implements Trainer.
//
// fedlint:hotpath
func (t *trainer64) Step() { t.opt.Step(t.ps) }

func (t *trainer64) ResetOpt()        { t.opt.Reset() }
func (t *trainer64) SetLR(lr float64) { t.opt.LR = lr }

func (t *trainer64) SetWeights(ws []*tensor.Tensor) { t.net.SetWeights(ws) }

func (t *trainer64) Weights() []*tensor.Tensor {
	if t.ws == nil {
		t.ws = t.net.Weights()
	}
	return t.ws
}

func (t *trainer64) GetWeights() []*tensor.Tensor { return t.net.GetWeights() }

func (t *trainer64) HasNonFinite() bool {
	for _, p := range t.ps {
		for _, v := range p.W.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
	}
	return false
}

func (t *trainer64) EvalNetwork() *Network { return t.net }
func (t *trainer64) Precision() Precision  { return F64 }

// trainer32 trains a float32 model behind the float64 boundary: inputs
// narrow through a persistent buffer, weights cross the boundary through
// persistent float64 shadow tensors, and evaluation runs on a cached
// float64 twin of the architecture.
type trainer32 struct {
	arch *Arch
	net  *NetworkOf[float32]
	opt  *SGDOf[float32]
	ps   []*ParamOf[float32]

	xbuf   *tensor.TensorOf[float32] // persistent input-narrowing buffer
	shadow []*tensor.Tensor          // persistent f64 weight shadows
	eval   *Network                  // cached f64 twin for Evaluate
}

// TrainBatch implements Trainer. The batch narrows into a workspace that
// is reused across batches, so the steady state stays allocation-free.
//
// fedlint:hotpath
func (t *trainer32) TrainBatch(x *tensor.Tensor, labels []int) float64 {
	t.xbuf = tensor.EnsureShape(t.xbuf, x.Shape()...)
	xd, bd := x.Data(), t.xbuf.Data()
	for i, v := range xd {
		bd[i] = float32(v)
	}
	return t.net.TrainBatch(t.xbuf, labels)
}

// Step implements Trainer.
//
// fedlint:hotpath
func (t *trainer32) Step() { t.opt.Step(t.ps) }

func (t *trainer32) ResetOpt()        { t.opt.Reset() }
func (t *trainer32) SetLR(lr float64) { t.opt.LR = lr }

func (t *trainer32) SetWeights(ws []*tensor.Tensor) {
	if len(ws) != len(t.ps) {
		panic(fmt.Sprintf("nn: SetWeights got %d tensors, model has %d params", len(ws), len(t.ps)))
	}
	for i, p := range t.ps {
		if p.W.Len() != ws[i].Len() {
			panic(fmt.Sprintf("nn: SetWeights param %d size mismatch", i))
		}
		d, s := p.W.Data(), ws[i].Data()
		for j, v := range s {
			d[j] = float32(v)
		}
	}
}

func (t *trainer32) Weights() []*tensor.Tensor {
	if t.shadow == nil {
		t.shadow = make([]*tensor.Tensor, len(t.ps))
		for i, p := range t.ps {
			t.shadow[i] = tensor.New(p.W.Shape()...)
		}
	}
	for i, p := range t.ps {
		d, s := t.shadow[i].Data(), p.W.Data()
		for j, v := range s {
			d[j] = float64(v)
		}
	}
	return t.shadow
}

func (t *trainer32) GetWeights() []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(t.ps))
	for i, p := range t.ps {
		w := tensor.New(p.W.Shape()...)
		d := w.Data()
		for j, v := range p.W.Data() {
			d[j] = float64(v)
		}
		out[i] = w
	}
	return out
}

func (t *trainer32) HasNonFinite() bool {
	for _, p := range t.ps {
		for _, v := range p.W.Data() {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return true
			}
		}
	}
	return false
}

func (t *trainer32) EvalNetwork() *Network {
	if t.eval == nil {
		// The fixed-seed build is weight-free in effect: every parameter
		// is overwritten by the sync below before anyone reads it.
		t.eval = BuildNetwork[float64](t.arch, rand.New(rand.NewSource(0)))
	}
	evalPs := t.eval.Params()
	for i, p := range t.ps {
		d := evalPs[i].W.Data()
		for j, v := range p.W.Data() {
			d[j] = float64(v)
		}
	}
	return t.eval
}

func (t *trainer32) Precision() Precision { return F32 }
