package nn

import (
	"math"

	"fedsched/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// (N, K) against integer labels, and the gradient with respect to the
// logits. The softmax and the loss are fused for numerical stability.
func SoftmaxCrossEntropy[T tensor.Float](logits *tensor.TensorOf[T], labels []int) (loss float64, grad *tensor.TensorOf[T]) {
	grad = tensor.NewOf[T](logits.Dim(0), logits.Dim(1))
	loss = SoftmaxCrossEntropyInto(grad, logits, labels)
	return loss, grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing the logits
// gradient into a caller-owned (N, K) tensor — the allocation-free path
// used by NetworkOf.TrainBatch with its persistent loss-gradient
// workspace. The exp/log/normalization arithmetic runs in float64 for
// both element types (the reductions are tiny — K terms — so the cast
// costs nothing), which keeps the float64 instantiation bit-identical to
// the historical implementation and gives the float32 path full-precision
// loss accounting.
//
// fedlint:hotpath
func SoftmaxCrossEntropyInto[T tensor.Float](grad, logits *tensor.TensorOf[T], labels []int) (loss float64) {
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic("nn: label count does not match batch size")
	}
	if grad.Dim(0) != n || grad.Dim(1) != k {
		panic("nn: SoftmaxCrossEntropyInto grad shape mismatch")
	}
	ld, gd := logits.Data(), grad.Data()
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := ld[i*k : (i+1)*k]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		g := gd[i*k : (i+1)*k]
		for j, v := range row {
			e := math.Exp(float64(v) - float64(maxv))
			g[j] = T(e)
			sum += e
		}
		inv := 1 / sum
		y := labels[i]
		if y < 0 || y >= k {
			panic("nn: label out of range")
		}
		for j := range g {
			g[j] = T(float64(g[j]) * inv * invN)
		}
		p := float64(g[y]) / invN // softmax probability of true class
		g[y] -= T(invN)
		loss += -math.Log(math.Max(p, 1e-15))
	}
	return loss * invN
}

// Softmax returns row-wise softmax probabilities of logits (N, K).
func Softmax[T tensor.Float](logits *tensor.TensorOf[T]) *tensor.TensorOf[T] {
	n, k := logits.Dim(0), logits.Dim(1)
	out := tensor.NewOf[T](n, k)
	ld, od := logits.Data(), out.Data()
	for i := 0; i < n; i++ {
		row := ld[i*k : (i+1)*k]
		o := od[i*k : (i+1)*k]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(float64(v) - float64(maxv))
			o[j] = T(e)
			sum += e
		}
		inv := 1 / sum
		for j := range o {
			o[j] = T(float64(o[j]) * inv)
		}
	}
	return out
}

// Argmax returns the index of the largest value in each row of a 2-D tensor.
func Argmax[T tensor.Float](x *tensor.TensorOf[T]) []int {
	n, k := x.Dim(0), x.Dim(1)
	out := make([]int, n)
	d := x.Data()
	for i := 0; i < n; i++ {
		row := d[i*k : (i+1)*k]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
