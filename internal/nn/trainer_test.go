package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"fedsched/internal/tensor"
)

func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
	}{
		{"", F64}, {"f64", F64}, {"float64", F64}, {"fp64", F64},
		{"f32", F32}, {"float32", F32}, {"fp32", F32},
	} {
		got, err := ParsePrecision(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePrecision(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatal("ParsePrecision accepted f16")
	}
}

// TestTrainerInitDrawParity pins the rng-alignment guarantee: a float32 and
// a float64 trainer built from the same seed consume identical draw
// sequences, so their initial weights agree up to float32 rounding.
func TestTrainerInitDrawParity(t *testing.T) {
	arch := LeNetSmall(1, 16, 16, 10)
	t64 := NewTrainer(F64, arch, rand.New(rand.NewSource(9)), 0.05, 0.9)
	t32 := NewTrainer(F32, arch, rand.New(rand.NewSource(9)), 0.05, 0.9)
	w64, w32 := t64.Weights(), t32.Weights()
	if len(w64) != len(w32) {
		t.Fatalf("parameter count mismatch: %d vs %d", len(w64), len(w32))
	}
	for i := range w64 {
		a, b := w64[i].Data(), w32[i].Data()
		for j := range a {
			if float64(float32(a[j])) != b[j] {
				t.Fatalf("param %d[%d]: f64 init %v does not round to f32 init %v", i, j, a[j], b[j])
			}
		}
	}
}

// TestTrainerF32RoundTrips covers the float64 boundary of the f32 path:
// SetWeights rounds in, Weights/GetWeights widen out, and HasNonFinite sees
// through the element type.
func TestTrainerF32RoundTrips(t *testing.T) {
	arch := MLP(6, 5, 3)
	tr := NewTrainer(F32, arch, rand.New(rand.NewSource(4)), 0.05, 0)
	ws := tr.GetWeights()
	for _, w := range ws {
		w.Fill(0.25) // exactly representable: survives the f32 round-trip
	}
	tr.SetWeights(ws)
	for _, w := range tr.Weights() {
		for _, v := range w.Data() {
			if v != 0.25 {
				t.Fatalf("weight %v after exact round-trip, want 0.25", v)
			}
		}
	}
	if tr.HasNonFinite() {
		t.Fatal("finite weights flagged")
	}
	ws[0].Data()[0] = math.Inf(1)
	tr.SetWeights(ws)
	if !tr.HasNonFinite() {
		t.Fatal("Inf weight missed through the f32 boundary")
	}
}

// TestTrainerF32EvalNetworkSynced checks the cached float64 evaluation twin
// tracks the live float32 weights.
func TestTrainerF32EvalNetworkSynced(t *testing.T) {
	arch := MLP(4, 3, 2)
	tr := NewTrainer(F32, arch, rand.New(rand.NewSource(5)), 0.05, 0)
	ev1 := tr.EvalNetwork()
	ws := tr.GetWeights()
	for _, w := range ws {
		w.Fill(0.5)
	}
	tr.SetWeights(ws)
	ev2 := tr.EvalNetwork()
	if ev1 != ev2 {
		t.Fatal("EvalNetwork rebuilt the twin instead of caching it")
	}
	for _, p := range ev2.Params() {
		for _, v := range p.W.Data() {
			if v != 0.5 {
				t.Fatalf("eval twin weight %v, want 0.5", v)
			}
		}
	}
}

// TestGradCheckF32 runs the finite-difference check on a float32 network
// with the element-type-dependent tolerance: float32 arithmetic cannot do
// better than ~1e-2 relative error against a float64-ish numeric gradient
// at usable step sizes, versus 1e-4 for float64 (see TestDenseGradCheck).
func TestGradCheckF32(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetworkOf[float32]("test",
		NewDenseOf[float32](rng, 5, 4), NewReLUOf[float32](), NewDenseOf[float32](rng, 4, 3))
	x := tensor.RandnOf[float32](rng, 1, 6, 5)
	labels := []int{0, 1, 2, 0, 1, 2}
	// Step size balances truncation against f32 round-off: ~sqrt(eps32).
	if worst := GradCheck(net, x, labels, 3e-4); worst > 2e-2 {
		t.Fatalf("f32 grad check worst relative error %v", worst)
	}
}

// TestTrainBatchSteadyStateAllocsF32 is the float32 twin of
// TestTrainBatchSteadyStateAllocs, run through the Trainer boundary so the
// input-narrowing buffer and optimizer state are covered too: after the
// first batch, TrainBatch+Step must not allocate.
func TestTrainBatchSteadyStateAllocsF32(t *testing.T) {
	old := tensor.MaxLanes()
	tensor.SetMaxLanes(0)
	defer tensor.SetMaxLanes(old)
	rng := rand.New(rand.NewSource(15))
	tr := NewTrainer(F32, LeNetSmall(1, 16, 16, 10), rng, 0.01, 0.9)
	x := tensor.Randn(rng, 1, 20, 1, 16, 16)
	labels := make([]int, 20)
	for i := range labels {
		labels[i] = i % 10
	}
	tr.TrainBatch(x, labels) // first batch sizes all workspaces
	tr.Step()                // first step allocates velocity tensors
	avg := testing.AllocsPerRun(10, func() {
		tr.TrainBatch(x, labels)
		tr.Step()
	})
	if avg > 0.5 {
		t.Fatalf("steady-state f32 TrainBatch+Step allocates %.1f objects/run, want 0", avg)
	}
}

// TestConvNoIm2ColWorkspace pins the implicit-GEMM memory win: after the
// first forward/backward has sized every workspace, (a) further batches on
// the same geometry allocate nothing, and (b) the layer's total retained
// workspace is smaller than the im2col patch matrix the old path
// materialized — the buffer is genuinely gone, not renamed.
func TestConvNoIm2ColWorkspace(t *testing.T) {
	old := tensor.MaxLanes()
	tensor.SetMaxLanes(0)
	defer tensor.SetMaxLanes(old)
	rng := rand.New(rand.NewSource(21))
	// Geometry where the patch matrix dwarfs activations: kdim = 24·3·3.
	conv := NewConv2D(rng, 24, 16, 3, 1, 1)
	x := tensor.Randn(rng, 1, 2, 24, 14, 14)
	y := conv.Forward(x, true)
	g := tensor.Randn(rng, 1, y.Shape()...)
	conv.Backward(g)

	avg := testing.AllocsPerRun(10, func() {
		conv.Forward(x, true)
		conv.Backward(g)
	})
	if avg > 0.5 {
		t.Fatalf("steady-state conv fwd+bwd allocates %.1f objects/run, want 0", avg)
	}

	m := 2 * 14 * 14              // batch × OH × OW rows
	im2colElems := m * 24 * 3 * 3 // the buffer the old path kept alive
	retained := conv.ym.Len() + conv.y.Len() + conv.gm.Len() + conv.dw.Len() + conv.dx.Len()
	if retained >= im2colElems {
		t.Fatalf("conv retains %d workspace elements ≥ im2col's %d — patch matrix not eliminated",
			retained, im2colElems)
	}
}

// TestCheckpointCrossPrecision covers the v2 dtype tag: an f32 checkpoint
// loads into an f64 network by widening (exactly), and an f64 checkpoint
// round-trips through an f32 network with rounding. Out-of-range f64
// weights must be rejected rather than narrowed to Inf.
func TestCheckpointCrossPrecision(t *testing.T) {
	arch := MLP(4, 3, 2)
	rng := rand.New(rand.NewSource(11))
	n32 := BuildNetwork[float32](arch, rng)
	var buf bytes.Buffer
	if err := n32.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	n64 := BuildNetwork[float64](arch, rand.New(rand.NewSource(12)))
	if err := n64.LoadWeights(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	p32, p64 := n32.Params(), n64.Params()
	for i := range p32 {
		a, b := p32[i].W.Data(), p64[i].W.Data()
		for j := range a {
			if float64(a[j]) != b[j] {
				t.Fatalf("param %d[%d]: widened %v != stored %v", i, j, b[j], a[j])
			}
		}
	}

	// f64 → f32: loads with rounding.
	buf.Reset()
	if err := n64.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	m32 := BuildNetwork[float32](arch, rand.New(rand.NewSource(13)))
	if err := m32.LoadWeights(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	q32 := m32.Params()
	for i := range q32 {
		a, b := q32[i].W.Data(), p64[i].W.Data()
		for j := range a {
			if a[j] != float32(b[j]) {
				t.Fatalf("param %d[%d]: loaded %v != rounded %v", i, j, a[j], float32(b[j]))
			}
		}
	}

	// f64 weight beyond f32 range must be rejected on a narrowing load.
	n64.Params()[0].W.Data()[0] = 1e308
	buf.Reset()
	if err := n64.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m32.LoadWeights(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("overflowing narrow load not rejected")
	}
}
