package lbap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func bruteMinSum(cost [][]float64) float64 {
	n := len(cost)
	used := make([]bool, n)
	best := math.Inf(1)
	var rec func(i int, cur float64)
	rec = func(i int, cur float64) {
		// No pruning: with negative costs a partial sum can exceed the
		// final optimum.
		if i == n {
			if cur < best {
				best = cur
			}
			return
		}
		for j := 0; j < n; j++ {
			if !used[j] {
				used[j] = true
				rec(i+1, cur+cost[i][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestMinSumKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	total, assign, err := SolveMinSum(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total %v, want 5", total)
	}
	seen := map[int]bool{}
	sum := 0.0
	for i, j := range assign {
		if seen[j] {
			t.Fatal("duplicate worker")
		}
		seen[j] = true
		sum += cost[i][j]
	}
	if sum != total {
		t.Fatalf("assignment sums to %v, reported %v", sum, total)
	}
}

func TestMinSumSingle(t *testing.T) {
	total, assign, err := SolveMinSum([][]float64{{3.5}})
	if err != nil || total != 3.5 || assign[0] != 0 {
		t.Fatalf("total=%v assign=%v err=%v", total, assign, err)
	}
}

func TestMinSumErrors(t *testing.T) {
	if _, _, err := SolveMinSum(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, _, err := SolveMinSum([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged accepted")
	}
	if _, _, err := SolveMinSum([][]float64{{math.NaN()}}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestMinSumNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 2},
		{3, -4},
	}
	total, _, err := SolveMinSum(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != -9 {
		t.Fatalf("total %v, want -9", total)
	}
}

func TestMinSumMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*200-50) / 10
			}
		}
		total, assign, err := SolveMinSum(cost)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		sum := 0.0
		for i, j := range assign {
			if seen[j] {
				return false
			}
			seen[j] = true
			sum += cost[i][j]
		}
		return math.Abs(sum-total) < 1e-9 && math.Abs(total-bruteMinSum(cost)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The bottleneck solution's max edge never exceeds the min-sum solution's
// max edge (LBAP optimizes the bottleneck directly).
func TestBottleneckBeatsMinSumOnMaxEdgeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 10
			}
		}
		bottleneck, _, err := Solve(cost)
		if err != nil {
			return false
		}
		_, assign, err := SolveMinSum(cost)
		if err != nil {
			return false
		}
		maxEdge := 0.0
		for i, j := range assign {
			if cost[i][j] > maxEdge {
				maxEdge = cost[i][j]
			}
		}
		return bottleneck <= maxEdge+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
