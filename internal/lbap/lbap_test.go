package lbap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteBottleneck enumerates all permutations (oracle for small n).
func bruteBottleneck(cost [][]float64) float64 {
	n := len(cost)
	used := make([]bool, n)
	best := math.Inf(1)
	var rec func(i int, cur float64)
	rec = func(i int, cur float64) {
		if cur >= best {
			return
		}
		if i == n {
			best = cur
			return
		}
		for j := 0; j < n; j++ {
			if !used[j] {
				used[j] = true
				rec(i+1, math.Max(cur, cost[i][j]))
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestKnownInstance(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	v, assign, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 { // (0→1:1, 1→0:2, 2→2:2) bottleneck 2
		t.Fatalf("bottleneck %v, want 2", v)
	}
	seen := map[int]bool{}
	worst := 0.0
	for i, j := range assign {
		if seen[j] {
			t.Fatal("worker assigned twice")
		}
		seen[j] = true
		worst = math.Max(worst, cost[i][j])
	}
	if worst != v {
		t.Fatalf("assignment bottleneck %v != reported %v", worst, v)
	}
}

func TestSingleElement(t *testing.T) {
	v, assign, err := Solve([][]float64{{7}})
	if err != nil || v != 7 || assign[0] != 0 {
		t.Fatalf("v=%v assign=%v err=%v", v, assign, err)
	}
}

func TestErrorsOnBadInput(t *testing.T) {
	if _, _, err := Solve(nil); err == nil {
		t.Fatal("expected error on empty matrix")
	}
	if _, _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error on ragged matrix")
	}
}

func TestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*100) / 10
			}
		}
		v, assign, err := Solve(cost)
		if err != nil {
			return false
		}
		// Assignment must realize the reported bottleneck.
		worst := 0.0
		seen := map[int]bool{}
		for i, j := range assign {
			if seen[j] {
				return false
			}
			seen[j] = true
			worst = math.Max(worst, cost[i][j])
		}
		return worst == v && v == bruteBottleneck(cost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
