// Package lbap solves the classic Linear Bottleneck Assignment Problem with
// the thresholding algorithm of Burkard, Dell'Amico and Martello [23]:
// binary-search the sorted cost values and test each threshold for a
// perfect matching with Hopcroft–Karp (O(n^{5/2} log n) overall). The
// paper's Fed-LBAP generalizes this to joint partitioning+assignment;
// this classic solver is kept as a reference baseline and test oracle.
package lbap

import (
	"fmt"
	"sort"

	"fedsched/internal/matching"
	"fedsched/internal/trace"
)

// Solve assigns each of n workers one of n tasks (cost[i][j] = cost of task
// i on worker j) minimizing the maximum selected cost. It returns the
// bottleneck value and assignment (task i → worker assign[i]).
func Solve(cost [][]float64) (float64, []int, error) {
	return SolveTraced(cost, nil)
}

// SolveTraced is Solve with solver observability: each threshold probe of
// the binary search emits one KindSolver event (the probed threshold, the
// matching size found, Flag 1 when the matching was perfect) into rec.
// rec may be nil.
func SolveTraced(cost [][]float64, rec *trace.Recorder) (float64, []int, error) {
	n := len(cost)
	if n == 0 {
		return 0, nil, fmt.Errorf("lbap: empty cost matrix")
	}
	for i, row := range cost {
		if len(row) != n {
			return 0, nil, fmt.Errorf("lbap: row %d has %d entries, want %d (square matrix required)", i, len(row), n)
		}
	}
	// Collect and sort the distinct cost values.
	values := make([]float64, 0, n*n)
	for _, row := range cost {
		values = append(values, row...)
	}
	sort.Float64s(values)
	values = dedup(values)

	probes := 0
	feasible := func(c float64) (bool, []int) {
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if cost[i][j] <= c {
					adj[i] = append(adj[i], j)
				}
			}
		}
		size, matchL := matching.HopcroftKarp(n, n, adj)
		flag := 0
		if size == n {
			flag = 1
		}
		rec.Emit(trace.Event{
			Kind: trace.KindSolver, Round: probes, Client: -1,
			Samples: size, Flag: flag, MakespanS: c,
		})
		probes++
		return size == n, matchL
	}

	lo, hi := 0, len(values)-1
	best := values[hi]
	var bestMatch []int
	if ok, m := feasible(best); !ok {
		_ = m
		return 0, nil, fmt.Errorf("lbap: no perfect matching exists")
	} else {
		bestMatch = m
	}
	for lo <= hi {
		mid := (lo + hi) / 2
		if ok, m := feasible(values[mid]); ok {
			best = values[mid]
			bestMatch = m
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, bestMatch, nil
}

func dedup(sorted []float64) []float64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] { //fedlint:allow floateq — dedup removes exact duplicates from a sorted cost slice by design
			out = append(out, v)
		}
	}
	return out
}
