package lbap

import (
	"fmt"
	"math"
)

// SolveMinSum solves the classic (min-sum) assignment problem the paper
// contrasts LBAP with (§V-A: "The classic assignment problem finds an
// optimal assignment of workers to tasks with minimum sum of cost") using
// the O(n³) shortest-augmenting-path Hungarian algorithm. cost[i][j] is
// the cost of giving task i to worker j; it returns the minimal total cost
// and the assignment task→worker.
func SolveMinSum(cost [][]float64) (float64, []int, error) {
	n := len(cost)
	if n == 0 {
		return 0, nil, fmt.Errorf("lbap: empty cost matrix")
	}
	for i, row := range cost {
		if len(row) != n {
			return 0, nil, fmt.Errorf("lbap: row %d has %d entries, want %d", i, len(row), n)
		}
		for _, v := range row {
			if math.IsNaN(v) {
				return 0, nil, fmt.Errorf("lbap: NaN cost")
			}
		}
	}

	// 1-indexed potentials and matching, the standard formulation.
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = task assigned to worker j (0 = none)
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign := make([]int, n)
	total := 0.0
	for j := 1; j <= n; j++ {
		assign[p[j]-1] = j - 1
		total += cost[p[j]-1][j-1]
	}
	return total, assign, nil
}
