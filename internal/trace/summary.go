package trace

import (
	"fmt"
	"io"
	"strings"
)

// roundRow accumulates one round's line of the summary table.
type roundRow struct {
	round                 int
	makespan              float64
	straggler             int
	loss, accuracy        float64
	samples, participants int
	dropped, throttles    int
	faulted               int
	energyJ               float64
	haveSummary           bool
}

// WriteSummary renders a compact per-round table from a trace: one row
// per KindRoundSummary event, enriched with the participant and throttle
// counts of the round's client events. This is the human view of the
// quantities the paper plots (makespan and energy per round); fedsim
// -trace-summary and fedtrain -trace-summary print it after a run.
func WriteSummary(w io.Writer, events []Event) error {
	var order []int
	rows := map[int]*roundRow{}
	row := func(round int) *roundRow {
		r, ok := rows[round]
		if !ok {
			r = &roundRow{round: round, straggler: -1, loss: -1, accuracy: -1}
			rows[round] = r
			order = append(order, round)
		}
		return r
	}
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case KindClientRound:
			r := row(e.Round)
			r.participants++
			if e.Flag == ClientDropped {
				r.dropped++
			}
		case KindRoundSummary:
			r := row(e.Round)
			r.haveSummary = true
			r.makespan = e.MakespanS
			r.straggler = e.Straggler
			r.loss = e.Loss
			r.accuracy = e.Accuracy
			r.samples = e.Samples
			r.throttles = e.Throttles
			r.energyJ = e.EnergyJ
		case KindMerge:
			r := row(e.Round)
			r.haveSummary = true
			r.participants++
			r.makespan = e.AtS
			r.straggler = e.Client
			r.samples = e.Samples
			r.energyJ = e.EnergyJ
		case KindFault:
			row(e.Round).faulted++
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%5s  %10s  %9s  %8s  %8s  %7s  %7s  %6s  %6s  %9s\n",
		"round", "makespan_s", "straggler", "loss", "accuracy", "clients", "samples", "faults", "thrtl", "energy_kJ")
	n := 0
	for _, round := range order {
		r := rows[round]
		if !r.haveSummary {
			continue
		}
		n++
		fmt.Fprintf(&b, "%5d  %10.2f  %9d  %8.4f  %8.4f  %7d  %7d  %6d  %6d  %9.3f\n",
			r.round, r.makespan, r.straggler, r.loss, r.accuracy,
			r.participants, r.samples, r.faulted, r.throttles, r.energyJ/1000)
	}
	if n == 0 {
		fmt.Fprintln(&b, "(no round events in trace)")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
