package trace

import (
	"math"
	"testing"
)

func ev(round, client int) Event {
	return Event{Kind: KindClientRound, Round: round, Client: client, ComputeS: float64(round) + 0.5}
}

func TestRecorderOrderAndLen(t *testing.T) {
	r := New(8)
	for i := 0; i < 5; i++ {
		r.Emit(ev(0, i))
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	events := r.Events()
	for i, e := range events {
		if e.Client != i {
			t.Fatalf("event %d has client %d, want %d (order broken)", i, e.Client, i)
		}
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestRecorderOverflowDropsOldest(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Emit(ev(0, i))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	events := r.Events()
	for i, e := range events {
		if want := 6 + i; e.Client != want {
			t.Fatalf("event %d has client %d, want %d (ring should keep the newest window)", i, e.Client, want)
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(ev(0, 0)) // must not panic
	r.Drain(New(4))
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder should report empty state")
	}
	// Draining a nil source is also a no-op.
	rr := New(4)
	rr.Drain(nil)
	if rr.Len() != 0 {
		t.Fatalf("Len = %d after draining nil, want 0", rr.Len())
	}
}

func TestDrainMergesInOrderAndResetsSource(t *testing.T) {
	dst := New(16)
	a, b := New(4), New(4)
	a.Emit(ev(0, 0))
	a.Emit(ev(0, 1))
	b.Emit(ev(0, 2))
	dst.Emit(Event{Kind: KindSchedule})
	dst.Drain(a)
	dst.Drain(b)
	events := dst.Events()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	want := []int{0, 0, 1, 2}
	for i := 1; i < 4; i++ {
		if events[i].Client != want[i] {
			t.Fatalf("event %d has client %d, want %d", i, events[i].Client, want[i])
		}
	}
	if a.Len() != 0 || b.Len() != 0 {
		t.Fatalf("sources not reset after drain: %d, %d", a.Len(), b.Len())
	}
	// A drained source is immediately reusable.
	a.Emit(ev(1, 7))
	if a.Len() != 1 || a.Events()[0].Client != 7 {
		t.Fatal("source unusable after drain")
	}
}

func TestDrainWrappedSource(t *testing.T) {
	src := New(3)
	for i := 0; i < 5; i++ { // wraps: keeps 2, 3, 4
		src.Emit(ev(0, i))
	}
	dst := New(8)
	dst.Drain(src)
	events := dst.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for i, e := range events {
		if want := 2 + i; e.Client != want {
			t.Fatalf("event %d has client %d, want %d", i, e.Client, want)
		}
	}
}

func TestResetKeepsCapacity(t *testing.T) {
	r := New(4)
	for i := 0; i < 6; i++ {
		r.Emit(ev(0, i))
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("Reset left Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	for i := 0; i < 4; i++ {
		r.Emit(ev(1, i))
	}
	if r.Len() != 4 || r.Dropped() != 0 {
		t.Fatalf("after refill: Len=%d Dropped=%d, want 4, 0", r.Len(), r.Dropped())
	}
}

// TestEmitSteadyStateAllocs is the runtime side of the static hotalloc
// guarantee: Emit and Drain never allocate after New.
func TestEmitSteadyStateAllocs(t *testing.T) {
	r := New(64)
	sub := New(8)
	e := ev(3, 1)
	allocs := testing.AllocsPerRun(200, func() {
		sub.Emit(e)
		sub.Emit(e)
		r.Drain(sub)
		r.Emit(e)
	})
	if allocs != 0 {
		t.Fatalf("Emit/Drain allocated %.1f times per run, want 0", allocs)
	}
}

func TestSanitize(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{1.5, 1.5}, {0, 0}, {-2, -2},
		{math.NaN(), -1}, {math.Inf(1), -1}, {math.Inf(-1), -1},
	} {
		if got := Sanitize(tc.in); got != tc.want {
			t.Fatalf("Sanitize(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
