package trace

import (
	"bytes"
	"errors"
	"testing"
)

func streamEvents(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{
			Kind: Kind(i % int(KindFault+1)), Round: i / 3, Client: i,
			Samples: 100 + i, ComputeS: 1.25 * float64(i), Loss: 0.5,
		}
	}
	return out
}

// TestStreamMatchesWriteJSONL is the core contract: flushing in chunks
// produces byte-identical output to one WriteJSONL over the full
// sequence, and the offset tracks the bytes exactly.
func TestStreamMatchesWriteJSONL(t *testing.T) {
	events := streamEvents(23)
	var want bytes.Buffer
	if err := WriteJSONL(&want, events); err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 4, 23} {
		var got bytes.Buffer
		s := NewStream(&got, 0)
		r := New(64)
		for i, e := range events {
			r.Emit(e)
			if (i+1)%chunk == 0 {
				if err := s.Flush(r); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := s.Flush(r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("chunk=%d: streamed bytes differ from WriteJSONL", chunk)
		}
		if s.Offset() != int64(got.Len()) {
			t.Fatalf("chunk=%d: offset %d, wrote %d bytes", chunk, s.Offset(), got.Len())
		}
		if r.Len() != 0 {
			t.Fatalf("chunk=%d: recorder not reset after flush", chunk)
		}
	}
}

func TestStreamBaseOffset(t *testing.T) {
	var sink bytes.Buffer
	s := NewStream(&sink, 100)
	r := New(8)
	r.Emit(Event{Kind: KindRoundSummary, Round: 1, Client: -1})
	if err := s.Flush(r); err != nil {
		t.Fatal(err)
	}
	if s.Offset() != 100+int64(sink.Len()) {
		t.Fatalf("offset %d, want base 100 + %d", s.Offset(), sink.Len())
	}
}

func TestStreamEmptyFlush(t *testing.T) {
	s := NewStream(&bytes.Buffer{}, 0)
	if err := s.Flush(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(New(4)); err != nil {
		t.Fatal(err)
	}
	if s.Offset() != 0 {
		t.Fatalf("offset moved on empty flushes: %d", s.Offset())
	}
}

// TestStreamOverflowIsLoud: a ring that wrapped between flushes lost
// events — the stream must refuse rather than silently persist a gap.
func TestStreamOverflowIsLoud(t *testing.T) {
	s := NewStream(&bytes.Buffer{}, 0)
	r := New(4)
	for i := 0; i < 6; i++ {
		r.Emit(Event{Round: i})
	}
	if err := s.Flush(r); err == nil {
		t.Fatal("want an overflow error, got nil")
	}
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	return w.n, errors.New("disk full")
}

func TestStreamWriteErrorKeepsState(t *testing.T) {
	s := NewStream(&failingWriter{n: 3}, 0)
	r := New(8)
	r.Emit(Event{Round: 7})
	if err := s.Flush(r); err == nil {
		t.Fatal("want a write error")
	}
	if s.Offset() != 0 {
		t.Fatalf("offset advanced past a failed write: %d", s.Offset())
	}
	if r.Len() != 1 {
		t.Fatalf("recorder drained despite the failed write: %d events", r.Len())
	}
}
