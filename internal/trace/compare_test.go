package trace

import (
	"strings"
	"testing"
)

// base returns a fully-populated event so every field participates in
// the comparison tests.
func base() Event {
	return Event{
		Kind: KindClientRound, Round: 3, Client: 2, Samples: 400,
		Throttles: 5, Straggler: -1, Staleness: 1, Flag: 0,
		AtS: 12.5, ComputeS: 88.25, CommS: 3.75, EnergyJ: 120.5,
		Battery: 0.93, TempC: 61.2, FreqGHz: 1.44, MakespanS: 92.0,
		Loss: 1.532, Accuracy: 0.81,
	}
}

func TestCompareTolerances(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Event)
		tol     Tolerances
		wantErr string // substring; empty = must pass
	}{
		{name: "identical exact", mutate: func(*Event) {}, tol: Exact},
		{name: "identical default", mutate: func(*Event) {}, tol: DefaultTolerances},
		{
			name:   "float within rel tolerance",
			mutate: func(e *Event) { e.ComputeS *= 1 + 1e-12 },
			tol:    DefaultTolerances,
		},
		{
			name:    "float beyond rel tolerance",
			mutate:  func(e *Event) { e.ComputeS *= 1 + 1e-6 },
			tol:     DefaultTolerances,
			wantErr: "compute_s",
		},
		{
			name:    "exact rejects any float drift",
			mutate:  func(e *Event) { e.Loss += 1e-15 },
			tol:     Exact,
			wantErr: "loss",
		},
		{
			name:    "int field off by one fails even with loose float tolerance",
			mutate:  func(e *Event) { e.Throttles++ },
			tol:     Tolerances{Rel: 100, Abs: 100},
			wantErr: "throttles",
		},
		{
			name:    "straggler id is exact",
			mutate:  func(e *Event) { e.Straggler = 4 },
			tol:     Tolerances{Rel: 100, Abs: 100},
			wantErr: "straggler",
		},
		{
			name:    "samples is exact",
			mutate:  func(e *Event) { e.Samples-- },
			tol:     Tolerances{Rel: 100, Abs: 100},
			wantErr: "samples",
		},
		{
			name:    "flag is exact",
			mutate:  func(e *Event) { e.Flag = ClientDropped },
			tol:     Tolerances{Rel: 100, Abs: 100},
			wantErr: "flag",
		},
		{
			name:    "kind mismatch",
			mutate:  func(e *Event) { e.Kind = KindRoundSummary },
			tol:     Tolerances{Rel: 100, Abs: 100},
			wantErr: "kind",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			golden := []Event{base(), base()}
			got := []Event{base(), base()}
			tc.mutate(&got[1])
			err := Compare(golden, got, tc.tol)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Compare failed: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Compare passed, want error mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if !strings.Contains(err.Error(), "event 1") {
				t.Fatalf("error %q does not name the mismatching event index", err)
			}
		})
	}
}

// TestCompareAbsSlackNearZero exercises the absolute term: when the
// golden value is exactly zero, a relative bound alone rejects any
// drift, so Abs must carry it.
func TestCompareAbsSlackNearZero(t *testing.T) {
	golden, got := base(), base()
	golden.CommS, got.CommS = 0, 5e-13
	if err := Compare([]Event{golden}, []Event{got}, DefaultTolerances); err != nil {
		t.Fatalf("Abs slack should cover near-zero drift: %v", err)
	}
	relOnly := Tolerances{Rel: 1e-9}
	if err := Compare([]Event{golden}, []Event{got}, relOnly); err == nil {
		t.Fatal("relative-only tolerance should reject drift from a zero golden")
	}
}

func TestCompareLengthMismatch(t *testing.T) {
	err := Compare([]Event{base()}, []Event{base(), base()}, DefaultTolerances)
	if err == nil || !strings.Contains(err.Error(), "count") {
		t.Fatalf("want count-mismatch error, got %v", err)
	}
}

func TestCompareEmpty(t *testing.T) {
	if err := Compare(nil, nil, Exact); err != nil {
		t.Fatalf("empty traces should compare equal: %v", err)
	}
}
