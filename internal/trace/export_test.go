package trace

import (
	"bytes"
	"strings"
	"testing"
)

// sample covers every kind and exercises negative, zero and fractional
// field values.
func sample() []Event {
	return []Event{
		{Kind: KindSchedule, Round: -1, Client: 0, Samples: 12000, ComputeS: 310.25, MakespanS: 402.5},
		{Kind: KindSolver, Round: 0, Client: -1, Samples: 600, Flag: 1, MakespanS: 402.5},
		{Kind: KindThrottle, Client: 3, Flag: ThrottleEngage, AtS: 41.75, TempC: 55.01, FreqGHz: 1.2},
		{Kind: KindClientRound, Round: 0, Client: 3, Samples: 2000, Throttles: 2, ComputeS: 120.5, CommS: 4.25, EnergyJ: 310.75, Battery: 0.97, TempC: 58.5, Loss: 2.13},
		{Kind: KindRoundSummary, Round: 0, Client: -1, Samples: 12000, Throttles: 2, Straggler: 3, MakespanS: 124.75, Loss: 2.2, Accuracy: -1, EnergyJ: 900.5},
		{Kind: KindMerge, Round: 7, Client: 1, Samples: 500, Staleness: 2, AtS: 88.125, ComputeS: 61.5, CommS: 2.5},
		{Kind: KindSimStep, Round: 19, AtS: 90.625},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sample()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Compare(events, got, Exact); err != nil {
		t.Fatalf("JSONL round trip not exact: %v", err)
	}
}

func TestJSONLDeterministicBytes(t *testing.T) {
	events := sample()
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same events differ byte-wise")
	}
	first := strings.SplitN(a.String(), "\n", 2)[0]
	if !strings.HasPrefix(first, `{"kind":"schedule"`) {
		t.Fatalf("unexpected leading line %q: kind must encode as its string name first", first)
	}
}

func TestJSONLSkipsBlankLines(t *testing.T) {
	events := sample()[:2]
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	padded := "\n" + strings.ReplaceAll(buf.String(), "\n", "\n\n")
	got, err := ReadJSONL(strings.NewReader(padded))
	if err != nil {
		t.Fatal(err)
	}
	if err := Compare(events, got, Exact); err != nil {
		t.Fatalf("padded JSONL mismatch: %v", err)
	}
}

func TestJSONLRejectsUnknownKind(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"no_such_kind"}` + "\n")); err == nil {
		t.Fatal("want error for unknown kind")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	events := sample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Compare(events, got, Exact); err != nil {
		t.Fatalf("CSV round trip not exact: %v", err)
	}
}

func TestCSVHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	header := strings.TrimSpace(buf.String())
	if header != strings.Join(csvHeader, ",") {
		t.Fatalf("header %q, want %q", header, strings.Join(csvHeader, ","))
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("want error for empty CSV input")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for k := Kind(0); int(k) < len(kindNames); k++ {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("want error for bogus kind name")
	}
}

func TestWriteSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummary(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"round", "makespan_s", "straggler", "124.75", "0.900"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(strings.TrimSpace(out), "\n")
	// Header + round 0 + merge row for update 7.
	if lines != 2 {
		t.Fatalf("summary has %d body lines, want 2:\n%s", lines, out)
	}
}

func TestWriteSummaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no round events") {
		t.Fatalf("empty summary should say so, got:\n%s", buf.String())
	}
}
