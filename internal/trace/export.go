package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// MarshalJSON encodes the kind as its stable string name, keeping JSONL
// traces self-describing and diffable.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts the string names written by MarshalJSON.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	kk, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = kk
	return nil
}

// ParseKind inverts Kind.String.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// WriteJSONL writes one JSON object per event, one per line, in order.
// Encoding is deterministic (fixed field order, shortest float
// round-trip representation), so equal event sequences produce
// byte-identical files.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace written by WriteJSONL. Blank lines are
// skipped so hand-edited goldens stay readable.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFileJSONL writes the events to path as JSONL (see WriteJSONL) —
// the `-trace` flag of the binaries.
func WriteFileJSONL(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSONL(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFileJSONL reads a JSONL trace from path (see ReadJSONL).
func ReadFileJSONL(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}

// WriteFileCSV writes the events to path as CSV (see WriteCSV) — the
// `-trace-csv` flag of the binaries.
func WriteFileCSV(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// csvHeader is the fixed CSV column order; it mirrors the Event fields.
var csvHeader = []string{
	"kind", "round", "client", "samples", "throttles", "straggler",
	"staleness", "flag", "at_s", "compute_s", "comm_s", "energy_j",
	"battery", "temp_c", "freq_ghz", "makespan_s", "loss", "accuracy",
}

// WriteCSV writes the events as CSV with a header row. Floats use the
// shortest round-trip representation, so ReadCSV(WriteCSV(e)) == e.
func WriteCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	d := strconv.Itoa
	for i := range events {
		e := &events[i]
		rec := []string{
			e.Kind.String(), d(e.Round), d(e.Client), d(e.Samples),
			d(e.Throttles), d(e.Straggler), d(e.Staleness), d(e.Flag),
			f(e.AtS), f(e.ComputeS), f(e.CommS), f(e.EnergyJ),
			f(e.Battery), f(e.TempC), f(e.FreqGHz), f(e.MakespanS),
			f(e.Loss), f(e.Accuracy),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV trace written by WriteCSV.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: empty CSV (missing header)")
	}
	out := make([]Event, 0, len(recs)-1)
	for i, rec := range recs[1:] {
		var e Event
		if e.Kind, err = ParseKind(rec[0]); err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i+1, err)
		}
		ints := []*int{
			&e.Round, &e.Client, &e.Samples, &e.Throttles,
			&e.Straggler, &e.Staleness, &e.Flag,
		}
		for j, p := range ints {
			if *p, err = strconv.Atoi(rec[1+j]); err != nil {
				return nil, fmt.Errorf("trace: row %d col %s: %w", i+1, csvHeader[1+j], err)
			}
		}
		floats := []*float64{
			&e.AtS, &e.ComputeS, &e.CommS, &e.EnergyJ, &e.Battery,
			&e.TempC, &e.FreqGHz, &e.MakespanS, &e.Loss, &e.Accuracy,
		}
		for j, p := range floats {
			if *p, err = strconv.ParseFloat(rec[8+j], 64); err != nil {
				return nil, fmt.Errorf("trace: row %d col %s: %w", i+1, csvHeader[8+j], err)
			}
		}
		out = append(out, e)
	}
	return out, nil
}
