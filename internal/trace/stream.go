package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Stream incrementally persists a Recorder's events as JSONL. Callers
// flush between rounds (the serve daemon does it from the engine's
// checkpoint sink, on the engine goroutine): each Flush encodes the
// recorder's live events oldest-first, appends them to the underlying
// writer and resets the recorder, so the ring never needs to hold more
// than one flush interval's worth of events.
//
// Because every event encodes independently (one JSON object per line,
// fixed field order), the concatenation of the flushed chunks is
// byte-identical to a single WriteJSONL over the full event sequence —
// which is what makes a killed-and-resumed run's trace file provably
// equal to an uninterrupted run's: truncate to the last offset recorded
// atomically with a checkpoint, resume, and the re-emitted suffix lines
// up exactly.
//
// A Stream is not safe for concurrent use; it shares the recorder's
// single-writer contract.
type Stream struct {
	w      io.Writer
	offset int64
	buf    bytes.Buffer
}

// NewStream returns a Stream appending to w. base is the byte offset
// already present in w (non-zero when resuming onto a truncated file);
// Offset continues from it.
func NewStream(w io.Writer, base int64) *Stream {
	return &Stream{w: w, offset: base}
}

// Flush drains r into the stream: its live events are encoded oldest
// first, written to the underlying writer in one Write, and r is reset.
// A nil or empty recorder is a no-op. The write is all-or-nothing from
// the stream's point of view: on error the offset does not advance and
// r keeps its events, so the caller can retry or abandon the job with
// the accounting intact.
func (s *Stream) Flush(r *Recorder) error {
	if r == nil || r.Len() == 0 {
		return nil
	}
	if d := r.Dropped(); d > 0 {
		return fmt.Errorf("trace: stream flush lost %d events to ring overflow; raise the ring capacity or flush more often", d)
	}
	s.buf.Reset()
	enc := json.NewEncoder(&s.buf)
	for i := 0; i < r.n; i++ {
		if err := enc.Encode(&r.buf[(r.start+i)%len(r.buf)]); err != nil {
			return fmt.Errorf("trace: stream event %d: %w", i, err)
		}
	}
	n, err := s.w.Write(s.buf.Bytes())
	if err != nil {
		// A torn write may leave the sink ahead of the accounting; the
		// offset deliberately stays put — anything past it is a partial
		// tail that a resume truncates away.
		return fmt.Errorf("trace: stream write (%d of %d bytes): %w", n, s.buf.Len(), err)
	}
	s.offset += int64(n)
	r.Reset()
	return nil
}

// Offset reports how many bytes of JSONL the stream has written,
// including the base it was constructed with. Recording it atomically
// with a run checkpoint lets a restart truncate the sink back to a
// consistent round boundary.
func (s *Stream) Offset() int64 { return s.offset }
