// Package trace is the round-trace observability layer: a deterministic,
// allocation-free event recorder that the device simulator, the
// discrete-event engine, the schedulers and all three federated-learning
// engines emit into. The paper's claims are about time and energy *per
// round* (Figs 8–10 of the journal extension; Figs 5/7 here), so those
// quantities are recorded as first-class events rather than reconstructed
// from logs: per-client round events (compute/comm time, energy, battery
// level, temperature, DVFS throttle transitions, assigned data size) and
// per-round aggregates (makespan, straggler id, accuracy).
//
// Determinism contract: a Recorder is single-writer. Engines that fan
// client work out across a worker pool give each client its own ring
// (one Recorder per client) and Drain them into the run recorder after
// the round's join, in client-ID order — so the merged trace is
// bit-identical for any worker count, exactly like the History itself
// (see internal/fl/parallel_test.go). Exports (JSONL, CSV) are plain
// field-ordered encodings of the event sequence, so equal event
// sequences produce byte-identical files.
//
// Field semantics by kind:
//
//	KindSchedule    one event per user of a computed assignment: Client is
//	                the user index, Samples the assigned samples, ComputeS
//	                the predicted user cost, MakespanS the predicted
//	                makespan, Loss the Fed-MinAvg objective (0 otherwise).
//	KindSolver      one event per threshold probe of an LBAP binary
//	                search: Round is the iteration, MakespanS the probed
//	                threshold, Samples the feasible shards (or matched
//	                size), Flag 1 when feasible.
//	KindThrottle    a DVFS governor transition on a device: Client is the
//	                device's trace id, AtS its local clock, Flag one of
//	                the Throttle* constants, TempC/FreqGHz the state at
//	                the transition.
//	KindClientRound one client's contribution to a synchronous round:
//	                compute/comm seconds, round energy, battery fraction,
//	                end-of-training temperature, throttle transitions
//	                during training, Flag 1 = dropped, 2 = diverged,
//	                3 = faulted (injected; see KindFault), 4 = late
//	                (finished after the quorum closed).
//	KindRoundSummary per-round aggregate: MakespanS, Straggler (client id
//	                defining the makespan, −1 if none), Loss (sample-
//	                weighted, −1 when unavailable), Accuracy (−1 when the
//	                round was not evaluated), Samples aggregated, EnergyJ
//	                and Throttles summed over clients, Flag = dropped
//	                count.
//	KindMerge       one asynchronous server merge: Round is the update
//	                index, AtS the virtual merge time, Staleness the
//	                version lag, plus the client's compute/comm/energy.
//	KindSimStep     one processed discrete-event-engine event: AtS is the
//	                virtual time, Round the engine sequence number.
//	KindFault       one injected client fault (internal/fault): Client is
//	                the victim, Flag the fault kind (1 crash, 2 battery,
//	                3 link flap, 4 corrupt), Samples the assigned work,
//	                ComputeS/CommS the time actually spent before the
//	                failure, EnergyJ the wasted energy, Battery the
//	                post-fault battery fraction. Synchronous engines emit
//	                it right after the victim's KindClientRound event;
//	                the async engine at the fault's virtual time (AtS),
//	                with Round the client's cycle index.
//
// Non-finite floats never enter a trace: emitters sanitize NaN/±Inf to −1
// (Sanitize) so every event is JSON-encodable.
package trace

import "math"

// Kind discriminates trace event types.
type Kind uint8

// Event kinds, in rough pipeline order. New kinds are appended (never
// inserted) so existing golden traces keep their wire encoding.
const (
	KindSchedule Kind = iota
	KindSolver
	KindThrottle
	KindClientRound
	KindRoundSummary
	KindMerge
	KindSimStep
	KindFault
)

// kindNames is the stable wire encoding of Kind (JSONL and CSV).
var kindNames = [...]string{
	KindSchedule:     "schedule",
	KindSolver:       "solver",
	KindThrottle:     "throttle",
	KindClientRound:  "client_round",
	KindRoundSummary: "round",
	KindMerge:        "merge",
	KindSimStep:      "sim_step",
	KindFault:        "fault",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Throttle transition flags (Event.Flag for KindThrottle).
const (
	ThrottleRelease = 0 // soft throttle disengaged
	ThrottleEngage  = 1 // soft throttle engaged (temp above soft trip)
	ThrottleTrip    = 2 // hard trip: big cluster shut down
	ThrottleRecover = 3 // hard trip recovered (hysteresis)
)

// Client-round flags (Event.Flag for KindClientRound). Appended, never
// renumbered: the values are wire constants in golden traces.
const (
	ClientOK       = 0
	ClientDropped  = 1 // cut by the round deadline; update discarded
	ClientDiverged = 2 // non-finite weights; update rejected
	ClientFaulted  = 3 // injected fault (see the paired KindFault event)
	ClientLate     = 4 // finished after the quorum closed; update discarded
)

// Event is one fixed-size trace record. All fields are value types so a
// ring of Events involves no per-event allocation; fields not meaningful
// for a kind stay zero (and are omitted from JSONL). Integer fields are
// compared exactly by Compare; float fields within tolerances.
type Event struct {
	Kind      Kind    `json:"kind"`
	Round     int     `json:"round"`
	Client    int     `json:"client"`
	Samples   int     `json:"samples,omitempty"`
	Throttles int     `json:"throttles,omitempty"`
	Straggler int     `json:"straggler,omitempty"`
	Staleness int     `json:"staleness,omitempty"`
	Flag      int     `json:"flag,omitempty"`
	AtS       float64 `json:"at_s,omitempty"`
	ComputeS  float64 `json:"compute_s,omitempty"`
	CommS     float64 `json:"comm_s,omitempty"`
	EnergyJ   float64 `json:"energy_j,omitempty"`
	Battery   float64 `json:"battery,omitempty"`
	TempC     float64 `json:"temp_c,omitempty"`
	FreqGHz   float64 `json:"freq_ghz,omitempty"`
	MakespanS float64 `json:"makespan_s,omitempty"`
	Loss      float64 `json:"loss,omitempty"`
	Accuracy  float64 `json:"accuracy,omitempty"`
}

// DefaultCapacity is the ring size used when New is given no capacity.
const DefaultCapacity = 1 << 16

// Recorder is a bounded ring of events. The zero ring is sized lazily by
// New; when full, the oldest events are overwritten (and counted in
// Dropped) so a long run records a bounded, most-recent window. A nil
// *Recorder is a valid sink that discards everything — call sites need no
// enable branch. A Recorder is NOT safe for concurrent use: each engine
// (or each client inside a parallel round) owns its own.
type Recorder struct {
	buf     []Event
	start   int // index of the oldest event
	n       int // live events in buf
	dropped uint64
}

// New returns a Recorder holding at most capacity events
// (DefaultCapacity when capacity <= 0).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Emit appends e to the ring, overwriting the oldest event when full.
// This is the hot path: no allocation ever (the ring is pre-sized by
// New), safe on a nil receiver.
//
// fedlint:hotpath
func (r *Recorder) Emit(e Event) {
	if r == nil || len(r.buf) == 0 {
		return
	}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

// Drain moves all of src's events into r, oldest first, and resets src.
// Like Emit it never allocates and tolerates nil on either side. Engines
// call it after a parallel round's join, in client order, to merge
// per-client rings deterministically.
//
// fedlint:hotpath
// fedlint:deterministic
func (r *Recorder) Drain(src *Recorder) {
	if src == nil {
		return
	}
	for i := 0; i < src.n; i++ {
		r.Emit(src.buf[(src.start+i)%len(src.buf)])
	}
	src.start, src.n, src.dropped = 0, 0, 0
}

// DrainRound is Drain with the round number stamped onto every moved
// event. Devices emit throttle transitions with Round −1 (they do not
// know the federated round); the engine drains their rings once per
// round and labels the events here.
//
// fedlint:hotpath
// fedlint:deterministic
func (r *Recorder) DrainRound(src *Recorder, round int) {
	if src == nil {
		return
	}
	for i := 0; i < src.n; i++ {
		e := src.buf[(src.start+i)%len(src.buf)]
		e.Round = round
		r.Emit(e)
	}
	src.start, src.n, src.dropped = 0, 0, 0
}

// Len returns the number of live events in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Dropped returns how many events were overwritten because the ring was
// full. A non-zero value means the trace is a suffix of the run.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Events returns a copy of the live events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil || r.n == 0 {
		return nil
	}
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Reset empties the ring without releasing its storage.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.start, r.n, r.dropped = 0, 0, 0
}

// Sanitize maps non-finite float values to −1 so events stay
// JSON-encodable; emitters apply it to losses and accuracies that may be
// NaN (all-dropped rounds, diverged clients).
func Sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}
