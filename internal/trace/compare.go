package trace

import (
	"fmt"
	"math"
)

// Tolerances bounds the float drift Compare accepts. Integer fields are
// always compared exactly — a different straggler id, throttle count or
// assigned size is a behavioural change, never noise.
type Tolerances struct {
	// Rel is the maximum relative error |got−golden| / |golden| allowed
	// on float fields.
	Rel float64
	// Abs is the absolute slack added on top (covers golden values at or
	// near zero, where a relative bound is meaningless).
	Abs float64
}

// Exact is the zero tolerance: byte-level float equality.
var Exact = Tolerances{}

// DefaultTolerances absorbs cross-platform libm drift (math.Exp/Pow have
// per-architecture assembly) while still catching any model change: the
// simulator's quantities live in seconds/joules/°C, so 1e-9 relative is
// far below one integration step of drift.
var DefaultTolerances = Tolerances{Rel: 1e-9, Abs: 1e-12}

// within reports |got−golden| ≤ Abs + Rel·|golden|.
func (t Tolerances) within(golden, got float64) bool {
	return math.Abs(got-golden) <= t.Abs+t.Rel*math.Abs(golden)
}

// intField / floatField pair a field name with its accessor, so Compare
// reports mismatches by name and the event schema is enumerated once.
var intFields = []struct {
	name string
	get  func(*Event) int
}{
	{"round", func(e *Event) int { return e.Round }},
	{"client", func(e *Event) int { return e.Client }},
	{"samples", func(e *Event) int { return e.Samples }},
	{"throttles", func(e *Event) int { return e.Throttles }},
	{"straggler", func(e *Event) int { return e.Straggler }},
	{"staleness", func(e *Event) int { return e.Staleness }},
	{"flag", func(e *Event) int { return e.Flag }},
}

var floatFields = []struct {
	name string
	get  func(*Event) float64
}{
	{"at_s", func(e *Event) float64 { return e.AtS }},
	{"compute_s", func(e *Event) float64 { return e.ComputeS }},
	{"comm_s", func(e *Event) float64 { return e.CommS }},
	{"energy_j", func(e *Event) float64 { return e.EnergyJ }},
	{"battery", func(e *Event) float64 { return e.Battery }},
	{"temp_c", func(e *Event) float64 { return e.TempC }},
	{"freq_ghz", func(e *Event) float64 { return e.FreqGHz }},
	{"makespan_s", func(e *Event) float64 { return e.MakespanS }},
	{"loss", func(e *Event) float64 { return e.Loss }},
	{"accuracy", func(e *Event) float64 { return e.Accuracy }},
}

// Compare diffs a recorded trace against a golden one: event count and
// every integer field must match exactly; float fields must agree within
// tol. It returns nil when the traces match, or an error naming the
// first mismatching event and field. Both the golden-trace tests and the
// CI gate go through this single definition of "same behaviour".
func Compare(golden, got []Event, tol Tolerances) error {
	if len(golden) != len(got) {
		return fmt.Errorf("trace: event count mismatch: golden %d, got %d", len(golden), len(got))
	}
	for i := range golden {
		g, h := &golden[i], &got[i]
		if g.Kind != h.Kind {
			return fmt.Errorf("trace: event %d: kind mismatch: golden %s, got %s", i, g.Kind, h.Kind)
		}
		for _, f := range intFields {
			if a, b := f.get(g), f.get(h); a != b {
				return fmt.Errorf("trace: event %d (%s): %s mismatch: golden %d, got %d", i, g.Kind, f.name, a, b)
			}
		}
		for _, f := range floatFields {
			if a, b := f.get(g), f.get(h); !tol.within(a, b) {
				return fmt.Errorf("trace: event %d (%s): %s drift beyond tolerance: golden %v, got %v (|Δ|=%g > %g+%g·|golden|)",
					i, g.Kind, f.name, a, b, math.Abs(b-a), tol.Abs, tol.Rel)
			}
		}
	}
	return nil
}
