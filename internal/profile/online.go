package profile

import (
	"sync"

	"fedsched/internal/nn"
	"fedsched/internal/regress"
)

// OnlineProfile refines training-time predictions from measurements
// observed during real federated rounds — the paper's alternative to
// offline profiling ("this can be done either online through a
// bootstrapping phase or offline", §IV-B). It wraps an optional offline
// prior and overrides it with a per-architecture least-squares fit once
// enough live observations accumulate. Online observations capture what
// the offline cold-start profile cannot: sustained-operation thermal
// state.
type OnlineProfile struct {
	mu   sync.Mutex
	base *DeviceProfile
	obs  map[string][]obsPoint
	fits map[string]*regress.Model
	// MinObservations gates switching from the prior to the online fit.
	MinObservations int
}

type obsPoint struct {
	n       int
	seconds float64
}

// NewOnline wraps an (optional, may be nil) offline prior.
func NewOnline(base *DeviceProfile) *OnlineProfile {
	return &OnlineProfile{
		base:            base,
		obs:             make(map[string][]obsPoint),
		fits:            make(map[string]*regress.Model),
		MinObservations: 3,
	}
}

// Observe records a measured epoch: n samples of the architecture took the
// given number of seconds. Observations with non-positive n or time are
// ignored.
func (o *OnlineProfile) Observe(arch *nn.Arch, n int, seconds float64) {
	if n <= 0 || seconds <= 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.obs[arch.Name] = append(o.obs[arch.Name], obsPoint{n, seconds})
	delete(o.fits, arch.Name) // invalidate the cached fit
}

// Observations returns the number of recorded measurements for the
// architecture.
func (o *OnlineProfile) Observations(arch *nn.Arch) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.obs[arch.Name])
}

// Predict estimates the epoch time for n samples: the online fit once
// enough observations exist (and they span more than one data size),
// otherwise the offline prior, otherwise a mean-rate extrapolation of
// whatever observations exist.
func (o *OnlineProfile) Predict(arch *nn.Arch, n int) float64 {
	if n <= 0 {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	pts := o.obs[arch.Name]
	if len(pts) >= o.MinObservations && spansSizes(pts) {
		m, ok := o.fits[arch.Name]
		if !ok {
			m = fitPoints(pts)
			if m != nil {
				o.fits[arch.Name] = m
			}
		}
		if m != nil {
			v := m.Predict([]float64{float64(n)})
			if v > 0 {
				return v
			}
			return 0
		}
	}
	if o.base != nil {
		pred := o.base.Predict(arch, n)
		if len(pts) > 0 {
			// Too few (or size-degenerate) observations for a fit of our
			// own, but enough to detect drift: scale the prior by the
			// observed/predicted ratio. This is what lets the adaptive
			// controller react when a device degrades under a static
			// schedule that keeps feeding it one data size.
			obs, expect := 0.0, 0.0
			for _, p := range pts {
				obs += p.seconds
				expect += o.base.Predict(arch, p.n)
			}
			if expect > 0 {
				pred *= obs / expect
			}
		}
		return pred
	}
	if len(pts) > 0 {
		// Mean per-sample rate from the observations we do have.
		rate, total := 0.0, 0.0
		for _, p := range pts {
			rate += p.seconds
			total += float64(p.n)
		}
		return rate / total * float64(n)
	}
	return 0
}

// spansSizes reports whether the observations cover more than one distinct
// data size (a one-size cloud cannot identify a slope).
func spansSizes(pts []obsPoint) bool {
	for _, p := range pts[1:] {
		if p.n != pts[0].n {
			return true
		}
	}
	return false
}

// fitPoints least-squares-fits seconds ~ n, clamping negative slopes to
// keep Property 1 (monotone costs).
func fitPoints(pts []obsPoint) *regress.Model {
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = float64(p.n)
		ys[i] = p.seconds
	}
	m, err := regress.FitSimple(xs, ys)
	if err != nil {
		return nil
	}
	if m.Coef[1] < 0 {
		m.Coef[1] = 0
	}
	return m
}
