package profile

import (
	"math"
	"testing"

	"fedsched/internal/device"
	"fedsched/internal/nn"
)

func TestOnlineFallsBackToPrior(t *testing.T) {
	prior := buildTestProfile(t, device.Pixel2())
	on := NewOnline(prior)
	lenet := nn.LeNet(1, 28, 28, 10)
	if got, want := on.Predict(lenet, 3000), prior.Predict(lenet, 3000); got != want {
		t.Fatalf("prior not used: %v vs %v", got, want)
	}
}

func TestOnlineAdaptsToWarmDevice(t *testing.T) {
	// The offline (cold-start) profile underestimates a thermally saturated
	// Nexus 6P. Feeding warm observations must fix the prediction.
	prior := buildTestProfile(t, device.Nexus6P())
	lenet := nn.LeNet(1, 28, 28, 10)
	dev := device.New(device.Nexus6P())
	dev.TrainSamples(lenet, 6000, 20) // saturate the thermals

	on := NewOnline(prior)
	for _, n := range []int{1000, 2000, 3000, 1500} {
		secs, _ := dev.TrainSamples(lenet, n, 20)
		on.Observe(lenet, n, secs)
	}
	warmTruth := dev.EpochTime(lenet, 2500)
	offlineErr := math.Abs(prior.Predict(lenet, 2500) - warmTruth)
	onlineErr := math.Abs(on.Predict(lenet, 2500) - warmTruth)
	if onlineErr >= offlineErr {
		t.Fatalf("online (err %.1f s) did not beat offline (err %.1f s) on a warm device", onlineErr, offlineErr)
	}
	if onlineErr/warmTruth > 0.15 {
		t.Fatalf("online prediction still %.0f%% off", 100*onlineErr/warmTruth)
	}
}

func TestOnlineNeedsSizeSpread(t *testing.T) {
	on := NewOnline(nil)
	lenet := nn.LeNet(1, 28, 28, 10)
	// Same size thrice: slope unidentifiable → mean-rate fallback.
	on.Observe(lenet, 1000, 10)
	on.Observe(lenet, 1000, 12)
	on.Observe(lenet, 1000, 11)
	got := on.Predict(lenet, 2000)
	if math.Abs(got-22) > 1e-9 {
		t.Fatalf("mean-rate fallback = %v, want 22", got)
	}
}

func TestOnlineNoDataNoPrior(t *testing.T) {
	on := NewOnline(nil)
	lenet := nn.LeNet(1, 28, 28, 10)
	if got := on.Predict(lenet, 1000); got != 0 {
		t.Fatalf("prediction without any information: %v", got)
	}
	if on.Predict(lenet, 0) != 0 {
		t.Fatal("zero samples must cost zero")
	}
}

func TestOnlineIgnoresBadObservations(t *testing.T) {
	on := NewOnline(nil)
	lenet := nn.LeNet(1, 28, 28, 10)
	on.Observe(lenet, -5, 10)
	on.Observe(lenet, 100, -1)
	if n := on.Observations(lenet); n != 0 {
		t.Fatalf("%d bad observations recorded", n)
	}
}

func TestOnlineFitInvalidatedByNewData(t *testing.T) {
	on := NewOnline(nil)
	lenet := nn.LeNet(1, 28, 28, 10)
	on.Observe(lenet, 1000, 10)
	on.Observe(lenet, 2000, 20)
	on.Observe(lenet, 3000, 30)
	first := on.Predict(lenet, 4000)
	if math.Abs(first-40) > 1e-6 {
		t.Fatalf("fit %v, want 40", first)
	}
	// New observations shift the line; the cached fit must refresh.
	on.Observe(lenet, 4000, 80)
	on.Observe(lenet, 5000, 100)
	second := on.Predict(lenet, 4000)
	if second <= first {
		t.Fatalf("fit not refreshed: %v then %v", first, second)
	}
}

func TestOnlineDriftRatioCorrection(t *testing.T) {
	// A base profile plus same-size observations that run 3× slower than
	// predicted: Predict must scale up by the observed ratio.
	prior := buildTestProfile(t, device.Pixel2())
	lenet := nn.LeNet(1, 28, 28, 10)
	on := NewOnline(prior)
	base := prior.Predict(lenet, 2000)
	on.Observe(lenet, 2000, base*3)
	on.Observe(lenet, 2000, base*3)
	got := on.Predict(lenet, 2000)
	if math.Abs(got-3*base)/base > 0.01 {
		t.Fatalf("drift correction: got %v, want %v", got, 3*base)
	}
	// Other sizes scale proportionally.
	if got := on.Predict(lenet, 4000); got < prior.Predict(lenet, 4000)*2.5 {
		t.Fatalf("ratio not applied across sizes: %v", got)
	}
}
