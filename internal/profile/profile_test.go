package profile

import (
	"encoding/json"
	"math"
	"testing"

	"fedsched/internal/device"
	"fedsched/internal/nn"
)

func buildTestProfile(t *testing.T, p device.Profile) *DeviceProfile {
	t.Helper()
	dev := device.New(p)
	prof, err := BuildOffline(dev, Suite(1, 28, 28, 10), DefaultSizes)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestBuildOfflineFitsWell(t *testing.T) {
	prof := buildTestProfile(t, device.Nexus6())
	if len(prof.Step1) != len(DefaultSizes) {
		t.Fatalf("%d step-1 fits, want %d", len(prof.Step1), len(DefaultSizes))
	}
	for _, f := range prof.Step1 {
		if f.R2 < 0.95 {
			t.Errorf("size %d: step-1 R² = %.3f, want ≥0.95", f.DataSize, f.R2)
		}
	}
}

func TestPredictAccuracyOnSeenArch(t *testing.T) {
	// The profiler must predict epoch times near the simulator's ground
	// truth for architectures in the suite (Fig 4b's "small gap").
	lenet := nn.LeNet(1, 28, 28, 10)
	for _, dp := range []device.Profile{device.Nexus6(), device.Mate10(), device.Pixel2()} {
		prof := buildTestProfile(t, dp)
		dev := device.New(dp)
		for _, n := range []int{1500, 2500, 5000} {
			want := dev.ColdEpochTime(lenet, n)
			got := prof.Predict(lenet, n)
			if math.Abs(got-want)/want > 0.25 {
				t.Errorf("%s n=%d: predicted %.1f s, simulated %.1f s", dp.Model, n, got, want)
			}
		}
	}
}

func TestPredictUnseenArchitecture(t *testing.T) {
	// Predict an architecture NOT in the profiling suite (step 1's whole
	// point): an intermediate LeNet scaling.
	unseen := nn.LeNetVariant(1, 28, 28, 10, 1.5)
	prof := buildTestProfile(t, device.Pixel2())
	dev := device.New(device.Pixel2())
	want := dev.ColdEpochTime(unseen, 3000)
	got := prof.Predict(unseen, 3000)
	if math.Abs(got-want)/want > 0.3 {
		t.Fatalf("unseen arch: predicted %.1f s, simulated %.1f s", got, want)
	}
}

func TestPredictMonotoneNonNegative(t *testing.T) {
	prof := buildTestProfile(t, device.Nexus6P())
	lenet := nn.LeNet(1, 28, 28, 10)
	prev := -1.0
	for n := 0; n <= 8000; n += 400 {
		v := prof.Predict(lenet, n)
		if v < 0 {
			t.Fatalf("negative prediction at n=%d: %v", n, v)
		}
		if v < prev {
			t.Fatalf("prediction not monotone at n=%d: %v < %v", n, v, prev)
		}
		prev = v
	}
	if prof.Predict(lenet, 0) != 0 || prof.Predict(lenet, -3) != 0 {
		t.Fatal("zero samples must predict zero time")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	prof := buildTestProfile(t, device.Mate10())
	blob, err := json.Marshal(prof)
	if err != nil {
		t.Fatal(err)
	}
	var back DeviceProfile
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	lenet := nn.LeNet(1, 28, 28, 10)
	if a, b := prof.Predict(lenet, 2345), back.Predict(lenet, 2345); math.Abs(a-b) > 1e-9 {
		t.Fatalf("prediction changed across serialization: %v vs %v", a, b)
	}
	if back.Device != "Mate10" {
		t.Fatalf("device name lost: %q", back.Device)
	}
}

func TestBuildOfflineRejectsTinySuite(t *testing.T) {
	dev := device.New(device.Nexus6())
	if _, err := BuildOffline(dev, Suite(1, 28, 28, 10)[:2], DefaultSizes); err == nil {
		t.Fatal("expected error with <3 architectures")
	}
}

func TestBuildTestbedSharesMeasurements(t *testing.T) {
	profs, err := BuildTestbed(device.Testbed(2), 1, 28, 28, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 6 {
		t.Fatalf("%d profiles", len(profs))
	}
	// Testbed 2 is 2×Nexus6, 2×Nexus6P, 1×Mate10, 1×Pixel2: identical
	// models share the same profile object.
	if profs[0] != profs[1] || profs[2] != profs[3] {
		t.Fatal("identical device models should share a profile")
	}
	if profs[0] == profs[2] {
		t.Fatal("different device models must not share a profile")
	}
}

func TestProfileOrderingMatchesDeviceSpeed(t *testing.T) {
	// Faster devices must profile faster: Pixel2 < Nexus6 on LeNet.
	lenet := nn.LeNet(1, 28, 28, 10)
	fast := buildTestProfile(t, device.Pixel2())
	slow := buildTestProfile(t, device.Nexus6P())
	if fast.Predict(lenet, 3000) >= slow.Predict(lenet, 3000) {
		t.Fatal("profile ordering contradicts device speeds")
	}
}
