// Package profile implements the paper's two-step performance profiler
// (§IV-B, Fig 4). Step 1 fits, for each calibration data size, a multiple
// linear regression of measured training time against the number of
// convolutional and dense parameters across a suite of architectures
// (Eq. 1). Step 2 takes the per-size predictions for a (possibly unseen)
// architecture and fits training time against data size, yielding the
// T_j(D) cost curves consumed by the schedulers.
package profile

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"fedsched/internal/device"
	"fedsched/internal/nn"
	"fedsched/internal/regress"
)

// Step1Fit is the Eq.-1 regression for one calibration data size:
// time = β₀ + β₁·convParams + β₂·denseParams.
type Step1Fit struct {
	DataSize int       `json:"data_size"`
	Coef     []float64 `json:"coef"` // β₀, β₁, β₂
	R2       float64   `json:"r2"`
}

// Predict evaluates the step-1 model for an architecture's parameter split.
func (f Step1Fit) Predict(convParams, denseParams int) float64 {
	return f.Coef[0] + f.Coef[1]*float64(convParams) + f.Coef[2]*float64(denseParams)
}

// DeviceProfile holds the fitted step-1 models of one device and lazily
// derives step-2 (time vs data size) lines per architecture.
type DeviceProfile struct {
	Device string     `json:"device"`
	Step1  []Step1Fit `json:"step1"`

	mu    sync.Mutex
	step2 map[string][2]float64 // arch name → (intercept, slope)
}

// DefaultSizes is the calibration grid of data sizes.
var DefaultSizes = []int{500, 1000, 2000, 3000, 4000, 6000}

// Suite returns the profiling architecture suite: scaled LeNet and VGG6
// variants plus an MLP, spanning a wide range of convolutional and dense
// parameter counts so that the step-1 regression is well conditioned the
// way the paper's "k different model architectures" are (§IV-B). All take
// inC×inH×inW input.
func Suite(inC, inH, inW, classes int) []*nn.Arch {
	return []*nn.Arch{
		nn.LeNetVariant(inC, inH, inW, classes, 0.5),
		nn.LeNetVariant(inC, inH, inW, classes, 1),
		nn.LeNetVariant(inC, inH, inW, classes, 2),
		nn.VGG6Variant(inC, inH, inW, classes, 0.5),
		nn.VGG6Variant(inC, inH, inW, classes, 1),
		nn.VGG6Variant(inC, inH, inW, classes, 1.5),
		nn.MLP(inC*inH*inW, 256, classes),
	}
}

// BuildOffline measures cold-start epoch times for every (architecture,
// size) pair on the device simulator and fits the step-1 models. This is
// the offline bootstrapping phase of §IV-B.
func BuildOffline(dev *device.Device, arches []*nn.Arch, sizes []int) (*DeviceProfile, error) {
	if len(arches) < 3 {
		return nil, fmt.Errorf("profile: need ≥3 architectures for a 3-coefficient fit, got %d", len(arches))
	}
	p := &DeviceProfile{Device: dev.Model, step2: make(map[string][2]float64)}
	for _, d := range sizes {
		x := make([][]float64, len(arches))
		y := make([]float64, len(arches))
		for i, a := range arches {
			conv, dense := a.ParamCounts()
			x[i] = []float64{float64(conv), float64(dense)}
			y[i] = dev.ColdEpochTime(a, d)
		}
		m, err := regress.Fit(x, y)
		if err != nil {
			return nil, fmt.Errorf("profile: step-1 fit for size %d: %w", d, err)
		}
		p.Step1 = append(p.Step1, Step1Fit{DataSize: d, Coef: m.Coef, R2: m.R2})
	}
	sort.Slice(p.Step1, func(i, j int) bool { return p.Step1[i].DataSize < p.Step1[j].DataSize })
	return p, nil
}

// step2Line returns (intercept, slope) of the time-vs-data-size line for
// the architecture, fitting it on first use.
func (p *DeviceProfile) step2Line(a *nn.Arch) [2]float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.step2 == nil {
		p.step2 = make(map[string][2]float64)
	}
	if line, ok := p.step2[a.Name]; ok {
		return line
	}
	conv, dense := a.ParamCounts()
	xs := make([]float64, len(p.Step1))
	ys := make([]float64, len(p.Step1))
	for i, f := range p.Step1 {
		xs[i] = float64(f.DataSize)
		ys[i] = f.Predict(conv, dense)
	}
	m, err := regress.FitSimple(xs, ys)
	if err != nil {
		// Degenerate grids cannot happen with DefaultSizes; fall back to a
		// flat line through the mean rather than failing a scheduling run.
		mean := regress.Mean(ys)
		line := [2]float64{mean, 0}
		p.step2[a.Name] = line
		return line
	}
	line := [2]float64{m.Coef[0], m.Coef[1]}
	if line[1] < 0 {
		// Property 1 requires a non-decreasing cost curve; negative slopes
		// are measurement artifacts.
		line[1] = 0
	}
	p.step2[a.Name] = line
	return line
}

// Predict returns the estimated training time (seconds) for n samples of
// the architecture on this device. Predictions are clamped at ≥0 and are
// non-decreasing in n (Property 1).
func (p *DeviceProfile) Predict(a *nn.Arch, n int) float64 {
	if n <= 0 {
		return 0
	}
	line := p.step2Line(a)
	t := line[0] + line[1]*float64(n)
	if t < 0 {
		return 0
	}
	return t
}

// MarshalJSON implements json.Marshaler (profiles persist between runs).
func (p *DeviceProfile) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Device string     `json:"device"`
		Step1  []Step1Fit `json:"step1"`
	}{p.Device, p.Step1})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *DeviceProfile) UnmarshalJSON(b []byte) error {
	var raw struct {
		Device string     `json:"device"`
		Step1  []Step1Fit `json:"step1"`
	}
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	p.Device = raw.Device
	p.Step1 = raw.Step1
	p.step2 = make(map[string][2]float64)
	return nil
}

// BuildTestbed profiles every device of a testbed with the default suite
// and sizes. The input geometry describes the dataset the devices will
// train (e.g. 1×28×28 for MNIST-class data).
func BuildTestbed(profiles []device.Profile, inC, inH, inW, classes int) ([]*DeviceProfile, error) {
	suite := Suite(inC, inH, inW, classes)
	out := make([]*DeviceProfile, len(profiles))
	// Device models with identical hardware share one measurement pass.
	cache := make(map[string]*DeviceProfile)
	for i, dp := range profiles {
		if got, ok := cache[dp.Model]; ok {
			out[i] = got
			continue
		}
		p, err := BuildOffline(device.New(dp), suite, DefaultSizes)
		if err != nil {
			return nil, err
		}
		cache[dp.Model] = p
		out[i] = p
	}
	return out, nil
}
