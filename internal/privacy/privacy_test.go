package privacy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedsched/internal/sched"
)

func TestNewReporterValidation(t *testing.T) {
	if _, err := NewReporter(0, 10); err == nil {
		t.Fatal("epsilon 0 must fail")
	}
	if _, err := NewReporter(-1, 10); err == nil {
		t.Fatal("negative epsilon must fail")
	}
	if _, err := NewReporter(1, 0); err == nil {
		t.Fatal("zero classes must fail")
	}
}

func TestHighEpsilonNearTruthful(t *testing.T) {
	r, err := NewReporter(10, 10) // e^10/(1+e^10) ≈ 0.99995
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	classes := []int{1, 4, 7}
	report := r.Randomize(classes, rng)
	want := map[int]bool{1: true, 4: true, 7: true}
	for c, b := range report {
		if b != want[c] {
			t.Fatalf("bit %d flipped at epsilon 10 (p_flip=%.2e)", c, r.FlipProbability())
		}
	}
	if set := r.EstimateSet(report); len(set) != 3 {
		t.Fatalf("estimated set %v", set)
	}
}

func TestFlipProbabilityMonotone(t *testing.T) {
	prev := 1.0
	for _, eps := range []float64{0.1, 0.5, 1, 2, 5} {
		r, _ := NewReporter(eps, 10)
		p := r.FlipProbability()
		if p >= prev {
			t.Fatalf("flip probability not decreasing in epsilon: %v at %v", p, eps)
		}
		if p <= 0 || p >= 0.5 {
			t.Fatalf("flip probability out of (0, 0.5): %v", p)
		}
		prev = p
	}
}

func TestEstimateCountUnbiased(t *testing.T) {
	r, _ := NewReporter(1, 10)
	rng := rand.New(rand.NewSource(2))
	classes := []int{0, 1, 2, 3} // |U| = 4
	sum := 0.0
	const trials = 4000
	for i := 0; i < trials; i++ {
		sum += r.EstimateCount(r.Randomize(classes, rng))
	}
	mean := sum / trials
	// Clamping biases the estimator slightly upward near the boundary;
	// at |U|=4 of 10 the estimate should still center near 4.
	if math.Abs(mean-4) > 0.5 {
		t.Fatalf("mean estimate %.2f, want ≈4", mean)
	}
}

func TestEstimateCountClamped(t *testing.T) {
	r, _ := NewReporter(1, 10)
	allFalse := make([]bool, 10)
	if got := r.EstimateCount(allFalse); got < 1 {
		t.Fatalf("estimate %v below clamp", got)
	}
	allTrue := make([]bool, 10)
	for i := range allTrue {
		allTrue[i] = true
	}
	if got := r.EstimateCount(allTrue); got > 10 {
		t.Fatalf("estimate %v above clamp", got)
	}
}

func TestRandomizeIgnoresOutOfRangeClasses(t *testing.T) {
	r, _ := NewReporter(5, 4)
	rng := rand.New(rand.NewSource(3))
	report := r.Randomize([]int{-1, 2, 99}, rng)
	if len(report) != 4 {
		t.Fatalf("report length %d", len(report))
	}
}

func TestPrivatizedSchedulingStillValid(t *testing.T) {
	// End-to-end: Fed-MinAvg fed privatized class sets must still produce
	// valid assignments for any epsilon.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eps := 0.5 + rng.Float64()*4
		r, err := NewReporter(eps, 10)
		if err != nil {
			return false
		}
		users := make([]*sched.User, 4)
		for j := range users {
			slope := 0.01 + rng.Float64()*0.05
			truth := rng.Perm(10)[:1+rng.Intn(5)]
			users[j] = &sched.User{
				Name:    "u",
				Cost:    func(n int) float64 { return slope * float64(n) },
				Classes: r.EstimateSet(r.Randomize(truth, rng)),
			}
		}
		req := &sched.Request{TotalShards: 30, ShardSize: 100, Users: users, K: 10, Alpha: 500, Beta: 2}
		asg, err := sched.FedMinAvg{}.Schedule(req, nil)
		if err != nil {
			// Legitimate only if randomization erased every class set.
			for _, u := range users {
				if len(u.Classes) > 0 {
					return false
				}
			}
			return true
		}
		return sched.Validate(req, asg) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
