// Package privacy implements locally differentially-private reporting of
// class coverage. The paper's system model (§IV-A) has the server gather
// "information of non-IID class distribution" protected as
// "differentially-private class information"; §VI-A adds that users "could
// truthfully report their accuracy cost instead of detailed U_j to reduce
// privacy leakage". This package provides the standard mechanism for that:
// randomized response over the K-bit class-membership vector, with an
// unbiased estimator for the class count |U_j| that the accuracy cost
// F_j = K/|U_j| needs.
package privacy

import (
	"fmt"
	"math"
	"math/rand"
)

// Reporter randomizes class-membership bits with ε-local differential
// privacy per bit (randomized response: keep the true bit with probability
// e^ε/(1+e^ε), flip otherwise).
type Reporter struct {
	Epsilon float64
	Classes int
	keep    float64 // probability of reporting the true bit
}

// NewReporter constructs a reporter for the given per-bit privacy budget
// and number of classes.
func NewReporter(epsilon float64, classes int) (*Reporter, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("privacy: epsilon must be positive, got %v", epsilon)
	}
	if classes <= 0 {
		return nil, fmt.Errorf("privacy: classes must be positive, got %d", classes)
	}
	e := math.Exp(epsilon)
	return &Reporter{Epsilon: epsilon, Classes: classes, keep: e / (1 + e)}, nil
}

// Randomize produces the privatized class-membership bit vector for a
// user's true class set.
func (r *Reporter) Randomize(classes []int, rng *rand.Rand) []bool {
	truth := make([]bool, r.Classes)
	for _, c := range classes {
		if c >= 0 && c < r.Classes {
			truth[c] = true
		}
	}
	out := make([]bool, r.Classes)
	for i, b := range truth {
		if rng.Float64() < r.keep {
			out[i] = b
		} else {
			out[i] = !b
		}
	}
	return out
}

// EstimateCount returns the unbiased estimate of the true class count from
// a randomized report: (observed − K(1−p)) / (2p−1), clamped to [1, K] so
// the accuracy cost K/|U_j| stays finite.
func (r *Reporter) EstimateCount(report []bool) float64 {
	observed := 0.0
	for _, b := range report {
		if b {
			observed++
		}
	}
	p := r.keep
	est := (observed - float64(r.Classes)*(1-p)) / (2*p - 1)
	return math.Min(float64(r.Classes), math.Max(1, est))
}

// EstimateSet thresholds the randomized report into a plausible class set
// (bits more likely true than false under the mechanism). With per-bit
// randomized response that is simply the reported bits; the method exists
// so callers can feed schedulers a concrete []int.
func (r *Reporter) EstimateSet(report []bool) []int {
	var out []int
	for c, b := range report {
		if b {
			out = append(out, c)
		}
	}
	return out
}

// FlipProbability returns the probability that any single bit is reported
// incorrectly — the utility cost of the privacy budget.
func (r *Reporter) FlipProbability() float64 { return 1 - r.keep }
