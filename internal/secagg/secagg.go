// Package secagg implements pairwise-mask secure aggregation in the style
// of Bonawitz et al. (ACM CCS 2017), which the paper's system model relies
// on ("we can always resort to security protocols to protect the
// intermediate gradients", §IV-A). Each pair of clients (i, j) shares a
// seed; client i adds PRG(seed) to its update and client j subtracts it,
// so individual updates are masked but the server's sum is exact.
//
// Updates are quantized to fixed-point and masked with uint64 arithmetic,
// so cancellation is bit-exact (floating-point masking would not cancel).
// This implementation models the steady-state protocol round; dropout
// recovery via Shamir shares is out of scope and masked rounds abort if a
// participant is missing (Aggregate returns an error).
package secagg

import (
	"fmt"
	"math"
)

// DefaultScale is the fixed-point quantization scale (2^24 ≈ 7 decimal
// digits of fraction), chosen so that gradient-sized values (|w| < 100)
// survive a 10⁶-client sum without overflowing int64 range.
const DefaultScale = 1 << 24

// Group is a cohort of n clients with pairwise shared seeds, plus the
// quantization scale. It is the trusted-setup output; in production the
// seeds come from a Diffie–Hellman exchange brokered by the server.
type Group struct {
	N     int
	Scale float64
	seeds [][]uint64 // seeds[i][j] for i<j
}

// NewGroup creates a cohort of n clients with seeds derived from a master
// seed. n must be ≥ 1.
func NewGroup(n int, master uint64) (*Group, error) {
	if n < 1 {
		return nil, fmt.Errorf("secagg: group size %d", n)
	}
	g := &Group{N: n, Scale: DefaultScale, seeds: make([][]uint64, n)}
	st := master
	for i := 0; i < n; i++ {
		g.seeds[i] = make([]uint64, n)
		for j := i + 1; j < n; j++ {
			st = splitmix64(st)
			g.seeds[i][j] = st
		}
	}
	return g, nil
}

// splitmix64 is the SplitMix64 PRG step — deterministic, fast, and good
// enough to model the protocol (production uses AES-CTR).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// prgStream fills out with the keystream of the given seed.
func prgStream(seed uint64, out []uint64) {
	s := seed
	for i := range out {
		s = splitmix64(s)
		out[i] = s
	}
}

// Mask quantizes client i's update and applies its pairwise masks,
// returning the masked fixed-point vector. Every client must mask a vector
// of identical length for the round to aggregate.
func (g *Group) Mask(i int, update []float64) ([]uint64, error) {
	if i < 0 || i >= g.N {
		return nil, fmt.Errorf("secagg: client %d out of range [0,%d)", i, g.N)
	}
	out := make([]uint64, len(update))
	for k, v := range update {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("secagg: non-finite update value at %d", k)
		}
		out[k] = uint64(int64(math.Round(v * g.Scale)))
	}
	stream := make([]uint64, len(update))
	for j := 0; j < g.N; j++ {
		if j == i {
			continue
		}
		lo, hi := i, j
		if lo > hi {
			lo, hi = hi, lo
		}
		prgStream(g.seeds[lo][hi], stream)
		if i < j {
			for k := range out {
				out[k] += stream[k]
			}
		} else {
			for k := range out {
				out[k] -= stream[k]
			}
		}
	}
	return out, nil
}

// Aggregate sums masked updates from ALL group members and dequantizes.
// Masks cancel pairwise, so the result equals the plain sum of updates up
// to quantization error (≤ n/(2·Scale) per coordinate). Missing or extra
// participants leave masks uncancelled, so the count is enforced.
func (g *Group) Aggregate(masked [][]uint64) ([]float64, error) {
	if len(masked) != g.N {
		return nil, fmt.Errorf("secagg: got %d masked updates, group has %d members (dropout recovery not supported)", len(masked), g.N)
	}
	if g.N == 0 {
		return nil, fmt.Errorf("secagg: empty group")
	}
	length := len(masked[0])
	sum := make([]uint64, length)
	for i, m := range masked {
		if len(m) != length {
			return nil, fmt.Errorf("secagg: update %d has length %d, want %d", i, len(m), length)
		}
		for k, v := range m {
			sum[k] += v
		}
	}
	out := make([]float64, length)
	for k, v := range sum {
		out[k] = float64(int64(v)) / g.Scale
	}
	return out, nil
}

// SumPlain is the reference insecure aggregation, for tests and for
// measuring the quantization error.
func SumPlain(updates [][]float64) []float64 {
	if len(updates) == 0 {
		return nil
	}
	out := make([]float64, len(updates[0]))
	for _, u := range updates {
		for k, v := range u {
			out[k] += v
		}
	}
	return out
}
