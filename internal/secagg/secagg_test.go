package secagg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaskedSumEqualsPlainSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, dim := 5, 200
	g, err := NewGroup(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	updates := make([][]float64, n)
	masked := make([][]uint64, n)
	for i := range updates {
		updates[i] = make([]float64, dim)
		for k := range updates[i] {
			updates[i][k] = rng.NormFloat64()
		}
		masked[i], err = g.Mask(i, updates[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := g.Aggregate(masked)
	if err != nil {
		t.Fatal(err)
	}
	want := SumPlain(updates)
	for k := range want {
		if math.Abs(got[k]-want[k]) > float64(n)/DefaultScale {
			t.Fatalf("coordinate %d: secure %v vs plain %v", k, got[k], want[k])
		}
	}
}

func TestSingleClientGroup(t *testing.T) {
	g, err := NewGroup(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	u := []float64{1.5, -2.25}
	m, err := g.Mask(0, u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Aggregate([][]uint64{m})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-1.5) > 1e-6 || math.Abs(got[1]+2.25) > 1e-6 {
		t.Fatalf("got %v", got)
	}
}

func TestMaskedUpdateHidesPlaintext(t *testing.T) {
	// A masked update must not resemble its quantized plaintext: compare
	// each coordinate; with 64-bit masks a collision is astronomically
	// unlikely.
	g, _ := NewGroup(3, 9)
	u := make([]float64, 100) // all zeros — worst case for leakage
	m, err := g.Mask(0, u)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range m {
		if v == 0 {
			zeros++
		}
	}
	if zeros > 2 {
		t.Fatalf("%d/100 masked coordinates equal plaintext zero", zeros)
	}
}

func TestDropoutAborts(t *testing.T) {
	g, _ := NewGroup(3, 11)
	u := []float64{1}
	m0, _ := g.Mask(0, u)
	m1, _ := g.Mask(1, u)
	if _, err := g.Aggregate([][]uint64{m0, m1}); err == nil {
		t.Fatal("aggregation with a missing participant must fail")
	}
}

func TestLengthMismatchRejected(t *testing.T) {
	g, _ := NewGroup(2, 13)
	m0, _ := g.Mask(0, []float64{1, 2})
	m1, _ := g.Mask(1, []float64{1})
	if _, err := g.Aggregate([][]uint64{m0, m1}); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := NewGroup(0, 1); err == nil {
		t.Fatal("empty group must fail")
	}
	g, _ := NewGroup(2, 1)
	if _, err := g.Mask(5, []float64{1}); err == nil {
		t.Fatal("out-of-range client must fail")
	}
	if _, err := g.Mask(0, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN update must fail")
	}
	if _, err := g.Mask(0, []float64{math.Inf(1)}); err == nil {
		t.Fatal("Inf update must fail")
	}
}

func TestCancellationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		dim := 1 + rng.Intn(50)
		g, err := NewGroup(n, uint64(seed)+1)
		if err != nil {
			return false
		}
		updates := make([][]float64, n)
		masked := make([][]uint64, n)
		for i := range updates {
			updates[i] = make([]float64, dim)
			for k := range updates[i] {
				updates[i][k] = (rng.Float64() - 0.5) * 20
			}
			masked[i], err = g.Mask(i, updates[i])
			if err != nil {
				return false
			}
		}
		got, err := g.Aggregate(masked)
		if err != nil {
			return false
		}
		want := SumPlain(updates)
		for k := range want {
			if math.Abs(got[k]-want[k]) > float64(n)/DefaultScale*2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMaskLeNetSized(b *testing.B) {
	g, _ := NewGroup(10, 3)
	update := make([]float64, 204803) // paper-scale LeNet parameter count
	for i := range update {
		update[i] = float64(i%97) / 97
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Mask(0, update); err != nil {
			b.Fatal(err)
		}
	}
}
