package fl

import (
	"math"
	"math/rand"
	"testing"

	"fedsched/internal/data"
	"fedsched/internal/device"
	"fedsched/internal/network"
	"fedsched/internal/nn"
)

func smallConfig(rounds int) Config {
	return Config{
		Arch:      nn.LeNetSmall(1, 16, 16, 10),
		Rounds:    rounds,
		BatchSize: 20,
		LR:        0.02,
		Momentum:  0.9,
		Seed:      1,
	}
}

func clientsFromPartition(t *testing.T, ds *data.Dataset, part data.Partition) []*Client {
	t.Helper()
	locals := part.Materialize(ds)
	devs := make([]*device.Device, len(locals))
	links := make([]network.Link, len(locals))
	for i := range links {
		links[i] = network.WiFi()
	}
	cs, err := BuildClients(devs, links, locals)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestFedAvgLearnsIID(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 42), 1200, 400)
	part := data.IIDEqual(train, 4, rand.New(rand.NewSource(1)))
	clients := clientsFromPartition(t, train, part)
	hist, err := Run(smallConfig(8), clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if hist.FinalAccuracy < 0.85 {
		t.Fatalf("FedAvg accuracy %.3f on IID SMNIST, want ≥0.85", hist.FinalAccuracy)
	}
	if len(hist.Rounds) != 8 {
		t.Fatalf("%d rounds recorded", len(hist.Rounds))
	}
	// Loss must drop substantially.
	if hist.Rounds[len(hist.Rounds)-1].TrainLoss > hist.Rounds[0].TrainLoss*0.7 {
		t.Fatalf("train loss did not drop: %v → %v",
			hist.Rounds[0].TrainLoss, hist.Rounds[len(hist.Rounds)-1].TrainLoss)
	}
}

func TestFedAvgDeterministic(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 7), 400, 200)
	mk := func() float64 {
		part := data.IIDEqual(train, 3, rand.New(rand.NewSource(2)))
		clients := clientsFromPartition(t, train, part)
		hist, err := Run(smallConfig(3), clients, test)
		if err != nil {
			t.Fatal(err)
		}
		return hist.FinalAccuracy
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("nondeterministic run: %v vs %v", a, b)
	}
}

func TestFedAvgMatchesCentralizedOnIID(t *testing.T) {
	// Fig 2's reference lines: distributed IID training should land near
	// the centralized result.
	train, test := data.TrainTest(data.SMNISTConfig(0, 9), 1500, 500)
	cfg := smallConfig(8)
	central, err := Centralized(cfg, train, test)
	if err != nil {
		t.Fatal(err)
	}
	part := data.IIDEqual(train, 5, rand.New(rand.NewSource(3)))
	clients := clientsFromPartition(t, train, part)
	hist, err := Run(cfg, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if hist.FinalAccuracy < central-0.08 {
		t.Fatalf("federated %.3f much worse than centralized %.3f", hist.FinalAccuracy, central)
	}
}

func TestSkipsEmptyClients(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 5), 600, 200)
	part := data.IIDEqual(train, 3, rand.New(rand.NewSource(1)))
	locals := part.Materialize(train)
	locals = append(locals, nil) // a fourth client with no data
	devs := make([]*device.Device, 4)
	links := make([]network.Link, 4)
	for i := range links {
		links[i] = network.WiFi()
	}
	clients, err := BuildClients(devs, links, locals)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Run(smallConfig(2), clients, test)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hist.Rounds {
		if len(r.Clients) != 3 {
			t.Fatalf("round had %d participants, want 3", len(r.Clients))
		}
	}
}

func TestRunInputValidation(t *testing.T) {
	if _, err := Run(Config{}, nil, nil); err == nil {
		t.Fatal("expected error without arch/clients")
	}
	cfg := smallConfig(1)
	if _, err := Run(cfg, nil, nil); err == nil {
		t.Fatal("expected error without clients")
	}
	c := NewClient(0, "empty", nil, network.WiFi(), nil)
	if _, err := Run(cfg, []*Client{c}, nil); err == nil {
		t.Fatal("expected error when no client holds data")
	}
}

func TestTimeSimulationWiredIn(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 3), 300, 100)
	part := data.IIDEqual(train, 2, rand.New(rand.NewSource(1)))
	locals := part.Materialize(train)
	devs := []*device.Device{device.New(device.Pixel2()), device.New(device.Nexus6P())}
	links := []network.Link{network.WiFi(), network.LTE()}
	clients, err := BuildClients(devs, links, locals)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Run(smallConfig(2), clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if hist.TotalSeconds <= 0 {
		t.Fatal("no simulated time recorded")
	}
	if hist.TotalEnergyJ <= 0 {
		t.Fatal("no energy recorded")
	}
	for _, r := range hist.Rounds {
		if r.Makespan <= 0 {
			t.Fatal("round without makespan")
		}
		for _, cr := range r.Clients {
			if cr.ComputeS <= 0 || cr.CommS <= 0 {
				t.Fatalf("client round missing time: %+v", cr)
			}
			if span := cr.ComputeS + cr.CommS; span > r.Makespan+1e-9 {
				t.Fatal("makespan smaller than a participant's span")
			}
		}
	}
}

func TestEvalEvery(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 4), 300, 100)
	part := data.IIDEqual(train, 2, rand.New(rand.NewSource(1)))
	clients := clientsFromPartition(t, train, part)
	cfg := smallConfig(4)
	cfg.EvalEvery = 2
	hist, err := Run(cfg, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	// Rounds 2 and 4 evaluated; rounds 1 and 3 not (-1 sentinel).
	if hist.Rounds[0].Accuracy != -1 || hist.Rounds[2].Accuracy != -1 {
		t.Fatal("unexpected evaluation on off rounds")
	}
	if hist.Rounds[1].Accuracy < 0 || hist.Rounds[3].Accuracy < 0 {
		t.Fatal("missing evaluation on scheduled rounds")
	}
}

func TestNonIIDWorseThanIID(t *testing.T) {
	// The core motivation (Fig 3a): restricting each user to 2 classes
	// must hurt accuracy relative to IID on the harder dataset.
	train, test := data.TrainTest(data.SCIFARConfig(0, 21), 1500, 500)
	cfg := Config{
		Arch: nn.LeNetSmall(3, 16, 16, 10), Rounds: 10, BatchSize: 20,
		LR: 0.02, Momentum: 0.9, Seed: 5,
	}
	iidPart := data.IIDEqual(train, 5, rand.New(rand.NewSource(11)))
	iidClients := clientsFromPartition(t, train, iidPart)
	iidHist, err := Run(cfg, iidClients, test)
	if err != nil {
		t.Fatal(err)
	}
	nonPart := data.NClass(train, data.NClassConfig{Users: 5, ClassesPerUser: 2}, rand.New(rand.NewSource(11)))
	nonClients := clientsFromPartition(t, train, nonPart)
	nonHist, err := Run(cfg, nonClients, test)
	if err != nil {
		t.Fatal(err)
	}
	if nonHist.FinalAccuracy >= iidHist.FinalAccuracy {
		t.Fatalf("2-class non-IID (%.3f) not worse than IID (%.3f)",
			nonHist.FinalAccuracy, iidHist.FinalAccuracy)
	}
}

func TestEvaluateBatching(t *testing.T) {
	_, test := data.TrainTest(data.SMNISTConfig(0, 2), 10, 100)
	rng := rand.New(rand.NewSource(1))
	net := nn.LeNetSmall(1, 16, 16, 10).Build(rng)
	a := Evaluate(net, test, 7) // odd batch size exercises the tail
	b := Evaluate(net, test, 1000)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("accuracy depends on eval batch size: %v vs %v", a, b)
	}
}

func TestBuildClientsValidation(t *testing.T) {
	if _, err := BuildClients(make([]*device.Device, 2), make([]network.Link, 1), make([]*data.Dataset, 2)); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestSimulateRounds(t *testing.T) {
	arch := nn.LeNet(1, 28, 28, 10)
	devs := []*device.Device{device.New(device.Pixel2()), device.New(device.Nexus6())}
	links := []network.Link{network.WiFi(), network.WiFi()}
	spans, err := SimulateRounds(arch, devs, links, []int{2000, 1000}, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("%d spans", len(spans))
	}
	for _, s := range spans {
		if s <= 0 {
			t.Fatal("non-positive makespan")
		}
	}
	// Zero samples for everyone → error-free zero spans.
	spans, err = SimulateRounds(arch, devs, links, []int{0, 0}, 20, 1)
	if err != nil || spans[0] != 0 {
		t.Fatalf("zero work: spans=%v err=%v", spans, err)
	}
	if _, err := SimulateRounds(arch, devs, links[:1], []int{1, 2}, 20, 1); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestCentralizedLearns(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 6), 800, 300)
	acc, err := Centralized(smallConfig(6), train, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("centralized accuracy %.3f, want ≥0.85", acc)
	}
}
