package fl

import (
	"math"
	"math/rand"
	"testing"

	"fedsched/internal/data"
)

func TestSecureAggMatchesPlaintext(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 55), 600, 200)
	run := func(secure bool) *History {
		part := data.IIDEqual(train, 3, rand.New(rand.NewSource(1)))
		clients := clientsFromPartition(t, train, part)
		cfg := smallConfig(3)
		cfg.SecureAgg = secure
		hist, err := Run(cfg, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	plain := run(false)
	secure := run(true)
	// The protocols differ only by fixed-point quantization (~2⁻²⁴ per
	// weight per round), far below what can move test accuracy.
	if math.Abs(plain.FinalAccuracy-secure.FinalAccuracy) > 0.02 {
		t.Fatalf("secure aggregation diverged: plain %.4f vs secure %.4f",
			plain.FinalAccuracy, secure.FinalAccuracy)
	}
	for r := range plain.Rounds {
		if math.Abs(plain.Rounds[r].TrainLoss-secure.Rounds[r].TrainLoss) > 0.05 {
			t.Fatalf("round %d loss diverged: %.4f vs %.4f",
				r, plain.Rounds[r].TrainLoss, secure.Rounds[r].TrainLoss)
		}
	}
}

func TestSecureAggSingleParticipant(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 56), 200, 100)
	part := data.IIDEqual(train, 1, rand.New(rand.NewSource(1)))
	clients := clientsFromPartition(t, train, part)
	cfg := smallConfig(2)
	cfg.SecureAgg = true
	hist, err := Run(cfg, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if hist.FinalAccuracy <= 0.2 {
		t.Fatalf("single-participant secure run accuracy %.3f", hist.FinalAccuracy)
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	train, _ := data.TrainTest(data.SMNISTConfig(0, 57), 50, 10)
	_ = train
	cfg := smallConfig(1)
	rng := rand.New(rand.NewSource(9))
	net := cfg.Arch.Build(rng)
	ws := net.GetWeights()
	flat := flattenWeights(ws, 2.0, nil)
	back := net.GetWeights()
	unflattenInto(back, flat, 0.5)
	for i := range ws {
		for k, v := range ws[i].Data() {
			if math.Abs(back[i].Data()[k]-v) > 1e-12 {
				t.Fatalf("tensor %d index %d: %v vs %v", i, k, back[i].Data()[k], v)
			}
		}
	}
	// Reusing the scratch buffer must not reallocate.
	flat2 := flattenWeights(ws, 1, flat)
	if &flat2[0] != &flat[0] {
		t.Fatal("scratch buffer not reused")
	}
}
