package fl

import (
	"fmt"

	"fedsched/internal/sample"
	"fedsched/internal/trace"
)

// checkSampler validates a Config.Sampler against the data-holding client
// count (nil samplers are valid: everyone participates).
func checkSampler(s sample.Sampler, active int) error {
	if s == nil {
		return nil
	}
	if got := s.Population(); got != active {
		return fmt.Errorf("fl: sampler over %d clients, run has %d with data", got, active)
	}
	if k := s.CohortSize(); k <= 0 {
		return fmt.Errorf("fl: sampler cohort size %d, want > 0", k)
	}
	return nil
}

// samplerScratch allocates the per-run cohort scratch: the identity
// cohort used when no sampler is set, the sampler's reusable index
// buffer, and (when tracing with a sampler) the slice that re-aligns the
// per-client rings with the cohort each round.
func samplerScratch(s sample.Sampler, active int, tracing bool) (selIdent, selBuf []int, recsSel []*trace.Recorder) {
	selIdent = make([]int, active)
	for i := range selIdent {
		selIdent[i] = i
	}
	if s != nil {
		selBuf = make([]int, s.CohortSize())
		if tracing {
			recsSel = make([]*trace.Recorder, s.CohortSize())
		}
	}
	return selIdent, selBuf, recsSel
}
