package fl

import (
	"fmt"
	"math/rand"

	"fedsched/internal/data"
	"fedsched/internal/fault"
	"fedsched/internal/nn"
	"fedsched/internal/sample"
)

// Topology selects the gossip communication pattern.
type Topology int

const (
	// Ring pairs each client with its successor, alternating even/odd
	// offsets per round so information flows both ways.
	Ring Topology = iota
	// RandomPairs draws a fresh random perfect matching each round.
	RandomPairs
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case Ring:
		return "ring"
	case RandomPairs:
		return "random-pairs"
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// GossipConfig drives a decentralized run: there is no parameter server;
// each round clients train locally and then average weights pairwise with
// a peer (decentralized parallel SGD in the style of Lian et al. [8],
// which the paper's system model says the framework is amenable to,
// §IV-A).
type GossipConfig struct {
	Config
	Topology Topology
}

// GossipHistory summarizes a decentralized run.
type GossipHistory struct {
	Rounds       int
	MeanAccuracy float64   // mean over client models
	BestAccuracy float64   // best single client model
	Disagreement float64   // mean max |w_i − w_j| over weights, final round
	PerClient    []float64 // final per-client accuracy
	TotalSeconds float64   // Σ round makespans (compute + peer exchange)
}

// RunGossip executes decentralized training. test may be nil (accuracy
// fields stay zero).
//
// Injected faults (Config.Faults): a fatally-faulted client neither
// trains nor exchanges that round (only its wasted time/energy is
// simulated), and a client with a corrupted exchange trains locally but
// is excluded from the round's pairings — its peers reject the garbage
// model. Faulted clients do not extend the round makespan.
//
// fedlint:deterministic
// fedlint:trace KindClientRound,KindRoundSummary,KindFault
func RunGossip(cfg GossipConfig, clients []*Client, test *data.Dataset) (*GossipHistory, error) {
	cfg.Config = cfg.Config.withDefaults()
	if cfg.Arch == nil {
		return nil, fmt.Errorf("fl: no architecture")
	}
	if err := cfg.Faults.Check(); err != nil {
		return nil, fmt.Errorf("fl: %w", err)
	}
	var active []*Client
	for _, c := range clients {
		if c.Local != nil && c.Local.Len() > 0 {
			active = append(active, c)
		}
	}
	if len(active) < 2 {
		return nil, fmt.Errorf("fl: gossip needs ≥2 clients with data, have %d", len(active))
	}
	if err := checkSampler(cfg.Sampler, len(active)); err != nil {
		return nil, err
	}

	rootRNG := rand.New(rand.NewSource(cfg.Seed))
	init := cfg.Arch.Build(rootRNG).GetWeights()
	for _, c := range active {
		c.net = nn.NewTrainer(cfg.Precision, cfg.Arch, rootRNG, cfg.LR, cfg.Momentum)
		c.net.SetWeights(init)
		c.rng = rand.New(rand.NewSource(cfg.Seed + int64(c.ID)*7919 + 1))
	}

	hist := &GossipHistory{Rounds: cfg.Rounds}
	pairRNG := rand.New(rand.NewSource(cfg.Seed + 13))
	modelBytes := cfg.Arch.SizeBytes()
	spans := make([]float64, len(active))
	crs := make([]ClientRound, len(active))
	pairable := make([]int, 0, len(active))
	clientTrace := attachClientTracers(cfg.Trace, active)
	selIdent, selBuf, recsSel := samplerScratch(cfg.Sampler, len(active), clientTrace != nil)
	rep, _ := cfg.Sampler.(sample.FailureReporter)

	for round := 0; round < cfg.Rounds; round++ {
		if cfg.Cancel != nil && cfg.Cancel() {
			hist.Rounds = round
			return hist, fmt.Errorf("fl: gossip stopped before round %d: %w", round, ErrCancelled)
		}
		sel := selIdent
		if cfg.Sampler != nil {
			sel = cfg.Sampler.Cohort(round, selBuf)
		}
		if len(sel) < 2 {
			// Gossip needs a pair; a round with fewer eligible clients
			// idles (no training, no exchange), recorded as empty.
			emitRoundTrace(cfg.Trace, nil, RoundStats{Round: round, Accuracy: -1, TrainLoss: -1}, -1)
			continue
		}
		roundRecs := clientTrace
		if recsSel != nil {
			for si, i := range sel {
				recsSel[si] = clientTrace[i]
			}
			roundRecs = recsSel[:len(sel)]
		}

		// Local epochs are independent (per-client model, RNG, device),
		// so they fan out across the worker pool; everything that couples
		// clients — makespan, idling, pairwise averaging — runs after the
		// join in deterministic order.
		forEach(workerCount(cfg.Workers, len(sel)), len(sel), func(si int) {
			c := active[sel[si]]
			f := cfg.Faults.Fault(round, c.ID)
			link := c.Link.Degraded(f.Slow)
			spans[si] = 0
			if f.Kind == fault.Crash || f.Kind == fault.Battery || f.Kind == fault.LinkFlap {
				// Fatal fault: no real gradient work (trainer and RNG
				// untouched — the client keeps its pre-round model), only
				// the simulated cost of the doomed attempt.
				n := c.Local.Len()
				crs[si] = ClientRound{ClientID: c.ID, Samples: n, TrainLoss: -1, Fault: f.Kind}
				if c.Device != nil {
					e0 := c.Device.EnergyJ
					th0 := c.Device.Throttles
					if f.Kind == fault.LinkFlap {
						comp, _ := c.Device.TrainSamples(cfg.Arch, n, cfg.BatchSize)
						crs[si].ComputeS = comp
						crs[si].CommS = f.Point * link.UploadTime(modelBytes)
					} else {
						comp, _ := c.Device.TrainSamples(cfg.Arch, int(f.Point*float64(n)), cfg.BatchSize)
						crs[si].ComputeS = comp
						if f.Kind == fault.Battery {
							c.Device.DrainBattery()
						}
					}
					spans[si] = crs[si].ComputeS + crs[si].CommS
					crs[si].EnergyJ = c.Device.EnergyJ - e0
					crs[si].Temperature = c.Device.TempC
					crs[si].Throttles = c.Device.Throttles - th0
					crs[si].BatteryFrac = c.Device.BatteryRemaining()
				}
				return
			}
			c.net.ResetOpt()
			c.Local.Shuffle(c.rng)
			n := c.Local.Len()
			lossSum, batches := 0.0, 0
			for s := 0; s < n; s += cfg.BatchSize {
				end := s + cfg.BatchSize
				if end > n {
					end = n
				}
				x, y := c.Local.Batch(s, end)
				lossSum += c.net.TrainBatch(x, y)
				c.net.Step()
				batches++
			}
			crs[si] = ClientRound{ClientID: c.ID, Samples: n, TrainLoss: lossSum / float64(batches), Fault: f.Kind}
			if c.Device != nil {
				e0 := c.Device.EnergyJ
				th0 := c.Device.Throttles
				comp, _ := c.Device.TrainSamples(cfg.Arch, n, cfg.BatchSize)
				// Peer exchange: send own model, receive the peer's.
				spans[si] = comp + link.UploadTime(modelBytes) + link.DownloadTime(modelBytes)
				crs[si].ComputeS = comp
				crs[si].CommS = spans[si] - comp
				crs[si].EnergyJ = c.Device.EnergyJ - e0
				crs[si].Temperature = c.Device.TempC
				crs[si].Throttles = c.Device.Throttles - th0
				crs[si].BatteryFrac = c.Device.BatteryRemaining()
			}
		})
		makespan := 0.0
		straggler := -1
		for si, s := range spans[:len(sel)] {
			if crs[si].Fault != fault.None {
				// A faulted client never completes its exchange, so the
				// round does not wait for it.
				continue
			}
			if s > makespan {
				makespan = s
				straggler = active[sel[si]].ID
			}
		}
		for si, i := range sel {
			if c := active[i]; c.Device != nil {
				c.Device.Idle(makespan - spans[si])
			}
		}
		hist.TotalSeconds += makespan
		emitRoundTrace(cfg.Trace, roundRecs, RoundStats{
			Round: round, Makespan: makespan, Accuracy: -1, Clients: crs[:len(sel)],
			TrainLoss: meanLoss(crs[:len(sel)]),
		}, straggler)
		if rep != nil {
			for si, i := range sel {
				if crs[si].Fault != fault.None {
					rep.ReportFailure(i, round)
				} else {
					rep.ReportSuccess(i)
				}
			}
		}

		// Only clean clients exchange: fatal victims never sent a model,
		// and corrupted senders are rejected by their peers. With no fault
		// plan this is the whole cohort, so pairRNG draws exactly as
		// before.
		pairable = pairable[:0]
		for si := range sel {
			if crs[si].Fault == fault.None {
				pairable = append(pairable, si)
			}
		}

		// Pairwise averaging in float64 boundary space: both partners'
		// weights widen into a's boundary tensors, average there, and the
		// result writes back through SetWeights on both sides (a's boundary
		// tensors are only guaranteed to be live views on the f64 path).
		// Pairings draw over the cohort, so the peer graph follows the
		// sampler.
		for _, pair := range pairings(len(pairable), round, cfg.Topology, pairRNG) {
			a, b := active[sel[pairable[pair[0]]]], active[sel[pairable[pair[1]]]]
			wa := a.net.Weights()
			accumulateWeighted(wa, b.net.Weights(), 1)
			scaleWeights(wa, 0.5)
			a.net.SetWeights(wa)
			b.net.SetWeights(wa)
		}
	}

	hist.Disagreement = weightDisagreement(active)
	if test != nil {
		hist.PerClient = make([]float64, len(active))
		for i, c := range active {
			acc := Evaluate(c.net.EvalNetwork(), test, 256)
			hist.PerClient[i] = acc
			hist.MeanAccuracy += acc
			if acc > hist.BestAccuracy {
				hist.BestAccuracy = acc
			}
		}
		hist.MeanAccuracy /= float64(len(active))
	}
	return hist, nil
}

// pairings returns index pairs for the round under the chosen topology.
// With an odd client count one client sits the round out.
func pairings(n, round int, topo Topology, rng *rand.Rand) [][2]int {
	var out [][2]int
	switch topo {
	case RandomPairs:
		perm := rng.Perm(n)
		for i := 0; i+1 < n; i += 2 {
			out = append(out, [2]int{perm[i], perm[i+1]})
		}
	default: // Ring
		// Alternate the pairing offset so averages propagate around the
		// ring: round 0 pairs (0,1)(2,3)…, round 1 pairs (1,2)(3,4)…
		start := round % 2
		for i := start; i+1 < n; i += 2 {
			out = append(out, [2]int{i, i + 1})
		}
		if start == 1 && n%2 == 0 {
			out = append(out, [2]int{n - 1, 0}) // close the ring
		}
	}
	return out
}

// weightDisagreement reports the largest per-weight spread across client
// models (0 when fully converged to consensus).
func weightDisagreement(clients []*Client) float64 {
	if len(clients) < 2 {
		return 0
	}
	ref := clients[0].net.GetWeights()
	worst := 0.0
	for _, c := range clients[1:] {
		w := c.net.GetWeights()
		for k := range ref {
			diff := ref[k].Clone()
			diff.AddScaled(-1, w[k])
			if m := diff.MaxAbs(); m > worst {
				worst = m
			}
		}
	}
	return worst
}
