package fl

import (
	"bytes"
	"testing"

	"fedsched/internal/data"
	"fedsched/internal/trace"
)

// traceJSONL renders a recorder's events to canonical JSONL bytes.
func traceJSONL(t *testing.T, rec *trace.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func countKind(events []trace.Event, kind trace.Kind) int {
	n := 0
	for _, e := range events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TestRunTraceWorkersByteIdentical extends the engine's bit-identity
// guarantee to the trace: the JSONL bytes of a fixed-seed run must be
// equal for Workers 1 and 8 — per-client rings are merged post-join in
// client order, never in completion order.
func TestRunTraceWorkersByteIdentical(t *testing.T) {
	forceLanes(t, 8)
	train, test := data.TrainTest(data.SMNISTConfig(0, 68), 400, 150)

	run := func(workers int) *trace.Recorder {
		rec := trace.New(0)
		cfg := smallConfig(3)
		cfg.Workers = workers
		cfg.EvalEvery = 1
		cfg.Trace = rec
		if _, err := Run(cfg, parallelClients(t, train, 4, true), test); err != nil {
			t.Fatal(err)
		}
		return rec
	}

	base := run(1)
	events := base.Events()
	if got := countKind(events, trace.KindRoundSummary); got != 3 {
		t.Fatalf("expected 3 round-summary events, got %d", got)
	}
	if got := countKind(events, trace.KindClientRound); got != 12 {
		t.Fatalf("expected 12 client-round events (4 clients × 3 rounds), got %d", got)
	}
	want := traceJSONL(t, base)
	for _, workers := range []int{4, 8} {
		if got := traceJSONL(t, run(workers)); !bytes.Equal(want, got) {
			t.Fatalf("trace bytes differ between Workers=1 and Workers=%d", workers)
		}
	}
}

// TestAsyncTraceWorkersByteIdentical: the futures engine's merge events
// fire in virtual-time order on the event-loop goroutine, so the async
// trace is byte-stable across worker counts too.
func TestAsyncTraceWorkersByteIdentical(t *testing.T) {
	forceLanes(t, 4)
	train, test := data.TrainTest(data.SMNISTConfig(0, 69), 400, 100)

	run := func(workers int) *trace.Recorder {
		rec := trace.New(0)
		cfg := AsyncConfig{Config: smallConfig(0), MaxUpdates: 12, MixRate: 0.4, StalenessPower: 0.5}
		cfg.Workers = workers
		cfg.Trace = rec
		if _, err := RunAsync(cfg, parallelClients(t, train, 3, true), test); err != nil {
			t.Fatal(err)
		}
		return rec
	}

	base := run(1)
	if got := countKind(base.Events(), trace.KindMerge); got != 12 {
		t.Fatalf("expected 12 merge events, got %d", got)
	}
	if countKind(base.Events(), trace.KindSimStep) == 0 {
		t.Fatal("expected sim-step events from the futures engine")
	}
	if !bytes.Equal(traceJSONL(t, base), traceJSONL(t, run(4))) {
		t.Fatal("async trace bytes differ between Workers=1 and Workers=4")
	}
}

// TestGossipTraceWorkersByteIdentical: local epochs fan out but the trace
// is emitted after the join, in client order.
func TestGossipTraceWorkersByteIdentical(t *testing.T) {
	forceLanes(t, 4)
	train, test := data.TrainTest(data.SMNISTConfig(0, 70), 400, 100)

	run := func(workers int) *trace.Recorder {
		rec := trace.New(0)
		cfg := GossipConfig{Config: smallConfig(2), Topology: Ring}
		cfg.Workers = workers
		cfg.Trace = rec
		if _, err := RunGossip(cfg, parallelClients(t, train, 4, true), test); err != nil {
			t.Fatal(err)
		}
		return rec
	}

	base := run(1)
	if got := countKind(base.Events(), trace.KindRoundSummary); got != 2 {
		t.Fatalf("expected 2 round-summary events, got %d", got)
	}
	if !bytes.Equal(traceJSONL(t, base), traceJSONL(t, run(4))) {
		t.Fatal("gossip trace bytes differ between Workers=1 and Workers=4")
	}
}

// TestRunTraceDeadlineDrops: a dropped straggler still gets its
// client-round event, flagged, and the round summary counts it.
func TestRunTraceDeadlineDrops(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 71), 300, 100)

	// Probe warm spans to set a deadline between the two devices.
	probeClients := parallelClients(t, train, 2, true)
	probe, err := Run(smallConfig(2), probeClients, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := probe.Rounds[len(probe.Rounds)-1]
	spans := make([]float64, len(last.Clients))
	for i, cr := range last.Clients {
		spans[i] = cr.ComputeS + cr.CommS
	}
	if len(spans) != 2 || spans[0] == spans[1] {
		t.Fatalf("precondition: need two distinct spans, got %v", spans)
	}
	deadline := (spans[0] + spans[1]) / 2

	rec := trace.New(0)
	cfg := smallConfig(2)
	cfg.DeadlineSeconds = deadline
	cfg.Trace = rec
	if _, err := Run(cfg, parallelClients(t, train, 2, true), test); err != nil {
		t.Fatal(err)
	}

	droppedEvents, summaryDropped := 0, 0
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindClientRound:
			if e.Flag == trace.ClientDropped {
				droppedEvents++
			}
		case trace.KindRoundSummary:
			summaryDropped += e.Flag
		}
	}
	if droppedEvents == 0 {
		t.Fatal("deadline dropped nobody — test is vacuous")
	}
	if droppedEvents != summaryDropped {
		t.Fatalf("client events flag %d drops, round summaries count %d", droppedEvents, summaryDropped)
	}
}
