package fl

import (
	"math/rand"
	"testing"

	"fedsched/internal/data"
	"fedsched/internal/network"
)

func TestGossipLearnsOnIID(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 71), 800, 300)
	clients := asyncClients(t, train, 4, true)
	hist, err := RunGossip(GossipConfig{Config: smallConfig(8), Topology: Ring}, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if hist.MeanAccuracy < 0.7 {
		t.Fatalf("gossip mean accuracy %.3f too low", hist.MeanAccuracy)
	}
	if hist.BestAccuracy < hist.MeanAccuracy {
		t.Fatal("best accuracy below mean")
	}
	if hist.TotalSeconds <= 0 {
		t.Fatal("no simulated time")
	}
	if len(hist.PerClient) != 4 {
		t.Fatalf("%d per-client accuracies", len(hist.PerClient))
	}
}

func TestGossipRandomPairsTopology(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 72), 600, 200)
	clients := asyncClients(t, train, 4, false)
	hist, err := RunGossip(GossipConfig{Config: smallConfig(6), Topology: RandomPairs}, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if hist.MeanAccuracy < 0.6 {
		t.Fatalf("random-pairs gossip accuracy %.3f", hist.MeanAccuracy)
	}
}

func TestGossipDisagreementShrinksWithRounds(t *testing.T) {
	train, _ := data.TrainTest(data.SMNISTConfig(0, 73), 600, 10)
	short, err := RunGossip(GossipConfig{Config: smallConfig(1), Topology: Ring},
		asyncClients(t, train, 4, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	long, err := RunGossip(GossipConfig{Config: smallConfig(10), Topology: Ring},
		asyncClients(t, train, 4, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	// After one round half the ring never mixed; after many rounds the
	// models should be much closer to consensus relative to short runs.
	if long.Disagreement >= short.Disagreement {
		t.Fatalf("disagreement did not shrink: 1 round %.4f vs 10 rounds %.4f",
			short.Disagreement, long.Disagreement)
	}
}

func TestGossipNeedsTwoClients(t *testing.T) {
	train, _ := data.TrainTest(data.SMNISTConfig(0, 74), 100, 10)
	c := NewClient(0, "solo", nil, network.WiFi(), train)
	if _, err := RunGossip(GossipConfig{Config: smallConfig(1)}, []*Client{c}, nil); err == nil {
		t.Fatal("expected error with one client")
	}
	if _, err := RunGossip(GossipConfig{}, nil, nil); err == nil {
		t.Fatal("expected error without arch")
	}
}

func TestPairingsCoverage(t *testing.T) {
	// Ring with even n: every client pairs over two consecutive rounds.
	seen := map[int]bool{}
	for round := 0; round < 2; round++ {
		for _, p := range pairings(4, round, Ring, nil) {
			seen[p[0]] = true
			seen[p[1]] = true
		}
	}
	for i := 0; i < 4; i++ {
		if !seen[i] {
			t.Fatalf("client %d never paired on the ring", i)
		}
	}
	// Odd n: one client sits out, no index out of range, no duplicates.
	for _, topo := range []Topology{Ring, RandomPairs} {
		pairs := pairings(5, 0, topo, newTestRand())
		used := map[int]bool{}
		for _, p := range pairs {
			if p[0] < 0 || p[0] >= 5 || p[1] < 0 || p[1] >= 5 {
				t.Fatalf("%v: pair out of range %v", topo, p)
			}
			if used[p[0]] || used[p[1]] {
				t.Fatalf("%v: client paired twice in one round", topo)
			}
			used[p[0]], used[p[1]] = true, true
		}
	}
	if Ring.String() != "ring" || RandomPairs.String() != "random-pairs" || Topology(9).String() == "" {
		t.Fatal("Topology.String broken")
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(1)) }
