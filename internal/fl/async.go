package fl

import (
	"fmt"
	"math"
	"math/rand"

	"fedsched/internal/data"
	"fedsched/internal/nn"
	"fedsched/internal/sim"
	"fedsched/internal/tensor"
)

// AsyncConfig drives an asynchronous federated run. The paper (§II-B)
// argues for synchronous aggregation because "inconsistent gradients could
// easily lead to divergence and amortize the savings in computation time";
// this mode implements the asynchronous alternative (staleness-weighted
// server merging à la Ho et al. [11] / Zheng et al. [12]) so the trade-off
// can be measured instead of assumed.
type AsyncConfig struct {
	Config
	// MaxUpdates stops the run after this many server merges.
	MaxUpdates int
	// Duration stops the run after this much simulated time (seconds).
	// Zero means unbounded (MaxUpdates must then be set).
	Duration float64
	// MixRate is the base server mixing rate η; an update with staleness s
	// is applied with weight η/(1+s)^StalenessPower.
	MixRate float64
	// StalenessPower controls how aggressively stale updates are damped.
	StalenessPower float64
}

func (c AsyncConfig) withDefaults() AsyncConfig {
	c.Config = c.Config.withDefaults()
	if c.MixRate <= 0 {
		c.MixRate = 0.3
	}
	if c.StalenessPower < 0 {
		c.StalenessPower = 0
	}
	if c.MaxUpdates <= 0 && c.Duration <= 0 {
		c.MaxUpdates = 100
	}
	return c
}

// AsyncHistory summarizes an asynchronous run.
type AsyncHistory struct {
	Updates          int
	VirtualSeconds   float64
	FinalAccuracy    float64
	MeanStaleness    float64
	UpdatesPerClient []int
	TotalEnergyJ     float64
}

// RunAsync executes staleness-weighted asynchronous federated learning on
// the simulated testbed. Every client loops download → local epoch →
// upload; the server merges each upload immediately, so fast devices never
// wait for stragglers — at the price of stale gradients.
func RunAsync(cfg AsyncConfig, clients []*Client, test *data.Dataset) (*AsyncHistory, error) {
	cfg = cfg.withDefaults()
	if cfg.Arch == nil {
		return nil, fmt.Errorf("fl: no architecture")
	}
	active := make([]*Client, 0, len(clients))
	for _, c := range clients {
		if c.Local != nil && c.Local.Len() > 0 {
			active = append(active, c)
		}
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("fl: no client holds data")
	}

	rootRNG := rand.New(rand.NewSource(cfg.Seed))
	global := cfg.Arch.Build(rootRNG)
	globalW := global.GetWeights()
	version := 0

	for _, c := range active {
		c.net = cfg.Arch.Build(rootRNG)
		c.opt = nn.NewSGD(cfg.LR, cfg.Momentum, 0)
		c.rng = rand.New(rand.NewSource(cfg.Seed + int64(c.ID)*7919 + 1))
	}

	hist := &AsyncHistory{UpdatesPerClient: make([]int, len(clients))}
	stalenessSum := 0.0
	modelBytes := cfg.Arch.SizeBytes()
	deadline := cfg.Duration
	if deadline <= 0 {
		deadline = math.Inf(1)
	}

	var engine sim.Engine
	done := func() bool {
		return (cfg.MaxUpdates > 0 && hist.Updates >= cfg.MaxUpdates) || engine.Now() > deadline
	}

	// cycle runs one client iteration: the closure chain mirrors the
	// download → train → upload pipeline in virtual time.
	var cycle func(c *Client)
	cycle = func(c *Client) {
		if done() {
			return
		}
		versionAtPull := version
		pulled := cloneWeights(globalW)
		commDown := c.Link.DownloadTime(modelBytes)
		engine.After(commDown, func() {
			if done() {
				return
			}
			// Local epoch: real gradient descent plus simulated time.
			c.net.SetWeights(pulled)
			c.opt.Reset()
			c.Local.Shuffle(c.rng)
			n := c.Local.Len()
			for i := 0; i < n; i += cfg.BatchSize {
				end := i + cfg.BatchSize
				if end > n {
					end = n
				}
				x, y := c.Local.Batch(i, end)
				c.net.TrainBatch(x, y)
				c.opt.Step(c.net.Params())
			}
			compute := 0.0
			if c.Device != nil {
				compute, _ = c.Device.TrainSamples(cfg.Arch, n, cfg.BatchSize)
				c.Device.Idle(c.Link.UploadTime(modelBytes))
			}
			engine.After(compute+c.Link.UploadTime(modelBytes), func() {
				if done() {
					return
				}
				// Server merge with staleness damping.
				staleness := float64(version - versionAtPull)
				eta := cfg.MixRate / math.Pow(1+staleness, cfg.StalenessPower)
				w := c.net.GetWeights()
				for i := range globalW {
					globalW[i].Scale(1 - eta)
					globalW[i].AddScaled(eta, w[i])
				}
				version++
				hist.Updates++
				hist.UpdatesPerClient[clientIndex(clients, c.ID)]++
				stalenessSum += staleness
				cycle(c) // immediately start the next iteration
			})
		})
	}

	for _, c := range active {
		cycle(c)
	}
	if math.IsInf(deadline, 1) {
		// Unbounded duration: run events until MaxUpdates hits; remaining
		// callbacks see done() and no-op.
		for engine.Pending() > 0 && !done() {
			engine.Step()
		}
	} else {
		engine.RunUntil(deadline)
	}

	hist.VirtualSeconds = engine.Now()
	if hist.Updates > 0 {
		hist.MeanStaleness = stalenessSum / float64(hist.Updates)
	}
	global.SetWeights(globalW)
	if test != nil {
		hist.FinalAccuracy = Evaluate(global, test, 256)
	}
	for _, c := range active {
		if c.Device != nil {
			hist.TotalEnergyJ += c.Device.EnergyJ
		}
	}
	return hist, nil
}

func cloneWeights(ws []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ws))
	for i, w := range ws {
		out[i] = w.Clone()
	}
	return out
}
