package fl

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"fedsched/internal/data"
	"fedsched/internal/fault"
	"fedsched/internal/nn"
	"fedsched/internal/sim"
	"fedsched/internal/tensor"
	"fedsched/internal/trace"
)

// AsyncConfig drives an asynchronous federated run. The paper (§II-B)
// argues for synchronous aggregation because "inconsistent gradients could
// easily lead to divergence and amortize the savings in computation time";
// this mode implements the asynchronous alternative (staleness-weighted
// server merging à la Ho et al. [11] / Zheng et al. [12]) so the trade-off
// can be measured instead of assumed.
type AsyncConfig struct {
	Config
	// MaxUpdates stops the run after this many server merges.
	MaxUpdates int
	// Duration stops the run after this much simulated time (seconds).
	// Zero means unbounded (MaxUpdates must then be set).
	Duration float64
	// MixRate is the base server mixing rate η; an update with staleness s
	// is applied with weight η/(1+s)^StalenessPower.
	MixRate float64
	// StalenessPower controls how aggressively stale updates are damped.
	StalenessPower float64
}

func (c AsyncConfig) withDefaults() AsyncConfig {
	c.Config = c.Config.withDefaults()
	if c.MixRate <= 0 {
		c.MixRate = 0.3
	}
	if c.StalenessPower < 0 {
		c.StalenessPower = 0
	}
	if c.MaxUpdates <= 0 && c.Duration <= 0 {
		c.MaxUpdates = 100
	}
	return c
}

// AsyncHistory summarizes an asynchronous run.
type AsyncHistory struct {
	Updates          int
	VirtualSeconds   float64
	FinalAccuracy    float64
	MeanStaleness    float64
	UpdatesPerClient []int
	TotalEnergyJ     float64
}

// RunAsync executes staleness-weighted asynchronous federated learning on
// the simulated testbed. Every client loops download → local epoch →
// upload; the server merges each upload immediately, so fast devices never
// wait for stragglers — at the price of stale gradients.
//
// Real wall-clock parallelism: a client's local epoch is a pure function
// of the weights it pulled and its own RNG/optimizer state, both fixed
// the moment its cycle starts, so with Workers > 1 the gradient descent
// runs ahead on a bounded pool of background futures while the virtual
// event loop advances other clients. The loop joins each future at the
// client's merge event, which keeps every server merge in exact virtual
// time order — results are bit-identical to the sequential engine.
//
// Injected faults (Config.Faults) are drawn per (client cycle, client
// id): a fatal fault wastes the cycle's virtual time and energy without
// ever merging (the trainer and RNG are untouched, exactly as in the
// synchronous engine), and a corrupted upload is rejected at the server
// without advancing the model version. Each costs one KindFault event.
//
// fedlint:deterministic
// fedlint:trace KindMerge,KindFault
func RunAsync(cfg AsyncConfig, clients []*Client, test *data.Dataset) (*AsyncHistory, error) {
	cfg = cfg.withDefaults()
	if cfg.Arch == nil {
		return nil, fmt.Errorf("fl: no architecture")
	}
	if err := cfg.Faults.Check(); err != nil {
		return nil, fmt.Errorf("fl: %w", err)
	}
	active := make([]*Client, 0, len(clients))
	for _, c := range clients {
		if c.Local != nil && c.Local.Len() > 0 {
			active = append(active, c)
		}
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("fl: no client holds data")
	}
	if err := checkSampler(cfg.Sampler, len(active)); err != nil {
		return nil, err
	}
	if cfg.Sampler != nil {
		// Async has no synchronous rounds to re-sample at, so the cohort is
		// drawn once (round 0) and cycles for the whole run.
		sel := cfg.Sampler.Cohort(0, nil)
		if len(sel) == 0 {
			return nil, fmt.Errorf("fl: async sampler drew an empty cohort")
		}
		sub := make([]*Client, len(sel))
		for i, idx := range sel {
			sub[i] = active[idx]
		}
		active = sub
	}

	rootRNG := rand.New(rand.NewSource(cfg.Seed))
	global := cfg.Arch.Build(rootRNG)
	globalW := global.GetWeights()
	version := 0

	for _, c := range active {
		c.net = nn.NewTrainer(cfg.Precision, cfg.Arch, rootRNG, cfg.LR, cfg.Momentum)
		c.rng = rand.New(rand.NewSource(cfg.Seed + int64(c.ID)*7919 + 1))
		if cfg.Trace != nil && c.Device != nil {
			// Device work (TrainSamples/Idle) runs on the event-loop
			// goroutine only — the background futures touch nothing but
			// the network — so devices can share the run recorder.
			c.Device.Tracer = cfg.Trace
			c.Device.TraceID = c.ID
		}
	}

	hist := &AsyncHistory{UpdatesPerClient: make([]int, len(clients))}
	stalenessSum := 0.0
	modelBytes := cfg.Arch.SizeBytes()
	deadline := cfg.Duration
	if deadline <= 0 {
		deadline = math.Inf(1)
	}

	var engine sim.Engine
	engine.Tracer = cfg.Trace
	// cancelled latches the first true poll of Config.Cancel so every
	// later done() check agrees — in-flight event callbacks all no-op
	// from that moment and the run winds down at the current virtual
	// time, like hitting MaxUpdates.
	cancelled := false
	done := func() bool {
		if !cancelled && cfg.Cancel != nil && cfg.Cancel() {
			cancelled = true
		}
		return cancelled || (cfg.MaxUpdates > 0 && hist.Updates >= cfg.MaxUpdates) || engine.Now() > deadline
	}

	workers := workerCount(cfg.Workers, len(active))
	// outstanding counts in-flight training futures; it is only touched
	// from the event-loop goroutine. inflight joins every future before
	// RunAsync returns so no goroutine outlives the engine.
	outstanding := 0
	var inflight sync.WaitGroup

	// localEpoch runs one full local epoch on c starting from the pulled
	// weights — the compute-heavy, side-effect-free-outside-c part of a
	// cycle.
	localEpoch := func(c *Client, pulled []*tensor.Tensor) {
		c.net.SetWeights(pulled)
		c.net.ResetOpt()
		c.Local.Shuffle(c.rng)
		n := c.Local.Len()
		for i := 0; i < n; i += cfg.BatchSize {
			end := i + cfg.BatchSize
			if end > n {
				end = n
			}
			x, y := c.Local.Batch(i, end)
			c.net.TrainBatch(x, y)
			c.net.Step()
		}
	}

	// cycles counts each client's started iterations — the "round" key for
	// its fault draws. Touched only on the event-loop goroutine.
	cycles := make([]int, len(active))

	// cycle runs one client iteration: the closure chain mirrors the
	// download → train → upload pipeline in virtual time.
	var cycle func(ci int)
	cycle = func(ci int) {
		if done() {
			return
		}
		c := active[ci]
		f := cfg.Faults.Fault(cycles[ci], c.ID)
		fcycle := cycles[ci]
		cycles[ci]++
		link := c.Link.Degraded(f.Slow)
		if f.Kind == fault.Crash || f.Kind == fault.Battery || f.Kind == fault.LinkFlap {
			// Fatal fault: the update is lost before it can merge, so the
			// real gradient work is skipped (trainer and RNG untouched)
			// and only the wasted virtual time and energy are simulated —
			// then the client starts its next cycle, like a restarted app.
			commDown := link.DownloadTime(modelBytes)
			engine.After(commDown, func() {
				if done() {
					return
				}
				n := c.Local.Len()
				compute, energy, battery := 0.0, 0.0, 1.0
				if c.Device != nil {
					e0 := c.Device.EnergyJ
					if f.Kind == fault.LinkFlap {
						// Full epoch computed; the link dies Point of the
						// way through the upload.
						compute, _ = c.Device.TrainSamples(cfg.Arch, n, cfg.BatchSize)
					} else {
						// Crash / battery death Point of the way through
						// the shard.
						compute, _ = c.Device.TrainSamples(cfg.Arch, int(f.Point*float64(n)), cfg.BatchSize)
						if f.Kind == fault.Battery {
							c.Device.DrainBattery()
						}
					}
					energy = c.Device.EnergyJ - e0
					battery = c.Device.BatteryRemaining()
				}
				commUp := 0.0
				if f.Kind == fault.LinkFlap {
					commUp = f.Point * link.UploadTime(modelBytes)
				}
				engine.After(compute+commUp, func() {
					if done() {
						return
					}
					cfg.Trace.Emit(trace.Event{
						Kind: trace.KindFault, Round: fcycle, Client: c.ID,
						Samples: n, Flag: int(f.Kind), AtS: engine.Now(),
						ComputeS: compute, CommS: commDown + commUp,
						EnergyJ: energy, Battery: battery,
					})
					cycle(ci)
				})
			})
			return
		}
		versionAtPull := version
		pulled := cloneWeights(globalW)
		// Speculatively start the local epoch on a background future when
		// the pool has room and the lane budget allows it. The inputs are
		// frozen (pulled is a snapshot; c's state is untouched until the
		// join below), so the future computes exactly what the inline
		// path would.
		var trained chan struct{}
		if workers > 1 && outstanding < workers && tensor.TryAcquireLanes(1) == 1 {
			outstanding++
			trained = make(chan struct{})
			inflight.Add(1)
			go func() {
				defer inflight.Done()
				localEpoch(c, pulled)
				tensor.ReleaseLanes(1)
				close(trained)
			}()
		}
		commDown := link.DownloadTime(modelBytes)
		engine.After(commDown, func() {
			if trained != nil {
				<-trained // join before anything can observe c's state
				outstanding--
			}
			if done() {
				return
			}
			if trained == nil {
				// Sequential path: real gradient descent inline.
				localEpoch(c, pulled)
			}
			compute, energy, battery := 0.0, 0.0, 1.0
			if c.Device != nil {
				e0 := c.Device.EnergyJ
				compute, _ = c.Device.TrainSamples(cfg.Arch, c.Local.Len(), cfg.BatchSize)
				c.Device.Idle(link.UploadTime(modelBytes))
				energy = c.Device.EnergyJ - e0
				battery = c.Device.BatteryRemaining()
			}
			engine.After(compute+link.UploadTime(modelBytes), func() {
				if done() {
					return
				}
				if f.Kind == fault.Corrupt {
					// The upload arrived but is garbage: the server
					// rejects it without touching the model or version.
					// The client trained for real (its RNG advanced), so
					// only the merge is lost.
					cfg.Trace.Emit(trace.Event{
						Kind: trace.KindFault, Round: fcycle, Client: c.ID,
						Samples: c.Local.Len(), Flag: int(f.Kind), AtS: engine.Now(),
						ComputeS: compute, CommS: commDown + link.UploadTime(modelBytes),
						EnergyJ: energy, Battery: battery,
					})
					cycle(ci)
					return
				}
				// Server merge with staleness damping.
				staleness := float64(version - versionAtPull)
				eta := cfg.MixRate / math.Pow(1+staleness, cfg.StalenessPower)
				scaleWeights(globalW, 1-eta)
				accumulateWeighted(globalW, c.net.Weights(), eta)
				version++
				hist.Updates++
				hist.UpdatesPerClient[clientIndex(clients, c.ID)]++
				stalenessSum += staleness
				cfg.Trace.Emit(trace.Event{
					Kind: trace.KindMerge, Round: hist.Updates - 1, Client: c.ID,
					Samples: c.Local.Len(), Staleness: int(staleness), AtS: engine.Now(),
					ComputeS: compute, CommS: commDown + link.UploadTime(modelBytes),
					EnergyJ: energy, Battery: battery,
				})
				cycle(ci) // immediately start the next iteration
			})
		})
	}

	for ci := range active {
		cycle(ci)
	}
	if math.IsInf(deadline, 1) {
		// Unbounded duration: run events until MaxUpdates hits; remaining
		// callbacks see done() and no-op.
		for engine.Pending() > 0 && !done() {
			engine.Step()
		}
	} else {
		engine.RunUntil(deadline)
	}
	// Join any futures whose merge events never fired (run ended first):
	// nothing may mutate client state after we return.
	inflight.Wait()

	hist.VirtualSeconds = engine.Now()
	if hist.Updates > 0 {
		hist.MeanStaleness = stalenessSum / float64(hist.Updates)
	}
	global.SetWeights(globalW)
	if test != nil {
		hist.FinalAccuracy = Evaluate(global, test, 256)
	}
	for _, c := range active {
		if c.Device != nil {
			hist.TotalEnergyJ += c.Device.EnergyJ
		}
	}
	if cancelled {
		return hist, fmt.Errorf("fl: async run stopped after %d merges: %w", hist.Updates, ErrCancelled)
	}
	return hist, nil
}
