package fl

import (
	"errors"
	"math/rand"
	"testing"

	"fedsched/internal/data"
)

// countingCancel returns a Cancel callback that reports true from the
// stopAfter-th poll on, plus a pointer to the poll count.
func countingCancel(stopAfter int) (func() bool, *int) {
	polls := 0
	return func() bool {
		polls++
		return polls > stopAfter
	}, &polls
}

func TestRunCancelledReturnsPartialHistory(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 5), 300, 100)
	part := data.IIDEqual(train, 3, rand.New(rand.NewSource(2)))
	clients := clientsFromPartition(t, train, part)

	cfg := smallConfig(6)
	// The poll runs once before each round: allowing two polls stops the
	// run before round 2.
	cfg.Cancel, _ = countingCancel(2)
	hist, err := Run(cfg, clients, test)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if hist == nil || len(hist.Rounds) != 2 {
		t.Fatalf("want 2 completed rounds in the partial history, got %+v", hist)
	}
	if hist.Model == nil {
		t.Fatal("partial history is missing the global model")
	}
}

func TestRunCancelledMatchesUninterruptedPrefix(t *testing.T) {
	mk := func(cancelAfter int) *History {
		train, _ := data.TrainTest(data.SMNISTConfig(0, 11), 300, 100)
		part := data.IIDEqual(train, 3, rand.New(rand.NewSource(2)))
		clients := clientsFromPartition(t, train, part)
		cfg := smallConfig(4)
		cfg.EvalEvery = 1
		if cancelAfter > 0 {
			cfg.Cancel, _ = countingCancel(cancelAfter)
		}
		hist, err := Run(cfg, clients, nil)
		if cancelAfter > 0 && !errors.Is(err, ErrCancelled) {
			t.Fatalf("want ErrCancelled, got %v", err)
		}
		if cancelAfter == 0 && err != nil {
			t.Fatal(err)
		}
		return hist
	}
	full := mk(0)
	part := mk(2)
	if len(part.Rounds) != 2 {
		t.Fatalf("partial run recorded %d rounds, want 2", len(part.Rounds))
	}
	for i, r := range part.Rounds {
		if r.TrainLoss != full.Rounds[i].TrainLoss || r.Makespan != full.Rounds[i].Makespan {
			t.Fatalf("round %d of the cancelled run diverges from the uninterrupted prefix: %+v vs %+v",
				i, r, full.Rounds[i])
		}
	}
}

func TestGossipCancelled(t *testing.T) {
	train, _ := data.TrainTest(data.SMNISTConfig(0, 5), 240, 0)
	part := data.IIDEqual(train, 4, rand.New(rand.NewSource(3)))
	clients := clientsFromPartition(t, train, part)

	cfg := GossipConfig{Config: smallConfig(5)}
	cfg.Cancel, _ = countingCancel(2)
	hist, err := RunGossip(cfg, clients, nil)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if hist == nil || hist.Rounds != 2 {
		t.Fatalf("want 2 completed gossip rounds, got %+v", hist)
	}
}

func TestAsyncCancelled(t *testing.T) {
	train, _ := data.TrainTest(data.SMNISTConfig(0, 5), 240, 0)
	part := data.IIDEqual(train, 3, rand.New(rand.NewSource(4)))
	clients := clientsFromPartition(t, train, part)

	cfg := AsyncConfig{Config: smallConfig(1), MaxUpdates: 50}
	// done() is polled at every virtual event on the loop goroutine, so a
	// poll-count trigger is deterministic: the latch flips long before the
	// 50-merge budget.
	cfg.Cancel, _ = countingCancel(10)
	hist, err := RunAsync(cfg, clients, nil)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if hist == nil || hist.Updates >= 50 {
		t.Fatalf("want the run stopped short of MaxUpdates, got %+v", hist)
	}
}
