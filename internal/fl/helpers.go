package fl

import (
	"fmt"
	"math/rand"

	"fedsched/internal/data"
	"fedsched/internal/device"
	"fedsched/internal/network"
	"fedsched/internal/nn"
	"fedsched/internal/trace"
)

// Centralized trains one model on the full dataset for the given number of
// epochs — the paper's centralized-learning reference in Fig 2.
func Centralized(cfg Config, train, test *data.Dataset) (float64, error) {
	cfg = cfg.withDefaults()
	if cfg.Arch == nil {
		return 0, fmt.Errorf("fl: no architecture")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := nn.NewTrainer(cfg.Precision, cfg.Arch, rng, cfg.LR, cfg.Momentum)
	local := train.Subset(seq(train.Len())) // private copy; Run shuffles in place
	for e := 0; e < cfg.Rounds; e++ {
		local.Shuffle(rng)
		for i := 0; i < local.Len(); i += cfg.BatchSize {
			end := i + cfg.BatchSize
			if end > local.Len() {
				end = local.Len()
			}
			x, y := local.Batch(i, end)
			tr.TrainBatch(x, y)
			tr.Step()
		}
	}
	return Evaluate(tr.EvalNetwork(), test, 256), nil
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// BuildClients wires devices, links and per-user datasets into clients.
// devices[i] may be nil (no time simulation). All slices must have equal
// length.
func BuildClients(devices []*device.Device, links []network.Link, datasets []*data.Dataset) ([]*Client, error) {
	if len(devices) != len(datasets) || len(links) != len(datasets) {
		return nil, fmt.Errorf("fl: mismatched lengths: %d devices, %d links, %d datasets",
			len(devices), len(links), len(datasets))
	}
	clients := make([]*Client, len(datasets))
	for i := range datasets {
		name := fmt.Sprintf("client-%d", i)
		if devices[i] != nil {
			name = fmt.Sprintf("%s-%d", devices[i].Model, i)
		}
		clients[i] = NewClient(i, name, devices[i], links[i], datasets[i])
	}
	return clients, nil
}

// SimulateRounds computes per-round makespans for the given per-user
// sample counts without training any model: devices simulate computation
// (with persistent thermal state across rounds) and links add the model
// transfer time. This is what the computation-time experiments (Figs 5, 7)
// measure; accuracy experiments use Run instead.
func SimulateRounds(arch *nn.Arch, devices []*device.Device, links []network.Link, samples []int, batch, rounds int) ([]float64, error) {
	return SimulateRoundsTraced(arch, devices, links, samples, batch, rounds, nil)
}

// SimulateRoundsTraced is SimulateRounds with a round trace: devices emit
// their throttle transitions and each round closes with per-client
// KindClientRound events plus a KindRoundSummary (makespan, straggler).
// The loop is sequential, so devices emit straight into rec. rec may be
// nil (no trace, identical to SimulateRounds).
func SimulateRoundsTraced(arch *nn.Arch, devices []*device.Device, links []network.Link, samples []int, batch, rounds int, rec *trace.Recorder) ([]float64, error) {
	if len(devices) != len(samples) || len(links) != len(samples) {
		return nil, fmt.Errorf("fl: mismatched lengths: %d devices, %d links, %d sample counts",
			len(devices), len(links), len(samples))
	}
	var recs []*trace.Recorder
	if rec != nil {
		// Per-device rings (even though this loop is sequential) so the
		// throttle events get round-stamped on the drain, exactly like the
		// training engines.
		recs = make([]*trace.Recorder, len(devices))
		for i, dev := range devices {
			recs[i] = trace.New(clientRingCapacity)
			dev.Tracer = recs[i]
			dev.TraceID = i
		}
	}
	bytes := arch.SizeBytes()
	spans := make([]float64, 0, rounds)
	crs := make([]ClientRound, len(devices))
	for r := 0; r < rounds; r++ {
		makespan := 0.0
		straggler := -1
		times := make([]float64, len(devices))
		for i, dev := range devices {
			crs[i] = ClientRound{ClientID: i, Samples: samples[i], BatteryFrac: dev.BatteryRemaining(), Temperature: dev.TempC}
			if samples[i] <= 0 {
				continue
			}
			e0 := dev.EnergyJ
			th0 := dev.Throttles
			comp, _ := dev.TrainSamples(arch, samples[i], batch)
			t := comp + links[i].RoundTripTime(bytes)
			times[i] = t
			crs[i].ComputeS = comp
			crs[i].CommS = t - comp
			crs[i].EnergyJ = dev.EnergyJ - e0
			crs[i].Temperature = dev.TempC
			crs[i].Throttles = dev.Throttles - th0
			crs[i].BatteryFrac = dev.BatteryRemaining()
			if t > makespan {
				makespan = t
				straggler = i
			}
		}
		for i, dev := range devices {
			dev.Idle(makespan - times[i])
		}
		spans = append(spans, makespan)
		emitRoundTrace(rec, recs, RoundStats{
			Round: r, Makespan: makespan, Accuracy: -1, Clients: crs,
			TrainLoss: -1,
		}, straggler)
	}
	return spans, nil
}
