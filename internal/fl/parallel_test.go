package fl

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"fedsched/internal/data"
	"fedsched/internal/device"
	"fedsched/internal/network"
	"fedsched/internal/nn"
	"fedsched/internal/tensor"
)

// forceLanes pretends the machine has `procs` CPUs so the worker pools and
// the tensor lane semaphore genuinely spawn goroutines even on a 1-core
// test box. Restored on cleanup.
func forceLanes(t *testing.T, procs int) {
	t.Helper()
	prevProcs := runtime.GOMAXPROCS(procs)
	prevLanes := tensor.MaxLanes()
	tensor.SetMaxLanes(procs - 1)
	t.Cleanup(func() {
		tensor.SetMaxLanes(prevLanes)
		runtime.GOMAXPROCS(prevProcs)
	})
}

func eqFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// requireSameHistory asserts two synchronous runs are bit-identical:
// every per-round and per-client statistic, and every final weight.
func requireSameHistory(t *testing.T, a, b *History) {
	t.Helper()
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(a.Rounds), len(b.Rounds))
	}
	for i := range a.Rounds {
		ra, rb := a.Rounds[i], b.Rounds[i]
		if !eqFloat(ra.Makespan, rb.Makespan) || !eqFloat(ra.TrainLoss, rb.TrainLoss) ||
			!eqFloat(ra.Accuracy, rb.Accuracy) {
			t.Fatalf("round %d stats differ: %+v vs %+v", i, ra, rb)
		}
		if len(ra.Clients) != len(rb.Clients) {
			t.Fatalf("round %d participant counts differ: %d vs %d", i, len(ra.Clients), len(rb.Clients))
		}
		for j := range ra.Clients {
			if ra.Clients[j] != rb.Clients[j] {
				t.Fatalf("round %d client %d differs:\n%+v\n%+v", i, j, ra.Clients[j], rb.Clients[j])
			}
		}
	}
	if !eqFloat(a.FinalAccuracy, b.FinalAccuracy) ||
		!eqFloat(a.TotalSeconds, b.TotalSeconds) || !eqFloat(a.TotalEnergyJ, b.TotalEnergyJ) {
		t.Fatalf("summary differs: acc %v/%v time %v/%v energy %v/%v",
			a.FinalAccuracy, b.FinalAccuracy, a.TotalSeconds, b.TotalSeconds,
			a.TotalEnergyJ, b.TotalEnergyJ)
	}
	requireSameWeights(t, a.Model.GetWeights(), b.Model.GetWeights())
}

func requireSameWeights(t *testing.T, wa, wb []*tensor.Tensor) {
	t.Helper()
	if len(wa) != len(wb) {
		t.Fatalf("weight tensor counts differ: %d vs %d", len(wa), len(wb))
	}
	for k := range wa {
		da, db := wa[k].Data(), wb[k].Data()
		if len(da) != len(db) {
			t.Fatalf("tensor %d sizes differ: %d vs %d", k, len(da), len(db))
		}
		for e := range da {
			if da[e] != db[e] {
				t.Fatalf("tensor %d element %d differs: %v vs %v (bitwise determinism broken)",
					k, e, da[e], db[e])
			}
		}
	}
}

// parallelClients builds a fresh client set — fresh devices matter, since
// device thermal/energy state carries across rounds and must start equal
// for both runs under comparison.
func parallelClients(t *testing.T, train *data.Dataset, users int, withDevices bool) []*Client {
	t.Helper()
	part := data.IIDEqual(train, users, rand.New(rand.NewSource(5)))
	locals := part.Materialize(train)
	devs := make([]*device.Device, users)
	if withDevices {
		profiles := []device.Profile{device.Pixel2(), device.Nexus6(), device.Nexus6P(), device.Mate10()}
		for i := range devs {
			devs[i] = device.New(profiles[i%len(profiles)])
		}
	}
	links := make([]network.Link, users)
	for i := range links {
		links[i] = network.WiFi()
	}
	clients, err := BuildClients(devs, links, locals)
	if err != nil {
		t.Fatal(err)
	}
	return clients
}

// TestRunWorkersBitIdentical is the tentpole guarantee: Workers: 1 and
// Workers: 4 produce bit-identical histories for the same seed, in plain
// FedAvg, under secure aggregation, and under deadline dropout.
func TestRunWorkersBitIdentical(t *testing.T) {
	forceLanes(t, 4)
	train, test := data.TrainTest(data.SMNISTConfig(0, 61), 600, 200)

	variants := []struct {
		name        string
		withDevices bool
		mutate      func(*Config)
	}{
		{"plain", false, func(c *Config) {}},
		{"devices", true, func(c *Config) {}},
		{"secureagg", true, func(c *Config) { c.SecureAgg = true }},
		{"evalEvery", false, func(c *Config) { c.EvalEvery = 2 }},
		{"f32", false, func(c *Config) { c.Precision = nn.F32 }},
		{"f32-secureagg", true, func(c *Config) { c.Precision = nn.F32; c.SecureAgg = true }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			run := func(workers int) *History {
				cfg := smallConfig(3)
				cfg.Workers = workers
				v.mutate(&cfg)
				hist, err := Run(cfg, parallelClients(t, train, 4, v.withDevices), test)
				if err != nil {
					t.Fatal(err)
				}
				return hist
			}
			requireSameHistory(t, run(1), run(4))
		})
	}
}

// TestRunGEMMLanesBitIdentical extends the workers guarantee one layer
// down, into the blocked GEMM kernels: with the client worker pool held
// fixed, the number of tensor lanes the matmuls may fan out over must not
// change a single bit of the history either. (At batch 20 the LeNetSmall
// convolutions cross the kernel's parallel cutoff, so lanes > 0 genuinely
// split the output grid across goroutines.)
func TestRunGEMMLanesBitIdentical(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(prevProcs) })
	train, test := data.TrainTest(data.SMNISTConfig(0, 67), 600, 200)

	for _, prec := range []nn.Precision{nn.F64, nn.F32} {
		t.Run(string(prec), func(t *testing.T) {
			run := func(lanes int) *History {
				prev := tensor.MaxLanes()
				tensor.SetMaxLanes(lanes)
				defer tensor.SetMaxLanes(prev)
				cfg := smallConfig(3)
				cfg.Workers = 1 // serial client pool: every lane goes to the GEMMs
				cfg.Precision = prec
				hist, err := Run(cfg, parallelClients(t, train, 4, true), test)
				if err != nil {
					t.Fatal(err)
				}
				return hist
			}
			serial := run(0)
			for _, lanes := range []int{1, 3} {
				requireSameHistory(t, serial, run(lanes))
			}
		})
	}
}

// TestRunWorkersDeadlineBitIdentical covers straggler dropout: the
// deadline sits between the fast and slow device's warm spans, so one
// client is dropped every round — identically for any worker count.
func TestRunWorkersDeadlineBitIdentical(t *testing.T) {
	forceLanes(t, 4)
	train, test := data.TrainTest(data.SMNISTConfig(0, 62), 400, 150)

	newClients := func() []*Client {
		part := data.IIDEqual(train, 2, rand.New(rand.NewSource(5)))
		locals := part.Materialize(train)
		devs := []*device.Device{device.New(device.Pixel2()), device.New(device.Nexus6P())}
		links := []network.Link{network.WiFi(), network.WiFi()}
		clients, err := BuildClients(devs, links, locals)
		if err != nil {
			t.Fatal(err)
		}
		return clients
	}

	// Probe warm spans to place the deadline between the two devices.
	probe, err := Run(smallConfig(3), newClients(), nil)
	if err != nil {
		t.Fatal(err)
	}
	last := probe.Rounds[len(probe.Rounds)-1]
	fast := last.Clients[0].ComputeS + last.Clients[0].CommS
	slow := last.Clients[1].ComputeS + last.Clients[1].CommS
	if slow <= fast {
		t.Fatalf("precondition: Nexus6P (%.2f s) not slower than Pixel2 (%.2f s)", slow, fast)
	}

	run := func(workers int) *History {
		cfg := smallConfig(3)
		cfg.Workers = workers
		cfg.DeadlineSeconds = (fast + slow) / 2
		hist, err := Run(cfg, newClients(), test)
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	a, b := run(1), run(4)
	dropped := 0
	for _, r := range a.Rounds {
		for _, cr := range r.Clients {
			if cr.Dropped {
				dropped++
			}
		}
	}
	if dropped == 0 {
		t.Fatal("deadline variant dropped nobody — test is vacuous")
	}
	requireSameHistory(t, a, b)
}

// TestWorkersGuards: negative Workers degrades to strictly sequential and
// a single participant never spawns goroutines; both still equal the
// default-parallel result bitwise.
func TestWorkersGuards(t *testing.T) {
	forceLanes(t, 4)
	train, test := data.TrainTest(data.SMNISTConfig(0, 63), 300, 100)

	run := func(workers, users int) *History {
		cfg := smallConfig(2)
		cfg.Workers = workers
		hist, err := Run(cfg, parallelClients(t, train, users, false), test)
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	// Negative == sequential == default pool, bit for bit.
	requireSameHistory(t, run(-3, 3), run(1, 3))
	requireSameHistory(t, run(-3, 3), run(0, 3))
	// One participant with a huge worker request still runs (and matches
	// the sequential path — there is nothing to parallelize over).
	requireSameHistory(t, run(64, 1), run(1, 1))
}

// TestEvaluateParallelMatchesSerial pins the satellite guarantee: the
// batched evaluators return identical results whether batches run on one
// goroutine or fan out across network clones.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	_, test := data.TrainTest(data.SMNISTConfig(0, 64), 10, 230)
	net := nn.LeNetSmall(1, 16, 16, 10).Build(rand.New(rand.NewSource(3)))

	// Serial: GOMAXPROCS 1 → workerCount resolves to 1, no clones.
	forceLanes(t, 1)
	serialAcc := Evaluate(net, test, 64)
	serialConf := EvaluateConfusion(net, test, 64)

	// Parallel: 4 lanes → batches spread over clones.
	forceLanes(t, 4)
	parAcc := Evaluate(net, test, 64)
	parConf := EvaluateConfusion(net, test, 64)

	if serialAcc != parAcc {
		t.Fatalf("Evaluate differs across worker counts: %v vs %v", serialAcc, parAcc)
	}
	if serialConf.Accuracy() != parConf.Accuracy() || serialConf.MacroRecall() != parConf.MacroRecall() {
		t.Fatalf("EvaluateConfusion differs: acc %v/%v recall %v/%v",
			serialConf.Accuracy(), parConf.Accuracy(), serialConf.MacroRecall(), parConf.MacroRecall())
	}
}

// TestAsyncWorkersBitIdentical: the futures engine must keep every server
// merge in exact virtual-time order, so the whole history matches the
// sequential engine field by field.
func TestAsyncWorkersBitIdentical(t *testing.T) {
	forceLanes(t, 4)
	train, test := data.TrainTest(data.SMNISTConfig(0, 65), 400, 100)

	run := func(workers int) *AsyncHistory {
		cfg := AsyncConfig{Config: smallConfig(0), MaxUpdates: 16, MixRate: 0.4, StalenessPower: 0.5}
		cfg.Workers = workers
		hist, err := RunAsync(cfg, parallelClients(t, train, 3, true), test)
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	a, b := run(1), run(4)
	if a.Updates != b.Updates || !eqFloat(a.VirtualSeconds, b.VirtualSeconds) ||
		!eqFloat(a.FinalAccuracy, b.FinalAccuracy) || !eqFloat(a.MeanStaleness, b.MeanStaleness) ||
		!eqFloat(a.TotalEnergyJ, b.TotalEnergyJ) {
		t.Fatalf("async histories differ:\n%+v\n%+v", a, b)
	}
	for i := range a.UpdatesPerClient {
		if a.UpdatesPerClient[i] != b.UpdatesPerClient[i] {
			t.Fatalf("updates per client differ at %d: %v vs %v",
				i, a.UpdatesPerClient, b.UpdatesPerClient)
		}
	}
}

// TestGossipWorkersBitIdentical: local epochs fan out, pairing and
// averaging happen after the join — any worker count, same history.
func TestGossipWorkersBitIdentical(t *testing.T) {
	forceLanes(t, 4)
	train, test := data.TrainTest(data.SMNISTConfig(0, 66), 400, 100)

	run := func(workers int) *GossipHistory {
		cfg := GossipConfig{Config: smallConfig(3), Topology: Ring}
		cfg.Workers = workers
		hist, err := RunGossip(cfg, parallelClients(t, train, 4, true), test)
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	a, b := run(1), run(4)
	if a.Rounds != b.Rounds || !eqFloat(a.MeanAccuracy, b.MeanAccuracy) ||
		!eqFloat(a.BestAccuracy, b.BestAccuracy) || !eqFloat(a.Disagreement, b.Disagreement) ||
		!eqFloat(a.TotalSeconds, b.TotalSeconds) {
		t.Fatalf("gossip histories differ:\n%+v\n%+v", a, b)
	}
	for i := range a.PerClient {
		if a.PerClient[i] != b.PerClient[i] {
			t.Fatalf("per-client accuracy differs at %d: %v vs %v", i, a.PerClient, b.PerClient)
		}
	}
}

func TestWorkerCount(t *testing.T) {
	cases := []struct{ requested, tasks, want int }{
		{-1, 8, 1},
		{0, 8, runtime.GOMAXPROCS(0)},
		{3, 8, 3},
		{8, 3, 3},
		{5, 0, 1},
	}
	for _, c := range cases {
		if got := workerCount(c.requested, c.tasks); got != c.want {
			t.Errorf("workerCount(%d, %d) = %d, want %d", c.requested, c.tasks, got, c.want)
		}
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	forceLanes(t, 4)
	for _, workers := range []int{1, 2, 4, 9} {
		for _, n := range []int{0, 1, 5, 23} {
			hits := make([]int32, n)
			forEach(workers, n, func(i int) { hits[i]++ })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}
