package fl

import "fedsched/internal/tensor"

// accumulateWeighted adds weight·w[i] into sum[i] for every tensor — the
// FedAvg weighted-sum inner loop shared by the synchronous, asynchronous
// and gossip engines. sum and w must have matching lengths and shapes.
//
// fedlint:hotpath
// fedlint:detreduce
func accumulateWeighted(sum, w []*tensor.Tensor, weight float64) {
	for i, t := range w {
		sum[i].AddScaled(weight, t)
	}
}

// scaleWeights multiplies every tensor in ws by a.
//
// fedlint:hotpath
func scaleWeights(ws []*tensor.Tensor, a float64) {
	for _, t := range ws {
		t.Scale(a)
	}
}

// ensureWeightsLike returns dst resized and zeroed to match ws shape-for-
// shape, reusing every tensor that already fits — the aggregation-scratch
// analogue of tensor.EnsureShape. dst may be nil or alias tensors in ws'
// history; reused tensors are explicitly zeroed since EnsureShape
// preserves contents.
//
// fedlint:hotpath
func ensureWeightsLike(dst, ws []*tensor.Tensor) []*tensor.Tensor {
	if len(dst) != len(ws) {
		dst = make([]*tensor.Tensor, len(ws))
	}
	for i, w := range ws {
		t := tensor.EnsureShape(dst[i], w.Shape()...)
		if t == dst[i] {
			t.Zero()
		}
		dst[i] = t
	}
	return dst
}

// cloneWeights deep-copies a weight list.
func cloneWeights(ws []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ws))
	for i, w := range ws {
		out[i] = w.Clone()
	}
	return out
}
