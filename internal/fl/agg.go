package fl

import "fedsched/internal/tensor"

// accumulateWeighted adds weight·w[i] into sum[i] for every tensor — the
// FedAvg weighted-sum inner loop shared by the synchronous, asynchronous
// and gossip engines. sum and w must have matching lengths and shapes.
func accumulateWeighted(sum, w []*tensor.Tensor, weight float64) {
	for i, t := range w {
		sum[i].AddScaled(weight, t)
	}
}

// scaleWeights multiplies every tensor in ws by a.
func scaleWeights(ws []*tensor.Tensor, a float64) {
	for _, t := range ws {
		t.Scale(a)
	}
}

// zeroWeights clears every tensor in ws.
func zeroWeights(ws []*tensor.Tensor) {
	for _, t := range ws {
		t.Zero()
	}
}

// newWeightsLike allocates zeroed tensors with the same shapes as ws.
func newWeightsLike(ws []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ws))
	for i, w := range ws {
		out[i] = tensor.New(w.Shape()...)
	}
	return out
}

// cloneWeights deep-copies a weight list.
func cloneWeights(ws []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ws))
	for i, w := range ws {
		out[i] = w.Clone()
	}
	return out
}
