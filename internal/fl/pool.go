package fl

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fedsched/internal/nn"
	"fedsched/internal/tensor"
)

// workerCount resolves the Config.Workers knob against a task count:
// zero means one worker per logical CPU, negative values are clamped to
// strictly sequential, and the result never exceeds the number of tasks.
func workerCount(requested, tasks int) int {
	w := requested
	switch {
	case w < 0:
		w = 1
	case w == 0:
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEach runs fn(i) for every i in [0, n) on at most `workers`
// goroutines (the caller included). workers ≤ 1 — and the 1-task case —
// degrade to the plain sequential loop with no goroutine spawned and no
// synchronization. Each extra worker holds one tensor parallelism lane,
// so client-level fan-out and the matmul-level fan-out inside each
// client share a single ≈GOMAXPROCS budget: when this pool takes the
// lanes, the matmuls it encloses run single-threaded, and vice versa.
//
// fn(i) must only touch state owned by task i; result ordering is the
// caller's job (merge after forEach returns, in index order).
func forEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	extra := 0
	if workers > 1 {
		extra = tensor.TryAcquireLanes(workers - 1)
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	work := func() {
		for {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < extra; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work() // the calling goroutine is a worker too
	wg.Wait()
	tensor.ReleaseLanes(extra)
}

// forEachBatch runs fn(i, net) for every batch index in [0, n), fanning
// out across clones of net when parallelism is available. The original
// net serves the calling goroutine; each extra worker gets its own clone
// (fresh layer caches), because forward passes mutate per-layer state.
// Networks without a Clone blueprint fall back to the sequential loop.
// fn must write its result into task-indexed storage; any merge happens
// after return, in batch order.
func forEachBatch(net *nn.Network, workers, n int, fn func(i int, m *nn.Network)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	extra := 0
	var firstClone *nn.Network
	if workers > 1 {
		if firstClone = net.Clone(); firstClone != nil {
			extra = tensor.TryAcquireLanes(workers - 1)
		}
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			fn(i, net)
		}
		return
	}
	var next int64
	work := func(m *nn.Network) {
		for {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= n {
				return
			}
			fn(i, m)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < extra; w++ {
		clone := firstClone
		if w > 0 {
			clone = net.Clone()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(clone)
		}()
	}
	work(net)
	wg.Wait()
	tensor.ReleaseLanes(extra)
}
