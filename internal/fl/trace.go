package fl

import (
	"fedsched/internal/fault"
	"fedsched/internal/trace"
)

// clientRingCapacity bounds each client's private throttle ring. A round
// produces a handful of governor transitions per device (engage/release
// pairs plus rare hard trips), so 1024 is generous without being wasteful
// per client.
const clientRingCapacity = 1024

// attachClientTracers gives every active client's device a private event
// ring so throttle transitions recorded during the parallel section never
// race on the shared run recorder. It returns the rings index-aligned
// with active, or nil when tracing is off. The engine drains them after
// each round's join, in client order (emitRoundTrace), which keeps the
// merged trace bit-identical for any worker count.
func attachClientTracers(root *trace.Recorder, active []*Client) []*trace.Recorder {
	if root == nil {
		return nil
	}
	recs := make([]*trace.Recorder, len(active))
	for i, c := range active {
		if c.Device == nil {
			continue
		}
		recs[i] = trace.New(clientRingCapacity)
		c.Device.Tracer = recs[i]
		c.Device.TraceID = c.ID
	}
	return recs
}

// meanLoss is the sample-weighted mean local training loss over a
// round's clients — what engines without a server-side loss (gossip)
// report in the round summary. Faulted clients have no meaningful loss
// and are skipped.
func meanLoss(crs []ClientRound) float64 {
	sum, n := 0.0, 0
	for _, cr := range crs {
		if cr.Fault != fault.None {
			continue
		}
		sum += cr.TrainLoss * float64(cr.Samples)
		n += cr.Samples
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

// emitRoundTrace merges one finished round into the run trace: per-client
// throttle rings (drained in client order, stamped with the round), one
// KindClientRound event per participant — immediately followed by a
// KindFault event for fault victims — and the KindRoundSummary
// aggregate. stats.Clients is index-aligned with the recs slice — both
// follow the active-client order. Runs on the engine goroutine after the
// round's join; no events are emitted concurrently.
//
// fedlint:hotpath
func emitRoundTrace(root *trace.Recorder, recs []*trace.Recorder, stats RoundStats, straggler int) {
	if root == nil {
		return
	}
	samples, throttles, droppedClients := 0, 0, 0
	energy := 0.0
	for i := range stats.Clients {
		cr := &stats.Clients[i]
		if recs != nil && recs[i] != nil {
			root.DrainRound(recs[i], stats.Round)
		}
		flag := trace.ClientOK
		switch {
		case cr.Fault != fault.None:
			flag = trace.ClientFaulted
		case cr.Diverged:
			flag = trace.ClientDiverged
		case cr.Dropped:
			flag = trace.ClientDropped
			droppedClients++
		case cr.Late:
			flag = trace.ClientLate
		default:
			samples += cr.Samples
		}
		root.Emit(trace.Event{
			Kind: trace.KindClientRound, Round: stats.Round, Client: cr.ClientID,
			Samples: cr.Samples, Throttles: cr.Throttles, Flag: flag,
			ComputeS: cr.ComputeS, CommS: cr.CommS, EnergyJ: cr.EnergyJ,
			Battery: cr.BatteryFrac, TempC: cr.Temperature,
			Loss: trace.Sanitize(cr.TrainLoss),
		})
		if cr.Fault != fault.None {
			// The fault event carries what the failure cost: time and
			// energy burned before the update was lost, and the victim's
			// post-fault battery level. Flag is the fault.Kind wire value.
			root.Emit(trace.Event{
				Kind: trace.KindFault, Round: stats.Round, Client: cr.ClientID,
				Samples: cr.Samples, Flag: int(cr.Fault),
				ComputeS: cr.ComputeS, CommS: cr.CommS, EnergyJ: cr.EnergyJ,
				Battery: cr.BatteryFrac,
			})
		}
		throttles += cr.Throttles
		energy += cr.EnergyJ
	}
	root.Emit(trace.Event{
		Kind: trace.KindRoundSummary, Round: stats.Round, Client: -1,
		Samples: samples, Throttles: throttles, Straggler: straggler,
		Flag: droppedClients, MakespanS: stats.Makespan, EnergyJ: energy,
		Loss: trace.Sanitize(stats.TrainLoss), Accuracy: stats.Accuracy,
	})
}
