package fl

import (
	"math"
	"testing"

	"fedsched/internal/data"
	"fedsched/internal/device"
	"fedsched/internal/network"
)

func TestDeadlineDropsStraggler(t *testing.T) {
	// Pixel2 vs Nexus6P with equal data and a paper-scale arch: the 6P is
	// several times slower, so a deadline between their spans must drop it.
	train, test := data.TrainTest(data.SMNISTConfig(0, 91), 400, 150)
	part := data.IIDEqual(train, 2, newTestRand())
	locals := part.Materialize(train)
	devs := []*device.Device{device.New(device.Pixel2()), device.New(device.Nexus6P())}
	links := []network.Link{network.WiFi(), network.WiFi()}
	clients, err := BuildClients(devs, links, locals)
	if err != nil {
		t.Fatal(err)
	}
	// Probe WARM spans (last of 3 rounds) — the cold first round includes
	// the governor ramp, which a deadline split on round 0 would misjudge.
	probe, err := Run(smallConfig(3), clients, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := probe.Rounds[len(probe.Rounds)-1]
	fast := last.Clients[0].ComputeS + last.Clients[0].CommS
	slow := last.Clients[1].ComputeS + last.Clients[1].CommS
	if slow <= fast {
		t.Fatalf("precondition failed: 6P (%.2f s) not slower than Pixel2 (%.2f s)", slow, fast)
	}

	for i, d := range devs {
		d.Reset()
		_ = i
	}
	cfg := smallConfig(3)
	cfg.DeadlineSeconds = (fast + slow) / 2
	hist, err := Run(cfg, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hist.Rounds {
		if r.Makespan > cfg.DeadlineSeconds+1e-9 {
			t.Fatalf("round ran past deadline: %.2f > %.2f", r.Makespan, cfg.DeadlineSeconds)
		}
		dropped := 0
		for _, cr := range r.Clients {
			if cr.Dropped {
				dropped++
			}
		}
		if dropped != 1 {
			t.Fatalf("round %d dropped %d clients, want 1", r.Round, dropped)
		}
	}
	if hist.FinalAccuracy <= 0.2 {
		t.Fatalf("deadline run failed to learn: %.3f", hist.FinalAccuracy)
	}
}

func TestDeadlineAllDroppedRoundIsWasted(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 92), 200, 100)
	part := data.IIDEqual(train, 2, newTestRand())
	locals := part.Materialize(train)
	devs := []*device.Device{device.New(device.Nexus6P()), device.New(device.Nexus6P())}
	links := []network.Link{network.WiFi(), network.WiFi()}
	clients, err := BuildClients(devs, links, locals)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(2)
	cfg.DeadlineSeconds = 1e-6 // nobody can make this
	hist, err := Run(cfg, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hist.Rounds {
		if !math.IsNaN(r.TrainLoss) {
			t.Fatalf("wasted round should have NaN loss, got %v", r.TrainLoss)
		}
	}
	// The untouched initial model still gets a final evaluation.
	if hist.FinalAccuracy < 0 {
		t.Fatal("final accuracy not evaluated")
	}
}

func TestNoDeadlineUnaffected(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 93), 300, 100)
	run := func(deadline float64) float64 {
		part := data.IIDEqual(train, 2, newTestRand())
		clients := clientsFromPartition(t, train, part)
		cfg := smallConfig(2)
		cfg.DeadlineSeconds = deadline
		hist, err := Run(cfg, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		return hist.FinalAccuracy
	}
	// A huge deadline must be identical to no deadline.
	if a, b := run(0), run(1e12); a != b {
		t.Fatalf("inactive deadline changed the run: %v vs %v", a, b)
	}
}
