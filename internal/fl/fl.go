// Package fl is the synchronous federated-learning engine: a parameter
// server aggregating FedAvg updates from simulated mobile clients. Each
// round, every participant downloads the global model, trains one local
// epoch over its assigned data, and uploads its weights; the server takes
// the sample-weighted average (McMahan et al. [2]). Round wall time is the
// makespan over participants of simulated computation (device package)
// plus communication (network package); model quality comes from real
// gradient descent on the nn package.
//
// Clients within a synchronous round are independent by construction, so
// the engine trains them concurrently on a bounded worker pool
// (Config.Workers) and then aggregates in client-ID order after the
// join — a run is bit-identical for any Workers value at a fixed Seed.
package fl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fedsched/internal/data"
	"fedsched/internal/device"
	"fedsched/internal/fault"
	"fedsched/internal/metrics"
	"fedsched/internal/network"
	"fedsched/internal/nn"
	"fedsched/internal/sample"
	"fedsched/internal/tensor"
	"fedsched/internal/trace"
)

// ErrCancelled reports a run stopped early through Config.Cancel. The
// engines wrap it with the stopping round; match with errors.Is. The
// History returned alongside it holds every completed round and the
// global model as of the stop — a checkpointed run can later resume
// past the same point.
var ErrCancelled = errors.New("run cancelled")

// Client is one federated participant.
type Client struct {
	ID     int
	Name   string
	Device *device.Device // nil disables time simulation for this client
	Link   network.Link
	Local  *data.Dataset // local training data (nil or empty → skipped)

	net   nn.Trainer
	rng   *rand.Rand
	round int // rounds this client has trained (drives LR schedules)
}

// NewClient constructs a client. dev may be nil when only accuracy (not
// time) is being measured.
func NewClient(id int, name string, dev *device.Device, link network.Link, local *data.Dataset) *Client {
	return &Client{ID: id, Name: name, Device: dev, Link: link, Local: local}
}

// Config drives a federated run.
type Config struct {
	Arch      *nn.Arch
	Rounds    int
	BatchSize int
	LR        float64
	Momentum  float64
	// Seed makes the whole run deterministic (init, shuffles, dropout).
	Seed int64
	// Precision selects the element type clients train in (nn.F64, the
	// default, or nn.F32). Server-side state — the global model, the
	// FedAvg reduction, evaluation — stays float64 either way, so the
	// deterministic post-join reduction guarantees are precision-
	// independent: histories are bit-identical for any Workers value at
	// a fixed (Seed, Precision).
	Precision nn.Precision
	// Workers bounds how many clients train concurrently within a round
	// (all three engines honour it). Zero means runtime.GOMAXPROCS(0);
	// negative values clamp to 1 (strictly sequential, no goroutines);
	// the effective count never exceeds the participant count. The
	// History is bit-identical for every Workers value at a fixed Seed:
	// aggregation always happens after the round's join, in client order.
	Workers int
	// EvalEvery evaluates test accuracy every k rounds (and always on the
	// final round). Zero means final-round only.
	EvalEvery int
	// SecureAgg aggregates client updates through pairwise-mask secure
	// aggregation (internal/secagg) instead of plaintext averaging — the
	// protection the paper's system model assumes (§IV-A). The server then
	// sees only the weighted sum, never an individual update. Costs one
	// fixed-point quantization (~2⁻²⁴ per weight) per round.
	SecureAgg bool
	// DeadlineSeconds, when positive, drops any participant whose
	// compute+comm time exceeds it from that round's aggregation — the
	// hard straggler dropout of Bonawitz et al. [5] that the paper
	// criticizes for "not attempting to make best use from their data"
	// (§II-B). The round's makespan is then capped at the deadline.
	DeadlineSeconds float64
	// LRSchedule, when set, overrides LR per round (see nn.StepDecayLR,
	// nn.CosineLR).
	LRSchedule nn.LRSchedule
	// Sampler, when set, draws each round's cohort from the data-holding
	// clients: Cohort(round, …) returns indices into that list, and only
	// those clients train, aggregate and idle that round — the rest of the
	// fleet does no work at all (their devices stay untouched and their
	// personal round counters, which drive LRSchedule, do not advance).
	// Its Population() must equal the data-holding client count. Nil means
	// every client participates every round, the pre-sampling behavior.
	// Run (per-round cohorts) and RunGossip (per-round, rounds with < 2
	// eligible clients idle) honour it; RunAsync draws one cohort at run
	// start, since it has no synchronous rounds to re-sample at.
	Sampler sample.Sampler
	// Trace, when non-nil, receives the run's round-trace: per-client
	// round events (compute/comm seconds, energy, battery, temperature,
	// DVFS throttle transitions, assigned samples) and per-round
	// aggregates (makespan, straggler id, loss, accuracy). Each client
	// buffers its events in a private ring during the parallel section;
	// the engine merges them post-join in client order, so the trace is
	// bit-identical for any Workers value — same contract as the History.
	Trace *trace.Recorder
	// Faults, when non-nil, injects deterministic client faults
	// (internal/fault): crashes and battery death mid-shard, link flaps
	// and degradation, corrupted updates. Faulted updates never
	// aggregate; the time, energy and heat spent before the failure are
	// still simulated. Draws are pure hashes of (kind, round, client,
	// Faults.Seed), so faulty runs stay bit-identical for any Workers.
	Faults *fault.Plan
	// Quorum, when positive, closes each round after the first Quorum
	// surviving updates, ordered by realized round span (ties by client
	// id). Later survivors are flagged late and their updates discarded
	// — the over-selection pattern of production FL: draw
	// ⌈S·(1+margin)⌉ clients with the Sampler and set Quorum = S, so
	// stragglers and faults eat the margin instead of the round.
	// Incompatible with SecureAgg (a discarded masked share is
	// unrecoverable; see DESIGN).
	Quorum int
	// MinParticipants, when positive, is the round's participation
	// floor: a round that aggregates fewer surviving updates is recorded
	// as failed (RoundStats.Failed; the global model stands) instead of
	// aborting the run. With the floor unset, a round with zero
	// participants remains a run error (legacy behavior), except under a
	// deadline or a fault plan, where wasted rounds are expected.
	MinParticipants int
	// CheckpointEvery, when positive with CheckpointSink set, snapshots
	// the run every k completed rounds: the global model, every client's
	// round/RNG position and device state, the sampler's cooldown state
	// and the history so far. Resuming from the snapshot (Resume)
	// reproduces the uninterrupted run bit-identically — history and
	// trace — at any Workers value.
	CheckpointEvery int
	// CheckpointSink receives each snapshot; typically it serializes via
	// Checkpoint.Save. A sink error aborts the run (returning the
	// partial History).
	CheckpointSink func(*Checkpoint) error
	// Resume, when non-nil, restores a checkpointed run: the
	// configuration must match the checkpointed one (seed, rounds,
	// clients), and the run continues from Checkpoint.NextRound.
	Resume *Checkpoint
	// Cancel, when non-nil, is polled between rounds (all three round
	// engines honour it; RunAsync polls it at every virtual event).
	// When it reports true the run stops at that boundary and returns
	// the partial History alongside ErrCancelled — completed rounds are
	// never discarded, exactly like the mid-run error paths. The poll
	// runs on the engine goroutine, so the callback may read shared
	// state guarded elsewhere (an atomic flag is the intended shape);
	// it must not block.
	Cancel func() bool
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 20
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	return c
}

// ClientRound records one client's contribution to a round.
type ClientRound struct {
	ClientID    int
	Samples     int
	ComputeS    float64
	CommS       float64
	TrainLoss   float64
	EnergyJ     float64
	Temperature float64
	// Throttles counts the device's DVFS governor transitions (soft
	// engage/release, hard trip/recover) during this round's training.
	Throttles int
	// BatteryFrac is the battery fraction remaining after the round.
	BatteryFrac float64
	// Dropped marks a participant cut by the round deadline; its update
	// was discarded.
	Dropped bool
	// Diverged marks a participant whose local update contained non-finite
	// weights (exploding gradients); the server rejects such updates — the
	// fault-tolerance concern of Smith et al. [10].
	Diverged bool
	// Fault records the injected fault that hit this client this round
	// (fault.None when unaffected). Faulted updates never aggregate.
	Fault fault.Kind
	// Late marks a survivor that finished after the quorum closed
	// (Config.Quorum); its update was discarded.
	Late bool
}

// RoundStats aggregates one synchronous round.
type RoundStats struct {
	Round     int
	Makespan  float64 // max participant compute+comm seconds
	TrainLoss float64 // sample-weighted mean local loss
	Accuracy  float64 // test accuracy (NaN when not evaluated)
	// Failed marks a round that closed below the participation floor
	// (Config.MinParticipants) or with no usable updates at all: nothing
	// aggregated and the global model is unchanged.
	Failed  bool
	Clients []ClientRound
}

// History is the result of a federated run.
type History struct {
	Rounds        []RoundStats
	FinalAccuracy float64
	// Confusion is the final model's confusion matrix on the test set
	// (nil when no test set was given).
	Confusion *metrics.Confusion
	// Model is the final global model (checkpoint it with
	// Model.SaveWeights).
	Model        *nn.Network
	TotalSeconds float64 // Σ round makespans
	TotalEnergyJ float64
}

// Run executes synchronous FedAvg. test may be nil to skip evaluation.
// The history and trace are bit-identical for any Workers value at a
// fixed seed, and every round emits its per-client and summary events
// (plus one KindFault event per injected fault).
//
// When a mid-run error occurs (a failed round below the legacy no-floor
// path, a secure-aggregation dropout, a checkpoint-sink failure), the
// completed rounds are NOT discarded: the partial History — including
// the global model as of the last completed round — is returned
// alongside the error.
//
// fedlint:deterministic
// fedlint:trace KindClientRound,KindRoundSummary,KindFault
func Run(cfg Config, clients []*Client, test *data.Dataset) (*History, error) {
	cfg = cfg.withDefaults()
	if cfg.Arch == nil {
		return nil, fmt.Errorf("fl: no architecture")
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("fl: no clients")
	}
	if err := cfg.Faults.Check(); err != nil {
		return nil, fmt.Errorf("fl: %w", err)
	}
	if cfg.SecureAgg && cfg.Quorum > 0 {
		// The quorum cut discards late masked shares by design, and the
		// pairwise-mask protocol cannot recover them (see DESIGN).
		return nil, fmt.Errorf("fl: Quorum is incompatible with SecureAgg")
	}
	active := make([]*Client, 0, len(clients))
	for _, c := range clients {
		if c.Local != nil && c.Local.Len() > 0 {
			active = append(active, c)
		}
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("fl: no client holds data")
	}
	if err := checkSampler(cfg.Sampler, len(active)); err != nil {
		return nil, err
	}

	rootRNG := rand.New(rand.NewSource(cfg.Seed))
	global := cfg.Arch.Build(rootRNG)
	for _, c := range clients {
		// Geometry clone at the configured precision; weights overwritten.
		c.net = nn.NewTrainer(cfg.Precision, cfg.Arch, rootRNG, cfg.LR, cfg.Momentum)
		c.rng = rand.New(rand.NewSource(cfg.Seed + int64(c.ID)*7919 + 1))
	}

	modelBytes := cfg.Arch.SizeBytes()
	hist := &History{}
	globalW := global.GetWeights()
	crs := make([]ClientRound, len(active))
	spans := make([]float64, len(active))
	diverged := make([]bool, len(active))
	eligible := make([]int, 0, len(active))
	clientTrace := attachClientTracers(cfg.Trace, active)
	selIdent, selBuf, recsSel := samplerScratch(cfg.Sampler, len(active), clientTrace != nil)
	rep, _ := cfg.Sampler.(sample.FailureReporter)
	// sumW is the plaintext aggregation scratch, allocated once and
	// reused (zeroed) every round instead of cloning per participant.
	var sumW []*tensor.Tensor

	// finish stamps the run-final fields; it is shared by the success
	// path and the partial-History error paths so callers can always
	// checkpoint or inspect what completed.
	finish := func() *History {
		global.SetWeights(globalW)
		hist.Model = global
		for _, c := range clients {
			if c.Device != nil {
				hist.TotalEnergyJ += c.Device.EnergyJ
			}
		}
		return hist
	}

	startRound := 0
	if cfg.Resume != nil {
		next, err := resumeRun(cfg, active, global, hist)
		if err != nil {
			return nil, err
		}
		startRound = next
		globalW = global.GetWeights()
	}

	// checkpointAfter snapshots the run once `round` has fully completed
	// (history appended, devices idled), when the cadence says so.
	checkpointAfter := func(round int) error {
		if cfg.CheckpointEvery <= 0 || cfg.CheckpointSink == nil || (round+1)%cfg.CheckpointEvery != 0 {
			return nil
		}
		ck, err := buildCheckpoint(cfg, active, global, globalW, hist, round+1)
		if err != nil {
			return err
		}
		return cfg.CheckpointSink(ck)
	}

	for round := startRound; round < cfg.Rounds; round++ {
		if cfg.Cancel != nil && cfg.Cancel() {
			return finish(), fmt.Errorf("fl: run stopped before round %d: %w", round, ErrCancelled)
		}
		stats := RoundStats{Round: round}

		// The round's cohort: indices into active. Without a sampler every
		// client participates; with one, only the drawn cohort does any
		// work this round.
		sel := selIdent
		if cfg.Sampler != nil {
			sel = cfg.Sampler.Cohort(round, selBuf)
		}
		if len(sel) == 0 {
			// Nobody available (availability-window sampling at a dead
			// hour): an idle round, recorded as such.
			stats.TrainLoss = math.NaN()
			stats.Accuracy = -1
			emitRoundTrace(cfg.Trace, nil, stats, -1)
			hist.Rounds = append(hist.Rounds, stats)
			if err := checkpointAfter(round); err != nil {
				return finish(), fmt.Errorf("fl: checkpoint after round %d: %w", round, err)
			}
			continue
		}
		roundRecs := clientTrace
		if recsSel != nil {
			for si, i := range sel {
				recsSel[si] = clientTrace[i]
			}
			roundRecs = recsSel[:len(sel)]
		}

		// Local training fans out across the worker pool. Every client
		// owns its network, optimizer, RNG, local shard and simulated
		// device, so workers never share mutable state; everything
		// order-sensitive happens after the join, in cohort order. Fault
		// draws are pure hashes of (round, client id), so evaluating them
		// inside the workers costs nothing in determinism.
		forEach(workerCount(cfg.Workers, len(sel)), len(sel), func(si int) {
			i := sel[si]
			f := cfg.Faults.Fault(round, active[i].ID)
			crs[si] = active[i].trainRound(cfg, globalW, modelBytes, f)
			// A fatally-faulted client never touched its trainer, so the
			// non-finite check would read stale weights.
			diverged[si] = f.Kind == fault.None && active[i].net.HasNonFinite()
		})

		// Pass 1 — classify: faulted and diverged updates are out
		// immediately; deadline overruns drop; the rest are candidates for
		// the quorum cut.
		eligible = eligible[:0]
		for si := range sel {
			cr := &crs[si]
			if cr.Fault != fault.None {
				continue
			}
			if diverged[si] {
				cr.Diverged = true
				continue
			}
			spans[si] = cr.ComputeS + cr.CommS
			if cfg.DeadlineSeconds > 0 && spans[si] > cfg.DeadlineSeconds {
				cr.Dropped = true
				continue
			}
			eligible = append(eligible, si)
		}

		// Pass 2 — quorum: with over-selection, the round closes after the
		// first Quorum survivors ordered by realized span (ties by client
		// id — a strict total order, so the cut is deterministic). The
		// rest finished too late and are discarded. Aggregation below must
		// still run in cohort order for bit-identical float reduction, so
		// the surviving indices are re-sorted ascending.
		if cfg.Quorum > 0 && len(eligible) > cfg.Quorum {
			sort.Slice(eligible, func(a, b int) bool {
				sa, sb := eligible[a], eligible[b]
				if spans[sa] < spans[sb] {
					return true
				}
				if spans[sb] < spans[sa] {
					return false
				}
				return crs[sa].ClientID < crs[sb].ClientID
			})
			for _, si := range eligible[cfg.Quorum:] {
				crs[si].Late = true
			}
			eligible = eligible[:cfg.Quorum]
			sort.Ints(eligible)
		}

		// Pass 3 — reduce in cohort order, exactly the legacy loop with
		// extra skip cases: faulted, diverged and late updates are
		// recorded but never aggregate and (like diverged updates) do not
		// extend the makespan — the server stops waiting the moment it
		// learns the update is lost.
		var (
			total        int
			lossSum      float64
			participants []*Client
			sampleCounts []int
		)
		straggler := -1
		for si, i := range sel {
			c := active[i]
			cr := crs[si]
			stats.Clients = append(stats.Clients, cr)
			if cr.Fault != fault.None || cr.Diverged || cr.Late {
				continue
			}
			if cr.Dropped {
				if cfg.DeadlineSeconds > stats.Makespan {
					stats.Makespan = cfg.DeadlineSeconds
				}
				continue
			}
			if span := spans[si]; span > stats.Makespan {
				stats.Makespan = span
				straggler = c.ID
			}
			lossSum += cr.TrainLoss * float64(cr.Samples)
			participants = append(participants, c)
			sampleCounts = append(sampleCounts, cr.Samples)
			total += cr.Samples
		}

		// Feed outcomes back to a failure-aware sampler (cohort order, on
		// the engine goroutine — deterministic). Late survivors did finish,
		// so they count as successes for backoff purposes.
		if rep != nil {
			for si, i := range sel {
				cr := &crs[si]
				if cr.Fault != fault.None || cr.Diverged || cr.Dropped {
					rep.ReportFailure(i, round)
				} else {
					rep.ReportSuccess(i)
				}
			}
		}

		if total == 0 || (cfg.MinParticipants > 0 && len(participants) < cfg.MinParticipants) {
			if cfg.DeadlineSeconds > 0 || cfg.MinParticipants > 0 || cfg.Faults.Active() {
				// Below the participation floor (or nobody at all) in a
				// run that expects attrition: a failed round, not a run
				// error. Nothing aggregates; the global model stands.
				stats.Failed = true
				stats.TrainLoss = math.NaN()
				stats.Accuracy = -1
				emitRoundTrace(cfg.Trace, roundRecs, stats, straggler)
				hist.Rounds = append(hist.Rounds, stats)
				hist.TotalSeconds += stats.Makespan
				if err := checkpointAfter(round); err != nil {
					return finish(), fmt.Errorf("fl: checkpoint after round %d: %w", round, err)
				}
				continue
			}
			return finish(), fmt.Errorf("fl: round %d had no participants", round)
		}
		if cfg.SecureAgg {
			if len(participants) < len(sel) {
				// The pairwise masks were exchanged across the whole
				// cohort before training; a member that never delivers
				// leaves its mask shares unsummed, and this simulation has
				// no share-recovery round. Silently aggregating would
				// yield a mask-polluted model, so fail loudly instead (see
				// DESIGN).
				return finish(), fmt.Errorf(
					"fl: secure aggregation round %d lost %d of %d masked cohort members; "+
						"pairwise mask shares cannot be recovered — disable SecureAgg to tolerate dropouts",
					round, len(sel)-len(participants), len(sel))
			}
			agg, err := secureRound(global, participants, sampleCounts)
			if err != nil {
				return finish(), err
			}
			globalW = agg
		} else {
			// Weighted plaintext accumulation, straight from the live
			// client weights (no per-client clone). globalW may alias
			// sumW from the previous round — by now every reader of the
			// old global weights has finished.
			sumW = ensureWeightsLike(sumW, globalW)
			for i, c := range participants {
				accumulateWeighted(sumW, c.net.Weights(), float64(sampleCounts[i]))
			}
			scaleWeights(sumW, 1/float64(total))
			globalW = sumW
		}
		stats.TrainLoss = lossSum / float64(total)

		// Idle the devices for the rest of the round so stragglers' heat
		// and fast devices' cooling evolve realistically.
		for _, cr := range stats.Clients {
			c := clients[clientIndex(clients, cr.ClientID)]
			if c.Device != nil {
				c.Device.Idle(stats.Makespan - cr.ComputeS - cr.CommS)
			}
		}

		evalNow := test != nil && (round == cfg.Rounds-1 || (cfg.EvalEvery > 0 && (round+1)%cfg.EvalEvery == 0))
		if evalNow {
			global.SetWeights(globalW)
			stats.Accuracy = Evaluate(global, test, 256)
		} else {
			stats.Accuracy = -1
		}
		emitRoundTrace(cfg.Trace, roundRecs, stats, straggler)
		hist.Rounds = append(hist.Rounds, stats)
		hist.TotalSeconds += stats.Makespan
		if err := checkpointAfter(round); err != nil {
			return finish(), fmt.Errorf("fl: checkpoint after round %d: %w", round, err)
		}
	}

	finish()
	if test != nil {
		// Evaluate the final model directly: the last round may not have
		// evaluated (all-dropped deadline rounds report -1).
		hist.Confusion = EvaluateConfusion(global, test, 256)
		hist.FinalAccuracy = hist.Confusion.Accuracy()
	}
	return hist, nil
}

// hasNonFinite reports whether any weight of the float64 network is NaN or
// ±Inf. Clients check their own models through Trainer.HasNonFinite; this
// covers server-side networks (the global model).
func hasNonFinite(net *nn.Network) bool {
	for _, p := range net.Params() {
		for _, v := range p.W.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
	}
	return false
}

func clientIndex(clients []*Client, id int) int {
	for i, c := range clients {
		if c.ID == id {
			return i
		}
	}
	panic("fl: unknown client id")
}

// trainRound runs one local epoch on the client and returns its stats.
// f is the round's injected fault: a fatal pre-upload fault (crash,
// battery death, link flap) skips the real gradient work entirely — the
// update would be discarded anyway, and leaving the trainer, RNG and
// round counter untouched means a resumed run replays only completed
// training — while still charging the simulated cost spent before the
// failure. Corrupt clients train normally (the damage happens on the
// wire) and are rejected by the server after the join. The fault's Slow
// factor degrades the link for victims and survivors alike.
//
// fedlint:hotpath
func (c *Client) trainRound(cfg Config, globalW []*tensor.Tensor, modelBytes int, f fault.Fault) ClientRound {
	n := c.Local.Len()
	link := c.Link.Degraded(f.Slow)
	if f.Kind == fault.Crash || f.Kind == fault.Battery || f.Kind == fault.LinkFlap {
		cr := ClientRound{ClientID: c.ID, Samples: n, TrainLoss: -1, Fault: f.Kind}
		if c.Device != nil {
			e0 := c.Device.EnergyJ
			th0 := c.Device.Throttles
			if f.Kind == fault.LinkFlap {
				// Full epoch computed; the link dies Point of the way
				// through the model exchange.
				cr.ComputeS, _ = c.Device.TrainSamples(cfg.Arch, n, cfg.BatchSize)
				cr.CommS = f.Point * link.RoundTripTime(modelBytes)
			} else {
				// The process (or battery) dies Point of the way through
				// the shard; nothing is ever transmitted.
				cr.ComputeS, _ = c.Device.TrainSamples(cfg.Arch, int(f.Point*float64(n)), cfg.BatchSize)
				if f.Kind == fault.Battery {
					c.Device.DrainBattery()
				}
			}
			cr.EnergyJ = c.Device.EnergyJ - e0
			cr.Temperature = c.Device.TempC
			cr.Throttles = c.Device.Throttles - th0
			cr.BatteryFrac = c.Device.BatteryRemaining()
		}
		return cr
	}

	c.net.SetWeights(globalW)
	c.net.ResetOpt()
	if cfg.LRSchedule != nil {
		c.net.SetLR(cfg.LRSchedule(c.round))
	}
	c.round++
	c.Local.Shuffle(c.rng)

	lossSum := 0.0
	batches := 0
	for i := 0; i < n; i += cfg.BatchSize {
		end := i + cfg.BatchSize
		if end > n {
			end = n
		}
		x, y := c.Local.Batch(i, end)
		lossSum += c.net.TrainBatch(x, y)
		c.net.Step()
		batches++
	}

	cr := ClientRound{ClientID: c.ID, Samples: n, TrainLoss: lossSum / float64(batches), Fault: f.Kind}
	if c.Device != nil {
		e0 := c.Device.EnergyJ
		th0 := c.Device.Throttles
		cr.ComputeS, _ = c.Device.TrainSamples(cfg.Arch, n, cfg.BatchSize)
		cr.CommS = link.RoundTripTime(modelBytes)
		cr.EnergyJ = c.Device.EnergyJ - e0
		cr.Temperature = c.Device.TempC
		cr.Throttles = c.Device.Throttles - th0
		cr.BatteryFrac = c.Device.BatteryRemaining()
	}
	return cr
}

// EvaluateConfusion runs the model over the test set and returns the full
// confusion matrix (per-class recall/precision for the outlier analyses).
// Test batches fan out across network clones on the worker pool; the
// counts merge in batch order, so the matrix matches the sequential loop
// exactly.
func EvaluateConfusion(net *nn.Network, test *data.Dataset, batch int) *metrics.Confusion {
	if batch <= 0 {
		batch = 256
	}
	c := metrics.NewConfusion(test.Classes)
	n := test.Len()
	if n == 0 {
		return c
	}
	nb := (n + batch - 1) / batch
	preds := make([][]int, nb)
	labels := make([][]int, nb)
	forEachBatch(net, workerCount(0, nb), nb, func(bi int, m *nn.Network) {
		i := bi * batch
		end := min(i+batch, n)
		x, y := test.Batch(i, end)
		preds[bi] = m.Predict(x)
		labels[bi] = y
	})
	for bi := range preds {
		c.Add(labels[bi], preds[bi])
	}
	return c
}

// Evaluate computes test accuracy in batches of at most batch samples.
// Batches fan out across network clones on the worker pool; per-batch
// correct counts merge in batch order (integer sums, so the result is
// identical to the sequential loop for any worker count).
func Evaluate(net *nn.Network, test *data.Dataset, batch int) float64 {
	if test.Len() == 0 {
		return 0
	}
	if batch <= 0 {
		batch = 256
	}
	n := test.Len()
	nb := (n + batch - 1) / batch
	correct := make([]int, nb)
	forEachBatch(net, workerCount(0, nb), nb, func(bi int, m *nn.Network) {
		i := bi * batch
		end := min(i+batch, n)
		x, y := test.Batch(i, end)
		pred := m.Predict(x)
		hits := 0
		for k, p := range pred {
			if p == y[k] {
				hits++
			}
		}
		correct[bi] = hits
	})
	total := 0
	for _, h := range correct {
		total += h
	}
	return float64(total) / float64(n)
}
