// Package fl is the synchronous federated-learning engine: a parameter
// server aggregating FedAvg updates from simulated mobile clients. Each
// round, every participant downloads the global model, trains one local
// epoch over its assigned data, and uploads its weights; the server takes
// the sample-weighted average (McMahan et al. [2]). Round wall time is the
// makespan over participants of simulated computation (device package)
// plus communication (network package); model quality comes from real
// gradient descent on the nn package.
package fl

import (
	"fmt"
	"math"
	"math/rand"

	"fedsched/internal/data"
	"fedsched/internal/device"
	"fedsched/internal/metrics"
	"fedsched/internal/network"
	"fedsched/internal/nn"
	"fedsched/internal/tensor"
)

// Client is one federated participant.
type Client struct {
	ID     int
	Name   string
	Device *device.Device // nil disables time simulation for this client
	Link   network.Link
	Local  *data.Dataset // local training data (nil or empty → skipped)

	net   *nn.Network
	opt   *nn.SGD
	rng   *rand.Rand
	round int // rounds this client has trained (drives LR schedules)
}

// NewClient constructs a client. dev may be nil when only accuracy (not
// time) is being measured.
func NewClient(id int, name string, dev *device.Device, link network.Link, local *data.Dataset) *Client {
	return &Client{ID: id, Name: name, Device: dev, Link: link, Local: local}
}

// Config drives a federated run.
type Config struct {
	Arch      *nn.Arch
	Rounds    int
	BatchSize int
	LR        float64
	Momentum  float64
	// Seed makes the whole run deterministic (init, shuffles, dropout).
	Seed int64
	// EvalEvery evaluates test accuracy every k rounds (and always on the
	// final round). Zero means final-round only.
	EvalEvery int
	// SecureAgg aggregates client updates through pairwise-mask secure
	// aggregation (internal/secagg) instead of plaintext averaging — the
	// protection the paper's system model assumes (§IV-A). The server then
	// sees only the weighted sum, never an individual update. Costs one
	// fixed-point quantization (~2⁻²⁴ per weight) per round.
	SecureAgg bool
	// DeadlineSeconds, when positive, drops any participant whose
	// compute+comm time exceeds it from that round's aggregation — the
	// hard straggler dropout of Bonawitz et al. [5] that the paper
	// criticizes for "not attempting to make best use from their data"
	// (§II-B). The round's makespan is then capped at the deadline.
	DeadlineSeconds float64
	// LRSchedule, when set, overrides LR per round (see nn.StepDecayLR,
	// nn.CosineLR).
	LRSchedule nn.LRSchedule
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 20
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	return c
}

// ClientRound records one client's contribution to a round.
type ClientRound struct {
	ClientID    int
	Samples     int
	ComputeS    float64
	CommS       float64
	TrainLoss   float64
	EnergyJ     float64
	Temperature float64
	// Dropped marks a participant cut by the round deadline; its update
	// was discarded.
	Dropped bool
	// Diverged marks a participant whose local update contained non-finite
	// weights (exploding gradients); the server rejects such updates — the
	// fault-tolerance concern of Smith et al. [10].
	Diverged bool
}

// RoundStats aggregates one synchronous round.
type RoundStats struct {
	Round     int
	Makespan  float64 // max participant compute+comm seconds
	TrainLoss float64 // sample-weighted mean local loss
	Accuracy  float64 // test accuracy (NaN when not evaluated)
	Clients   []ClientRound
}

// History is the result of a federated run.
type History struct {
	Rounds        []RoundStats
	FinalAccuracy float64
	// Confusion is the final model's confusion matrix on the test set
	// (nil when no test set was given).
	Confusion *metrics.Confusion
	// Model is the final global model (checkpoint it with
	// Model.SaveWeights).
	Model        *nn.Network
	TotalSeconds float64 // Σ round makespans
	TotalEnergyJ float64
}

// Run executes synchronous FedAvg. test may be nil to skip evaluation.
func Run(cfg Config, clients []*Client, test *data.Dataset) (*History, error) {
	cfg = cfg.withDefaults()
	if cfg.Arch == nil {
		return nil, fmt.Errorf("fl: no architecture")
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("fl: no clients")
	}
	anyData := false
	for _, c := range clients {
		if c.Local != nil && c.Local.Len() > 0 {
			anyData = true
		}
	}
	if !anyData {
		return nil, fmt.Errorf("fl: no client holds data")
	}

	rootRNG := rand.New(rand.NewSource(cfg.Seed))
	global := cfg.Arch.Build(rootRNG)
	for _, c := range clients {
		c.net = cfg.Arch.Build(rootRNG) // geometry clone; weights overwritten
		c.opt = nn.NewSGD(cfg.LR, cfg.Momentum, 0)
		c.rng = rand.New(rand.NewSource(cfg.Seed + int64(c.ID)*7919 + 1))
	}

	modelBytes := cfg.Arch.SizeBytes()
	hist := &History{}
	globalW := global.GetWeights()

	for round := 0; round < cfg.Rounds; round++ {
		stats := RoundStats{Round: round}
		var (
			sumW         []*tensor.Tensor
			total        int
			lossSum      float64
			participants []*Client
			sampleCounts []int
		)
		for _, c := range clients {
			if c.Local == nil || c.Local.Len() == 0 {
				continue
			}
			cr := c.trainRound(cfg, globalW, modelBytes)
			if hasNonFinite(c.net) {
				cr.Diverged = true
				stats.Clients = append(stats.Clients, cr)
				continue
			}
			span := cr.ComputeS + cr.CommS
			if cfg.DeadlineSeconds > 0 && span > cfg.DeadlineSeconds {
				// Hard dropout: the update is discarded; the round does
				// not wait past the deadline.
				cr.Dropped = true
				stats.Clients = append(stats.Clients, cr)
				if cfg.DeadlineSeconds > stats.Makespan {
					stats.Makespan = cfg.DeadlineSeconds
				}
				continue
			}
			stats.Clients = append(stats.Clients, cr)
			if span > stats.Makespan {
				stats.Makespan = span
			}
			lossSum += cr.TrainLoss * float64(cr.Samples)
			participants = append(participants, c)
			sampleCounts = append(sampleCounts, cr.Samples)
			total += cr.Samples
			if cfg.SecureAgg {
				continue // aggregation happens through secureRound below
			}
			// Weighted plaintext accumulation of the client's weights.
			w := c.net.GetWeights()
			if sumW == nil {
				sumW = make([]*tensor.Tensor, len(w))
				for i, t := range w {
					scaled := t.Clone()
					scaled.Scale(float64(cr.Samples))
					sumW[i] = scaled
				}
			} else {
				for i, t := range w {
					sumW[i].AddScaled(float64(cr.Samples), t)
				}
			}
		}
		if total == 0 {
			if cfg.DeadlineSeconds > 0 {
				// Every participant missed the deadline: a wasted round,
				// not an error. The global model stands.
				stats.TrainLoss = math.NaN()
				stats.Accuracy = -1
				hist.Rounds = append(hist.Rounds, stats)
				hist.TotalSeconds += stats.Makespan
				continue
			}
			return nil, fmt.Errorf("fl: round %d had no participants", round)
		}
		if cfg.SecureAgg {
			agg, err := secureRound(global, participants, sampleCounts)
			if err != nil {
				return nil, err
			}
			globalW = agg
		} else {
			inv := 1 / float64(total)
			for _, t := range sumW {
				t.Scale(inv)
			}
			globalW = sumW
		}
		stats.TrainLoss = lossSum / float64(total)

		// Idle the devices for the rest of the round so stragglers' heat
		// and fast devices' cooling evolve realistically.
		for _, cr := range stats.Clients {
			c := clients[clientIndex(clients, cr.ClientID)]
			if c.Device != nil {
				c.Device.Idle(stats.Makespan - cr.ComputeS - cr.CommS)
			}
		}

		evalNow := test != nil && (round == cfg.Rounds-1 || (cfg.EvalEvery > 0 && (round+1)%cfg.EvalEvery == 0))
		if evalNow {
			global.SetWeights(globalW)
			stats.Accuracy = Evaluate(global, test, 256)
		} else {
			stats.Accuracy = -1
		}
		hist.Rounds = append(hist.Rounds, stats)
		hist.TotalSeconds += stats.Makespan
	}

	global.SetWeights(globalW)
	hist.Model = global
	if test != nil {
		// Evaluate the final model directly: the last round may not have
		// evaluated (all-dropped deadline rounds report -1).
		hist.Confusion = EvaluateConfusion(global, test, 256)
		hist.FinalAccuracy = hist.Confusion.Accuracy()
	}
	for _, c := range clients {
		if c.Device != nil {
			hist.TotalEnergyJ += c.Device.EnergyJ
		}
	}
	return hist, nil
}

func clientIndex(clients []*Client, id int) int {
	for i, c := range clients {
		if c.ID == id {
			return i
		}
	}
	panic("fl: unknown client id")
}

// trainRound runs one local epoch on the client and returns its stats.
func (c *Client) trainRound(cfg Config, globalW []*tensor.Tensor, modelBytes int) ClientRound {
	c.net.SetWeights(globalW)
	c.opt.Reset()
	if cfg.LRSchedule != nil {
		c.opt.LR = cfg.LRSchedule(c.round)
	}
	c.round++
	c.Local.Shuffle(c.rng)

	n := c.Local.Len()
	lossSum := 0.0
	batches := 0
	for i := 0; i < n; i += cfg.BatchSize {
		end := i + cfg.BatchSize
		if end > n {
			end = n
		}
		x, y := c.Local.Batch(i, end)
		lossSum += c.net.TrainBatch(x, y)
		c.opt.Step(c.net.Params())
		batches++
	}

	cr := ClientRound{ClientID: c.ID, Samples: n, TrainLoss: lossSum / float64(batches)}
	if c.Device != nil {
		e0 := c.Device.EnergyJ
		cr.ComputeS, _ = c.Device.TrainSamples(cfg.Arch, n, cfg.BatchSize)
		cr.CommS = c.Link.RoundTripTime(modelBytes)
		cr.EnergyJ = c.Device.EnergyJ - e0
		cr.Temperature = c.Device.TempC
	}
	return cr
}

// EvaluateConfusion runs the model over the test set and returns the full
// confusion matrix (per-class recall/precision for the outlier analyses).
func EvaluateConfusion(net *nn.Network, test *data.Dataset, batch int) *metrics.Confusion {
	if batch <= 0 {
		batch = 256
	}
	c := metrics.NewConfusion(test.Classes)
	for i := 0; i < test.Len(); i += batch {
		end := i + batch
		if end > test.Len() {
			end = test.Len()
		}
		x, y := test.Batch(i, end)
		c.Add(y, net.Predict(x))
	}
	return c
}

// Evaluate computes test accuracy in batches of at most batch samples.
func Evaluate(net *nn.Network, test *data.Dataset, batch int) float64 {
	if test.Len() == 0 {
		return 0
	}
	if batch <= 0 {
		batch = 256
	}
	correct := 0
	for i := 0; i < test.Len(); i += batch {
		end := i + batch
		if end > test.Len() {
			end = test.Len()
		}
		x, y := test.Batch(i, end)
		pred := net.Predict(x)
		for k, p := range pred {
			if p == y[k] {
				correct++
			}
		}
	}
	return float64(correct) / float64(test.Len())
}

// hasNonFinite reports whether any weight of the network is NaN or ±Inf.
func hasNonFinite(net *nn.Network) bool {
	for _, p := range net.Params() {
		for _, v := range p.W.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
	}
	return false
}
