package fl

import (
	"bytes"
	"runtime"
	"testing"

	"fedsched/internal/device"
	"fedsched/internal/nn"
	"fedsched/internal/sample"
	"fedsched/internal/trace"
)

func popConfig(n, cohort, rounds int) PopulationConfig {
	return PopulationConfig{
		Arch:        nn.LeNetSmall(1, 12, 12, 4),
		Population:  device.NewPopulation(n, 42),
		Sampler:     sample.NewUniform(n, cohort, 42),
		Rounds:      rounds,
		TotalShards: 120,
		ShardSize:   100,
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a, err := SimulatePopulationRounds(popConfig(10_000, 16, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulatePopulationRounds(popConfig(10_000, 16, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(a.Rounds), len(b.Rounds))
	}
	for i := range a.Rounds {
		if a.Rounds[i] != b.Rounds[i] {
			t.Fatalf("round %d differs: %+v vs %+v", i, a.Rounds[i], b.Rounds[i])
		}
	}
	if a.TotalSeconds != b.TotalSeconds || a.TotalEnergyJ != b.TotalEnergyJ {
		t.Fatal("aggregate totals differ across identical runs")
	}
	r0 := a.Rounds[0]
	if r0.Selected != 16 || r0.Participants == 0 || r0.Samples == 0 {
		t.Fatalf("implausible round: %+v", r0)
	}
	if r0.MakespanS <= 0 || r0.PredictedS <= 0 || r0.Straggler < 0 {
		t.Fatalf("implausible timings: %+v", r0)
	}
}

func TestPopulationTraceWorkerInvariant(t *testing.T) {
	// The population trace must be byte-identical for any Workers value:
	// per-slot rings are drained post-join in slot order, so parallelism
	// never reorders events.
	run := func(workers int) []byte {
		cfg := popConfig(10_000, 16, 2)
		cfg.Workers = workers
		cfg.Trace = trace.New(0)
		if _, err := SimulatePopulationRounds(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, cfg.Trace.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := run(1)
	if len(want) == 0 {
		t.Fatal("no trace produced")
	}
	for _, w := range []int{2, 8, -1} {
		if got := run(w); !bytes.Equal(got, want) {
			t.Fatalf("trace differs between Workers=1 and Workers=%d", w)
		}
	}
}

func TestPopulationRoundScalesWithCohortNotPopulation(t *testing.T) {
	// The tentpole invariant: steady-state per-round allocations depend on
	// the cohort, not the population. A 100× larger fleet must cost the
	// same per round once the runner is warm.
	measure := func(n int) float64 {
		cfg := popConfig(n, 16, 1)
		r, err := NewPopulationRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Round(0); err != nil { // warm-up
			t.Fatal(err)
		}
		round := 1
		return testing.AllocsPerRun(20, func() {
			if _, err := r.Round(round); err != nil {
				t.Fatal(err)
			}
			round++
		})
	}
	small := measure(5_000)
	big := measure(500_000)
	// TrainSamples allocates its batch-point slice per participant, and the
	// solver holds O(cohort) scratch — both population-independent. Allow
	// slack for map growth inside the sampler but nothing O(N).
	if big > small+64 {
		t.Fatalf("per-round allocs grew with population: %v (5e3) vs %v (5e5)", small, big)
	}
	if small > 2048 {
		t.Fatalf("per-round allocs implausibly high for cohort 16: %v", small)
	}
}

func TestPopulationLiveHeapOSelected(t *testing.T) {
	// Absolute backstop for the O(selected) claim: a warm 1M-client runner
	// plus one round's live state must fit comfortably under a small cap.
	if testing.Short() {
		t.Skip("1M-client heap check")
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	cfg := popConfig(1_000_000, 32, 1)
	r, err := NewPopulationRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := r.Round(0)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if pr.Participants == 0 {
		t.Fatal("empty round")
	}
	if grew := after.HeapAlloc - before.HeapAlloc; before.HeapAlloc < after.HeapAlloc && grew > 8<<20 {
		t.Fatalf("1M-client runner holds %d bytes live; expected O(cohort)", grew)
	}
}

func TestPopulationBatteryBudget(t *testing.T) {
	cfg := popConfig(10_000, 16, 1)
	cfg.BatteryBudget = 0.05
	hist, err := SimulatePopulationRounds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	free, err := SimulatePopulationRounds(popConfig(10_000, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	r, f := hist.Rounds[0], free.Rounds[0]
	if r.Participants == 0 || r.Samples == 0 {
		t.Fatalf("budgeted round trained nothing: %+v", r)
	}
	// A tight per-round budget caps the fast clients, so the load spreads
	// wider (or stays equal when the budget never binds).
	if r.Participants < f.Participants {
		t.Fatalf("battery budget reduced participation: %d vs %d", r.Participants, f.Participants)
	}
}

func TestPopulationAvailabilitySampling(t *testing.T) {
	cfg := popConfig(10_000, 16, 4)
	cfg.Sampler = sample.NewAvailability(10_000, 16, 42)
	hist, err := SimulatePopulationRounds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trained := 0
	for _, r := range hist.Rounds {
		if r.Selected > 16 {
			t.Fatalf("round %d cohort %d exceeds requested size", r.Round, r.Selected)
		}
		if r.Samples > 0 {
			trained++
		}
	}
	if trained == 0 {
		t.Fatal("no round trained any samples under availability sampling")
	}
}

func TestPopulationConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*PopulationConfig)
	}{
		{"no-arch", func(c *PopulationConfig) { c.Arch = nil }},
		{"no-population", func(c *PopulationConfig) { c.Population = nil }},
		{"no-sampler", func(c *PopulationConfig) { c.Sampler = nil }},
		{"sampler-mismatch", func(c *PopulationConfig) { c.Sampler = sample.NewUniform(999, 16, 1) }},
		{"bad-population", func(c *PopulationConfig) { c.Population.SpeedJitter = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := popConfig(1000, 16, 1)
			tc.mutate(&cfg)
			if _, err := NewPopulationRunner(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}
