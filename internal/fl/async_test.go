package fl

import (
	"math/rand"
	"testing"

	"fedsched/internal/data"
	"fedsched/internal/device"
	"fedsched/internal/network"
)

func asyncClients(t *testing.T, train *data.Dataset, users int, withDevices bool) []*Client {
	t.Helper()
	part := data.IIDEqual(train, users, rand.New(rand.NewSource(1)))
	locals := part.Materialize(train)
	devs := make([]*device.Device, users)
	if withDevices {
		profiles := []device.Profile{device.Pixel2(), device.Nexus6(), device.Nexus6P(), device.Mate10()}
		for i := range devs {
			devs[i] = device.New(profiles[i%len(profiles)])
		}
	}
	links := make([]network.Link, users)
	for i := range links {
		links[i] = network.WiFi()
	}
	clients, err := BuildClients(devs, links, locals)
	if err != nil {
		t.Fatal(err)
	}
	return clients
}

func TestAsyncLearns(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 33), 800, 300)
	clients := asyncClients(t, train, 4, true)
	cfg := AsyncConfig{
		Config:         smallConfig(0),
		MaxUpdates:     24,
		MixRate:        0.5,
		StalenessPower: 0.5,
	}
	hist, err := RunAsync(cfg, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Updates != 24 {
		t.Fatalf("updates %d, want 24", hist.Updates)
	}
	if hist.FinalAccuracy < 0.6 {
		t.Fatalf("async accuracy %.3f too low", hist.FinalAccuracy)
	}
	if hist.VirtualSeconds <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if hist.TotalEnergyJ <= 0 {
		t.Fatal("no energy recorded")
	}
}

func TestAsyncFastDevicesUpdateMore(t *testing.T) {
	// Client 0 rides a Pixel2, client 2 a Nexus6P: without synchronous
	// barriers the fast phone must contribute more updates.
	train, _ := data.TrainTest(data.SMNISTConfig(0, 34), 800, 10)
	clients := asyncClients(t, train, 4, true)
	cfg := AsyncConfig{Config: smallConfig(0), MaxUpdates: 40}
	// Use the paper-scale LeNet for time so device speed differences are
	// visible (the tiny test arch trains in microseconds of virtual time).
	hist, err := RunAsync(cfg, clients, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hist.UpdatesPerClient[0] < hist.UpdatesPerClient[2] {
		t.Fatalf("Pixel2 made %d updates vs Nexus6P %d — async should favour fast devices",
			hist.UpdatesPerClient[0], hist.UpdatesPerClient[2])
	}
}

func TestAsyncDurationBound(t *testing.T) {
	train, _ := data.TrainTest(data.SMNISTConfig(0, 35), 200, 10)
	clients := asyncClients(t, train, 2, true)
	cfg := AsyncConfig{Config: smallConfig(0), Duration: 3, MaxUpdates: 1 << 30}
	hist, err := RunAsync(cfg, clients, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hist.VirtualSeconds > 3.5 {
		t.Fatalf("ran past the deadline: %v s", hist.VirtualSeconds)
	}
	if hist.Updates == 0 {
		t.Fatal("no updates within the window")
	}
}

func TestAsyncStalenessTracked(t *testing.T) {
	train, _ := data.TrainTest(data.SMNISTConfig(0, 36), 800, 10)
	clients := asyncClients(t, train, 4, true)
	hist, err := RunAsync(AsyncConfig{Config: smallConfig(0), MaxUpdates: 30}, clients, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hist.MeanStaleness <= 0 {
		t.Fatalf("mean staleness %v — concurrent clients must overlap", hist.MeanStaleness)
	}
}

func TestAsyncValidation(t *testing.T) {
	if _, err := RunAsync(AsyncConfig{}, nil, nil); err == nil {
		t.Fatal("expected error without arch")
	}
	cfg := AsyncConfig{Config: smallConfig(0)}
	c := NewClient(0, "empty", nil, network.WiFi(), nil)
	if _, err := RunAsync(cfg, []*Client{c}, nil); err == nil {
		t.Fatal("expected error when no client holds data")
	}
}

func TestAsyncDeterministic(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 37), 400, 100)
	run := func() float64 {
		clients := asyncClients(t, train, 3, true)
		hist, err := RunAsync(AsyncConfig{Config: smallConfig(0), MaxUpdates: 12}, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		return hist.FinalAccuracy
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic async run: %v vs %v", a, b)
	}
}

func TestSyncVsAsyncTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("full sync-vs-async comparison")
	}
	// The paper's §II-B rationale, measured: async completes its updates in
	// less virtual time per update (no barrier), sync reaches at-least-as-
	// good accuracy for the same number of aggregate local epochs.
	train, test := data.TrainTest(data.SMNISTConfig(0, 38), 1200, 400)
	users := 4

	syncClients := asyncClients(t, train, users, true)
	syncHist, err := Run(smallConfig(6), syncClients, test)
	if err != nil {
		t.Fatal(err)
	}

	aClients := asyncClients(t, train, users, true)
	asyncHist, err := RunAsync(AsyncConfig{
		Config: smallConfig(0), MaxUpdates: 6 * users, MixRate: 0.4, StalenessPower: 1,
	}, aClients, test)
	if err != nil {
		t.Fatal(err)
	}

	// Same total local epochs (6 rounds × 4 users vs 24 updates): async
	// must be meaningfully faster in virtual time…
	if asyncHist.VirtualSeconds >= syncHist.TotalSeconds {
		t.Fatalf("async (%gs) not faster than sync (%gs)", asyncHist.VirtualSeconds, syncHist.TotalSeconds)
	}
	// …and sync must not lose accuracy to async (the reason the paper
	// chose it).
	if syncHist.FinalAccuracy < asyncHist.FinalAccuracy-0.05 {
		t.Fatalf("sync accuracy %.3f unexpectedly below async %.3f", syncHist.FinalAccuracy, asyncHist.FinalAccuracy)
	}
}
