package fl

import (
	"fmt"

	"fedsched/internal/nn"
	"fedsched/internal/secagg"
	"fedsched/internal/tensor"
)

// flattenWeights serializes a weight list into one vector, scaling each
// tensor by `scale` (the FedAvg sample weight).
func flattenWeights(ws []*tensor.Tensor, scale float64, dst []float64) []float64 {
	total := 0
	for _, w := range ws {
		total += w.Len()
	}
	if cap(dst) < total {
		dst = make([]float64, total)
	}
	dst = dst[:total]
	off := 0
	for _, w := range ws {
		for _, v := range w.Data() {
			dst[off] = v * scale
			off++
		}
	}
	return dst
}

// unflattenInto copies a flat vector back into the weight tensors, scaling
// by `scale`.
func unflattenInto(ws []*tensor.Tensor, flat []float64, scale float64) {
	off := 0
	for _, w := range ws {
		d := w.Data()
		for i := range d {
			d[i] = flat[off] * scale
			off++
		}
	}
}

// secureRound aggregates the round's client weights through the
// pairwise-mask protocol: each participant masks n_i·w_i; the server sums
// the masked vectors (individual updates stay hidden) and divides by the
// total sample count. The returned tensors replace the global weights.
func secureRound(net *nn.Network, participants []*Client, samples []int) ([]*tensor.Tensor, error) {
	n := len(participants)
	group, err := secagg.NewGroup(n, 0x5eca66)
	if err != nil {
		return nil, err
	}
	masked := make([][]uint64, n)
	var scratch []float64
	total := 0
	for i, c := range participants {
		scratch = flattenWeights(c.net.GetWeights(), float64(samples[i]), scratch)
		masked[i], err = group.Mask(i, scratch)
		if err != nil {
			return nil, fmt.Errorf("fl: secure aggregation mask for client %d: %w", c.ID, err)
		}
		total += samples[i]
	}
	sum, err := group.Aggregate(masked)
	if err != nil {
		return nil, fmt.Errorf("fl: secure aggregation: %w", err)
	}
	// Template tensors with the right shapes for the averaged weights.
	out := net.GetWeights()
	unflattenInto(out, sum, 1/float64(total))
	return out, nil
}
