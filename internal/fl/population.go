package fl

import (
	"fmt"
	"math/rand"
	"sort"

	"fedsched/internal/device"
	"fedsched/internal/fault"
	"fedsched/internal/network"
	"fedsched/internal/nn"
	"fedsched/internal/profile"
	"fedsched/internal/sample"
	"fedsched/internal/sched"
	"fedsched/internal/trace"
)

// PopulationConfig drives a population-scale simulation: a Sampler draws
// a cohort from a lazily-materialized device.Population each round, a
// Scheduler partitions the round's shards across the cohort, and the
// device simulator plays the round out. This is the paper's actual
// regime — millions of battery-powered phones of which a handful
// participate per round — which the testbed path (tens of devices, all
// participating) cannot reach.
type PopulationConfig struct {
	// Arch is the model being trained (drives compute cost and payload).
	Arch *nn.Arch
	// Population describes the client fleet by construction (O(1) memory
	// regardless of size).
	Population *device.Population
	// Sampler selects each round's cohort; its Population() must equal
	// Population.N.
	Sampler sample.Sampler
	// Scheduler partitions TotalShards across the cohort. Nil defaults to
	// sched.SparseFedLBAP (the population-scale solver).
	Scheduler sched.Scheduler
	// Link is the uplink/downlink model shared by all clients (zero value
	// defaults to WiFi).
	Link network.Link
	// Rounds is the number of rounds to simulate (default 1).
	Rounds int
	// TotalShards per round (default 600) of ShardSize samples (default
	// 100 — the paper's granularity).
	TotalShards int
	ShardSize   int
	// BatchSize for the device compute simulation (default 20).
	BatchSize int
	// Workers bounds intra-round parallelism, with the same contract as
	// Config.Workers: results and traces are bit-identical for any value.
	Workers int
	// BatteryBudget, when positive, caps each cohort member's shards at
	// what that fraction of its remaining battery affords per round
	// (capacity C_j, §VI-A).
	BatteryBudget float64
	// Faults, when non-nil, injects deterministic client faults
	// (internal/fault) keyed by (round, client id) — O(selected), like
	// everything else here: only cohort members are ever drawn. Faulted
	// slots burn simulated time and energy but never count as
	// participants.
	Faults *fault.Plan
	// Quorum, when positive, closes the round after the first Quorum
	// surviving slots ordered by realized span (ties by client id);
	// later survivors are flagged late and dropped. Pair it with an
	// over-selecting Sampler so faults eat the margin, not the round.
	Quorum int
	// MinParticipants, when positive, marks rounds that aggregate fewer
	// surviving slots as failed (PopulationRound.Failed) — the
	// minimum-participation floor of production FL.
	MinParticipants int
	// Trace, when non-nil, receives solver probes, per-user schedule
	// events, per-client round events and round summaries — the same
	// schema as the training engines, bit-identical for any Workers.
	Trace *trace.Recorder
}

func (c PopulationConfig) withDefaults() PopulationConfig {
	if c.Scheduler == nil {
		c.Scheduler = sched.SparseFedLBAP{}
	}
	if c.Link.Name == "" && !(c.Link.UpMbps > 0) {
		c.Link = network.WiFi()
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.TotalShards <= 0 {
		c.TotalShards = 600
	}
	if c.ShardSize <= 0 {
		c.ShardSize = 100
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 20
	}
	return c
}

// PopulationRound summarizes one simulated population round.
type PopulationRound struct {
	Round int
	// Selected is the cohort size the sampler drew; Participants how many
	// of them the scheduler gave non-zero work.
	Selected     int
	Participants int
	// Samples is the total training data simulated this round.
	Samples int
	// MakespanS is the realized round time; PredictedS the scheduler's
	// predicted makespan for its assignment.
	MakespanS  float64
	PredictedS float64
	// Straggler is the client id defining the makespan (−1 if none).
	Straggler int
	EnergyJ   float64
	Throttles int
	// Faulted and Late count cohort slots lost to injected faults and to
	// the quorum cut; Failed marks a round that closed below
	// MinParticipants (or with no survivors under a fault plan).
	Faulted int
	Late    int
	Failed  bool
}

// PopulationHistory is the result of SimulatePopulationRounds.
type PopulationHistory struct {
	Rounds       []PopulationRound
	TotalSeconds float64
	TotalEnergyJ float64
}

// popCost is one cohort slot's scheduler-facing cost curve: the
// archetype's profiled T(D) line scaled by the client's speed factor
// (device.Population applies the same factor to throughput, so predicted
// and simulated time agree to first order). The slot's sched.User binds
// its Cost to the predict method once; re-pointing the struct each round
// re-targets the existing closure with zero allocation.
type popCost struct {
	dp    *profile.DeviceProfile
	arch  *nn.Arch
	speed float64
}

func (c *popCost) predict(samples int) float64 {
	return c.dp.Predict(c.arch, samples) / c.speed
}

// PopulationRunner executes population rounds with O(selected) live
// state: every slice below is sized by the sampler's maximum cohort, not
// by Population.N, and per-client state exists only while the client is
// in the current cohort. Clients are therefore stateless across rounds —
// each selection re-materializes the device from the population seed
// (battery drain and thermal state do not persist between selections;
// persisting them would be O(population) by definition).
type PopulationRunner struct {
	cfg PopulationConfig

	// prof[a] is the offline profile of archetype a (shared across
	// archetypes with the same device model).
	prof []*profile.DeviceProfile

	rng *rand.Rand // for schedulers that draw (Random baseline)

	comm       float64 // per-round communication seconds (uniform link)
	modelBytes int

	rep sample.FailureReporter // cfg.Sampler, if failure-aware

	// Cohort-sized scratch, reused every round.
	cohort []int
	devs   []device.Device
	costs  []popCost
	users  []sched.User
	uptrs  []*sched.User
	crs    []ClientRound
	spans  []float64
	order  []int             // quorum ordering scratch
	sorter spanOrder         // closure-free sorter over order
	rings  []*trace.Recorder // per-slot event rings (tracing only)
}

// spanOrder sorts slot indices by (realized span asc, client id asc) via
// a pointer receiver and pre-bound slices — no closures, so the quorum
// cut stays allocation-free inside the hot Round path.
type spanOrder struct {
	idx   []int
	spans []float64
	crs   []ClientRound
}

func (s *spanOrder) Len() int      { return len(s.idx) }
func (s *spanOrder) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }
func (s *spanOrder) Less(a, b int) bool {
	x, y := s.idx[a], s.idx[b]
	if s.spans[x] < s.spans[y] {
		return true
	}
	if s.spans[y] < s.spans[x] {
		return false
	}
	return s.crs[x].ClientID < s.crs[y].ClientID
}

// NewPopulationRunner validates the config, profiles the archetypes
// (once, the expensive part) and allocates the cohort-sized scratch.
func NewPopulationRunner(cfg PopulationConfig) (*PopulationRunner, error) {
	cfg = cfg.withDefaults()
	if cfg.Arch == nil {
		return nil, fmt.Errorf("fl: population: no architecture")
	}
	if cfg.Population == nil {
		return nil, fmt.Errorf("fl: population: no population")
	}
	if err := cfg.Population.Check(); err != nil {
		return nil, err
	}
	if cfg.Sampler == nil {
		return nil, fmt.Errorf("fl: population: no sampler")
	}
	if got, want := cfg.Sampler.Population(), cfg.Population.N; got != want {
		return nil, fmt.Errorf("fl: population: sampler over %d clients, population has %d", got, want)
	}
	k := cfg.Sampler.CohortSize()
	if k <= 0 {
		return nil, fmt.Errorf("fl: population: sampler cohort size %d, want > 0", k)
	}

	if err := cfg.Faults.Check(); err != nil {
		return nil, fmt.Errorf("fl: population: %w", err)
	}

	r := &PopulationRunner{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Population.Seed*0x5deece66d + 11)),
		modelBytes: cfg.Arch.SizeBytes(),
		cohort:     make([]int, k),
		devs:       make([]device.Device, k),
		costs:      make([]popCost, k),
		users:      make([]sched.User, k),
		uptrs:      make([]*sched.User, k),
		crs:        make([]ClientRound, k),
		spans:      make([]float64, k),
		order:      make([]int, k),
	}
	r.rep, _ = cfg.Sampler.(sample.FailureReporter)
	r.sorter.spans = r.spans
	r.sorter.crs = r.crs
	r.comm = cfg.Link.RoundTripTime(r.modelBytes)

	// One offline profile per archetype, shared between archetypes with
	// the same model string (BuildTestbed's dedup, without the map range).
	suite := profile.Suite(cfg.Arch.InC, cfg.Arch.InH, cfg.Arch.InW, cfg.Arch.Classes)
	r.prof = make([]*profile.DeviceProfile, len(cfg.Population.Profiles))
	for a, p := range cfg.Population.Profiles {
		for b := 0; b < a; b++ {
			if cfg.Population.Profiles[b].Model == p.Model {
				r.prof[a] = r.prof[b]
				break
			}
		}
		if r.prof[a] != nil {
			continue
		}
		dp, err := profile.BuildOffline(device.New(p), suite, profile.DefaultSizes)
		if err != nil {
			return nil, fmt.Errorf("fl: population: profiling %s: %w", p.Model, err)
		}
		// Prewarm the lazy step-2 fit so solver-path Predict calls never
		// take the fit-and-cache slow path mid-round.
		dp.Predict(cfg.Arch, cfg.ShardSize)
		r.prof[a] = dp
	}

	// Bind each slot's cost closure once; rounds only overwrite the
	// popCost fields the closure reads through the pointer.
	for i := range r.users {
		r.users[i].Cost = r.costs[i].predict
		r.uptrs[i] = &r.users[i]
	}
	if cfg.Trace != nil {
		r.rings = make([]*trace.Recorder, k)
		for i := range r.rings {
			r.rings[i] = trace.New(clientRingCapacity)
		}
	}
	return r, nil
}

// Round simulates one population round: sample the cohort, materialize
// its devices, schedule the shards, fan the device simulation out over
// the worker pool, and reduce the round statistics in one streaming pass
// post-join. Steady-state heap growth is O(selected) per round — nothing
// here scales with Population.N — and the emitted trace is bit-identical
// for any Workers value (per-slot rings drained in slot order after the
// join).
//
// fedlint:hotpath
// fedlint:deterministic
// fedlint:trace KindClientRound,KindRoundSummary,KindFault
func (r *PopulationRunner) Round(round int) (PopulationRound, error) {
	cfg := r.cfg
	pr := PopulationRound{Round: round, Straggler: -1}

	r.cohort = cfg.Sampler.Cohort(round, r.cohort)
	k := len(r.cohort)
	pr.Selected = k
	if k == 0 {
		// Nobody available (availability sampling at a dead hour): an
		// empty round, recorded as such.
		emitRoundTrace(cfg.Trace, nil, RoundStats{Round: round, Accuracy: -1, TrainLoss: -1}, -1)
		return pr, nil
	}

	// Materialize the cohort into the reusable slots (sequential: the
	// population hash chains and profile lookups are cheap).
	for i := 0; i < k; i++ {
		id := r.cohort[i]
		d := &r.devs[i]
		cfg.Population.Materialize(id, d)
		r.costs[i] = popCost{
			dp:    r.prof[cfg.Population.ArchetypeOf(id)],
			arch:  cfg.Arch,
			speed: cfg.Population.SpeedOf(id),
		}
		u := &r.users[i]
		u.CommSeconds = r.comm
		u.MeanFreqGHz = d.MeanFreqGHz()
		u.CapacityShards = 0
		if cfg.BatteryBudget > 0 {
			c := d.CapacityShards(cfg.Arch, cfg.ShardSize, cfg.BatteryBudget)
			if c < 1 {
				// CapacityShards ≤ 0 would mean "unlimited" to the
				// scheduler; a nearly-dead phone still carries one shard.
				c = 1
			}
			u.CapacityShards = c
		}
		if r.rings != nil {
			r.rings[i].Reset()
			d.Tracer = r.rings[i]
			d.TraceID = id
		}
	}

	req := &sched.Request{
		TotalShards: cfg.TotalShards,
		ShardSize:   cfg.ShardSize,
		Users:       r.uptrs[:k],
		Trace:       cfg.Trace,
	}
	asg, err := cfg.Scheduler.Schedule(req, r.rng)
	if err != nil {
		return pr, fmt.Errorf("fl: population round %d: %w", round, err)
	}
	pr.PredictedS = asg.PredictedMakespan

	// Device simulation fans out across the worker pool; each slot owns
	// its device, ring and result cells, so workers share nothing. Fault
	// draws are pure hashes of (round, client id), so evaluating them
	// inside the workers is order-independent.
	workers := workerCount(cfg.Workers, k)
	forEach(workers, k, func(i int) {
		d := &r.devs[i]
		samples := asg.Shards[i] * cfg.ShardSize
		r.spans[i] = 0
		r.crs[i] = ClientRound{
			ClientID: r.cohort[i], Samples: samples,
			BatteryFrac: d.BatteryRemaining(), Temperature: d.TempC,
		}
		if samples <= 0 {
			return
		}
		f := cfg.Faults.Fault(round, r.cohort[i])
		cr := &r.crs[i]
		cr.Fault = f.Kind
		e0 := d.EnergyJ
		th0 := d.Throttles
		switch f.Kind {
		case fault.Crash, fault.Battery:
			// Died Point of the way through its assignment: partial
			// compute spent, nothing transmitted.
			cr.ComputeS, _ = d.TrainSamples(cfg.Arch, int(f.Point*float64(samples)), cfg.BatchSize)
			if f.Kind == fault.Battery {
				d.DrainBattery()
			}
		case fault.LinkFlap:
			// Full assignment computed; the link dies Point of the way
			// through the (possibly degraded) model exchange.
			cr.ComputeS, _ = d.TrainSamples(cfg.Arch, samples, cfg.BatchSize)
			cr.CommS = f.Point * cfg.Link.Degraded(f.Slow).RoundTripTime(r.modelBytes)
		default:
			cr.ComputeS, _ = d.TrainSamples(cfg.Arch, samples, cfg.BatchSize)
			cr.CommS = cfg.Link.Degraded(f.Slow).RoundTripTime(r.modelBytes)
		}
		r.spans[i] = cr.ComputeS + cr.CommS
		cr.EnergyJ = d.EnergyJ - e0
		cr.Temperature = d.TempC
		cr.Throttles = d.Throttles - th0
		cr.BatteryFrac = d.BatteryRemaining()
	})

	// Quorum cut: collect surviving worked slots in (span, client id)
	// order and flag everything beyond the first Quorum as late. The
	// sorter and order scratch live on the runner, so the cut allocates
	// nothing.
	if cfg.Quorum > 0 {
		n := 0
		for i := 0; i < k; i++ {
			if r.crs[i].Samples > 0 && r.crs[i].Fault == fault.None {
				r.order[n] = i
				n++
			}
		}
		if n > cfg.Quorum {
			r.sorter.idx = r.order[:n]
			sort.Sort(&r.sorter)
			for _, i := range r.order[cfg.Quorum:n] {
				r.crs[i].Late = true
			}
		}
	}

	// Streaming reduction, one pass in slot order after the join.
	// Faulted and late slots never participate and do not extend the
	// makespan (the round closes without them); their wasted energy and
	// throttles still count.
	for i := 0; i < k; i++ {
		cr := &r.crs[i]
		if cr.Fault != fault.None {
			pr.Faulted++
		} else if cr.Late {
			pr.Late++
		} else if cr.Samples > 0 {
			pr.Participants++
			pr.Samples += cr.Samples
			if r.spans[i] > pr.MakespanS {
				pr.MakespanS = r.spans[i]
				pr.Straggler = cr.ClientID
			}
		}
		pr.EnergyJ += cr.EnergyJ
		pr.Throttles += cr.Throttles
	}
	if (cfg.MinParticipants > 0 && pr.Participants < cfg.MinParticipants) ||
		(pr.Participants == 0 && cfg.Faults.Active()) {
		pr.Failed = true
	}

	// Feed outcomes back to a failure-aware sampler, in slot order.
	if r.rep != nil {
		for i := 0; i < k; i++ {
			cr := &r.crs[i]
			if cr.Samples <= 0 {
				continue // unscheduled slots neither failed nor succeeded
			}
			if cr.Fault != fault.None {
				r.rep.ReportFailure(cr.ClientID, round)
			} else {
				r.rep.ReportSuccess(cr.ClientID)
			}
		}
	}

	if cfg.Trace != nil {
		emitRoundTrace(cfg.Trace, r.rings[:k], RoundStats{
			Round: round, Makespan: pr.MakespanS, Accuracy: -1, TrainLoss: -1,
			Clients: r.crs[:k], Failed: pr.Failed,
		}, pr.Straggler)
	}
	return pr, nil
}

// SimulatePopulationRounds builds a runner and simulates cfg.Rounds
// rounds. Same-seed runs are bit-identical (history and trace) for any
// Workers value. A mid-run scheduler error returns the completed rounds
// as a partial history alongside the error.
func SimulatePopulationRounds(cfg PopulationConfig) (*PopulationHistory, error) {
	r, err := NewPopulationRunner(cfg)
	if err != nil {
		return nil, err
	}
	hist := &PopulationHistory{Rounds: make([]PopulationRound, 0, r.cfg.Rounds)}
	for round := 0; round < r.cfg.Rounds; round++ {
		pr, err := r.Round(round)
		if err != nil {
			return hist, err
		}
		hist.Rounds = append(hist.Rounds, pr)
		hist.TotalSeconds += pr.MakespanS
		hist.TotalEnergyJ += pr.EnergyJ
	}
	return hist, nil
}
