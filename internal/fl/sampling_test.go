package fl

import (
	"bytes"
	"math/rand"
	"testing"

	"fedsched/internal/data"
	"fedsched/internal/sample"
	"fedsched/internal/trace"
)

// sampledRun executes a small FedAvg run with a uniform 3-of-6 sampler
// and returns the history and serialized trace.
func sampledRun(t *testing.T, workers int) (*History, []byte) {
	t.Helper()
	train, test := data.TrainTest(data.SMNISTConfig(0, 9), 600, 200)
	part := data.IIDEqual(train, 6, rand.New(rand.NewSource(3)))
	clients := clientsFromPartition(t, train, part)
	cfg := smallConfig(4)
	cfg.Workers = workers
	cfg.Sampler = sample.NewUniform(6, 3, 42)
	cfg.Trace = trace.New(0)
	hist, err := Run(cfg, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, cfg.Trace.Events()); err != nil {
		t.Fatal(err)
	}
	return hist, buf.Bytes()
}

func TestRunSamplerDeterministic(t *testing.T) {
	a, traceA := sampledRun(t, 1)
	b, traceB := sampledRun(t, 1)
	if a.FinalAccuracy != b.FinalAccuracy || a.TotalSeconds != b.TotalSeconds {
		t.Fatalf("sampled runs differ: acc %v vs %v, time %v vs %v",
			a.FinalAccuracy, b.FinalAccuracy, a.TotalSeconds, b.TotalSeconds)
	}
	if !bytes.Equal(traceA, traceB) {
		t.Fatal("sampled run traces differ across identical configs")
	}
	for _, rs := range a.Rounds {
		if len(rs.Clients) != 3 {
			t.Fatalf("round %d had %d participants, want cohort of 3", rs.Round, len(rs.Clients))
		}
	}
}

func TestRunSamplerWorkerInvariant(t *testing.T) {
	// The sampled-run contract matches the full-participation one: history
	// and trace are bit-identical for any Workers value.
	want, wantTrace := sampledRun(t, 1)
	for _, w := range []int{2, 8, -1} {
		got, gotTrace := sampledRun(t, w)
		if got.FinalAccuracy != want.FinalAccuracy {
			t.Fatalf("Workers=%d accuracy %v, want %v", w, got.FinalAccuracy, want.FinalAccuracy)
		}
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Fatalf("Workers=%d trace differs from sequential", w)
		}
	}
}

func TestRunSamplerRoundsDiffer(t *testing.T) {
	// Different rounds must draw different cohorts (with overwhelming
	// probability at 3-of-6 over 4 rounds) — a frozen cohort would mean
	// the round index is not reaching the sampler.
	hist, _ := sampledRun(t, 1)
	ids := func(rs RoundStats) [3]int {
		var out [3]int
		for i, cr := range rs.Clients {
			out[i] = cr.ClientID
		}
		return out
	}
	first := ids(hist.Rounds[0])
	varied := false
	for _, rs := range hist.Rounds[1:] {
		if ids(rs) != first {
			varied = true
		}
	}
	if !varied {
		t.Fatal("every round drew the identical cohort")
	}
}

func TestRunSamplerPopulationMismatch(t *testing.T) {
	train, _ := data.TrainTest(data.SMNISTConfig(0, 9), 300, 100)
	part := data.IIDEqual(train, 4, rand.New(rand.NewSource(3)))
	clients := clientsFromPartition(t, train, part)
	cfg := smallConfig(1)
	cfg.Sampler = sample.NewUniform(99, 3, 1)
	if _, err := Run(cfg, clients, nil); err == nil {
		t.Fatal("sampler population mismatch accepted")
	}
}

func TestGossipSamplerDeterministic(t *testing.T) {
	run := func(workers int) (*GossipHistory, []byte) {
		train, test := data.TrainTest(data.SMNISTConfig(0, 5), 600, 200)
		part := data.IIDEqual(train, 6, rand.New(rand.NewSource(4)))
		clients := clientsFromPartition(t, train, part)
		cfg := GossipConfig{Config: smallConfig(3)}
		cfg.Workers = workers
		cfg.Sampler = sample.NewUniform(6, 4, 7)
		cfg.Trace = trace.New(0)
		hist, err := RunGossip(cfg, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, cfg.Trace.Events()); err != nil {
			t.Fatal(err)
		}
		return hist, buf.Bytes()
	}
	a, traceA := run(1)
	b, traceB := run(4)
	if a.MeanAccuracy != b.MeanAccuracy || a.TotalSeconds != b.TotalSeconds {
		t.Fatalf("gossip sampled runs differ across Workers: %+v vs %+v", a, b)
	}
	if !bytes.Equal(traceA, traceB) {
		t.Fatal("gossip sampled traces differ across Workers")
	}
}

func TestAsyncSamplerRestrictsCohort(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 6), 600, 200)
	part := data.IIDEqual(train, 6, rand.New(rand.NewSource(5)))
	clients := clientsFromPartition(t, train, part)
	cfg := AsyncConfig{Config: smallConfig(1), MaxUpdates: 12}
	cfg.Sampler = sample.NewUniform(6, 2, 11)
	hist, err := RunAsync(cfg, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	// Only the 2 cohort members may have merged updates.
	contributors := 0
	for _, u := range hist.UpdatesPerClient {
		if u > 0 {
			contributors++
		}
	}
	if contributors == 0 || contributors > 2 {
		t.Fatalf("%d clients contributed updates, want 1-2 (cohort of 2)", contributors)
	}
	if hist.Updates != 12 {
		t.Fatalf("updates = %d, want 12", hist.Updates)
	}
}
