package fl

import (
	"math"
	"testing"

	"fedsched/internal/data"
	"fedsched/internal/nn"
)

func TestDivergedClientRejected(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 101), 400, 150)
	part := data.IIDEqual(train, 2, newTestRand())
	clients := clientsFromPartition(t, train, part)
	// Poison client 1's local data so its gradients explode immediately.
	poison := clients[1].Local.X.Data()
	for i := range poison {
		poison[i] = 1e154 // squares to +Inf in the loss
	}
	cfg := smallConfig(3)
	hist, err := Run(cfg, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	sawDiverged := false
	for _, r := range hist.Rounds {
		for _, cr := range r.Clients {
			if cr.ClientID == 1 && cr.Diverged {
				sawDiverged = true
			}
		}
	}
	if !sawDiverged {
		t.Fatal("poisoned client never flagged as diverged")
	}
	// The global model survives: finite weights and real accuracy from the
	// healthy client's data alone.
	if hasNonFinite(hist.Model) {
		t.Fatal("global model corrupted by diverged update")
	}
	if hist.FinalAccuracy < 0.5 || math.IsNaN(hist.FinalAccuracy) {
		t.Fatalf("accuracy %.3f — healthy client should still train the model", hist.FinalAccuracy)
	}
}

func TestLRScheduleApplied(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 102), 400, 150)
	run := func(sched nn.LRSchedule) float64 {
		part := data.IIDEqual(train, 2, newTestRand())
		clients := clientsFromPartition(t, train, part)
		cfg := smallConfig(4)
		cfg.LRSchedule = sched
		hist, err := Run(cfg, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		return hist.FinalAccuracy
	}
	// A zero-LR schedule must freeze learning at the initial (chance)
	// accuracy, proving the schedule actually drives the optimizer.
	frozen := run(nn.ConstantLR(0))
	if frozen > 0.3 {
		t.Fatalf("zero-LR run reached %.3f — schedule not applied", frozen)
	}
	trained := run(nn.StepDecayLR(0.02, 0.5, 2))
	if trained < 0.6 {
		t.Fatalf("decaying-LR run only reached %.3f", trained)
	}
}

func TestHasNonFinite(t *testing.T) {
	net := nn.MLP(4, 3, 2).Build(newTestRand())
	if hasNonFinite(net) {
		t.Fatal("fresh network flagged")
	}
	net.Params()[0].W.Data()[0] = math.Inf(-1)
	if !hasNonFinite(net) {
		t.Fatal("Inf weight missed")
	}
}
