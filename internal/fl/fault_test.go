package fl

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"fedsched/internal/data"
	"fedsched/internal/device"
	"fedsched/internal/fault"
	"fedsched/internal/sample"
	"fedsched/internal/trace"
)

func mustPlan(t *testing.T, spec string, seed int64) *fault.Plan {
	t.Helper()
	plan, err := fault.ParseSpec(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// traceRange serializes the recorder's events with from ≤ Round < to.
func traceRange(t *testing.T, rec *trace.Recorder, from, to int) []byte {
	t.Helper()
	var kept []trace.Event
	for _, e := range rec.Events() {
		if e.Round >= from && e.Round < to {
			kept = append(kept, e)
		}
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, kept); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func countFaultEvents(rec *trace.Recorder) int {
	n := 0
	for _, e := range rec.Events() {
		if e.Kind == trace.KindFault {
			n++
		}
	}
	return n
}

// faultyRun executes a 4-client FedAvg run under an aggressive fault
// plan with a quorum cut, returning the history and serialized trace.
func faultyRun(t *testing.T, workers int) (*History, []byte, int) {
	t.Helper()
	train, test := data.TrainTest(data.SMNISTConfig(0, 23), 600, 200)
	clients := parallelClients(t, train, 4, true)
	cfg := smallConfig(5)
	cfg.Workers = workers
	cfg.Faults = mustPlan(t, "crash=0.25,battery=0.05,flap=0.2,corrupt=0.15,degrade=0.3,slow=3", 17)
	cfg.Quorum = 3
	cfg.MinParticipants = 1
	cfg.Trace = trace.New(0)
	hist, err := Run(cfg, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, cfg.Trace.Events()); err != nil {
		t.Fatal(err)
	}
	return hist, buf.Bytes(), countFaultEvents(cfg.Trace)
}

// TestRunFaultsWorkerBitIdentical extends the engine's parallelism
// contract to faulty rounds: fault draws are keyed by (round, client),
// never by scheduling order, so any Workers value yields bit-identical
// histories and traces.
func TestRunFaultsWorkerBitIdentical(t *testing.T) {
	forceLanes(t, 4)
	want, wantTrace, faults := faultyRun(t, 1)
	if faults == 0 {
		t.Fatal("fault plan injected nothing — the scenario tests no fault path")
	}
	for _, w := range []int{2, 4, -1} {
		got, gotTrace, _ := faultyRun(t, w)
		requireSameHistory(t, want, got)
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Fatalf("Workers=%d trace differs from sequential under faults", w)
		}
	}
}

// TestRunFaultKindsObserved drives all four fault kinds through the
// synchronous engine and checks each is recorded on the victim's
// ClientRound.
func TestRunFaultKindsObserved(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 41), 600, 200)
	clients := parallelClients(t, train, 4, true)
	cfg := smallConfig(8)
	cfg.Faults = mustPlan(t, "crash=0.2,battery=0.2,flap=0.2,corrupt=0.2", 5)
	cfg.MinParticipants = 1
	hist, err := Run(cfg, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[fault.Kind]int{}
	for _, r := range hist.Rounds {
		for _, cr := range r.Clients {
			seen[cr.Fault]++
			if cr.Fault == fault.Crash || cr.Fault == fault.Battery || cr.Fault == fault.LinkFlap {
				if cr.TrainLoss != -1 {
					t.Fatalf("fatal fault %v carries a train loss %v, want -1 sentinel", cr.Fault, cr.TrainLoss)
				}
			}
		}
	}
	for _, k := range []fault.Kind{fault.Crash, fault.Battery, fault.LinkFlap, fault.Corrupt} {
		if seen[k] == 0 {
			t.Fatalf("fault kind %v never observed across %d rounds: %v", k, len(hist.Rounds), seen)
		}
	}
}

// TestRunQuorumMarksLate: with no faults and a quorum below the cohort
// size, every round closes after Quorum survivors and flags exactly the
// slowest remainder late.
func TestRunQuorumMarksLate(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 43), 600, 200)
	clients := parallelClients(t, train, 4, true)
	cfg := smallConfig(3)
	cfg.Quorum = 3
	hist, err := Run(cfg, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hist.Rounds {
		late := 0
		for _, cr := range r.Clients {
			if cr.Late {
				late++
				if cr.Fault != fault.None {
					t.Fatalf("round %d client %d is both late and faulted", r.Round, cr.ClientID)
				}
			}
		}
		if late != 1 {
			t.Fatalf("round %d flagged %d late clients, want exactly 1 (quorum 3 of 4)", r.Round, late)
		}
	}
}

// TestRunMinParticipantsRecordsFailedRounds: when every update is lost,
// the round is recorded as failed — NaN loss, sentinel accuracy, model
// unchanged — and the run continues instead of aborting.
func TestRunMinParticipantsRecordsFailedRounds(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 47), 400, 100)
	clients := parallelClients(t, train, 3, true)
	cfg := smallConfig(2)
	cfg.Faults = mustPlan(t, "crash=1", 1)
	cfg.MinParticipants = 1
	hist, err := Run(cfg, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rounds) != 2 {
		t.Fatalf("%d rounds recorded, want 2", len(hist.Rounds))
	}
	for _, r := range hist.Rounds {
		if !r.Failed {
			t.Fatalf("round %d with all updates lost not marked failed", r.Round)
		}
		if !math.IsNaN(r.TrainLoss) {
			t.Fatalf("failed round %d has loss %v, want NaN", r.Round, r.TrainLoss)
		}
		if r.Accuracy != -1 {
			t.Fatalf("failed round %d has accuracy %v, want -1 sentinel", r.Round, r.Accuracy)
		}
	}
}

// TestRunSecureAggMissingShares: under secure aggregation a lost cohort
// member makes the masked sum unrecoverable — the engine must fail the
// run loudly and still hand back the completed rounds.
func TestRunSecureAggMissingShares(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 53), 400, 100)
	clients := parallelClients(t, train, 4, true)
	cfg := smallConfig(6)
	cfg.SecureAgg = true
	cfg.Faults = mustPlan(t, "crash=0.5", 3)
	hist, err := Run(cfg, clients, test)
	if err == nil {
		t.Fatal("secure aggregation with lost members must fail the run")
	}
	if !strings.Contains(err.Error(), "secure aggregation") {
		t.Fatalf("error does not explain the mask loss: %v", err)
	}
	if hist == nil || hist.Model == nil {
		t.Fatal("mid-run failure must still return the partial history and model")
	}
}

func TestQuorumSecureAggIncompatible(t *testing.T) {
	train, _ := data.TrainTest(data.SMNISTConfig(0, 57), 200, 10)
	clients := parallelClients(t, train, 2, false)
	cfg := smallConfig(1)
	cfg.SecureAgg = true
	cfg.Quorum = 1
	if _, err := Run(cfg, clients, nil); err == nil {
		t.Fatal("Quorum with SecureAgg must be rejected at config time")
	}
}

// TestRunCooldownBenchesFaultyClients: a cooldown-wrapped sampler must
// keep a client that faulted in round r out of the next BaseRounds
// cohorts.
func TestRunCooldownBenchesFaultyClients(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 59), 600, 200)
	clients := parallelClients(t, train, 6, true)
	cfg := smallConfig(6)
	cfg.Sampler = sample.NewCooldown(sample.NewUniform(6, 6, 42), 2)
	cfg.Faults = mustPlan(t, "crash=0.5", 11)
	cfg.MinParticipants = 1
	hist, err := Run(cfg, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	selected := make([]map[int]bool, len(hist.Rounds))
	faulted := make([]map[int]bool, len(hist.Rounds))
	anyFault, anyBench := false, false
	for i, r := range hist.Rounds {
		selected[i], faulted[i] = map[int]bool{}, map[int]bool{}
		for _, cr := range r.Clients {
			selected[i][cr.ClientID] = true
			if cr.Fault != fault.None {
				faulted[i][cr.ClientID] = true
				anyFault = true
			}
		}
		if len(r.Clients) < 6 {
			anyBench = true
		}
	}
	if !anyFault {
		t.Fatal("fault plan injected nothing — cooldown never exercised")
	}
	if !anyBench {
		t.Fatal("no round ran with a reduced cohort — cooldown never filtered")
	}
	for r := range hist.Rounds {
		for id := range faulted[r] {
			// strikes=1 → banned for BaseRounds=2 rounds after the failure.
			for _, banned := range []int{r + 1, r + 2} {
				if banned < len(selected) && selected[banned][id] {
					t.Fatalf("client %d faulted in round %d but was selected again in round %d", id, r, banned)
				}
			}
		}
	}
}

// TestCheckpointRoundTrip pins the wire format: a checkpoint carrying
// NaN losses, fault flags and device state must survive
// Save → Load → Save byte-identically.
func TestCheckpointRoundTrip(t *testing.T) {
	ck := &Checkpoint{
		Seed: 7, Rounds: 5, NextRound: 3,
		Clients: []ClientCheckpoint{
			{ID: 0, Round: 3, HasDevice: true, Device: device.State{
				TempC: 41.5, FreqFactor: 0.8, BigOffline: true,
				NowSeconds: 123.4, EnergyJ: 55.5, Throttles: 2, Throttled: true,
			}},
			{ID: 1, Round: 2},
		},
		Cooldown: []sample.CooldownEntry{{Client: 4, Strikes: 2, Until: 9}},
		Model:    []byte{1, 2, 3, 4, 5},
		HistoryRounds: []RoundStats{{
			Round: 0, Makespan: 12.25, TrainLoss: math.NaN(), Accuracy: -1, Failed: true,
			Clients: []ClientRound{
				{ClientID: 1, Samples: 60, ComputeS: 1.5, CommS: 0.25, TrainLoss: -1,
					EnergyJ: 3.5, Temperature: 39, Throttles: 1, BatteryFrac: 0.75,
					Fault: fault.Crash},
				{ClientID: 0, Samples: 60, TrainLoss: 0.5, Late: true},
			},
		}},
		TotalSeconds: 99.5,
	}
	var first bytes.Buffer
	if err := ck.Save(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(loaded.HistoryRounds[0].TrainLoss) {
		t.Fatal("NaN loss did not survive the round trip")
	}
	if !loaded.HistoryRounds[0].Failed {
		t.Fatal("Failed flag did not survive the round trip")
	}
	if got := loaded.HistoryRounds[0].Clients[0].Fault; got != fault.Crash {
		t.Fatalf("fault kind %v after round trip, want %v", got, fault.Crash)
	}
	if !loaded.HistoryRounds[0].Clients[1].Late {
		t.Fatal("Late flag did not survive the round trip")
	}
	if loaded.Clients[0].Device != ck.Clients[0].Device {
		t.Fatalf("device state changed: %+v vs %+v", loaded.Clients[0].Device, ck.Clients[0].Device)
	}
	var second bytes.Buffer
	if err := loaded.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("Save → Load → Save is not byte-stable")
	}

	if _, err := LoadCheckpoint(strings.NewReader("definitely not a checkpoint")); err == nil {
		t.Fatal("garbage accepted as a checkpoint")
	}
	if _, err := LoadCheckpoint(bytes.NewReader(first.Bytes()[:first.Len()/2])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// TestCheckpointResumeBitIdentical is the acceptance scenario: a run is
// killed mid-flight (the checkpoint sink aborts it after the round-3
// snapshot), then resumed from the serialized snapshot with fresh
// clients — and must reproduce the uninterrupted run's history, final
// weights and trace bit-identically, with faults enabled, at two
// Workers values.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	forceLanes(t, 4)
	train, test := data.TrainTest(data.SMNISTConfig(0, 29), 600, 200)
	plan := mustPlan(t, "crash=0.2,flap=0.15,corrupt=0.1,degrade=0.3,slow=3", 23)
	errKilled := errors.New("killed")
	for _, workers := range []int{-1, 4} {
		mkCfg := func() Config {
			cfg := smallConfig(6)
			cfg.Workers = workers
			cfg.Faults = plan
			cfg.Quorum = 3
			cfg.MinParticipants = 1
			cfg.Trace = trace.New(0)
			return cfg
		}

		// Reference: the uninterrupted run.
		cfgA := mkCfg()
		histA, err := Run(cfgA, parallelClients(t, train, 4, true), test)
		if err != nil {
			t.Fatal(err)
		}

		// The killed run: snapshots every 2 rounds, dies after round 3.
		var snap []byte
		cfgB := mkCfg()
		cfgB.CheckpointEvery = 2
		cfgB.CheckpointSink = func(ck *Checkpoint) error {
			if ck.NextRound != 4 {
				return nil
			}
			var buf bytes.Buffer
			if err := ck.Save(&buf); err != nil {
				return err
			}
			snap = buf.Bytes()
			return errKilled
		}
		histB, err := Run(cfgB, parallelClients(t, train, 4, true), test)
		if err == nil || !errors.Is(err, errKilled) {
			t.Fatalf("Workers=%d: killed run returned err %v", workers, err)
		}
		if histB == nil || len(histB.Rounds) != 4 {
			t.Fatalf("Workers=%d: killed run must return the 4 completed rounds, got %+v", workers, histB)
		}
		for i := range histB.Rounds {
			ra, rb := histA.Rounds[i], histB.Rounds[i]
			if !eqFloat(ra.Makespan, rb.Makespan) || !eqFloat(ra.TrainLoss, rb.TrainLoss) || ra.Failed != rb.Failed {
				t.Fatalf("Workers=%d: partial round %d diverged: %+v vs %+v", workers, i, ra, rb)
			}
			for j := range ra.Clients {
				if ra.Clients[j] != rb.Clients[j] {
					t.Fatalf("Workers=%d: partial round %d client %d diverged", workers, i, j)
				}
			}
		}
		if !bytes.Equal(traceRange(t, cfgA.Trace, 0, 4), traceRange(t, cfgB.Trace, 0, 4)) {
			t.Fatalf("Workers=%d: killed run's trace diverged from the reference", workers)
		}

		// Resume from the serialized snapshot onto fresh clients.
		ck, err := LoadCheckpoint(bytes.NewReader(snap))
		if err != nil {
			t.Fatal(err)
		}
		cfgC := mkCfg()
		cfgC.Resume = ck
		histC, err := Run(cfgC, parallelClients(t, train, 4, true), test)
		if err != nil {
			t.Fatal(err)
		}
		requireSameHistory(t, histA, histC)
		if !bytes.Equal(traceRange(t, cfgA.Trace, 4, 6), traceRange(t, cfgC.Trace, 4, 6)) {
			t.Fatalf("Workers=%d: resumed trace diverged from the uninterrupted run", workers)
		}
	}
}

func TestResumeValidation(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 37), 200, 50)
	mk := func() ([]*Client, Config) {
		cfg := smallConfig(2)
		cfg.CheckpointEvery = 1
		return parallelClients(t, train, 2, false), cfg
	}
	var snap *Checkpoint
	clients, cfg := mk()
	cfg.CheckpointSink = func(ck *Checkpoint) error { snap = ck; return nil }
	if _, err := Run(cfg, clients, test); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("sink never called")
	}
	clients, cfg = mk()
	cfg.Seed = 999
	cfg.Resume = snap
	if _, err := Run(cfg, clients, test); err == nil {
		t.Fatal("resume with a mismatched seed must fail")
	}
	clients, cfg = mk()
	cfg.Rounds = 7
	cfg.Resume = snap
	if _, err := Run(cfg, clients, test); err == nil {
		t.Fatal("resume with mismatched rounds must fail")
	}
}

// TestGossipFaultsWorkerBitIdentical: the gossip engine's worker
// contract holds under faults — pair scheduling skips victims without
// perturbing the pairing RNG, so histories and traces stay
// bit-identical.
func TestGossipFaultsWorkerBitIdentical(t *testing.T) {
	forceLanes(t, 4)
	train, test := data.TrainTest(data.SMNISTConfig(0, 67), 600, 200)
	run := func(workers int) (float64, []byte, int) {
		clients := asyncClients(t, train, 4, true)
		cfg := GossipConfig{Config: smallConfig(5), Topology: Ring}
		cfg.Workers = workers
		cfg.Faults = mustPlan(t, "crash=0.2,flap=0.2,degrade=0.3", 13)
		cfg.Trace = trace.New(0)
		hist, err := RunGossip(cfg, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, cfg.Trace.Events()); err != nil {
			t.Fatal(err)
		}
		return hist.MeanAccuracy, buf.Bytes(), countFaultEvents(cfg.Trace)
	}
	wantAcc, wantTrace, faults := run(1)
	if faults == 0 {
		t.Fatal("fault plan injected nothing into the gossip run")
	}
	for _, w := range []int{2, -1} {
		acc, tr, _ := run(w)
		if acc != wantAcc {
			t.Fatalf("Workers=%d gossip accuracy %v, want %v", w, acc, wantAcc)
		}
		if !bytes.Equal(tr, wantTrace) {
			t.Fatalf("Workers=%d gossip trace differs under faults", w)
		}
	}
}

// TestAsyncFaultsDeterministic: faulted cycles burn virtual time and
// energy but never count as updates; the run still reaches MaxUpdates
// real merges and stays deterministic.
func TestAsyncFaultsDeterministic(t *testing.T) {
	train, test := data.TrainTest(data.SMNISTConfig(0, 63), 400, 100)
	run := func() (*AsyncHistory, int) {
		clients := asyncClients(t, train, 3, true)
		cfg := AsyncConfig{Config: smallConfig(0), MaxUpdates: 12}
		cfg.Faults = mustPlan(t, "crash=0.25,flap=0.2,corrupt=0.2,degrade=0.3", 19)
		cfg.Trace = trace.New(0)
		hist, err := RunAsync(cfg, clients, test)
		if err != nil {
			t.Fatal(err)
		}
		return hist, countFaultEvents(cfg.Trace)
	}
	a, faults := run()
	if faults == 0 {
		t.Fatal("fault plan injected nothing into the async run")
	}
	if a.Updates != 12 {
		t.Fatalf("async run merged %d updates, want 12 — faulted cycles must not count", a.Updates)
	}
	b, _ := run()
	if a.FinalAccuracy != b.FinalAccuracy || a.VirtualSeconds != b.VirtualSeconds ||
		a.TotalEnergyJ != b.TotalEnergyJ {
		t.Fatalf("nondeterministic faulty async run: %+v vs %+v", a, b)
	}
}

// TestPopulationFaultsWorkerInvariant: the population runner's trace
// stays byte-identical for any Workers value with faults, a quorum cut
// and failed-round tolerance all active.
func TestPopulationFaultsWorkerInvariant(t *testing.T) {
	run := func(workers int) ([]PopulationRound, []byte) {
		cfg := popConfig(10_000, 16, 3)
		cfg.Workers = workers
		cfg.Faults = mustPlan(t, "crash=0.2,battery=0.05,flap=0.15,corrupt=0.1,degrade=0.3", 31)
		cfg.Quorum = 10
		cfg.MinParticipants = 2
		cfg.Trace = trace.New(0)
		hist, err := SimulatePopulationRounds(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, cfg.Trace.Events()); err != nil {
			t.Fatal(err)
		}
		return hist.Rounds, buf.Bytes()
	}
	wantRounds, wantTrace := run(1)
	faulted, late := 0, 0
	for _, r := range wantRounds {
		faulted += r.Faulted
		late += r.Late
		if r.Participants > 10 {
			t.Fatalf("round %d aggregated %d participants past quorum 10", r.Round, r.Participants)
		}
	}
	if faulted == 0 {
		t.Fatal("fault plan injected nothing at population scale")
	}
	for _, w := range []int{4, -1} {
		gotRounds, gotTrace := run(w)
		for i := range wantRounds {
			if wantRounds[i] != gotRounds[i] {
				t.Fatalf("Workers=%d round %d differs: %+v vs %+v", w, i, wantRounds[i], gotRounds[i])
			}
		}
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Fatalf("Workers=%d population trace differs under faults", w)
		}
	}
	_ = late
}

// TestPopulationFailedRounds: a fully-decimated population round is
// recorded as failed and the simulation carries on.
func TestPopulationFailedRounds(t *testing.T) {
	cfg := popConfig(5_000, 8, 2)
	cfg.Faults = mustPlan(t, "crash=1", 1)
	cfg.MinParticipants = 1
	hist, err := SimulatePopulationRounds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rounds) != 2 {
		t.Fatalf("%d rounds recorded, want 2", len(hist.Rounds))
	}
	for _, r := range hist.Rounds {
		if !r.Failed {
			t.Fatalf("round %d lost every update but is not marked failed: %+v", r.Round, r)
		}
		if r.Faulted != r.Selected {
			t.Fatalf("round %d: %d faulted of %d selected under crash=1", r.Round, r.Faulted, r.Selected)
		}
	}
}
