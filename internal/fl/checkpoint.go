package fl

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fedsched/internal/device"
	"fedsched/internal/fault"
	"fedsched/internal/nn"
	"fedsched/internal/sample"
	"fedsched/internal/tensor"
)

// Checkpoint is a resumable snapshot of a synchronous run, taken between
// rounds (Config.CheckpointEvery/CheckpointSink) and fed back through
// Config.Resume. It captures everything the next round depends on: the
// global model, each client's training-round counter (which drives both
// the LR schedule and the RNG-replay below) and device state, the
// sampler's failure-backoff state, and the history so far.
//
// Client RNGs are not serialized. Each client's stream is re-derived on
// resume by reseeding with the run formula and replaying one dataset
// shuffle per completed training round — which restores both the RNG
// position and the in-place shard order. Resume therefore requires
// freshly-constructed clients whose datasets are in original order, plus
// the exact Config (seed, rounds, precision …) of the checkpointed run.
//
// The wire format is binary (Save/Load): float64 fields round-trip by
// bit pattern, so NaN losses from failed rounds and the run's exact
// float state survive — resuming reproduces the uninterrupted run's
// history and trace bit-identically at any Workers value.
type Checkpoint struct {
	// Seed and Rounds echo the Config for resume-time validation.
	Seed   int64
	Rounds int
	// NextRound is the first round the resumed run executes.
	NextRound int
	// Clients holds per-client state in active-client order.
	Clients []ClientCheckpoint
	// Cooldown is the failure-backoff state of a *sample.Cooldown
	// sampler (nil otherwise).
	Cooldown []sample.CooldownEntry
	// Model is the global model serialized with nn.SaveWeights.
	Model []byte
	// HistoryRounds and TotalSeconds are the history completed so far.
	// TotalEnergyJ is not stored: it is recomputed from the restored
	// devices at run end.
	HistoryRounds []RoundStats
	TotalSeconds  float64
}

// ClientCheckpoint is one client's resumable state.
type ClientCheckpoint struct {
	ID int
	// Round is the number of training rounds the client completed
	// (= shuffles to replay on resume).
	Round     int
	HasDevice bool
	Device    device.State
}

const (
	checkpointMagic   uint64 = 0x46444c434b505431 // "FDLCKPT1"
	checkpointVersion uint32 = 1
	// checkpointMaxCount bounds every length field read from the wire so
	// a corrupted header cannot drive huge allocations.
	checkpointMaxCount = 1 << 31
)

type ckWriter struct {
	w   io.Writer
	err error
}

func (c *ckWriter) u64(v uint64) {
	if c.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, c.err = c.w.Write(b[:])
}

func (c *ckWriter) i64(v int64)   { c.u64(uint64(v)) }
func (c *ckWriter) f64(v float64) { c.u64(math.Float64bits(v)) }

func (c *ckWriter) u8(v uint8) {
	if c.err != nil {
		return
	}
	_, c.err = c.w.Write([]byte{v})
}

func (c *ckWriter) boolv(v bool) {
	if v {
		c.u8(1)
	} else {
		c.u8(0)
	}
}

type ckReader struct {
	r   io.Reader
	err error
}

func (c *ckReader) u64() uint64 {
	if c.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(c.r, b[:]); err != nil {
		c.err = err
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

func (c *ckReader) i64() int64   { return int64(c.u64()) }
func (c *ckReader) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *ckReader) u8() uint8 {
	if c.err != nil {
		return 0
	}
	var b [1]byte
	if _, err := io.ReadFull(c.r, b[:]); err != nil {
		c.err = err
		return 0
	}
	return b[0]
}

func (c *ckReader) boolv() bool { return c.u8() != 0 }

// count reads a length field and bounds it.
func (c *ckReader) count(what string) int {
	n := c.i64()
	if c.err == nil && (n < 0 || n > checkpointMaxCount) {
		c.err = fmt.Errorf("fl: checkpoint %s count %d out of range", what, n)
	}
	return int(n)
}

// Save serializes the checkpoint. The format is fixed-width
// little-endian binary; float64 fields are written by bit pattern, so
// NaNs (failed rounds) and exact float state survive the round trip.
func (ck *Checkpoint) Save(w io.Writer) error {
	cw := &ckWriter{w: w}
	cw.u64(checkpointMagic)
	cw.u64(uint64(checkpointVersion))
	cw.i64(ck.Seed)
	cw.i64(int64(ck.Rounds))
	cw.i64(int64(ck.NextRound))
	cw.i64(int64(len(ck.Clients)))
	for _, cs := range ck.Clients {
		cw.i64(int64(cs.ID))
		cw.i64(int64(cs.Round))
		cw.boolv(cs.HasDevice)
		cw.f64(cs.Device.TempC)
		cw.f64(cs.Device.FreqFactor)
		cw.boolv(cs.Device.BigOffline)
		cw.f64(cs.Device.NowSeconds)
		cw.f64(cs.Device.EnergyJ)
		cw.i64(int64(cs.Device.Throttles))
		cw.boolv(cs.Device.Throttled)
	}
	cw.i64(int64(len(ck.Cooldown)))
	for _, e := range ck.Cooldown {
		cw.i64(int64(e.Client))
		cw.i64(int64(e.Strikes))
		cw.i64(int64(e.Until))
	}
	cw.i64(int64(len(ck.Model)))
	if cw.err == nil && len(ck.Model) > 0 {
		_, cw.err = w.Write(ck.Model)
	}
	cw.i64(int64(len(ck.HistoryRounds)))
	for i := range ck.HistoryRounds {
		rs := &ck.HistoryRounds[i]
		cw.i64(int64(rs.Round))
		cw.f64(rs.Makespan)
		cw.f64(rs.TrainLoss)
		cw.f64(rs.Accuracy)
		cw.boolv(rs.Failed)
		cw.i64(int64(len(rs.Clients)))
		for _, cr := range rs.Clients {
			cw.i64(int64(cr.ClientID))
			cw.i64(int64(cr.Samples))
			cw.f64(cr.ComputeS)
			cw.f64(cr.CommS)
			cw.f64(cr.TrainLoss)
			cw.f64(cr.EnergyJ)
			cw.f64(cr.Temperature)
			cw.i64(int64(cr.Throttles))
			cw.f64(cr.BatteryFrac)
			cw.boolv(cr.Dropped)
			cw.boolv(cr.Diverged)
			cw.u8(uint8(cr.Fault))
			cw.boolv(cr.Late)
		}
	}
	cw.f64(ck.TotalSeconds)
	return cw.err
}

// LoadCheckpoint deserializes a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	cr := &ckReader{r: r}
	if m := cr.u64(); cr.err == nil && m != checkpointMagic {
		return nil, fmt.Errorf("fl: not a run checkpoint (magic %#x)", m)
	}
	if v := cr.u64(); cr.err == nil && v != uint64(checkpointVersion) {
		return nil, fmt.Errorf("fl: unsupported checkpoint version %d", v)
	}
	ck := &Checkpoint{}
	ck.Seed = cr.i64()
	ck.Rounds = int(cr.i64())
	ck.NextRound = int(cr.i64())
	nc := cr.count("client")
	if cr.err != nil {
		return nil, cr.err
	}
	ck.Clients = make([]ClientCheckpoint, nc)
	for i := range ck.Clients {
		cs := &ck.Clients[i]
		cs.ID = int(cr.i64())
		cs.Round = int(cr.i64())
		cs.HasDevice = cr.boolv()
		cs.Device.TempC = cr.f64()
		cs.Device.FreqFactor = cr.f64()
		cs.Device.BigOffline = cr.boolv()
		cs.Device.NowSeconds = cr.f64()
		cs.Device.EnergyJ = cr.f64()
		cs.Device.Throttles = int(cr.i64())
		cs.Device.Throttled = cr.boolv()
	}
	ncd := cr.count("cooldown")
	if cr.err != nil {
		return nil, cr.err
	}
	if ncd > 0 {
		ck.Cooldown = make([]sample.CooldownEntry, ncd)
		for i := range ck.Cooldown {
			ck.Cooldown[i].Client = int(cr.i64())
			ck.Cooldown[i].Strikes = int(cr.i64())
			ck.Cooldown[i].Until = int(cr.i64())
		}
	}
	nm := cr.count("model-byte")
	if cr.err != nil {
		return nil, cr.err
	}
	ck.Model = make([]byte, nm)
	if cr.err == nil {
		_, cr.err = io.ReadFull(cr.r, ck.Model)
	}
	nr := cr.count("history-round")
	if cr.err != nil {
		return nil, cr.err
	}
	if nr > 0 {
		ck.HistoryRounds = make([]RoundStats, nr)
	}
	for i := range ck.HistoryRounds {
		rs := &ck.HistoryRounds[i]
		rs.Round = int(cr.i64())
		rs.Makespan = cr.f64()
		rs.TrainLoss = cr.f64()
		rs.Accuracy = cr.f64()
		rs.Failed = cr.boolv()
		ncr := cr.count("client-round")
		if cr.err != nil {
			return nil, cr.err
		}
		if ncr > 0 {
			rs.Clients = make([]ClientRound, ncr)
		}
		for j := range rs.Clients {
			c := &rs.Clients[j]
			c.ClientID = int(cr.i64())
			c.Samples = int(cr.i64())
			c.ComputeS = cr.f64()
			c.CommS = cr.f64()
			c.TrainLoss = cr.f64()
			c.EnergyJ = cr.f64()
			c.Temperature = cr.f64()
			c.Throttles = int(cr.i64())
			c.BatteryFrac = cr.f64()
			c.Dropped = cr.boolv()
			c.Diverged = cr.boolv()
			c.Fault = fault.Kind(cr.u8())
			c.Late = cr.boolv()
		}
	}
	ck.TotalSeconds = cr.f64()
	if cr.err != nil {
		return nil, fmt.Errorf("fl: truncated or corrupt checkpoint: %w", cr.err)
	}
	return ck, nil
}

// buildCheckpoint snapshots the run after `next-1` rounds completed.
func buildCheckpoint(cfg Config, active []*Client, global *nn.Network, globalW []*tensor.Tensor, hist *History, next int) (*Checkpoint, error) {
	global.SetWeights(globalW)
	var buf bytes.Buffer
	if err := global.SaveWeights(&buf); err != nil {
		return nil, fmt.Errorf("serialize model: %w", err)
	}
	ck := &Checkpoint{
		Seed:      cfg.Seed,
		Rounds:    cfg.Rounds,
		NextRound: next,
		Model:     buf.Bytes(),
		// Past RoundStats are append-only; copying the slice header
		// detaches the checkpoint from future appends.
		HistoryRounds: append([]RoundStats(nil), hist.Rounds...),
		TotalSeconds:  hist.TotalSeconds,
	}
	ck.Clients = make([]ClientCheckpoint, len(active))
	for i, c := range active {
		ck.Clients[i] = ClientCheckpoint{ID: c.ID, Round: c.round}
		if c.Device != nil {
			ck.Clients[i].HasDevice = true
			ck.Clients[i].Device = c.Device.Snapshot()
		}
	}
	if cd, ok := cfg.Sampler.(*sample.Cooldown); ok {
		ck.Cooldown = cd.Snapshot()
	}
	return ck, nil
}

// resumeRun restores a checkpointed run onto freshly-initialized clients
// (Run has already reseeded their RNGs and trainers) and returns the
// next round to execute.
func resumeRun(cfg Config, active []*Client, global *nn.Network, hist *History) (int, error) {
	ck := cfg.Resume
	if ck.Seed != cfg.Seed {
		return 0, fmt.Errorf("fl: resume: checkpoint seed %d != config seed %d", ck.Seed, cfg.Seed)
	}
	if ck.Rounds != cfg.Rounds {
		return 0, fmt.Errorf("fl: resume: checkpoint rounds %d != config rounds %d", ck.Rounds, cfg.Rounds)
	}
	if len(ck.Clients) != len(active) {
		return 0, fmt.Errorf("fl: resume: checkpoint has %d clients, run has %d", len(ck.Clients), len(active))
	}
	if ck.NextRound < 0 || ck.NextRound > cfg.Rounds {
		return 0, fmt.Errorf("fl: resume: next round %d outside [0, %d]", ck.NextRound, cfg.Rounds)
	}
	if err := global.LoadWeights(bytes.NewReader(ck.Model)); err != nil {
		return 0, fmt.Errorf("fl: resume: restore model: %w", err)
	}
	for i, cs := range ck.Clients {
		c := active[i]
		if c.ID != cs.ID {
			return 0, fmt.Errorf("fl: resume: client %d is id %d, checkpoint has %d", i, c.ID, cs.ID)
		}
		c.round = cs.Round
		// Replaying one shuffle per completed training round restores
		// both the RNG stream position and the in-place shard order —
		// which is why resume requires pristine, freshly-loaded datasets.
		for r := 0; r < cs.Round; r++ {
			c.Local.Shuffle(c.rng)
		}
		if cs.HasDevice {
			if c.Device == nil {
				return 0, fmt.Errorf("fl: resume: client %d has no device but checkpoint does", c.ID)
			}
			c.Device.Restore(cs.Device)
		}
	}
	if cd, ok := cfg.Sampler.(*sample.Cooldown); ok {
		cd.Restore(ck.Cooldown)
	}
	hist.Rounds = append(hist.Rounds, ck.HistoryRounds...)
	hist.TotalSeconds = ck.TotalSeconds
	return ck.NextRound, nil
}
