package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteMaxMatching enumerates assignments recursively (test oracle for
// small graphs).
func bruteMaxMatching(nLeft, nRight int, adj [][]int) int {
	usedR := make([]bool, nRight)
	var rec func(u int) int
	rec = func(u int) int {
		if u == nLeft {
			return 0
		}
		best := rec(u + 1) // leave u unmatched
		for _, v := range adj[u] {
			if !usedR[v] {
				usedR[v] = true
				if got := 1 + rec(u+1); got > best {
					best = got
				}
				usedR[v] = false
			}
		}
		return best
	}
	return rec(0)
}

func TestPerfectMatching(t *testing.T) {
	// Complete bipartite graph K₃,₃ has a perfect matching.
	adj := [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}
	size, matchL := HopcroftKarp(3, 3, adj)
	if size != 3 {
		t.Fatalf("size %d, want 3", size)
	}
	seen := map[int]bool{}
	for _, v := range matchL {
		if v < 0 || seen[v] {
			t.Fatalf("invalid matching %v", matchL)
		}
		seen[v] = true
	}
}

func TestNoEdges(t *testing.T) {
	size, matchL := HopcroftKarp(3, 3, [][]int{{}, {}, {}})
	if size != 0 {
		t.Fatalf("size %d, want 0", size)
	}
	for _, v := range matchL {
		if v != -1 {
			t.Fatal("unmatched vertices must be -1")
		}
	}
}

func TestAugmentingPathNeeded(t *testing.T) {
	// Greedy would match u0-v0 and strand u1; Hopcroft–Karp must find the
	// augmenting path.
	adj := [][]int{{0, 1}, {0}}
	size, matchL := HopcroftKarp(2, 2, adj)
	if size != 2 {
		t.Fatalf("size %d, want 2", size)
	}
	if matchL[0] != 1 || matchL[1] != 0 {
		t.Fatalf("matching %v, want [1 0]", matchL)
	}
}

func TestUnbalancedSides(t *testing.T) {
	adj := [][]int{{0}, {0}, {0}}
	size, _ := HopcroftKarp(3, 1, adj)
	if size != 1 {
		t.Fatalf("size %d, want 1", size)
	}
}

func TestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL, nR := 1+rng.Intn(7), 1+rng.Intn(7)
		adj := make([][]int, nL)
		for u := range adj {
			for v := 0; v < nR; v++ {
				if rng.Float64() < 0.4 {
					adj[u] = append(adj[u], v)
				}
			}
		}
		size, matchL := HopcroftKarp(nL, nR, adj)
		// Verify the matching is valid.
		seen := map[int]bool{}
		count := 0
		for u, v := range matchL {
			if v == -1 {
				continue
			}
			ok := false
			for _, w := range adj[u] {
				if w == v {
					ok = true
					break
				}
			}
			if !ok || seen[v] {
				return false
			}
			seen[v] = true
			count++
		}
		return count == size && size == bruteMaxMatching(nL, nR, adj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
