// Package matching implements Hopcroft–Karp maximum bipartite matching.
// The classic LBAP thresholding algorithm (Burkard et al. [23]) repeatedly
// tests for a perfect matching; Fed-LBAP avoids that test via Property 2,
// so this package serves as the reference solver's engine and as a test
// oracle.
package matching

// HopcroftKarp computes a maximum matching of the bipartite graph with
// nLeft left vertices and nRight right vertices, where adj[u] lists the
// right neighbours of left vertex u. It returns the matching size and the
// per-left-vertex match (−1 when unmatched), in O(E·√V).
func HopcroftKarp(nLeft, nRight int, adj [][]int) (int, []int) {
	const inf = int(^uint(0) >> 1)
	matchL := make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, nLeft)
	queue := make([]int, 0, nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	size := 0
	for bfs() {
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return size, matchL
}
