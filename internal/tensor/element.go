package tensor

// Float is the set of element types every kernel in this package is
// generic over. float64 is the reference precision (the federated
// engines aggregate in it unconditionally); float32 halves memory
// traffic and unlocks 4-wide SIMD in the micro-kernel, matching what
// real on-device training stacks (DL4J/OpenBLAS and successors) run.
type Float interface {
	~float32 | ~float64
}

// isF32 reports whether T is float32. The comparison is resolved per
// instantiation, so branches guarded by it fold to a constant.
func isF32[T Float]() bool {
	var z T
	_, ok := any(z).(float32)
	return ok
}

// Eps returns the practical elementwise comparison tolerance for T:
// kernels accumulate a few hundred to a few thousand terms, so tests
// comparing two algebraically-equal computations should allow roughly
// 1e4 ULPs of headroom — ≈1e-12 at float64, ≈1e-4 at float32. Hard-coded
// 1e-12 thresholds are f32-hostile; property tests parameterized over T
// must derive their tolerance from this instead.
func Eps[T Float]() float64 {
	if isF32[T]() {
		return 1e-4
	}
	return 1e-12
}
