package tensor

import "sync"

// parallelThreshold is the number of output elements above which MatMul
// fans out across goroutines. Small multiplies stay single-threaded to
// avoid scheduling overhead.
const parallelThreshold = 64 * 64

// parallelRows runs kernel over the row range [0, m) split across the
// caller plus as many extra lanes as the shared pool will give it (at
// most m−1). Each row is processed entirely by one goroutine with a
// fixed inner loop order, so the result is bit-identical no matter how
// many lanes were available — chunking only changes wall-clock time.
func parallelRows(m int, kernel func(i0, i1 int)) {
	extra := TryAcquireLanes(m - 1)
	if extra == 0 {
		kernel(0, m)
		return
	}
	parts := extra + 1
	chunk := (m + parts - 1) / parts
	var wg sync.WaitGroup
	for w := 1; w < parts; w++ {
		i0 := w * chunk
		i1 := i0 + chunk
		if i1 > m {
			i1 = m
		}
		if i0 >= i1 {
			break
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			kernel(i0, i1)
		}(i0, i1)
	}
	if chunk > 0 {
		kernel(0, min(chunk, m))
	}
	wg.Wait()
	ReleaseLanes(extra)
}

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n) and returns
// a new m×n tensor. It panics on shape mismatch.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic("tensor: MatMul inner dimension mismatch")
	}
	n := b.Dim(1)
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = A·B, overwriting dst. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if b.Dim(0) != k || dst.Dim(0) != m || dst.Dim(1) != n {
		panic("tensor: MatMulInto shape mismatch")
	}
	ad, bd, cd := a.data, b.data, dst.data
	for i := range cd {
		cd[i] = 0
	}
	rowKernel := func(i0, i1 int) {
		// i-k-j loop order: streams through B rows, autovectorizes well.
		for i := i0; i < i1; i++ {
			ci := cd[i*n : (i+1)*n]
			for l := 0; l < k; l++ {
				av := ad[i*k+l]
				if av == 0 {
					continue
				}
				bi := bd[l*n : (l+1)*n]
				for j, bv := range bi {
					ci[j] += av * bv
				}
			}
		}
	}
	if m*n < parallelThreshold || m < 2 {
		rowKernel(0, m)
		return
	}
	parallelRows(m, rowKernel)
}

// MatMulTransA computes C = Aᵀ·B where A is k×m and B is k×n, yielding m×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic("tensor: MatMulTransA inner dimension mismatch")
	}
	n := b.Dim(1)
	c := New(m, n)
	MatMulTransAInto(c, a, b)
	return c
}

// MatMulTransAInto computes dst = Aᵀ·B, overwriting dst. dst must be m×n.
func MatMulTransAInto(dst, a, b *Tensor) {
	k, m := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if b.Dim(0) != k || dst.Dim(0) != m || dst.Dim(1) != n {
		panic("tensor: MatMulTransAInto shape mismatch")
	}
	ad, bd, cd := a.data, b.data, dst.data
	for i := range cd {
		cd[i] = 0
	}
	for l := 0; l < k; l++ {
		arow := ad[l*m : (l+1)*m]
		brow := bd[l*n : (l+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			ci := cd[i*n : (i+1)*n]
			for j, bv := range brow {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A·Bᵀ where A is m×k and B is n×k, yielding m×n.
func MatMulTransB(a, b *Tensor) *Tensor {
	m := a.Dim(0)
	n := b.Dim(0)
	c := New(m, n)
	MatMulTransBInto(c, a, b)
	return c
}

// MatMulTransBInto computes dst = A·Bᵀ, overwriting dst. dst must be m×n.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(0)
	if b.Dim(1) != k || dst.Dim(0) != m || dst.Dim(1) != n {
		panic("tensor: MatMulTransBInto shape mismatch")
	}
	ad, bd, cd := a.data, b.data, dst.data
	kernel := func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			ai := ad[i*k : (i+1)*k]
			ci := cd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := bd[j*k : (j+1)*k]
				s := 0.0
				for l, av := range ai {
					s += av * bj[l]
				}
				ci[j] = s
			}
		}
	}
	if m*n < parallelThreshold || m < 2 {
		kernel(0, m)
		return
	}
	parallelRows(m, kernel)
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	m, n := a.Dim(0), a.Dim(1)
	t := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t.data[j*m+i] = a.data[i*n+j]
		}
	}
	return t
}
