package tensor

// Matrix-multiply entry points, generic over the element type. All three
// layouts (A·B, Aᵀ·B, A·Bᵀ) and the fused-epilogue variants route through
// the blocked, packed GEMM core in gemm.go; the original PR-1 loop
// kernels are retained below as unexported, single-threaded reference
// implementations — they serve as the small-shape fast path and as the
// ground truth for the blocked kernel's property tests.

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n) and returns
// a new m×n tensor. It panics on shape mismatch.
//
// fedlint:deterministic
func MatMul[T Float](a, b *TensorOf[T]) *TensorOf[T] {
	m, k := a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic("tensor: MatMul inner dimension mismatch")
	}
	n := b.Dim(1)
	c := NewOf[T](m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = A·B, overwriting dst. dst must be m×n.
//
// fedlint:hotpath
// fedlint:deterministic
func MatMulInto[T Float](dst, a, b *TensorOf[T]) {
	gemm(dst, a, b, false, false, epi[T]{})
}

// MatMulTransA computes C = Aᵀ·B where A is k×m and B is k×n, yielding m×n.
func MatMulTransA[T Float](a, b *TensorOf[T]) *TensorOf[T] {
	k, m := a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic("tensor: MatMulTransA inner dimension mismatch")
	}
	n := b.Dim(1)
	c := NewOf[T](m, n)
	MatMulTransAInto(c, a, b)
	return c
}

// MatMulTransAInto computes dst = Aᵀ·B, overwriting dst. dst must be m×n.
//
// fedlint:hotpath
// fedlint:deterministic
func MatMulTransAInto[T Float](dst, a, b *TensorOf[T]) {
	gemm(dst, a, b, true, false, epi[T]{})
}

// MatMulTransB computes C = A·Bᵀ where A is m×k and B is n×k, yielding m×n.
func MatMulTransB[T Float](a, b *TensorOf[T]) *TensorOf[T] {
	m := a.Dim(0)
	n := b.Dim(0)
	c := NewOf[T](m, n)
	MatMulTransBInto(c, a, b)
	return c
}

// MatMulTransBInto computes dst = A·Bᵀ, overwriting dst. dst must be m×n.
//
// fedlint:hotpath
// fedlint:deterministic
func MatMulTransBInto[T Float](dst, a, b *TensorOf[T]) {
	gemm(dst, a, b, false, true, epi[T]{})
}

// MatMulTransBBiasInto computes dst = A·Bᵀ + bias with the bias (length n)
// broadcast across rows, fused into the kernel epilogue — the forward pass
// of a dense layer in one call, with no separate zeroing or bias loop
// over dst.
//
// fedlint:hotpath
// fedlint:deterministic
func MatMulTransBBiasInto[T Float](dst, a, b, bias *TensorOf[T]) {
	gemm(dst, a, b, false, true, epi[T]{bias: bias.data})
}

// MatMulTransBBiasReLUInto computes dst = max(0, A·Bᵀ + bias), recording
// mask[i*n+j] = (pre-clamp value > 0) when mask is non-nil — the fused
// dense+bias+ReLU forward. mask must have at least m·n entries.
//
// fedlint:hotpath
// fedlint:deterministic
func MatMulTransBBiasReLUInto[T Float](dst, a, b, bias *TensorOf[T], mask []bool) {
	gemm(dst, a, b, false, true, epi[T]{bias: bias.data, relu: true, mask: mask})
}

// naiveMatMulInto is the PR-1 i-k-j kernel (single-threaded), kept as the
// reference implementation and the small-shape fast path.
func naiveMatMulInto[T Float](dst, a, b *TensorOf[T]) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if b.Dim(0) != k || dst.Dim(0) != m || dst.Dim(1) != n {
		panic("tensor: MatMulInto shape mismatch")
	}
	ad, bd, cd := a.data, b.data, dst.data
	for i := range cd {
		cd[i] = 0
	}
	for i := 0; i < m; i++ {
		ci := cd[i*n : (i+1)*n]
		for l := 0; l < k; l++ {
			av := ad[i*k+l]
			if av == 0 { //fedlint:allow floateq — exact-zero sparsity sentinel: skipping a true 0 never changes the sum
				continue
			}
			bi := bd[l*n : (l+1)*n]
			for j, bv := range bi {
				ci[j] += av * bv
			}
		}
	}
}

// naiveMatMulTransAInto is the PR-1 Aᵀ·B kernel (single-threaded), kept as
// the reference implementation and the small-shape fast path.
func naiveMatMulTransAInto[T Float](dst, a, b *TensorOf[T]) {
	k, m := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if b.Dim(0) != k || dst.Dim(0) != m || dst.Dim(1) != n {
		panic("tensor: MatMulTransAInto shape mismatch")
	}
	ad, bd, cd := a.data, b.data, dst.data
	for i := range cd {
		cd[i] = 0
	}
	for l := 0; l < k; l++ {
		arow := ad[l*m : (l+1)*m]
		brow := bd[l*n : (l+1)*n]
		for i, av := range arow {
			if av == 0 { //fedlint:allow floateq — exact-zero sparsity sentinel: skipping a true 0 never changes the sum
				continue
			}
			ci := cd[i*n : (i+1)*n]
			for j, bv := range brow {
				ci[j] += av * bv
			}
		}
	}
}

// naiveMatMulTransBInto is the PR-1 A·Bᵀ kernel (single-threaded), kept as
// the reference implementation and the small-shape fast path.
func naiveMatMulTransBInto[T Float](dst, a, b *TensorOf[T]) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(0)
	if b.Dim(1) != k || dst.Dim(0) != m || dst.Dim(1) != n {
		panic("tensor: MatMulTransBInto shape mismatch")
	}
	ad, bd, cd := a.data, b.data, dst.data
	for i := 0; i < m; i++ {
		ai := ad[i*k : (i+1)*k]
		ci := cd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := bd[j*k : (j+1)*k]
			var s T
			for l, av := range ai {
				s += av * bj[l]
			}
			ci[j] = s
		}
	}
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose[T Float](a *TensorOf[T]) *TensorOf[T] {
	m, n := a.Dim(0), a.Dim(1)
	t := NewOf[T](n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t.data[j*m+i] = a.data[i*n+j]
		}
	}
	return t
}
