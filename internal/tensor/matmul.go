package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the number of output elements above which MatMul
// fans out across goroutines. Small multiplies stay single-threaded to
// avoid scheduling overhead.
const parallelThreshold = 64 * 64

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n) and returns
// a new m×n tensor. It panics on shape mismatch.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic("tensor: MatMul inner dimension mismatch")
	}
	n := b.Dim(1)
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = A·B, overwriting dst. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if b.Dim(0) != k || dst.Dim(0) != m || dst.Dim(1) != n {
		panic("tensor: MatMulInto shape mismatch")
	}
	ad, bd, cd := a.data, b.data, dst.data
	for i := range cd {
		cd[i] = 0
	}
	rowKernel := func(i0, i1 int) {
		// i-k-j loop order: streams through B rows, autovectorizes well.
		for i := i0; i < i1; i++ {
			ci := cd[i*n : (i+1)*n]
			for l := 0; l < k; l++ {
				av := ad[i*k+l]
				if av == 0 {
					continue
				}
				bi := bd[l*n : (l+1)*n]
				for j, bv := range bi {
					ci[j] += av * bv
				}
			}
		}
	}
	if m*n < parallelThreshold || m < 2 {
		rowKernel(0, m)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		i0 := w * chunk
		i1 := i0 + chunk
		if i1 > m {
			i1 = m
		}
		if i0 >= i1 {
			break
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			rowKernel(i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}

// MatMulTransA computes C = Aᵀ·B where A is k×m and B is k×n, yielding m×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic("tensor: MatMulTransA inner dimension mismatch")
	}
	n := b.Dim(1)
	c := New(m, n)
	ad, bd, cd := a.data, b.data, c.data
	for l := 0; l < k; l++ {
		arow := ad[l*m : (l+1)*m]
		brow := bd[l*n : (l+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			ci := cd[i*n : (i+1)*n]
			for j, bv := range brow {
				ci[j] += av * bv
			}
		}
	}
	return c
}

// MatMulTransB computes C = A·Bᵀ where A is m×k and B is n×k, yielding m×n.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(0)
	if b.Dim(1) != k {
		panic("tensor: MatMulTransB inner dimension mismatch")
	}
	c := New(m, n)
	ad, bd, cd := a.data, b.data, c.data
	kernel := func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			ai := ad[i*k : (i+1)*k]
			ci := cd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := bd[j*k : (j+1)*k]
				s := 0.0
				for l, av := range ai {
					s += av * bj[l]
				}
				ci[j] = s
			}
		}
	}
	if m*n < parallelThreshold || m < 2 {
		kernel(0, m)
		return c
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		i0, i1 := w*chunk, (w+1)*chunk
		if i1 > m {
			i1 = m
		}
		if i0 >= i1 {
			break
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			kernel(i0, i1)
		}(i0, i1)
	}
	wg.Wait()
	return c
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	m, n := a.Dim(0), a.Dim(1)
	t := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t.data[j*m+i] = a.data[i*n+j]
		}
	}
	return t
}
