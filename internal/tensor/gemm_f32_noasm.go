//go:build !amd64

package tensor

import "unsafe"

// float32 production register tile on non-amd64 targets: the same 8×4
// block as the SSE kernel, computed by a scalar loop with the identical
// ascending-k schedule so results stay bit-identical across platforms.
const (
	f32MR = 8
	f32NR = 4
)

// microF32SIMD is the portable stand-in for the amd64 SSE kernel: one
// packed A micro-panel (8×kc, column-major) times one packed B
// micro-panel (kc×4, row-major) into the 8×4 accumulator tile at acc
// (row stride 4, fully overwritten). One rounding per multiply-add,
// strictly ascending k per output element — the exact operation sequence
// of the assembly version, per lane.
func microF32SIMD(kc int, ap, bp, acc *float32) {
	aps := unsafe.Slice(ap, kc*8)
	bps := unsafe.Slice(bp, kc*4)
	out := unsafe.Slice(acc, 32)
	var c [32]float32
	for l := 0; l < kc; l++ {
		b0, b1, b2, b3 := bps[l*4], bps[l*4+1], bps[l*4+2], bps[l*4+3]
		for r := 0; r < 8; r++ {
			a := aps[l*8+r]
			c[4*r] += a * b0
			c[4*r+1] += a * b1
			c[4*r+2] += a * b2
			c[4*r+3] += a * b3
		}
	}
	copy(out, c[:])
}
