//go:build amd64

package tensor

// float32 production register tile: 8×4. At four-byte elements a 128-bit
// XMM register holds one 4-wide row of the C tile, so the full 8×4 block
// lives in 8 registers (X0–X7) with X8 holding the broadcast B vector and
// one temporary per row — comfortably inside the 16-register SSE file,
// where the scalar candidates (8×2 with 18 live values, 4×4 with 24)
// spill. SSE2 is the amd64 baseline, so the kernel needs no CPUID
// gating. See BENCH_gemm.json "f32_tile_bakeoff" for the measured
// comparison against the scalar 4×2 / 8×2 / 4×4 tiles.
const (
	f32MR = 8
	f32NR = 4
)

// microF32SIMD multiplies one packed A micro-panel (8×kc, column-major)
// by one packed B micro-panel (kc×4, row-major) into the 8×4 accumulator
// tile at acc (row stride 4, fully overwritten). Each output element is
// summed in strictly ascending k order with one rounding per multiply-add
// (MULPS + ADDPS, no FMA), so results are bit-identical to the portable
// scalar loop in gemm_f32_noasm.go.
//
//go:noescape
func microF32SIMD(kc int, ap, bp, acc *float32)
