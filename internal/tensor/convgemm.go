package tensor

import "sync"

// Implicit-GEMM convolution. The im2col lowering turns a convolution
// into three GEMMs, but materializing the (N·OH·OW)×(C·KH·KW) patch
// matrix was the largest steady-state buffer in training (5 MB for
// LeNet conv2 at batch 20 — bigger than the model). The kernels here
// run the exact same blocked GEMMs against *virtual* im2col operands:
// the packing stage (which already copies every operand into
// micro-panels) synthesizes patch elements straight from the (N,C,H,W)
// input with on-the-fly offset arithmetic, so the patch matrix never
// exists in memory.
//
// Bit-compatibility with the materialized path is by construction, and
// property tests in conv_test.go pin it: the virtual packers produce the
// same panel contents as packA/packB over im2col output (padding reads
// as zero either way), the blocked core is shared, and the small-shape
// naive paths below replicate the exact loop order of the naive matmul
// kernels the old path dispatched to at the same (unchanged) volume
// cutoffs. Skipping an out-of-bounds term instead of adding a
// materialized 0·w is bit-safe: a +0-initialized accumulator never
// becomes -0 under round-to-nearest, so the ±0 contribution of a padded
// product cannot change any sum.

// convGeom is the geometry of one convolution: input (n,c,h,w), kernel
// (kh,kw), stride, pad, and the derived output size (oh,ow). It defines
// the virtual im2col matrix of shape (n·oh·ow, c·kh·kw) whose element
// (row=(img,oy,ox), col=(ch,ky,kx)) reads x[img, ch, oy·stride-pad+ky,
// ox·stride-pad+kx], or zero out of bounds.
type convGeom struct {
	n, c, h, w  int
	kh, kw      int
	stride, pad int
	oh, ow      int
}

func makeConvGeom(x []int, kh, kw, stride, pad int) convGeom {
	return convGeom{
		n: x[0], c: x[1], h: x[2], w: x[3],
		kh: kh, kw: kw, stride: stride, pad: pad,
		oh: ConvOutSize(x[2], kh, stride, pad),
		ow: ConvOutSize(x[3], kw, stride, pad),
	}
}

// rows and cols of the virtual im2col matrix.
func (g *convGeom) rows() int { return g.n * g.oh * g.ow }
func (g *convGeom) cols() int { return g.c * g.kh * g.kw }

// packAConv packs the mc×kc block at (i0, p0) of the virtual im2col
// matrix as column-major micro-panels of mr rows — the implicit
// counterpart of packA. Per micro-panel it decomposes the row indices
// into (image base, window origin) once, then walks the patch coordinate
// (ch, ky, kx) incrementally down the k range; out-of-bounds taps write
// the zero the materialized matrix would have held.
func packAConv[T Float](ap, xd []T, g *convGeom, i0, p0, mc, kc, mr int) {
	khw := g.kh * g.kw
	ohw := g.oh * g.ow
	chw := g.c * g.h * g.w
	hw := g.h * g.w
	idx := 0
	for ir := 0; ir < mc; ir += mr {
		rows := min(mr, mc-ir)
		var imgBase, iy0s, ix0s [gemmMaxMR]int
		for r := 0; r < rows; r++ {
			i := i0 + ir + r
			img := i / ohw
			rem := i - img*ohw
			oy := rem / g.ow
			ox := rem - oy*g.ow
			imgBase[r] = img * chw
			iy0s[r] = oy*g.stride - g.pad
			ix0s[r] = ox*g.stride - g.pad
		}
		ch := p0 / khw
		rem := p0 - ch*khw
		ky := rem / g.kw
		kx := rem - ky*g.kw
		for l := 0; l < kc; l++ {
			chOff := ch * hw
			for r := 0; r < rows; r++ {
				iy := iy0s[r] + ky
				ix := ix0s[r] + kx
				var v T
				if uint(iy) < uint(g.h) && uint(ix) < uint(g.w) {
					v = xd[imgBase[r]+chOff+iy*g.w+ix]
				}
				ap[idx+r] = v
			}
			for r := rows; r < mr; r++ {
				ap[idx+r] = 0
			}
			idx += mr
			kx++
			if kx == g.kw {
				kx = 0
				ky++
				if ky == g.kh {
					ky = 0
					ch++
				}
			}
		}
	}
}

// packBConv packs the kc×nc block at (p0, j0) of the virtual im2col
// matrix viewed as the B operand (row = position, column = patch
// coordinate) as row-major micro-panels of nr columns — the implicit
// counterpart of packB, used by the weight-gradient GEMM. Per micro-panel
// it decomposes the patch-coordinate columns once, then walks the
// position (img, oy, ox) incrementally down the k range.
func packBConv[T Float](bp, xd []T, g *convGeom, p0, j0, kc, nc, nr int) {
	khw := g.kh * g.kw
	ohw := g.oh * g.ow
	chw := g.c * g.h * g.w
	hw := g.h * g.w
	idx := 0
	for jr := 0; jr < nc; jr += nr {
		cols := min(nr, nc-jr)
		var chOffs, kys, kxs [gemmMaxNR]int
		for cj := 0; cj < cols; cj++ {
			j := j0 + jr + cj
			ch := j / khw
			rem := j - ch*khw
			kys[cj] = rem / g.kw
			kxs[cj] = rem - kys[cj]*g.kw
			chOffs[cj] = ch * hw
		}
		img := p0 / ohw
		rem := p0 - img*ohw
		oy := rem / g.ow
		ox := rem - oy*g.ow
		for l := 0; l < kc; l++ {
			iy0 := oy*g.stride - g.pad
			ix0 := ox*g.stride - g.pad
			base := img * chw
			for cj := 0; cj < cols; cj++ {
				iy := iy0 + kys[cj]
				ix := ix0 + kxs[cj]
				var v T
				if uint(iy) < uint(g.h) && uint(ix) < uint(g.w) {
					v = xd[base+chOffs[cj]+iy*g.w+ix]
				}
				bp[idx+cj] = v
			}
			for cj := cols; cj < nr; cj++ {
				bp[idx+cj] = 0
			}
			idx += nr
			ox++
			if ox == g.ow {
				ox = 0
				oy++
				if oy == g.oh {
					oy = 0
					img++
				}
			}
		}
	}
}

// ConvForwardInto computes the convolution forward pass
// ym = im2col(x)·Wᵀ + bias without materializing im2col(x). ym must be
// (N·OH·OW)×OutC (the NHWC-ordered matmul layout the conv layer
// re-permutes), x (N,C,H,W), w (OutC, C·KH·KW), bias length OutC.
//
// fedlint:hotpath
func ConvForwardInto[T Float](ym, x, w, bias *TensorOf[T], kh, kw, stride, pad int) {
	g := makeConvGeom(x.shape, kh, kw, stride, pad)
	m, kdim := g.rows(), g.cols()
	nOut := w.Dim(0)
	if w.Dim(1) != kdim {
		panic("tensor: ConvForwardInto weight shape mismatch")
	}
	if ym.Dim(0) != m || ym.Dim(1) != nOut {
		panic("tensor: ConvForwardInto output shape mismatch")
	}
	if bias.Len() != nOut {
		panic("tensor: ConvForwardInto bias length mismatch")
	}
	if m == 0 || nOut == 0 {
		return
	}
	e := epi[T]{bias: bias.data}
	if m*nOut*kdim <= gemmSmallCutoff {
		naiveConvForward(ym.data, x.data, w.data, &g, nOut)
		applyEpi(ym.data, nOut, 0, m, 0, nOut, e)
		return
	}
	mr, nr := microTile[T]()
	gemmBlockedOps(ym.data,
		packSrc[T]{d: x.data, geom: g, virt: true},
		packSrc[T]{d: w.data, rs: 1, cs: kdim},
		m, nOut, kdim, mr, nr, e)
}

// naiveConvForward replicates naiveMatMulTransBInto over the virtual
// im2col rows: per output element one dot product in ascending
// (ch, ky, kx) order, out-of-bounds taps skipped.
func naiveConvForward[T Float](ymd, xd, wd []T, g *convGeom, nOut int) {
	kdim := g.cols()
	hw := g.h * g.w
	i := 0
	for img := 0; img < g.n; img++ {
		base := img * g.c * hw
		for oy := 0; oy < g.oh; oy++ {
			for ox := 0; ox < g.ow; ox++ {
				iy0 := oy*g.stride - g.pad
				ix0 := ox*g.stride - g.pad
				ci := ymd[i*nOut : (i+1)*nOut]
				for j := 0; j < nOut; j++ {
					wj := wd[j*kdim : (j+1)*kdim]
					var s T
					idx := 0
					for ch := 0; ch < g.c; ch++ {
						chBase := base + ch*hw
						for ky := 0; ky < g.kh; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= g.h {
								idx += g.kw
								continue
							}
							srcRow := chBase + iy*g.w
							for kx := 0; kx < g.kw; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= g.w {
									idx++
									continue
								}
								s += xd[srcRow+ix] * wj[idx]
								idx++
							}
						}
					}
					ci[j] = s
				}
				i++
			}
		}
	}
}

// ConvGradWeightsInto computes the weight gradient dw = gmᵀ·im2col(x)
// without materializing im2col(x). dw must be (OutC, C·KH·KW) and is
// fully overwritten; gm is the (N·OH·OW)×OutC output gradient in matmul
// layout.
//
// fedlint:hotpath
func ConvGradWeightsInto[T Float](dw, gm, x *TensorOf[T], kh, kw, stride, pad int) {
	g := makeConvGeom(x.shape, kh, kw, stride, pad)
	pos, kdim := g.rows(), g.cols()
	nOut := gm.Dim(1)
	if gm.Dim(0) != pos {
		panic("tensor: ConvGradWeightsInto gradient shape mismatch")
	}
	if dw.Dim(0) != nOut || dw.Dim(1) != kdim {
		panic("tensor: ConvGradWeightsInto output shape mismatch")
	}
	if nOut == 0 || kdim == 0 {
		return
	}
	if pos == 0 {
		dw.Zero()
		return
	}
	if nOut*kdim*pos <= gemmSmallCutoff {
		naiveConvDW(dw.data, gm.data, x.data, &g, nOut)
		return
	}
	mr, nr := microTile[T]()
	gemmBlockedOps(dw.data,
		packSrc[T]{d: gm.data, rs: 1, cs: nOut},
		packSrc[T]{d: x.data, geom: g, virt: true},
		nOut, kdim, pos, mr, nr, epi[T]{})
}

// naiveConvDW replicates naiveMatMulTransAInto over the virtual im2col
// rows: positions outermost (ascending — the k reduction), the usual
// exact-zero skip on the gradient value, patch taps ascending within.
func naiveConvDW[T Float](dwd, gmd, xd []T, g *convGeom, nOut int) {
	kdim := g.cols()
	hw := g.h * g.w
	for i := range dwd {
		dwd[i] = 0
	}
	l := 0
	for img := 0; img < g.n; img++ {
		base := img * g.c * hw
		for oy := 0; oy < g.oh; oy++ {
			for ox := 0; ox < g.ow; ox++ {
				iy0 := oy*g.stride - g.pad
				ix0 := ox*g.stride - g.pad
				arow := gmd[l*nOut : (l+1)*nOut]
				for i, av := range arow {
					if av == 0 { //fedlint:allow floateq — exact-zero sparsity sentinel: skipping a true 0 never changes the sum
						continue
					}
					ci := dwd[i*kdim : (i+1)*kdim]
					idx := 0
					for ch := 0; ch < g.c; ch++ {
						chBase := base + ch*hw
						for ky := 0; ky < g.kh; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= g.h {
								idx += g.kw
								continue
							}
							srcRow := chBase + iy*g.w
							for kx := 0; kx < g.kw; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= g.w {
									idx++
									continue
								}
								ci[idx] += av * xd[srcRow+ix]
								idx++
							}
						}
					}
				}
				l++
			}
		}
	}
}

// convChunkElems bounds the pooled scratch for the input-gradient pass:
// the virtual patch-gradient matrix is computed and scattered in row
// chunks of at most this many elements (128 KB at f64), replacing the
// full materialized dcols buffer. Chunk boundaries cannot affect bits:
// every chunk element is one complete ascending-k dot product, and the
// scatter runs in the exact col2imInto order across chunks.
const convChunkElems = 1 << 14

// convScratch is the pooled chunk buffer for ConvGradInputInto, grown to
// the largest chunk a geometry needs and reused thereafter.
type convScratch[T Float] struct{ buf []T }

var convPool64 = sync.Pool{New: func() any { return &convScratch[float64]{} }}
var convPool32 = sync.Pool{New: func() any { return &convScratch[float32]{} }}

func convScratchPool[T Float]() *sync.Pool {
	if isF32[T]() {
		return &convPool32
	}
	return &convPool64
}

// ConvGradInputInto computes the input gradient dx = col2im(gm·W)
// without materializing the (N·OH·OW)×(C·KH·KW) patch-gradient matrix:
// row chunks of gm·W are computed into a bounded pooled buffer and
// scattered immediately, in the same global accumulation order as the
// materialized col2im. dx must be (N,C,H,W) and is fully overwritten.
//
// fedlint:hotpath
func ConvGradInputInto[T Float](dx, gm, w *TensorOf[T], kh, kw, stride, pad int) {
	g := makeConvGeom(dx.shape, kh, kw, stride, pad)
	pos, kdim := g.rows(), g.cols()
	nOut := w.Dim(0)
	if w.Dim(1) != kdim {
		panic("tensor: ConvGradInputInto weight shape mismatch")
	}
	if gm.Dim(0) != pos || gm.Dim(1) != nOut {
		panic("tensor: ConvGradInputInto gradient shape mismatch")
	}
	dx.Zero()
	if pos == 0 || kdim == 0 || nOut == 0 {
		return
	}
	chunk := max(1, convChunkElems/kdim)
	pool := convScratchPool[T]()
	s := pool.Get().(*convScratch[T])
	need := min(chunk, pos) * kdim
	if cap(s.buf) < need {
		s.buf = make([]T, need) //fedlint:allow hotalloc — grows once per conv geometry, pooled and reused thereafter
	}
	buf := s.buf[:need]
	mr, nr := microTile[T]()
	gmd, wd, dxd := gm.data, w.data, dx.data
	for r0 := 0; r0 < pos; r0 += chunk {
		rows := min(chunk, pos-r0)
		cbuf := buf[:rows*kdim]
		if rows*kdim*nOut <= gemmSmallCutoff {
			naiveRawAB(cbuf, gmd[r0*nOut:], wd, rows, kdim, nOut)
		} else {
			gemmBlockedOps(cbuf,
				packSrc[T]{d: gmd[r0*nOut:], rs: nOut, cs: 1},
				packSrc[T]{d: wd, rs: kdim, cs: 1},
				rows, kdim, nOut, mr, nr, epi[T]{})
		}
		convScatterChunk(dxd, cbuf, &g, r0, rows)
	}
	pool.Put(s)
}

// naiveRawAB is naiveMatMulInto over raw row-major slices: C(m×n) =
// A(m×k)·B(k×n) with the exact-zero row skip, i-k-j order.
func naiveRawAB[T Float](cd, ad, bd []T, m, n, k int) {
	for i := range cd[:m*n] {
		cd[i] = 0
	}
	for i := 0; i < m; i++ {
		ci := cd[i*n : (i+1)*n]
		for l := 0; l < k; l++ {
			av := ad[i*k+l]
			if av == 0 { //fedlint:allow floateq — exact-zero sparsity sentinel: skipping a true 0 never changes the sum
				continue
			}
			bi := bd[l*n : (l+1)*n]
			for j, bv := range bi {
				ci[j] += av * bv
			}
		}
	}
}

// convScatterChunk accumulates rows [r0, r0+rows) of the virtual
// patch-gradient matrix (held in buf) into dx, in col2imInto's order:
// ascending row, then ascending (ch, ky, kx), skipping padding taps.
func convScatterChunk[T Float](dxd, buf []T, g *convGeom, r0, rows int) {
	khw := g.kh * g.kw
	ohw := g.oh * g.ow
	chw := g.c * g.h * g.w
	hw := g.h * g.w
	kdim := g.c * khw
	for r := 0; r < rows; r++ {
		i := r0 + r
		img := i / ohw
		rem := i - img*ohw
		oy := rem / g.ow
		ox := rem - oy*g.ow
		iy0 := oy*g.stride - g.pad
		ix0 := ox*g.stride - g.pad
		base := img * chw
		idx := r * kdim
		for ch := 0; ch < g.c; ch++ {
			chBase := base + ch*hw
			for ky := 0; ky < g.kh; ky++ {
				iy := iy0 + ky
				if iy < 0 || iy >= g.h {
					idx += g.kw
					continue
				}
				dstRow := chBase + iy*g.w
				for kx := 0; kx < g.kw; kx++ {
					ix := ix0 + kx
					if ix < 0 || ix >= g.w {
						idx++
						continue
					}
					dxd[dstRow+ix] += buf[idx]
					idx++
				}
			}
		}
	}
}
