package tensor

// Materialized im2col lowering, retained as the unexported reference
// oracle for the implicit-GEMM convolution kernels (convgemm.go). The
// production path never builds these matrices any more — the blocked
// GEMM packs the same patch rows straight from the input tensor — but
// the property tests verify the implicit kernels element-for-element
// (and bit-for-bit at float64) against this lowering.

// im2col lowers a batch of images (N, C, H, W) into a matrix of patch
// columns so that a convolution with kernel (KH, KW), stride and padding
// becomes a single matrix multiply. The result has shape
// (N*OH*OW, C*KH*KW) where OH, OW are the output spatial dimensions.
func im2col[T Float](x *TensorOf[T], kh, kw, stride, pad int) *TensorOf[T] {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	cols := NewOf[T](n*oh*ow, c*kh*kw)
	im2colInto(cols, x, kh, kw, stride, pad)
	return cols
}

// im2colInto is im2col writing into a preallocated (N*OH*OW, C*KH*KW)
// matrix, zeroing it first (padded regions must read as zero).
func im2colInto[T Float](cols, x *TensorOf[T], kh, kw, stride, pad int) {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if cols.Dim(0) != n*oh*ow || cols.Dim(1) != c*kh*kw {
		panic("tensor: im2colInto shape mismatch")
	}
	cols.Zero()
	xd, cd := x.data, cols.data
	rowLen := c * kh * kw
	for img := 0; img < n; img++ {
		base := img * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := ((img*oh+oy)*ow + ox) * rowLen
				iy0 := oy*stride - pad
				ix0 := ox*stride - pad
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						dst := row + (ch*kh+ky)*kw
						if iy < 0 || iy >= h {
							continue // padded region stays zero
						}
						srcRow := chBase + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							cd[dst+kx] = xd[srcRow+ix]
						}
					}
				}
			}
		}
	}
}

// col2im is the adjoint of im2col: it scatters patch-column gradients back
// into an image gradient of shape (N, C, H, W), accumulating overlaps.
func col2im[T Float](cols *TensorOf[T], n, c, h, w, kh, kw, stride, pad int) *TensorOf[T] {
	x := NewOf[T](n, c, h, w)
	col2imInto(x, cols, kh, kw, stride, pad)
	return x
}

// col2imInto is col2im scattering into a preallocated (N, C, H, W)
// tensor, zeroing it first. The scatter order — ascending patch row,
// then ascending (channel, ky, kx) within the row — is the accumulation
// order the implicit-GEMM input-gradient kernel reproduces chunk by
// chunk (see ConvGradInputInto).
func col2imInto[T Float](x, cols *TensorOf[T], kh, kw, stride, pad int) {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	rowLen := c * kh * kw
	if cols.Dim(0) != n*oh*ow || cols.Dim(1) != rowLen {
		panic("tensor: col2imInto shape mismatch")
	}
	x.Zero()
	xd, cd := x.data, cols.data
	for img := 0; img < n; img++ {
		base := img * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := ((img*oh+oy)*ow + ox) * rowLen
				iy0 := oy*stride - pad
				ix0 := ox*stride - pad
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						src := row + (ch*kh+ky)*kw
						dstRow := chBase + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							xd[dstRow+ix] += cd[src+kx]
						}
					}
				}
			}
		}
	}
}

// ConvOutSize returns the output spatial size for input size in, kernel k,
// stride and padding.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
