package tensor

// Im2Col lowers a batch of images (N, C, H, W) into a matrix of patch
// columns so that a convolution with kernel (KH, KW), stride and padding
// becomes a single matrix multiply. The result has shape
// (N*OH*OW, C*KH*KW) where OH, OW are the output spatial dimensions.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	cols := New(n*oh*ow, c*kh*kw)
	Im2ColInto(cols, x, kh, kw, stride, pad)
	return cols
}

// Im2ColInto is Im2Col writing into a preallocated (N*OH*OW, C*KH*KW)
// matrix, zeroing it first (padded regions must read as zero). Reusing
// one cols tensor across batches removes the dominant allocation in the
// convolution hot path.
//
// fedlint:hotpath
func Im2ColInto(cols, x *Tensor, kh, kw, stride, pad int) {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if cols.Dim(0) != n*oh*ow || cols.Dim(1) != c*kh*kw {
		panic("tensor: Im2ColInto shape mismatch")
	}
	cols.Zero()
	xd, cd := x.data, cols.data
	rowLen := c * kh * kw
	for img := 0; img < n; img++ {
		base := img * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := ((img*oh+oy)*ow + ox) * rowLen
				iy0 := oy*stride - pad
				ix0 := ox*stride - pad
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						dst := row + (ch*kh+ky)*kw
						if iy < 0 || iy >= h {
							continue // padded region stays zero
						}
						srcRow := chBase + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							cd[dst+kx] = xd[srcRow+ix]
						}
					}
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters patch-column gradients back
// into an image gradient of shape (N, C, H, W), accumulating overlaps.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	x := New(n, c, h, w)
	Col2ImInto(x, cols, kh, kw, stride, pad)
	return x
}

// Col2ImInto is Col2Im scattering into a preallocated (N, C, H, W)
// tensor, zeroing it first.
//
// fedlint:hotpath
func Col2ImInto(x, cols *Tensor, kh, kw, stride, pad int) {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	rowLen := c * kh * kw
	if cols.Dim(0) != n*oh*ow || cols.Dim(1) != rowLen {
		panic("tensor: Col2ImInto shape mismatch")
	}
	x.Zero()
	xd, cd := x.data, cols.data
	for img := 0; img < n; img++ {
		base := img * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := ((img*oh+oy)*ow + ox) * rowLen
				iy0 := oy*stride - pad
				ix0 := ox*stride - pad
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						src := row + (ch*kh+ky)*kw
						dstRow := chBase + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							xd[dstRow+ix] += cd[src+kx]
						}
					}
				}
			}
		}
	}
}

// ConvOutSize returns the output spatial size for input size in, kernel k,
// stride and padding.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
