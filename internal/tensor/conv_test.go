package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// convCase is one point of the implicit-vs-im2col property grid,
// covering degenerate 1×1 kernels, edge padding (pad ≥ k/2 so whole
// patch rows are out of bounds), stride > 1, and multi-channel shapes
// large enough to cross the blocked-dispatch cutoff.
type convCase struct {
	n, c, h, w, f, k, stride, pad int
}

var convCases = []convCase{
	{2, 1, 8, 8, 3, 3, 1, 1},
	{1, 3, 7, 7, 4, 5, 1, 2},
	{2, 2, 9, 9, 2, 3, 2, 1},
	{1, 1, 5, 5, 1, 5, 1, 0},
	{1, 2, 6, 6, 3, 1, 1, 0},   // 1×1 kernel
	{2, 1, 4, 4, 2, 1, 2, 0},   // 1×1 kernel, stride 2
	{1, 1, 3, 3, 2, 3, 1, 2},   // pad > (k-1)/2: fully-padded border rows
	{3, 4, 12, 12, 6, 3, 1, 1}, // crosses the blocked-dispatch cutoff
	{2, 5, 10, 10, 8, 5, 2, 2},
}

// oracleConv runs the retained materialized path — im2col, the three
// plain GEMM entry points, col2im — exactly as the pre-implicit conv
// layer did, returning (ym+bias, dw, dx) for one (x, w, bias, gm).
func oracleConv[T Float](x, w, bias, gm *TensorOf[T], k, stride, pad int) (ym, dw, dx *TensorOf[T]) {
	cols := im2col(x, k, k, stride, pad)
	ym = NewOf[T](cols.Dim(0), w.Dim(0))
	MatMulTransBBiasInto(ym, cols, w, bias)
	dw = NewOf[T](w.Dim(0), w.Dim(1))
	MatMulTransAInto(dw, gm, cols)
	dcols := NewOf[T](cols.Dim(0), cols.Dim(1))
	MatMulInto(dcols, gm, w)
	dx = NewOf[T](x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3))
	col2imInto(dx, dcols, k, k, stride, pad)
	return ym, dw, dx
}

// implicitConv runs the three implicit-GEMM kernels on the same inputs.
func implicitConv[T Float](x, w, bias, gm *TensorOf[T], k, stride, pad int) (ym, dw, dx *TensorOf[T]) {
	oh := ConvOutSize(x.Dim(2), k, stride, pad)
	ow := ConvOutSize(x.Dim(3), k, stride, pad)
	m := x.Dim(0) * oh * ow
	ym = NewOf[T](m, w.Dim(0))
	ConvForwardInto(ym, x, w, bias, k, k, stride, pad)
	dw = NewOf[T](w.Dim(0), w.Dim(1))
	ConvGradWeightsInto(dw, gm, x, k, k, stride, pad)
	dx = NewOf[T](x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3))
	ConvGradInputInto(dx, gm, w, k, k, stride, pad)
	return ym, dw, dx
}

func bitsEqual[T Float](a, b *TensorOf[T]) (int, bool) {
	for i := range a.Data() {
		av, bv := float64(a.Data()[i]), float64(b.Data()[i])
		if math.Float64bits(av) != math.Float64bits(bv) {
			return i, false
		}
	}
	return 0, true
}

// testConvImplicitMatchesOracle pins the headline implicit-GEMM claim:
// forward, weight-gradient and input-gradient match the materialized
// im2col path bit-for-bit (not just within tolerance) on the whole
// geometry grid — virtual packing synthesizes the same panels, the
// blocked core and dispatch cutoffs are shared, and ±0 bookkeeping of
// padded taps cannot leak into any sum.
func testConvImplicitMatchesOracle[T Float](t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, tc := range convCases {
		x := randTensorOf[T](rng, tc.n, tc.c, tc.h, tc.w)
		w := randTensorOf[T](rng, tc.f, tc.c*tc.k*tc.k)
		bias := randTensorOf[T](rng, tc.f)
		oh := ConvOutSize(tc.h, tc.k, tc.stride, tc.pad)
		ow := ConvOutSize(tc.w, tc.k, tc.stride, tc.pad)
		gm := randTensorOf[T](rng, tc.n*oh*ow, tc.f)

		wantY, wantDW, wantDX := oracleConv(x, w, bias, gm, tc.k, tc.stride, tc.pad)
		gotY, gotDW, gotDX := implicitConv(x, w, bias, gm, tc.k, tc.stride, tc.pad)

		if i, ok := bitsEqual(wantY, gotY); !ok {
			t.Fatalf("case %+v: forward differs at %d: %g vs %g", tc, i, wantY.Data()[i], gotY.Data()[i])
		}
		if i, ok := bitsEqual(wantDW, gotDW); !ok {
			t.Fatalf("case %+v: dW differs at %d: %g vs %g", tc, i, wantDW.Data()[i], gotDW.Data()[i])
		}
		if i, ok := bitsEqual(wantDX, gotDX); !ok {
			t.Fatalf("case %+v: dX differs at %d: %g vs %g", tc, i, wantDX.Data()[i], gotDX.Data()[i])
		}
	}
}

func TestConvImplicitMatchesIm2ColOracle(t *testing.T) {
	t.Run("f64", testConvImplicitMatchesOracle[float64])
	t.Run("f32", testConvImplicitMatchesOracle[float32])
}

// TestConvImplicitBitIdenticalAcrossLanes mirrors the GEMM lane-
// determinism tests for the implicit conv kernels: a geometry big enough
// to fan out across lanes must produce bit-identical results for every
// lane count, in both precisions.
func TestConvImplicitBitIdenticalAcrossLanes(t *testing.T) {
	t.Run("f64", testConvLaneDeterminism[float64])
	t.Run("f32", testConvLaneDeterminism[float32])
}

func testConvLaneDeterminism[T Float](t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// Batch 8, 20→40 channels at 12×12, k=5: the forward GEMM is
	// 512×500×40 ≫ the parallel cutoff with multiple grid cells.
	n, c, h, wdt, f, k, stride, pad := 8, 20, 12, 12, 40, 5, 1, 0
	x := randTensorOf[T](rng, n, c, h, wdt)
	w := randTensorOf[T](rng, f, c*k*k)
	bias := randTensorOf[T](rng, f)
	oh := ConvOutSize(h, k, stride, pad)
	ow := ConvOutSize(wdt, k, stride, pad)
	gm := randTensorOf[T](rng, n*oh*ow, f)

	var refY, refDW, refDX *TensorOf[T]
	withLanes(t, 0, func() { refY, refDW, refDX = implicitConv(x, w, bias, gm, k, stride, pad) })
	for _, lanes := range []int{1, 2, 3, 8} {
		var gotY, gotDW, gotDX *TensorOf[T]
		withLanes(t, lanes, func() { gotY, gotDW, gotDX = implicitConv(x, w, bias, gm, k, stride, pad) })
		if i, ok := bitsEqual(refY, gotY); !ok {
			t.Fatalf("lanes=%d: forward differs at %d", lanes, i)
		}
		if i, ok := bitsEqual(refDW, gotDW); !ok {
			t.Fatalf("lanes=%d: dW differs at %d", lanes, i)
		}
		if i, ok := bitsEqual(refDX, gotDX); !ok {
			t.Fatalf("lanes=%d: dX differs at %d", lanes, i)
		}
	}
}

// TestConvGradInputChunkBoundaries forces several chunk sizes through
// odd kdim values (kdim not dividing convChunkElems) and kdim larger
// than one chunk, so the chunked scatter's bookkeeping at both ends is
// covered.
func TestConvGradInputChunkBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, tc := range []convCase{
		{1, 7, 9, 9, 3, 3, 1, 1},   // kdim=63: 16384/63 = 260 rows per chunk, m=81 → single short chunk
		{4, 6, 17, 17, 2, 5, 2, 2}, // kdim=150, m=324: multiple chunks with ragged tail
	} {
		w := randTensorOf[float64](rng, tc.f, tc.c*tc.k*tc.k)
		oh := ConvOutSize(tc.h, tc.k, tc.stride, tc.pad)
		ow := ConvOutSize(tc.w, tc.k, tc.stride, tc.pad)
		gm := randTensorOf[float64](rng, tc.n*oh*ow, tc.f)

		dcols := NewOf[float64](tc.n*oh*ow, tc.c*tc.k*tc.k)
		MatMulInto(dcols, gm, w)
		want := NewOf[float64](tc.n, tc.c, tc.h, tc.w)
		col2imInto(want, dcols, tc.k, tc.k, tc.stride, tc.pad)

		got := NewOf[float64](tc.n, tc.c, tc.h, tc.w)
		ConvGradInputInto(got, gm, w, tc.k, tc.k, tc.stride, tc.pad)
		if i, ok := bitsEqual(want, got); !ok {
			t.Fatalf("case %+v: dX differs at %d: %g vs %g", tc, i, want.Data()[i], got.Data()[i])
		}
	}
}

// Implicit-GEMM vs materialized-im2col layer benchmarks on the two
// recorded conv geometries (LeNet conv2 and VGG6 block-3 at batch 20).
// The im2col variants pre-allocate their cols/dcols workspaces outside
// the timer, exactly like the old conv layer did, so ns/op isolates the
// kernel and bytes/op isolates steady-state allocation traffic.
func benchConvShape[T Float](b *testing.B, implicit bool, n, c, h, wdt, f, k, stride, pad int) {
	rng := rand.New(rand.NewSource(1))
	x := randTensorOf[T](rng, n, c, h, wdt)
	w := randTensorOf[T](rng, f, c*k*k)
	bias := randTensorOf[T](rng, f)
	oh := ConvOutSize(h, k, stride, pad)
	ow := ConvOutSize(wdt, k, stride, pad)
	m := n * oh * ow
	kdim := c * k * k
	gm := randTensorOf[T](rng, m, f)
	ym := NewOf[T](m, f)
	dw := NewOf[T](f, kdim)
	dx := NewOf[T](n, c, h, wdt)
	old := MaxLanes()
	SetMaxLanes(0)
	defer SetMaxLanes(old)
	if implicit {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ConvForwardInto(ym, x, w, bias, k, k, stride, pad)
			ConvGradWeightsInto(dw, gm, x, k, k, stride, pad)
			ConvGradInputInto(dx, gm, w, k, k, stride, pad)
		}
		return
	}
	cols := NewOf[T](m, kdim)
	dcols := NewOf[T](m, kdim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im2colInto(cols, x, k, k, stride, pad)
		MatMulTransBBiasInto(ym, cols, w, bias)
		MatMulTransAInto(dw, gm, cols)
		MatMulInto(dcols, gm, w)
		col2imInto(dx, dcols, k, k, stride, pad)
	}
}

// LeNet conv2: (20, 20, 12, 12) input, 40 filters of 5×5 → GEMM 1280×500×40.
func BenchmarkConvIm2ColLeNetConv2(b *testing.B) {
	benchConvShape[float64](b, false, 20, 20, 12, 12, 40, 5, 1, 0)
}
func BenchmarkConvImplicitLeNetConv2(b *testing.B) {
	benchConvShape[float64](b, true, 20, 20, 12, 12, 40, 5, 1, 0)
}
func BenchmarkConvImplicitF32LeNetConv2(b *testing.B) {
	benchConvShape[float32](b, true, 20, 20, 12, 12, 40, 5, 1, 0)
}

// VGG6 block-3: (20, 80, 7, 7) input, 96 filters of 3×3 pad 1 → GEMM 980×720×96.
func BenchmarkConvIm2ColVGG6Block3(b *testing.B) {
	benchConvShape[float64](b, false, 20, 80, 7, 7, 96, 3, 1, 1)
}
func BenchmarkConvImplicitVGG6Block3(b *testing.B) {
	benchConvShape[float64](b, true, 20, 80, 7, 7, 96, 3, 1, 1)
}
func BenchmarkConvImplicitF32VGG6Block3(b *testing.B) {
	benchConvShape[float32](b, true, 20, 80, 7, 7, 96, 3, 1, 1)
}
