package tensor

// Panel packing for the blocked GEMM core (gemm.go). Both operands are
// repacked into contiguous, micro-kernel-shaped panels before the inner
// loops run: packing absorbs the operand transposition (via row/column
// strides) and zero-pads ragged tails, so the register-tiled micro-kernel
// is branch-free and always streams unit-stride memory.
//
// Blocking parameters. These are fixed compile-time constants on purpose:
// the panel grid they induce over the output matrix is identical for
// every lane count, which is one half of the bit-determinism argument
// (the other half is that each grid cell is computed start-to-finish by
// exactly one goroutine; see gemm.go).
const (
	// gemmMR × gemmNR is the register tile: the micro-kernel keeps a full
	// MR×NR block of C in scalar registers across the k loop. 4×2 is the
	// largest tile whose working set (MR·NR accumulators + MR A values +
	// NR B values = 14 floats) fits amd64's 16 XMM registers; see micro4x2
	// in gemm.go for the measured cost of exceeding that.
	gemmMR = 4
	gemmNR = 2
	// gemmMC rows of A are packed per panel (multiple of gemmMR).
	gemmMC = 128
	// gemmKC is the depth of one packed panel pair: an A panel is
	// gemmMC×gemmKC (256 KB), small enough to stay cache-resident while
	// the B panel streams against it.
	gemmKC = 256
	// gemmNC columns of B are packed per panel (multiple of gemmNR).
	gemmNC = 240
)

// packA copies the mc×kc block of the logical matrix A starting at row i0,
// depth p0 into ap as column-major micro-panels of gemmMR rows, zero-
// padding the last panel when mc is not a multiple of gemmMR. Element
// (i, l) of the logical (possibly transposed) A is ad[i*ars + l*acs].
func packA(ap, ad []float64, ars, acs, i0, p0, mc, kc int) {
	idx := 0
	for ir := 0; ir < mc; ir += gemmMR {
		rows := min(gemmMR, mc-ir)
		base := (i0+ir)*ars + p0*acs
		for l := 0; l < kc; l++ {
			off := base + l*acs
			for r := 0; r < rows; r++ {
				ap[idx+r] = ad[off+r*ars]
			}
			for r := rows; r < gemmMR; r++ {
				ap[idx+r] = 0
			}
			idx += gemmMR
		}
	}
}

// packB copies the kc×nc block of the logical matrix B starting at depth
// p0, column j0 into bp as row-major micro-panels of gemmNR columns,
// zero-padding the last panel when nc is not a multiple of gemmNR.
// Element (l, j) of the logical (possibly transposed) B is
// bd[l*brs + j*bcs].
func packB(bp, bd []float64, brs, bcs, p0, j0, kc, nc int) {
	idx := 0
	for jr := 0; jr < nc; jr += gemmNR {
		cols := min(gemmNR, nc-jr)
		base := p0*brs + (j0+jr)*bcs
		for l := 0; l < kc; l++ {
			off := base + l*brs
			for c := 0; c < cols; c++ {
				bp[idx+c] = bd[off+c*bcs]
			}
			for c := cols; c < gemmNR; c++ {
				bp[idx+c] = 0
			}
			idx += gemmNR
		}
	}
}
