package tensor

// Panel packing for the blocked GEMM core (gemm.go). Both operands are
// repacked into contiguous, micro-kernel-shaped panels before the inner
// loops run: packing absorbs the operand transposition (via row/column
// strides) and zero-pads ragged tails, so the register-tiled micro-kernel
// is branch-free and always streams unit-stride memory. Convolution
// operands are packed by the virtual (implicit-GEMM) variants in
// convgemm.go, which synthesize im2col panels on the fly instead of
// reading a materialized buffer; the panel layout is identical.
//
// Blocking parameters. These are fixed compile-time constants on purpose:
// the panel grid they induce over the output matrix is identical for
// every lane count, which is one half of the bit-determinism argument
// (the other half is that each grid cell is computed start-to-finish by
// exactly one goroutine; see gemm.go). gemmKC additionally fixes the
// k-summation association (one partial sum per KC panel), so it must
// never differ between two code paths that are expected to produce
// bit-identical results.
const (
	// gemmMR × gemmNR is the float64 register tile: the micro-kernel keeps
	// a full MR×NR block of C in scalar registers across the k loop. 4×2
	// is the largest tile whose working set (MR·NR accumulators + MR A
	// values + NR B values = 14 doubles) fits amd64's 16 XMM registers;
	// see micro4x2 in gemm.go for the measured cost of exceeding that.
	// float32 uses the wider f32MR×f32NR tile (gemm_f32_*.go): at half the
	// element width a 128-bit register holds a 4-lane row, so the f32
	// kernel keeps an 8×4 C block in 8 XMM registers.
	gemmMR = 4
	gemmNR = 2
	// gemmMC rows of A are packed per panel. Must be a multiple of every
	// candidate MR (4 and 8).
	gemmMC = 128
	// gemmKC is the depth of one packed panel pair: an A panel is
	// gemmMC×gemmKC (256 KB at f64), small enough to stay cache-resident
	// while the B panel streams against it.
	gemmKC = 256
	// gemmNC columns of B are packed per panel. Must be a multiple of
	// every candidate NR (2 and 4).
	gemmNC = 240
	// gemmMaxMR/gemmMaxNR bound the register tile across element types;
	// they size the shared accumulator (gemmAccLen in gemm.go) and the
	// per-panel scratch arrays in the virtual conv packers.
	gemmMaxMR = 8
	gemmMaxNR = 4
)

// microTile returns the (MR, NR) register tile for element type T.
func microTile[T Float]() (int, int) {
	if isF32[T]() {
		return f32MR, f32NR
	}
	return gemmMR, gemmNR
}

// packA copies the mc×kc block of the logical matrix A starting at row i0,
// depth p0 into ap as column-major micro-panels of mr rows, zero-padding
// the last panel when mc is not a multiple of mr. Element (i, l) of the
// logical (possibly transposed) A is ad[i*ars + l*acs].
func packA[T Float](ap, ad []T, ars, acs, i0, p0, mc, kc, mr int) {
	idx := 0
	for ir := 0; ir < mc; ir += mr {
		rows := min(mr, mc-ir)
		base := (i0+ir)*ars + p0*acs
		for l := 0; l < kc; l++ {
			off := base + l*acs
			for r := 0; r < rows; r++ {
				ap[idx+r] = ad[off+r*ars]
			}
			for r := rows; r < mr; r++ {
				ap[idx+r] = 0
			}
			idx += mr
		}
	}
}

// packB copies the kc×nc block of the logical matrix B starting at depth
// p0, column j0 into bp as row-major micro-panels of nr columns,
// zero-padding the last panel when nc is not a multiple of nr.
// Element (l, j) of the logical (possibly transposed) B is
// bd[l*brs + j*bcs].
func packB[T Float](bp, bd []T, brs, bcs, p0, j0, kc, nc, nr int) {
	idx := 0
	for jr := 0; jr < nc; jr += nr {
		cols := min(nr, nc-jr)
		base := p0*brs + (j0+jr)*bcs
		for l := 0; l < kc; l++ {
			off := base + l*brs
			for c := 0; c < cols; c++ {
				bp[idx+c] = bd[off+c*bcs]
			}
			for c := cols; c < nr; c++ {
				bp[idx+c] = 0
			}
			idx += nr
		}
	}
}
