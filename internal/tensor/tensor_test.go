package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("bad shape %v", x.Shape())
	}
}

func TestFromPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	From([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := x.Data()[2*4+1]; got != 7.5 {
		t.Fatalf("row-major layout broken: got %v", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	x.At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	x := From([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Set(99, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := From([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Fatal("Reshape must share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on volume mismatch")
		}
	}()
	x.Reshape(4, 2)
}

func TestScaleAddApplySum(t *testing.T) {
	x := From([]float64{1, 2, 3}, 3)
	x.Scale(2)
	y := From([]float64{1, 1, 1}, 3)
	x.AddScaled(3, y)
	want := []float64{5, 7, 9}
	for i, v := range x.Data() {
		if v != want[i] {
			t.Fatalf("element %d = %v, want %v", i, v, want[i])
		}
	}
	if s := x.Sum(); s != 21 {
		t.Fatalf("Sum = %v, want 21", s)
	}
	x.Apply(func(v float64) float64 { return -v })
	if m := x.MaxAbs(); m != 9 {
		t.Fatalf("MaxAbs = %v, want 9", m)
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += a.At(i, l) * b.At(l, j)
			}
			c.Set(s, i, j)
		}
	}
	return c
}

func TestMatMulSmall(t *testing.T) {
	a := From([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := From([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := From([]float64{58, 64, 139, 154}, 2, 2)
	if !Equal(c, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", c.Data(), want.Data())
	}
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(40), 1+r.Intn(40), 1+r.Intn(40)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		return Equal(MatMul(a, b), naiveMatMul(a, b), 1e-9)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulParallelPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Randn(rng, 1, 130, 50)
	b := Randn(rng, 1, 50, 120)
	if !Equal(MatMul(a, b), naiveMatMul(a, b), 1e-9) {
		t.Fatal("parallel MatMul disagrees with naive result")
	}
}

func TestMatMulTransAB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 1, 9, 13)
	b := Randn(rng, 1, 9, 7)
	got := MatMulTransA(a, b)
	want := MatMul(Transpose(a), b)
	if !Equal(got, want, 1e-9) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}
	c := Randn(rng, 1, 11, 13)
	got2 := MatMulTransB(a, c) // (9×13)·(11×13)ᵀ = 9×11
	want2 := MatMul(a, Transpose(c))
	if !Equal(got2, want2, 1e-9) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func TestMatMulTransBParallelPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := Randn(rng, 1, 100, 33)
	b := Randn(rng, 1, 90, 33)
	got := MatMulTransB(a, b)
	want := MatMul(a, Transpose(b))
	if !Equal(got, want, 1e-9) {
		t.Fatal("parallel MatMulTransB disagrees")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(20), 1+r.Intn(20)
		a := Randn(r, 1, m, n)
		return Equal(Transpose(Transpose(a)), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// naiveConv performs a direct convolution for comparison with the
// im2col+matmul path.
func naiveConv(x, w *Tensor, stride, pad int) *Tensor {
	n, c, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	f, _, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(wid, kw, stride, pad)
	y := New(n, f, oh, ow)
	for img := 0; img < n; img++ {
		for fo := 0; fo < f; fo++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								iy, ix := oy*stride-pad+ky, ox*stride-pad+kx
								if iy < 0 || iy >= h || ix < 0 || ix >= wid {
									continue
								}
								s += x.At(img, ch, iy, ix) * w.At(fo, ch, ky, kx)
							}
						}
					}
					y.Set(s, img, fo, oy, ox)
				}
			}
		}
	}
	return y
}

func TestIm2ColConvMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ n, c, h, w, f, k, stride, pad int }{
		{2, 1, 8, 8, 3, 3, 1, 1},
		{1, 3, 7, 7, 4, 5, 1, 2},
		{2, 2, 9, 9, 2, 3, 2, 1},
		{1, 1, 5, 5, 1, 5, 1, 0},
	} {
		x := Randn(rng, 1, tc.n, tc.c, tc.h, tc.w)
		w := Randn(rng, 1, tc.f, tc.c, tc.k, tc.k)
		cols := im2col(x, tc.k, tc.k, tc.stride, tc.pad)
		wm := w.Reshape(tc.f, tc.c*tc.k*tc.k)
		// (N*OH*OW, CKK) · (CKK, F) then permute to (N,F,OH,OW).
		ym := MatMulTransB(cols, wm)
		oh := ConvOutSize(tc.h, tc.k, tc.stride, tc.pad)
		ow := ConvOutSize(tc.w, tc.k, tc.stride, tc.pad)
		y := New(tc.n, tc.f, oh, ow)
		for img := 0; img < tc.n; img++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					row := (img*oh+oy)*ow + ox
					for fo := 0; fo < tc.f; fo++ {
						y.Set(ym.At(row, fo), img, fo, oy, ox)
					}
				}
			}
		}
		want := naiveConv(x, w, tc.stride, tc.pad)
		if !Equal(y, want, 1e-9) {
			t.Fatalf("im2col conv mismatch for case %+v", tc)
		}
	}
}

func TestCol2ImAdjointProperty(t *testing.T) {
	// <im2col(x), g> must equal <x, col2im(g)> — the defining property of
	// an adjoint pair, which is exactly what backprop relies on.
	rng := rand.New(rand.NewSource(13))
	n, c, h, w, k, stride, pad := 2, 2, 6, 6, 3, 1, 1
	x := Randn(rng, 1, n, c, h, w)
	cols := im2col(x, k, k, stride, pad)
	g := Randn(rng, 1, cols.Dim(0), cols.Dim(1))
	lhs := 0.0
	for i, v := range cols.Data() {
		lhs += v * g.Data()[i]
	}
	back := col2im(g, n, c, h, w, k, k, stride, pad)
	rhs := 0.0
	for i, v := range x.Data() {
		rhs += v * back.Data()[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint property violated: %v vs %v", lhs, rhs)
	}
}

func TestConvOutSize(t *testing.T) {
	if got := ConvOutSize(28, 5, 1, 0); got != 24 {
		t.Fatalf("ConvOutSize(28,5,1,0) = %d, want 24", got)
	}
	if got := ConvOutSize(28, 3, 1, 1); got != 28 {
		t.Fatalf("ConvOutSize(28,3,1,1) = %d, want 28", got)
	}
	if got := ConvOutSize(8, 2, 2, 0); got != 4 {
		t.Fatalf("ConvOutSize(8,2,2,0) = %d, want 4", got)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 128, 128)
	y := Randn(rng, 1, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 8, 3, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im2col(x, 3, 3, 1, 1)
	}
}
