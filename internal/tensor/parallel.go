package tensor

import (
	"runtime"
	"sync"
)

// extraLanes is a process-wide pool of "extra" parallelism tokens shared
// by every goroutine-spawning kernel in this package and by external
// worker pools (the federated engines' per-client training pool). The
// calling goroutine never needs a token — only the workers it spawns on
// top of itself do — so with a capacity of GOMAXPROCS−1 the total number
// of concurrently running goroutines stays ≈ GOMAXPROCS no matter how
// pools nest: when the client-level pool holds most lanes, the matmuls
// running inside its workers find none left and stay single-threaded;
// when training is sequential, the matmuls grab every lane and fan out.
//
// Acquisition is strictly non-blocking, so lane exhaustion can never
// deadlock — callers degrade to doing the work themselves.
var extraLanes chan struct{}

func init() {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 0 {
		n = 0
	}
	extraLanes = make(chan struct{}, n)
	for i := 0; i < n; i++ {
		extraLanes <- struct{}{}
	}
}

// SetMaxLanes resizes the extra-lane pool to n lanes (clamped at ≥ 0).
// It exists for benchmarks and tests that raise GOMAXPROCS after package
// init (the pool is sized once at startup) and for deployments that want
// to cap library parallelism explicitly. It must not be called while
// kernels or worker pools are running.
func SetMaxLanes(n int) {
	if n < 0 {
		n = 0
	}
	extraLanes = make(chan struct{}, n)
	for i := 0; i < n; i++ {
		extraLanes <- struct{}{}
	}
}

// MaxLanes reports the pool's current capacity.
func MaxLanes() int { return cap(extraLanes) }

// TryAcquireLanes grabs up to want extra parallelism lanes without
// blocking and returns how many it obtained (possibly zero). Every
// acquired lane must later be returned with ReleaseLanes.
func TryAcquireLanes(want int) int {
	got := 0
	for got < want {
		select {
		case <-extraLanes:
			got++
		default:
			return got
		}
	}
	return got
}

// ReleaseLanes returns n lanes previously acquired with TryAcquireLanes.
func ReleaseLanes(n int) {
	for i := 0; i < n; i++ {
		extraLanes <- struct{}{}
	}
}

// parallelChunks runs kernel over the task range [0, m) split across the
// caller plus as many extra lanes as the shared pool will give it (at
// most m−1). Each task — a GEMM grid cell in the blocked kernel's case —
// is processed entirely by one goroutine with a fixed inner loop order,
// so the result is bit-identical no matter how many lanes were available;
// chunking only changes wall-clock time.
func parallelChunks(m int, kernel func(i0, i1 int)) {
	extra := TryAcquireLanes(m - 1)
	if extra == 0 {
		kernel(0, m)
		return
	}
	parts := extra + 1
	chunk := (m + parts - 1) / parts
	var wg sync.WaitGroup
	for w := 1; w < parts; w++ {
		i0 := w * chunk
		i1 := i0 + chunk
		if i1 > m {
			i1 = m
		}
		if i0 >= i1 {
			break
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			kernel(i0, i1)
		}(i0, i1)
	}
	if chunk > 0 {
		kernel(0, min(chunk, m))
	}
	wg.Wait()
	ReleaseLanes(extra)
}
