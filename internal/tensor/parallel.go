package tensor

import "runtime"

// extraLanes is a process-wide pool of "extra" parallelism tokens shared
// by every goroutine-spawning kernel in this package and by external
// worker pools (the federated engines' per-client training pool). The
// calling goroutine never needs a token — only the workers it spawns on
// top of itself do — so with a capacity of GOMAXPROCS−1 the total number
// of concurrently running goroutines stays ≈ GOMAXPROCS no matter how
// pools nest: when the client-level pool holds most lanes, the matmuls
// running inside its workers find none left and stay single-threaded;
// when training is sequential, the matmuls grab every lane and fan out.
//
// Acquisition is strictly non-blocking, so lane exhaustion can never
// deadlock — callers degrade to doing the work themselves.
var extraLanes chan struct{}

func init() {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 0 {
		n = 0
	}
	extraLanes = make(chan struct{}, n)
	for i := 0; i < n; i++ {
		extraLanes <- struct{}{}
	}
}

// SetMaxLanes resizes the extra-lane pool to n lanes (clamped at ≥ 0).
// It exists for benchmarks and tests that raise GOMAXPROCS after package
// init (the pool is sized once at startup) and for deployments that want
// to cap library parallelism explicitly. It must not be called while
// kernels or worker pools are running.
func SetMaxLanes(n int) {
	if n < 0 {
		n = 0
	}
	extraLanes = make(chan struct{}, n)
	for i := 0; i < n; i++ {
		extraLanes <- struct{}{}
	}
}

// MaxLanes reports the pool's current capacity.
func MaxLanes() int { return cap(extraLanes) }

// TryAcquireLanes grabs up to want extra parallelism lanes without
// blocking and returns how many it obtained (possibly zero). Every
// acquired lane must later be returned with ReleaseLanes.
func TryAcquireLanes(want int) int {
	got := 0
	for got < want {
		select {
		case <-extraLanes:
			got++
		default:
			return got
		}
	}
	return got
}

// ReleaseLanes returns n lanes previously acquired with TryAcquireLanes.
func ReleaseLanes(n int) {
	for i := 0; i < n; i++ {
		extraLanes <- struct{}{}
	}
}
