package tensor

import "sync"

// Blocked, packed GEMM core with fused epilogues.
//
// Every matrix multiply in this package (plain, Aᵀ·B, A·Bᵀ) routes through
// gemm, which dispatches between a naive single-threaded kernel for tiny
// problems and a BLIS/GotoBLAS-style blocked kernel for everything else:
//
//   - The output matrix is cut into a fixed grid of gemmMC×gemmNC cells.
//   - Each cell is computed start-to-finish by exactly one goroutine: it
//     walks the k dimension in gemmKC panels (in ascending order), packs
//     the A and B panels into per-goroutine scratch (pack.go), and runs a
//     gemmMR×gemmNR register-tiled micro-kernel over the packed panels
//     (4×2 — sized to the amd64 register file, see micro4x2).
//     The first k-panel stores into C (implicit beta=0 — callers never
//     pre-zero), subsequent panels accumulate.
//   - After the k loop the cell owner applies the fused epilogue (+bias,
//     +bias→ReLU with optional mask capture) to its region of C.
//
// Determinism: the cell grid and panel boundaries depend only on the
// problem shape (compile-time constants), and each output element is
// produced by one goroutine running a fixed instruction sequence — the
// floating-point accumulation order never depends on how many lanes the
// semaphore granted. Results are therefore bit-identical for any lane
// count, which the federated engines' bit-identical-history guarantee
// (internal/fl) inherits.

// gemmSmallCutoff is the m·n·k volume below which the retained naive
// kernels win (no packing or pool traffic). Depends only on the shape,
// never on lane availability, so path selection is deterministic too.
const gemmSmallCutoff = 4096

// gemmParallelCutoff is the m·n·k volume below which the blocked kernel
// does not ask the lane semaphore for help.
const gemmParallelCutoff = 1 << 18

// epi is the fused epilogue applied to each output element after the full
// k reduction: dst = f(sum + bias), where f is ReLU when relu is set.
type epi struct {
	bias []float64 // length n, broadcast across rows; nil = none
	relu bool
	mask []bool // optional m*n ReLU mask: mask[i*n+j] = (pre-clamp value > 0)
}

// gemmScratch is one goroutine's packing workspace. Pooled so that
// concurrently-training clients (and concurrent GEMM lanes) never share
// scratch, while steady-state training allocates nothing.
type gemmScratch struct {
	ap []float64 // packed A block, gemmMC×gemmKC
	bp []float64 // packed B block, gemmKC×gemmNC
}

var gemmPool = sync.Pool{New: func() any {
	return &gemmScratch{
		ap: make([]float64, gemmMC*gemmKC),
		bp: make([]float64, gemmKC*gemmNC),
	}
}}

// gemm computes dst = epilogue(op(a)·op(b)) where op is optional
// transposition. dst must be m×n and is fully overwritten.
func gemm(dst, a, b *Tensor, transA, transB bool, e epi) {
	ad, bd, cd := a.data, b.data, dst.data
	var m, k, n int
	var ars, acs, brs, bcs int
	if transA {
		k, m = a.Dim(0), a.Dim(1)
		ars, acs = 1, m
	} else {
		m, k = a.Dim(0), a.Dim(1)
		ars, acs = k, 1
	}
	if transB {
		n = b.Dim(0)
		if b.Dim(1) != k {
			panic("tensor: gemm inner dimension mismatch")
		}
		brs, bcs = 1, k
	} else {
		if b.Dim(0) != k {
			panic("tensor: gemm inner dimension mismatch")
		}
		n = b.Dim(1)
		brs, bcs = n, 1
	}
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic("tensor: gemm output shape mismatch")
	}
	if e.bias != nil && len(e.bias) != n {
		panic("tensor: gemm bias length mismatch")
	}
	if e.mask != nil && len(e.mask) < m*n {
		panic("tensor: gemm mask too short")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		for i := range cd {
			cd[i] = 0
		}
		applyEpi(cd, n, 0, m, 0, n, e)
		return
	}
	if m*n*k <= gemmSmallCutoff {
		switch {
		case transA:
			naiveMatMulTransAInto(dst, a, b)
		case transB:
			naiveMatMulTransBInto(dst, a, b)
		default:
			naiveMatMulInto(dst, a, b)
		}
		applyEpi(cd, n, 0, m, 0, n, e)
		return
	}
	gemmBlocked(cd, ad, bd, m, n, k, ars, acs, brs, bcs, e)
}

// gemmBlocked runs the panel-blocked kernel over the full output, fanning
// grid cells out across whatever lanes the shared semaphore grants.
func gemmBlocked(cd, ad, bd []float64, m, n, k, ars, acs, brs, bcs int, e epi) {
	rc := (m + gemmMC - 1) / gemmMC
	cc := (n + gemmNC - 1) / gemmNC
	cells := rc * cc
	// Serial path first, with no closures in scope: an escaping kernel
	// closure would be heap-allocated even when never spawned, costing a
	// few objects per call on the steady-state training path. The
	// MaxLanes()==0 check only short-circuits dispatch — per-cell results
	// are bit-identical on either path, so it cannot affect outputs.
	if cells == 1 || m*n*k < gemmParallelCutoff || MaxLanes() == 0 {
		s := gemmPool.Get().(*gemmScratch)
		for cell := 0; cell < cells; cell++ {
			gemmProcCell(cd, ad, bd, m, n, k, ars, acs, brs, bcs, e, cc, cell, s)
		}
		gemmPool.Put(s)
		return
	}
	parallelChunks(cells, func(c0, c1 int) {
		s := gemmPool.Get().(*gemmScratch)
		for cell := c0; cell < c1; cell++ {
			gemmProcCell(cd, ad, bd, m, n, k, ars, acs, brs, bcs, e, cc, cell, s)
		}
		gemmPool.Put(s)
	})
}

// gemmProcCell computes one output grid cell and applies the epilogue to
// its region. Top-level (not a closure) so the serial path stays
// allocation-free.
func gemmProcCell(cd, ad, bd []float64, m, n, k, ars, acs, brs, bcs int, e epi, cc, cell int, s *gemmScratch) {
	i0 := (cell / cc) * gemmMC
	j0 := (cell % cc) * gemmNC
	mc := min(gemmMC, m-i0)
	nc := min(gemmNC, n-j0)
	gemmCell(cd, ad, bd, n, k, i0, j0, mc, nc, ars, acs, brs, bcs, s)
	applyEpi(cd, n, i0, i0+mc, j0, j0+nc, e)
}

// gemmCell computes the mc×nc output cell at (i0, j0): pack a k-panel of
// each operand, run the micro-kernel over every register tile, merge into
// C (store on the first panel, accumulate on the rest).
func gemmCell(cd, ad, bd []float64, n, k, i0, j0, mc, nc int, ars, acs, brs, bcs int, s *gemmScratch) {
	for p0 := 0; p0 < k; p0 += gemmKC {
		kc := min(gemmKC, k-p0)
		packA(s.ap, ad, ars, acs, i0, p0, mc, kc)
		packB(s.bp, bd, brs, bcs, p0, j0, kc, nc)
		first := p0 == 0
		var acc [gemmMR * gemmNR]float64
		for jr := 0; jr < nc; jr += gemmNR {
			bp := s.bp[(jr/gemmNR)*gemmNR*kc:]
			for ir := 0; ir < mc; ir += gemmMR {
				ap := s.ap[(ir/gemmMR)*gemmMR*kc:]
				micro4x2(kc, ap, bp, &acc)
				mergeTile(cd, n, i0+ir, j0+jr, min(gemmMR, mc-ir), min(gemmNR, nc-jr), &acc, first)
			}
		}
	}
}

// micro4x2 multiplies one packed A micro-panel (gemmMR×kc, column-major)
// by one packed B micro-panel (kc×gemmNR, row-major), keeping the full
// 4×2 product tile in scalar registers across the k loop. The tile shape
// is chosen for the register budget: 8 accumulators + 4 A values + 2 B
// values = 14 live floats, which fits amd64's 16 XMM registers — a 4×4
// tile needs 24 and spills every iteration, which benchmarked slower than
// the naive kernel it was meant to replace. The k loop is unrolled 8×
// (with a single-step remainder loop) to amortize branch overhead over
// the 16 independent multiply-add chains per step.
//
// k runs strictly ascending through both loops, which fixes the
// floating-point reduction order regardless of kc or unroll boundaries.
func micro4x2(kc int, ap, bp []float64, acc *[gemmMR * gemmNR]float64) {
	var c00, c01 float64
	var c10, c11 float64
	var c20, c21 float64
	var c30, c31 float64
	ap = ap[: gemmMR*kc : gemmMR*kc]
	bp = bp[: gemmNR*kc : gemmNR*kc]
	for len(ap) >= 32 && len(bp) >= 16 {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[4], ap[5], ap[6], ap[7]
		b0, b1 = bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[8], ap[9], ap[10], ap[11]
		b0, b1 = bp[4], bp[5]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[12], ap[13], ap[14], ap[15]
		b0, b1 = bp[6], bp[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[16], ap[17], ap[18], ap[19]
		b0, b1 = bp[8], bp[9]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[20], ap[21], ap[22], ap[23]
		b0, b1 = bp[10], bp[11]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[24], ap[25], ap[26], ap[27]
		b0, b1 = bp[12], bp[13]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[28], ap[29], ap[30], ap[31]
		b0, b1 = bp[14], bp[15]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[32:]
		bp = bp[16:]
	}
	for len(ap) >= 4 && len(bp) >= 2 {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[4:]
		bp = bp[2:]
	}
	acc[0], acc[1] = c00, c01
	acc[2], acc[3] = c10, c11
	acc[4], acc[5] = c20, c21
	acc[6], acc[7] = c30, c31
}

// mergeTile writes the valid mr×nr corner of a micro-tile into C at
// (i, j): plain store for the first k-panel (beta=0), accumulate after.
func mergeTile(cd []float64, n, i, j, mr, nr int, acc *[gemmMR * gemmNR]float64, first bool) {
	for r := 0; r < mr; r++ {
		row := cd[(i+r)*n+j : (i+r)*n+j+nr]
		av := acc[r*gemmNR : r*gemmNR+nr]
		if first {
			copy(row, av)
		} else {
			for c, v := range av {
				row[c] += v
			}
		}
	}
}

// applyEpi applies the fused epilogue over rows [i0,i1) × cols [j0,j1) of
// the n-column output. A no-op for the plain kernels.
func applyEpi(cd []float64, n, i0, i1, j0, j1 int, e epi) {
	if e.bias == nil && !e.relu {
		return
	}
	for i := i0; i < i1; i++ {
		row := cd[i*n+j0 : i*n+j1]
		if e.bias != nil {
			for jj, bv := range e.bias[j0:j1] {
				row[jj] += bv
			}
		}
		if e.relu {
			if e.mask != nil {
				base := i*n + j0
				for jj, v := range row {
					if v > 0 {
						e.mask[base+jj] = true
					} else {
						e.mask[base+jj] = false
						row[jj] = 0
					}
				}
			} else {
				for jj, v := range row {
					if v <= 0 {
						row[jj] = 0
					}
				}
			}
		}
	}
}
