package tensor

import (
	"sync"
	"unsafe"
)

// Blocked, packed GEMM core with fused epilogues, generic over the
// element type.
//
// Every matrix multiply in this package (plain, Aᵀ·B, A·Bᵀ) routes through
// gemm, which dispatches between a naive single-threaded kernel for tiny
// problems and a BLIS/GotoBLAS-style blocked kernel for everything else:
//
//   - The output matrix is cut into a fixed grid of gemmMC×gemmNC cells.
//   - Each cell is computed start-to-finish by exactly one goroutine: it
//     walks the k dimension in gemmKC panels (in ascending order), packs
//     the A and B panels into per-goroutine scratch (pack.go), and runs a
//     register-tiled micro-kernel over the packed panels (4×2 scalar at
//     float64, 8×4 SSE at float32 — see microTile and gemm_f32_amd64.s).
//     The first k-panel stores into C (implicit beta=0 — callers never
//     pre-zero), subsequent panels accumulate.
//   - After the k loop the cell owner applies the fused epilogue (+bias,
//     +bias→ReLU with optional mask capture) to its region of C.
//
// Operands are described by packSrc: either a real strided matrix, or a
// virtual im2col matrix whose panels are synthesized on the fly from the
// convolution input (implicit GEMM, convgemm.go) — the blocked core is
// identical either way, so convolution inherits every determinism
// property below without a materialized im2col buffer.
//
// Determinism: the cell grid and panel boundaries depend only on the
// problem shape (compile-time constants), and each output element is
// produced by one goroutine running a fixed instruction sequence — the
// floating-point accumulation order never depends on how many lanes the
// semaphore granted. Results are therefore bit-identical for any lane
// count, which the federated engines' bit-identical-history guarantee
// (internal/fl) inherits. The register tile shape does not participate
// in that argument (each output element is a strictly-ascending-k sum
// within each KC panel for every tile), so the f32 SIMD tile and the
// scalar fallback produce bit-identical results too.

// gemmSmallCutoff is the m·n·k volume below which the retained naive
// kernels win (no packing or pool traffic). Depends only on the shape,
// never on lane availability, so path selection is deterministic too.
const gemmSmallCutoff = 4096

// gemmParallelCutoff is the m·n·k volume below which the blocked kernel
// does not ask the lane semaphore for help.
const gemmParallelCutoff = 1 << 18

// gemmAccLen sizes the shared micro-kernel accumulator: one full
// gemmMaxMR×gemmMaxNR register tile. Smaller tiles use a leading subset.
const gemmAccLen = gemmMaxMR * gemmMaxNR

// epi is the fused epilogue applied to each output element after the full
// k reduction: dst = f(sum + bias), where f is ReLU when relu is set.
type epi[T Float] struct {
	bias []T // length n, broadcast across rows; nil = none
	relu bool
	mask []bool // optional m*n ReLU mask: mask[i*n+j] = (pre-clamp value > 0)
}

// packSrc describes one GEMM operand: a real strided matrix (virt
// unset — element (i,l) lives at d[i*rs+l*cs]) or a virtual im2col view
// of a convolution input (virt set — elements are synthesized from geom
// during packing; see convgemm.go). Held by value end-to-end so the
// serial path allocates nothing.
type packSrc[T Float] struct {
	d      []T
	rs, cs int
	geom   convGeom
	virt   bool
}

// packIntoA packs the mc×kc block at (i0, p0) of the operand viewed as A.
func (p *packSrc[T]) packIntoA(ap []T, i0, p0, mc, kc, mr int) {
	if p.virt {
		packAConv(ap, p.d, &p.geom, i0, p0, mc, kc, mr)
		return
	}
	packA(ap, p.d, p.rs, p.cs, i0, p0, mc, kc, mr)
}

// packIntoB packs the kc×nc block at (p0, j0) of the operand viewed as B.
func (p *packSrc[T]) packIntoB(bp []T, p0, j0, kc, nc, nr int) {
	if p.virt {
		packBConv(bp, p.d, &p.geom, p0, j0, kc, nc, nr)
		return
	}
	packB(bp, p.d, p.rs, p.cs, p0, j0, kc, nc, nr)
}

// gemmScratch is one goroutine's packing workspace. Pooled per element
// type so that concurrently-training clients (and concurrent GEMM lanes)
// never share scratch, while steady-state training allocates nothing.
type gemmScratch[T Float] struct {
	ap []T // packed A block, gemmMC×gemmKC
	bp []T // packed B block, gemmKC×gemmNC
}

var gemmPool64 = sync.Pool{New: func() any {
	return &gemmScratch[float64]{
		ap: make([]float64, gemmMC*gemmKC),
		bp: make([]float64, gemmKC*gemmNC),
	}
}}

var gemmPool32 = sync.Pool{New: func() any {
	return &gemmScratch[float32]{
		ap: make([]float32, gemmMC*gemmKC),
		bp: make([]float32, gemmKC*gemmNC),
	}
}}

// gemmScratchPool returns the scratch pool matching element type T.
func gemmScratchPool[T Float]() *sync.Pool {
	if isF32[T]() {
		return &gemmPool32
	}
	return &gemmPool64
}

// gemm computes dst = epilogue(op(a)·op(b)) where op is optional
// transposition. dst must be m×n and is fully overwritten.
func gemm[T Float](dst, a, b *TensorOf[T], transA, transB bool, e epi[T]) {
	cd := dst.data
	var m, k, n int
	var ars, acs, brs, bcs int
	if transA {
		k, m = a.Dim(0), a.Dim(1)
		ars, acs = 1, m
	} else {
		m, k = a.Dim(0), a.Dim(1)
		ars, acs = k, 1
	}
	if transB {
		n = b.Dim(0)
		if b.Dim(1) != k {
			panic("tensor: gemm inner dimension mismatch")
		}
		brs, bcs = 1, k
	} else {
		if b.Dim(0) != k {
			panic("tensor: gemm inner dimension mismatch")
		}
		n = b.Dim(1)
		brs, bcs = n, 1
	}
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic("tensor: gemm output shape mismatch")
	}
	if e.bias != nil && len(e.bias) != n {
		panic("tensor: gemm bias length mismatch")
	}
	if e.mask != nil && len(e.mask) < m*n {
		panic("tensor: gemm mask too short")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		for i := range cd {
			cd[i] = 0
		}
		applyEpi(cd, n, 0, m, 0, n, e)
		return
	}
	if m*n*k <= gemmSmallCutoff {
		switch {
		case transA:
			naiveMatMulTransAInto(dst, a, b)
		case transB:
			naiveMatMulTransBInto(dst, a, b)
		default:
			naiveMatMulInto(dst, a, b)
		}
		applyEpi(cd, n, 0, m, 0, n, e)
		return
	}
	gemmBlocked(cd, a.data, b.data, m, n, k, ars, acs, brs, bcs, e)
}

// gemmBlocked runs the panel-blocked kernel over the full output with
// the production register tile for T.
func gemmBlocked[T Float](cd, ad, bd []T, m, n, k, ars, acs, brs, bcs int, e epi[T]) {
	mr, nr := microTile[T]()
	gemmBlockedOps(cd,
		packSrc[T]{d: ad, rs: ars, cs: acs},
		packSrc[T]{d: bd, rs: brs, cs: bcs},
		m, n, k, mr, nr, e)
}

// gemmBlockedOps runs the panel-blocked kernel over the full output,
// fanning grid cells out across whatever lanes the shared semaphore
// grants. The (mr, nr) register tile is a parameter so benchmarks can
// bake off candidate tiles; production callers pass microTile[T]().
func gemmBlockedOps[T Float](cd []T, a, b packSrc[T], m, n, k, mr, nr int, e epi[T]) {
	rc := (m + gemmMC - 1) / gemmMC
	cc := (n + gemmNC - 1) / gemmNC
	cells := rc * cc
	// Serial path first, with no closures in scope: an escaping kernel
	// closure would be heap-allocated even when never spawned, costing a
	// few objects per call on the steady-state training path. The
	// MaxLanes()==0 check only short-circuits dispatch — per-cell results
	// are bit-identical on either path, so it cannot affect outputs.
	if cells == 1 || m*n*k < gemmParallelCutoff || MaxLanes() == 0 {
		pool := gemmScratchPool[T]()
		s := pool.Get().(*gemmScratch[T])
		for cell := 0; cell < cells; cell++ {
			gemmProcCell(cd, a, b, m, n, k, mr, nr, e, cc, cell, s)
		}
		pool.Put(s)
		return
	}
	parallelChunks(cells, func(c0, c1 int) {
		pool := gemmScratchPool[T]()
		s := pool.Get().(*gemmScratch[T])
		for cell := c0; cell < c1; cell++ {
			gemmProcCell(cd, a, b, m, n, k, mr, nr, e, cc, cell, s)
		}
		pool.Put(s)
	})
}

// gemmProcCell computes one output grid cell and applies the epilogue to
// its region. Top-level (not a closure) so the serial path stays
// allocation-free.
func gemmProcCell[T Float](cd []T, a, b packSrc[T], m, n, k, mr, nr int, e epi[T], cc, cell int, s *gemmScratch[T]) {
	i0 := (cell / cc) * gemmMC
	j0 := (cell % cc) * gemmNC
	mc := min(gemmMC, m-i0)
	nc := min(gemmNC, n-j0)
	gemmCell(cd, a, b, n, k, i0, j0, mc, nc, mr, nr, s)
	applyEpi(cd, n, i0, i0+mc, j0, j0+nc, e)
}

// gemmCell computes the mc×nc output cell at (i0, j0): pack a k-panel of
// each operand, run the micro-kernel over every register tile, merge into
// C (store on the first panel, accumulate on the rest).
func gemmCell[T Float](cd []T, a, b packSrc[T], n, k, i0, j0, mc, nc, mr, nr int, s *gemmScratch[T]) {
	for p0 := 0; p0 < k; p0 += gemmKC {
		kc := min(gemmKC, k-p0)
		a.packIntoA(s.ap, i0, p0, mc, kc, mr)
		b.packIntoB(s.bp, p0, j0, kc, nc, nr)
		first := p0 == 0
		var acc [gemmAccLen]T
		for jr := 0; jr < nc; jr += nr {
			bp := s.bp[(jr/nr)*nr*kc:]
			for ir := 0; ir < mc; ir += mr {
				ap := s.ap[(ir/mr)*mr*kc:]
				microKernel(kc, ap, bp, &acc, mr, nr)
				mergeTile(cd, n, i0+ir, j0+jr, min(mr, mc-ir), min(nr, nc-jr), nr, &acc, first)
			}
		}
	}
}

// microKernel runs the register-tiled inner kernel for one packed
// micro-panel pair. Production tiles are (4,2) at float64 (scalar) and
// (f32MR, f32NR) = (8,4) at float32 (4-lane SSE on amd64, an
// order-identical scalar loop elsewhere); the remaining shapes exist for
// the tile bake-off benchmarks. Every kernel sums each output element in
// strictly ascending k order, so the choice of tile never changes bits.
func microKernel[T Float](kc int, ap, bp []T, acc *[gemmAccLen]T, mr, nr int) {
	if isF32[T]() && mr == 8 && nr == 4 {
		// Pointer reinterpretation, not conversion: guarded by isF32, T is
		// float32 here. Pointers (rather than slices) keep the call free of
		// interface-boxing allocations on the hot path.
		microF32SIMD(kc, f32ptr(&ap[0]), f32ptr(&bp[0]), f32ptr(&acc[0]))
		return
	}
	switch {
	case mr == 8 && nr == 2:
		micro8x2(kc, ap, bp, acc)
	case mr == 4 && nr == 4:
		micro4x4(kc, ap, bp, acc)
	default:
		micro4x2(kc, ap, bp, acc)
	}
}

// f32ptr reinterprets a *T as *float32. Callers must guard with isF32;
// the generic signature only exists so microKernel compiles for both
// instantiations.
func f32ptr[T Float](p *T) *float32 { return (*float32)(unsafe.Pointer(p)) }

// micro4x2 multiplies one packed A micro-panel (4×kc, column-major) by
// one packed B micro-panel (kc×2, row-major), keeping the full 4×2
// product tile in scalar registers across the k loop. The tile shape is
// chosen for the float64 register budget: 8 accumulators + 4 A values +
// 2 B values = 14 live doubles, which fits amd64's 16 XMM registers — a
// 4×4 tile needs 24 and spills every iteration, which benchmarked slower
// than the naive kernel it was meant to replace (micro4x4 below exists
// to keep that measurement honest per element type). The k loop is
// unrolled 8× (with a single-step remainder loop) to amortize branch
// overhead over the 16 independent multiply-add chains per step.
//
// k runs strictly ascending through both loops, which fixes the
// floating-point reduction order regardless of kc or unroll boundaries.
func micro4x2[T Float](kc int, ap, bp []T, acc *[gemmAccLen]T) {
	var c00, c01 T
	var c10, c11 T
	var c20, c21 T
	var c30, c31 T
	ap = ap[: 4*kc : 4*kc]
	bp = bp[: 2*kc : 2*kc]
	for len(ap) >= 32 && len(bp) >= 16 {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[4], ap[5], ap[6], ap[7]
		b0, b1 = bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[8], ap[9], ap[10], ap[11]
		b0, b1 = bp[4], bp[5]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[12], ap[13], ap[14], ap[15]
		b0, b1 = bp[6], bp[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[16], ap[17], ap[18], ap[19]
		b0, b1 = bp[8], bp[9]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[20], ap[21], ap[22], ap[23]
		b0, b1 = bp[10], bp[11]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[24], ap[25], ap[26], ap[27]
		b0, b1 = bp[12], bp[13]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[28], ap[29], ap[30], ap[31]
		b0, b1 = bp[14], bp[15]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[32:]
		bp = bp[16:]
	}
	for len(ap) >= 4 && len(bp) >= 2 {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[4:]
		bp = bp[2:]
	}
	acc[0], acc[1] = c00, c01
	acc[2], acc[3] = c10, c11
	acc[4], acc[5] = c20, c21
	acc[6], acc[7] = c30, c31
}

// micro8x2 is the 8×2 scalar candidate tile from the f32 bake-off
// (18 live values — two more than the amd64 XMM file, so the compiler
// spills; kept for the benchmark record). Accumulator stride 2.
func micro8x2[T Float](kc int, ap, bp []T, acc *[gemmAccLen]T) {
	var c [16]T
	ap = ap[: 8*kc : 8*kc]
	bp = bp[: 2*kc : 2*kc]
	for len(ap) >= 16 && len(bp) >= 4 {
		b0, b1 := bp[0], bp[1]
		for r := 0; r < 8; r++ {
			a := ap[r]
			c[2*r] += a * b0
			c[2*r+1] += a * b1
		}
		b0, b1 = bp[2], bp[3]
		for r := 0; r < 8; r++ {
			a := ap[8+r]
			c[2*r] += a * b0
			c[2*r+1] += a * b1
		}
		ap = ap[16:]
		bp = bp[4:]
	}
	for len(ap) >= 8 && len(bp) >= 2 {
		b0, b1 := bp[0], bp[1]
		for r := 0; r < 8; r++ {
			a := ap[r]
			c[2*r] += a * b0
			c[2*r+1] += a * b1
		}
		ap = ap[8:]
		bp = bp[2:]
	}
	copy(acc[:16], c[:])
}

// micro4x4 is the 4×4 scalar candidate tile from the f32 bake-off
// (24 live values; spills at float64, borderline at float32 — kept for
// the benchmark record). Accumulator stride 4.
func micro4x4[T Float](kc int, ap, bp []T, acc *[gemmAccLen]T) {
	var c [16]T
	ap = ap[: 4*kc : 4*kc]
	bp = bp[: 4*kc : 4*kc]
	for len(ap) >= 8 && len(bp) >= 8 {
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		for r := 0; r < 4; r++ {
			a := ap[r]
			c[4*r] += a * b0
			c[4*r+1] += a * b1
			c[4*r+2] += a * b2
			c[4*r+3] += a * b3
		}
		b0, b1, b2, b3 = bp[4], bp[5], bp[6], bp[7]
		for r := 0; r < 4; r++ {
			a := ap[4+r]
			c[4*r] += a * b0
			c[4*r+1] += a * b1
			c[4*r+2] += a * b2
			c[4*r+3] += a * b3
		}
		ap = ap[8:]
		bp = bp[8:]
	}
	for len(ap) >= 4 && len(bp) >= 4 {
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		for r := 0; r < 4; r++ {
			a := ap[r]
			c[4*r] += a * b0
			c[4*r+1] += a * b1
			c[4*r+2] += a * b2
			c[4*r+3] += a * b3
		}
		ap = ap[4:]
		bp = bp[4:]
	}
	copy(acc[:16], c[:])
}

// mergeTile writes the valid mr×nr corner of a micro-tile into C at
// (i, j): plain store for the first k-panel (beta=0), accumulate after.
// accStride is the full tile NR (the accumulator row stride), which may
// exceed the valid nr at the right edge of the output.
func mergeTile[T Float](cd []T, n, i, j, mr, nr, accStride int, acc *[gemmAccLen]T, first bool) {
	for r := 0; r < mr; r++ {
		row := cd[(i+r)*n+j : (i+r)*n+j+nr]
		av := acc[r*accStride : r*accStride+nr]
		if first {
			copy(row, av)
		} else {
			for c, v := range av {
				row[c] += v
			}
		}
	}
}

// applyEpi applies the fused epilogue over rows [i0,i1) × cols [j0,j1) of
// the n-column output. A no-op for the plain kernels.
func applyEpi[T Float](cd []T, n, i0, i1, j0, j1 int, e epi[T]) {
	if e.bias == nil && !e.relu {
		return
	}
	for i := i0; i < i1; i++ {
		row := cd[i*n+j0 : i*n+j1]
		if e.bias != nil {
			for jj, bv := range e.bias[j0:j1] {
				row[jj] += bv
			}
		}
		if e.relu {
			if e.mask != nil {
				base := i*n + j0
				for jj, v := range row {
					if v > 0 {
						e.mask[base+jj] = true
					} else {
						e.mask[base+jj] = false
						row[jj] = 0
					}
				}
			} else {
				for jj, v := range row {
					if v <= 0 {
						row[jj] = 0
					}
				}
			}
		}
	}
}
