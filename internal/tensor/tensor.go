// Package tensor provides dense float64 tensors and the numerical kernels
// (matrix multiply, im2col, elementwise maps) used by the neural-network
// training substrate. Everything is CPU-only, allocation-conscious and
// parallelized across goroutines where the problem size warrants it.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major float64 tensor. The zero value is an empty
// tensor; use New or From to construct usable instances.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			// Keep shape out of the message: passing it to Sprintf would
			// make it escape, forcing every variadic call site (including
			// the EnsureShape hot path) to heap-allocate its argument
			// slice.
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}
}

// From wraps the given data slice in a tensor with the given shape. The
// slice is used directly (not copied); it panics if the length does not
// match the shape volume.
func From(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (need %d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// EnsureShape returns t when it already has exactly the wanted shape and
// a fresh zeroed tensor otherwise — the workspace (re)allocation policy
// shared by the layer, loss and aggregation scratch across the codebase.
// Contents of a reused tensor are preserved; callers that need zeroed
// scratch must Zero it themselves when t comes back unchanged.
//
// fedlint:hotpath
func EnsureShape(t *Tensor, shape ...int) *Tensor {
	if t != nil && len(t.shape) == len(shape) {
		same := true
		for i, d := range shape {
			if t.shape[i] != d {
				same = false
				break
			}
		}
		if same {
			return t
		}
	}
	return New(shape...) //fedlint:allow hotalloc — reallocates only when the batch geometry changes, never in steady state
}

// Randn fills a new tensor of the given shape with samples from a normal
// distribution with the given standard deviation, using rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * std
	}
	return t
}

// Shape returns the tensor shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the backing slice in row-major order. Mutations are visible
// to the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape of equal
// volume. It panics on volume mismatch.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (len %d) to %v", t.shape, len(t.data), shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}
}

// Zero sets all elements to zero.
//
// fedlint:hotpath
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Scale multiplies every element by a.
//
// fedlint:hotpath
func (t *Tensor) Scale(a float64) {
	for i := range t.data {
		t.data[i] *= a
	}
}

// AddScaled adds a*src to t elementwise. The tensors must have equal length.
//
// fedlint:hotpath
func (t *Tensor) AddScaled(a float64, src *Tensor) {
	if len(src.data) != len(t.data) {
		panic("tensor: AddScaled length mismatch")
	}
	for i, v := range src.data {
		t.data[i] += a * v
	}
}

// Add adds src to t elementwise.
func (t *Tensor) Add(src *Tensor) { t.AddScaled(1, src) }

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float64) float64) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether two tensors have identical shapes and elements
// within tolerance eps.
func Equal(a, b *Tensor, eps float64) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > eps {
			return false
		}
	}
	return true
}

// String renders a compact description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}
