// Package tensor provides dense float32/float64 tensors and the
// numerical kernels (matrix multiply, implicit-GEMM convolution,
// elementwise maps) used by the neural-network training substrate.
// Everything is CPU-only, allocation-conscious and parallelized across
// goroutines where the problem size warrants it.
//
// The element type is a compile-time generic choice: TensorOf[T] is the
// real type, Tensor is an alias for TensorOf[float64] (the reference
// precision), and every kernel is instantiated per element type.
// Scalar-crossing accessors (At, Set, Fill, Sum, …) keep float64
// signatures so precision-agnostic callers never see T; only Data
// exposes the raw element type.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// TensorOf is a dense, row-major tensor over element type T. The zero
// value is an empty tensor; use NewOf or From to construct usable
// instances.
type TensorOf[T Float] struct {
	shape []int
	data  []T
}

// Tensor is the float64 instantiation — the reference precision used by
// the federated aggregation path and all precision-agnostic callers.
type Tensor = TensorOf[float64]

// New returns a zero-filled float64 tensor with the given shape. It
// panics if any dimension is negative.
func New(shape ...int) *Tensor { return NewOf[float64](shape...) }

// NewOf returns a zero-filled tensor of element type T with the given
// shape. It panics if any dimension is negative.
func NewOf[T Float](shape ...int) *TensorOf[T] {
	n := 1
	for _, d := range shape {
		if d < 0 {
			// Keep shape out of the message: passing it to Sprintf would
			// make it escape, forcing every variadic call site (including
			// the EnsureShape hot path) to heap-allocate its argument
			// slice.
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &TensorOf[T]{shape: s, data: make([]T, n)}
}

// From wraps the given data slice in a tensor with the given shape. The
// slice is used directly (not copied); it panics if the length does not
// match the shape volume.
func From[T Float](data []T, shape ...int) *TensorOf[T] {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (need %d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &TensorOf[T]{shape: s, data: data}
}

// EnsureShape returns t when it already has exactly the wanted shape and
// a fresh zeroed tensor otherwise — the workspace (re)allocation policy
// shared by the layer, loss and aggregation scratch across the codebase.
// Contents of a reused tensor are preserved; callers that need zeroed
// scratch must Zero it themselves when t comes back unchanged.
//
// fedlint:hotpath
func EnsureShape[T Float](t *TensorOf[T], shape ...int) *TensorOf[T] {
	if t != nil && len(t.shape) == len(shape) {
		same := true
		for i, d := range shape {
			if t.shape[i] != d {
				same = false
				break
			}
		}
		if same {
			return t
		}
	}
	return NewOf[T](shape...) //fedlint:allow hotalloc — reallocates only when the batch geometry changes, never in steady state
}

// Randn fills a new float64 tensor of the given shape with samples from
// a normal distribution with the given standard deviation, using rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	return RandnOf[float64](rng, std, shape...)
}

// RandnOf is Randn for an arbitrary element type. The draw count and
// sequence are precision-independent (one NormFloat64 per element), so
// an f32 and an f64 model built from the same seed see the same
// underlying random stream.
func RandnOf[T Float](rng *rand.Rand, std float64, shape ...int) *TensorOf[T] {
	t := NewOf[T](shape...)
	for i := range t.data {
		t.data[i] = T(rng.NormFloat64() * std)
	}
	return t
}

// Shape returns the tensor shape. The returned slice must not be mutated.
func (t *TensorOf[T]) Shape() []int { return t.shape }

// Data returns the backing slice in row-major order. Mutations are visible
// to the tensor.
func (t *TensorOf[T]) Data() []T { return t.data }

// Len returns the total number of elements.
func (t *TensorOf[T]) Len() int { return len(t.data) }

// Dim returns the size of dimension i.
func (t *TensorOf[T]) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *TensorOf[T]) Rank() int { return len(t.shape) }

// At returns the element at the given multi-index.
func (t *TensorOf[T]) At(idx ...int) float64 {
	return float64(t.data[t.offset(idx)])
}

// Set assigns the element at the given multi-index.
func (t *TensorOf[T]) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = T(v)
}

func (t *TensorOf[T]) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy of the tensor.
func (t *TensorOf[T]) Clone() *TensorOf[T] {
	c := NewOf[T](t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape of equal
// volume. It panics on volume mismatch.
func (t *TensorOf[T]) Reshape(shape ...int) *TensorOf[T] {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (len %d) to %v", t.shape, len(t.data), shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &TensorOf[T]{shape: s, data: t.data}
}

// Zero sets all elements to zero.
//
// fedlint:hotpath
func (t *TensorOf[T]) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *TensorOf[T]) Fill(v float64) {
	tv := T(v)
	for i := range t.data {
		t.data[i] = tv
	}
}

// Scale multiplies every element by a.
//
// fedlint:hotpath
func (t *TensorOf[T]) Scale(a float64) {
	av := T(a)
	for i := range t.data {
		t.data[i] *= av
	}
}

// AddScaled adds a*src to t elementwise. The tensors must have equal length.
//
// fedlint:hotpath
func (t *TensorOf[T]) AddScaled(a float64, src *TensorOf[T]) {
	if len(src.data) != len(t.data) {
		panic("tensor: AddScaled length mismatch")
	}
	av := T(a)
	for i, v := range src.data {
		t.data[i] += av * v
	}
}

// Add adds src to t elementwise.
func (t *TensorOf[T]) Add(src *TensorOf[T]) { t.AddScaled(1, src) }

// Apply replaces every element x with f(x). The map runs through
// float64, which is exact for f64 tensors and rounds once per element
// for f32.
func (t *TensorOf[T]) Apply(f func(float64) float64) {
	for i, v := range t.data {
		t.data[i] = T(f(float64(v)))
	}
}

// Sum returns the sum of all elements, accumulated in float64.
func (t *TensorOf[T]) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *TensorOf[T]) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether two tensors have identical shapes and elements
// within tolerance eps.
func Equal[T Float](a, b *TensorOf[T], eps float64) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	for i := range a.data {
		if math.Abs(float64(a.data[i])-float64(b.data[i])) > eps {
			return false
		}
	}
	return true
}

// String renders a compact description, not the full contents.
func (t *TensorOf[T]) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}
