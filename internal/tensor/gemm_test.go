package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	return randTensorOf[float64](rng, shape...)
}

func randTensorOf[T Float](rng *rand.Rand, shape ...int) *TensorOf[T] {
	t := NewOf[T](shape...)
	for i := range t.Data() {
		t.Data()[i] = T(rng.NormFloat64())
	}
	return t
}

// blockedInto forces the blocked kernel (bypassing the small-shape naive
// fast path) with the same stride setup as gemm, so property tests can
// exercise packing/micro-kernel logic on tiny shapes too.
func blockedInto[T Float](dst, a, b *TensorOf[T], transA, transB bool, e epi[T]) {
	mr, nr := microTile[T]()
	blockedTileInto(dst, a, b, transA, transB, e, mr, nr)
}

// blockedTileInto is blockedInto with an explicit register tile, used by
// the tile bake-off benchmarks and the cross-tile equivalence test.
func blockedTileInto[T Float](dst, a, b *TensorOf[T], transA, transB bool, e epi[T], mr, nr int) {
	var m, k, n int
	var ars, acs, brs, bcs int
	if transA {
		k, m = a.Dim(0), a.Dim(1)
		ars, acs = 1, m
	} else {
		m, k = a.Dim(0), a.Dim(1)
		ars, acs = k, 1
	}
	if transB {
		n = b.Dim(0)
		brs, bcs = 1, k
	} else {
		n = b.Dim(1)
		brs, bcs = n, 1
	}
	gemmBlockedOps(dst.data,
		packSrc[T]{d: a.data, rs: ars, cs: acs},
		packSrc[T]{d: b.data, rs: brs, cs: bcs},
		m, n, k, mr, nr, e)
}

// maxAbsDiff returns the largest elementwise |a−b|.
func maxAbsDiff[T Float](a, b *TensorOf[T]) float64 {
	worst := 0.0
	for i, v := range a.Data() {
		if d := math.Abs(float64(v) - float64(b.Data()[i])); d > worst {
			worst = d
		}
	}
	return worst
}

// testBlockedMatchesNaive sweeps all three layouts over every (m, k, n)
// combination from a size set covering 1×1, sub-tile, exactly one tile,
// and one-past-a-tile ragged edges, comparing the blocked kernel
// (forced, even below the small cutoff) against the retained naive
// references. The tolerance comes from the element type: ≈1e-12 at
// float64, ≈1e-4 at float32.
func testBlockedMatchesNaive[T Float](t *testing.T) {
	sizes := []int{1, 3, 5, 17, 64, 65}
	eps := Eps[T]()
	rng := rand.New(rand.NewSource(42))
	for _, m := range sizes {
		for _, k := range sizes {
			for _, n := range sizes {
				// Plain A·B.
				a := randTensorOf[T](rng, m, k)
				b := randTensorOf[T](rng, k, n)
				want, got := NewOf[T](m, n), NewOf[T](m, n)
				naiveMatMulInto(want, a, b)
				blockedInto(got, a, b, false, false, epi[T]{})
				if d := maxAbsDiff(want, got); d > eps {
					t.Fatalf("A·B m=%d k=%d n=%d: max diff %g", m, k, n, d)
				}
				// Aᵀ·B with A stored (k, m).
				at := randTensorOf[T](rng, k, m)
				naiveMatMulTransAInto(want, at, b)
				blockedInto(got, at, b, true, false, epi[T]{})
				if d := maxAbsDiff(want, got); d > eps {
					t.Fatalf("Aᵀ·B m=%d k=%d n=%d: max diff %g", m, k, n, d)
				}
				// A·Bᵀ with B stored (n, k).
				bt := randTensorOf[T](rng, n, k)
				naiveMatMulTransBInto(want, a, bt)
				blockedInto(got, a, bt, false, true, epi[T]{})
				if d := maxAbsDiff(want, got); d > eps {
					t.Fatalf("A·Bᵀ m=%d k=%d n=%d: max diff %g", m, k, n, d)
				}
			}
		}
	}
}

func TestBlockedMatchesNaiveProperty(t *testing.T) {
	t.Run("f64", testBlockedMatchesNaive[float64])
	t.Run("f32", testBlockedMatchesNaive[float32])
}

// TestBlockedTileEquivalence pins the tile-shape independence claim the
// bake-off relies on: within one KC panel every candidate register tile
// sums each output element in the same ascending-k order, so all tiles
// (including the f32 SIMD 8×4) produce bit-identical results.
func TestBlockedTileEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, k, n := 65, 130, 37 // ragged against every tile, single k-panel and multi-cell-free
	tiles := [][2]int{{4, 2}, {8, 2}, {4, 4}, {8, 4}}
	t.Run("f32", func(t *testing.T) {
		a := randTensorOf[float32](rng, m, k)
		b := randTensorOf[float32](rng, k, n)
		ref := NewOf[float32](m, n)
		blockedTileInto(ref, a, b, false, false, epi[float32]{}, 4, 2)
		for _, tile := range tiles[1:] {
			got := NewOf[float32](m, n)
			blockedTileInto(got, a, b, false, false, epi[float32]{}, tile[0], tile[1])
			for i, v := range got.Data() {
				if math.Float32bits(v) != math.Float32bits(ref.Data()[i]) {
					t.Fatalf("tile %dx%d differs from 4x2 at %d: %x vs %x",
						tile[0], tile[1], i, math.Float32bits(v), math.Float32bits(ref.Data()[i]))
				}
			}
		}
	})
	t.Run("f64", func(t *testing.T) {
		a := randTensorOf[float64](rng, m, k)
		b := randTensorOf[float64](rng, k, n)
		ref := NewOf[float64](m, n)
		blockedTileInto(ref, a, b, false, false, epi[float64]{}, 4, 2)
		for _, tile := range [][2]int{{8, 2}, {4, 4}} {
			got := NewOf[float64](m, n)
			blockedTileInto(got, a, b, false, false, epi[float64]{}, tile[0], tile[1])
			for i, v := range got.Data() {
				if math.Float64bits(v) != math.Float64bits(ref.Data()[i]) {
					t.Fatalf("tile %dx%d differs from 4x2 at %d", tile[0], tile[1], i)
				}
			}
		}
	})
}

// TestBlockedMatchesNaiveMultiPanel covers shapes that span several MC/NC
// grid cells and several KC k-panels, where the blocked kernel's partial-
// sum tree differs from the naive running sum — agreement must hold to
// accumulated-roundoff tolerance (100× the single-panel tolerance for
// the element type).
func testBlockedMultiPanel[T Float](t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eps := 100 * Eps[T]()
	m, k, n := 150, 600, 500 // rc=2, cc=3, three k-panels
	a := randTensorOf[T](rng, m, k)
	b := randTensorOf[T](rng, k, n)
	want, got := NewOf[T](m, n), NewOf[T](m, n)
	naiveMatMulInto(want, a, b)
	MatMulInto(got, a, b)
	if d := maxAbsDiff(want, got); d > eps {
		t.Fatalf("multi-panel A·B: max diff %g", d)
	}
	at := randTensorOf[T](rng, k, m)
	naiveMatMulTransAInto(want, at, b)
	MatMulTransAInto(got, at, b)
	if d := maxAbsDiff(want, got); d > eps {
		t.Fatalf("multi-panel Aᵀ·B: max diff %g", d)
	}
	bt := randTensorOf[T](rng, n, k)
	naiveMatMulTransBInto(want, a, bt)
	MatMulTransBInto(got, a, bt)
	if d := maxAbsDiff(want, got); d > eps {
		t.Fatalf("multi-panel A·Bᵀ: max diff %g", d)
	}
}

func TestBlockedMatchesNaiveMultiPanel(t *testing.T) {
	t.Run("f64", testBlockedMultiPanel[float64])
	t.Run("f32", testBlockedMultiPanel[float32])
}

// TestGEMMEpilogueBias checks the fused bias epilogue on both dispatch
// paths (naive small-shape and blocked) against an explicit reference.
func TestGEMMEpilogueBias(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{5, 7, 9}, {100, 80, 70}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(rng, m, k)
		bt := randTensor(rng, n, k)
		bias := randTensor(rng, n)
		want := New(m, n)
		naiveMatMulTransBInto(want, a, bt)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				want.Data()[i*n+j] += bias.Data()[j]
			}
		}
		got := New(m, n)
		MatMulTransBBiasInto(got, a, bt, bias)
		if d := maxAbsDiff(want, got); d > 1e-10 {
			t.Fatalf("bias epilogue m=%d k=%d n=%d: max diff %g", m, k, n, d)
		}
	}
}

// TestGEMMEpilogueBiasReLU checks the fused bias+ReLU epilogue, including
// the backward mask, on both dispatch paths.
func TestGEMMEpilogueBiasReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][3]int{{5, 7, 9}, {100, 80, 70}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(rng, m, k)
		bt := randTensor(rng, n, k)
		bias := randTensor(rng, n)
		pre := New(m, n)
		naiveMatMulTransBInto(pre, a, bt)
		got := New(m, n)
		mask := make([]bool, m*n)
		MatMulTransBBiasReLUInto(got, a, bt, bias, mask)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				v := pre.Data()[i*n+j] + bias.Data()[j]
				wantMask := v > 0
				if !wantMask {
					v = 0
				}
				idx := i*n + j
				if math.Abs(got.Data()[idx]-v) > 1e-10 {
					t.Fatalf("relu epilogue value (%d,%d): got %g want %g", i, j, got.Data()[idx], v)
				}
				if mask[idx] != wantMask {
					t.Fatalf("relu mask (%d,%d): got %v want %v", i, j, mask[idx], wantMask)
				}
			}
		}
	}
}

// withLanes runs f with the lane pool resized to n, restoring the previous
// capacity afterwards.
func withLanes(t *testing.T, n int, f func()) {
	t.Helper()
	old := MaxLanes()
	SetMaxLanes(n)
	defer SetMaxLanes(old)
	f()
}

// TestGEMMBitIdenticalAcrossLanes verifies the kernel's core determinism
// claim: on a shape spanning multiple grid cells and k-panels (so the
// parallel path genuinely fans out), results are bit-identical for every
// lane count, mirroring the federated engines' bit-identical-history
// guarantee in internal/fl/parallel_test.go.
func TestGEMMBitIdenticalAcrossLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, k, n := 260, 300, 250 // rc=3, cc=2 cells; two k-panels; mnk ≫ parallel cutoff
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	at := randTensor(rng, k, m)
	bt := randTensor(rng, n, k)
	bias := randTensor(rng, n)
	mask := make([]bool, m*n)

	type op struct {
		name string
		run  func(dst *Tensor)
	}
	ops := []op{
		{"MatMulInto", func(dst *Tensor) { MatMulInto(dst, a, b) }},
		{"MatMulTransAInto", func(dst *Tensor) { MatMulTransAInto(dst, at, b) }},
		{"MatMulTransBInto", func(dst *Tensor) { MatMulTransBInto(dst, a, bt) }},
		{"MatMulTransBBiasReLUInto", func(dst *Tensor) { MatMulTransBBiasReLUInto(dst, a, bt, bias, mask) }},
	}
	for _, o := range ops {
		ref := New(m, n)
		withLanes(t, 0, func() { o.run(ref) })
		for _, lanes := range []int{1, 2, 3, 8} {
			got := New(m, n)
			withLanes(t, lanes, func() { o.run(got) })
			for i, v := range got.Data() {
				if math.Float64bits(v) != math.Float64bits(ref.Data()[i]) {
					t.Fatalf("%s: lanes=%d differs from serial at %d: %x vs %x",
						o.name, lanes, i, math.Float64bits(v), math.Float64bits(ref.Data()[i]))
				}
			}
		}
	}
}

// TestGEMMBitIdenticalAcrossLanesF32 is the float32 instantiation of the
// lane-determinism claim, exercising the SIMD micro-kernel through the
// parallel dispatch path.
func TestGEMMBitIdenticalAcrossLanesF32(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m, k, n := 260, 300, 250
	a := randTensorOf[float32](rng, m, k)
	b := randTensorOf[float32](rng, k, n)
	at := randTensorOf[float32](rng, k, m)
	bt := randTensorOf[float32](rng, n, k)
	bias := randTensorOf[float32](rng, n)
	mask := make([]bool, m*n)

	type op struct {
		name string
		run  func(dst *TensorOf[float32])
	}
	ops := []op{
		{"MatMulInto", func(dst *TensorOf[float32]) { MatMulInto(dst, a, b) }},
		{"MatMulTransAInto", func(dst *TensorOf[float32]) { MatMulTransAInto(dst, at, b) }},
		{"MatMulTransBInto", func(dst *TensorOf[float32]) { MatMulTransBInto(dst, a, bt) }},
		{"MatMulTransBBiasReLUInto", func(dst *TensorOf[float32]) { MatMulTransBBiasReLUInto(dst, a, bt, bias, mask) }},
	}
	for _, o := range ops {
		ref := NewOf[float32](m, n)
		withLanes(t, 0, func() { o.run(ref) })
		for _, lanes := range []int{1, 2, 3, 8} {
			got := NewOf[float32](m, n)
			withLanes(t, lanes, func() { o.run(got) })
			for i, v := range got.Data() {
				if math.Float32bits(v) != math.Float32bits(ref.Data()[i]) {
					t.Fatalf("%s: lanes=%d differs from serial at %d: %x vs %x",
						o.name, lanes, i, math.Float32bits(v), math.Float32bits(ref.Data()[i]))
				}
			}
		}
	}
}

// TestGEMMKZeroAndEmpty pins the degenerate-shape contract: k=0 zeroes the
// output (then applies the epilogue), m=0 or n=0 is a no-op.
func TestGEMMKZeroAndEmpty(t *testing.T) {
	a := New(3, 0)
	b := New(0, 4)
	dst := New(3, 4)
	dst.Fill(99)
	MatMulInto(dst, a, b)
	for _, v := range dst.Data() {
		if v != 0 {
			t.Fatalf("k=0 must zero dst, got %v", v)
		}
	}
	bias := From([]float64{1, 2, 3, 4}, 4)
	bt := New(4, 0)
	MatMulTransBBiasInto(dst, a, bt, bias)
	for i, v := range dst.Data() {
		if v != bias.Data()[i%4] {
			t.Fatalf("k=0 bias epilogue: dst[%d]=%v", i, v)
		}
	}
}

func TestEnsureShape(t *testing.T) {
	a := New(3, 4)
	a.Fill(5)
	if got := EnsureShape(a, 3, 4); got != a {
		t.Fatal("EnsureShape must reuse an exact-shape tensor")
	}
	if a.Data()[0] != 5 {
		t.Fatal("EnsureShape must preserve reused contents")
	}
	b := EnsureShape(a, 4, 3)
	if b == a {
		t.Fatal("EnsureShape must reallocate on shape change")
	}
	if b.Dim(0) != 4 || b.Dim(1) != 3 || b.Data()[0] != 0 {
		t.Fatal("EnsureShape reallocation must be zeroed with the new shape")
	}
	if got := EnsureShape[float64](nil, 2, 2); got == nil || got.Len() != 4 {
		t.Fatal("EnsureShape must allocate for nil input")
	}
}

// Benchmark shapes are the dominant real GEMMs of the paper's two models
// at batch 20 (im2col-lowered): VGG6's block-3 conv (m=N·7·7, k=720, n=96)
// and LeNet's conv2 (m=N·8·8, k=500, n=40). Naive vs blocked on the same
// shape measures the single-thread kernel speedup recorded in
// BENCH_gemm.json; lanes are pinned to 0 so the comparison is serial.
func benchGEMMShapeOf[T Float](b *testing.B, m, k, n int, naive bool) {
	rng := rand.New(rand.NewSource(1))
	a := randTensorOf[T](rng, m, k)
	bt := randTensorOf[T](rng, n, k)
	dst := NewOf[T](m, n)
	old := MaxLanes()
	SetMaxLanes(0)
	defer SetMaxLanes(old)
	var z T
	b.SetBytes(int64(elemSize(z) * (m*k + n*k + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			naiveMatMulTransBInto(dst, a, bt)
		} else {
			MatMulTransBInto(dst, a, bt)
		}
	}
}

func elemSize[T Float](T) int {
	if isF32[T]() {
		return 4
	}
	return 8
}

func benchGEMMShape(b *testing.B, m, k, n int, naive bool) {
	benchGEMMShapeOf[float64](b, m, k, n, naive)
}

func BenchmarkGEMMNaiveVGG6Conv(b *testing.B)   { benchGEMMShape(b, 980, 720, 96, true) }
func BenchmarkGEMMBlockedVGG6Conv(b *testing.B) { benchGEMMShape(b, 980, 720, 96, false) }
func BenchmarkGEMMNaiveLeNetConv(b *testing.B)  { benchGEMMShape(b, 1280, 500, 40, true) }
func BenchmarkGEMMBlockedLeNetConv(b *testing.B) {
	benchGEMMShape(b, 1280, 500, 40, false)
}
func BenchmarkGEMMNaiveVGG6Dense(b *testing.B)   { benchGEMMShape(b, 20, 4704, 1120, true) }
func BenchmarkGEMMBlockedVGG6Dense(b *testing.B) { benchGEMMShape(b, 20, 4704, 1120, false) }

// float32 counterparts of the blocked benchmarks (the ≥1.5×-over-f64
// numbers recorded in BENCH_gemm.json).
func BenchmarkGEMMBlockedF32VGG6Conv(b *testing.B) {
	benchGEMMShapeOf[float32](b, 980, 720, 96, false)
}
func BenchmarkGEMMBlockedF32LeNetConv(b *testing.B) {
	benchGEMMShapeOf[float32](b, 1280, 500, 40, false)
}
func BenchmarkGEMMBlockedF32VGG6Dense(b *testing.B) {
	benchGEMMShapeOf[float32](b, 20, 4704, 1120, false)
}

// f32 register-tile bake-off: the candidate tiles the tentpole asked to
// re-derive, on the LeNet conv2 shape, serial. 8×4 routes to the SSE
// kernel on amd64; the others are the scalar candidates. Results are
// recorded under "f32_tile_bakeoff" in BENCH_gemm.json.
func benchF32Tile(b *testing.B, mr, nr int) {
	m, k, n := 1280, 500, 40
	rng := rand.New(rand.NewSource(1))
	a := randTensorOf[float32](rng, m, k)
	bt := randTensorOf[float32](rng, n, k)
	dst := NewOf[float32](m, n)
	old := MaxLanes()
	SetMaxLanes(0)
	defer SetMaxLanes(old)
	b.SetBytes(int64(4 * (m*k + n*k + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blockedTileInto(dst, a, bt, false, true, epi[float32]{}, mr, nr)
	}
}

func BenchmarkGEMMF32Tile4x2(b *testing.B) { benchF32Tile(b, 4, 2) }
func BenchmarkGEMMF32Tile8x2(b *testing.B) { benchF32Tile(b, 8, 2) }
func BenchmarkGEMMF32Tile4x4(b *testing.B) { benchF32Tile(b, 4, 4) }
func BenchmarkGEMMF32Tile8x4(b *testing.B) { benchF32Tile(b, 8, 4) }
