package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data() {
		t.Data()[i] = rng.NormFloat64()
	}
	return t
}

// blockedInto forces the blocked kernel (bypassing the small-shape naive
// fast path) with the same stride setup as gemm, so property tests can
// exercise packing/micro-kernel logic on tiny shapes too.
func blockedInto(dst, a, b *Tensor, transA, transB bool, e epi) {
	var m, k, n int
	var ars, acs, brs, bcs int
	if transA {
		k, m = a.Dim(0), a.Dim(1)
		ars, acs = 1, m
	} else {
		m, k = a.Dim(0), a.Dim(1)
		ars, acs = k, 1
	}
	if transB {
		n = b.Dim(0)
		brs, bcs = 1, k
	} else {
		n = b.Dim(1)
		brs, bcs = n, 1
	}
	gemmBlocked(dst.data, a.data, b.data, m, n, k, ars, acs, brs, bcs, e)
}

// maxAbsDiff returns the largest elementwise |a−b|.
func maxAbsDiff(a, b *Tensor) float64 {
	worst := 0.0
	for i, v := range a.Data() {
		if d := math.Abs(v - b.Data()[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestBlockedMatchesNaiveProperty sweeps all three layouts over every
// (m, k, n) combination from a size set covering 1×1, sub-tile, exactly
// one tile, and one-past-a-tile ragged edges, comparing the blocked
// kernel (forced, even below the small cutoff) against the retained naive
// references.
func TestBlockedMatchesNaiveProperty(t *testing.T) {
	sizes := []int{1, 3, 5, 17, 64, 65}
	rng := rand.New(rand.NewSource(42))
	for _, m := range sizes {
		for _, k := range sizes {
			for _, n := range sizes {
				// Plain A·B.
				a := randTensor(rng, m, k)
				b := randTensor(rng, k, n)
				want, got := New(m, n), New(m, n)
				naiveMatMulInto(want, a, b)
				blockedInto(got, a, b, false, false, epi{})
				if d := maxAbsDiff(want, got); d > 1e-12 {
					t.Fatalf("A·B m=%d k=%d n=%d: max diff %g", m, k, n, d)
				}
				// Aᵀ·B with A stored (k, m).
				at := randTensor(rng, k, m)
				naiveMatMulTransAInto(want, at, b)
				blockedInto(got, at, b, true, false, epi{})
				if d := maxAbsDiff(want, got); d > 1e-12 {
					t.Fatalf("Aᵀ·B m=%d k=%d n=%d: max diff %g", m, k, n, d)
				}
				// A·Bᵀ with B stored (n, k).
				bt := randTensor(rng, n, k)
				naiveMatMulTransBInto(want, a, bt)
				blockedInto(got, a, bt, false, true, epi{})
				if d := maxAbsDiff(want, got); d > 1e-12 {
					t.Fatalf("A·Bᵀ m=%d k=%d n=%d: max diff %g", m, k, n, d)
				}
			}
		}
	}
}

// TestBlockedMatchesNaiveMultiPanel covers shapes that span several MC/NC
// grid cells and several KC k-panels, where the blocked kernel's partial-
// sum tree differs from the naive running sum — agreement must hold to
// accumulated-roundoff tolerance.
func TestBlockedMatchesNaiveMultiPanel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, k, n := 150, 600, 500 // rc=2, cc=3, three k-panels
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	want, got := New(m, n), New(m, n)
	naiveMatMulInto(want, a, b)
	MatMulInto(got, a, b)
	if d := maxAbsDiff(want, got); d > 1e-10 {
		t.Fatalf("multi-panel A·B: max diff %g", d)
	}
	at := randTensor(rng, k, m)
	naiveMatMulTransAInto(want, at, b)
	MatMulTransAInto(got, at, b)
	if d := maxAbsDiff(want, got); d > 1e-10 {
		t.Fatalf("multi-panel Aᵀ·B: max diff %g", d)
	}
	bt := randTensor(rng, n, k)
	naiveMatMulTransBInto(want, a, bt)
	MatMulTransBInto(got, a, bt)
	if d := maxAbsDiff(want, got); d > 1e-10 {
		t.Fatalf("multi-panel A·Bᵀ: max diff %g", d)
	}
}

// TestGEMMEpilogueBias checks the fused bias epilogue on both dispatch
// paths (naive small-shape and blocked) against an explicit reference.
func TestGEMMEpilogueBias(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{5, 7, 9}, {100, 80, 70}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(rng, m, k)
		bt := randTensor(rng, n, k)
		bias := randTensor(rng, n)
		want := New(m, n)
		naiveMatMulTransBInto(want, a, bt)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				want.Data()[i*n+j] += bias.Data()[j]
			}
		}
		got := New(m, n)
		MatMulTransBBiasInto(got, a, bt, bias)
		if d := maxAbsDiff(want, got); d > 1e-10 {
			t.Fatalf("bias epilogue m=%d k=%d n=%d: max diff %g", m, k, n, d)
		}
	}
}

// TestGEMMEpilogueBiasReLU checks the fused bias+ReLU epilogue, including
// the backward mask, on both dispatch paths.
func TestGEMMEpilogueBiasReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][3]int{{5, 7, 9}, {100, 80, 70}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(rng, m, k)
		bt := randTensor(rng, n, k)
		bias := randTensor(rng, n)
		pre := New(m, n)
		naiveMatMulTransBInto(pre, a, bt)
		got := New(m, n)
		mask := make([]bool, m*n)
		MatMulTransBBiasReLUInto(got, a, bt, bias, mask)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				v := pre.Data()[i*n+j] + bias.Data()[j]
				wantMask := v > 0
				if !wantMask {
					v = 0
				}
				idx := i*n + j
				if math.Abs(got.Data()[idx]-v) > 1e-10 {
					t.Fatalf("relu epilogue value (%d,%d): got %g want %g", i, j, got.Data()[idx], v)
				}
				if mask[idx] != wantMask {
					t.Fatalf("relu mask (%d,%d): got %v want %v", i, j, mask[idx], wantMask)
				}
			}
		}
	}
}

// withLanes runs f with the lane pool resized to n, restoring the previous
// capacity afterwards.
func withLanes(t *testing.T, n int, f func()) {
	t.Helper()
	old := MaxLanes()
	SetMaxLanes(n)
	defer SetMaxLanes(old)
	f()
}

// TestGEMMBitIdenticalAcrossLanes verifies the kernel's core determinism
// claim: on a shape spanning multiple grid cells and k-panels (so the
// parallel path genuinely fans out), results are bit-identical for every
// lane count, mirroring the federated engines' bit-identical-history
// guarantee in internal/fl/parallel_test.go.
func TestGEMMBitIdenticalAcrossLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, k, n := 260, 300, 250 // rc=3, cc=2 cells; two k-panels; mnk ≫ parallel cutoff
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	at := randTensor(rng, k, m)
	bt := randTensor(rng, n, k)
	bias := randTensor(rng, n)
	mask := make([]bool, m*n)

	type op struct {
		name string
		run  func(dst *Tensor)
	}
	ops := []op{
		{"MatMulInto", func(dst *Tensor) { MatMulInto(dst, a, b) }},
		{"MatMulTransAInto", func(dst *Tensor) { MatMulTransAInto(dst, at, b) }},
		{"MatMulTransBInto", func(dst *Tensor) { MatMulTransBInto(dst, a, bt) }},
		{"MatMulTransBBiasReLUInto", func(dst *Tensor) { MatMulTransBBiasReLUInto(dst, a, bt, bias, mask) }},
	}
	for _, o := range ops {
		ref := New(m, n)
		withLanes(t, 0, func() { o.run(ref) })
		for _, lanes := range []int{1, 2, 3, 8} {
			got := New(m, n)
			withLanes(t, lanes, func() { o.run(got) })
			for i, v := range got.Data() {
				if math.Float64bits(v) != math.Float64bits(ref.Data()[i]) {
					t.Fatalf("%s: lanes=%d differs from serial at %d: %x vs %x",
						o.name, lanes, i, math.Float64bits(v), math.Float64bits(ref.Data()[i]))
				}
			}
		}
	}
}

// TestGEMMKZeroAndEmpty pins the degenerate-shape contract: k=0 zeroes the
// output (then applies the epilogue), m=0 or n=0 is a no-op.
func TestGEMMKZeroAndEmpty(t *testing.T) {
	a := New(3, 0)
	b := New(0, 4)
	dst := New(3, 4)
	dst.Fill(99)
	MatMulInto(dst, a, b)
	for _, v := range dst.Data() {
		if v != 0 {
			t.Fatalf("k=0 must zero dst, got %v", v)
		}
	}
	bias := From([]float64{1, 2, 3, 4}, 4)
	bt := New(4, 0)
	MatMulTransBBiasInto(dst, a, bt, bias)
	for i, v := range dst.Data() {
		if v != bias.Data()[i%4] {
			t.Fatalf("k=0 bias epilogue: dst[%d]=%v", i, v)
		}
	}
}

func TestEnsureShape(t *testing.T) {
	a := New(3, 4)
	a.Fill(5)
	if got := EnsureShape(a, 3, 4); got != a {
		t.Fatal("EnsureShape must reuse an exact-shape tensor")
	}
	if a.Data()[0] != 5 {
		t.Fatal("EnsureShape must preserve reused contents")
	}
	b := EnsureShape(a, 4, 3)
	if b == a {
		t.Fatal("EnsureShape must reallocate on shape change")
	}
	if b.Dim(0) != 4 || b.Dim(1) != 3 || b.Data()[0] != 0 {
		t.Fatal("EnsureShape reallocation must be zeroed with the new shape")
	}
	if got := EnsureShape(nil, 2, 2); got == nil || got.Len() != 4 {
		t.Fatal("EnsureShape must allocate for nil input")
	}
}

// Benchmark shapes are the dominant real GEMMs of the paper's two models
// at batch 20 (im2col-lowered): VGG6's block-3 conv (m=N·7·7, k=720, n=96)
// and LeNet's conv2 (m=N·8·8, k=500, n=40). Naive vs blocked on the same
// shape measures the single-thread kernel speedup recorded in
// BENCH_gemm.json; lanes are pinned to 0 so the comparison is serial.
func benchGEMMShape(b *testing.B, m, k, n int, naive bool) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, m, k)
	bt := randTensor(rng, n, k)
	dst := New(m, n)
	old := MaxLanes()
	SetMaxLanes(0)
	defer SetMaxLanes(old)
	b.SetBytes(int64(8 * (m*k + n*k + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			naiveMatMulTransBInto(dst, a, bt)
		} else {
			MatMulTransBInto(dst, a, bt)
		}
	}
}

func BenchmarkGEMMNaiveVGG6Conv(b *testing.B)   { benchGEMMShape(b, 980, 720, 96, true) }
func BenchmarkGEMMBlockedVGG6Conv(b *testing.B) { benchGEMMShape(b, 980, 720, 96, false) }
func BenchmarkGEMMNaiveLeNetConv(b *testing.B)  { benchGEMMShape(b, 1280, 500, 40, true) }
func BenchmarkGEMMBlockedLeNetConv(b *testing.B) {
	benchGEMMShape(b, 1280, 500, 40, false)
}
func BenchmarkGEMMNaiveVGG6Dense(b *testing.B)   { benchGEMMShape(b, 20, 4704, 1120, true) }
func BenchmarkGEMMBlockedVGG6Dense(b *testing.B) { benchGEMMShape(b, 20, 4704, 1120, false) }
