// float32 8×4 GEMM micro-kernel, SSE2 baseline (no CPUID dispatch: SSE2
// is architecturally guaranteed on amd64). Register plan:
//
//	X0–X7  one 4-lane C row each (c[r][0..3])
//	X8     the current 4-wide B row b[l][0..3]
//	X9–X15 broadcast A scalars a[r][l], one MULPS temporary per row
//
// Per k step: 1 MOVUPS B load + per row (MOVSS load, SHUFPS broadcast,
// MULPS, ADDPS) = 32 f32 FLOPs on 8 independent accumulator chains.
// Accumulation is MULPS-then-ADDPS (two roundings, no FMA) in strictly
// ascending k order — bitwise the same schedule as the scalar fallback,
// which keeps cross-platform goldens byte-identical.

#include "textflag.h"

// func microF32SIMD(kc int, ap, bp, acc *float32)
TEXT ·microF32SIMD(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ acc+24(FP), DX

	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

	TESTQ CX, CX
	JZ    store

loop:
	MOVUPS (DI), X8

	MOVSS  (SI), X9
	SHUFPS $0x00, X9, X9
	MULPS  X8, X9
	ADDPS  X9, X0

	MOVSS  4(SI), X10
	SHUFPS $0x00, X10, X10
	MULPS  X8, X10
	ADDPS  X10, X1

	MOVSS  8(SI), X11
	SHUFPS $0x00, X11, X11
	MULPS  X8, X11
	ADDPS  X11, X2

	MOVSS  12(SI), X12
	SHUFPS $0x00, X12, X12
	MULPS  X8, X12
	ADDPS  X12, X3

	MOVSS  16(SI), X13
	SHUFPS $0x00, X13, X13
	MULPS  X8, X13
	ADDPS  X13, X4

	MOVSS  20(SI), X14
	SHUFPS $0x00, X14, X14
	MULPS  X8, X14
	ADDPS  X14, X5

	MOVSS  24(SI), X15
	SHUFPS $0x00, X15, X15
	MULPS  X8, X15
	ADDPS  X15, X6

	MOVSS  28(SI), X9
	SHUFPS $0x00, X9, X9
	MULPS  X8, X9
	ADDPS  X9, X7

	ADDQ $32, SI
	ADDQ $16, DI
	DECQ CX
	JNZ  loop

store:
	MOVUPS X0, (DX)
	MOVUPS X1, 16(DX)
	MOVUPS X2, 32(DX)
	MOVUPS X3, 48(DX)
	MOVUPS X4, 64(DX)
	MOVUPS X5, 80(DX)
	MOVUPS X6, 96(DX)
	MOVUPS X7, 112(DX)
	RET
