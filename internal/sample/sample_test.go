package sample

import (
	"testing"
)

func assertCohortShape(t *testing.T, got []int, n, maxK int) {
	t.Helper()
	if len(got) > maxK {
		t.Fatalf("cohort size %d > max %d", len(got), maxK)
	}
	for i, id := range got {
		if id < 0 || id >= n {
			t.Fatalf("cohort[%d] = %d out of population [0,%d)", i, id, n)
		}
		if i > 0 && got[i-1] >= id {
			t.Fatalf("cohort not strictly ascending at %d: %d then %d", i, got[i-1], id)
		}
	}
}

func TestUniformDeterministicAndValid(t *testing.T) {
	const n, k = 10000, 64
	a := NewUniform(n, k, 42)
	b := NewUniform(n, k, 42)
	var bufA, bufB []int
	for round := 0; round < 10; round++ {
		ca := a.Cohort(round, bufA)
		cb := b.Cohort(round, bufB)
		assertCohortShape(t, ca, n, k)
		if len(ca) != k {
			t.Fatalf("round %d: uniform cohort has %d clients, want %d", round, len(ca), k)
		}
		if len(ca) != len(cb) {
			t.Fatalf("round %d: cohort sizes differ: %d vs %d", round, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("round %d: same seed produced different cohorts at %d: %d vs %d", round, i, ca[i], cb[i])
			}
		}
		bufA, bufB = ca, cb
	}
}

func TestUniformRoundsDiffer(t *testing.T) {
	u := NewUniform(100000, 32, 7)
	c0 := append([]int(nil), u.Cohort(0, nil)...)
	c1 := u.Cohort(1, nil)
	same := len(c0) == len(c1)
	if same {
		for i := range c0 {
			if c0[i] != c1[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("rounds 0 and 1 selected identical cohorts; stream is not advancing per round")
	}
}

func TestUniformSeedsDiffer(t *testing.T) {
	a := NewUniform(100000, 32, 1).Cohort(0, nil)
	b := NewUniform(100000, 32, 2).Cohort(0, nil)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds selected identical cohorts")
	}
}

func TestUniformWholePopulation(t *testing.T) {
	u := NewUniform(5, 9, 3)
	got := u.Cohort(4, nil)
	if len(got) != 5 {
		t.Fatalf("k >= n cohort has %d clients, want 5", len(got))
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("identity cohort[%d] = %d", i, id)
		}
	}
}

func TestUniformStatelessAcrossCalls(t *testing.T) {
	u := NewUniform(10000, 16, 9)
	// Calling rounds out of order must not change any round's cohort.
	r5First := append([]int(nil), u.Cohort(5, nil)...)
	u.Cohort(0, nil)
	u.Cohort(3, nil)
	r5Again := u.Cohort(5, nil)
	for i := range r5First {
		if r5First[i] != r5Again[i] {
			t.Fatal("cohort for round 5 depends on call history")
		}
	}
}

func TestAvailabilityDeterministicAndEligible(t *testing.T) {
	const n, k = 20000, 50
	a := NewAvailability(n, k, 11)
	b := NewAvailability(n, k, 11)
	var buf []int
	for round := 0; round < 30; round++ {
		ca := a.Cohort(round, buf)
		cb := b.Cohort(round, nil)
		assertCohortShape(t, ca, n, k)
		if len(ca) != len(cb) {
			t.Fatalf("round %d: sizes differ", round)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("round %d: same seed produced different cohorts", round)
			}
			if !a.Eligible(ca[i], round) {
				t.Fatalf("round %d: selected client %d is not eligible", round, ca[i])
			}
		}
		if len(ca) != k {
			t.Fatalf("round %d: short cohort (%d of %d) at 25%% eligibility over n=%d", round, len(ca), k, n)
		}
		buf = ca
	}
}

func TestAvailabilityWindowsVary(t *testing.T) {
	a := NewAvailability(1000, 10, 5)
	// With 6-hour windows, at any instant roughly a quarter of clients are
	// eligible — certainly not all or none.
	eligible := 0
	for id := 0; id < 1000; id++ {
		if a.Eligible(id, 0) {
			eligible++
		}
	}
	if eligible == 0 || eligible == 1000 {
		t.Fatalf("eligible = %d of 1000; windows are degenerate", eligible)
	}
	if eligible < 100 || eligible > 500 {
		t.Fatalf("eligible = %d of 1000; want roughly 250 for 6/24-hour windows", eligible)
	}
}

func TestAvailabilityFullDayWindow(t *testing.T) {
	a := NewAvailability(100, 10, 5)
	a.WindowHours = 24
	for id := 0; id < 100; id++ {
		if !a.Eligible(id, 3) {
			t.Fatalf("client %d ineligible under a 24-hour window", id)
		}
	}
}

func TestSamplersAllocFree(t *testing.T) {
	u := NewUniform(1_000_000, 128, 42)
	buf := make([]int, u.CohortSize())
	u.Cohort(0, buf) // warm the scratch set
	allocs := testing.AllocsPerRun(50, func() {
		buf = u.Cohort(1, buf)
	})
	if allocs > 0 {
		t.Errorf("Uniform.Cohort allocates %.1f per round in steady state", allocs)
	}

	av := NewAvailability(1_000_000, 128, 42)
	buf2 := make([]int, av.CohortSize())
	av.Cohort(0, buf2)
	allocs = testing.AllocsPerRun(50, func() {
		buf2 = av.Cohort(1, buf2[:cap(buf2)])
	})
	if allocs > 0 {
		t.Errorf("Availability.Cohort allocates %.1f per round in steady state", allocs)
	}
}

func TestIntnUniformBounds(t *testing.T) {
	r := rng{state: 123}
	for i := 0; i < 10000; i++ {
		v := r.intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("intn(7) = %d", v)
		}
	}
}
