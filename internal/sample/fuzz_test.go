package sample

import "testing"

// checkCohort asserts the Sampler contract on one drawn cohort: indices
// strictly ascending (sorted and deduplicated), in [0, population), and
// no larger than the cohort size.
func checkCohort(t *testing.T, name string, got []int, population, k int) {
	t.Helper()
	if len(got) > k {
		t.Fatalf("%s: cohort of %d exceeds K=%d", name, len(got), k)
	}
	for i, id := range got {
		if id < 0 || id >= population {
			t.Fatalf("%s: index %d out of [0, %d)", name, id, population)
		}
		if i > 0 && got[i-1] >= id {
			t.Fatalf("%s: cohort not strictly ascending at %d: %v", name, i, got)
		}
	}
}

// FuzzCohort drives both built-in samplers with arbitrary population,
// cohort size, seed and round, checking sortedness, bounds, the
// eligibility invariant (Availability), and determinism: a fresh sampler
// with the same parameters — and the same sampler re-asked for the same
// round — must reproduce the cohort exactly.
func FuzzCohort(f *testing.F) {
	f.Add(int64(1), 100, 10, 0)
	f.Add(int64(7), 1, 1, 3)
	f.Add(int64(42), 2000, 300, 17) // rejection sampling with scarce eligibility
	f.Add(int64(-5), 50, 50, 240)   // whole-population identity cohort
	f.Fuzz(func(t *testing.T, seed int64, population, cohort, round int) {
		n := 1 + absInt(population)%2048
		k := absInt(cohort) % 301
		r := absInt(round) % 10000

		u := NewUniform(n, k, seed)
		got := u.Cohort(r, nil)
		checkCohort(t, "uniform", got, n, u.CohortSize())
		if k >= n && len(got) != n {
			t.Fatalf("uniform: K>=N must select everyone, got %d of %d", len(got), n)
		}
		if k < n && len(got) != k {
			t.Fatalf("uniform: selected %d clients, want exactly %d", len(got), k)
		}
		again := NewUniform(n, k, seed).Cohort(r, nil)
		if !equalInts(got, again) {
			t.Fatalf("uniform: fresh sampler diverged: %v vs %v", got, again)
		}
		// Stateless across rounds: drawing another round then re-asking
		// for r must not change the answer.
		u.Cohort(r+1, nil)
		if redraw := u.Cohort(r, make([]int, 0, k)); !equalInts(got, redraw) {
			t.Fatalf("uniform: redraw of round %d diverged: %v vs %v", r, got, redraw)
		}

		a := NewAvailability(n, k, seed)
		got = a.Cohort(r, nil)
		checkCohort(t, "availability", got, n, a.CohortSize())
		for _, id := range got {
			if !a.Eligible(id, r) {
				t.Fatalf("availability: selected client %d is not eligible in round %d", id, r)
			}
		}
		again = NewAvailability(n, k, seed).Cohort(r, nil)
		if !equalInts(got, again) {
			t.Fatalf("availability: fresh sampler diverged: %v vs %v", got, again)
		}
	})
}

func absInt(v int) int {
	if v < 0 {
		v = -v
	}
	if v < 0 { // math.MinInt negates to itself
		return 0
	}
	return v
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
