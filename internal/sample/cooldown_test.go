package sample

import (
	"reflect"
	"testing"
)

func cooldownFixture() *Cooldown {
	return NewCooldown(NewUniform(100, 100, 1), 1)
}

func TestCooldownImplementsInterfaces(t *testing.T) {
	var s Sampler = cooldownFixture()
	if _, ok := s.(FailureReporter); !ok {
		t.Fatal("Cooldown does not implement FailureReporter")
	}
	if s.Name() != "uniform+cooldown" {
		t.Fatalf("Name() = %q", s.Name())
	}
	if s.Population() != 100 || s.CohortSize() != 100 {
		t.Fatalf("Population/CohortSize = %d/%d", s.Population(), s.CohortSize())
	}
}

func TestCooldownSkipsFailedClient(t *testing.T) {
	c := cooldownFixture()
	c.ReportFailure(7, 0) // first failure: skip round 1, back at round 2
	sel := c.Cohort(1, nil)
	for _, id := range sel {
		if id == 7 {
			t.Fatal("client 7 selected during cooldown")
		}
	}
	if len(sel) != 99 {
		t.Fatalf("cohort size %d, want 99", len(sel))
	}
	found := false
	for _, id := range c.Cohort(2, nil) {
		if id == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("client 7 still filtered after cooldown expiry")
	}
}

func TestCooldownExponentialBackoff(t *testing.T) {
	c := cooldownFixture()
	// Consecutive failures double the cooldown: 1, 2, 4, … rounds.
	c.ReportFailure(3, 0)
	if !c.OnCooldown(3, 1) || c.OnCooldown(3, 2) {
		t.Fatal("first failure should cool down exactly round 1")
	}
	c.ReportFailure(3, 2)
	if !c.OnCooldown(3, 4) || c.OnCooldown(3, 5) {
		t.Fatal("second failure should cool down rounds 3-4")
	}
	c.ReportFailure(3, 5)
	if !c.OnCooldown(3, 9) || c.OnCooldown(3, 10) {
		t.Fatal("third failure should cool down rounds 6-9")
	}
}

func TestCooldownCapped(t *testing.T) {
	c := cooldownFixture()
	c.MaxRounds = 4
	for r := 0; r < 50; r++ {
		c.ReportFailure(1, r)
	}
	if !c.OnCooldown(1, 53) {
		t.Fatal("should still be cooling down at round 53")
	}
	if c.OnCooldown(1, 54) {
		t.Fatal("cooldown exceeded MaxRounds cap")
	}
}

func TestCooldownSuccessResets(t *testing.T) {
	c := cooldownFixture()
	c.ReportFailure(5, 0)
	c.ReportFailure(5, 2)
	c.ReportSuccess(5)
	if c.OnCooldown(5, 3) {
		t.Fatal("success did not clear the backoff record")
	}
	// The strike count restarts too.
	c.ReportFailure(5, 10)
	if c.OnCooldown(5, 12) {
		t.Fatal("strikes were not reset by the success")
	}
}

func TestCooldownSnapshotRestore(t *testing.T) {
	c := cooldownFixture()
	c.ReportFailure(9, 0)
	c.ReportFailure(2, 0)
	c.ReportFailure(2, 2)
	snap := c.Snapshot()
	want := []CooldownEntry{{Client: 2, Strikes: 2, Until: 5}, {Client: 9, Strikes: 1, Until: 2}}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("Snapshot = %+v, want %+v", snap, want)
	}

	d := cooldownFixture()
	d.Restore(snap)
	for round := 0; round < 8; round++ {
		a := c.Cohort(round, nil)
		b := d.Cohort(round, nil)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("round %d: restored cohort differs", round)
		}
	}
	if snap2 := d.Snapshot(); !reflect.DeepEqual(snap2, snap) {
		t.Fatalf("re-snapshot %+v, want %+v", snap2, snap)
	}
	if c.Snapshot() == nil {
		t.Fatal("non-empty state snapshotted to nil")
	}
	if cooldownFixture().Snapshot() != nil {
		t.Fatal("empty state should snapshot to nil")
	}
}

func TestCooldownDeterministicAndSorted(t *testing.T) {
	a, b := cooldownFixture(), cooldownFixture()
	for _, c := range []*Cooldown{a, b} {
		c.ReportFailure(10, 0)
		c.ReportFailure(20, 0)
		c.ReportFailure(20, 2)
	}
	for round := 0; round < 6; round++ {
		sa, sb := a.Cohort(round, nil), b.Cohort(round, nil)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("round %d: cohorts differ", round)
		}
		for i := 1; i < len(sa); i++ {
			if sa[i] <= sa[i-1] {
				t.Fatalf("round %d: cohort not strictly ascending at %d", round, i)
			}
		}
	}
}

func TestCooldownCohortAllocFree(t *testing.T) {
	c := cooldownFixture()
	c.ReportFailure(7, 0)
	dst := make([]int, c.CohortSize())
	if allocs := testing.AllocsPerRun(50, func() {
		dst = c.Cohort(1, dst)
	}); allocs != 0 {
		t.Fatalf("Cohort allocates %v per call", allocs)
	}
}
