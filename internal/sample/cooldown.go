package sample

import "sort"

// FailureReporter is implemented by samplers that track per-client
// failure state. After each round's join the engines report every cohort
// member's outcome: ReportFailure for clients whose update was lost or
// rejected (injected faults, deadline drops, divergence), ReportSuccess
// for clients that delivered a usable update (including late-but-finished
// ones). Reports arrive in deterministic cohort order on the engine
// goroutine.
type FailureReporter interface {
	ReportFailure(client, round int)
	ReportSuccess(client int)
}

// CooldownEntry is one client's failure-backoff state, for
// Cooldown.Snapshot/Restore (checkpoint/resume).
type CooldownEntry struct {
	Client int `json:"client"`
	// Strikes counts consecutive failed rounds.
	Strikes int `json:"strikes"`
	// Until is the first round the client is eligible again.
	Until int `json:"until"`
}

// cooldownState is the live per-client record.
type cooldownState struct{ strikes, until int }

// Cooldown wraps a base Sampler with per-client retry backoff: a client
// that fails a round is skipped for BaseRounds rounds, doubling per
// consecutive failure up to MaxRounds — the production-FL pattern of not
// hammering a phone that keeps dying mid-round. A success clears the
// record, so state stays O(recently failed), not O(population).
//
// Filtering happens inside the base cohort: the wrapper never redraws, so
// a fully-failed cohort shrinks rather than being replaced (callers
// over-select to compensate — see fl.Config.Quorum).
type Cooldown struct {
	// Base draws the raw cohorts.
	Base Sampler
	// BaseRounds is the first-failure cooldown length in rounds
	// (default 1), doubling per consecutive failure.
	BaseRounds int
	// MaxRounds caps the backoff (default 32).
	MaxRounds int

	state map[int]cooldownState
}

// NewCooldown wraps base with failure backoff starting at baseRounds
// (≤ 0 means 1) and capped at 32 rounds.
func NewCooldown(base Sampler, baseRounds int) *Cooldown {
	if baseRounds <= 0 {
		baseRounds = 1
	}
	return &Cooldown{Base: base, BaseRounds: baseRounds, MaxRounds: 32, state: make(map[int]cooldownState)}
}

// Name implements Sampler.
func (c *Cooldown) Name() string { return c.Base.Name() + "+cooldown" }

// Population implements Sampler.
func (c *Cooldown) Population() int { return c.Base.Population() }

// CohortSize implements Sampler.
func (c *Cooldown) CohortSize() int { return c.Base.CohortSize() }

// Cohort implements Sampler: the base cohort with clients on cooldown
// filtered out, in place. Map lookups only (no ordering sensitivity),
// allocation-free beyond the base draw, deterministic given the failure
// history — which the engines feed back in deterministic order.
//
// fedlint:hotpath
// fedlint:deterministic
func (c *Cooldown) Cohort(round int, dst []int) []int {
	sel := c.Base.Cohort(round, dst)
	if len(c.state) == 0 {
		return sel
	}
	n := 0
	for _, id := range sel {
		if st, ok := c.state[id]; ok && round < st.until {
			continue
		}
		sel[n] = id
		n++
	}
	return sel[:n]
}

// maxBackoffShift bounds the strike exponent so the doubling below never
// overflows before the MaxRounds cap applies.
const maxBackoffShift = 30

// ReportFailure implements FailureReporter: the client sits out
// BaseRounds·2^(strikes−1) rounds (capped at MaxRounds) starting next
// round.
func (c *Cooldown) ReportFailure(client, round int) {
	if c.state == nil {
		c.state = make(map[int]cooldownState)
	}
	st := c.state[client]
	st.strikes++
	base, limit := c.BaseRounds, c.MaxRounds
	if base <= 0 {
		base = 1
	}
	if limit <= 0 {
		limit = 32
	}
	d := limit
	if st.strikes-1 < maxBackoffShift {
		if b := base << (st.strikes - 1); b < limit {
			d = b
		}
	}
	st.until = round + 1 + d
	c.state[client] = st
}

// ReportSuccess implements FailureReporter: a delivered update clears the
// client's backoff record.
func (c *Cooldown) ReportSuccess(client int) {
	delete(c.state, client)
}

// OnCooldown reports whether the client would be filtered from a cohort
// drawn at round.
func (c *Cooldown) OnCooldown(client, round int) bool {
	st, ok := c.state[client]
	return ok && round < st.until
}

// Snapshot returns the backoff state sorted by client id, for
// checkpointing. The map iterates only to collect keys, which are then
// sorted — the output is deterministic.
func (c *Cooldown) Snapshot() []CooldownEntry {
	if len(c.state) == 0 {
		return nil
	}
	ids := make([]int, 0, len(c.state))
	for id := range c.state {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]CooldownEntry, len(ids))
	for i, id := range ids {
		st := c.state[id]
		out[i] = CooldownEntry{Client: id, Strikes: st.strikes, Until: st.until}
	}
	return out
}

// Restore replaces the backoff state with a Snapshot.
func (c *Cooldown) Restore(entries []CooldownEntry) {
	c.state = make(map[int]cooldownState, len(entries))
	for _, e := range entries {
		c.state[e.Client] = cooldownState{strikes: e.Strikes, until: e.Until}
	}
}
