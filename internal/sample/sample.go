// Package sample is the client-sampling layer for population-scale
// federated rounds. The paper's setting is millions of battery-powered
// phones, but only a small cohort participates in any synchronous round
// (cf. Shi et al. 2019 on device scheduling with client sampling); a
// Sampler picks that cohort deterministically from a seed so traces and
// histories stay bit-identical across runs and worker counts.
//
// Both built-in samplers are O(cohort) in time and memory per round:
// Uniform uses Floyd's sampling algorithm, Availability rejection-samples
// from hashed per-client daily windows. Neither touches per-client state
// for clients outside the cohort, which is what lets the round loop in
// internal/fl hold O(selected) rather than O(population) memory.
package sample

import (
	"math/bits"
	"sort"
)

// Sampler selects the participating cohort for each round.
//
// Cohort fills dst (resliced as needed) with the selected client indices
// in strictly ascending order and returns the filled slice. It must be
// deterministic: the same sampler state and round always produce the same
// cohort, independent of previous calls. Implementations must not retain
// dst. A cohort may be smaller than CohortSize (e.g. when too few clients
// are available) but never larger.
type Sampler interface {
	// Name identifies the sampling policy (diagnostics only).
	Name() string
	// Cohort writes the round's selected client indices into dst,
	// ascending and deduplicated, and returns the filled slice.
	Cohort(round int, dst []int) []int
	// Population returns the total number of selectable clients.
	Population() int
	// CohortSize returns the maximum cohort size, for scratch sizing.
	CohortSize() int
}

// splitmix64 is the SplitMix64 mixing function: a tiny, allocation-free,
// statistically solid PRNG step. Used instead of math/rand so sampling
// needs no per-round allocation and no global generator (fedlint nondet).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is a splitmix64 stream.
type rng struct{ state uint64 }

// next returns the next 64 random bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// intn returns a uniform value in [0, n) via Lemire's multiply-shift
// reduction (debiased).
func (r *rng) intn(n int) int {
	bound := uint64(n)
	hi, lo := bits.Mul64(r.next(), bound)
	if lo < bound {
		thresh := -bound % bound
		for lo < thresh {
			hi, lo = bits.Mul64(r.next(), bound)
		}
	}
	return int(hi)
}

// sized returns dst resliced to length n, reallocating only when the
// capacity is insufficient. Steady-state calls with a pre-sized dst are
// allocation-free.
func sized(dst []int, n int) []int {
	if cap(dst) < n {
		return make([]int, n)
	}
	return dst[:n]
}

// Uniform samples a fixed-size cohort uniformly without replacement.
type Uniform struct {
	// N is the population size; K the cohort size per round.
	N, K int
	// Seed fixes the sampling stream. Rounds draw independent cohorts
	// derived from (Seed, round), so Cohort is stateless across rounds.
	Seed int64

	set map[int]struct{} // scratch, reused across rounds
}

// NewUniform returns a uniform without-replacement sampler selecting k of
// n clients each round.
func NewUniform(n, k int, seed int64) *Uniform {
	if k > n {
		k = n
	}
	return &Uniform{N: n, K: k, Seed: seed, set: make(map[int]struct{}, k)}
}

// Name implements Sampler.
func (u *Uniform) Name() string { return "uniform" }

// Population implements Sampler.
func (u *Uniform) Population() int { return u.N }

// CohortSize implements Sampler.
func (u *Uniform) CohortSize() int { return u.K }

// Cohort implements Sampler using Floyd's algorithm: k draws, O(k)
// memory, no pass over the population. Steady-state allocation-free (the
// scratch set is reused and dst is pre-sized by the caller).
//
// fedlint:hotpath
// fedlint:deterministic
func (u *Uniform) Cohort(round int, dst []int) []int {
	k := u.K
	if k >= u.N {
		// Whole population participates: identity cohort.
		dst = sized(dst, u.N)
		for i := range dst {
			dst[i] = i
		}
		return dst
	}
	if u.set == nil {
		u.set = make(map[int]struct{}, k)
	}
	clear(u.set)
	r := rng{state: splitmix64(uint64(u.Seed)) ^ splitmix64(uint64(round)*0x9e3779b97f4a7c15+1)}
	dst = sized(dst, k)
	idx := 0
	for i := u.N - k; i < u.N; i++ {
		j := r.intn(i + 1)
		if _, taken := u.set[j]; taken {
			j = i
		}
		u.set[j] = struct{}{}
		dst[idx] = j
		idx++
	}
	sort.Ints(dst)
	return dst
}

// Availability samples uniformly among the clients whose daily
// availability window contains the round's wall-clock time — the
// charging/idle-window eligibility model of production FL systems. Each
// client's window start is a deterministic hash of (Seed, id), so
// eligibility needs no per-client state.
type Availability struct {
	// N is the population size; K the target cohort size per round.
	N, K int
	// Seed fixes both the per-client windows and the sampling stream.
	Seed int64
	// WindowHours is each client's daily availability span (default 6).
	WindowHours float64
	// RoundHours advances the simulated wall clock per round (default 1).
	RoundHours float64

	set map[int]struct{} // scratch, reused across rounds
}

// NewAvailability returns an availability-window sampler selecting up to
// k of n clients each round, with 6-hour windows advancing 1 h per round.
func NewAvailability(n, k int, seed int64) *Availability {
	if k > n {
		k = n
	}
	return &Availability{N: n, K: k, Seed: seed, WindowHours: 6, RoundHours: 1, set: make(map[int]struct{}, k)}
}

// Name implements Sampler.
func (a *Availability) Name() string { return "availability" }

// Population implements Sampler.
func (a *Availability) Population() int { return a.N }

// CohortSize implements Sampler.
func (a *Availability) CohortSize() int { return a.K }

// windowStart returns client id's daily window start in [0, 24) hours.
func (a *Availability) windowStart(id int) float64 {
	h := splitmix64(uint64(a.Seed)*0x9e3779b97f4a7c15 + uint64(id) + 1)
	return float64(h%(24*3600)) / 3600
}

// clockHours returns the simulated time-of-day for a round, in [0, 24).
func (a *Availability) clockHours(round int) float64 {
	rh := a.RoundHours
	if rh <= 0 {
		rh = 1
	}
	t := float64(round) * rh
	t -= 24 * float64(int(t/24))
	return t
}

// Eligible reports whether client id's availability window contains the
// round's simulated time-of-day (circular containment over 24 h).
//
// fedlint:hotpath
func (a *Availability) Eligible(id, round int) bool {
	w := a.WindowHours
	if w <= 0 {
		w = 6
	}
	if w >= 24 {
		return true
	}
	start := a.windowStart(id)
	t := a.clockHours(round)
	d := t - start
	if d < 0 {
		d += 24
	}
	return d < w
}

// Cohort implements Sampler by rejection sampling: uniform draws from the
// population, keeping the eligible ones. Draws are capped, so a round may
// return fewer than K clients when eligibility is scarce — callers must
// handle short (even empty) cohorts. O(K) memory; steady-state
// allocation-free.
//
// fedlint:hotpath
// fedlint:deterministic
func (a *Availability) Cohort(round int, dst []int) []int {
	k := a.K
	if k > a.N {
		k = a.N
	}
	if a.set == nil {
		a.set = make(map[int]struct{}, k)
	}
	clear(a.set)
	r := rng{state: splitmix64(uint64(a.Seed)+0x6a09e667f3bcc909) ^ splitmix64(uint64(round)*0xbb67ae8584caa73b+1)}
	dst = sized(dst, k)
	idx := 0
	// With 6/24-hour windows ~25% of draws are eligible; 16k + 64 draws
	// make a short cohort overwhelmingly unlikely at practical sizes while
	// bounding the worst case.
	for draws := 0; idx < k && draws < 16*k+64; draws++ {
		j := r.intn(a.N)
		if _, taken := a.set[j]; taken {
			continue
		}
		if !a.Eligible(j, round) {
			continue
		}
		a.set[j] = struct{}{}
		dst[idx] = j
		idx++
	}
	dst = dst[:idx]
	sort.Ints(dst)
	return dst
}
