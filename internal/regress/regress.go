// Package regress implements ordinary least-squares linear regression as
// used by the performance profiler (paper §IV-B, Eq. 1): a multiple linear
// regression of training time against model-parameter counts, and simple
// linear fits of time against data size. The solver uses the normal
// equations with Gaussian elimination and partial pivoting, which is ample
// for the profiler's tiny design matrices.
package regress

import (
	"errors"
	"fmt"
	"math"
)

// Model is a fitted linear model y = β₀ + Σ βⱼ·xⱼ.
type Model struct {
	// Coef holds β₀ (intercept) followed by one coefficient per feature.
	Coef []float64
	// R2 is the coefficient of determination on the training data.
	R2 float64
	// Residuals holds y_i − ŷ_i for each training observation.
	Residuals []float64
}

// ErrSingular is returned when the normal equations are (numerically)
// singular, e.g. because of duplicated features or too few observations.
var ErrSingular = errors.New("regress: singular system (collinear features or too few observations)")

// Fit performs ordinary least squares of y on the rows of x, with an
// intercept term. x[i] is the feature vector of observation i; all rows
// must have equal length. It returns ErrSingular when XᵀX cannot be solved.
func Fit(x [][]float64, y []float64) (*Model, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("regress: %d observations vs %d targets", n, len(y))
	}
	p := len(x[0]) + 1 // +1 for the intercept
	for i, row := range x {
		if len(row)+1 != p {
			return nil, fmt.Errorf("regress: row %d has %d features, want %d", i, len(row), p-1)
		}
	}
	if n < p {
		return nil, fmt.Errorf("regress: %d observations cannot determine %d coefficients", n, p)
	}

	// Normal equations: (XᵀX) β = Xᵀy with X = [1 | x].
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	feat := func(row []float64, j int) float64 {
		if j == 0 {
			return 1
		}
		return row[j-1]
	}
	for i := 0; i < n; i++ {
		for a := 0; a < p; a++ {
			fa := feat(x[i], a)
			xty[a] += fa * y[i]
			for b := a; b < p; b++ {
				xtx[a][b] += fa * feat(x[i], b)
			}
		}
	}
	for a := 1; a < p; a++ {
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
	}

	beta, err := SolveLinear(xtx, xty)
	if err != nil {
		return nil, err
	}

	m := &Model{Coef: beta, Residuals: make([]float64, n)}
	meanY := 0.0
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(n)
	ssRes, ssTot := 0.0, 0.0
	for i := 0; i < n; i++ {
		pred := m.Predict(x[i])
		m.Residuals[i] = y[i] - pred
		ssRes += m.Residuals[i] * m.Residuals[i]
		d := y[i] - meanY
		ssTot += d * d
	}
	if ssTot > 0 {
		m.R2 = 1 - ssRes/ssTot
	} else {
		m.R2 = 1 // constant target fit exactly by the intercept
	}
	return m, nil
}

// Predict evaluates the model at the given feature vector.
func (m *Model) Predict(x []float64) float64 {
	if len(x)+1 != len(m.Coef) {
		panic(fmt.Sprintf("regress: predict with %d features, model has %d", len(x), len(m.Coef)-1))
	}
	y := m.Coef[0]
	for j, v := range x {
		y += m.Coef[j+1] * v
	}
	return y
}

// FitSimple fits y = β₀ + β₁·x for scalar predictors.
func FitSimple(x, y []float64) (*Model, error) {
	rows := make([][]float64, len(x))
	for i, v := range x {
		rows[i] = []float64{v}
	}
	return Fit(rows, y)
}

// SolveLinear solves the dense system A·x = b using Gaussian elimination
// with partial pivoting. A is modified in place (callers pass fresh
// matrices). It returns ErrSingular when a pivot is numerically zero.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n != len(b) {
		return nil, fmt.Errorf("regress: matrix %d×? vs vector %d", n, len(b))
	}
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot: pick the largest magnitude in this column.
		piv := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, piv = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		x[col], x[piv] = x[piv], x[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 { //fedlint:allow floateq — exact-zero pivot-column skip; any nonzero factor must eliminate
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < n; c++ {
			s -= a[col][c] * x[c]
		}
		x[col] = s / a[col][col]
	}
	return x, nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
