package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitRecoversPlantedCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	want := []float64{3.5, 2.0, -1.25}
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		y = append(y, want[0]+want[1]*a+want[2]*b+rng.NormFloat64()*0.01)
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(m.Coef[i]-want[i]) > 0.01 {
			t.Fatalf("coef %d = %v, want %v", i, m.Coef[i], want[i])
		}
	}
	if m.R2 < 0.999 {
		t.Fatalf("R2 = %v, want near 1", m.R2)
	}
}

func TestFitExactNoiselessProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b0, b1, b2 := r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
		var x [][]float64
		var y []float64
		for i := 0; i < 20; i++ {
			a, b := r.Float64()*5, r.Float64()*5
			x = append(x, []float64{a, b})
			y = append(y, b0+b1*a+b2*b)
		}
		m, err := Fit(x, y)
		if err != nil {
			return false
		}
		return math.Abs(m.Coef[0]-b0) < 1e-6 &&
			math.Abs(m.Coef[1]-b1) < 1e-6 &&
			math.Abs(m.Coef[2]-b2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFitSimpleLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	m, err := FitSimple(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-1) > 1e-9 || math.Abs(m.Coef[1]-2) > 1e-9 {
		t.Fatalf("coef = %v, want [1 2]", m.Coef)
	}
	if got := m.Predict([]float64{10}); math.Abs(got-21) > 1e-9 {
		t.Fatalf("Predict(10) = %v, want 21", got)
	}
}

func TestFitSingularOnCollinear(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		v := float64(i)
		x = append(x, []float64{v, 2 * v}) // perfectly collinear
		y = append(y, v)
	}
	if _, err := Fit(x, y); err == nil {
		t.Fatal("expected ErrSingular for collinear features")
	}
}

func TestFitErrorsOnBadShapes(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := Fit([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error on ragged rows")
	}
	if _, err := Fit([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("expected error with fewer observations than coefficients")
	}
}

func TestFitConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{5, 5, 5}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Predict([]float64{9})-5) > 1e-9 {
		t.Fatalf("constant fit broken: %v", m.Coef)
	}
	if m.R2 != 1 {
		t.Fatalf("R2 for perfectly-fit constant target = %v, want 1", m.R2)
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Leading zero pivot forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	x, err := SolveLinear(a, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-4) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [4 3]", x)
	}
}

func TestSolveLinearRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.NormFloat64()
			}
			a[i][i] += float64(n) // diagonally dominant → well-conditioned
		}
		xTrue := make([]float64, n)
		b := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.NormFloat64()
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a[i][j] * xTrue[j]
			}
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-input mean/std should be 0")
	}
}

func TestPredictPanicsOnWrongArity(t *testing.T) {
	m := &Model{Coef: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	m.Predict([]float64{1, 2})
}
