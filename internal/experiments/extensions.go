package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"fedsched/internal/adaptive"
	"fedsched/internal/data"
	"fedsched/internal/device"
	"fedsched/internal/fl"
	"fedsched/internal/privacy"
	"fedsched/internal/sched"
)

// Extension experiments beyond the paper's figures: ablations and the
// optional directions its text discusses (energy on battery-powered
// devices, asynchronous aggregation, secure aggregation, decentralized
// topologies, differentially-private class reporting, shard granularity).

func init() {
	register("ext-energy", ExtEnergy)
	register("ext-async", ExtAsync)
	register("ext-secagg", ExtSecAgg)
	register("ext-gossip", ExtGossip)
	register("ext-dp", ExtDP)
	register("ext-granularity", ExtGranularity)
	register("ext-dropout", ExtDropout)
	register("ext-adaptive", ExtAdaptive)
}

// ExtEnergy measures per-round energy and battery drain per scheduler on
// the straggler testbed — the "battery-powered" dimension of the title
// that the paper's evaluation leaves implicit.
func ExtEnergy(o Options) (*Report, error) {
	rep := &Report{ID: "ext-energy", Title: "Energy per round and battery drain by scheduler (extension)"}
	ds := mnistBench()
	arch := paperArch("LeNet", ds)
	tb, err := newTestbed(2, ds)
	if err != nil {
		return nil, err
	}
	req := tb.request(arch, ds.TotalSamples, ShardSize)
	req.Trace = o.Trace
	tbl := &Table{
		Title:   "Testbed II, MNIST+LeNet, 3 rounds of 60K samples",
		Columns: []string{"scheduler", "mean round [s]", "total energy [kJ]", "worst battery drain %", "Nexus6P energy [kJ]"},
	}
	for _, s := range schedulers() {
		rng := rand.New(rand.NewSource(o.Seed))
		asg, err := s.Schedule(req, rng)
		if err != nil {
			return nil, err
		}
		devs := tb.devices()
		spans, err := fl.SimulateRoundsTraced(arch, devs, tb.links(), asg.Samples(ShardSize), 20, 3, o.Trace)
		if err != nil {
			return nil, err
		}
		mean, totalE, worstDrain, stragglerE := 0.0, 0.0, 0.0, 0.0
		for _, v := range spans {
			mean += v
		}
		mean /= float64(len(spans))
		for _, d := range devs {
			totalE += d.EnergyJ
			if drain := 1 - d.BatteryRemaining(); drain > worstDrain {
				worstDrain = drain
			}
			if d.Model == "Nexus6P" {
				stragglerE += d.EnergyJ
			}
		}
		tbl.AddRow(s.Name(), mean, totalE/1000, 100*worstDrain, stragglerE/1000)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"Expected shape: Fed-LBAP starves the thermally-limited Nexus6P devices, cutting both round time and the stragglers' energy burn.")
	return rep, nil
}

// ExtAsync compares synchronous FedAvg with staleness-weighted
// asynchronous aggregation (paper §II-B's rejected alternative) for equal
// total local epochs.
func ExtAsync(o Options) (*Report, error) {
	rep := &Report{ID: "ext-async", Title: "Synchronous vs asynchronous aggregation (extension; paper §II-B)"}
	trainN, testN, rounds, _ := accuracyScale(o)
	users := 4
	train, test := data.TrainTest(data.SMNISTConfig(0, o.Seed+81), trainN, testN)
	mkClients := func() ([]*fl.Client, error) {
		part := data.IIDEqual(train, users, rand.New(rand.NewSource(o.Seed)))
		profiles := []device.Profile{device.Pixel2(), device.Nexus6(), device.Nexus6P(), device.Mate10()}
		devs := make([]*device.Device, users)
		for i := range devs {
			devs[i] = device.New(profiles[i%len(profiles)])
		}
		return fl.BuildClients(devs, wifiLinks(users), part.Materialize(train))
	}
	cfg := fl.Config{
		Arch: smallArch("LeNet", train.C), Rounds: rounds, BatchSize: 20,
		LR: 0.02, Momentum: 0.9, Seed: o.Seed, Precision: o.Precision,
		Workers: o.Workers, Trace: o.Trace,
	}
	syncClients, err := mkClients()
	if err != nil {
		return nil, err
	}
	syncHist, err := fl.Run(cfg, syncClients, test)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Title:   fmt.Sprintf("%d users, %d total local epochs each mode", users, rounds*users),
		Columns: []string{"mode", "virtual time [s]", "updates", "mean staleness", "accuracy"},
	}
	tbl.AddRow("sync (FedAvg)", syncHist.TotalSeconds, rounds*users, 0.0, syncHist.FinalAccuracy)
	for _, pow := range []float64{0, 1} {
		aClients, err := mkClients()
		if err != nil {
			return nil, err
		}
		aHist, err := fl.RunAsync(fl.AsyncConfig{
			Config: cfg, MaxUpdates: rounds * users, MixRate: 0.4, StalenessPower: pow,
		}, aClients, test)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("async (staleness^%.0f)", pow),
			aHist.VirtualSeconds, aHist.Updates, aHist.MeanStaleness, aHist.FinalAccuracy)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"Expected shape: async finishes the same number of local epochs in less virtual time (no barrier) but its updates are stale; sync matches or beats its accuracy — the paper's rationale for synchronous aggregation.")
	return rep, nil
}

// ExtSecAgg measures the cost of pairwise-mask secure aggregation and
// verifies it does not change learning outcomes.
func ExtSecAgg(o Options) (*Report, error) {
	rep := &Report{ID: "ext-secagg", Title: "Secure aggregation overhead and fidelity (extension; paper §IV-A)"}
	trainN, testN, rounds, _ := accuracyScale(o)
	train, test := data.TrainTest(data.SMNISTConfig(0, o.Seed+83), trainN, testN)
	tbl := &Table{
		Title:   fmt.Sprintf("5 users, %d rounds, reduced-scale LeNet", rounds),
		Columns: []string{"aggregation", "accuracy", "final loss", "wall time [ms]"},
	}
	for _, secure := range []bool{false, true} {
		part := data.IIDEqual(train, 5, rand.New(rand.NewSource(o.Seed)))
		clients, err := fl.BuildClients(nilDevices(5), wifiLinks(5), part.Materialize(train))
		if err != nil {
			return nil, err
		}
		cfg := fl.Config{
			Arch: smallArch("LeNet", train.C), Rounds: rounds, BatchSize: 20,
			LR: 0.02, Momentum: 0.9, Seed: o.Seed, SecureAgg: secure,
			Precision: o.Precision, Workers: o.Workers, Trace: o.Trace,
		}
		start := time.Now()
		hist, err := fl.Run(cfg, clients, test)
		if err != nil {
			return nil, err
		}
		name := "plaintext"
		if secure {
			name = "pairwise masks"
		}
		tbl.AddRow(name, hist.FinalAccuracy, hist.Rounds[len(hist.Rounds)-1].TrainLoss,
			float64(time.Since(start).Milliseconds()))
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"Expected shape: identical accuracy (fixed-point quantization ≈2⁻²⁴ per weight) at a modest masking overhead.")
	return rep, nil
}

// ExtGossip compares server-based FedAvg with the decentralized gossip
// topology the paper's system model claims amenability to (§IV-A).
func ExtGossip(o Options) (*Report, error) {
	rep := &Report{ID: "ext-gossip", Title: "Parameter server vs decentralized gossip (extension; paper §IV-A)"}
	trainN, testN, rounds, _ := accuracyScale(o)
	users := 4
	train, test := data.TrainTest(data.SMNISTConfig(0, o.Seed+85), trainN, testN)
	cfg := fl.Config{
		Arch: smallArch("LeNet", train.C), Rounds: rounds, BatchSize: 20,
		LR: 0.02, Momentum: 0.9, Seed: o.Seed, Precision: o.Precision,
		Workers: o.Workers, Trace: o.Trace,
	}
	mkClients := func() ([]*fl.Client, error) {
		part := data.IIDEqual(train, users, rand.New(rand.NewSource(o.Seed)))
		return fl.BuildClients(nilDevices(users), wifiLinks(users), part.Materialize(train))
	}
	tbl := &Table{
		Title:   fmt.Sprintf("%d users, %d rounds", users, rounds),
		Columns: []string{"mode", "accuracy (mean)", "accuracy (best)", "consensus gap"},
	}
	fedClients, err := mkClients()
	if err != nil {
		return nil, err
	}
	fedHist, err := fl.Run(cfg, fedClients, test)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("FedAvg (server)", fedHist.FinalAccuracy, fedHist.FinalAccuracy, 0.0)
	for _, topo := range []fl.Topology{fl.Ring, fl.RandomPairs} {
		gClients, err := mkClients()
		if err != nil {
			return nil, err
		}
		gHist, err := fl.RunGossip(fl.GossipConfig{Config: cfg, Topology: topo}, gClients, test)
		if err != nil {
			return nil, err
		}
		tbl.AddRow("gossip/"+topo.String(), gHist.MeanAccuracy, gHist.BestAccuracy, gHist.Disagreement)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"Expected shape: gossip approaches FedAvg accuracy on IID data while keeping a non-zero consensus gap; it removes the parameter server at the cost of slower mixing.")
	return rep, nil
}

// ExtDP measures how differentially-private class reporting degrades
// Fed-MinAvg's schedules (paper §IV-A / §VI-A privacy discussion).
func ExtDP(o Options) (*Report, error) {
	rep := &Report{ID: "ext-dp", Title: "Fed-MinAvg under differentially-private class reporting (extension)"}
	ds := cifarBench()
	arch := paperArch("LeNet", ds)
	tb, err := newTestbed(2, ds)
	if err != nil {
		return nil, err
	}
	sc := paperScenarios()[1] // S(II)
	tbl := &Table{
		Title:   "S(II), α=500, β=2; schedules from privatized class reports (10 trials/ε)",
		Columns: []string{"epsilon", "flip prob", "mean makespan [s]", "mean participants", "coverage (of 10)"},
	}
	trueReq := func() *sched.Request {
		req := tb.request(arch, ds.TotalSamples, ShardSize)
		req.K, req.Alpha, req.Beta = 10, 500, 2
		return req
	}
	for _, eps := range []float64{0.5, 1, 2, 4, 8} {
		rep2, err := privacy.NewReporter(eps, 10)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(o.Seed + int64(eps*10)))
		const trials = 10
		makespan, participants, coverage := 0.0, 0.0, 0.0
		for trial := 0; trial < trials; trial++ {
			req := trueReq()
			for j, u := range req.Users {
				u.Classes = rep2.EstimateSet(rep2.Randomize(sc.ClassSets[j], rng))
			}
			asg, err := sched.FedMinAvg{}.Schedule(req, nil)
			if err != nil {
				// Fully erased class sets can make scheduling impossible;
				// count it as a degenerate trial.
				continue
			}
			// Evaluate the schedule under the TRUE cost model.
			evalReq := trueReq()
			for j, u := range evalReq.Users {
				u.Classes = sc.ClassSets[j]
			}
			makespan += sched.Makespan(evalReq, asg)
			participants += float64(asg.Participants())
			cover := map[int]bool{}
			for j, k := range asg.Shards {
				if k > 0 {
					for _, c := range sc.ClassSets[j] {
						cover[c] = true
					}
				}
			}
			coverage += float64(len(cover))
		}
		tbl.AddRow(eps, rep2.FlipProbability(), makespan/trials, participants/trials, coverage/trials)
	}
	// Truthful baseline.
	req := trueReq()
	for j, u := range req.Users {
		u.Classes = sc.ClassSets[j]
	}
	asg, err := sched.FedMinAvg{}.Schedule(req, nil)
	if err != nil {
		return nil, err
	}
	cover := map[int]bool{}
	for j, k := range asg.Shards {
		if k > 0 {
			for _, c := range sc.ClassSets[j] {
				cover[c] = true
			}
		}
	}
	tbl.AddRow("truthful", 0.0, asg.PredictedMakespan, asg.Participants(), len(cover))
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"Expected shape: schedules converge to the truthful one as ε grows; small ε inflates perceived class counts (randomized response reports ~half the bits set), flattening the accuracy cost.")
	return rep, nil
}

// ExtGranularity is the shard-size ablation: the paper fixes shards at 100
// samples (§IV-A); finer shards give Fed-LBAP more freedom at higher
// scheduling cost.
func ExtGranularity(o Options) (*Report, error) {
	rep := &Report{ID: "ext-granularity", Title: "Shard-size ablation for Fed-LBAP (extension; paper §IV-A fixes 100)"}
	ds := mnistBench()
	arch := paperArch("LeNet", ds)
	tb, err := newTestbed(2, ds)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Title:   "Testbed II, MNIST+LeNet, 60K samples",
		Columns: []string{"shard size", "shards", "predicted makespan [s]", "simulated round [s]", "schedule time [ms]"},
	}
	for _, shard := range []int{25, 50, 100, 200, 500, 1000} {
		req := tb.request(arch, ds.TotalSamples, shard)
		start := time.Now()
		asg, err := sched.FedLBAP{}.Schedule(req, nil)
		if err != nil {
			return nil, err
		}
		schedMS := float64(time.Since(start).Microseconds()) / 1000
		spans, err := fl.SimulateRounds(arch, tb.devices(), tb.links(), asg.Samples(shard), 20, 1)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(shard, req.TotalShards, asg.PredictedMakespan, spans[0], schedMS)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"Expected shape: makespan is nearly flat down to ~100-sample shards (the paper's choice) — coarser shards lose a little balance, finer ones only cost scheduling time.")
	return rep, nil
}

// ExtDropout contrasts three straggler strategies on Testbed II: waiting
// for everyone (Equal), the hard per-round deadline dropout of Bonawitz et
// al. [5] (which discards straggler updates — the paper's §II-B critique),
// and Fed-LBAP's load unbalancing (which keeps every sample in play).
// Round times come from the paper-scale device simulator; accuracy from a
// reduced-scale run where dropout removes the stragglers' data from
// aggregation.
func ExtDropout(o Options) (*Report, error) {
	rep := &Report{ID: "ext-dropout", Title: "Straggler strategies: wait vs hard dropout vs Fed-LBAP (extension; paper §II-B)"}
	trainN, testN, rounds, _ := accuracyScale(o)
	ds := cifarBench()
	train, test := data.TrainTest(ds.Cfg(0, o.Seed+95), trainN, testN)
	tb, err := newTestbed(2, ds)
	if err != nil {
		return nil, err
	}
	arch := paperArch("LeNet", ds)
	users := len(tb.Profiles)
	rng := rand.New(rand.NewSource(o.Seed))

	// Paper-scale time for the three strategies.
	req := tb.request(arch, ds.TotalSamples, ShardSize)
	equalAsg, err := sched.Equal{}.Schedule(req, nil)
	if err != nil {
		return nil, err
	}
	lbapAsg, err := sched.FedLBAP{}.Schedule(req, nil)
	if err != nil {
		return nil, err
	}
	meanSpan := func(samples []int, skipModel string) (float64, error) {
		devs := tb.devices()
		links := tb.links()
		// For the deadline strategy the round ends when the last NON-
		// straggler finishes; emulate by zeroing the stragglers' samples
		// in the time simulation (their updates are discarded anyway).
		s := append([]int(nil), samples...)
		if skipModel != "" {
			for i, d := range devs {
				if d.Model == skipModel {
					s[i] = 0
				}
			}
		}
		spans, err := fl.SimulateRounds(arch, devs, links, s, 20, 3)
		if err != nil {
			return 0, err
		}
		sum := 0.0
		for _, v := range spans {
			sum += v
		}
		return sum / float64(len(spans)), nil
	}
	waitSpan, err := meanSpan(equalAsg.Samples(ShardSize), "")
	if err != nil {
		return nil, err
	}
	dropSpan, err := meanSpan(equalAsg.Samples(ShardSize), "Nexus6P")
	if err != nil {
		return nil, err
	}
	lbapSpan, err := meanSpan(lbapAsg.Samples(ShardSize), "")
	if err != nil {
		return nil, err
	}

	// Reduced-scale accuracy: the dropout strategy trains on the Equal
	// partition with the stragglers' share discarded every round.
	accuracyOf := func(sizes []int, skipModel string) (float64, error) {
		before := 0
		for _, v := range sizes {
			before += v
		}
		s := append([]int(nil), sizes...)
		for i := range s {
			if skipModel != "" && tb.Profiles[i].Model == skipModel {
				s[i] = 0
			}
		}
		used := 0
		for _, v := range s {
			used += v
		}
		if used == 0 || before == 0 {
			return 0, nil
		}
		// Discarded data is genuinely lost: the reduced training set
		// shrinks by the same fraction the strategy drops.
		target := train.Len() * used / before
		part := data.IIDSizes(train, scaleSizes(s, target), rng)
		return runFL(o, train, test, part, rounds)
	}
	equalSizes := make([]int, users)
	for i := range equalSizes {
		equalSizes[i] = ds.TotalSamples / users
	}
	waitAcc, err := accuracyOf(equalSizes, "")
	if err != nil {
		return nil, err
	}
	dropAcc, err := accuracyOf(equalSizes, "Nexus6P")
	if err != nil {
		return nil, err
	}
	lbapAcc, err := accuracyOf(lbapAsg.Samples(ShardSize), "")
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		Title:   fmt.Sprintf("Testbed II, CIFAR10+LeNet; time at paper scale, accuracy over %d reduced rounds", rounds),
		Columns: []string{"strategy", "mean round [s]", "accuracy", "data used %"},
	}
	tbl.AddRow("Equal (wait for all)", waitSpan, waitAcc, 100.0)
	tbl.AddRow("Equal + deadline [5]", dropSpan, dropAcc, 100.0*float64(users-2)/float64(users))
	tbl.AddRow("Fed-LBAP (load unbalance)", lbapSpan, lbapAcc, 100.0)
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"Expected shape: hard dropout is fast because it silently trains on 2/3 of the data and pays for it in accuracy; Fed-LBAP reschedules the stragglers' share onto healthy devices — near-dropout speed with no data loss (the paper's §II-B argument).")
	return rep, nil
}

// ExtAdaptive demonstrates the adaptive rescheduling controller: a device
// degrades mid-run (hot environment → persistent throttling) and the
// controller re-profiles online and recomputes the Fed-LBAP schedule,
// while a static schedule keeps overloading the degraded phone.
func ExtAdaptive(o Options) (*Report, error) {
	rep := &Report{ID: "ext-adaptive", Title: "Adaptive rescheduling under mid-run device degradation (extension)"}
	ds := mnistBench()
	arch := paperArch("LeNet", ds)
	tb, err := newTestbed(1, ds)
	if err != nil {
		return nil, err
	}
	run := func(threshold float64) (*adaptive.Result, error) {
		devs := tb.devices()
		links := tb.links()
		cfg := adaptive.Config{
			Arch: arch, TotalSamples: 12000, Rounds: 2, DriftThreshold: threshold,
		}
		res1, err := adaptive.Run(cfg, devs, links, tb.DevProfs)
		if err != nil {
			return nil, err
		}
		// Mid-run degradation: the fastest phone (Pixel2, index 2 in
		// Testbed I) lands in a hot environment and throttles to 25%.
		devs[2].AmbientC += 30
		devs[2].TempC += 30
		devs[2].SoftTripC = devs[2].AmbientC + 2
		devs[2].ThrottleFactor = 0.25
		cfg.Rounds = 6
		res2, err := adaptive.Run(cfg, devs, links, tb.DevProfs)
		if err != nil {
			return nil, err
		}
		res2.TotalTime += res1.TotalTime
		return res2, nil
	}
	adaptiveRes, err := run(0.3)
	if err != nil {
		return nil, err
	}
	staticRes, err := run(math.Inf(1))
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Title:   "Testbed I, MNIST+LeNet, 12K samples/round; Pixel2 degrades 4× after round 2",
		Columns: []string{"controller", "total time [s]", "final round [s]", "reschedules", "degraded-device samples"},
	}
	tbl.AddRow("static schedule",
		staticRes.TotalTime, staticRes.Records[len(staticRes.Records)-1].Makespan,
		staticRes.Reschedules, staticRes.Assignment.Samples(100)[2])
	tbl.AddRow("adaptive (drift>30% → reschedule)",
		adaptiveRes.TotalTime, adaptiveRes.Records[len(adaptiveRes.Records)-1].Makespan,
		adaptiveRes.Reschedules, adaptiveRes.Assignment.Samples(100)[2])
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"Expected shape: the adaptive controller detects the misprediction, shifts load off the degraded phone and recovers the round time; the static schedule stays stuck behind it.")
	return rep, nil
}
