package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Quick: true, Seed: 1} }

func cell(t *testing.T, tbl *Table, row int, col string) string {
	t.Helper()
	for i, c := range tbl.Columns {
		if c == col {
			return tbl.Rows[row][i]
		}
	}
	t.Fatalf("column %q not in %v", col, tbl.Columns)
	return ""
}

func cellF(t *testing.T, tbl *Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tbl, row, col), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell(t, tbl, row, col), err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3a", "fig3b", "fig4", "fig5", "fig6", "fig7",
		"tab2", "tab3", "tab4", "tab5",
		"ext-energy", "ext-async", "ext-secagg", "ext-gossip", "ext-dp", "ext-granularity", "ext-dropout", "ext-adaptive",
		"ext-precision",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("missing driver %q", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus id resolved")
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"a", "b"}}
	tbl.AddRow("x", 1.5)
	tbl.AddRow(2, "y")
	s := tbl.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "1.5") {
		t.Fatalf("bad render:\n%s", s)
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "a,b\nx,1.5\n") {
		t.Fatalf("bad csv:\n%s", csv)
	}
	rep := &Report{ID: "x", Title: "y", Tables: []*Table{tbl}, Notes: []string{"n"}}
	if !strings.Contains(rep.String(), "== x: y ==") {
		t.Fatal("bad report header")
	}
}

func TestFig1Shapes(t *testing.T) {
	rep, err := Fig1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("%d tables", len(rep.Tables))
	}
	// Nexus6P's LeNet max/min batch-time ratio must reveal the thermal
	// collapse; Pixel2's must stay modest.
	lenet := rep.Tables[0]
	var ratio6P, ratioP2 float64
	for r := range lenet.Rows {
		switch lenet.Rows[r][0] {
		case "Nexus6P":
			ratio6P = cellF(t, lenet, r, "max/min")
		case "Pixel2":
			ratioP2 = cellF(t, lenet, r, "max/min")
		}
	}
	if ratio6P < 1.5 {
		t.Fatalf("Nexus6P batch-time spread %.2f — no thermal signature", ratio6P)
	}
	if ratioP2 > ratio6P {
		t.Fatal("Pixel2 shows more thermal spread than Nexus6P")
	}
}

func TestTab2WithinPaperBand(t *testing.T) {
	rep, err := Tab2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Every simulated 3K WiFi cell must be within 20% of the paper column.
	for _, tbl := range rep.Tables {
		for r := range tbl.Rows {
			sim := cell(t, tbl, r, "3K WiFi")
			sim = sim[:strings.Index(sim, "(")]
			simV, _ := strconv.ParseFloat(sim, 64)
			paperV := cellF(t, tbl, r, "paper(3K WiFi)")
			if simV < paperV*0.8 || simV > paperV*1.2 {
				t.Errorf("%s %s: simulated %v vs paper %v", tbl.Title, tbl.Rows[r][0], simV, paperV)
			}
		}
	}
}

func TestFig4ProfilerQuality(t *testing.T) {
	rep, err := Fig4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	step1 := rep.Tables[0]
	for r := range step1.Rows {
		if r2 := cellF(t, step1, r, "R²"); r2 < 0.9 {
			t.Errorf("step-1 R² %.3f at size %s", r2, step1.Rows[r][0])
		}
	}
	step2 := rep.Tables[1]
	for r := range step2.Rows {
		if e := cellF(t, step2, r, "error %"); e > 35 || e < -35 {
			t.Errorf("step-2 error %.1f%% at size %s", e, step2.Rows[r][0])
		}
	}
}

func TestTab4ScheduleShapes(t *testing.T) {
	rep, err := Tab4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("%d scenario tables", len(rep.Tables))
	}
	for _, tbl := range rep.Tables {
		// Each schedule column sums to the full dataset (50K samples).
		for _, col := range []string{"p1(100,0)", "p2(5000,0)", "p3(100,2)", "p4(5000,2)"} {
			sum := 0.0
			for r := range tbl.Rows {
				sum += cellF(t, tbl, r, col)
			}
			if sum < 49.9 || sum > 50.1 {
				t.Errorf("%s %s sums to %.1fK, want 50K", tbl.Title, col, sum)
			}
		}
	}
	// Paper trend: at (5000, 0) single-class slow devices receive zero.
	s3 := rep.Tables[2] // S(III)
	zeroed := 0
	for r := range s3.Rows {
		classes := cell(t, s3, r, "classes")
		if strings.Count(classes, " ") == 0 && cellF(t, s3, r, "p2(5000,0)") == 0 {
			zeroed++
		}
	}
	if zeroed == 0 {
		t.Error("α=5000,β=0 did not zero out any single-class device in S(III)")
	}
}

func TestFig5SpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("time-simulation sweep")
	}
	rep, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 4 {
		t.Fatalf("%d tables", len(rep.Tables))
	}
	for _, tbl := range rep.Tables {
		for r := range tbl.Rows {
			fed := cellF(t, tbl, r, "Fed-LBAP")
			for _, col := range []string{"Prop.", "Random", "Equal"} {
				if fed > cellF(t, tbl, r, col)*1.001 {
					t.Errorf("%s row %d: Fed-LBAP (%.0f) slower than %s", tbl.Title, r, fed, col)
				}
			}
		}
	}
	// The straggler testbed (2) must show the biggest LeNet speedup.
	lenet := rep.Tables[0]
	if cellF(t, lenet, 1, "speedup vs Equal") <= cellF(t, lenet, 0, "speedup vs Equal") {
		t.Error("testbed 2 speedup not larger than testbed 1 (straggler effect missing)")
	}
	// Fed-LBAP's round time must drop when going from 6 to 10 devices.
	if cellF(t, lenet, 2, "Fed-LBAP") >= cellF(t, lenet, 1, "Fed-LBAP") {
		t.Error("Fed-LBAP does not scale down with more devices")
	}
}

func TestFig7SpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("time-simulation sweep")
	}
	rep, err := Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range rep.Tables {
		for r := range tbl.Rows {
			if s := cellF(t, tbl, r, "speedup vs Equal"); s < 0.95 {
				t.Errorf("%s row %d: Fed-MinAvg slower than Equal (%.2f×)", tbl.Title, r, s)
			}
		}
	}
}

func TestFig2AccuracyFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("gradient-descent experiment")
	}
	rep, err := Fig2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// SMNIST table: accuracy at ratio 0.8 within 5 points of ratio 0.
	tbl := rep.Tables[0]
	first := cellF(t, tbl, 0, "accuracy")
	last := cellF(t, tbl, len(tbl.Rows)-2, "accuracy") // last ratio row (row -1 is centralized)
	if first < 0.8 {
		t.Fatalf("balanced IID accuracy %.3f too low", first)
	}
	if first-last > 0.05 {
		t.Errorf("imbalance hurt IID accuracy: %.3f → %.3f", first, last)
	}
}

func TestFig3aMonotoneTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("gradient-descent experiment")
	}
	rep, err := Fig3a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	acc2 := cellF(t, tbl, 0, "accuracy")                // 2 classes/user
	acc10 := cellF(t, tbl, len(tbl.Rows)-1, "accuracy") // 10 classes/user
	if acc10-acc2 < 0.03 {
		t.Errorf("non-IID degradation missing: 2-class %.3f vs 10-class %.3f", acc2, acc10)
	}
}

func TestFig3bOutlierOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("gradient-descent experiment")
	}
	rep, err := Fig3b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	missing := cellF(t, tbl, 0, "accuracy")
	separate := cellF(t, tbl, 1, "accuracy")
	merge := cellF(t, tbl, 2, "accuracy")
	if missing > separate+0.02 && missing > merge+0.02 {
		t.Errorf("Missing (%.3f) should not beat Separate (%.3f) and Merge (%.3f)", missing, separate, merge)
	}
}

func TestTab3AccuracyParity(t *testing.T) {
	if testing.Short() {
		t.Skip("gradient-descent experiment")
	}
	rep, err := Tab3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range rep.Tables {
		for r := range tbl.Rows {
			fed := cellF(t, tbl, r, "Fed-LBAP")
			equal := cellF(t, tbl, r, "Equal")
			if equal-fed > 0.06 {
				t.Errorf("%s: Fed-LBAP accuracy %.3f vs Equal %.3f — IID unbalancing should be free", tbl.Title, fed, equal)
			}
		}
	}
}

func TestFig6AndTab5Run(t *testing.T) {
	if testing.Short() {
		t.Skip("gradient-descent experiment")
	}
	rep, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) == 0 {
		t.Fatal("fig6 produced no tables")
	}
	rep5, err := Tab5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range rep5.Tables {
		for r := range tbl.Rows {
			fed := cellF(t, tbl, r, "Fed-MinAvg")
			if fed < 0.15 {
				t.Errorf("%s: Fed-MinAvg accuracy %.3f implausibly low", tbl.Title, fed)
			}
		}
	}
}

func TestExtEnergyShape(t *testing.T) {
	rep, err := ExtEnergy(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	var fedE, equalE, fedStraggler, equalStraggler float64
	for r := range tbl.Rows {
		switch tbl.Rows[r][0] {
		case "Fed-LBAP":
			fedE = cellF(t, tbl, r, "total energy [kJ]")
			fedStraggler = cellF(t, tbl, r, "Nexus6P energy [kJ]")
		case "Equal":
			equalE = cellF(t, tbl, r, "total energy [kJ]")
			equalStraggler = cellF(t, tbl, r, "Nexus6P energy [kJ]")
		}
	}
	if fedE >= equalE {
		t.Errorf("Fed-LBAP total energy %.1f not below Equal %.1f", fedE, equalE)
	}
	if fedStraggler >= equalStraggler {
		t.Errorf("Fed-LBAP straggler energy %.1f not below Equal %.1f", fedStraggler, equalStraggler)
	}
}

func TestExtGranularityShape(t *testing.T) {
	rep, err := ExtGranularity(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	fine := cellF(t, tbl, 0, "predicted makespan [s]")
	paper := cellF(t, tbl, 2, "predicted makespan [s]") // 100-sample shards
	coarse := cellF(t, tbl, len(tbl.Rows)-1, "predicted makespan [s]")
	if fine > paper*1.02 {
		t.Errorf("finer shards should not hurt: %.1f vs %.1f", fine, paper)
	}
	if coarse < paper*0.98 {
		t.Errorf("coarser shards should not help: %.1f vs %.1f", coarse, paper)
	}
}

func TestExtDPConvergesToTruthful(t *testing.T) {
	rep, err := ExtDP(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	last := len(tbl.Rows) - 1 // truthful row
	truthCover := cellF(t, tbl, last, "coverage (of 10)")
	highEps := cellF(t, tbl, last-1, "coverage (of 10)") // ε=8
	lowEps := cellF(t, tbl, 0, "coverage (of 10)")       // ε=0.5
	if highEps < truthCover-0.5 {
		t.Errorf("ε=8 coverage %.1f far from truthful %.1f", highEps, truthCover)
	}
	if lowEps > highEps+0.5 {
		t.Errorf("low-ε coverage %.1f should not beat high-ε %.1f", lowEps, highEps)
	}
}

func TestExtAsyncSecAggGossipRun(t *testing.T) {
	if testing.Short() {
		t.Skip("gradient-descent extensions")
	}
	for _, id := range []string{"ext-async", "ext-secagg", "ext-gossip"} {
		d, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		rep, err := d(quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) < 2 {
			t.Fatalf("%s produced no comparison rows", id)
		}
	}
}

func TestExtDropoutShape(t *testing.T) {
	if testing.Short() {
		t.Skip("gradient-descent extension")
	}
	rep, err := ExtDropout(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	waitSpan := cellF(t, tbl, 0, "mean round [s]")
	waitAcc := cellF(t, tbl, 0, "accuracy")
	dropAcc := cellF(t, tbl, 1, "accuracy")
	lbapSpan := cellF(t, tbl, 2, "mean round [s]")
	lbapAcc := cellF(t, tbl, 2, "accuracy")
	if lbapSpan >= waitSpan {
		t.Errorf("Fed-LBAP (%.0f s) not faster than waiting (%.0f s)", lbapSpan, waitSpan)
	}
	if dropAcc >= lbapAcc {
		t.Errorf("dropout accuracy %.3f should trail Fed-LBAP %.3f (it discards data)", dropAcc, lbapAcc)
	}
	if lbapAcc < waitAcc-0.05 {
		t.Errorf("Fed-LBAP accuracy %.3f fell below wait-for-all %.3f", lbapAcc, waitAcc)
	}
}

func TestExtAdaptiveShape(t *testing.T) {
	rep, err := ExtAdaptive(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	staticFinal := cellF(t, tbl, 0, "final round [s]")
	adaptFinal := cellF(t, tbl, 1, "final round [s]")
	if adaptFinal >= staticFinal {
		t.Errorf("adaptive final round %.1f not faster than static %.1f", adaptFinal, staticFinal)
	}
	if cellF(t, tbl, 1, "reschedules") == 0 {
		t.Error("adaptive controller never rescheduled")
	}
	if cellF(t, tbl, 0, "reschedules") != 0 {
		t.Error("static baseline rescheduled")
	}
}
