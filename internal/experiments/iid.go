package experiments

import (
	"fmt"
	"math/rand"

	"fedsched/internal/data"
	"fedsched/internal/fl"
)

func init() {
	register("fig5", Fig5)
	register("tab3", Tab3)
}

// ShardSize is the paper's minimum data granularity (§IV-A: e.g. 100
// samples per shard).
const ShardSize = 100

// Fig5 reproduces Fig 5: per-round computation time with IID data across
// the three testbeds, both datasets and both models, for Proportional /
// Random / Equal / Fed-LBAP scheduling.
func Fig5(o Options) (*Report, error) {
	rep := &Report{ID: "fig5", Title: "Computation time per global update, IID data (paper Fig 5)"}
	rounds, randomRuns := 5, 3
	if o.Quick {
		rounds, randomRuns = 2, 2
	}
	for _, ds := range []benchDataset{mnistBench(), cifarBench()} {
		for _, model := range []string{"LeNet", "VGG6"} {
			arch := paperArch(model, ds)
			tbl := &Table{
				Title:   fmt.Sprintf("%s + %s, %d samples total, mean over %d rounds [s]", ds.PaperName, model, ds.TotalSamples, rounds),
				Columns: []string{"testbed", "Prop.", "Random", "Equal", "Fed-LBAP", "speedup vs Equal", "speedup vs best baseline"},
			}
			for tbID := 1; tbID <= 3; tbID++ {
				tb, err := newTestbed(tbID, ds)
				if err != nil {
					return nil, err
				}
				req := tb.request(arch, ds.TotalSamples, ShardSize)
				req.Trace = o.Trace
				times := make(map[string]float64)
				for _, s := range schedulers() {
					runs := 1
					if s.Name() == "Random" {
						runs = randomRuns
					}
					total := 0.0
					for run := 0; run < runs; run++ {
						rng := rand.New(rand.NewSource(o.Seed + int64(100*tbID+run)))
						mean, err := meanRoundTime(tb, arch, s, req, rounds, rng,
							func(samples []int) ([]float64, error) {
								return fl.SimulateRoundsTraced(arch, tb.devices(), tb.links(), samples, 20, rounds, o.Trace)
							})
						if err != nil {
							return nil, err
						}
						total += mean
					}
					times[s.Name()] = total / float64(runs)
				}
				best := times["Prop."]
				for _, n := range []string{"Random", "Equal"} {
					if times[n] < best {
						best = times[n]
					}
				}
				tbl.AddRow(
					fmt.Sprintf("%d (%d devices)", tbID, len(tb.Profiles)),
					times["Prop."], times["Random"], times["Equal"], times["Fed-LBAP"],
					times["Equal"]/times["Fed-LBAP"],
					best/times["Fed-LBAP"],
				)
			}
			rep.Tables = append(rep.Tables, tbl)
		}
	}
	rep.Notes = append(rep.Notes,
		"Expected shape (paper): Fed-LBAP wins everywhere with 5-10× average speedups, largest on Testbed 2 where the Nexus6P stragglers dominate the naive schedules; Fed-LBAP's time decreases as devices are added while baselines do not.")
	return rep, nil
}

// Tab3 reproduces Table III: model accuracy under the four schedulers with
// IID data. Schedules are computed at paper scale, then the per-user sample
// counts are rescaled onto the reduced synthetic training set.
func Tab3(o Options) (*Report, error) {
	rep := &Report{ID: "tab3", Title: "Model accuracy with different benchmarks, IID data (paper Table III)"}
	trainN, testN, rounds, _ := accuracyScale(o)
	models := []string{"LeNet", "VGG6"}
	testbeds := []int{1, 2, 3}
	if o.Quick {
		models = []string{"LeNet"}
		testbeds = []int{2}
	}
	for _, ds := range []benchDataset{mnistBench(), cifarBench()} {
		train, test := data.TrainTest(ds.Cfg(0, o.Seed+41), trainN, testN)
		for _, model := range models {
			arch := paperArch(model, ds)
			tbl := &Table{
				Title:   fmt.Sprintf("%s + %s (reduced-scale training: %d samples, %d rounds)", ds.PaperName, model, trainN, rounds),
				Columns: []string{"testbed", "Prop.", "Random", "Equal", "Fed-LBAP"},
			}
			for _, tbID := range testbeds {
				tb, err := newTestbed(tbID, ds)
				if err != nil {
					return nil, err
				}
				req := tb.request(arch, ds.TotalSamples, ShardSize)
				row := []interface{}{fmt.Sprintf("(%d)", tbID)}
				for _, s := range schedulers() {
					rng := rand.New(rand.NewSource(o.Seed + int64(tbID)))
					asg, err := s.Schedule(req, rng)
					if err != nil {
						return nil, err
					}
					sizes := scaleSizes(asg.Samples(req.ShardSize), train.Len())
					part := data.IIDSizes(train, sizes, rng)
					acc, err := runFLWithArch(o, smallArch(model, train.C), train, test, part, rounds)
					if err != nil {
						return nil, err
					}
					row = append(row, acc)
				}
				tbl.AddRow(row...)
			}
			rep.Tables = append(rep.Tables, tbl)
		}
	}
	rep.Notes = append(rep.Notes,
		"Expected shape (paper): accuracy differences across schedulers are negligible when data is IID — load unbalancing is free.")
	return rep, nil
}
