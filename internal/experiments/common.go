package experiments

import (
	"fmt"
	"math/rand"

	"fedsched/internal/data"
	"fedsched/internal/device"
	"fedsched/internal/network"
	"fedsched/internal/nn"
	"fedsched/internal/profile"
	"fedsched/internal/sched"
)

// benchDataset couples a dataset stand-in with its paper counterpart.
type benchDataset struct {
	PaperName string // MNIST / CIFAR10
	// Geometry of the paper-scale dataset (for time simulation).
	C, H, W int
	// TotalSamples is the paper's training-set size.
	TotalSamples int
	// Gen generates the reduced-scale stand-in for accuracy runs.
	Gen func(n int, seed int64) *data.Dataset
	Cfg func(n int, seed int64) data.GenConfig
	// Rounds is the paper's global epoch count for this dataset.
	Rounds int
}

func mnistBench() benchDataset {
	return benchDataset{
		PaperName: "MNIST", C: 1, H: 28, W: 28, TotalSamples: 60000,
		Gen:    data.SMNIST,
		Cfg:    func(n int, seed int64) data.GenConfig { return data.SMNISTConfig(n, seed) },
		Rounds: 20,
	}
}

func cifarBench() benchDataset {
	return benchDataset{
		PaperName: "CIFAR10", C: 3, H: 32, W: 32, TotalSamples: 50000,
		Gen:    data.SCIFAR,
		Cfg:    func(n int, seed int64) data.GenConfig { return data.SCIFARConfig(n, seed) },
		Rounds: 50,
	}
}

// paperArch returns the paper-scale architecture for time simulation.
func paperArch(model string, ds benchDataset) *nn.Arch {
	switch model {
	case "LeNet":
		return nn.LeNet(ds.C, ds.H, ds.W, 10)
	case "VGG6":
		return nn.VGG6(ds.C, ds.H, ds.W, 10)
	}
	panic(fmt.Sprintf("experiments: unknown model %q", model))
}

// smallArch returns the reduced-scale architecture for accuracy runs on
// the 16×16 synthetic stand-ins.
func smallArch(model string, channels int) *nn.Arch {
	switch model {
	case "LeNet":
		return nn.LeNetSmall(channels, 16, 16, 10)
	case "VGG6":
		return nn.VGG6Small(channels, 16, 16, 10)
	}
	panic(fmt.Sprintf("experiments: unknown model %q", model))
}

// testbedSetup bundles everything needed to schedule and simulate on one
// of the paper's three testbeds.
type testbedSetup struct {
	ID       int
	Profiles []device.Profile
	DevProfs []*profile.DeviceProfile
	Link     network.Link
}

// profileCache memoizes offline profiling per (testbed, geometry) — the
// expensive step the paper also performs once offline.
var profileCache = map[string][]*profile.DeviceProfile{}

func newTestbed(id int, ds benchDataset) (*testbedSetup, error) {
	profs := device.Testbed(id)
	key := fmt.Sprintf("%d/%dx%dx%d", id, ds.C, ds.H, ds.W)
	dp, ok := profileCache[key]
	if !ok {
		var err error
		dp, err = profile.BuildTestbed(profs, ds.C, ds.H, ds.W, 10)
		if err != nil {
			return nil, err
		}
		profileCache[key] = dp
	}
	return &testbedSetup{ID: id, Profiles: profs, DevProfs: dp, Link: network.WiFi()}, nil
}

// request builds a scheduling request for the testbed: costs from the
// offline profiles, communication from the link, total workload in shards.
func (tb *testbedSetup) request(arch *nn.Arch, totalSamples, shardSize int) *sched.Request {
	users := make([]*sched.User, len(tb.Profiles))
	comm := tb.Link.RoundTripTime(arch.SizeBytes())
	for j := range tb.Profiles {
		p := tb.DevProfs[j]
		prof := tb.Profiles[j]
		users[j] = &sched.User{
			Name:        fmt.Sprintf("%s-%d", prof.Model, j),
			Cost:        func(n int) float64 { return p.Predict(arch, n) },
			CommSeconds: comm,
			MeanFreqGHz: prof.MeanFreqGHz(),
		}
	}
	return &sched.Request{
		TotalShards: totalSamples / shardSize,
		ShardSize:   shardSize,
		Users:       users,
	}
}

// devices instantiates fresh (cold) simulated devices for the testbed.
func (tb *testbedSetup) devices() []*device.Device {
	out := make([]*device.Device, len(tb.Profiles))
	for i, p := range tb.Profiles {
		out[i] = device.New(p)
	}
	return out
}

// links returns one link per device.
func (tb *testbedSetup) links() []network.Link {
	out := make([]network.Link, len(tb.Profiles))
	for i := range out {
		out[i] = tb.Link
	}
	return out
}

// schedulers returns the benchmark set in paper column order.
func schedulers() []sched.Scheduler {
	return []sched.Scheduler{sched.Proportional{}, sched.Random{}, sched.Equal{}, sched.FedLBAP{}}
}

// meanRoundTime schedules with s, simulates `rounds` synchronous rounds on
// fresh devices, and returns the mean makespan.
func meanRoundTime(tb *testbedSetup, arch *nn.Arch, s sched.Scheduler, req *sched.Request, rounds int, rng *rand.Rand, flCompute func(samples []int) ([]float64, error)) (float64, error) {
	asg, err := s.Schedule(req, rng)
	if err != nil {
		return 0, err
	}
	spans, err := flCompute(asg.Samples(req.ShardSize))
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range spans {
		sum += v
	}
	return sum / float64(len(spans)), nil
}

// nilDevices returns n nil devices (accuracy-only runs skip time
// simulation).
func nilDevices(n int) []*device.Device { return make([]*device.Device, n) }

// wifiLinks returns n WiFi links.
func wifiLinks(n int) []network.Link {
	out := make([]network.Link, n)
	for i := range out {
		out[i] = network.WiFi()
	}
	return out
}

// scaleSizes proportionally rescales per-user sample counts so they sum to
// newTotal (used to map paper-scale schedules onto reduced accuracy runs).
func scaleSizes(sizes []int, newTotal int) []int {
	oldTotal := 0
	for _, s := range sizes {
		oldTotal += s
	}
	out := make([]int, len(sizes))
	if oldTotal == 0 {
		return out
	}
	assigned := 0
	for i, s := range sizes {
		out[i] = s * newTotal / oldTotal
		assigned += out[i]
	}
	// Distribute rounding remainder to the largest users.
	for assigned < newTotal {
		best := 0
		for i, s := range sizes {
			if s > sizes[best] {
				best = i
			}
			_ = s
		}
		out[best]++
		assigned++
	}
	return out
}
