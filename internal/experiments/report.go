// Package experiments contains one driver per table and figure of the
// paper's evaluation (§III measurement study and §VII evaluation). Each
// driver regenerates the corresponding rows/series from the simulation
// substrate and returns them as formatted tables, so the whole evaluation
// can be reproduced with `fedsim -exp all` or the benchmark harness.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"fedsched/internal/nn"
	"fedsched/internal/trace"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks training workloads so the full suite runs in CI time.
	// Time-simulation experiments always run at paper scale (they are
	// cheap); Quick only reduces gradient-descent workloads.
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// Precision selects the client training element type (nn.F64 default,
	// nn.F32 for the float32 kernels); server aggregation stays float64
	// either way. `fedsim -precision f32` plumbs it.
	Precision nn.Precision
	// Workers bounds concurrent client training inside the federated
	// engines (fl.Config.Workers): 0 = GOMAXPROCS, negative = strictly
	// sequential. Results are identical for any value at a fixed Seed.
	Workers int
	// Trace, when non-nil, collects the round trace of every traced
	// driver (schedule assignments, solver probes, per-client round
	// events, round summaries) — `fedsim -trace out.jsonl` plumbs it.
	Trace *trace.Recorder
}

// Table is a formatted result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Report is the output of one experiment driver.
type Report struct {
	ID     string
	Title  string
	Tables []*Table
	Notes  []string
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\nnote: %s\n", n)
	}
	return b.String()
}

// Driver regenerates one paper artifact.
type Driver func(Options) (*Report, error)

var registry = map[string]Driver{}

func register(id string, d Driver) { registry[id] = d }

// Lookup returns the driver for an experiment id (fig1, tab2, ...).
func Lookup(id string) (Driver, bool) {
	d, ok := registry[id]
	return d, ok
}

// IDs returns all registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
