package experiments

import (
	"fmt"

	"fedsched/internal/device"
	"fedsched/internal/network"
	"fedsched/internal/nn"
)

func init() {
	register("fig1", Fig1)
	register("tab2", Tab2)
}

// Fig1 reproduces Fig 1: per-batch training time traces for LeNet (a) and
// VGG6 (b) on the four devices, and the CPU frequency vs temperature
// interaction sampled every 5 s (c).
func Fig1(o Options) (*Report, error) {
	rep := &Report{ID: "fig1", Title: "Per-batch training time and frequency/temperature traces (paper Fig 1)"}
	// Time simulation is cheap; always run enough samples for the thermal
	// signatures to appear (the Nexus 6P trips after ~45 s of LeNet load).
	samples := 3000
	for _, model := range []string{"LeNet", "VGG6"} {
		arch := paperArch(model, mnistBench())
		tbl := &Table{
			Title:   fmt.Sprintf("(%s) per-batch time [s], batch=20, %d samples", model, samples),
			Columns: []string{"device", "batch10", "batch25", "batch50", "mean", "last", "max/min"},
		}
		for _, p := range []device.Profile{device.Nexus6(), device.Nexus6P(), device.Mate10(), device.Pixel2()} {
			d := device.New(p)
			_, trace := d.TrainSamples(arch, samples, 20)
			mean, min, max := 0.0, trace[0].Seconds, trace[0].Seconds
			for _, pt := range trace {
				mean += pt.Seconds
				if pt.Seconds < min {
					min = pt.Seconds
				}
				if pt.Seconds > max {
					max = pt.Seconds
				}
			}
			mean /= float64(len(trace))
			at := func(i int) float64 {
				if i >= len(trace) {
					i = len(trace) - 1
				}
				return trace[i].Seconds
			}
			tbl.AddRow(p.Model, at(9), at(24), at(49), mean, trace[len(trace)-1].Seconds, max/min)
		}
		rep.Tables = append(rep.Tables, tbl)
	}

	// (c) frequency vs temperature every 5 s on the thermally interesting
	// device (Nexus 6P running LeNet).
	d := device.New(device.Nexus6P())
	arch := paperArch("LeNet", mnistBench())
	_, trace := d.TrainSamples(arch, samples*3, 20)
	tbl := &Table{
		Title:   "(c) Nexus6P avg CPU frequency vs temperature (5 s samples)",
		Columns: []string{"t[s]", "freq[GHz]", "temp[C]", "big online"},
	}
	elapsed, next := 0.0, 0.0
	for _, pt := range trace {
		elapsed += pt.Seconds
		if elapsed >= next {
			tbl.AddRow(fmt.Sprintf("%.0f", elapsed), pt.FreqGHz, pt.TempC, pt.BigOnline)
			next += 5
		}
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"Expected shape: Nexus6P batch times jump after the thermal hard trip (big cores offline); others stabilize after governor ramp.",
	)
	return rep, nil
}

// Tab2 reproduces Table II: per-epoch training time (s) for 3K and 6K
// MNIST-class samples with the network communication share in parentheses,
// for WiFi and LTE.
func Tab2(o Options) (*Report, error) {
	rep := &Report{ID: "tab2", Title: "Training time of MNIST samples per epoch with communication share (paper Table II)"}
	paper := map[string]map[string][4]float64{ // model → device → paper epoch seconds
		"LeNet": {"Nexus6": {31, 32, 62, 63}, "Nexus6P": {69, 71, 220, 222}, "Mate10": {45, 47, 89, 91}, "Pixel2": {25, 27, 51, 53}},
		"VGG6":  {"Nexus6": {495, 539, 1021, 1065}, "Nexus6P": {540, 584, 1134, 1178}, "Mate10": {359, 403, 712, 756}, "Pixel2": {339, 383, 661, 705}},
	}
	for _, model := range []string{"LeNet", "VGG6"} {
		arch := paperArch(model, mnistBench())
		tbl := &Table{
			Title:   model,
			Columns: []string{"device", "3K WiFi", "3K LTE", "6K WiFi", "6K LTE", "paper(3K WiFi)", "paper(6K WiFi)"},
		}
		for _, p := range []device.Profile{device.Nexus6(), device.Nexus6P(), device.Mate10(), device.Pixel2()} {
			cells := []interface{}{p.Model}
			var t3, t6 float64
			for _, n := range []int{3000, 6000} {
				d := device.New(p)
				comp := d.ColdEpochTime(arch, n)
				if n == 3000 {
					t3 = comp
				} else {
					t6 = comp
				}
				for _, link := range []network.Link{network.WiFi(), network.LTE()} {
					comm := link.RoundTripTime(arch.SizeBytes())
					total := comp + comm
					cells = append(cells, fmt.Sprintf("%.0f(%.1f%%)", total, 100*comm/total))
				}
			}
			// reorder: currently device, 3KWiFi, 3KLTE, 6KWiFi, 6KLTE — fine
			pv := paper[model][p.Model]
			cells = append(cells, fmt.Sprintf("%.0f", pv[0]), fmt.Sprintf("%.0f", pv[2]))
			_ = t3
			_ = t6
			tbl.AddRow(cells...)
		}
		rep.Tables = append(rep.Tables, tbl)
	}
	rep.Notes = append(rep.Notes,
		"Communication share uses model payloads of "+
			fmt.Sprintf("%.1f MB (LeNet) and %.1f MB (VGG6), matching the paper's 2.5/65.4 MB.",
				float64(nn.LeNet(1, 28, 28, 10).SizeBytes())/1e6,
				float64(nn.VGG6(1, 28, 28, 10).SizeBytes())/1e6),
	)
	return rep, nil
}
