package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"fedsched/internal/data"
	"fedsched/internal/fl"
	"fedsched/internal/nn"
	"fedsched/internal/sched"
)

func init() {
	register("fig6", Fig6)
	register("tab4", Tab4)
	register("fig7", Fig7)
	register("tab5", Tab5)
}

// scenario is one of the paper's representative class distributions
// (Table IV columns 2-4). Device order matches device.Testbed(TestbedID).
type scenario struct {
	Name      string
	TestbedID int
	ClassSets [][]int
}

// paperScenarios returns S(I), S(II), S(III) exactly as in Table IV.
func paperScenarios() []scenario {
	return []scenario{
		{
			Name: "S(I)", TestbedID: 1,
			ClassSets: [][]int{
				{0, 1, 2, 3, 4, 5, 6, 9}, // Nexus6(a)
				{2, 3, 4, 5, 6, 8},       // Mate10(a)
				{7, 8},                   // Pixel2(a)
			},
		},
		{
			Name: "S(II)", TestbedID: 2,
			ClassSets: [][]int{
				{1, 2, 5, 7}, // Nexus6(a)
				{2, 6, 8},    // Nexus6(b)
				{0, 3, 8, 9}, // Nexus6P(a)
				{0},          // Nexus6P(b)
				{4, 9},       // Mate10(a)
				{0, 1, 2},    // Pixel2(a)
			},
		},
		{
			Name: "S(III)", TestbedID: 3,
			ClassSets: [][]int{
				{2, 6, 8, 9},       // Nexus6(a)
				{0, 1, 3, 7, 8, 9}, // Nexus6(b)
				{9},                // Nexus6(c)
				{0, 5},             // Nexus6(d)
				{2},                // Nexus6P(a)
				{0, 1, 2, 4, 5},    // Nexus6P(b)
				{1, 3, 4, 8},       // Mate10(a)
				{9},                // Mate10(b)
				{1},                // Pixel2(a)
				{0, 1, 2, 3, 7, 8}, // Pixel2(b)
			},
		},
	}
}

// Fig6 reproduces Fig 6: how α and β trade training time against accuracy
// on scenarios S(I)-S(III), evaluated with CIFAR10 + LeNet as in Table IV.
func Fig6(o Options) (*Report, error) {
	rep := &Report{ID: "fig6", Title: "Effectiveness of α and β on time and accuracy (paper Fig 6)"}
	ds := cifarBench()
	arch := paperArch("LeNet", ds)
	alphas := []float64{100, 500, 1000, 2000, 5000}
	scens := paperScenarios()
	trainN, testN, rounds, _ := accuracyScale(o)
	if o.Quick {
		alphas = []float64{100, 1000, 5000}
		scens = scens[:2]
	}
	train, test := data.TrainTest(ds.Cfg(0, o.Seed+51), trainN, testN)
	for _, sc := range scens {
		tb, err := newTestbed(sc.TestbedID, ds)
		if err != nil {
			return nil, err
		}
		tbl := &Table{
			Title:   fmt.Sprintf("%s: Fed-MinAvg over α (CIFAR10+LeNet, %d samples scheduled)", sc.Name, ds.TotalSamples),
			Columns: []string{"alpha", "beta", "round time [s]", "accuracy", "participants"},
		}
		for _, beta := range []float64{0, 2} {
			for _, alpha := range alphas {
				req := tb.request(arch, ds.TotalSamples, ShardSize)
				for j, u := range req.Users {
					u.Classes = sc.ClassSets[j]
				}
				req.K, req.Alpha, req.Beta = 10, alpha, beta
				asg, err := sched.FedMinAvg{}.Schedule(req, nil)
				if err != nil {
					return nil, err
				}
				spans, err := fl.SimulateRounds(arch, tb.devices(), tb.links(), asg.Samples(ShardSize), 20, 2)
				if err != nil {
					return nil, err
				}
				meanSpan := (spans[0] + spans[1]) / 2
				rng := rand.New(rand.NewSource(o.Seed + int64(alpha) + int64(beta*13)))
				sizes := scaleSizes(asg.Samples(ShardSize), train.Len())
				part := data.ByClassSets(train, sc.ClassSets, sizes, rng)
				acc, err := runFL(o, train, test, part, rounds)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(alpha, beta, meanSpan, acc, asg.Participants())
			}
		}
		rep.Tables = append(rep.Tables, tbl)
	}
	rep.Notes = append(rep.Notes,
		"Expected shape (paper): with β=0, training time rises with α (load shifts to class-rich devices, less parallelism); when outlier-only classes exist (S(I), S(II)) accuracy falls as α excludes them. β=2 re-includes unseen-class outliers, lifting accuracy by ~0.02-0.03 at a time cost.")
	return rep, nil
}

// Tab4 reproduces Table IV: the schedules (10³ samples per device) computed
// by Fed-MinAvg for (α, β) = p1(100,0), p2(5000,0), p3(100,2), p4(5000,2)
// on CIFAR10 + LeNet.
func Tab4(o Options) (*Report, error) {
	rep := &Report{ID: "tab4", Title: "Schedules computed by Fed-MinAvg (10³ samples, CIFAR10+LeNet) — paper Table IV"}
	ds := cifarBench()
	arch := paperArch("LeNet", ds)
	params := []struct {
		name        string
		alpha, beta float64
	}{
		{"p1", 100, 0}, {"p2", 5000, 0}, {"p3", 100, 2}, {"p4", 5000, 2},
	}
	for _, sc := range paperScenarios() {
		tb, err := newTestbed(sc.TestbedID, ds)
		if err != nil {
			return nil, err
		}
		tbl := &Table{
			Title:   fmt.Sprintf("%s (classes per device in brackets)", sc.Name),
			Columns: []string{"device", "classes", "p1(100,0)", "p2(5000,0)", "p3(100,2)", "p4(5000,2)"},
		}
		cols := make([][]float64, len(params))
		for pi, pr := range params {
			req := tb.request(arch, ds.TotalSamples, ShardSize)
			for j, u := range req.Users {
				u.Classes = sc.ClassSets[j]
			}
			req.K, req.Alpha, req.Beta = 10, pr.alpha, pr.beta
			asg, err := sched.FedMinAvg{}.Schedule(req, nil)
			if err != nil {
				return nil, err
			}
			col := make([]float64, len(req.Users))
			for j, s := range asg.Samples(ShardSize) {
				col[j] = float64(s) / 1000
			}
			cols[pi] = col
		}
		for j := range sc.ClassSets {
			tbl.AddRow(
				fmt.Sprintf("%s-%d", tb.Profiles[j].Model, j),
				fmt.Sprintf("%v", sc.ClassSets[j]),
				cols[0][j], cols[1][j], cols[2][j], cols[3][j],
			)
		}
		rep.Tables = append(rep.Tables, tbl)
	}
	rep.Notes = append(rep.Notes,
		"Expected shape (paper): raising α drains data from class-poor devices (p1→p2 and p3→p4); at α=5000, β=0 the slow single-class devices get zero.")
	return rep, nil
}

// randomClassSets draws a random class subset (1-6 of 10 classes) per user,
// the Fig 7 "random permutations of class distributions".
func randomClassSets(users int, rng *rand.Rand) [][]int {
	sets := sched.RandomClassSets(users, 10, 6, rng)
	for _, s := range sets {
		sort.Ints(s)
	}
	return sets
}

// bestAlpha picks the α in [100, 5000] minimizing the predicted makespan
// with β=0 (the paper's Fig 7 procedure), via the library's TuneAlpha.
func bestAlpha(tb *testbedSetup, arch *nn.Arch, classSets [][]int, totalSamples int) (float64, *sched.Assignment, error) {
	req := tb.request(arch, totalSamples, ShardSize)
	for j, u := range req.Users {
		u.Classes = classSets[j]
	}
	req.K, req.Beta = 10, 0
	best, _, err := sched.TuneAlpha(req, nil, nil)
	if err != nil {
		return 0, nil, err
	}
	return best.Alpha, best.Assignment, nil
}

// Fig7 reproduces Fig 7: per-round computation time with non-IID data,
// Fed-MinAvg (best α, β=0) against the baselines.
func Fig7(o Options) (*Report, error) {
	rep := &Report{ID: "fig7", Title: "Computation time per global update, non-IID data (paper Fig 7)"}
	rounds := 5
	if o.Quick {
		rounds = 2
	}
	for _, ds := range []benchDataset{mnistBench(), cifarBench()} {
		for _, model := range []string{"LeNet", "VGG6"} {
			arch := paperArch(model, ds)
			tbl := &Table{
				Title:   fmt.Sprintf("%s + %s, %d samples, mean over %d rounds [s]", ds.PaperName, model, ds.TotalSamples, rounds),
				Columns: []string{"testbed", "Prop.", "Random", "Equal", "Fed-MinAvg", "best α", "speedup vs Equal"},
			}
			for tbID := 1; tbID <= 3; tbID++ {
				tb, err := newTestbed(tbID, ds)
				if err != nil {
					return nil, err
				}
				rng := rand.New(rand.NewSource(o.Seed + int64(1000*tbID)))
				classSets := randomClassSets(len(tb.Profiles), rng)
				times := make(map[string]float64)
				for _, s := range []sched.Scheduler{sched.Proportional{}, sched.Random{}, sched.Equal{}} {
					req := tb.request(arch, ds.TotalSamples, ShardSize)
					req.Trace = o.Trace
					mean, err := meanRoundTime(tb, arch, s, req, rounds, rng,
						func(samples []int) ([]float64, error) {
							return fl.SimulateRoundsTraced(arch, tb.devices(), tb.links(), samples, 20, rounds, o.Trace)
						})
					if err != nil {
						return nil, err
					}
					times[s.Name()] = mean
				}
				alpha, asg, err := bestAlpha(tb, arch, classSets, ds.TotalSamples)
				if err != nil {
					return nil, err
				}
				spans, err := fl.SimulateRoundsTraced(arch, tb.devices(), tb.links(), asg.Samples(ShardSize), 20, rounds, o.Trace)
				if err != nil {
					return nil, err
				}
				sum := 0.0
				for _, v := range spans {
					sum += v
				}
				times["Fed-MinAvg"] = sum / float64(len(spans))
				tbl.AddRow(
					fmt.Sprintf("%d (%d devices)", tbID, len(tb.Profiles)),
					times["Prop."], times["Random"], times["Equal"], times["Fed-MinAvg"],
					alpha, times["Equal"]/times["Fed-MinAvg"],
				)
			}
			rep.Tables = append(rep.Tables, tbl)
		}
	}
	rep.Notes = append(rep.Notes,
		"Expected shape (paper): Fed-MinAvg achieves 1.3-8× speedups — smaller than the IID case because class coverage constrains the schedule, largest on Testbed 2 (worst-case stragglers).")
	return rep, nil
}

// Tab5 reproduces Table V: model accuracy with non-IID data under the four
// mechanisms.
func Tab5(o Options) (*Report, error) {
	rep := &Report{ID: "tab5", Title: "Model accuracy with different mechanisms, non-IID data (paper Table V)"}
	trainN, testN, rounds, _ := accuracyScale(o)
	models := []string{"LeNet", "VGG6"}
	testbeds := []int{1, 2, 3}
	if o.Quick {
		models = []string{"LeNet"}
		testbeds = []int{1, 2}
	}
	for _, ds := range []benchDataset{mnistBench(), cifarBench()} {
		train, test := data.TrainTest(ds.Cfg(0, o.Seed+61), trainN, testN)
		for _, model := range models {
			arch := paperArch(model, ds)
			tbl := &Table{
				Title:   fmt.Sprintf("%s + %s (reduced-scale training: %d samples, %d rounds)", ds.PaperName, model, trainN, rounds),
				Columns: []string{"testbed", "Prop.", "Random", "Equal", "Fed-MinAvg"},
			}
			for _, tbID := range testbeds {
				tb, err := newTestbed(tbID, ds)
				if err != nil {
					return nil, err
				}
				rng := rand.New(rand.NewSource(o.Seed + int64(17*tbID)))
				classSets := randomClassSets(len(tb.Profiles), rng)
				row := []interface{}{fmt.Sprintf("(%d)", tbID)}
				addRun := func(samples []int) error {
					sizes := scaleSizes(samples, train.Len())
					part := data.ByClassSets(train, classSets, sizes, rng)
					acc, err := runFLWithArch(o, smallArch(model, train.C), train, test, part, rounds)
					if err != nil {
						return err
					}
					row = append(row, acc)
					return nil
				}
				for _, s := range []sched.Scheduler{sched.Proportional{}, sched.Random{}, sched.Equal{}} {
					req := tb.request(arch, ds.TotalSamples, ShardSize)
					asg, err := s.Schedule(req, rng)
					if err != nil {
						return nil, err
					}
					if err := addRun(asg.Samples(ShardSize)); err != nil {
						return nil, err
					}
				}
				_, asg, err := bestAlpha(tb, arch, classSets, ds.TotalSamples)
				if err != nil {
					return nil, err
				}
				if err := addRun(asg.Samples(ShardSize)); err != nil {
					return nil, err
				}
				tbl.AddRow(row...)
			}
			rep.Tables = append(rep.Tables, tbl)
		}
	}
	rep.Notes = append(rep.Notes,
		"Expected shape (paper): Fed-MinAvg accuracy within ~0.02 of the best baseline; accuracy climbs as more users join (vertical direction); Random tends to rank highest but is far from time-optimal.")
	return rep, nil
}
