package experiments

import (
	"fmt"
	"math/rand"

	"fedsched/internal/data"
	"fedsched/internal/fl"
	"fedsched/internal/nn"
)

func init() {
	register("fig2", Fig2)
	register("fig3a", Fig3a)
	register("fig3b", Fig3b)
}

// accuracyScale returns the gradient-descent workload sizes.
func accuracyScale(o Options) (trainN, testN, rounds, users int) {
	if o.Quick {
		return 1500, 400, 6, 10
	}
	return 4000, 1000, 15, 20
}

// runFL trains FedAvg over a partition of the training set without time
// simulation and returns final accuracy, using the reduced-scale LeNet.
func runFL(o Options, train, test *data.Dataset, part data.Partition, rounds int) (float64, error) {
	return runFLWithArch(o, smallArch("LeNet", train.C), train, test, part, rounds)
}

// runFLWithArch is runFL with an explicit architecture.
func runFLWithArch(o Options, arch *nn.Arch, train, test *data.Dataset, part data.Partition, rounds int) (float64, error) {
	hist, err := runFLHist(o, arch, train, test, part, rounds)
	if err != nil {
		return 0, err
	}
	return hist.FinalAccuracy, nil
}

// runFLHist returns the full history (confusion matrix included).
func runFLHist(o Options, arch *nn.Arch, train, test *data.Dataset, part data.Partition, rounds int) (*fl.History, error) {
	locals := part.Materialize(train)
	clients, err := fl.BuildClients(nilDevices(len(locals)), wifiLinks(len(locals)), locals)
	if err != nil {
		return nil, err
	}
	cfg := fl.Config{
		Arch:      arch,
		Rounds:    rounds,
		BatchSize: 20,
		LR:        0.02,
		Momentum:  0.9,
		Seed:      o.Seed + 1,
		Precision: o.Precision,
		Workers:   o.Workers,
		Trace:     o.Trace,
	}
	return fl.Run(cfg, clients, test)
}

// Fig2 reproduces Fig 2: accuracy vs imbalance ratio for IID data on both
// datasets, with centralized and balanced-distributed references.
func Fig2(o Options) (*Report, error) {
	rep := &Report{ID: "fig2", Title: "Impact of data imbalance (IID) on FL accuracy (paper Fig 2)"}
	trainN, testN, rounds, users := accuracyScale(o)
	ratios := []float64{0, 0.2, 0.4, 0.6, 0.8}
	for _, ds := range []benchDataset{mnistBench(), cifarBench()} {
		train, test := data.TrainTest(ds.Cfg(0, o.Seed+11), trainN, testN)
		tbl := &Table{
			Title:   fmt.Sprintf("%s (stand-in %s), %d users, %d rounds", ds.PaperName, train.Name, users, rounds),
			Columns: []string{"imbalance ratio", "accuracy"},
		}
		cfg := fl.Config{
			Arch: smallArch("LeNet", train.C), Rounds: rounds, BatchSize: 20,
			LR: 0.02, Momentum: 0.9, Seed: o.Seed + 2, Precision: o.Precision,
			Workers: o.Workers,
		}
		central, err := fl.Centralized(cfg, train, test)
		if err != nil {
			return nil, err
		}
		for _, ratio := range ratios {
			rng := rand.New(rand.NewSource(o.Seed + int64(ratio*1000)))
			var part data.Partition
			if ratio == 0 { //fedlint:allow floateq — ratio walks a literal grid; exact 0 selects the IID-equal branch
				part = data.IIDEqual(train, users, rng)
			} else {
				sizes := data.GaussianSizes(rng, users, train.Len(), ratio)
				part = data.IIDSizes(train, sizes, rng)
			}
			acc, err := runFL(o, train, test, part, rounds)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%.2f (empirical %.2f)", ratio, data.ImbalanceRatio(part.Sizes()))
			tbl.AddRow(label, acc)
		}
		tbl.AddRow("centralized ref", central)
		rep.Tables = append(rep.Tables, tbl)
	}
	rep.Notes = append(rep.Notes,
		"Expected shape (paper): accuracy stays flat across imbalance ratios as long as data remains IID.")
	return rep, nil
}

// Fig3a reproduces Fig 3(a): accuracy vs the degree of class-wise
// non-IIDness (classes per user) on the CIFAR10 stand-in.
func Fig3a(o Options) (*Report, error) {
	rep := &Report{ID: "fig3a", Title: "Degree of non-IID class distribution vs accuracy (paper Fig 3a)"}
	trainN, testN, rounds, users := accuracyScale(o)
	ds := cifarBench()
	train, test := data.TrainTest(ds.Cfg(0, o.Seed+13), trainN, testN)
	tbl := &Table{
		Title:   fmt.Sprintf("%s stand-in, %d users, %d rounds", ds.PaperName, users, rounds),
		Columns: []string{"classes/user", "accuracy"},
	}
	ns := []int{2, 4, 6, 8, 10}
	for _, ncls := range ns {
		rng := rand.New(rand.NewSource(o.Seed + int64(ncls)))
		part := data.NClass(train, data.NClassConfig{Users: users, ClassesPerUser: ncls, SizeStd: 0.2}, rng)
		acc, err := runFL(o, train, test, part, rounds)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(ncls, acc)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"Expected shape (paper): fewer classes per user → lower accuracy, with a 10-15% gap at 2-class non-IIDness.")
	return rep, nil
}

// Fig3b reproduces Fig 3(b): influence of an individual one-class outlier —
// Missing vs Separate vs Merge (paper §III-C).
func Fig3b(o Options) (*Report, error) {
	rep := &Report{ID: "fig3b", Title: "Influence of individual outliers (paper Fig 3b)"}
	trainN, testN, rounds, _ := accuracyScale(o)
	ds := cifarBench()
	train, test := data.TrainTest(ds.Cfg(0, o.Seed+17), trainN, testN)
	tbl := &Table{
		Title:   fmt.Sprintf("%s stand-in, 3 users × 3 classes + 1-class outlier, %d rounds", ds.PaperName, rounds),
		Columns: []string{"mode", "users", "classes covered", "accuracy", "outlier-class recall"},
	}
	for _, mode := range []data.OutlierMode{data.OutlierMissing, data.OutlierSeparate, data.OutlierMerge} {
		rng := rand.New(rand.NewSource(o.Seed + 31)) // same base scenario per mode
		sets, outlierClass := data.OutlierScenarioWithClass(10, mode, rng)
		sizes := make([]int, len(sets))
		per := train.Len() / 10 * 9 / 3 // 3 users share the 9-class mass
		for i := range sizes {
			sizes[i] = per
			if len(sets[i]) == 1 {
				sizes[i] = train.Len() / 10 // the outlier holds one class worth
			}
		}
		part := data.ByClassSets(train, sets, sizes, rng)
		hist, err := runFLHist(o, smallArch("LeNet", train.C), train, test, part, rounds)
		if err != nil {
			return nil, err
		}
		cover := map[int]bool{}
		for _, s := range sets {
			for _, c := range s {
				cover[c] = true
			}
		}
		tbl.AddRow(mode.String(), len(sets), len(cover), hist.FinalAccuracy,
			hist.Confusion.Recall(outlierClass))
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"Expected shape (paper): Missing ranks lowest; including the outlier (Separate or Merge) recovers ~3% accuracy.")
	return rep, nil
}
