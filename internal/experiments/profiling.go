package experiments

import (
	"fmt"

	"fedsched/internal/device"
	"fedsched/internal/nn"
	"fedsched/internal/profile"
)

func init() { register("fig4", Fig4) }

// Fig4 reproduces Fig 4: the two-step profiler on Mate 10. (a) step-1
// regressions of training time against (conv, dense) parameter counts per
// data size; (b) the step-2 time-vs-data-size line for LeNet against
// ground-truth simulation.
func Fig4(o Options) (*Report, error) {
	rep := &Report{ID: "fig4", Title: "Profiling training time on Mate10 via two-step linear regression (paper Fig 4)"}
	dev := device.New(device.Mate10())
	suite := profile.Suite(1, 28, 28, 10)
	prof, err := profile.BuildOffline(dev, suite, profile.DefaultSizes)
	if err != nil {
		return nil, err
	}

	a := &Table{
		Title:   "(a) step-1 fits: time = β0 + β1·convParams + β2·denseParams",
		Columns: []string{"data size", "β0", "β1", "β2", "R²"},
	}
	for _, f := range prof.Step1 {
		a.AddRow(f.DataSize, f.Coef[0], f.Coef[1], f.Coef[2], f.R2)
	}
	rep.Tables = append(rep.Tables, a)

	b := &Table{
		Title:   "(b) step-2 prediction vs measurement (LeNet)",
		Columns: []string{"data size", "predicted [s]", "simulated [s]", "error %"},
	}
	lenet := nn.LeNet(1, 28, 28, 10)
	for _, n := range []int{500, 1500, 2500, 3500, 5000, 7000} {
		pred := prof.Predict(lenet, n)
		meas := dev.ColdEpochTime(lenet, n)
		b.AddRow(n, pred, meas, 100*(pred-meas)/meas)
	}
	rep.Tables = append(rep.Tables, b)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("Profiling suite: %d architectures spanning %d-%d conv params.", len(suite), minConv(suite), maxConv(suite)),
		"Expected shape (paper): high step-1 R² and a small step-2 gap between prediction and measurement.",
	)
	return rep, nil
}

func minConv(suite []*nn.Arch) int {
	best := -1
	for _, a := range suite {
		c, _ := a.ParamCounts()
		if best < 0 || c < best {
			best = c
		}
	}
	return best
}

func maxConv(suite []*nn.Arch) int {
	best := 0
	for _, a := range suite {
		c, _ := a.ParamCounts()
		if c > best {
			best = c
		}
	}
	return best
}
