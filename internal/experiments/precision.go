package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"fedsched/internal/data"
	"fedsched/internal/fl"
	"fedsched/internal/nn"
)

func init() {
	register("ext-precision", ExtPrecision)
}

// ExtPrecision measures float32 vs float64 client training: accuracy
// parity at a fixed seed (the f32 kernels must not change learning
// outcomes beyond rounding noise) and the wall-clock win from halving
// memory traffic. Both paper models run on both synthetic stand-ins; the
// server aggregates in float64 in every configuration.
func ExtPrecision(o Options) (*Report, error) {
	rep := &Report{ID: "ext-precision", Title: "float32 vs float64 client training: accuracy parity and speed (extension)"}
	trainN, testN, rounds, users := accuracyScale(o)
	tbl := &Table{
		Title:   fmt.Sprintf("%d users, %d rounds, reduced-scale models, fixed seed", users, rounds),
		Columns: []string{"dataset", "model", "f64 acc", "f32 acc", "|Δ| [pp]", "f64 [ms]", "f32 [ms]", "speedup"},
	}
	worst := 0.0
	for _, ds := range []benchDataset{mnistBench(), cifarBench()} {
		for _, model := range []string{"LeNet", "VGG6"} {
			train, test := data.TrainTest(ds.Cfg(0, o.Seed+71), trainN, testN)
			run := func(p nn.Precision) (float64, float64, error) {
				part := data.IIDEqual(train, users, rand.New(rand.NewSource(o.Seed)))
				clients, err := fl.BuildClients(nilDevices(users), wifiLinks(users), part.Materialize(train))
				if err != nil {
					return 0, 0, err
				}
				cfg := fl.Config{
					Arch: smallArch(model, train.C), Rounds: rounds, BatchSize: 20,
					LR: 0.02, Momentum: 0.9, Seed: o.Seed, Precision: p,
					Workers: o.Workers, Trace: o.Trace,
				}
				start := time.Now()
				hist, err := fl.Run(cfg, clients, test)
				if err != nil {
					return 0, 0, err
				}
				return hist.FinalAccuracy, float64(time.Since(start).Milliseconds()), nil
			}
			acc64, ms64, err := run(nn.F64)
			if err != nil {
				return nil, err
			}
			acc32, ms32, err := run(nn.F32)
			if err != nil {
				return nil, err
			}
			gap := 100 * (acc64 - acc32)
			if gap < 0 {
				gap = -gap
			}
			if gap > worst {
				worst = gap
			}
			speedup := 0.0
			if ms32 > 0 {
				speedup = ms64 / ms32
			}
			tbl.AddRow(ds.PaperName, model, acc64, acc32, gap, ms64, ms32, speedup)
		}
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("Worst accuracy gap %.2f pp (parity target ≤ 0.5 pp). Expected shape: f32 matches f64 accuracy within rounding noise while the blocked kernels run ~1.5-2× faster on their SIMD tile.", worst))
	// Accuracies are counts over the test set, so gaps are exact
	// multiples of 1/testN pp; the epsilon keeps a gap of exactly 0.5 pp
	// (inside the target) from tripping the warning through binary
	// rounding of the subtraction.
	if worst > 0.5+1e-9 {
		rep.Notes = append(rep.Notes, "WARNING: accuracy parity target exceeded — investigate the f32 kernels before trusting f32 runs.")
	}
	return rep, nil
}
