package fault

import (
	"math"
	"testing"
)

func TestNilPlanIsClean(t *testing.T) {
	var p *Plan
	for round := 0; round < 3; round++ {
		for client := 0; client < 100; client++ {
			f := p.Fault(round, client)
			if f.Kind != None || f.Point != 0 || f.Slow != 1 {
				t.Fatalf("nil plan injected %+v at (%d,%d)", f, round, client)
			}
		}
	}
	if p.Active() {
		t.Fatal("nil plan reports Active")
	}
	if err := p.Check(); err != nil {
		t.Fatalf("nil plan Check: %v", err)
	}
}

func TestFaultDeterministic(t *testing.T) {
	a := &Plan{Seed: 7, CrashRate: 0.2, BatteryRate: 0.1, FlapRate: 0.1, CorruptRate: 0.1, DegradeRate: 0.3}
	b := &Plan{Seed: 7, CrashRate: 0.2, BatteryRate: 0.1, FlapRate: 0.1, CorruptRate: 0.1, DegradeRate: 0.3}
	for round := 0; round < 5; round++ {
		for client := 0; client < 500; client++ {
			fa, fb := a.Fault(round, client), b.Fault(round, client)
			if fa != fb {
				t.Fatalf("(%d,%d): %+v vs %+v", round, client, fa, fb)
			}
			if fa != a.Fault(round, client) {
				t.Fatalf("(%d,%d): repeated draw differs", round, client)
			}
		}
	}
}

func TestFaultBounds(t *testing.T) {
	p := &Plan{Seed: 3, CrashRate: 0.5, BatteryRate: 0.3, FlapRate: 0.4, CorruptRate: 0.4, DegradeRate: 0.5, DegradeFactor: 8}
	for round := 0; round < 10; round++ {
		for client := 0; client < 1000; client++ {
			f := p.Fault(round, client)
			if f.Point < 0 || f.Point >= 1 {
				t.Fatalf("Point %g outside [0,1)", f.Point)
			}
			if f.Slow < 1 {
				t.Fatalf("Slow %g < 1", f.Slow)
			}
			if f.Kind > Corrupt {
				t.Fatalf("unknown kind %d", f.Kind)
			}
			if (f.Kind == None || f.Kind == Corrupt) && f.Point != 0 {
				t.Fatalf("kind %v carries Point %g", f.Kind, f.Point)
			}
		}
	}
}

// TestFaultRates checks the empirical per-kind frequency against the
// configured rates over a large sample (±2 pp at n = 20000).
func TestFaultRates(t *testing.T) {
	p := &Plan{Seed: 11, CrashRate: 0.10, DegradeRate: 0.25}
	const n = 20000
	crashes, degraded := 0, 0
	for client := 0; client < n; client++ {
		f := p.Fault(4, client)
		if f.Kind == Crash {
			crashes++
		}
		if f.Slow > 1 {
			degraded++
		}
	}
	if got := float64(crashes) / n; math.Abs(got-0.10) > 0.02 {
		t.Errorf("crash frequency %.3f, want ≈ 0.10", got)
	}
	if got := float64(degraded) / n; math.Abs(got-0.25) > 0.02 {
		t.Errorf("degrade frequency %.3f, want ≈ 0.25", got)
	}
}

// TestKindIndependence: a kind's lane draw is unaffected by the other
// kinds' rates — adding crash faults must not move which clients suffer
// battery death, only (by precedence) mask lower-severity kinds.
func TestKindIndependence(t *testing.T) {
	full := &Plan{Seed: 5, CrashRate: 0.2, BatteryRate: 0.1, FlapRate: 0.15, CorruptRate: 0.1}
	batteryOnly := &Plan{Seed: 5, BatteryRate: 0.1}
	crashOnly := &Plan{Seed: 5, CrashRate: 0.2}
	for client := 0; client < 5000; client++ {
		f := full.Fault(0, client)
		b := batteryOnly.Fault(0, client)
		c := crashOnly.Fault(0, client)
		// Battery is the highest severity: the full plan reports it
		// exactly when the single-kind plan fires.
		if (f.Kind == Battery) != (b.Kind == Battery) {
			t.Fatalf("client %d: battery draw moved (full %v, solo %v)", client, f.Kind, b.Kind)
		}
		// Crash is masked only by battery.
		wantCrash := c.Kind == Crash && b.Kind != Battery
		if (f.Kind == Crash) != wantCrash {
			t.Fatalf("client %d: crash draw moved (full %v, solo %v/%v)", client, f.Kind, c.Kind, b.Kind)
		}
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	p := &Plan{Seed: 9, FlapRate: 1}
	for client := 0; client < 100; client++ {
		if f := p.Fault(2, client); f.Kind != LinkFlap {
			t.Fatalf("client %d: rate-1 flap drew %v", client, f.Kind)
		}
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("crash=0.1, battery=0.02,flap=0.05,corrupt=0.01,degrade=0.2,slow=6", 42)
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 42, CrashRate: 0.1, BatteryRate: 0.02, FlapRate: 0.05, CorruptRate: 0.01, DegradeRate: 0.2, DegradeFactor: 6}
	if *p != want {
		t.Fatalf("got %+v, want %+v", *p, want)
	}
	if p.String() != "crash=0.1,battery=0.02,flap=0.05,corrupt=0.01,degrade=0.2,slow=6" {
		t.Fatalf("String() = %q", p.String())
	}

	if p, err := ParseSpec("", 1); p != nil || err != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", p, err)
	}
	for _, bad := range []string{"crash", "crash=x", "meteor=0.1", "crash=1.5", "slow=0.5,degrade=1"} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestCheck(t *testing.T) {
	if err := (&Plan{CrashRate: -0.1}).Check(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (&Plan{BatteryRate: 1.1}).Check(); err == nil {
		t.Error("rate > 1 accepted")
	}
	if err := (&Plan{DegradeRate: 0.5, DegradeFactor: 0.2}).Check(); err == nil {
		t.Error("degrade factor < 1 accepted")
	}
	if err := (&Plan{CrashRate: 1, DegradeRate: 1, DegradeFactor: 4}).Check(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{None: "none", Crash: "crash", Battery: "battery", LinkFlap: "flap", Corrupt: "corrupt"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k, want)
		}
	}
}

func TestAllocFreeDraw(t *testing.T) {
	p := &Plan{Seed: 1, CrashRate: 0.5, DegradeRate: 0.5}
	var sink Fault
	if allocs := testing.AllocsPerRun(100, func() {
		sink = p.Fault(3, 17)
	}); allocs != 0 {
		t.Fatalf("Fault allocates %v per draw", allocs)
	}
	_ = sink
}
