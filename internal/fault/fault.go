// Package fault is the deterministic fault-injection layer for federated
// rounds. The paper's setting is battery-powered phones, where clients
// die mid-round as a matter of course — batteries drain, apps crash,
// links flap — so the engines must tolerate lost and corrupted updates
// instead of assuming a clean fleet.
//
// A Plan is stateless: whether a given client faults in a given round is
// a pure splitmix64-style hash of (kind, round, client, seed). That
// gives three properties the engines rely on:
//
//   - O(selected) compatibility: deciding a cohort member's fate costs a
//     handful of integer mixes and touches no per-client state, so a
//     10^6-client population pays only for its selected cohort — same
//     contract as internal/sample and device.Population.
//   - Worker independence: draws do not consume a shared RNG stream, so
//     fault decisions are bit-identical for any Workers value and any
//     order of evaluation.
//   - Kind independence: each fault kind draws from its own hash lane.
//     Raising the crash rate never moves which clients suffer battery
//     death, which keeps scenario sweeps comparable across a single axis.
//
// When several fatal kinds fire for the same (round, client), the
// reported kind follows severity precedence: battery death beats crash
// beats link flap beats corrupt. Link degradation (a slow, not dead,
// link) is an independent, non-fatal draw that also applies to
// survivors.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates injected fault types. The zero value None means the
// client completes its round normally. Values are stable wire constants:
// they appear as the Flag of KindFault trace events.
type Kind uint8

const (
	// None: no fault this round.
	None Kind = iota
	// Crash: the client process dies mid-shard. The fraction Point of
	// its local compute was already spent (time, energy, heat); the
	// update never uploads.
	Crash
	// Battery: the battery hits empty mid-shard — Crash plus a drained
	// battery account (composes with the DVFS/battery model in
	// internal/device).
	Battery
	// LinkFlap: the radio drops during upload. The full local epoch was
	// computed and the fraction Point of the transfer sent; the update
	// is lost in flight.
	LinkFlap
	// Corrupt: the update arrives but is garbage (NaN/outlier weights —
	// bit-flips, truncated uploads, poisoned clients). The server
	// rejects it on receipt, like a diverged update.
	Corrupt
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Battery:
		return "battery"
	case LinkFlap:
		return "flap"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fatal reports whether the kind loses the client's update (every kind
// but None; Corrupt updates arrive but are rejected).
func (k Kind) Fatal() bool { return k != None }

// Fault is one (round, client) draw: what happened to the client and how
// far it got.
type Fault struct {
	// Kind is the injected fault (None = clean round).
	Kind Kind
	// Point is the failure point in [0, 1): the fraction of the doomed
	// work completed before the fault — of local compute for
	// Crash/Battery, of the upload for LinkFlap. Zero for None/Corrupt.
	Point float64
	// Slow is the link-degradation factor, ≥ 1 (1 = clean link). It
	// divides the client's bandwidth for the round and applies to
	// survivors and victims alike.
	Slow float64
}

// Plan is a seeded fault scenario: per-kind rates, all in [0, 1].
// The zero value (and a nil *Plan) injects nothing.
type Plan struct {
	// Seed fixes every draw. Two plans with equal seeds and rates are
	// bit-identical scenarios.
	Seed int64
	// CrashRate is the per-(round, client) probability of a mid-shard
	// process crash.
	CrashRate float64
	// BatteryRate is the probability of battery death mid-shard.
	BatteryRate float64
	// FlapRate is the probability the upload link drops mid-transfer.
	FlapRate float64
	// CorruptRate is the probability the uploaded update is garbage.
	CorruptRate float64
	// DegradeRate is the probability the client's link is degraded this
	// round (independent of the fatal kinds; survivors just get slow).
	DegradeRate float64
	// DegradeFactor divides a degraded client's bandwidth (default 4).
	DegradeFactor float64
}

// Hash lanes: one odd constant per independent draw so kinds never share
// bits. Folded into the seed before the finalizer chain.
const (
	laneCrash   uint64 = 0xa24baed4963ee407
	laneBattery uint64 = 0x9fb21c651e98df25
	laneFlap    uint64 = 0xd6e8feb86659fd93
	laneCorrupt uint64 = 0xc2b2ae3d27d4eb4f
	lanePoint   uint64 = 0x165667b19e3779f9
	laneDegrade uint64 = 0x27d4eb2f165667c5
)

// mix64 is the SplitMix64 finalizer (same mixing step as
// internal/sample and device.Population use — duplicated to keep the
// package dependency-free).
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns a uniform value in [0, 1) hashed from (seed, lane, round,
// client). Allocation-free and stateless: it is safe from any goroutine
// and any evaluation order.
//
// fedlint:hotpath
func (p *Plan) draw(lane uint64, round, client int) float64 {
	h := mix64(uint64(p.Seed) ^ lane)
	h = mix64(h ^ uint64(round)*0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(client)*0xbf58476d1ce4e5b9)
	return float64(h>>11) * (1.0 / (1 << 53))
}

// slowFactor returns the configured degradation factor, defaulted.
func (p *Plan) slowFactor() float64 {
	if p.DegradeFactor > 1 {
		return p.DegradeFactor
	}
	return 4
}

// Fault draws the (round, client) fault. Nil-safe: a nil plan reports a
// clean round. Each kind fires from its own independent lane; when
// several fatal kinds fire at once the reported kind follows severity
// precedence (Battery > Crash > LinkFlap > Corrupt).
//
// fedlint:hotpath
// fedlint:deterministic
func (p *Plan) Fault(round, client int) Fault {
	f := Fault{Slow: 1}
	if p == nil {
		return f
	}
	switch {
	case p.BatteryRate > 0 && p.draw(laneBattery, round, client) < p.BatteryRate:
		f.Kind = Battery
	case p.CrashRate > 0 && p.draw(laneCrash, round, client) < p.CrashRate:
		f.Kind = Crash
	case p.FlapRate > 0 && p.draw(laneFlap, round, client) < p.FlapRate:
		f.Kind = LinkFlap
	case p.CorruptRate > 0 && p.draw(laneCorrupt, round, client) < p.CorruptRate:
		f.Kind = Corrupt
	}
	if f.Kind == Crash || f.Kind == Battery || f.Kind == LinkFlap {
		f.Point = p.draw(lanePoint, round, client)
	}
	if p.DegradeRate > 0 && p.draw(laneDegrade, round, client) < p.DegradeRate {
		f.Slow = p.slowFactor()
	}
	return f
}

// Active reports whether the plan can inject anything at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.CrashRate > 0 || p.BatteryRate > 0 || p.FlapRate > 0 ||
		p.CorruptRate > 0 || p.DegradeRate > 0
}

// Check validates the plan's rates. Nil plans are valid (inject nothing).
func (p *Plan) Check() error {
	if p == nil {
		return nil
	}
	rates := [...]struct {
		name string
		v    float64
	}{
		{"crash", p.CrashRate},
		{"battery", p.BatteryRate},
		{"flap", p.FlapRate},
		{"corrupt", p.CorruptRate},
		{"degrade", p.DegradeRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s rate %g outside [0, 1]", r.name, r.v)
		}
	}
	if f := p.DegradeFactor; f < 0 || (f > 0 && f < 1) {
		return fmt.Errorf("fault: degrade factor %g must be 0 (default) or ≥ 1", f)
	}
	return nil
}

// ParseSpec parses a fault scenario of the form
//
//	crash=0.1,battery=0.02,flap=0.05,corrupt=0.01,degrade=0.2,slow=4
//
// Keys may appear in any order and be omitted (rate 0); "slow" sets
// DegradeFactor. An empty spec returns a nil plan (no faults).
func ParseSpec(spec string, seed int64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: seed}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("fault: bad spec element %q (want key=value)", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad value in %q: %v", part, err)
		}
		switch strings.TrimSpace(key) {
		case "crash":
			p.CrashRate = v
		case "battery":
			p.BatteryRate = v
		case "flap":
			p.FlapRate = v
		case "corrupt":
			p.CorruptRate = v
		case "degrade":
			p.DegradeRate = v
		case "slow":
			p.DegradeFactor = v
		default:
			return nil, fmt.Errorf("fault: unknown fault kind %q (have crash, battery, flap, corrupt, degrade, slow)", key)
		}
	}
	if err := p.Check(); err != nil {
		return nil, err
	}
	return p, nil
}

// String renders the plan in ParseSpec syntax (diagnostics, CLI echo).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	add := func(k string, v float64) {
		if v > 0 {
			if b.Len() > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%g", k, v)
		}
	}
	add("crash", p.CrashRate)
	add("battery", p.BatteryRate)
	add("flap", p.FlapRate)
	add("corrupt", p.CorruptRate)
	add("degrade", p.DegradeRate)
	if p.DegradeRate > 0 && p.DegradeFactor > 1 {
		add("slow", p.DegradeFactor)
	}
	return b.String()
}
