package fault

import (
	"math"
	"testing"
)

// clampRate maps an arbitrary fuzzed float into a valid rate in [0, 1].
func clampRate(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	v = math.Abs(v)
	return v - math.Floor(v)
}

// FuzzFaultPlan fuzzes the plan invariants: draws are deterministic and
// pure, results are in bounds, and each kind's lane is independent of the
// other kinds' rates (precedence only masks, never moves, a draw).
func FuzzFaultPlan(f *testing.F) {
	f.Add(int64(1), 0.1, 0.05, 0.05, 0.02, 0.2, 8, 64)
	f.Add(int64(42), 0.5, 0.0, 1.0, 0.0, 0.0, 0, 1)
	f.Add(int64(-9), 0.99, 0.99, 0.99, 0.99, 0.99, 1000000, 1000000)
	f.Fuzz(func(t *testing.T, seed int64, crash, battery, flap, corrupt, degrade float64, round, client int) {
		if round < 0 || client < 0 || round > 1<<30 || client > 1<<30 {
			t.Skip()
		}
		p := &Plan{
			Seed:        seed,
			CrashRate:   clampRate(crash),
			BatteryRate: clampRate(battery),
			FlapRate:    clampRate(flap),
			CorruptRate: clampRate(corrupt),
			DegradeRate: clampRate(degrade),
		}
		if err := p.Check(); err != nil {
			t.Fatalf("clamped plan invalid: %v", err)
		}

		got := p.Fault(round, client)

		// Bounds.
		if got.Kind > Corrupt {
			t.Fatalf("unknown kind %d", got.Kind)
		}
		if got.Point < 0 || got.Point >= 1 {
			t.Fatalf("Point %g outside [0,1)", got.Point)
		}
		if got.Slow < 1 {
			t.Fatalf("Slow %g < 1", got.Slow)
		}

		// Determinism: an identical plan and a repeated draw agree.
		q := *p
		if again := (&q).Fault(round, client); again != got {
			t.Fatalf("identical plan drew %+v, want %+v", again, got)
		}
		if again := p.Fault(round, client); again != got {
			t.Fatalf("repeated draw %+v, want %+v", again, got)
		}

		// Kind independence: the full plan's reported kind must be
		// exactly what the single-kind plans predict under severity
		// precedence (battery > crash > flap > corrupt).
		fires := func(pl *Plan, k Kind) bool { return pl.Fault(round, client).Kind == k }
		b := fires(&Plan{Seed: seed, BatteryRate: p.BatteryRate}, Battery)
		c := fires(&Plan{Seed: seed, CrashRate: p.CrashRate}, Crash)
		fl := fires(&Plan{Seed: seed, FlapRate: p.FlapRate}, LinkFlap)
		co := fires(&Plan{Seed: seed, CorruptRate: p.CorruptRate}, Corrupt)
		want := None
		switch {
		case b:
			want = Battery
		case c:
			want = Crash
		case fl:
			want = LinkFlap
		case co:
			want = Corrupt
		}
		if got.Kind != want {
			t.Fatalf("kind %v, want %v (lanes b=%v c=%v f=%v co=%v)", got.Kind, want, b, c, fl, co)
		}

		// Degradation is independent of the fatal lanes.
		d := &Plan{Seed: seed, DegradeRate: p.DegradeRate}
		if (d.Fault(round, client).Slow > 1) != (got.Slow > 1) {
			t.Fatalf("degrade draw moved with fatal rates")
		}

		// A zero-rate plan never fires; rate-1 lanes always fire.
		if zero := new(Plan).Fault(round, client); zero.Kind != None || zero.Slow != 1 {
			t.Fatalf("zero plan injected %+v", zero)
		}
		one := &Plan{Seed: seed, CorruptRate: 1}
		if k := one.Fault(round, client).Kind; k != Corrupt {
			t.Fatalf("rate-1 corrupt drew %v", k)
		}
	})
}
