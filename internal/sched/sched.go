// Package sched implements the paper's scheduling algorithms — Fed-LBAP
// (Algorithm 1, IID data) and Fed-MinAvg (Algorithm 2, non-IID data) — plus
// the evaluation baselines (Proportional, Random, Equal) and a brute-force
// exact solver used as a test oracle. Workload is expressed in data shards
// (the paper's minimum granularity, e.g. 100 samples/shard); costs come
// from profiled T_j(D) curves plus per-epoch communication time.
package sched

import (
	"fmt"
	"math"
	"math/rand"

	"fedsched/internal/trace"
)

// User is one candidate participant.
type User struct {
	// Name identifies the device (diagnostics only).
	Name string
	// Cost predicts the training time in seconds for n samples (T_j^c).
	Cost func(samples int) float64
	// CommSeconds is the per-epoch communication time T_j^u(M)+T_j^d(M),
	// incurred once if the user participates at all.
	CommSeconds float64
	// CapacityShards is C_j: the maximum shards this user can take
	// (storage/battery bound). Zero or negative means unlimited.
	CapacityShards int
	// Classes is the user's class coverage U_j (non-IID scheduling only).
	Classes []int
	// MeanFreqGHz is the device's mean maximum core frequency, used by the
	// Proportional baseline.
	MeanFreqGHz float64
}

// capacity returns the effective shard capacity.
func (u *User) capacity(totalShards int) int {
	if u.CapacityShards <= 0 || u.CapacityShards > totalShards {
		return totalShards
	}
	return u.CapacityShards
}

// Request describes one scheduling problem: distribute TotalShards shards
// of ShardSize samples each among the users.
type Request struct {
	TotalShards int
	ShardSize   int
	Users       []*User

	// Non-IID knobs (Fed-MinAvg): K is the number of classes in the test
	// set; Alpha weighs the accuracy cost; Beta rewards users holding
	// classes missing from the current coverage (Eq. 6).
	K     int
	Alpha float64
	Beta  float64

	// Trace, when non-nil, receives one KindSchedule event per user of the
	// computed assignment, and — for Fed-LBAP — one KindSolver event per
	// threshold probe of the binary search. Schedulers are sequential, so
	// they emit directly.
	Trace *trace.Recorder
}

// totalCapacity returns the sum of user capacities.
func (r *Request) totalCapacity() int {
	c := 0
	for _, u := range r.Users {
		c += u.capacity(r.TotalShards)
	}
	return c
}

func (r *Request) check() error {
	if r.TotalShards <= 0 {
		return fmt.Errorf("sched: TotalShards = %d, want > 0", r.TotalShards)
	}
	if r.ShardSize <= 0 {
		return fmt.Errorf("sched: ShardSize = %d, want > 0", r.ShardSize)
	}
	if len(r.Users) == 0 {
		return fmt.Errorf("sched: no users")
	}
	for i, u := range r.Users {
		if u.Cost == nil {
			return fmt.Errorf("sched: user %d (%s) has no cost function", i, u.Name)
		}
	}
	if cap := r.totalCapacity(); cap < r.TotalShards {
		return fmt.Errorf("sched: total capacity %d shards < %d required", cap, r.TotalShards)
	}
	return nil
}

// Assignment is a schedule: Shards[j] shards to user j.
type Assignment struct {
	Shards []int
	// PredictedMakespan is max_j (T_j(D_j)+comm_j) under the cost model.
	PredictedMakespan float64
	// PredictedAvgCost is Fed-MinAvg's objective value (0 for others).
	PredictedAvgCost float64
	// Algorithm names the scheduler that produced the assignment.
	Algorithm string
}

// Samples returns the per-user sample counts.
func (a *Assignment) Samples(shardSize int) []int {
	out := make([]int, len(a.Shards))
	for i, s := range a.Shards {
		out[i] = s * shardSize
	}
	return out
}

// Participants returns the number of users with non-zero workload.
func (a *Assignment) Participants() int {
	n := 0
	for _, s := range a.Shards {
		if s > 0 {
			n++
		}
	}
	return n
}

// Scheduler produces assignments for requests. Implementations must be
// deterministic given the same rng state.
type Scheduler interface {
	Name() string
	Schedule(req *Request, rng *rand.Rand) (*Assignment, error)
}

// userCost returns user j's total cost for k shards (0 shards → no cost).
func userCost(r *Request, j, k int) float64 {
	if k <= 0 {
		return 0
	}
	return r.Users[j].Cost(k*r.ShardSize) + r.Users[j].CommSeconds
}

// Makespan evaluates max_j cost under the request's cost model.
func Makespan(r *Request, a *Assignment) float64 {
	worst := 0.0
	for j, k := range a.Shards {
		if c := userCost(r, j, k); c > worst {
			worst = c
		}
	}
	return worst
}

// Validate checks that the assignment covers exactly TotalShards and
// respects every user's capacity.
func Validate(r *Request, a *Assignment) error {
	if len(a.Shards) != len(r.Users) {
		return fmt.Errorf("sched: assignment for %d users, request has %d", len(a.Shards), len(r.Users))
	}
	sum := 0
	for j, k := range a.Shards {
		if k < 0 {
			return fmt.Errorf("sched: user %d assigned %d shards", j, k)
		}
		if cap := r.Users[j].capacity(r.TotalShards); k > cap {
			return fmt.Errorf("sched: user %d over capacity: %d > %d", j, k, cap)
		}
		sum += k
	}
	if sum != r.TotalShards {
		return fmt.Errorf("sched: assigned %d shards, want %d", sum, r.TotalShards)
	}
	return nil
}

// almostLE reports a ≤ b up to floating-point slack.
func almostLE(a, b float64) bool { return a <= b+1e-9*math.Max(1, math.Abs(b)) }

// emitSchedule records a computed assignment into the request's trace:
// one KindSchedule event per user with the assigned samples and
// predicted per-user cost, each carrying the assignment-level predicted
// makespan and (Fed-MinAvg only) objective value. Every Scheduler calls
// it on its way out.
func emitSchedule(req *Request, asg *Assignment) {
	for j, k := range asg.Shards {
		req.Trace.Emit(trace.Event{
			Kind: trace.KindSchedule, Round: -1, Client: j,
			Samples: k * req.ShardSize, ComputeS: userCost(req, j, k),
			MakespanS: asg.PredictedMakespan, Loss: asg.PredictedAvgCost,
		})
	}
}
