package sched

import (
	"math"
	"math/rand"

	"fedsched/internal/trace"
)

// SparseFedLBAP is Algorithm 1 without the dense cost matrix: instead of
// materializing all n×s values and sorting them (O(ns log ns) time,
// O(ns) memory — hopeless at n=10^6), it exploits Property 1 directly.
// Each user's cost curve C[j][·] is nondecreasing, so
//
//	g(c) = Σ_j max{k ≤ cap_j : C[j][k] ≤ c}
//
// is a monotone step function of the threshold c, evaluable in
// O(m log s) by per-user binary search over the *implicit* curve — no
// row storage. The solve is then:
//
//  1. Bound: c_hi = the s-th smallest first-shard cost (n > s, found by
//     deterministic quickselect) or the max full-capacity cost (n ≤ s);
//     g(c_hi) ≥ s by construction.
//  2. Prune: users whose first-shard cost exceeds c_hi can never hold a
//     shard at any feasible threshold ≤ c_hi, so only the ~s survivors
//     participate from here on — this is what makes the solve
//     O(n + s·polylog) instead of O(ns).
//  3. Search: real-valued bisection on (lov, c_hi] maintaining
//     g(lov) < s, then an exact walk to the smallest *matrix value*
//     c* > lov with g(c*) ≥ s. The walk restores exactness that plain
//     bisection cannot give: c* is a value of the implicit matrix, the
//     same one the dense solver's binary search over sorted values
//     finds.
//  4. Assign: hand out per-user feasible maxima under c*, then trim the
//     overshoot from the largest marginal costs via a replace-top
//     max-heap (ties broken toward the smallest user index, matching
//     the dense solver's first-max scan).
//
// The result is bit-identical to FedLBAP — same Shards, same
// PredictedMakespan — whenever the raw cost curves are nondecreasing in
// k (Property 1 holding naturally, which profiled T_j(D) curves plus a
// constant comm term satisfy). The dense solver *enforces* the property
// with a running maximum over the materialized row; the sparse solver
// samples costs on demand and cannot, so a decreasing cost curve is the
// one input class where the two may differ.
type SparseFedLBAP struct{}

// Name implements Scheduler.
func (SparseFedLBAP) Name() string { return "Fed-LBAP-sparse" }

// Schedule implements Scheduler. Runtime is O(n) to bound and prune plus
// O(m log s) per threshold probe with m ≈ s survivors and ~60 probes;
// sub-second at n=10^6, s=10^4 (see BenchmarkFedLBAP). Deterministic
// (rng is unused). The O(n) float workspaces below are per-solve
// scratch, freed on return — the population round loop passes
// cohort-sized requests, so in steady state this stays O(selected).
//
// fedlint:hotpath
// fedlint:deterministic
// fedlint:trace KindSchedule,KindSolver
func (SparseFedLBAP) Schedule(req *Request, _ *rand.Rand) (*Assignment, error) {
	if err := req.check(); err != nil {
		return nil, err
	}
	n, s := len(req.Users), req.TotalShards

	// ec is the effective cost the dense solver's running-max row holds
	// at [j][k-1] when the raw curve is nondecreasing: floored at 0, since
	// the dense row's running max starts from prev = 0.
	ec := func(j, k int) float64 {
		c := userCost(req, j, k)
		if c < 0 {
			c = 0
		}
		return c
	}

	caps := make([]int, n)
	first := make([]float64, n) //fedlint:allow hotalloc — per-solve O(n) scratch, not round-loop state
	for j := range req.Users {
		caps[j] = req.Users[j].capacity(s)
		first[j] = ec(j, 1)
	}

	// Feasible upper bound c_hi on the optimal threshold.
	var chi float64
	if n > s {
		// s users can each take one shard at the s-th smallest first-shard
		// cost, so g(c_hi) ≥ s. Quickselect permutes, so work on a copy.
		scratch := make([]float64, n) //fedlint:allow hotalloc — per-solve O(n) scratch, not round-loop state
		copy(scratch, first)
		chi = selectKth(scratch, s-1)
	} else {
		// Full capacities are feasible by req.check(): Σ cap_j ≥ s.
		for j := range caps {
			if c := ec(j, caps[j]); c > chi {
				chi = c
			}
		}
	}

	// Prune: a user with first-shard cost above c_hi (beyond float slack)
	// holds zero shards at every threshold ≤ c_hi, in particular at c*,
	// and none of its matrix values can be c* (they all exceed c_hi ≥ c*).
	surv := make([]int, n)
	m := 0
	for j := range first {
		if almostLE(first[j], chi) {
			surv[m] = j
			m++
		}
	}
	surv = surv[:m]

	// kmaxAt = max{k ≤ cap_j : C[j][k] ≤ c}, by binary search on the
	// implicit nondecreasing curve. Never evaluates k = 0.
	kmaxAt := func(j int, c float64) int {
		lo, hi := 0, caps[j]
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if almostLE(ec(j, mid), c) {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo
	}
	// feasibleAt = g(c) over the survivors, early-capped at s like the
	// dense solver's feasibleShards.
	feasibleAt := func(c float64) int {
		total := 0
		for _, j := range surv {
			total += kmaxAt(j, c)
			if total >= s {
				return total
			}
		}
		return total
	}

	// Real-valued bisection: shrink (lov, hiv] keeping g(lov) < s and
	// g(hiv) ≥ s. Each probe emits the same KindSolver event the dense
	// binary search does. ~60 iterations reach float resolution; the
	// break fires when the midpoint stops making progress.
	lov, hiv := -1.0, chi
	iter := 0
	for i := 0; i < 64; i++ {
		mid := lov + (hiv-lov)/2
		if mid <= lov || mid >= hiv {
			break
		}
		feasible := feasibleAt(mid)
		flag := 0
		if feasible >= s {
			flag = 1
			hiv = mid
		} else {
			lov = mid
		}
		req.Trace.Emit(trace.Event{
			Kind: trace.KindSolver, Round: iter, Client: -1,
			Samples: feasible, Flag: flag, MakespanS: mid,
		})
		iter++
	}

	// Exact walk: advance lov through actual matrix values until g first
	// reaches s. Every matrix value ≤ lov has g < s (g is monotone), so
	// the first candidate with g ≥ s is exactly the dense solver's c* =
	// min{v in the matrix : g(v) ≥ s}. After the bisection above, this
	// loop almost always terminates on its first candidate.
	nextValue := func(j int, v float64) (float64, bool) {
		if !(ec(j, caps[j]) > v) {
			return 0, false
		}
		lo, hi := 1, caps[j]
		for lo < hi {
			mid := (lo + hi) / 2
			if ec(j, mid) > v {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return ec(j, lo), true
	}
	var cstar float64
	for {
		cand := math.Inf(1)
		for _, j := range surv {
			if v, ok := nextValue(j, lov); ok && v < cand {
				cand = v
			}
		}
		feasible := feasibleAt(cand)
		flag := 0
		if feasible >= s {
			flag = 1
		}
		req.Trace.Emit(trace.Event{
			Kind: trace.KindSolver, Round: iter, Client: -1,
			Samples: feasible, Flag: flag, MakespanS: cand,
		})
		iter++
		if feasible >= s {
			cstar = cand
			break
		}
		lov = cand
	}

	// Hand out feasible maxima under c*; non-survivors stay at zero, as
	// they do under the dense solver.
	shards := make([]int, n)
	total := 0
	for _, j := range surv {
		k := kmaxAt(j, cstar)
		shards[j] = k
		total += k
	}

	// Trim the overshoot: repeatedly decrement the user whose current
	// marginal cost C[j][k_j] is largest, smallest j on ties — exactly
	// the dense solver's first-max scan, as a replace-top max-heap so
	// each step is O(log m) instead of O(n). One entry per user with
	// k_j > 0; replace-top (never pop-then-push) keeps entries fresh.
	if total > s {
		heapBuf := make([]trimEntry, m)
		hn := 0
		for _, j := range surv {
			if shards[j] > 0 {
				heapBuf[hn] = trimEntry{c: ec(j, shards[j]), j: int32(j)}
				hn++
			}
		}
		for i := hn/2 - 1; i >= 0; i-- {
			siftDown(heapBuf, i, hn)
		}
		for total > s {
			j := int(heapBuf[0].j)
			shards[j]--
			total--
			if shards[j] > 0 {
				heapBuf[0] = trimEntry{c: ec(j, shards[j]), j: int32(j)}
			} else {
				hn--
				heapBuf[0] = heapBuf[hn]
			}
			siftDown(heapBuf, 0, hn)
		}
	}

	asg := &Assignment{Shards: shards, Algorithm: "Fed-LBAP-sparse"}
	asg.PredictedMakespan = Makespan(req, asg)
	emitSchedule(req, asg)
	return asg, nil
}

// trimEntry is one heap node of the overshoot trim: user j's current
// marginal cost.
type trimEntry struct {
	c float64
	j int32
}

// trimBefore orders the trim heap: largest marginal cost first, smallest
// user index on ties (the dense solver's strict-> scan keeps the first
// maximum it meets).
func trimBefore(a, b trimEntry) bool {
	if a.c != b.c { //fedlint:allow floateq — exact-equality tie-break; equal costs fall through to the index ordering
		return a.c > b.c
	}
	return a.j < b.j
}

// siftDown restores the heap property for heapBuf[:hn] from index i.
//
// fedlint:hotpath
func siftDown(heapBuf []trimEntry, i, hn int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < hn && trimBefore(heapBuf[l], heapBuf[best]) {
			best = l
		}
		if r < hn && trimBefore(heapBuf[r], heapBuf[best]) {
			best = r
		}
		if best == i {
			return
		}
		heapBuf[i], heapBuf[best] = heapBuf[best], heapBuf[i]
		i = best
	}
}

// selectKth returns the k-th smallest element (0-indexed) of a,
// permuting a in place. Hoare-partition quickselect with a
// median-of-three pivot — deterministic (no random pivots), O(n)
// expected on the hashed-jitter cost distributions it sees here.
//
// fedlint:hotpath
func selectKth(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return a[k]
		}
	}
	return a[k]
}
