package sched

import (
	"fmt"
	"math/rand"
	"sort"
)

// Proportional assigns shards proportional to each device's mean maximum
// CPU frequency per core — the paper's heuristic benchmark for "processing
// power".
type Proportional struct{}

// Name implements Scheduler.
func (Proportional) Name() string { return "Prop." }

// Schedule implements Scheduler (rng unused; deterministic).
func (Proportional) Schedule(req *Request, _ *rand.Rand) (*Assignment, error) {
	if err := req.check(); err != nil {
		return nil, err
	}
	weights := make([]float64, len(req.Users))
	sum := 0.0
	for j, u := range req.Users {
		w := u.MeanFreqGHz
		if w <= 0 {
			w = 1 // unknown frequency: treat as unit weight
		}
		weights[j] = w
		sum += w
	}
	return weightedSplit(req, weights, sum, "Prop.")
}

// Random draws uniformly random partition weights each round — the paper's
// randomized benchmark.
type Random struct{}

// Name implements Scheduler.
func (Random) Name() string { return "Random" }

// Schedule implements Scheduler.
func (Random) Schedule(req *Request, rng *rand.Rand) (*Assignment, error) {
	if err := req.check(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("sched: Random requires an rng")
	}
	weights := make([]float64, len(req.Users))
	sum := 0.0
	for j := range weights {
		weights[j] = rng.Float64()
		sum += weights[j]
	}
	return weightedSplit(req, weights, sum, "Random")
}

// Equal assigns equal shares to every user — the FedAvg default.
type Equal struct{}

// Name implements Scheduler.
func (Equal) Name() string { return "Equal" }

// Schedule implements Scheduler (rng unused; deterministic).
func (Equal) Schedule(req *Request, _ *rand.Rand) (*Assignment, error) {
	if err := req.check(); err != nil {
		return nil, err
	}
	weights := make([]float64, len(req.Users))
	for j := range weights {
		weights[j] = 1
	}
	return weightedSplit(req, weights, float64(len(weights)), "Equal")
}

// weightedSplit rounds a fractional weighted partition to integer shards
// summing to TotalShards, then pushes any capacity overflow to the users
// with spare room (largest fractional remainder first).
func weightedSplit(req *Request, weights []float64, sum float64, algo string) (*Assignment, error) {
	n, s := len(req.Users), req.TotalShards
	shards := make([]int, n)
	frac := make([]float64, n)
	assigned := 0
	for j := range shards {
		exact := weights[j] / sum * float64(s)
		shards[j] = int(exact)
		frac[j] = exact - float64(shards[j])
		if cap := req.Users[j].capacity(s); shards[j] > cap {
			shards[j] = cap
			frac[j] = -1 // full: lowest priority for extras
		}
		assigned += shards[j]
	}
	// Distribute the remainder by largest fractional part among users with
	// spare capacity.
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return frac[order[a]] > frac[order[b]] })
	for i := 0; assigned < s; i = (i + 1) % n {
		j := order[i]
		if shards[j] < req.Users[j].capacity(s) {
			shards[j]++
			assigned++
		}
	}
	asg := &Assignment{Shards: shards, Algorithm: algo}
	asg.PredictedMakespan = Makespan(req, asg)
	emitSchedule(req, asg)
	return asg, nil
}
