package sched

import (
	"math"
	"math/rand"
	"testing"

	"fedsched/internal/binpack"
)

func TestTuneAlphaPicksTimeOptimal(t *testing.T) {
	req := nonIIDRequest(40, 0 /* overwritten */, 0)
	best, sweep, err := TuneAlpha(req, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != len(DefaultAlphaGrid()) {
		t.Fatalf("sweep has %d entries", len(sweep))
	}
	for _, r := range sweep {
		if r.Assignment.PredictedMakespan < best.Assignment.PredictedMakespan-1e-9 {
			t.Fatalf("α=%g beats the reported best", r.Alpha)
		}
	}
	// With β=0 time rises with α, so the best should sit at the low end.
	if best.Alpha != 100 {
		t.Fatalf("best α = %g, expected 100 for a time objective with β=0", best.Alpha)
	}
	// The caller's request must be untouched.
	if req.Alpha != 0 {
		t.Fatalf("TuneAlpha mutated the request: α=%v", req.Alpha)
	}
}

func TestTuneAlphaCustomObjective(t *testing.T) {
	req := nonIIDRequest(40, 0, 0)
	// Objective: maximize participants (minimize the negation).
	best, _, err := TuneAlpha(req, []float64{100, 5000}, func(a *Assignment) float64 {
		return -float64(a.Participants())
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Alpha != 100 {
		t.Fatalf("participation objective should favour small α, got %g", best.Alpha)
	}
}

func TestTuneAlphaErrorPropagates(t *testing.T) {
	req := nonIIDRequest(10, 0, 0)
	req.K = 0 // Fed-MinAvg requires K
	if _, _, err := TuneAlpha(req, nil, nil); err == nil {
		t.Fatal("expected error from invalid request")
	}
}

func TestRandomClassSets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sets := RandomClassSets(20, 10, 6, rng)
	if len(sets) != 20 {
		t.Fatalf("%d sets", len(sets))
	}
	for _, s := range sets {
		if len(s) < 1 || len(s) > 6 {
			t.Fatalf("set size %d out of [1,6]", len(s))
		}
		seen := map[int]bool{}
		for _, c := range s {
			if c < 0 || c >= 10 || seen[c] {
				t.Fatalf("bad class set %v", s)
			}
			seen[c] = true
		}
	}
	// maxClasses out of range falls back to k.
	sets = RandomClassSets(5, 4, 99, rng)
	for _, s := range sets {
		if len(s) > 4 {
			t.Fatalf("set larger than k: %v", s)
		}
	}
}

// Cross-validation with the bin-packing substrate: a Fed-MinAvg assignment
// under capacities is exactly a fragmentable packing of the dataset into
// user bins, so binpack.Validate must accept it.
func TestFedMinAvgFormsValidPacking(t *testing.T) {
	req := nonIIDRequest(30, 200, 2)
	req.Users[0].CapacityShards = 12
	req.Users[1].CapacityShards = 15
	req.Users[2].CapacityShards = 20
	asg, err := FedMinAvg{}.Schedule(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]int, len(req.Users))
	for j, u := range req.Users {
		caps[j] = u.CapacityShards
	}
	p := &binpack.Packing{}
	for j, k := range asg.Shards {
		if k > 0 {
			p.Fragments = append(p.Fragments, binpack.Fragment{Item: 0, Bin: j, Size: k})
		}
	}
	if err := binpack.Validate(p, []int{req.TotalShards}, caps); err != nil {
		t.Fatalf("Fed-MinAvg assignment is not a valid fragment packing: %v", err)
	}
	// And its fragment count is bounded below by the packing lower bound.
	splits := 0
	for _, k := range asg.Shards {
		if k > 0 {
			splits++
		}
	}
	splits-- // fragments beyond the first
	if lb := binpack.MinSplitsLowerBound([]int{req.TotalShards}, caps); splits < lb {
		t.Fatalf("assignment uses %d splits, below the packing lower bound %d", splits, lb)
	}
}

func TestTuneAlphaSweepMonotoneTimeWithBetaZero(t *testing.T) {
	// Fig 6 top panels: with β=0, predicted makespan is non-decreasing in
	// α (more accuracy weight → less parallelism).
	req := nonIIDRequest(60, 0, 0)
	_, sweep, err := TuneAlpha(req, []float64{100, 500, 2000, 5000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := -math.MaxFloat64
	for _, r := range sweep {
		if r.Assignment.PredictedMakespan < prev-1e-9 {
			t.Fatalf("makespan decreased at α=%g", r.Alpha)
		}
		prev = r.Assignment.PredictedMakespan
	}
}
