package sched

import (
	"math/rand"
	"sort"

	"fedsched/internal/trace"
)

// FedLBAP is Algorithm 1: joint data partitioning and assignment for IID
// data. It builds the n×s cost matrix C[j][k] = T_j(k·d) + comm_j, sorts
// the distinct cost values and binary-searches the smallest threshold c*
// for which Σ_j max{k : C[j][k] ≤ c*} ≥ s (Property 2 replaces the perfect
// matching test of the classic LBAP). The assignment hands each user its
// feasible maximum under c*, then trims the overshoot from the most
// expensive marginal shards, so the makespan is exactly minimized over all
// partitions into shards.
type FedLBAP struct{}

// Name implements Scheduler.
func (FedLBAP) Name() string { return "Fed-LBAP" }

// Schedule implements Scheduler. It runs in O(ns + n log s log(ns)) time
// and is deterministic (rng is unused).
//
// fedlint:deterministic
// fedlint:trace KindSchedule,KindSolver
func (FedLBAP) Schedule(req *Request, _ *rand.Rand) (*Assignment, error) {
	if err := req.check(); err != nil {
		return nil, err
	}
	n, s := len(req.Users), req.TotalShards

	// Cost matrix rows; row j holds C[j][k] for k = 1..cap_j. Property 1
	// (monotone costs) is enforced by taking a running maximum, so a noisy
	// profile cannot break the binary searches below.
	rows := make([][]float64, n)
	values := make([]float64, 0, n*16)
	for j, u := range req.Users {
		capj := u.capacity(s)
		row := make([]float64, capj)
		prev := 0.0
		for k := 1; k <= capj; k++ {
			c := userCost(req, j, k)
			if c < prev {
				c = prev
			}
			row[k-1] = c
			prev = c
		}
		rows[j] = row
		values = append(values, row...)
	}
	sort.Float64s(values)
	// Dedupe in place: repeated thresholds (equal costs across users, or
	// the running max flattening a noisy row) would only repeat identical
	// probes — and identical KindSolver trace events — for nothing.
	uniq := values[:1]
	for _, v := range values[1:] {
		if v != uniq[len(uniq)-1] { //fedlint:allow floateq — dedupe of exactly-equal sorted thresholds
			uniq = append(uniq, v)
		}
	}
	values = uniq

	// feasibleShards returns Σ_j max{k : C[j][k] ≤ c}, capped at s to
	// avoid overflow on huge capacities.
	feasibleShards := func(c float64) int {
		total := 0
		for _, row := range rows {
			// Binary search the last index with cost ≤ c.
			lo, hi := 0, len(row) // kmax in [0, len(row)]
			for lo < hi {
				mid := (lo + hi) / 2
				if almostLE(row[mid], c) {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			total += lo
			if total >= s {
				return total
			}
		}
		return total
	}

	// Binary search the smallest feasible threshold over the sorted values.
	lo, hi := 0, len(values)-1
	for iter := 0; lo < hi; iter++ {
		mid := (lo + hi) / 2
		feasible := feasibleShards(values[mid])
		flag := 0
		if feasible >= s {
			flag = 1
			hi = mid
		} else {
			lo = mid + 1
		}
		req.Trace.Emit(trace.Event{
			Kind: trace.KindSolver, Round: iter, Client: -1,
			Samples: feasible, Flag: flag, MakespanS: values[mid],
		})
	}
	cstar := values[lo]

	// Hand out feasible maxima under c*.
	shards := make([]int, n)
	total := 0
	for j, row := range rows {
		k := sort.Search(len(row), func(i int) bool { return !almostLE(row[i], cstar) })
		shards[j] = k
		total += k
	}
	// Trim the overshoot: repeatedly remove the shard whose marginal cost
	// C[j][k_j] is largest. This keeps the makespan at or below c* while
	// freeing exactly total−s shards.
	type marg struct {
		j int
		c float64
	}
	for total > s {
		best := marg{-1, -1}
		for j, k := range shards {
			if k == 0 {
				continue
			}
			if c := rows[j][k-1]; c > best.c {
				best = marg{j, c}
			}
		}
		shards[best.j]--
		total--
	}

	asg := &Assignment{Shards: shards, Algorithm: "Fed-LBAP"}
	asg.PredictedMakespan = Makespan(req, asg)
	emitSchedule(req, asg)
	return asg, nil
}
