package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// linUser builds a user with cost a + b·samples (a charged only via Cost
// shape; comm passed separately).
func linUser(name string, a, b, comm float64) *User {
	return &User{
		Name:        name,
		Cost:        func(n int) float64 { return a + b*float64(n) },
		CommSeconds: comm,
	}
}

func testRequest(shards int) *Request {
	return &Request{
		TotalShards: shards,
		ShardSize:   100,
		Users: []*User{
			linUser("fast", 1, 0.010, 2),
			linUser("mid", 2, 0.020, 2),
			linUser("slow", 3, 0.060, 2),
		},
	}
}

func TestFedLBAPBasic(t *testing.T) {
	req := testRequest(30)
	asg, err := FedLBAP{}.Schedule(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(req, asg); err != nil {
		t.Fatal(err)
	}
	// The fast user must get the most data, the slow user the least.
	if !(asg.Shards[0] > asg.Shards[1] && asg.Shards[1] > asg.Shards[2]) {
		t.Fatalf("assignment not speed-ordered: %v", asg.Shards)
	}
	if asg.PredictedMakespan != Makespan(req, asg) {
		t.Fatal("stale PredictedMakespan")
	}
}

func TestFedLBAPMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		users := make([]*User, n)
		for j := range users {
			a := rng.Float64() * 5
			b := 0.005 + rng.Float64()*0.1
			comm := rng.Float64() * 3
			users[j] = linUser("u", a, b, comm)
			if rng.Float64() < 0.3 {
				users[j].CapacityShards = 3 + rng.Intn(20)
			}
		}
		shards := 5 + rng.Intn(25)
		req := &Request{TotalShards: shards, ShardSize: 50, Users: users}
		if req.totalCapacity() < shards {
			return true // infeasible instance; skip
		}
		got, err := FedLBAP{}.Schedule(req, nil)
		if err != nil {
			return false
		}
		if Validate(req, got) != nil {
			return false
		}
		want, err := BruteForce{}.Schedule(req, nil)
		if err != nil {
			return false
		}
		return math.Abs(Makespan(req, got)-Makespan(req, want)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFedLBAPNeverWorseThanBaselines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		users := make([]*User, n)
		for j := range users {
			users[j] = linUser("u", rng.Float64()*4, 0.002+rng.Float64()*0.05, rng.Float64()*2)
			users[j].MeanFreqGHz = 1 + rng.Float64()*2
		}
		req := &Request{TotalShards: 20 + rng.Intn(80), ShardSize: 100, Users: users}
		opt, err := FedLBAP{}.Schedule(req, nil)
		if err != nil {
			return false
		}
		for _, s := range []Scheduler{Proportional{}, Random{}, Equal{}} {
			b, err := s.Schedule(req, rng)
			if err != nil {
				return false
			}
			if Makespan(req, opt) > Makespan(req, b)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFedLBAPNonMonotoneCostGuard(t *testing.T) {
	// A noisy (locally decreasing) cost curve must not break the solver.
	noisy := &User{
		Name: "noisy",
		Cost: func(n int) float64 {
			base := 0.01 * float64(n)
			if (n/100)%2 == 0 {
				base -= 0.3
			}
			return base
		},
	}
	req := &Request{TotalShards: 10, ShardSize: 100, Users: []*User{noisy, linUser("b", 1, 0.02, 0)}}
	asg, err := FedLBAP{}.Schedule(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(req, asg); err != nil {
		t.Fatal(err)
	}
}

func TestFedLBAPSingleUser(t *testing.T) {
	req := &Request{TotalShards: 7, ShardSize: 10, Users: []*User{linUser("only", 0, 0.1, 1)}}
	asg, err := FedLBAP{}.Schedule(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Shards[0] != 7 {
		t.Fatalf("single user must take everything: %v", asg.Shards)
	}
}

func TestFedLBAPRespectsCapacity(t *testing.T) {
	req := testRequest(30)
	req.Users[0].CapacityShards = 5 // cap the fastest user
	asg, err := FedLBAP{}.Schedule(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(req, asg); err != nil {
		t.Fatal(err)
	}
	if asg.Shards[0] > 5 {
		t.Fatalf("capacity violated: %v", asg.Shards)
	}
}

func TestRequestValidation(t *testing.T) {
	if _, err := (FedLBAP{}).Schedule(&Request{TotalShards: 0, ShardSize: 1, Users: []*User{linUser("u", 0, 1, 0)}}, nil); err == nil {
		t.Fatal("zero shards must fail")
	}
	if _, err := (FedLBAP{}).Schedule(&Request{TotalShards: 1, ShardSize: 0, Users: []*User{linUser("u", 0, 1, 0)}}, nil); err == nil {
		t.Fatal("zero shard size must fail")
	}
	if _, err := (FedLBAP{}).Schedule(&Request{TotalShards: 1, ShardSize: 1}, nil); err == nil {
		t.Fatal("no users must fail")
	}
	bad := &Request{TotalShards: 10, ShardSize: 1, Users: []*User{{Name: "nocost"}}}
	if _, err := (FedLBAP{}).Schedule(bad, nil); err == nil {
		t.Fatal("missing cost function must fail")
	}
	tight := testRequest(30)
	for _, u := range tight.Users {
		u.CapacityShards = 5
	}
	if _, err := (FedLBAP{}).Schedule(tight, nil); err == nil {
		t.Fatal("insufficient capacity must fail")
	}
}

func TestEqualSplit(t *testing.T) {
	req := testRequest(30)
	asg, err := Equal{}.Schedule(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range asg.Shards {
		if k != 10 {
			t.Fatalf("equal split broken: %v", asg.Shards)
		}
	}
	// Remainder handling.
	req.TotalShards = 31
	asg, _ = Equal{}.Schedule(req, nil)
	if err := Validate(req, asg); err != nil {
		t.Fatal(err)
	}
}

func TestProportionalFollowsFrequency(t *testing.T) {
	req := testRequest(40)
	req.Users[0].MeanFreqGHz = 3.0
	req.Users[1].MeanFreqGHz = 1.0
	req.Users[2].MeanFreqGHz = 1.0
	asg, err := Proportional{}.Schedule(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Shards[0] != 24 || asg.Shards[1] != 8 || asg.Shards[2] != 8 {
		t.Fatalf("proportional split %v, want [24 8 8]", asg.Shards)
	}
}

func TestRandomValidAndVaries(t *testing.T) {
	req := testRequest(50)
	rng := rand.New(rand.NewSource(1))
	a, err := Random{}.Schedule(req, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(req, a); err != nil {
		t.Fatal(err)
	}
	b, _ := Random{}.Schedule(req, rng)
	same := true
	for j := range a.Shards {
		if a.Shards[j] != b.Shards[j] {
			same = false
		}
	}
	if same {
		t.Fatal("two random draws identical — suspicious")
	}
	if _, err := (Random{}).Schedule(req, nil); err == nil {
		t.Fatal("Random without rng must fail")
	}
}

func TestBaselinesRespectCapacity(t *testing.T) {
	req := testRequest(30)
	req.Users[0].CapacityShards = 2
	rng := rand.New(rand.NewSource(2))
	for _, s := range []Scheduler{Proportional{}, Random{}, Equal{}} {
		asg, err := s.Schedule(req, rng)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := Validate(req, asg); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func nonIIDRequest(shards int, alpha, beta float64) *Request {
	req := testRequest(shards)
	req.K = 10
	req.Alpha = alpha
	req.Beta = beta
	req.Users[0].Classes = []int{0, 1, 2, 3, 4, 5, 6, 7} // fast, many classes
	req.Users[1].Classes = []int{0, 1}                   // mid, few classes
	req.Users[2].Classes = []int{8, 9}                   // slow, unique classes
	return req
}

func TestFedMinAvgRequiresK(t *testing.T) {
	req := testRequest(10)
	if _, err := (FedMinAvg{}).Schedule(req, nil); err == nil {
		t.Fatal("Fed-MinAvg without K must fail")
	}
}

func TestFedMinAvgValidAssignment(t *testing.T) {
	req := nonIIDRequest(30, 100, 0)
	asg, err := FedMinAvg{}.Schedule(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(req, asg); err != nil {
		t.Fatal(err)
	}
	if asg.PredictedAvgCost <= 0 {
		t.Fatal("avg cost not reported")
	}
}

func TestFedMinAvgAlphaShiftsLoadToClassRichUsers(t *testing.T) {
	// With small α the fast users dominate; with huge α the class-rich
	// user 0 must absorb nearly everything (paper Fig 6 / Table IV trend).
	small, err := FedMinAvg{}.Schedule(nonIIDRequest(40, 1, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	big, err := FedMinAvg{}.Schedule(nonIIDRequest(40, 100000, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if big.Shards[0] <= small.Shards[0] {
		t.Fatalf("α did not shift load to class-rich user: small=%v big=%v", small.Shards, big.Shards)
	}
	if big.Shards[2] != 0 {
		t.Fatalf("huge α should exclude the class-poor slow user: %v", big.Shards)
	}
}

func TestFedMinAvgBetaPullsInUnseenClasses(t *testing.T) {
	// User 2 holds classes {8,9} that nobody else has. With β=0 and a slow
	// device it may be excluded; a large β must pull it in.
	reqNoBeta := nonIIDRequest(40, 5000, 0)
	noBeta, err := FedMinAvg{}.Schedule(reqNoBeta, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqBeta := nonIIDRequest(40, 5000, 500)
	withBeta, err := FedMinAvg{}.Schedule(reqBeta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if noBeta.Shards[2] != 0 {
		t.Fatalf("precondition: slow unique-class user should be excluded at α=5000, β=0: %v", noBeta.Shards)
	}
	if withBeta.Shards[2] == 0 {
		t.Fatalf("β discount failed to include unseen-class user: %v", withBeta.Shards)
	}
}

func TestFedMinAvgClosesFullBins(t *testing.T) {
	req := nonIIDRequest(30, 10, 0)
	req.Users[0].CapacityShards = 3
	asg, err := FedMinAvg{}.Schedule(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Shards[0] > 3 {
		t.Fatalf("capacity violated: %v", asg.Shards)
	}
	if err := Validate(req, asg); err != nil {
		t.Fatal(err)
	}
}

func TestFedMinAvgAllUsersClassless(t *testing.T) {
	req := testRequest(10)
	req.K = 10
	req.Alpha = 1
	for _, u := range req.Users {
		u.Classes = nil
	}
	if _, err := (FedMinAvg{}).Schedule(req, nil); err == nil {
		t.Fatal("classless population must fail")
	}
}

func TestFedMinAvgZeroAlphaMinimizesTime(t *testing.T) {
	// With α=0 the accuracy term vanishes; the greedy should then look
	// like a pure time-greedy and load the fast user most.
	req := nonIIDRequest(30, 0, 0)
	asg, err := FedMinAvg{}.Schedule(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(asg.Shards[0] >= asg.Shards[1] && asg.Shards[1] >= asg.Shards[2]) {
		t.Fatalf("time-greedy ordering broken: %v", asg.Shards)
	}
}

func TestAssignmentHelpers(t *testing.T) {
	a := &Assignment{Shards: []int{3, 0, 2}}
	s := a.Samples(100)
	if s[0] != 300 || s[1] != 0 || s[2] != 200 {
		t.Fatalf("samples %v", s)
	}
	if a.Participants() != 2 {
		t.Fatalf("participants %d", a.Participants())
	}
}

func TestMakespanAndValidate(t *testing.T) {
	req := testRequest(6)
	asg := &Assignment{Shards: []int{6, 0, 0}}
	// user0: 1 + 0.01*600 + 2 comm = 9
	if m := Makespan(req, asg); math.Abs(m-9) > 1e-9 {
		t.Fatalf("makespan %v, want 9", m)
	}
	if err := Validate(req, asg); err != nil {
		t.Fatal(err)
	}
	if err := Validate(req, &Assignment{Shards: []int{5, 0, 0}}); err == nil {
		t.Fatal("short assignment must fail validation")
	}
	if err := Validate(req, &Assignment{Shards: []int{7, -1, 0}}); err == nil {
		t.Fatal("negative assignment must fail validation")
	}
	if err := Validate(req, &Assignment{Shards: []int{6, 0}}); err == nil {
		t.Fatal("wrong arity must fail validation")
	}
}

func BenchmarkFedLBAP(b *testing.B) {
	users := make([]*User, 10)
	for j := range users {
		a := float64(j) * 0.3
		slope := 0.005 + 0.01*float64(j%4)
		users[j] = linUser("u", a, slope, 1)
	}
	req := &Request{TotalShards: 600, ShardSize: 100, Users: users}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (FedLBAP{}).Schedule(req, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFedMinAvg(b *testing.B) {
	users := make([]*User, 10)
	for j := range users {
		users[j] = linUser("u", float64(j)*0.3, 0.005+0.01*float64(j%4), 1)
		users[j].Classes = []int{j % 10, (j + 1) % 10, (j + 2) % 10}
	}
	req := &Request{TotalShards: 600, ShardSize: 100, Users: users, K: 10, Alpha: 100, Beta: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (FedMinAvg{}).Schedule(req, nil); err != nil {
			b.Fatal(err)
		}
	}
}
