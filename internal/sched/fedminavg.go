package sched

import (
	"fmt"
	"math"
	"math/rand"
)

// FedMinAvg is Algorithm 2: the Min Average Cost algorithm for non-IID
// data. Shards are assigned one at a time to the user with the smallest
// marginal cost T_j((l_j+1)·d) + αF_j, where the accuracy cost F_j (Eq. 6)
// is K/|U_j|, discounted by (β/α)·D_u when the user's classes are disjoint
// from the coverage accumulated so far — which actively pulls unseen
// classes into training. Users at capacity are closed (F_j ← ∞). The
// communication cost of a user is charged on its first shard (opening the
// bin); the paper omits it "for clarity", we keep it for fidelity with P2.
type FedMinAvg struct{}

// Name implements Scheduler.
func (FedMinAvg) Name() string { return "Fed-MinAvg" }

// Schedule implements Scheduler. It runs in O(m·n) for m shards and is
// deterministic (rng is unused).
func (FedMinAvg) Schedule(req *Request, _ *rand.Rand) (*Assignment, error) {
	if err := req.check(); err != nil {
		return nil, err
	}
	if req.K <= 0 {
		return nil, fmt.Errorf("sched: Fed-MinAvg requires K > 0 (test-set classes), got %d", req.K)
	}
	n, s, d := len(req.Users), req.TotalShards, req.ShardSize

	// coverage is U, the classes already in the training set. It is a
	// membership set only — looked up in accCost, written on user opening,
	// and never iterated, so map ordering cannot leak into the assignment
	// and shards/totalCost are byte-stable across runs. Any future `range
	// coverage` with an order-sensitive body will be rejected by the
	// fedlint nondet pass; collect and sort the keys first if one is ever
	// needed.
	coverage := make(map[int]bool)
	opened := make([]bool, n) // O: users already assigned data
	shards := make([]int, n)  // l_j
	assigned := 0             // D_u
	var totalCost float64

	// accCost returns αF_j for user j given the current coverage and D_u.
	//
	// Eq. 6 states the discount for users whose classes are disjoint from
	// the coverage, but the paper's intent (§III-C: inclusion "should be
	// further conditioning on whether those outliers contain samples that
	// are not yet included in the training set"; §VI-A: "if the class is
	// not yet included in the training set, inviting the user into
	// training would be beneficial") and its own Table IV schedules
	// require the discount to persist while the user holds ANY class still
	// missing from the coverage. We implement that unseen-class reading:
	// the literal disjointness test would switch the discount off as soon
	// as one overlapping class appears, making β inert in every Table IV
	// scenario.
	accCost := func(j int) float64 {
		u := req.Users[j]
		if len(u.Classes) == 0 {
			return math.Inf(1) // nothing to train on
		}
		f := float64(req.K) / float64(len(u.Classes))
		holdsUnseen := false
		for _, c := range u.Classes {
			if !coverage[c] {
				holdsUnseen = true
				break
			}
		}
		cost := req.Alpha * f
		if holdsUnseen {
			// D_u is measured in samples: with the paper's (α, β) ranges
			// (α·K/|U_j| up to 50 000 for a single-class user at α=5000)
			// a shard-count discount capped at β·s ≈ 1000 could never flip
			// an exclusion, yet Table IV's p3/p4 columns show β=2 moving
			// tens of thousands of samples. A per-sample D_u reproduces
			// those crossovers.
			cost -= req.Beta * float64(assigned*req.ShardSize)
		}
		return cost
	}

	for assigned < s {
		bestJ, bestC := -1, math.Inf(1)
		for j, u := range req.Users {
			if shards[j] >= u.capacity(s) {
				continue // bin closed
			}
			c := u.Cost((shards[j]+1)*d) + accCost(j)
			if !opened[j] {
				c += u.CommSeconds // opening a user adds its comm round
			}
			if c < bestC {
				bestJ, bestC = j, c
			}
		}
		if bestJ < 0 {
			// check() guarantees capacity, so only all-∞ accuracy costs
			// (every user classless) can land here.
			return nil, fmt.Errorf("sched: Fed-MinAvg found no assignable user (all users lack classes)")
		}
		shards[bestJ]++
		assigned++
		totalCost += bestC
		if !opened[bestJ] {
			opened[bestJ] = true
			for _, c := range req.Users[bestJ].Classes {
				coverage[c] = true
			}
		}
	}

	asg := &Assignment{Shards: shards, Algorithm: "Fed-MinAvg"}
	asg.PredictedMakespan = Makespan(req, asg)
	asg.PredictedAvgCost = totalCost / float64(s)
	emitSchedule(req, asg)
	return asg, nil
}
