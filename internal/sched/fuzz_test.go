package sched

import (
	"math"
	"math/rand"
	"testing"
)

// fuzzMix is a splitmix64-style hash used to derive deterministic
// per-user cost parameters from the fuzz seed, so every fuzz input maps
// to exactly one scheduling problem.
func fuzzMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fuzzRequest builds a well-formed scheduling problem from fuzzed
// parameters. Cost curves are a·n + b·√n with a, b ≥ 0, so they are
// nondecreasing in the sample count — Property 1 holds on the raw
// curves, the regime where SparseFedLBAP is specified to be
// bit-identical to the dense solver. User 0 is always uncapped so the
// request passes the total-capacity check for any fuzzed capacities.
func fuzzRequest(seed uint64, nUsers, totalShards, shardSize int) *Request {
	n := 1 + abs(nUsers)%48
	s := 1 + abs(totalShards)%200
	sz := 1 + abs(shardSize)%8
	users := make([]*User, n)
	for j := 0; j < n; j++ {
		h := fuzzMix(seed + uint64(j)*0x100000001b3)
		rate := float64(h%1000+1) / 1000
		root := float64((h>>10)%100) / 10
		comm := float64((h>>20)%500) / 100
		capShards := 0 // unlimited
		if j > 0 && h%3 == 0 {
			capShards = 1 + int((h>>32)%uint64(s))
		}
		users[j] = &User{
			Name: "u",
			Cost: func(samples int) float64 {
				return rate*float64(samples) + root*math.Sqrt(float64(samples))
			},
			CommSeconds:    comm,
			CapacityShards: capShards,
		}
	}
	return &Request{TotalShards: s, ShardSize: sz, Users: users}
}

func abs(v int) int {
	if v < 0 {
		if v == math.MinInt {
			return math.MaxInt
		}
		return -v
	}
	return v
}

// FuzzSparseFedLBAP cross-checks the O(n + s·polylog) sparse solver
// against the dense O(ns) solver on random monotone-cost problems: both
// must produce a valid assignment, the same shard vector, and the same
// predicted makespan.
func FuzzSparseFedLBAP(f *testing.F) {
	f.Add(uint64(1), 8, 40, 2)
	f.Add(uint64(42), 1, 1, 1)
	f.Add(uint64(7), 30, 5, 3)   // n > s: quickselect bound + pruning path
	f.Add(uint64(99), 4, 199, 1) // deep curves: bisection + exact walk
	f.Fuzz(func(t *testing.T, seed uint64, nUsers, totalShards, shardSize int) {
		req := fuzzRequest(seed, nUsers, totalShards, shardSize)
		rng := rand.New(rand.NewSource(1)) // unused by both solvers; passed for interface shape
		dense, err := (FedLBAP{}).Schedule(req, rng)
		if err != nil {
			t.Fatalf("dense solver rejected a well-formed request: %v", err)
		}
		sparse, err := (SparseFedLBAP{}).Schedule(req, rng)
		if err != nil {
			t.Fatalf("sparse solver rejected a well-formed request: %v", err)
		}
		if err := Validate(req, dense); err != nil {
			t.Fatalf("dense assignment invalid: %v", err)
		}
		if err := Validate(req, sparse); err != nil {
			t.Fatalf("sparse assignment invalid: %v", err)
		}
		if len(dense.Shards) != len(sparse.Shards) {
			t.Fatalf("shard vectors differ in length: dense %d, sparse %d", len(dense.Shards), len(sparse.Shards))
		}
		for j := range dense.Shards {
			if dense.Shards[j] != sparse.Shards[j] {
				t.Fatalf("shard vectors diverge at user %d: dense %v, sparse %v", j, dense.Shards, sparse.Shards)
			}
		}
		if dense.PredictedMakespan != sparse.PredictedMakespan { //fedlint:allow floateq — the sparse solver's contract is bit-identical output
			t.Fatalf("makespans diverge: dense %v, sparse %v", dense.PredictedMakespan, sparse.PredictedMakespan)
		}
	})
}
