package sched

import (
	"fmt"
	"math/rand"
)

// AlphaSearchResult reports one candidate from TuneAlpha.
type AlphaSearchResult struct {
	Alpha      float64
	Assignment *Assignment
}

// TuneAlpha evaluates Fed-MinAvg over a grid of α values (the paper
// searches [100, 5000], §VII) and returns the candidate whose assignment
// minimizes objective, plus the full sweep for inspection. The request's
// Alpha field is ignored; Beta, K, classes and costs are used as given.
// A nil objective minimizes the predicted makespan (the paper's Fig 7
// procedure with β=0).
func TuneAlpha(req *Request, grid []float64, objective func(*Assignment) float64) (*AlphaSearchResult, []AlphaSearchResult, error) {
	if len(grid) == 0 {
		grid = DefaultAlphaGrid()
	}
	if objective == nil {
		objective = func(a *Assignment) float64 { return a.PredictedMakespan }
	}
	var (
		best  *AlphaSearchResult
		bestV float64
		sweep []AlphaSearchResult
	)
	for _, alpha := range grid {
		// Work on a shallow copy so the caller's request is untouched.
		r := *req
		r.Alpha = alpha
		asg, err := (FedMinAvg{}).Schedule(&r, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("sched: TuneAlpha at α=%g: %w", alpha, err)
		}
		res := AlphaSearchResult{Alpha: alpha, Assignment: asg}
		sweep = append(sweep, res)
		if v := objective(asg); best == nil || v < bestV {
			b := res
			best, bestV = &b, v
		}
	}
	return best, sweep, nil
}

// DefaultAlphaGrid is the paper's α search interval [100, 5000], sampled
// geometrically.
func DefaultAlphaGrid() []float64 {
	return []float64{100, 180, 320, 560, 1000, 1800, 3200, 5000}
}

// RandomClassSets draws a random class subset (1 to maxClasses of k) per
// user — the Fig 7 "random permutations of the class distributions".
func RandomClassSets(users, k, maxClasses int, rng *rand.Rand) [][]int {
	if maxClasses <= 0 || maxClasses > k {
		maxClasses = k
	}
	sets := make([][]int, users)
	for u := range sets {
		n := 1 + rng.Intn(maxClasses)
		perm := rng.Perm(k)
		set := append([]int(nil), perm[:n]...)
		sets[u] = set
	}
	return sets
}
