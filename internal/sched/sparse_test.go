package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedsched/internal/trace"
)

// assertSparseMatchesDense runs both solvers on (copies of) the request
// and requires bit-identical shard vectors and predicted makespans.
func assertSparseMatchesDense(t *testing.T, req *Request) {
	t.Helper()
	dense, err := FedLBAP{}.Schedule(req, nil)
	if err != nil {
		t.Fatalf("dense: %v", err)
	}
	sparse, err := SparseFedLBAP{}.Schedule(req, nil)
	if err != nil {
		t.Fatalf("sparse: %v", err)
	}
	if len(dense.Shards) != len(sparse.Shards) {
		t.Fatalf("arity: dense %d, sparse %d", len(dense.Shards), len(sparse.Shards))
	}
	for j := range dense.Shards {
		if dense.Shards[j] != sparse.Shards[j] {
			t.Fatalf("shards differ at user %d: dense %v, sparse %v", j, dense.Shards, sparse.Shards)
		}
	}
	if dense.PredictedMakespan != sparse.PredictedMakespan {
		t.Fatalf("predicted makespan differs: dense %v, sparse %v",
			dense.PredictedMakespan, sparse.PredictedMakespan)
	}
	if err := Validate(req, sparse); err != nil {
		t.Fatal(err)
	}
}

func TestSparseMatchesDenseBasic(t *testing.T) {
	assertSparseMatchesDense(t, testRequest(30))
}

func TestSparseMatchesDenseSingleUser(t *testing.T) {
	assertSparseMatchesDense(t, &Request{
		TotalShards: 7, ShardSize: 10, Users: []*User{linUser("only", 0, 0.1, 1)},
	})
}

func TestSparseMatchesDenseNoisyGuard(t *testing.T) {
	// The noisy-guard instance from the dense tests: its raw costs are
	// strictly increasing (1.0, 1.7, 3.0, 3.7, …), so the dense running
	// max never engages and the sparse solver must agree exactly.
	noisy := &User{
		Name: "noisy",
		Cost: func(n int) float64 {
			base := 0.01 * float64(n)
			if (n/100)%2 == 0 {
				base -= 0.3
			}
			return base
		},
	}
	assertSparseMatchesDense(t, &Request{
		TotalShards: 10, ShardSize: 100, Users: []*User{noisy, linUser("b", 1, 0.02, 0)},
	})
}

func TestSparseMatchesDenseConstantCosts(t *testing.T) {
	// All-equal costs make every threshold and every trim step a tie —
	// the worst case for tie-break equivalence between the dense
	// first-max scan and the sparse trim heap.
	users := make([]*User, 6)
	for j := range users {
		users[j] = &User{Name: "flat", Cost: func(int) float64 { return 2.5 }}
	}
	assertSparseMatchesDense(t, &Request{TotalShards: 10, ShardSize: 100, Users: users})
}

func TestSparseMatchesDenseCapacityEdges(t *testing.T) {
	mk := func() []*User {
		return []*User{
			linUser("fast", 1, 0.010, 2),
			linUser("mid", 2, 0.020, 2),
			linUser("slow", 3, 0.060, 2),
			linUser("spare", 1.5, 0.015, 1),
		}
	}
	cases := []struct {
		name string
		caps [4]int
	}{
		{"unlimited-zero", [4]int{0, 0, 0, 0}},      // capj=0 means unlimited
		{"unlimited-negative", [4]int{-5, 0, 0, 0}}, // negative likewise
		{"over-total", [4]int{100, 0, 0, 0}},        // capj > s clamps to s
		{"tight", [4]int{5, 5, 0, 0}},
		{"mixed", [4]int{3, 100, -1, 7}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			users := mk()
			for j := range users {
				users[j].CapacityShards = c.caps[j]
			}
			assertSparseMatchesDense(t, &Request{TotalShards: 30, ShardSize: 100, Users: users})
		})
	}
}

func TestSparseMatchesDenseExactFit(t *testing.T) {
	// Σ cap_j == TotalShards: everyone is forced to full capacity.
	users := []*User{
		linUser("a", 1, 0.01, 1),
		linUser("b", 2, 0.02, 1),
		linUser("c", 3, 0.03, 1),
	}
	users[0].CapacityShards = 4
	users[1].CapacityShards = 3
	users[2].CapacityShards = 3
	assertSparseMatchesDense(t, &Request{TotalShards: 10, ShardSize: 50, Users: users})
}

func TestSparseMatchesDenseProperty(t *testing.T) {
	// The same instance generator as TestFedLBAPMatchesBruteForce: random
	// linear costs, random comm, ~30% of users capacity-bound.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		users := make([]*User, n)
		for j := range users {
			a := rng.Float64() * 5
			b := 0.005 + rng.Float64()*0.1
			comm := rng.Float64() * 3
			users[j] = linUser("u", a, b, comm)
			if rng.Float64() < 0.3 {
				users[j].CapacityShards = 3 + rng.Intn(20)
			}
		}
		shards := 5 + rng.Intn(40)
		req := &Request{TotalShards: shards, ShardSize: 50, Users: users}
		if req.totalCapacity() < shards {
			return true // infeasible instance; skip
		}
		dense, err := FedLBAP{}.Schedule(req, nil)
		if err != nil {
			return false
		}
		sparse, err := SparseFedLBAP{}.Schedule(req, nil)
		if err != nil {
			return false
		}
		for j := range dense.Shards {
			if dense.Shards[j] != sparse.Shards[j] {
				return false
			}
		}
		return dense.PredictedMakespan == sparse.PredictedMakespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseMatchesBruteForce(t *testing.T) {
	// Optimality, not just dense-equivalence: the sparse makespan must
	// match the brute-force DP oracle on small instances.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		users := make([]*User, n)
		for j := range users {
			users[j] = linUser("u", rng.Float64()*5, 0.005+rng.Float64()*0.1, rng.Float64()*3)
			if rng.Float64() < 0.3 {
				users[j].CapacityShards = 3 + rng.Intn(20)
			}
		}
		shards := 5 + rng.Intn(25)
		req := &Request{TotalShards: shards, ShardSize: 50, Users: users}
		if req.totalCapacity() < shards {
			return true
		}
		got, err := SparseFedLBAP{}.Schedule(req, nil)
		if err != nil {
			return false
		}
		if Validate(req, got) != nil {
			return false
		}
		want, err := BruteForce{}.Schedule(req, nil)
		if err != nil {
			return false
		}
		return math.Abs(Makespan(req, got)-Makespan(req, want)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// jitterUsers builds n users with deterministic per-user linear costs —
// the population-scale instance shape, no math/rand in the loop.
func jitterUsers(n int) []*User {
	users := make([]*User, n)
	for j := range users {
		h := uint64(j)*0x9e3779b97f4a7c15 + 1
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		a := 0.5 + float64(h%1000)/500
		b := 0.005 + float64((h>>10)%1000)/50000
		users[j] = &User{
			Cost:        func(samples int) float64 { return a + b*float64(samples) },
			CommSeconds: 1 + float64((h>>20)%100)/100,
		}
	}
	return users
}

func TestSparseMatchesDenseMidScale(t *testing.T) {
	// n=2000, s=200: large enough that pruning and bisection genuinely
	// engage (n ≫ s), still cheap enough to run the dense solver.
	req := &Request{TotalShards: 200, ShardSize: 100, Users: jitterUsers(2000)}
	assertSparseMatchesDense(t, req)
}

func TestSparseLargeScaleValid(t *testing.T) {
	// n=50000, s=2000 — dense would need a 10^8-value sort; sparse must
	// stay fast and produce a valid, capacity-respecting assignment.
	if testing.Short() {
		t.Skip("large instance")
	}
	users := jitterUsers(50000)
	for j := 0; j < len(users); j += 3 {
		users[j].CapacityShards = 1 + j%7
	}
	req := &Request{TotalShards: 2000, ShardSize: 100, Users: users}
	asg, err := SparseFedLBAP{}.Schedule(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(req, asg); err != nil {
		t.Fatal(err)
	}
}

func TestSparseDeterministicProbes(t *testing.T) {
	// Two identical solves must emit identical KindSolver probe streams
	// and identical KindSchedule events.
	run := func() []trace.Event {
		rec := trace.New(0)
		req := &Request{TotalShards: 200, ShardSize: 100, Users: jitterUsers(1000), Trace: rec}
		if _, err := (SparseFedLBAP{}).Schedule(req, nil); err != nil {
			t.Fatal(err)
		}
		return rec.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no trace events emitted")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDenseProbeDedupe(t *testing.T) {
	// Duplicate cost values must not inflate the dense solver's probe
	// count: with two identical users every threshold appears twice in
	// the raw value list, and the deduped binary search must probe at
	// most ⌈log2(distinct)⌉ times.
	users := []*User{
		linUser("a", 1, 0.01, 1),
		linUser("a-twin", 1, 0.01, 1),
	}
	rec := trace.New(0)
	req := &Request{TotalShards: 10, ShardSize: 100, Users: users, Trace: rec}
	if _, err := (FedLBAP{}).Schedule(req, nil); err != nil {
		t.Fatal(err)
	}
	probes := 0
	for _, e := range rec.Events() {
		if e.Kind == trace.KindSolver {
			probes++
		}
	}
	// 10 distinct thresholds (twins collapse) → at most 4 probes; the
	// pre-dedupe solver needed 5 for the 20-value list.
	if probes > 4 {
		t.Fatalf("dense solver probed %d times over 10 distinct values; dedupe not effective", probes)
	}
}

func TestSelectKth(t *testing.T) {
	vals := []float64{5, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	sorted := []float64{1, 1, 2, 3, 4, 5, 5, 5, 6, 9}
	for k := range sorted {
		a := append([]float64(nil), vals...)
		if got := selectKth(a, k); got != sorted[k] {
			t.Fatalf("selectKth(%d) = %v, want %v", k, got, sorted[k])
		}
	}
	one := []float64{7}
	if selectKth(one, 0) != 7 {
		t.Fatal("single-element select")
	}
}

func BenchmarkSparseFedLBAPMid(b *testing.B) {
	req := &Request{TotalShards: 1000, ShardSize: 100, Users: jitterUsers(10000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (SparseFedLBAP{}).Schedule(req, nil); err != nil {
			b.Fatal(err)
		}
	}
}
