package sched

import (
	"math"
	"math/rand"
)

// BruteForce computes the exact minimum-makespan partition by dynamic
// programming over users and remaining shards (O(n·s²)). It is the test
// oracle for Fed-LBAP; do not use it for large instances.
type BruteForce struct{}

// Name implements Scheduler.
func (BruteForce) Name() string { return "BruteForce" }

// Schedule implements Scheduler (rng unused; deterministic).
func (BruteForce) Schedule(req *Request, _ *rand.Rand) (*Assignment, error) {
	if err := req.check(); err != nil {
		return nil, err
	}
	n, s := len(req.Users), req.TotalShards

	// best[j][r] = minimal makespan assigning r shards to users j..n-1.
	best := make([][]float64, n+1)
	choice := make([][]int, n+1)
	for j := range best {
		best[j] = make([]float64, s+1)
		choice[j] = make([]int, s+1)
		for r := range best[j] {
			best[j][r] = math.Inf(1)
		}
	}
	best[n][0] = 0
	for j := n - 1; j >= 0; j-- {
		capj := req.Users[j].capacity(s)
		for r := 0; r <= s; r++ {
			for k := 0; k <= capj && k <= r; k++ {
				rest := best[j+1][r-k]
				if math.IsInf(rest, 1) {
					continue
				}
				m := math.Max(userCost(req, j, k), rest)
				if m < best[j][r] {
					best[j][r] = m
					choice[j][r] = k
				}
			}
		}
	}

	shards := make([]int, n)
	r := s
	for j := 0; j < n; j++ {
		shards[j] = choice[j][r]
		r -= shards[j]
	}
	asg := &Assignment{Shards: shards, Algorithm: "BruteForce", PredictedMakespan: best[0][s]}
	emitSchedule(req, asg)
	return asg, nil
}
