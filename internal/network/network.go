// Package network models the wireless links between the parameter server
// and the phones. The paper measures a campus-WiFi link (≈85 Mbps
// symmetric) and a T-Mobile LTE link (≈60 Mbps uplink / 11 Mbps downlink,
// §III-A); with those presets the simulated communication share of each
// epoch reproduces the percentages in Table II (≈0.5–15%).
package network

import "fmt"

// Link models one wireless connection with asymmetric bandwidth and a
// fixed per-transfer latency.
type Link struct {
	Name     string
	UpMbps   float64 // device → server
	DownMbps float64 // server → device
	RTTms    float64 // per-transfer handshake latency
}

// WiFi returns the paper's campus-WiFi preset.
func WiFi() Link { return Link{Name: "WiFi", UpMbps: 85, DownMbps: 85, RTTms: 20} }

// LTE returns the paper's T-Mobile LTE preset (−94 dBm: ~60 Mbps up,
// ~11 Mbps down as measured in §III-A).
func LTE() Link { return Link{Name: "LTE", UpMbps: 60, DownMbps: 11, RTTms: 60} }

// String implements fmt.Stringer.
func (l Link) String() string {
	return fmt.Sprintf("%s(%g↑/%g↓ Mbps)", l.Name, l.UpMbps, l.DownMbps)
}

// Degraded returns the link with both bandwidths divided by factor (the
// handshake latency is unchanged) — a congested cell or marginal-signal
// period. Factors ≤ 1 return the link unchanged, so callers can apply a
// fault plan's Slow factor unconditionally.
func (l Link) Degraded(factor float64) Link {
	if factor <= 1 {
		return l
	}
	l.UpMbps /= factor
	l.DownMbps /= factor
	return l
}

// UploadTime returns T^u(M): the seconds to push `bytes` from the device to
// the server.
func (l Link) UploadTime(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes)*8/(l.UpMbps*1e6) + l.RTTms/1000
}

// DownloadTime returns T^d(M): the seconds to pull `bytes` from the server
// to the device.
func (l Link) DownloadTime(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes)*8/(l.DownMbps*1e6) + l.RTTms/1000
}

// RoundTripTime returns the full per-epoch communication cost
// T^u(M) + T^d(M) for a model payload of the given size: each participant
// downloads the global model and uploads its update every epoch.
func (l Link) RoundTripTime(bytes int) float64 {
	return l.UploadTime(bytes) + l.DownloadTime(bytes)
}
