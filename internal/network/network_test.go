package network

import (
	"math"
	"testing"

	"fedsched/internal/nn"
)

func TestUploadDownloadBasics(t *testing.T) {
	l := Link{Name: "test", UpMbps: 8, DownMbps: 4, RTTms: 0}
	// 1 MB = 8 Mb: 1 s up at 8 Mbps, 2 s down at 4 Mbps.
	if got := l.UploadTime(1e6); math.Abs(got-1) > 1e-9 {
		t.Fatalf("upload %v, want 1", got)
	}
	if got := l.DownloadTime(1e6); math.Abs(got-2) > 1e-9 {
		t.Fatalf("download %v, want 2", got)
	}
	if got := l.RoundTripTime(1e6); math.Abs(got-3) > 1e-9 {
		t.Fatalf("round trip %v, want 3", got)
	}
}

func TestZeroBytesFree(t *testing.T) {
	l := WiFi()
	if l.UploadTime(0) != 0 || l.DownloadTime(0) != 0 || l.RoundTripTime(-5) != 0 {
		t.Fatal("zero/negative payloads must be free")
	}
}

func TestRTTIncluded(t *testing.T) {
	l := Link{UpMbps: 1000, DownMbps: 1000, RTTms: 100}
	if got := l.UploadTime(1); got < 0.1 {
		t.Fatalf("RTT not included: %v", got)
	}
}

// Table II cross-check: with the paper's link presets and model sizes, the
// communication share of an epoch must land near the reported percentages.
func TestTable2CommunicationShares(t *testing.T) {
	lenet := nn.LeNet(1, 28, 28, 10)
	vgg := nn.VGG6(1, 28, 28, 10)
	cases := []struct {
		name      string
		link      Link
		bytes     int
		computeS  float64
		wantShare float64 // paper's percentage
		tol       float64
	}{
		{"LeNet/WiFi/Nexus6/3K", WiFi(), lenet.SizeBytes(), 31, 0.015, 0.01},
		{"LeNet/LTE/Nexus6/3K", LTE(), lenet.SizeBytes(), 31, 0.067, 0.02},
		{"VGG6/WiFi/Nexus6/3K", WiFi(), vgg.SizeBytes(), 495, 0.025, 0.01},
		{"VGG6/LTE/Pixel2/3K", LTE(), vgg.SizeBytes(), 339, 0.147, 0.03},
		{"VGG6/LTE/Nexus6/6K", LTE(), vgg.SizeBytes(), 1021, 0.053, 0.02},
	}
	for _, c := range cases {
		comm := c.link.RoundTripTime(c.bytes)
		share := comm / (comm + c.computeS)
		if math.Abs(share-c.wantShare) > c.tol {
			t.Errorf("%s: comm share %.3f, paper %.3f", c.name, share, c.wantShare)
		}
	}
}

// Observation 3: communication is a small fraction of training time —
// about 5% on average, max ~15% (VGG6 over LTE).
func TestObservation3CommShareSmall(t *testing.T) {
	lenet := nn.LeNet(1, 28, 28, 10)
	vgg := nn.VGG6(1, 28, 28, 10)
	computeTimes := map[string]float64{ // 3K-sample epochs from Table II
		"lenet": 31, "vgg": 495,
	}
	max := 0.0
	for _, link := range []Link{WiFi(), LTE()} {
		for name, bytes := range map[string]int{"lenet": lenet.SizeBytes(), "vgg": vgg.SizeBytes()} {
			comm := link.RoundTripTime(bytes)
			share := comm / (comm + computeTimes[name])
			if share > max {
				max = share
			}
		}
	}
	if max > 0.20 {
		t.Fatalf("max communication share %.2f — computation should dominate", max)
	}
}

func TestDegraded(t *testing.T) {
	l := WiFi()
	d := l.Degraded(4)
	if d.UpMbps != l.UpMbps/4 || d.DownMbps != l.DownMbps/4 {
		t.Fatalf("Degraded(4) bandwidths %g/%g, want quartered", d.UpMbps, d.DownMbps)
	}
	if d.RTTms != l.RTTms {
		t.Fatal("Degraded must not change RTT")
	}
	if d.UploadTime(1<<20) <= l.UploadTime(1<<20) {
		t.Fatal("degraded upload should be slower")
	}
	if l.Degraded(1) != l || l.Degraded(0.5) != l {
		t.Fatal("factor ≤ 1 must be a no-op")
	}
}
