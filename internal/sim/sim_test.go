package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var e Engine
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	if n := e.Run(); n != 5 {
		t.Fatalf("ran %d events", n)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 5 {
		t.Fatalf("clock at %v, want 5", e.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var e Engine
	var trace []float64
	e.After(2, func() {
		trace = append(trace, e.Now())
		e.After(3, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 2 || trace[1] != 5 {
		t.Fatalf("trace %v, want [2 5]", trace)
	}
}

func TestRunUntilLeavesLateEvents(t *testing.T) {
	var e Engine
	ran := 0
	e.Schedule(1, func() { ran++ })
	e.Schedule(10, func() { ran++ })
	n := e.RunUntil(5)
	if n != 1 || ran != 1 {
		t.Fatalf("processed %d events, ran %d", n, ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("%d pending", e.Pending())
	}
	if e.Now() != 1 {
		t.Fatalf("clock %v", e.Now())
	}
	e.Run()
	if ran != 2 {
		t.Fatal("late event lost")
	}
}

func TestRunUntilAdvancesClockWhenIdle(t *testing.T) {
	var e Engine
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("clock %v, want 42", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(1, func() {})
}

func TestNegativeAfterClamped(t *testing.T) {
	var e Engine
	fired := false
	e.After(-3, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("fired=%v now=%v", fired, e.Now())
	}
}

func TestOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		var got []float64
		n := 1 + rng.Intn(50)
		for i := 0; i < n; i++ {
			at := rng.Float64() * 100
			e.Schedule(at, func() { got = append(got, e.Now()) })
		}
		e.Run()
		return len(got) == n && sort.Float64sAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEventPoolSteadyStateAllocFree(t *testing.T) {
	var e Engine
	fn := func() {}
	// Warm the free list, then a schedule+step cycle must reuse nodes.
	e.Schedule(1, fn)
	e.Step()
	at := 2.0
	allocs := testing.AllocsPerRun(200, func() {
		e.Schedule(at, fn)
		e.Step()
		at++
	})
	if allocs > 0 {
		t.Errorf("schedule+step allocates %.1f per event at steady state", allocs)
	}
}

func TestEventPoolReuseKeepsOrdering(t *testing.T) {
	// A callback that schedules during Step may reuse the just-recycled
	// node; ordering and payloads must be unaffected.
	var e Engine
	var got []float64
	var chain func()
	chain = func() {
		got = append(got, e.Now())
		if e.Now() < 5 {
			e.After(1, chain)
		}
	}
	e.Schedule(1, chain)
	e.Run()
	want := []float64{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}
