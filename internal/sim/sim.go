// Package sim provides a minimal discrete-event simulation core: a virtual
// clock and an event queue ordered by timestamp. The asynchronous
// federated-learning mode (paper §II-B discusses why synchronous
// aggregation was chosen; we implement the alternative to quantify it)
// schedules client download/train/upload completions as events.
package sim

import (
	"container/heap"
	"fmt"

	"fedsched/internal/trace"
)

// Event is a scheduled callback.
type Event struct {
	At  float64
	Fn  func()
	seq int64 // tie-breaker for deterministic ordering at equal times
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At { //fedlint:allow floateq — exact-equality tie-break; equal times fall through to the seq ordering
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event engine. The zero value is
// ready to use.
type Engine struct {
	now    float64
	queue  eventHeap
	nextID int64
	// processed counts events run so far.
	processed int

	// Tracer, when non-nil, receives one KindSimStep event per processed
	// event (virtual time in AtS, the engine sequence number in Round) —
	// the event-loop timeline of an asynchronous run. The engine is
	// single-threaded, so emission order is deterministic by
	// construction.
	Tracer *trace.Recorder

	// free recycles processed Event nodes: a long async run schedules
	// millions of events but only ever has O(clients) in flight, so
	// steady-state event throughput allocates nothing.
	free []*Event
}

// Processed returns the number of events run so far.
func (e *Engine) Processed() int { return e.processed }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule enqueues fn to run at absolute virtual time `at`. Scheduling in
// the past panics — it would silently corrupt causality.
func (e *Engine) Schedule(at float64, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %.3f before now %.3f", at, e.now))
	}
	e.nextID++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.At, ev.Fn, ev.seq = at, fn, e.nextID
	} else {
		ev = &Event{At: at, Fn: fn, seq: e.nextID}
	}
	heap.Push(&e.queue, ev)
}

// After enqueues fn to run `delay` seconds from now.
func (e *Engine) After(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.Schedule(e.now+delay, fn)
}

// Step runs the next event. It returns false when the queue is empty.
//
// fedlint:deterministic
// fedlint:trace KindSimStep
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	e.processed++
	e.Tracer.Emit(trace.Event{Kind: trace.KindSimStep, Round: int(ev.seq), Client: -1, AtS: ev.At})
	// Recycle before running the callback: ev is off the queue, and fn is
	// saved locally, so fn itself may Schedule and immediately reuse the
	// node.
	fn := ev.Fn
	ev.Fn = nil
	e.free = append(e.free, ev)
	fn()
	return true
}

// RunUntil processes events until the queue drains or virtual time would
// exceed deadline; events scheduled after the deadline remain queued. It
// returns the number of events processed.
func (e *Engine) RunUntil(deadline float64) int {
	n := 0
	for len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
		n++
	}
	if e.now < deadline && len(e.queue) == 0 {
		e.now = deadline
	}
	return n
}

// Run drains the queue completely and returns the number of events
// processed.
func (e *Engine) Run() int {
	n := 0
	for e.Step() {
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
