package binpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplePackNoSplits(t *testing.T) {
	p, err := FirstFitDecreasing([]int{3, 2, 1}, []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p, []int{3, 2, 1}, []int{3, 3}); err != nil {
		t.Fatal(err)
	}
	if p.Splits != 0 {
		t.Fatalf("splits %d, want 0", p.Splits)
	}
	if p.BinsUsed != 2 {
		t.Fatalf("bins used %d, want 2", p.BinsUsed)
	}
}

func TestForcedSplit(t *testing.T) {
	items := []int{5}
	caps := []int{3, 3}
	p, err := FirstFitDecreasing(items, caps)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p, items, caps); err != nil {
		t.Fatal(err)
	}
	if p.Splits != 1 {
		t.Fatalf("splits %d, want 1", p.Splits)
	}
	if lb := MinSplitsLowerBound(items, caps); lb != 1 {
		t.Fatalf("lower bound %d, want 1", lb)
	}
}

func TestInsufficientCapacity(t *testing.T) {
	if _, err := FirstFitDecreasing([]int{10}, []int{4, 4}); err == nil {
		t.Fatal("expected capacity error")
	}
	if _, err := FirstFitDecreasing([]int{-1}, []int{4}); err == nil {
		t.Fatal("expected negative-size error")
	}
	if _, err := FirstFitDecreasing([]int{1}, []int{-4}); err == nil {
		t.Fatal("expected negative-capacity error")
	}
}

func TestZeroItems(t *testing.T) {
	p, err := FirstFitDecreasing(nil, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fragments) != 0 || p.BinsUsed != 0 {
		t.Fatalf("empty pack: %+v", p)
	}
}

func TestPackingValidAndBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nItems, nBins := 1+rng.Intn(8), 1+rng.Intn(6)
		items := make([]int, nItems)
		total := 0
		for i := range items {
			items[i] = rng.Intn(20)
			total += items[i]
		}
		caps := make([]int, nBins)
		remaining := total
		for i := range caps {
			caps[i] = rng.Intn(20)
			remaining -= caps[i]
		}
		if remaining > 0 {
			caps[0] += remaining // guarantee feasibility
		}
		p, err := FirstFitDecreasing(items, caps)
		if err != nil {
			return false
		}
		if Validate(p, items, caps) != nil {
			return false
		}
		return p.Splits >= MinSplitsLowerBound(items, caps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	items, caps := []int{4}, []int{4}
	p, err := FirstFitDecreasing(items, caps)
	if err != nil {
		t.Fatal(err)
	}
	p.Fragments[0].Size = 3
	if Validate(p, items, caps) == nil {
		t.Fatal("validate missed short placement")
	}
	p.Fragments[0].Size = 5
	if Validate(p, items, caps) == nil {
		t.Fatal("validate missed over-capacity bin")
	}
}
