// Package binpack implements bin packing with fragmentable items
// (LeCun et al. [27]), the combinatorial problem the paper's Fed-MinAvg is
// abstracted from: items (learning tasks) may be split into fragments
// across bins (users), each split incurring a cost. The package provides a
// first-fit-decreasing heuristic and the classic lower bound, used for
// ablation comparisons against Fed-MinAvg and in tests.
package binpack

import (
	"fmt"
	"sort"
)

// Fragment records a piece of an item placed into a bin.
type Fragment struct {
	Item, Bin int
	Size      int
}

// Packing is the result of a fragmentable packing.
type Packing struct {
	Fragments []Fragment
	// Splits is the number of fragmentations performed (fragments beyond
	// the first of each placed item).
	Splits int
	// BinsUsed is the number of bins holding at least one fragment.
	BinsUsed int
}

// FirstFitDecreasing packs the items (sizes) into bins with the given
// capacities, splitting items whenever the current bin fills, visiting
// bins in order. It returns an error when total capacity is insufficient.
func FirstFitDecreasing(items []int, capacities []int) (*Packing, error) {
	totalItems, totalCap := 0, 0
	for _, s := range items {
		if s < 0 {
			return nil, fmt.Errorf("binpack: negative item size %d", s)
		}
		totalItems += s
	}
	for _, c := range capacities {
		if c < 0 {
			return nil, fmt.Errorf("binpack: negative capacity %d", c)
		}
		totalCap += c
	}
	if totalItems > totalCap {
		return nil, fmt.Errorf("binpack: items (%d) exceed capacity (%d)", totalItems, totalCap)
	}

	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return items[order[a]] > items[order[b]] })

	free := append([]int(nil), capacities...)
	p := &Packing{}
	bin := 0
	used := make([]bool, len(capacities))
	for _, it := range order {
		remaining := items[it]
		first := true
		for remaining > 0 {
			for bin < len(free) && free[bin] == 0 {
				bin++
			}
			if bin >= len(free) {
				return nil, fmt.Errorf("binpack: ran out of bins (internal accounting error)")
			}
			take := remaining
			if take > free[bin] {
				take = free[bin]
			}
			p.Fragments = append(p.Fragments, Fragment{Item: it, Bin: bin, Size: take})
			used[bin] = true
			free[bin] -= take
			remaining -= take
			if !first {
				p.Splits++
			}
			first = false
		}
	}
	for _, u := range used {
		if u {
			p.BinsUsed++
		}
	}
	return p, nil
}

// MinSplitsLowerBound returns the classic lower bound on the number of
// fragmentations needed to pack items of the given total into bins of the
// given capacities: with k bins receiving data, at most k items can avoid
// splitting entirely only if they fit, so any packing that must use k bins
// performs at least (#bins used − #items that fit whole) ... simplified to
// the standard bound max(0, binsNeeded − len(items)).
func MinSplitsLowerBound(items []int, capacities []int) int {
	total := 0
	for _, s := range items {
		total += s
	}
	caps := append([]int(nil), capacities...)
	sort.Sort(sort.Reverse(sort.IntSlice(caps)))
	need, acc := 0, 0
	for _, c := range caps {
		if acc >= total {
			break
		}
		acc += c
		need++
	}
	lb := need - len(items)
	if lb < 0 {
		return 0
	}
	return lb
}

// Validate checks a packing against the instance: every item fully placed,
// no bin over capacity. It returns nil when consistent.
func Validate(p *Packing, items []int, capacities []int) error {
	placed := make([]int, len(items))
	load := make([]int, len(capacities))
	for _, f := range p.Fragments {
		if f.Item < 0 || f.Item >= len(items) || f.Bin < 0 || f.Bin >= len(capacities) {
			return fmt.Errorf("binpack: fragment out of range: %+v", f)
		}
		if f.Size <= 0 {
			return fmt.Errorf("binpack: non-positive fragment size: %+v", f)
		}
		placed[f.Item] += f.Size
		load[f.Bin] += f.Size
	}
	for i, want := range items {
		if placed[i] != want {
			return fmt.Errorf("binpack: item %d placed %d of %d", i, placed[i], want)
		}
	}
	for b, l := range load {
		if l > capacities[b] {
			return fmt.Errorf("binpack: bin %d over capacity: %d > %d", b, l, capacities[b])
		}
	}
	return nil
}
