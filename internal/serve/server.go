package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fedsched/internal/fl"
	"fedsched/internal/tensor"
	"fedsched/internal/trace"
)

// Job lifecycle states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateCompleted = "completed"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Options configures a Server.
type Options struct {
	// Dir is the state directory: one subdirectory per job holding its
	// config, status, streamed trace and resume snapshot. Required.
	Dir string
	// QueueCap bounds the admission queue (default 16); submissions
	// beyond it get 429 with a Retry-After hint.
	QueueCap int
	// MaxRunning bounds concurrently running jobs (default 2).
	MaxRunning int
	// LaneBudget is the shared worker budget jobs draw from, in units
	// of tensor lanes (default tensor.MaxLanes()+1, the process's
	// compute width). A job needing more than the remainder waits in
	// the queue — unless nothing is running, so one oversized job can
	// never deadlock the daemon.
	LaneBudget int
	// TraceCap is each job's trace-ring capacity in events (default
	// 65536). The ring only needs to hold one round between flushes.
	TraceCap int
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.QueueCap <= 0 {
		o.QueueCap = 16
	}
	if o.MaxRunning <= 0 {
		o.MaxRunning = 2
	}
	if o.LaneBudget <= 0 {
		o.LaneBudget = tensor.MaxLanes() + 1
	}
	if o.TraceCap <= 0 {
		o.TraceCap = trace.DefaultCapacity
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// RoundInfo is one completed round on the wire (GET /jobs/{id}/rounds).
// Floats are sanitized (NaN→−1) so the struct always JSON-encodes;
// identical histories marshal to byte-identical JSON.
type RoundInfo struct {
	Round        int     `json:"round"`
	MakespanS    float64 `json:"makespan_s"`
	TrainLoss    float64 `json:"train_loss"`
	Accuracy     float64 `json:"accuracy"`
	Failed       bool    `json:"failed,omitempty"`
	Participants int     `json:"participants"`
}

func roundInfos(rounds []fl.RoundStats) []RoundInfo {
	out := make([]RoundInfo, len(rounds))
	for i, rs := range rounds {
		n := 0
		for _, cr := range rs.Clients {
			if cr.Fault == 0 && !cr.Diverged && !cr.Late && !cr.Dropped {
				n++
			}
		}
		out[i] = RoundInfo{
			Round: rs.Round, MakespanS: rs.Makespan,
			TrainLoss: trace.Sanitize(rs.TrainLoss),
			Accuracy:  trace.Sanitize(rs.Accuracy),
			Failed:    rs.Failed, Participants: n,
		}
	}
	return out
}

// JobStatus is a job's state on the wire.
type JobStatus struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	State  string `json:"state"`
	Engine string `json:"engine"`
	// Rounds is the configured target; RoundsDone counts completed
	// rounds (server merges for async jobs).
	Rounds     int    `json:"rounds"`
	RoundsDone int    `json:"rounds_done"`
	Error      string `json:"error,omitempty"`
	// FinalAccuracy and TotalSeconds are set on completion (simulated
	// seconds; mean client accuracy for gossip jobs).
	FinalAccuracy float64 `json:"final_accuracy,omitempty"`
	TotalSeconds  float64 `json:"total_seconds,omitempty"`
	// Resumed marks a job restored from a restart checkpoint.
	Resumed bool `json:"resumed,omitempty"`
}

// job is the in-memory record. Mutable fields are guarded by Server.mu
// except the cancel flag, which the engine polls from its own goroutine.
type job struct {
	id  string
	num int
	cfg JobConfig
	dir string

	cancelled atomic.Bool

	state    string
	err      string
	rounds   []RoundInfo
	done     int
	finalAcc float64
	totalS   float64
	resumed  bool
	budget   int
}

// Server multiplexes federated jobs behind an HTTP API. Create with New,
// mount Handler, and Close on shutdown — Close interrupts running jobs
// at their next round boundary and leaves their on-disk state resumable.
type Server struct {
	opt     Options
	closing atomic.Bool

	mu      sync.Mutex
	jobs    map[string]*job
	queue   []*job
	running int
	inUse   int
	nextNum int
	wg      sync.WaitGroup
}

// persisted wire formats. job.json is written once at submission;
// state.json at every lifecycle transition (atomically, tmp+rename).
type jobFile struct {
	ID     string    `json:"id"`
	Num    int       `json:"num"`
	Config JobConfig `json:"config"`
}

type stateFile struct {
	State         string  `json:"state"`
	Error         string  `json:"error,omitempty"`
	RoundsDone    int     `json:"rounds_done"`
	FinalAccuracy float64 `json:"final_accuracy,omitempty"`
	TotalSeconds  float64 `json:"total_seconds,omitempty"`
}

// New opens (or creates) the state directory, restores every persisted
// job — terminal jobs become queryable again, queued and interrupted
// jobs re-enter the queue (interrupted synchronous jobs resume from
// their round snapshot bit-identically) — and starts dispatching.
func New(opt Options) (*Server, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("serve: Options.Dir is required")
	}
	opt = opt.withDefaults()
	s := &Server{opt: opt, jobs: make(map[string]*job), nextNum: 1}
	jobsDir := filepath.Join(opt.Dir, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	entries, err := os.ReadDir(jobsDir)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(jobsDir, e.Name())
		j, err := loadJob(dir)
		if err != nil {
			opt.Logf("serve: skipping %s: %v", e.Name(), err)
			continue
		}
		s.jobs[j.id] = j
		if j.num >= s.nextNum {
			s.nextNum = j.num + 1
		}
		if j.state == StateQueued || j.state == StateRunning {
			j.resumed = j.state == StateRunning
			j.state = StateQueued
			s.queue = append(s.queue, j)
		}
	}
	sort.Slice(s.queue, func(a, b int) bool { return s.queue[a].num < s.queue[b].num })
	s.mu.Lock()
	s.dispatchLocked()
	s.mu.Unlock()
	return s, nil
}

// loadJob restores one job directory.
func loadJob(dir string) (*job, error) {
	var jf jobFile
	if err := readJSON(filepath.Join(dir, "job.json"), &jf); err != nil {
		return nil, err
	}
	var st stateFile
	if err := readJSON(filepath.Join(dir, "state.json"), &st); err != nil {
		return nil, err
	}
	j := &job{
		id: jf.ID, num: jf.Num, cfg: jf.Config, dir: dir,
		state: st.State, err: st.Error, done: st.RoundsDone,
		finalAcc: st.FinalAccuracy, totalS: st.TotalSeconds,
		budget: jobBudget(jf.Config.Workers),
	}
	if j.id == "" || j.state == "" {
		return nil, fmt.Errorf("missing id or state")
	}
	// Terminal jobs keep their round history queryable across restarts.
	if j.state == StateCompleted || j.state == StateFailed || j.state == StateCancelled {
		if err := readJSON(filepath.Join(dir, "rounds.json"), &j.rounds); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
	}
	return j, nil
}

// jobBudget is a job's admission cost in lanes: its configured worker
// count, at least 1 (0 meaning the full process width). The cap against
// the server's LaneBudget happens at dispatch.
func jobBudget(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Close interrupts every running job at its next round boundary and
// waits for them to settle. Interrupted synchronous jobs keep their
// on-disk state resumable — a new Server over the same directory
// finishes them with bit-identical histories and traces. Queued jobs
// simply stay queued on disk.
func (s *Server) Close() {
	s.closing.Store(true)
	s.wg.Wait()
}

// Handler returns the job API:
//
//	GET  /healthz            liveness
//	POST /jobs               submit a JobConfig; 202 + status,
//	                         400 invalid, 429 queue full, 503 closing
//	GET  /jobs               all statuses, submission order
//	GET  /jobs/{id}          one status
//	GET  /jobs/{id}/rounds   completed-round history
//	GET  /jobs/{id}/trace    streamed JSONL trace (?follow=1 tails it)
//	POST /jobs/{id}/cancel   stop at the next round boundary
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/rounds", s.handleRounds)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var cfg JobConfig
	if err := dec.Decode(&cfg); err != nil {
		httpError(w, http.StatusBadRequest, "invalid job config: %v", err)
		return
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid job config: %v", err)
		return
	}
	if s.closing.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}

	s.mu.Lock()
	if len(s.queue) >= s.opt.QueueCap {
		depth := len(s.queue)
		s.mu.Unlock()
		// The hint scales with queue depth; there is no per-job ETA for
		// arbitrary configs, so this is deliberately coarse.
		w.Header().Set("Retry-After", strconv.Itoa(1+depth))
		httpError(w, http.StatusTooManyRequests, "job queue is full (%d queued)", depth)
		return
	}
	num := s.nextNum
	s.nextNum++
	j := &job{
		id:  fmt.Sprintf("job-%d", num),
		num: num, cfg: cfg,
		dir:    filepath.Join(s.opt.Dir, "jobs", fmt.Sprintf("job-%d", num)),
		state:  StateQueued,
		budget: jobBudget(cfg.Workers),
	}
	if err := persistNewJob(j); err != nil {
		s.mu.Unlock()
		httpError(w, http.StatusInternalServerError, "persist job: %v", err)
		return
	}
	s.jobs[j.id] = j
	s.queue = append(s.queue, j)
	s.dispatchLocked()
	st := statusLocked(j)
	s.mu.Unlock()
	s.opt.Logf("serve: %s submitted (%s, %s)", j.id, j.cfg.Engine, j.cfg.Dataset)
	writeJSON(w, http.StatusAccepted, st)
}

func persistNewJob(j *job) error {
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return err
	}
	if err := writeJSONAtomic(filepath.Join(j.dir, "job.json"), jobFile{ID: j.id, Num: j.num, Config: j.cfg}); err != nil {
		return err
	}
	return writeJSONAtomic(filepath.Join(j.dir, "state.json"), stateFile{State: StateQueued})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, statusLocked(j))
	}
	s.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return jobNum(out[a].ID) < jobNum(out[b].ID) })
	writeJSON(w, http.StatusOK, out)
}

// jobNum extracts the numeric suffix of "job-N" for stable listing order.
func jobNum(id string) int {
	n, _ := strconv.Atoi(id[len("job-"):])
	return n
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	st := statusLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func statusLocked(j *job) JobStatus {
	// The async engine's unit of progress is the update, not the round.
	total := j.cfg.Rounds
	if j.cfg.Engine == "async" {
		total = j.cfg.MaxUpdates
	}
	return JobStatus{
		ID: j.id, Name: j.cfg.Name, State: j.state, Engine: j.cfg.Engine,
		Rounds: total, RoundsDone: j.done, Error: j.err,
		FinalAccuracy: j.finalAcc, TotalSeconds: j.totalS, Resumed: j.resumed,
	}
}

func (s *Server) handleRounds(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	rounds := append([]RoundInfo(nil), j.rounds...)
	s.mu.Unlock()
	if rounds == nil {
		rounds = []RoundInfo{}
	}
	writeJSON(w, http.StatusOK, rounds)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	path := filepath.Join(j.dir, "trace.jsonl")
	f, err := os.Open(path)
	if err != nil {
		httpError(w, http.StatusNotFound, "no trace yet for %s", j.id)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	if _, err := io.Copy(w, f); err != nil {
		return
	}
	if r.URL.Query().Get("follow") == "" {
		return
	}
	// Tail mode: keep shipping flushed lines until the job settles.
	// Flushes are whole-line writes, so the client always sees complete
	// JSONL records.
	flusher, _ := w.(http.Flusher)
	for {
		if flusher != nil {
			flusher.Flush()
		}
		s.mu.Lock()
		st := j.state
		s.mu.Unlock()
		n, err := io.Copy(w, f)
		if err != nil {
			return
		}
		if st != StateRunning && st != StateQueued && n == 0 {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	switch j.state {
	case StateQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		j.state = StateCancelled
		writeJSONAtomic(filepath.Join(j.dir, "state.json"), stateFile{State: StateCancelled})
		st := statusLocked(j)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
	case StateRunning:
		j.cancelled.Store(true)
		st := statusLocked(j)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, st)
	default:
		st := j.state
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "job %s is already %s", j.id, st)
	}
}

// dispatchLocked admits queued jobs while capacity allows: at most
// MaxRunning jobs, whose lane budgets sum to at most LaneBudget. An
// oversized job still runs when it is alone, so the queue always drains.
// Callers hold s.mu.
func (s *Server) dispatchLocked() {
	for len(s.queue) > 0 && s.running < s.opt.MaxRunning && !s.closing.Load() {
		j := s.queue[0]
		budget := j.budget
		if budget > s.opt.LaneBudget {
			budget = s.opt.LaneBudget
		}
		if s.running > 0 && s.inUse+budget > s.opt.LaneBudget {
			return
		}
		s.queue = s.queue[1:]
		j.state = StateRunning
		j.budget = budget
		s.running++
		s.inUse += budget
		s.wg.Add(1)
		go s.runJob(j)
	}
}

// release returns a finished job's capacity and admits successors.
func (s *Server) release(j *job) {
	s.mu.Lock()
	s.running--
	s.inUse -= j.budget
	s.dispatchLocked()
	s.mu.Unlock()
	s.wg.Done()
}

// runJob drives one job to a terminal state (or to an interrupted,
// resumable stop when the daemon is closing). It owns the job's trace
// file and resume snapshot for the duration.
func (s *Server) runJob(j *job) {
	defer s.release(j)

	if err := writeJSONAtomic(filepath.Join(j.dir, "state.json"), stateFile{State: StateRunning}); err != nil {
		s.fail(j, fmt.Errorf("persist state: %w", err))
		return
	}

	// A resumed job restores the (checkpoint, trace offset) pair written
	// atomically by its last round; a fresh or never-checkpointed job
	// starts from zero. Anything in the trace file past the recorded
	// offset is an unacknowledged tail from the interrupted run — the
	// resumed engine re-emits it bit-identically.
	var resume *fl.Checkpoint
	var base int64
	if j.resumed {
		var err error
		resume, base, err = readResume(j.dir)
		if err != nil {
			s.opt.Logf("serve: %s: unusable resume snapshot (%v); restarting from scratch", j.id, err)
			resume, base = nil, 0
		}
	}

	tracePath := filepath.Join(j.dir, "trace.jsonl")
	tf, err := os.OpenFile(tracePath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		s.fail(j, fmt.Errorf("open trace: %w", err))
		return
	}
	defer tf.Close()
	if err := tf.Truncate(base); err != nil {
		s.fail(j, fmt.Errorf("truncate trace: %w", err))
		return
	}
	if _, err := tf.Seek(base, io.SeekStart); err != nil {
		s.fail(j, fmt.Errorf("seek trace: %w", err))
		return
	}
	stream := trace.NewStream(tf, base)

	rec := trace.New(s.opt.TraceCap)
	b, err := build(j.cfg, rec)
	if err != nil {
		s.fail(j, fmt.Errorf("build job: %w", err))
		return
	}
	if resume != nil {
		// Rebuilding re-ran the scheduler, which re-emitted its schedule
		// and solver events — but the original run's first flush already
		// persisted those. Drop the duplicates.
		rec.Reset()
		b.run.Resume = resume
		s.restoreRounds(j, resume)
	}
	b.run.Cancel = func() bool { return j.cancelled.Load() || s.closing.Load() }

	s.opt.Logf("serve: %s running (%s, budget %d)", j.id, j.cfg.Engine, j.budget)
	switch j.cfg.Engine {
	case "sync":
		s.runSync(j, b, stream, rec)
	case "async":
		s.runAsync(j, b, stream, rec)
	case "gossip":
		s.runGossip(j, b, stream, rec)
	default:
		// Configs validate at submission; this only fires on a
		// hand-edited job.json.
		s.fail(j, fmt.Errorf("unknown engine %q", j.cfg.Engine))
	}
}

// runSync executes a synchronous job with per-round persistence: after
// every round the engine's checkpoint sink (on the engine goroutine)
// flushes the trace, then atomically replaces the resume snapshot with
// the new (checkpoint, trace offset) pair. A crash between the two steps
// leaves a stale snapshot plus a trace tail past its offset — which the
// next resume truncates and regenerates, keeping the file byte-identical
// to an uninterrupted run's.
func (s *Server) runSync(j *job, b *built, stream *trace.Stream, rec *trace.Recorder) {
	b.run.CheckpointEvery = 1
	b.run.CheckpointSink = func(ck *fl.Checkpoint) error {
		if err := stream.Flush(rec); err != nil {
			return err
		}
		if err := writeResume(j.dir, ck, stream.Offset()); err != nil {
			return err
		}
		s.mu.Lock()
		j.rounds = roundInfos(ck.HistoryRounds)
		j.done = len(ck.HistoryRounds)
		s.mu.Unlock()
		return nil
	}

	hist, err := fl.Run(b.run, b.clients, b.test)
	var rounds []RoundInfo
	var done int
	var acc, total float64
	if hist != nil {
		rounds = roundInfos(hist.Rounds)
		done = len(hist.Rounds)
		acc = hist.FinalAccuracy
		total = hist.TotalSeconds
	}
	s.settle(j, stream, rec, err, rounds, done, acc, total)
}

// runAsync executes an asynchronous job. It has no synchronous round
// boundary to checkpoint at, so the whole trace flushes at the end and a
// daemon restart re-runs the job from scratch (deterministically).
func (s *Server) runAsync(j *job, b *built, stream *trace.Stream, rec *trace.Recorder) {
	cfg := fl.AsyncConfig{Config: b.run, MaxUpdates: b.maxUpdates}
	hist, err := fl.RunAsync(cfg, b.clients, b.test)
	var done int
	var acc, total float64
	if hist != nil {
		done = hist.Updates
		acc = hist.FinalAccuracy
		total = hist.VirtualSeconds
	}
	s.settle(j, stream, rec, err, nil, done, acc, total)
}

// runGossip executes a decentralized job; like async it is
// run-to-completion (restart re-runs from scratch).
func (s *Server) runGossip(j *job, b *built, stream *trace.Stream, rec *trace.Recorder) {
	cfg := fl.GossipConfig{Config: b.run, Topology: b.topology}
	hist, err := fl.RunGossip(cfg, b.clients, b.test)
	var done int
	var acc, total float64
	if hist != nil {
		done = hist.Rounds
		acc = hist.MeanAccuracy
		total = hist.TotalSeconds
	}
	s.settle(j, stream, rec, err, nil, done, acc, total)
}

// settle maps a finished engine run onto the job's terminal state — or,
// when the daemon interrupted it, leaves the on-disk state resumable and
// the in-memory state running (the process is about to exit anyway).
func (s *Server) settle(j *job, stream *trace.Stream, rec *trace.Recorder, runErr error, rounds []RoundInfo, done int, acc, total float64) {
	interrupted := errors.Is(runErr, fl.ErrCancelled) && s.closing.Load() && !j.cancelled.Load()
	if interrupted {
		s.opt.Logf("serve: %s interrupted after %d rounds; resumable on restart", j.id, done)
		return
	}

	// Flush whatever the last checkpoint (if any) did not cover: the
	// engine-final events of a sync run, or the entire trace of an
	// async/gossip run. Terminal states need no offset bookkeeping.
	if err := stream.Flush(rec); err != nil && runErr == nil {
		runErr = err
	}

	st := stateFile{State: StateCompleted, RoundsDone: done, FinalAccuracy: acc, TotalSeconds: total}
	switch {
	case runErr == nil:
	case errors.Is(runErr, fl.ErrCancelled):
		st.State = StateCancelled
	default:
		st.State = StateFailed
		st.Error = runErr.Error()
	}

	if rounds == nil {
		rounds = []RoundInfo{}
	}
	if err := writeJSONAtomic(filepath.Join(j.dir, "rounds.json"), rounds); err != nil {
		s.opt.Logf("serve: %s: persist rounds: %v", j.id, err)
	}
	if err := writeJSONAtomic(filepath.Join(j.dir, "state.json"), st); err != nil {
		s.opt.Logf("serve: %s: persist state: %v", j.id, err)
	}
	os.Remove(filepath.Join(j.dir, "resume.bin"))

	s.mu.Lock()
	j.state = st.State
	j.err = st.Error
	j.rounds = rounds
	j.done = done
	j.finalAcc = acc
	j.totalS = total
	s.mu.Unlock()
	s.opt.Logf("serve: %s %s (%d rounds, accuracy %.4f)", j.id, st.State, done, acc)
}

// fail records a pre-run failure (build or I/O error).
func (s *Server) fail(j *job, err error) {
	st := stateFile{State: StateFailed, Error: err.Error()}
	writeJSONAtomic(filepath.Join(j.dir, "state.json"), st)
	s.mu.Lock()
	j.state = StateFailed
	j.err = st.Error
	s.mu.Unlock()
	s.opt.Logf("serve: %s failed: %v", j.id, err)
}

// restoreRounds republishes the checkpointed history so status and
// rounds queries are correct from the moment the resumed job starts.
func (s *Server) restoreRounds(j *job, ck *fl.Checkpoint) {
	s.mu.Lock()
	j.rounds = roundInfos(ck.HistoryRounds)
	j.done = len(ck.HistoryRounds)
	s.mu.Unlock()
}

// resume.bin is the atomically-replaced (trace offset, checkpoint) pair:
// 8 bytes little-endian offset, then the fl.Checkpoint wire format.
func writeResume(dir string, ck *fl.Checkpoint, offset int64) error {
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(offset))
	buf.Write(hdr[:])
	if err := ck.Save(&buf); err != nil {
		return err
	}
	path := filepath.Join(dir, "resume.bin")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readResume loads the snapshot; (nil, 0, nil) means a fresh start.
func readResume(dir string) (*fl.Checkpoint, int64, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "resume.bin"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < 8 {
		return nil, 0, fmt.Errorf("resume snapshot truncated (%d bytes)", len(raw))
	}
	offset := int64(binary.LittleEndian.Uint64(raw[:8]))
	ck, err := fl.LoadCheckpoint(bytes.NewReader(raw[8:]))
	if err != nil {
		return nil, 0, err
	}
	return ck, offset, nil
}

func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
