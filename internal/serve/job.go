// Package serve is the multi-job serving layer: a long-running daemon
// that multiplexes many concurrent federated-learning jobs over the
// engines in internal/fl. Each job is an independent deterministic run —
// its own clients, model, RNG streams and trace — described by a JSON
// JobConfig and driven to completion on its own goroutine. The Server
// (server.go) adds admission control over the shared tensor-lane budget,
// per-round checkpoint/trace persistence, and bit-identical resume of
// in-flight synchronous jobs across daemon restarts.
package serve

import (
	"fmt"
	"math/rand"

	"fedsched"
	"fedsched/internal/data"
	"fedsched/internal/device"
	"fedsched/internal/fault"
	"fedsched/internal/fl"
	"fedsched/internal/network"
	"fedsched/internal/nn"
	"fedsched/internal/sample"
	"fedsched/internal/trace"
)

// JobConfig describes one federated run, as submitted over the job API.
// The zero value of every field means "use the default"; unknown fields
// are rejected at the HTTP layer. Two identical configs always produce
// bit-identical histories and traces — the config carries every seed.
type JobConfig struct {
	// Name is a free-form label echoed back in statuses.
	Name string `json:"name,omitempty"`
	// Engine selects the aggregation mode: sync (default, resumable
	// across daemon restarts), async or gossip (run to completion; a
	// restart re-runs them from scratch, deterministically).
	Engine string `json:"engine,omitempty"`
	// Testbed picks the paper testbed (1, 2 or 3) whose simulated
	// devices the clients run on; 0 (the default) builds Clients
	// synthetic participants with no device simulation — fast, for
	// functional jobs where only model quality matters.
	Testbed int `json:"testbed,omitempty"`
	// Clients is the participant count for testbed 0 (default 4).
	Clients int `json:"clients,omitempty"`
	// Dataset: smnist (default) or scifar.
	Dataset string `json:"dataset,omitempty"`
	// Scheduler sizes the data partition on a device testbed:
	// fedlbap (default), prop, random or equal. Testbed 0 jobs always
	// partition equally and must leave it empty.
	Scheduler string `json:"scheduler,omitempty"`

	Rounds      int     `json:"rounds,omitempty"`       // default 3
	Samples     int     `json:"samples,omitempty"`      // training samples, default 600
	TestSamples int     `json:"test_samples,omitempty"` // default 200
	BatchSize   int     `json:"batch_size,omitempty"`   // default 20
	LR          float64 `json:"lr,omitempty"`           // default 0.02
	Momentum    float64 `json:"momentum,omitempty"`     // default 0.9
	Seed        int64   `json:"seed,omitempty"`
	Precision   string  `json:"precision,omitempty"` // f64 (default) | f32
	// Workers bounds intra-job training parallelism (fl.Config.Workers);
	// it is also the job's lane budget for admission (server.go).
	Workers int `json:"workers,omitempty"`

	// CohortSize, when positive, samples that many clients uniformly
	// per round (seeded from Seed).
	CohortSize int `json:"cohort_size,omitempty"`
	// Faults is a fault-scenario spec, e.g. "crash=0.1,flap=0.05"
	// (internal/fault); FaultSeed 0 derives the plan seed from Seed.
	Faults          string  `json:"faults,omitempty"`
	FaultSeed       int64   `json:"fault_seed,omitempty"`
	Quorum          int     `json:"quorum,omitempty"`
	MinParticipants int     `json:"min_participants,omitempty"`
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`

	// MaxUpdates bounds an async job's server merges (default 50).
	MaxUpdates int `json:"max_updates,omitempty"`
	// Topology selects the gossip pattern: ring (default) or random.
	Topology string `json:"topology,omitempty"`
}

// withDefaults fills zero fields with their documented defaults.
func (c JobConfig) withDefaults() JobConfig {
	if c.Engine == "" {
		c.Engine = "sync"
	}
	if c.Dataset == "" {
		c.Dataset = "smnist"
	}
	if c.Testbed == 0 && c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Testbed > 0 && c.Scheduler == "" {
		c.Scheduler = "fedlbap"
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.Samples <= 0 {
		c.Samples = 600
	}
	if c.TestSamples <= 0 {
		c.TestSamples = 200
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 20
	}
	if c.LR <= 0 {
		c.LR = 0.02
	}
	if c.Momentum == 0 { //fedlint:allow floateq — JSON zero value means "field unset"; momentum 0 is expressed as a negative
		c.Momentum = 0.9
	}
	if c.Momentum < 0 {
		c.Momentum = 0
	}
	if c.Engine == "async" && c.MaxUpdates <= 0 {
		c.MaxUpdates = 50
	}
	if c.Engine == "gossip" && c.Topology == "" {
		c.Topology = "ring"
	}
	return c
}

// Validate checks a defaulted config; the HTTP layer maps the error to a
// 400. It is deliberately strict — a daemon accepts jobs from afar, so
// anything out of range is rejected at admission, not discovered rounds
// into a run.
func (c JobConfig) Validate() error {
	switch c.Engine {
	case "sync", "async", "gossip":
	default:
		return fmt.Errorf("engine %q (want sync, async or gossip)", c.Engine)
	}
	if c.Testbed < 0 || c.Testbed > 3 {
		return fmt.Errorf("testbed %d (want 0 for synthetic clients, or paper testbed 1-3)", c.Testbed)
	}
	if c.Testbed == 0 {
		if c.Clients < 1 || c.Clients > 1024 {
			return fmt.Errorf("clients %d (want 1-1024)", c.Clients)
		}
		if c.Engine == "gossip" && c.Clients < 2 {
			return fmt.Errorf("gossip needs >= 2 clients, have %d", c.Clients)
		}
		if c.Scheduler != "" {
			return fmt.Errorf("scheduler %q needs a device testbed (testbed 1-3)", c.Scheduler)
		}
	} else {
		switch c.Scheduler {
		case "fedlbap", "prop", "random", "equal":
		default:
			return fmt.Errorf("scheduler %q (want fedlbap, prop, random or equal)", c.Scheduler)
		}
	}
	switch c.Dataset {
	case "smnist", "scifar":
	default:
		return fmt.Errorf("dataset %q (want smnist or scifar)", c.Dataset)
	}
	if c.Rounds > 100000 {
		return fmt.Errorf("rounds %d (max 100000)", c.Rounds)
	}
	if c.Samples < 20 || c.Samples > 1000000 {
		return fmt.Errorf("samples %d (want 20-1000000)", c.Samples)
	}
	if c.TestSamples > 1000000 {
		return fmt.Errorf("test_samples %d (max 1000000)", c.TestSamples)
	}
	if c.CohortSize < 0 {
		return fmt.Errorf("cohort_size %d is negative", c.CohortSize)
	}
	if c.Quorum < 0 || c.MinParticipants < 0 || c.DeadlineSeconds < 0 {
		return fmt.Errorf("quorum, min_participants and deadline_seconds must be >= 0")
	}
	if _, err := nn.ParsePrecision(c.Precision); err != nil {
		return err
	}
	if _, err := fault.ParseSpec(c.Faults, 1); err != nil {
		return err
	}
	if c.Engine != "gossip" && c.Topology != "" {
		return fmt.Errorf("topology %q only applies to gossip jobs", c.Topology)
	}
	if c.Engine == "gossip" {
		switch c.Topology {
		case "ring", "random":
		default:
			return fmt.Errorf("topology %q (want ring or random)", c.Topology)
		}
	}
	if c.Engine != "async" && c.MaxUpdates != 0 {
		return fmt.Errorf("max_updates only applies to async jobs")
	}
	return nil
}

// built is a job materialized and ready to run: deterministic given the
// config, so rebuilding after a daemon restart recreates the exact run a
// checkpoint can resume into.
type built struct {
	clients []*fl.Client
	test    *data.Dataset
	run     fl.Config
	// maxUpdates / topology carry the engine-specific knobs; the engine
	// string in the config picks which run* helper consumes them.
	maxUpdates int
	topology   fl.Topology
}

// build materializes a validated config: datasets, schedule-sized
// partition, clients and the engine config. Scheduling emits its
// KindSchedule/KindSolver events into rec — on a resume the caller
// resets rec afterwards, because the original run's first flush already
// persisted them.
func build(cfg JobConfig, rec *trace.Recorder) (*built, error) {
	prec, err := nn.ParsePrecision(cfg.Precision)
	if err != nil {
		return nil, err
	}

	var train, test *data.Dataset
	var arch *nn.Arch
	switch cfg.Dataset {
	case "smnist":
		train = data.SMNIST(cfg.Samples, cfg.Seed)
		test = data.SMNIST(cfg.TestSamples, cfg.Seed)
		arch = nn.LeNetSmall(1, 16, 16, 10)
	case "scifar":
		train = data.SCIFAR(cfg.Samples, cfg.Seed)
		test = data.SCIFAR(cfg.TestSamples, cfg.Seed)
		arch = nn.LeNetSmall(3, 16, 16, 10)
	default:
		return nil, fmt.Errorf("dataset %q", cfg.Dataset)
	}

	var clients []*fl.Client
	if cfg.Testbed == 0 {
		// Synthetic participants: equal partition, no device simulation.
		rng := rand.New(rand.NewSource(cfg.Seed))
		part := data.IIDEqual(train, cfg.Clients, rng)
		devs := make([]*device.Device, cfg.Clients)
		links := make([]network.Link, cfg.Clients)
		for i := range links {
			links[i] = network.WiFi()
		}
		clients, err = fl.BuildClients(devs, links, part.Materialize(train))
		if err != nil {
			return nil, err
		}
	} else {
		clients, err = buildTestbedClients(cfg, train, rec)
		if err != nil {
			return nil, err
		}
	}

	fseed := cfg.FaultSeed
	if fseed == 0 {
		fseed = cfg.Seed*0x9e3779b9 + 97
	}
	plan, err := fault.ParseSpec(cfg.Faults, fseed)
	if err != nil {
		return nil, err
	}

	b := &built{
		clients: clients,
		test:    test,
		run: fl.Config{
			Arch: arch, Rounds: cfg.Rounds, BatchSize: cfg.BatchSize,
			LR: cfg.LR, Momentum: cfg.Momentum, Seed: cfg.Seed,
			Precision: prec, Workers: cfg.Workers, EvalEvery: 1,
			DeadlineSeconds: cfg.DeadlineSeconds, Quorum: cfg.Quorum,
			MinParticipants: cfg.MinParticipants, Faults: plan, Trace: rec,
		},
		maxUpdates: cfg.MaxUpdates,
	}
	if cfg.Topology == "random" {
		b.topology = fl.RandomPairs
	}

	if cfg.CohortSize > 0 {
		active := 0
		for _, c := range clients {
			if c.Local != nil && c.Local.Len() > 0 {
				active++
			}
		}
		if cfg.CohortSize > active {
			return nil, fmt.Errorf("cohort_size %d exceeds the %d data-holding clients", cfg.CohortSize, active)
		}
		b.run.Sampler = sample.NewUniform(active, cfg.CohortSize, cfg.Seed+31)
	}
	return b, nil
}

// buildTestbedClients follows the fedtrain recipe: schedule the
// paper-scale workload on the testbed's profiled devices, rescale the
// resulting shard counts onto the reduced training set, and build one
// simulated client per device.
func buildTestbedClients(cfg JobConfig, train *data.Dataset, rec *trace.Recorder) ([]*fl.Client, error) {
	tb := fedsched.NewTestbed(cfg.Testbed)
	users := len(tb.Profiles)
	paperArch := fedsched.LeNet(train.C, 28, 28, 10)
	req, err := tb.Request(paperArch, 60000)
	if err != nil {
		return nil, err
	}
	req.Trace = rec
	var s fedsched.Scheduler
	switch cfg.Scheduler {
	case "fedlbap":
		s = fedsched.FedLBAP
	case "prop":
		s = fedsched.Proportional
	case "random":
		s = fedsched.RandomSched
	case "equal":
		s = fedsched.Equal
	default:
		return nil, fmt.Errorf("scheduler %q", cfg.Scheduler)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	asg, err := s.Schedule(req, rng)
	if err != nil {
		return nil, err
	}
	sizes := make([]int, users)
	assigned := 0
	for j, sh := range asg.Shards {
		sizes[j] = sh * train.Len() / req.TotalShards
		assigned += sizes[j]
	}
	for j := 0; assigned < train.Len(); j = (j + 1) % users {
		sizes[j]++
		assigned++
	}
	part := data.IIDSizes(train, sizes, rng)
	return tb.Clients(train, part)
}
