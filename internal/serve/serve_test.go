package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer boots a Server over a fresh state dir plus an httptest
// front end. The cleanup closes the HTTP layer first, then interrupts
// the daemon.
func startServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (JobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func terminal(state string) bool {
	return state == StateCompleted || state == StateFailed || state == StateCancelled
}

// waitFor polls a job's status until cond holds (engine work under the
// race detector is slow, hence the generous deadline).
func waitFor(t *testing.T, ts *httptest.Server, id string, what string, cond func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if cond(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q (last: %+v)", id, what, getStatus(t, ts, id))
	return JobStatus{}
}

func TestSubmitHappyPath(t *testing.T) {
	_, ts := startServer(t, Options{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v / %v", err, resp)
	}
	resp.Body.Close()

	st, resp := submit(t, ts, `{"name":"hp","clients":3,"rounds":2,"samples":120,"test_samples":60,"seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if st.ID == "" || st.Engine != "sync" || st.Rounds != 2 {
		t.Fatalf("unexpected submit status %+v", st)
	}

	final := waitFor(t, ts, st.ID, StateCompleted, func(s JobStatus) bool { return terminal(s.State) })
	if final.State != StateCompleted {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	if final.RoundsDone != 2 || final.Name != "hp" {
		t.Fatalf("unexpected final status %+v", final)
	}

	rr, err := http.Get(ts.URL + "/jobs/" + st.ID + "/rounds")
	if err != nil {
		t.Fatal(err)
	}
	var rounds []RoundInfo
	if err := json.NewDecoder(rr.Body).Decode(&rounds); err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if len(rounds) != 2 || rounds[1].Participants != 3 {
		t.Fatalf("unexpected rounds %+v", rounds)
	}

	tr, err := http.Get(ts.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(tr.Body)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	summaries := 0
	for _, ln := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("trace line %q: %v", ln, err)
		}
		if ev["kind"] == "round" {
			summaries++
		}
	}
	if summaries != 2 {
		t.Fatalf("trace has %d round summaries, want 2", summaries)
	}

	lr, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var all []JobStatus
	if err := json.NewDecoder(lr.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if len(all) != 1 || all[0].ID != st.ID {
		t.Fatalf("unexpected listing %+v", all)
	}
}

func TestMalformedConfigsRejected(t *testing.T) {
	_, ts := startServer(t, Options{})
	bad := []string{
		`{not json`,
		`{"engine":"quantum"}`,
		`{"dataset":"mnist"}`,
		`{"testbed":9}`,
		`{"no_such_field":1}`,
		`{"clients":3,"cohort_size":-1}`,
		`{"precision":"f16"}`,
		`{"faults":"crash=oops"}`,
		`{"topology":"ring"}`,
		`{"max_updates":5}`,
		`{"scheduler":"fedlbap"}`,
		`{"samples":5}`,
	}
	for _, body := range bad {
		_, resp := submit(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: HTTP %d, want 400", body, resp.StatusCode)
		}
	}

	if resp, err := http.Get(ts.URL + "/jobs/job-99"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %v %v", err, resp.StatusCode)
	}
}

func TestBackpressureAndCancel(t *testing.T) {
	_, ts := startServer(t, Options{QueueCap: 1, MaxRunning: 1})

	long := `{"clients":3,"rounds":500,"samples":300,"test_samples":50,"seed":3}`
	first, resp := submit(t, ts, long)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	// The first job dispatches immediately (MaxRunning 1), so the second
	// occupies the whole queue and the third must bounce.
	second, resp := submit(t, ts, long)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d", resp.StatusCode)
	}
	_, resp = submit(t, ts, long)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}

	// Cancelling the queued job is immediate; cancelling the running one
	// stops it at the next round boundary with its partial history.
	cr, err := http.Post(ts.URL+"/jobs/"+second.ID+"/cancel", "", nil)
	if err != nil || cr.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: %v %d", err, cr.StatusCode)
	}
	cr.Body.Close()

	waitFor(t, ts, first.ID, "a completed round", func(s JobStatus) bool { return s.RoundsDone >= 1 })
	cr, err = http.Post(ts.URL+"/jobs/"+first.ID+"/cancel", "", nil)
	if err != nil || cr.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running: %v %d", err, cr.StatusCode)
	}
	cr.Body.Close()
	final := waitFor(t, ts, first.ID, StateCancelled, func(s JobStatus) bool { return terminal(s.State) })
	if final.State != StateCancelled || final.RoundsDone < 1 || final.RoundsDone >= 500 {
		t.Fatalf("unexpected cancelled status %+v", final)
	}

	// Terminal jobs reject further cancels.
	cr, err = http.Post(ts.URL+"/jobs/"+first.ID+"/cancel", "", nil)
	if err != nil || cr.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel: %v %d, want 409", err, cr.StatusCode)
	}
	cr.Body.Close()
}

// TestRestartResume is the serving layer's core guarantee: interrupt a
// daemon mid-job, restart over the same state directory, and the
// finished job's round history and trace are byte-identical to a never-
// interrupted run of the same config.
func TestRestartResume(t *testing.T) {
	cfg := `{"clients":3,"rounds":8,"samples":300,"test_samples":100,"seed":5}`
	dir1 := t.TempDir()

	s1, err := New(Options{Dir: dir1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	st, resp := submit(t, ts1, cfg)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitFor(t, ts1, st.ID, "two completed rounds", func(s JobStatus) bool { return s.RoundsDone >= 2 })
	ts1.Close()
	s1.Close() // interrupts at the next round boundary

	jobDir := filepath.Join(dir1, "jobs", st.ID)
	var onDisk stateFile
	if err := readJSON(filepath.Join(jobDir, "state.json"), &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.State == StateRunning {
		if _, err := os.Stat(filepath.Join(jobDir, "resume.bin")); err != nil {
			t.Fatalf("interrupted job has no resume snapshot: %v", err)
		}
	} else {
		// The job outran the interrupt; the byte-identity checks below
		// still hold, they just exercise less.
		t.Logf("job finished before the interrupt (state %s)", onDisk.State)
	}

	s2, err := New(Options{Dir: dir1})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	final := waitFor(t, ts2, st.ID, StateCompleted, func(s JobStatus) bool { return terminal(s.State) })
	if final.State != StateCompleted {
		t.Fatalf("resumed job ended %s (%s)", final.State, final.Error)
	}
	if onDisk.State == StateRunning && !final.Resumed {
		t.Fatal("job should report resumed=true after a restart")
	}
	if final.RoundsDone != 8 {
		t.Fatalf("resumed job completed %d rounds, want 8", final.RoundsDone)
	}
	if _, err := os.Stat(filepath.Join(jobDir, "resume.bin")); !os.IsNotExist(err) {
		t.Fatalf("terminal job should have no resume snapshot (err %v)", err)
	}

	// Uninterrupted reference run of the identical config.
	refDir := t.TempDir()
	_, ts3 := startServer(t, Options{Dir: refDir})
	ref, _ := submit(t, ts3, cfg)
	refFinal := waitFor(t, ts3, ref.ID, StateCompleted, func(s JobStatus) bool { return terminal(s.State) })
	if refFinal.State != StateCompleted {
		t.Fatalf("reference job ended %s (%s)", refFinal.State, refFinal.Error)
	}

	for _, name := range []string{"trace.jsonl", "rounds.json"} {
		got, err := os.ReadFile(filepath.Join(jobDir, name))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(refDir, "jobs", ref.ID, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between the resumed and uninterrupted runs (%d vs %d bytes)", name, len(got), len(want))
		}
	}
	if final.FinalAccuracy != refFinal.FinalAccuracy || final.TotalSeconds != refFinal.TotalSeconds {
		t.Errorf("final stats diverge: %+v vs %+v", final, refFinal)
	}
}

// TestConcurrentJobs exercises the admission path and the engines' shared
// tensor-lane pool under concurrent submissions — this is the test the
// race detector leans on (`make race` includes this package).
func TestConcurrentJobs(t *testing.T) {
	_, ts := startServer(t, Options{MaxRunning: 4, LaneBudget: 8})

	const n = 4
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"clients":2,"rounds":2,"samples":100,"test_samples":40,"seed":%d}`, i+1)
			st, resp := submit(t, ts, body)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %d: HTTP %d", i, resp.StatusCode)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if id == "" {
			t.Fatal("a submission failed")
		}
		final := waitFor(t, ts, id, StateCompleted, func(s JobStatus) bool { return terminal(s.State) })
		if final.State != StateCompleted || final.RoundsDone != 2 {
			t.Fatalf("job %s: %+v", id, final)
		}
	}
}

// TestEngineCoverage runs one async and one gossip job end to end: both
// are run-to-completion modes without round checkpoints, so only the
// terminal path persists their trace.
func TestEngineCoverage(t *testing.T) {
	_, ts := startServer(t, Options{MaxRunning: 2, LaneBudget: 4})

	async, resp := submit(t, ts, `{"engine":"async","clients":2,"rounds":1,"samples":100,"test_samples":40,"max_updates":6,"seed":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: HTTP %d", resp.StatusCode)
	}
	gossip, resp := submit(t, ts, `{"engine":"gossip","clients":2,"rounds":2,"samples":100,"test_samples":40,"seed":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("gossip submit: HTTP %d", resp.StatusCode)
	}

	a := waitFor(t, ts, async.ID, StateCompleted, func(s JobStatus) bool { return terminal(s.State) })
	if a.State != StateCompleted || a.RoundsDone != 6 {
		t.Fatalf("async: %+v", a)
	}
	g := waitFor(t, ts, gossip.ID, StateCompleted, func(s JobStatus) bool { return terminal(s.State) })
	if g.State != StateCompleted || g.RoundsDone != 2 {
		t.Fatalf("gossip: %+v", g)
	}
	tr, err := http.Get(ts.URL + "/jobs/" + gossip.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(tr.Body)
	if !strings.Contains(buf.String(), `"kind":"round"`) {
		t.Fatal("gossip trace is missing round summaries")
	}
}
