package device

import "testing"

func TestPopulationDeterministic(t *testing.T) {
	a := NewPopulation(1000, 42)
	b := NewPopulation(1000, 42)
	var da, db Device
	for id := 0; id < 1000; id += 37 {
		a.Materialize(id, &da)
		b.Materialize(id, &db)
		if da.Model != db.Model || da.TputSmall != db.TputSmall ||
			da.AmbientC != db.AmbientC || da.EnergyJ != db.EnergyJ {
			t.Fatalf("client %d materialized differently across identical populations", id)
		}
	}
}

func TestPopulationHeterogeneity(t *testing.T) {
	p := NewPopulation(4000, 7)
	counts := make([]int, len(p.Profiles))
	var d Device
	minSpeed, maxSpeed := 10.0, 0.0
	for id := 0; id < 4000; id++ {
		counts[p.ArchetypeOf(id)]++
		s := p.SpeedOf(id)
		if s < minSpeed {
			minSpeed = s
		}
		if s > maxSpeed {
			maxSpeed = s
		}
		if s < 1-p.SpeedJitter || s > 1+p.SpeedJitter {
			t.Fatalf("client %d speed %f outside jitter band", id, s)
		}
		drain := p.drainOf(id)
		if drain < 0 || drain > p.DrainMax {
			t.Fatalf("client %d drain %f outside [0, %f]", id, drain, p.DrainMax)
		}
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("archetype %d never drawn over 4000 clients", i)
		}
	}
	if maxSpeed-minSpeed < p.SpeedJitter {
		t.Fatalf("speed spread [%f, %f] implausibly narrow", minSpeed, maxSpeed)
	}
	p.Materialize(0, &d)
	base := p.Profiles[p.ArchetypeOf(0)]
	if d.TputSmall == base.TputSmall && d.TputLarge == base.TputLarge && p.SpeedOf(0) != 1 {
		t.Fatal("Materialize did not apply the speed jitter")
	}
}

func TestMaterializeResetsState(t *testing.T) {
	p := NewPopulation(100, 3)
	var d Device
	p.Materialize(5, &d)
	wantEnergy := d.EnergyJ
	// Dirty the device, then re-materialize the same client: every field
	// must come back to the same initial state.
	d.NowSeconds = 99
	d.TempC = 80
	d.Throttles = 7
	d.EnergyJ += 1234
	d.bigOffline = true
	d.throttled = true
	p.Materialize(5, &d)
	if d.NowSeconds != 0 || d.Throttles != 0 || d.bigOffline || d.throttled {
		t.Fatalf("Materialize left stale state: %+v", d)
	}
	if d.EnergyJ != wantEnergy {
		t.Fatalf("EnergyJ = %f, want %f", d.EnergyJ, wantEnergy)
	}
	if d.TempC != d.AmbientC {
		t.Fatalf("TempC = %f, want ambient %f", d.TempC, d.AmbientC)
	}
}

func TestMaterializeAllocFree(t *testing.T) {
	p := NewPopulation(1_000_000, 42)
	var d Device
	allocs := testing.AllocsPerRun(100, func() {
		p.Materialize(123456, &d)
	})
	if allocs > 0 {
		t.Errorf("Materialize allocates %.1f per call", allocs)
	}
}

func TestPopulationCheck(t *testing.T) {
	if err := NewPopulation(10, 1).Check(); err != nil {
		t.Fatalf("valid population rejected: %v", err)
	}
	bad := NewPopulation(0, 1)
	if err := bad.Check(); err == nil {
		t.Fatal("N=0 accepted")
	}
	bad = NewPopulation(10, 1)
	bad.Profiles = nil
	if err := bad.Check(); err == nil {
		t.Fatal("empty profile set accepted")
	}
	bad = NewPopulation(10, 1)
	bad.SpeedJitter = 1.5
	if err := bad.Check(); err == nil {
		t.Fatal("SpeedJitter=1.5 accepted")
	}
}
