package device

import "math"

// Population describes a client population by construction rather than by
// enumeration: client id's device is a deterministic function of
// (Seed, id), so a million-client fleet costs a few words of memory and a
// Device is materialized only when the client is actually selected for a
// round. This is the lazy-materialization half of the O(selected) round
// loop — the sampling half lives in internal/sample.
type Population struct {
	// Profiles are the device archetypes; client id draws archetype
	// hash(id) mod len(Profiles).
	Profiles []Profile
	// N is the population size.
	N int
	// Seed fixes every per-client draw (archetype, speed, temperature,
	// initial battery drain).
	Seed int64

	// TempJitterC spreads ambient temperature per client: ±TempJitterC
	// around the archetype's AmbientC (default 4 °C).
	TempJitterC float64
	// SpeedJitter scales throughput per client: a uniform factor in
	// [1−SpeedJitter, 1+SpeedJitter] (default 0.25) applied to both
	// anchors, modeling silicon/thermal-paste lottery and background load.
	SpeedJitter float64
	// DrainMax is the maximum initial battery drain fraction (default
	// 0.5): client id starts with a uniform fraction in [0, DrainMax] of
	// its battery already spent.
	DrainMax float64
}

// NewPopulation returns a population of n clients over the four paper
// testbed archetypes with default heterogeneity knobs.
func NewPopulation(n int, seed int64) *Population {
	return &Population{
		Profiles:    []Profile{Nexus6(), Nexus6P(), Mate10(), Pixel2()},
		N:           n,
		Seed:        seed,
		TempJitterC: 4,
		SpeedJitter: 0.25,
		DrainMax:    0.5,
	}
}

// popMix is the splitmix64 finalizer, duplicated here (three lines) to
// keep device free of a dependency on internal/sample.
func popMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to a uniform float in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// draw returns the id-specific hash for one attribute lane.
func (p *Population) draw(id int, lane uint64) uint64 {
	return popMix(uint64(p.Seed)*0x9e3779b97f4a7c15 + uint64(id)*0xbf58476d1ce4e5b9 + lane)
}

// ArchetypeOf returns the archetype index for client id.
func (p *Population) ArchetypeOf(id int) int {
	return int(p.draw(id, 1) % uint64(len(p.Profiles)))
}

// SpeedOf returns client id's throughput scale in [1−SpeedJitter, 1+SpeedJitter].
func (p *Population) SpeedOf(id int) float64 {
	j := p.SpeedJitter
	return 1 - j + 2*j*unit(p.draw(id, 2))
}

// ambientOf returns client id's ambient temperature.
func (p *Population) ambientOf(id int) float64 {
	base := p.Profiles[p.ArchetypeOf(id)].AmbientC
	return base + p.TempJitterC*(2*unit(p.draw(id, 3))-1)
}

// drainOf returns client id's initial battery-drain fraction in [0, DrainMax].
func (p *Population) drainOf(id int) float64 {
	return p.DrainMax * unit(p.draw(id, 4))
}

// Materialize (re)initializes d in place as client id's device: archetype
// profile with per-client speed/temperature jitter applied, clock and
// throttle state reset, and the initial battery drain charged to the
// energy account. It allocates nothing — the Profile value copy shares
// the archetype's Clusters slice, which Device never mutates — so a round
// loop can reuse one Device per cohort slot. The caller sets Tracer and
// TraceID afterwards if it records traces.
//
// fedlint:hotpath
func (p *Population) Materialize(id int, d *Device) {
	prof := p.Profiles[p.ArchetypeOf(id)]
	speed := p.SpeedOf(id)
	prof.TputSmall *= speed
	prof.TputLarge *= speed
	prof.AmbientC = p.ambientOf(id)
	*d = Device{Profile: prof, TempC: prof.AmbientC, FreqFactor: idleFreqFactor}
	d.EnergyJ = prof.BatteryJ * p.drainOf(id)
}

// MeanSpeed returns the expected throughput scale (1.0 by construction);
// kept as a sanity anchor for tests.
func (p *Population) MeanSpeed() float64 { return 1 }

// Check validates the population parameters.
func (p *Population) Check() error {
	switch {
	case p.N <= 0:
		return errPopulation("N must be > 0")
	case len(p.Profiles) == 0:
		return errPopulation("no archetype profiles")
	case p.SpeedJitter < 0 || p.SpeedJitter >= 1:
		return errPopulation("SpeedJitter must be in [0, 1)")
	case p.DrainMax < 0 || p.DrainMax > 1:
		return errPopulation("DrainMax must be in [0, 1]")
	case math.IsNaN(p.TempJitterC):
		return errPopulation("TempJitterC is NaN")
	}
	return nil
}

type errPopulation string

func (e errPopulation) Error() string { return "device: population: " + string(e) }
