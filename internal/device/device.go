package device

import (
	"math"

	"fedsched/internal/nn"
	"fedsched/internal/trace"
)

// Device is a stateful simulated phone. It tracks simulated time,
// temperature, governor frequency, and consumed energy across training
// work. A Device is not safe for concurrent use; federated clients each own
// one.
type Device struct {
	Profile

	// TempC is the current package temperature.
	TempC float64
	// FreqFactor is the governor's current frequency scale in (0, 1].
	FreqFactor float64
	// bigOffline records a hard thermal trip (Nexus 6P pathology).
	bigOffline bool
	// NowSeconds is the device-local simulated clock.
	NowSeconds float64
	// EnergyJ is the total energy consumed so far.
	EnergyJ float64
	// Throttles counts governor state transitions so far: soft-throttle
	// engage/release plus hard trips and recoveries. The per-round delta
	// is the paper's "how often did DVFS bite" observability signal.
	Throttles int
	// Tracer, when non-nil, receives one KindThrottle event per governor
	// transition. Engines that train clients in parallel point it at a
	// per-client ring and merge post-join (see internal/trace).
	Tracer *trace.Recorder
	// TraceID labels this device's events (the owning client's id).
	TraceID int
	// throttled mirrors whether the soft throttle is currently engaged,
	// to detect transitions.
	throttled bool
}

// thermalStep is the integration step for the thermal/governor model.
const thermalStep = 0.25 // seconds

// New returns a cold, idle device with the given profile.
func New(p Profile) *Device {
	return &Device{Profile: p, TempC: p.AmbientC, FreqFactor: idleFreqFactor}
}

// idleFreqFactor is the governor's resting frequency scale.
const idleFreqFactor = 0.35

// Reset cools the device to ambient, resets the governor, clock and energy
// account.
func (d *Device) Reset() {
	d.TempC = d.AmbientC
	d.FreqFactor = idleFreqFactor
	d.bigOffline = false
	d.NowSeconds = 0
	d.EnergyJ = 0
	d.Throttles = 0
	d.throttled = false
}

// intensityBlend maps a per-sample training FLOP cost to the interpolation
// coordinate between the small and large anchors (log scale, clamped).
func (d *Device) intensityBlend(trainFlops float64) float64 {
	if trainFlops <= 0 {
		return 0
	}
	lo, hi := math.Log10(d.AnchorSmall), math.Log10(d.AnchorLarge)
	s := (math.Log10(trainFlops) - lo) / (hi - lo)
	return math.Min(1, math.Max(0, s))
}

// baseThroughput returns the cold full-frequency training throughput
// (FLOP/s) for the given per-sample training cost.
func (d *Device) baseThroughput(trainFlops float64) float64 {
	s := d.intensityBlend(trainFlops)
	return (d.TputSmall + (d.TputLarge-d.TputSmall)*s) * 1e9
}

// utilization returns the fraction of peak power the workload draws.
func (d *Device) utilization(trainFlops float64) float64 {
	s := d.intensityBlend(trainFlops)
	return d.UtilSmall + (d.UtilLarge-d.UtilSmall)*s
}

// currentThroughput applies governor frequency and thermal trips to the
// base throughput.
func (d *Device) currentThroughput(trainFlops float64) float64 {
	t := d.baseThroughput(trainFlops) * d.FreqFactor
	if d.bigOffline {
		t *= d.BigOffFactor
	}
	return t
}

// advance integrates the governor and thermal model for dt seconds under
// the given utilization, accumulating energy. It is the device
// simulator's innermost loop (one call per thermalStep of simulated
// time), so the trace emission below must stay allocation-free.
//
// fedlint:hotpath
func (d *Device) advance(dt float64, util float64, loaded bool) {
	// Governor: exponential approach to target frequency.
	target := idleFreqFactor
	throttled := false
	if loaded {
		target = 1.0
		if d.TempC > d.SoftTripC {
			target = d.ThrottleFactor
			throttled = true
		}
	}
	if throttled != d.throttled {
		d.throttled = throttled
		d.Throttles++
		flag := trace.ThrottleRelease
		if throttled {
			flag = trace.ThrottleEngage
		}
		d.Tracer.Emit(trace.Event{
			Kind: trace.KindThrottle, Round: -1, Client: d.TraceID, Flag: flag,
			AtS: d.NowSeconds, TempC: d.TempC, FreqGHz: d.effectiveFreqGHz(),
		})
	}
	alpha := 1 - math.Exp(-dt/math.Max(d.RampSeconds, 1e-3))
	d.FreqFactor += (target - d.FreqFactor) * alpha

	// Power: dynamic power ≈ peak · util · f³ plus a small static floor.
	power := 0.15
	if loaded {
		f := d.FreqFactor
		if d.bigOffline {
			// Little cluster only: much lower power draw.
			power += d.PeakWatts * util * f * f * f * 0.3
		} else {
			power += d.PeakWatts * util * f * f * f
		}
	}
	// RC thermal update.
	dT := (power - d.CoolingWPerC*(d.TempC-d.AmbientC)) / d.ThermalMassJPerC
	d.TempC += dT * dt
	// Hard trip with hysteresis.
	if d.HardTripC > 0 {
		if !d.bigOffline && d.TempC >= d.HardTripC {
			d.bigOffline = true
			d.Throttles++
			d.Tracer.Emit(trace.Event{
				Kind: trace.KindThrottle, Round: -1, Client: d.TraceID, Flag: trace.ThrottleTrip,
				AtS: d.NowSeconds, TempC: d.TempC, FreqGHz: d.effectiveFreqGHz(),
			})
		} else if d.bigOffline && d.TempC <= d.HardTripC-d.HysteresisC {
			d.bigOffline = false
			d.Throttles++
			d.Tracer.Emit(trace.Event{
				Kind: trace.KindThrottle, Round: -1, Client: d.TraceID, Flag: trace.ThrottleRecover,
				AtS: d.NowSeconds, TempC: d.TempC, FreqGHz: d.effectiveFreqGHz(),
			})
		}
	}
	d.EnergyJ += power * dt
	d.NowSeconds += dt
}

// BatchPoint records one mini-batch of a training trace (Fig 1).
type BatchPoint struct {
	Batch     int
	Seconds   float64 // batch duration
	TempC     float64
	FreqGHz   float64 // effective mean clock at batch end
	BigOnline bool
}

// effectiveFreqGHz reports the mean clock implied by the current governor
// state, for Fig 1(c)-style traces.
func (d *Device) effectiveFreqGHz() float64 {
	cores, sum := 0, 0.0
	for _, c := range d.Clusters {
		if d.bigOffline && c.Big {
			continue
		}
		cores += c.Cores
		sum += float64(c.Cores) * c.MaxFreqGHz * d.FreqFactor
	}
	if cores == 0 {
		return 0
	}
	return sum / float64(cores)
}

// TrainSamples simulates training n samples of the given architecture in
// mini-batches of batch size, advancing the device state. It returns the
// elapsed simulated seconds and the per-batch trace.
func (d *Device) TrainSamples(arch *nn.Arch, n, batch int) (float64, []BatchPoint) {
	if n <= 0 {
		return 0, nil
	}
	if batch <= 0 {
		batch = 20
	}
	flops := arch.TrainFlopsPerSample()
	util := d.utilization(flops)
	start := d.NowSeconds
	batches := (n + batch - 1) / batch
	trace := make([]BatchPoint, batches)
	for b := 0; b < batches; b++ {
		size := batch
		if rem := n - b*batch; rem < size {
			size = rem
		}
		work := float64(size) * flops
		bStart := d.NowSeconds
		for {
			tput := d.currentThroughput(flops)
			need := work / tput
			if need <= thermalStep {
				d.advance(need, util, true)
				break
			}
			work -= tput * thermalStep
			d.advance(thermalStep, util, true)
		}
		trace[b] = BatchPoint{
			Batch:     b,
			Seconds:   d.NowSeconds - bStart,
			TempC:     d.TempC,
			FreqGHz:   d.effectiveFreqGHz(),
			BigOnline: !d.bigOffline,
		}
	}
	return d.NowSeconds - start, trace
}

// EpochTime returns the simulated wall time for one full epoch over n
// samples starting from the device's current thermal state.
func (d *Device) EpochTime(arch *nn.Arch, n int) float64 {
	elapsed, _ := d.TrainSamples(arch, n, 20)
	return elapsed
}

// Idle advances the device for dt seconds without load (cooling down).
func (d *Device) Idle(dt float64) {
	for dt > 0 {
		step := math.Min(thermalStep, dt)
		d.advance(step, 0, false)
		dt -= step
	}
}

// ColdEpochTime measures the epoch time from a cold start without
// perturbing the device: it snapshots state, measures, and restores. This
// is what offline profiling uses.
func (d *Device) ColdEpochTime(arch *nn.Arch, n int) float64 {
	saved := *d
	d.Reset()
	d.Tracer = nil // measurement probes must not pollute the trace
	t := d.EpochTime(arch, n)
	*d = saved
	return t
}

// State is the dynamic portion of a Device — everything Snapshot/Restore
// round-trips for checkpoint/resume of a multi-round run. The Profile is
// configuration, not state, and is reconstructed by the caller.
type State struct {
	TempC      float64 `json:"temp_c"`
	FreqFactor float64 `json:"freq_factor"`
	BigOffline bool    `json:"big_offline,omitempty"`
	NowSeconds float64 `json:"now_seconds"`
	EnergyJ    float64 `json:"energy_j"`
	Throttles  int     `json:"throttles,omitempty"`
	Throttled  bool    `json:"throttled,omitempty"`
}

// Snapshot captures the device's dynamic state. Restoring it onto a
// device with the same Profile reproduces the original bit-for-bit: the
// thermal/governor integration is a pure function of (Profile, State,
// workload).
func (d *Device) Snapshot() State {
	return State{
		TempC:      d.TempC,
		FreqFactor: d.FreqFactor,
		BigOffline: d.bigOffline,
		NowSeconds: d.NowSeconds,
		EnergyJ:    d.EnergyJ,
		Throttles:  d.Throttles,
		Throttled:  d.throttled,
	}
}

// Restore overwrites the device's dynamic state with a Snapshot. The
// Tracer/TraceID wiring is left untouched (it belongs to the session,
// not the state).
func (d *Device) Restore(s State) {
	d.TempC = s.TempC
	d.FreqFactor = s.FreqFactor
	d.bigOffline = s.BigOffline
	d.NowSeconds = s.NowSeconds
	d.EnergyJ = s.EnergyJ
	d.Throttles = s.Throttles
	d.throttled = s.Throttled
}

// DrainBattery empties the battery account: the device's consumed energy
// jumps to its full battery capacity, so BatteryRemaining reports 0 and
// CapacityShards 0 — battery death mid-round (internal/fault). Devices
// without a battery model (BatteryJ ≤ 0) are unaffected.
func (d *Device) DrainBattery() {
	if d.BatteryJ > 0 && d.EnergyJ < d.BatteryJ {
		d.EnergyJ = d.BatteryJ
	}
}

// BatteryRemaining returns the fraction of battery energy left, clamped to
// [0, 1].
func (d *Device) BatteryRemaining() float64 {
	if d.BatteryJ <= 0 {
		return 1
	}
	r := 1 - d.EnergyJ/d.BatteryJ
	return math.Max(0, math.Min(1, r))
}

// EnergyPerSample estimates the energy (J) to train one sample of the
// architecture at full frequency from the device's current thermal state —
// a first-order estimate (power × time) for capacity planning.
func (d *Device) EnergyPerSample(arch *nn.Arch) float64 {
	flops := arch.TrainFlopsPerSample()
	tput := d.currentThroughput(flops)
	if d.FreqFactor < 1 {
		// Planning assumes the governor ramps to full clock.
		tput = d.baseThroughput(flops)
		if d.bigOffline {
			tput *= d.BigOffFactor
		}
	}
	seconds := flops / tput
	power := 0.15 + d.PeakWatts*d.utilization(flops)
	return power * seconds
}

// CapacityShards implements the paper's battery-quantified capacity C_j
// (§VI-A): the number of shards of the given architecture the device can
// train per round while spending at most budgetFraction of its REMAINING
// battery energy per round. Returns at least 0; a dead battery yields 0.
func (d *Device) CapacityShards(arch *nn.Arch, shardSize int, budgetFraction float64) int {
	if shardSize <= 0 || budgetFraction <= 0 {
		return 0
	}
	remaining := d.BatteryJ - d.EnergyJ
	if d.BatteryJ <= 0 {
		// No battery model: effectively unconstrained.
		return math.MaxInt32
	}
	if remaining <= 0 {
		return 0
	}
	perShard := d.EnergyPerSample(arch) * float64(shardSize)
	if perShard <= 0 {
		return math.MaxInt32
	}
	return int(remaining * budgetFraction / perShard)
}
