package device

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fedsched/internal/nn"
)

var (
	lenet = nn.LeNet(1, 28, 28, 10)
	vgg6  = nn.VGG6(1, 28, 28, 10)
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	for _, name := range []string{"Nexus6", "Nexus6P", "Mate10", "Pixel2"} {
		p, ok := cat[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if p.Model != name {
			t.Fatalf("model %q under key %q", p.Model, name)
		}
		if p.TputSmall <= 0 || p.TputLarge <= 0 {
			t.Fatalf("%s has non-positive throughput", name)
		}
	}
}

func TestTestbedSizes(t *testing.T) {
	for id, want := range map[int]int{1: 3, 2: 6, 3: 10} {
		if got := len(Testbed(id)); got != want {
			t.Fatalf("testbed %d has %d devices, want %d", id, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown testbed")
		}
	}()
	Testbed(4)
}

func TestMeanFreq(t *testing.T) {
	p := Nexus6P() // 4×1.55 + 4×2.0 → mean 1.775
	if got := p.MeanFreqGHz(); got < 1.77 || got > 1.78 {
		t.Fatalf("mean freq %v", got)
	}
	if (Profile{}).MeanFreqGHz() != 0 {
		t.Fatal("empty profile mean freq should be 0")
	}
}

// Table II reproduction: simulated epoch times must stay within 15% of the
// paper's measurements for every (device, model, data size) cell.
func TestTable2Calibration(t *testing.T) {
	targets := map[string]struct{ l3, l6, v3, v6 float64 }{
		"Nexus6":  {31, 62, 495, 1021},
		"Nexus6P": {69, 220, 540, 1134},
		"Mate10":  {45, 89, 359, 712},
		"Pixel2":  {25, 51, 339, 661},
	}
	check := func(name string, got, want float64) {
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("%s: simulated %.1f s vs paper %.0f s (>15%% off)", name, got, want)
		}
	}
	for name, tg := range targets {
		d := New(Catalog()[name])
		check(name+"/LeNet/3K", d.ColdEpochTime(lenet, 3000), tg.l3)
		check(name+"/LeNet/6K", d.ColdEpochTime(lenet, 6000), tg.l6)
		check(name+"/VGG6/3K", d.ColdEpochTime(vgg6, 3000), tg.v3)
		check(name+"/VGG6/6K", d.ColdEpochTime(vgg6, 6000), tg.v6)
	}
}

func TestEpochTimeMonotoneInData(t *testing.T) {
	// Property 1 of the paper: T(D) is non-decreasing in D.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		names := []string{"Nexus6", "Nexus6P", "Mate10", "Pixel2"}
		p := Catalog()[names[rng.Intn(len(names))]]
		d := New(p)
		prev := 0.0
		for n := 200; n <= 4200; n += 800 {
			t := d.ColdEpochTime(lenet, n)
			if t < prev {
				return false
			}
			prev = t
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestNexus6PSuperlinear(t *testing.T) {
	d := New(Nexus6P())
	t3 := d.ColdEpochTime(lenet, 3000)
	t6 := d.ColdEpochTime(lenet, 6000)
	if t6 < 2.5*t3 {
		t.Fatalf("Nexus6P thermal trip missing: 3K=%.0f s, 6K=%.0f s (ratio %.2f, want >2.5)", t3, t6, t6/t3)
	}
	// And the other devices stay near-linear.
	for _, p := range []Profile{Nexus6(), Mate10(), Pixel2()} {
		d := New(p)
		t3 := d.ColdEpochTime(lenet, 3000)
		t6 := d.ColdEpochTime(lenet, 6000)
		if r := t6 / t3; r < 1.8 || r > 2.3 {
			t.Fatalf("%s LeNet scaling ratio %.2f, want ≈2", p.Model, r)
		}
	}
}

func TestTraceShapesAndThermal(t *testing.T) {
	d := New(Nexus6P())
	elapsed, trace := d.TrainSamples(lenet, 2000, 20)
	if len(trace) != 100 {
		t.Fatalf("trace has %d batches, want 100", len(trace))
	}
	if elapsed <= 0 {
		t.Fatal("non-positive elapsed time")
	}
	sum := 0.0
	for _, pt := range trace {
		sum += pt.Seconds
		if pt.TempC < d.AmbientC-1 {
			t.Fatalf("temperature below ambient: %v", pt.TempC)
		}
		if pt.FreqGHz <= 0 {
			t.Fatal("non-positive frequency in trace")
		}
	}
	if diff := sum - elapsed; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("trace durations sum %.3f != elapsed %.3f", sum, elapsed)
	}
	// Temperature must have risen under sustained load.
	if trace[len(trace)-1].TempC < d.AmbientC+5 {
		t.Fatalf("device barely heated: %.1f °C", trace[len(trace)-1].TempC)
	}
}

func TestBigClusterTripsAndRecovers(t *testing.T) {
	d := New(Nexus6P())
	_, trace := d.TrainSamples(lenet, 6000, 20)
	tripped := false
	for _, pt := range trace {
		if !pt.BigOnline {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("Nexus6P big cluster never tripped on a 6K-sample epoch")
	}
	// Long idle cools the device and brings the big cluster back.
	d.Idle(600)
	if d.TempC > d.AmbientC+5 {
		t.Fatalf("device did not cool while idle: %.1f °C", d.TempC)
	}
	_, trace2 := d.TrainSamples(lenet, 100, 20)
	if !trace2[0].BigOnline {
		t.Fatal("big cluster still offline after long cool-down")
	}
}

func TestResetRestoresColdState(t *testing.T) {
	d := New(Pixel2())
	d.TrainSamples(vgg6, 500, 20)
	if d.EnergyJ <= 0 || d.NowSeconds <= 0 {
		t.Fatal("no energy/time recorded")
	}
	d.Reset()
	if d.TempC != d.AmbientC || d.EnergyJ != 0 || d.NowSeconds != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestColdEpochTimePreservesState(t *testing.T) {
	d := New(Mate10())
	d.TrainSamples(lenet, 1000, 20)
	before := *d
	_ = d.ColdEpochTime(lenet, 2000)
	if d.TempC != before.TempC || d.NowSeconds != before.NowSeconds || d.EnergyJ != before.EnergyJ {
		t.Fatal("ColdEpochTime perturbed device state")
	}
}

func TestColdEpochDeterministic(t *testing.T) {
	a := New(Nexus6()).ColdEpochTime(lenet, 3000)
	b := New(Nexus6()).ColdEpochTime(lenet, 3000)
	if a != b {
		t.Fatalf("nondeterministic epoch time: %v vs %v", a, b)
	}
}

func TestWarmSlowerThanCold(t *testing.T) {
	// A thermally saturated device must not be faster than a cold one.
	d := New(Nexus6P())
	cold := d.ColdEpochTime(lenet, 3000)
	d.Reset()
	d.TrainSamples(lenet, 6000, 20) // heat it up
	warm := d.EpochTime(lenet, 3000)
	if warm < cold {
		t.Fatalf("warm epoch (%.0f s) faster than cold (%.0f s)", warm, cold)
	}
}

func TestEnergyAccountingAndBattery(t *testing.T) {
	d := New(Pixel2())
	if d.BatteryRemaining() != 1 {
		t.Fatal("fresh battery should be full")
	}
	d.TrainSamples(lenet, 3000, 20)
	e1 := d.EnergyJ
	if e1 <= 0 {
		t.Fatal("no energy consumed")
	}
	d.TrainSamples(lenet, 3000, 20)
	if d.EnergyJ <= e1 {
		t.Fatal("energy must accumulate")
	}
	if r := d.BatteryRemaining(); r >= 1 || r <= 0 {
		t.Fatalf("battery remaining %v", r)
	}
}

func TestZeroAndTinyWork(t *testing.T) {
	d := New(Nexus6())
	el, tr := d.TrainSamples(lenet, 0, 20)
	if el != 0 || tr != nil {
		t.Fatal("zero samples should be free")
	}
	el, tr = d.TrainSamples(lenet, 1, 0) // batch defaults to 20
	if el <= 0 || len(tr) != 1 {
		t.Fatalf("tiny work: elapsed %v, %d batches", el, len(tr))
	}
}

func TestObservation1OldBeatsNewOnLeNet(t *testing.T) {
	// Paper Observation 1: Nexus 6 (2014) outruns Mate 10 on LeNet, but
	// Mate 10 wins on VGG6.
	n6 := New(Nexus6())
	m10 := New(Mate10())
	if n6.ColdEpochTime(lenet, 3000) >= m10.ColdEpochTime(lenet, 3000) {
		t.Fatal("Nexus6 should beat Mate10 on LeNet")
	}
	if m10.ColdEpochTime(vgg6, 3000) >= n6.ColdEpochTime(vgg6, 3000) {
		t.Fatal("Mate10 should beat Nexus6 on VGG6")
	}
}

func BenchmarkEpochSimulation(b *testing.B) {
	d := New(Nexus6P())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Reset()
		d.EpochTime(lenet, 3000)
	}
}

func TestEnergyPerSamplePositiveAndOrdered(t *testing.T) {
	// Heavier models must cost more energy per sample on every device.
	for name, p := range Catalog() {
		d := New(p)
		le := d.EnergyPerSample(lenet)
		vg := d.EnergyPerSample(vgg6)
		if le <= 0 || vg <= 0 {
			t.Fatalf("%s: non-positive energy estimate", name)
		}
		if vg <= le {
			t.Fatalf("%s: VGG6 (%.2f J) not costlier than LeNet (%.2f J)", name, vg, le)
		}
	}
}

func TestCapacityShardsBatteryBudget(t *testing.T) {
	d := New(Pixel2())
	full := d.CapacityShards(lenet, 100, 1.0)
	if full <= 0 {
		t.Fatal("fresh battery should afford shards")
	}
	half := d.CapacityShards(lenet, 100, 0.5)
	if half >= full {
		t.Fatalf("smaller budget must shrink capacity: %d vs %d", half, full)
	}
	// Capacity shrinks as the battery drains.
	d.TrainSamples(lenet, 20000, 20)
	drained := d.CapacityShards(lenet, 100, 1.0)
	if drained >= full {
		t.Fatalf("capacity did not shrink after drain: %d vs %d", drained, full)
	}
	// Degenerate arguments.
	if d.CapacityShards(lenet, 0, 1) != 0 || d.CapacityShards(lenet, 100, 0) != 0 {
		t.Fatal("degenerate arguments must yield zero capacity")
	}
	// Energy-model sanity: the estimate roughly matches a simulated epoch.
	fresh := New(Pixel2())
	est := fresh.EnergyPerSample(lenet) * 3000
	fresh.TrainSamples(lenet, 3000, 20)
	if est < fresh.EnergyJ*0.5 || est > fresh.EnergyJ*2 {
		t.Fatalf("energy estimate %.0f J vs simulated %.0f J — off by >2x", est, fresh.EnergyJ)
	}
}

func TestCapacityShardsNoBatteryModel(t *testing.T) {
	p := Pixel2()
	p.BatteryJ = 0
	d := New(p)
	if d.CapacityShards(lenet, 100, 1) < 1<<30 {
		t.Fatal("missing battery model should be unconstrained")
	}
}

func TestSnapshotRestoreBitIdentical(t *testing.T) {
	// Warm a device into a non-trivial state (throttled, energy spent),
	// snapshot, keep training, then restore onto a fresh device and
	// verify the continuation replays bit-for-bit.
	a := New(Nexus6P())
	a.TrainSamples(lenet, 6000, 20)
	snap := a.Snapshot()

	cont, _ := a.TrainSamples(lenet, 3000, 20)
	after := a.Snapshot()

	b := New(Nexus6P())
	b.Restore(snap)
	if got := b.Snapshot(); got != snap {
		t.Fatalf("Restore round-trip %+v, want %+v", got, snap)
	}
	cont2, _ := b.TrainSamples(lenet, 3000, 20)
	if cont2 != cont {
		t.Fatalf("restored continuation took %v s, original %v s", cont2, cont)
	}
	if got := b.Snapshot(); got != after {
		t.Fatalf("restored end state %+v, want %+v", got, after)
	}
}

func TestDrainBattery(t *testing.T) {
	d := New(Pixel2())
	d.TrainSamples(lenet, 1000, 20)
	if d.BatteryRemaining() <= 0 {
		t.Fatal("fixture battery already empty")
	}
	d.DrainBattery()
	if got := d.BatteryRemaining(); got != 0 {
		t.Fatalf("BatteryRemaining after drain = %v, want 0", got)
	}
	if d.CapacityShards(lenet, 100, 1) != 0 {
		t.Fatal("drained battery should afford no shards")
	}
	// Idempotent, and a no-op without a battery model.
	e := d.EnergyJ
	d.DrainBattery()
	if d.EnergyJ != e {
		t.Fatal("second drain changed the energy account")
	}
	p := Pixel2()
	p.BatteryJ = 0
	n := New(p)
	n.TrainSamples(lenet, 100, 20)
	e = n.EnergyJ
	n.DrainBattery()
	if n.EnergyJ != e {
		t.Fatal("drain changed a device without a battery model")
	}
}
